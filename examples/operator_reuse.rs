//! Operator reuse in action: the same five pooled cores (MA, MM, NTT,
//! Automorphism, SBT) serve polynomial multiplication, addition, and
//! rotation-style index mapping — the paper's central design idea, with
//! usage counters making the time-multiplexing visible.
//!
//! Run with: `cargo run --release --example operator_reuse`

use poseidon::core::{BasicOp, OpParams, OperatorPool};

fn main() {
    let n = 1 << 12;
    let q = poseidon::math::prime::ntt_prime(30, 2 * n as u64).unwrap();
    let mut pool = OperatorPool::new(n, 512, 3);

    let a: Vec<u64> = (0..n as u64).map(|i| (i * 2654435761) % q).collect();
    let b: Vec<u64> = (0..n as u64).map(|i| (i * 40503 + 7) % q).collect();

    // "HAdd": pure MA.
    let _sum = pool.ma(&a, &b, q);
    println!("after HAdd          : {:?}", pool.usage());

    // "PMult" datapath: NTT → MM → INTT through the same pool.
    let _prod = pool.poly_mul(&a, &b, q);
    println!("after PMult         : {:?}", pool.usage());

    // "Rotation" index mapping: the automorphism core (HFAuto schedule).
    let _rot = pool.automorphism(&a, 5, q);
    println!("after Automorphism  : {:?}", pool.usage());

    let u = pool.usage();
    println!("\noperator core utilisation summary:");
    println!("  MA   core retired {:>10} element ops", u.ma);
    println!("  MM   core retired {:>10} element ops", u.mm);
    println!("  NTT  core retired {:>10} element-phases", u.ntt);
    println!("  Auto core retired {:>10} element mappings", u.auto);
    println!("  SBT  core retired {:>10} shared reductions", u.sbt);
    assert!(
        u.sbt >= u.mm,
        "every MM must have issued a shared reduction"
    );

    // The analytical decomposition predicts the same reuse pattern.
    let p = OpParams::new(n, 1, 1);
    println!(
        "\nanalytical Table-I row for PMult: {:?}",
        BasicOp::PMult.operator_counts(&p)
    );
}
