//! Encrypted logistic-regression inference — the workload class behind the
//! paper's HELR benchmark: a dot product folded with rotations plus a
//! polynomial sigmoid, computed entirely on ciphertexts.
//!
//! Run with: `cargo run --release --example encrypted_logistic`

use poseidon::ckks::encoding::Complex;
use poseidon::ckks::prelude::*;

/// Degree-3 least-squares sigmoid approximation on [-4, 4]:
/// σ(x) ≈ 0.5 + 0.197·x − 0.004·x³ (the classic HELR polynomial).
const SIG: [f64; 4] = [0.5, 0.197, 0.0, -0.004];

fn main() {
    let ctx = CkksContext::new(CkksParams::small());
    let mut rng = rand::thread_rng();
    let mut keys = KeySet::generate(&ctx, &mut rng);
    let eval = Evaluator::new(&ctx);

    // 8 features, packed into slots; rotation keys for the fold.
    let features = [0.8, -1.2, 0.5, 0.0, 2.0, -0.3, 1.1, -0.7];
    let weights = [0.25, -0.5, 1.0, 0.75, -0.125, 0.5, -0.25, 0.3];
    let mut step = 1usize;
    while step < features.len() {
        keys.add_rotation_key(step as i64, &mut rng);
        step *= 2;
    }

    let z: Vec<Complex> = features.iter().map(|&v| Complex::new(v, 0.0)).collect();
    let pt_x = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
        ctx.default_scale(),
    );
    let ct_x = keys.public().encrypt(&pt_x, &mut rng);

    // w ⊙ x (plaintext multiply), then log-fold rotations to sum 8 slots.
    let w: Vec<Complex> = weights.iter().map(|&v| Complex::new(v, 0.0)).collect();
    let pt_w = eval.encode_at_level(&w, ctx.default_scale(), ct_x.level());
    let mut acc = eval.rescale(&eval.mul_plain(&ct_x, &pt_w));
    let mut width = features.len() / 2;
    while width >= 1 {
        let rot = eval.rotate(&acc, width as i64, &keys);
        acc = eval.add(&acc, &rot);
        width /= 2;
    }
    // Slot 0 now holds ⟨w, x⟩ (every slot holds the full sum actually,
    // because the fold is cyclic over the replicated vector).
    let logit: f64 = features.iter().zip(&weights).map(|(x, w)| x * w).sum();

    // Sigmoid polynomial on the ciphertext.
    let prob_ct = poseidon::ckks::polyeval::evaluate_monomial(&eval, &keys, &acc, &SIG);
    let dec = keys.secret().decrypt(&prob_ct);
    let got = ctx.encoder().decode_rns(dec.poly(), dec.scale(), 8)[0].re;

    let want = SIG[0] + SIG[1] * logit + SIG[3] * logit.powi(3);
    let exact = 1.0 / (1.0 + (-logit).exp());
    println!("logit          = {logit:+.4}");
    println!("homomorphic σ̂  = {got:+.4}");
    println!("plaintext poly = {want:+.4}");
    println!("exact sigmoid  = {exact:+.4}");
    assert!((got - want).abs() < 1e-2, "homomorphic result drifted");
    println!("ok: encrypted inference matches the plaintext polynomial");
}
