//! Design-space exploration: the §VI discussion trade-offs (lanes, fusion
//! degree, scratchpad, bandwidth, keyswitch digits) swept through the
//! accelerator model.
//!
//! Run with: `cargo run --release --example design_space`

use poseidon::core::{BasicOp, OpParams};
use poseidon::sim::sweeps;
use poseidon::sim::workloads::Benchmark;
use poseidon::sim::{AcceleratorConfig, Simulator};

fn main() {
    let trace = Benchmark::PackedBootstrapping.trace();
    println!("workload: packed bootstrapping (N = 2^16)\n");

    println!("lanes      time(ms)    EDP(J*s)");
    for p in sweeps::sweep_lanes(&trace, &[64, 128, 256, 512, 1024]) {
        println!("{:<10} {:>9.2} {:>11.3e}", p.x, p.millis, p.edp);
    }

    println!("\nscratchpad(MB)  time(ms)");
    for p in sweeps::sweep_scratchpad(&trace, &[1.0, 4.0, 8.6, 16.0, 32.0]) {
        println!("{:<15} {:>9.2}", p.x, p.millis);
    }

    println!("\nHBM GB/s   time(ms)   bw-util");
    for p in sweeps::sweep_bandwidth(&trace, &[115.0, 230.0, 460.0, 920.0]) {
        println!(
            "{:<10} {:>9.2} {:>8.1}%",
            p.x,
            p.millis,
            p.bandwidth_utilisation * 100.0
        );
    }

    println!("\nkeyswitch digits (CMult, N=2^16, L=44):");
    let sim = Simulator::new(AcceleratorConfig::poseidon_u280());
    for dnum in [1usize, 4, 11, 44] {
        let p = OpParams::with_dnum(1 << 16, 44, 2, dnum);
        let t = sim.time_single(BasicOp::CMult, &p);
        println!(
            "  dnum {dnum:>3}: {:>8.2} us, {:>7.1} MB keys+operands",
            t.seconds * 1e6,
            t.hbm_bytes as f64 / 1e6
        );
    }
    println!("\nThe paper's choices — 512 lanes, k = 3, 8.6 MB, dnum = 1 — sit at the");
    println!("knees of these curves, which is the point of its §VI discussion.");
}
