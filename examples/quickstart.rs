//! Quickstart: encrypt two vectors, compute `a·b + a` homomorphically,
//! rotate the result, and decrypt.
//!
//! Run with: `cargo run --release --example quickstart`

use poseidon::ckks::encoding::Complex;
use poseidon::ckks::prelude::*;

fn main() {
    // Small parameters: N = 2^11, 8-prime chain (≈ 7 multiplicative levels).
    let ctx = CkksContext::new(CkksParams::small());
    let mut rng = rand::thread_rng();
    let mut keys = KeySet::generate(&ctx, &mut rng);
    keys.add_rotation_key(1, &mut rng);
    let eval = Evaluator::new(&ctx);

    let a_vals = [1.5, 2.0, -3.0, 0.25];
    let b_vals = [4.0, -1.0, 2.0, 8.0];
    println!("a = {a_vals:?}");
    println!("b = {b_vals:?}");

    let encode = |vals: &[f64]| {
        let z: Vec<Complex> = vals.iter().map(|&v| Complex::new(v, 0.0)).collect();
        Plaintext::new(
            ctx.encoder()
                .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
            ctx.default_scale(),
        )
    };
    let ct_a = keys.public().encrypt(&encode(&a_vals), &mut rng);
    let ct_b = keys.public().encrypt(&encode(&b_vals), &mut rng);

    // a·b (ciphertext × ciphertext with relinearisation), rescaled.
    let prod = eval.rescale(&eval.mul(&ct_a, &ct_b, &keys));
    // a·b + a — levels/scales aligned automatically by the evaluator.
    let sum = eval.add(&prod, &eval.adjust(&ct_a, prod.level(), prod.scale()));
    // Rotate left by one slot.
    let rotated = eval.rotate(&sum, 1, &keys);

    let dec = keys.secret().decrypt(&rotated);
    let out = ctx.encoder().decode_rns(dec.poly(), dec.scale(), 4);

    println!("rot(a*b + a, 1) =");
    for (i, v) in out.iter().enumerate() {
        let j = (i + 1) % 4;
        let want = a_vals[j] * b_vals[j] + a_vals[j];
        println!("  slot {i}: {:+.4} (expected {:+.4})", v.re, want);
        assert!((v.re - want).abs() < 1e-2, "slot {i} drifted");
    }
    println!("ok: homomorphic pipeline matches plaintext semantics");
}
