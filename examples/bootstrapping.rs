//! Packed bootstrapping demo: exhaust a ciphertext to its last prime, then
//! refresh it through ModRaise → SubSum → CoeffToSlot → EvalMod →
//! SlotToCoeff and keep computing on the refreshed ciphertext.
//!
//! Run with: `cargo run --release --example bootstrapping`
//! (takes ~30 s: the pipeline performs dozens of keyswitched rotations.)

use poseidon::ckks::bootstrap::{encode_for_bootstrap, exhaust_to_level0, Bootstrapper};
use poseidon::ckks::encoding::Complex;
use poseidon::ckks::prelude::*;
use rand::SeedableRng;

fn main() {
    let ctx = CkksContext::new(CkksParams::bootstrap_demo());
    let mut rng = rand::rngs::StdRng::seed_from_u64(2026);
    // Sparse secret: bounds the ModRaise overflow so the sine approximation
    // of `x mod q0` stays in its accurate range.
    let mut keys = KeySet::generate_sparse(&ctx, 8, &mut rng);
    let eval = Evaluator::new(&ctx);
    let bs = Bootstrapper::new(&ctx, 4, 6);
    for step in bs.required_rotations() {
        keys.add_rotation_key(step, &mut rng);
    }
    keys.add_conjugation_key(&mut rng);

    let message = [0.25f64, -0.5, 0.125, 0.4375];
    println!("message          : {message:?}");
    let z: Vec<Complex> = message.iter().map(|&v| Complex::new(v, 0.0)).collect();
    let ct = keys
        .public()
        .encrypt(&encode_for_bootstrap(&ctx, &z), &mut rng);
    println!("fresh level      : {}", ct.level());

    let exhausted = exhaust_to_level0(&eval, &ct);
    println!(
        "exhausted level  : {} (no multiplications left)",
        exhausted.level()
    );

    let refreshed = bs.bootstrap(&eval, &keys, &exhausted);
    println!(
        "refreshed level  : {} (multiplications available again)",
        refreshed.level()
    );

    // Prove it: square the refreshed ciphertext.
    let squared = eval.rescale(&eval.square(&refreshed, &keys));
    let dec = keys.secret().decrypt(&squared);
    let got = ctx.encoder().decode_rns(dec.poly(), dec.scale(), 4);
    println!("squared slots    :");
    for (i, v) in got.iter().enumerate() {
        let want = message[i] * message[i];
        println!("  slot {i}: {:+.4} (expected {:+.4})", v.re, want);
        assert!((v.re - want).abs() < 0.08, "slot {i} drifted");
    }
    println!("ok: bootstrapping refreshed an exhausted ciphertext");
}
