//! Ciphertext serialization: encrypt, ship as JSON (e.g. client → cloud,
//! the Fig. 1 deployment scenario), compute on the deserialised ciphertext
//! server-side, ship the result back, decrypt.
//!
//! Run with: `cargo run --release --features serde --example serialization`

#[cfg(feature = "serde")]
fn main() {
    use poseidon::ckks::encoding::Complex;
    use poseidon::ckks::prelude::*;

    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::thread_rng();
    let keys = KeySet::generate(&ctx, &mut rng);
    let eval = Evaluator::new(&ctx);

    // Client side: encrypt and serialise.
    let z = vec![Complex::new(3.0, 0.0), Complex::new(-1.5, 0.0)];
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
        ctx.default_scale(),
    );
    let ct = keys.public().encrypt(&pt, &mut rng);
    let wire = serde_json::to_vec(&ct).expect("serialise");
    println!("ciphertext on the wire: {} bytes of JSON", wire.len());

    // Server side: deserialise (no secret key!), compute x² + x.
    let received: Ciphertext = serde_json::from_slice(&wire).expect("deserialise");
    let sq = eval.rescale(&eval.square(&received, &keys));
    let result = eval.add(&sq, &eval.adjust(&received, sq.level(), sq.scale()));
    let reply = serde_json::to_vec(&result).expect("serialise result");
    println!("result on the wire    : {} bytes of JSON", reply.len());

    // Client side: decrypt.
    let back: Ciphertext = serde_json::from_slice(&reply).expect("deserialise result");
    let dec = keys.secret().decrypt(&back);
    let out = ctx.encoder().decode_rns(dec.poly(), dec.scale(), 2);
    for (i, (v, zi)) in out.iter().zip(&z).enumerate() {
        let want = zi.re * zi.re + zi.re;
        println!("slot {i}: {:+.4} (expected {:+.4})", v.re, want);
        assert!((v.re - want).abs() < 0.02);
    }
    println!("ok: computed on serialised ciphertexts without the secret key");
}

#[cfg(not(feature = "serde"))]
fn main() {
    eprintln!("rebuild with --features he-ckks/serde to run this example");
}
