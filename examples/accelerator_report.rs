//! Accelerator simulation report: runs the paper's four benchmarks through
//! the Poseidon performance model and prints the full evaluation summary
//! (times, breakdowns, bandwidth, energy, EDP) plus the HFAuto ablation.
//!
//! Run with: `cargo run --release --example accelerator_report`

use poseidon::core::BasicOp;
use poseidon::sim::workloads::Benchmark;
use poseidon::sim::{AcceleratorConfig, Simulator};

fn main() {
    let hf = Simulator::new(AcceleratorConfig::poseidon_u280());
    let naive = Simulator::new(AcceleratorConfig::poseidon_naive_auto());
    println!("Poseidon model: 512 lanes, 300 MHz, k = 3 NTT fusion, 8.6 MB scratchpad,");
    println!("32-channel HBM2 @ 460 GB/s peak\n");

    for b in Benchmark::ALL {
        let trace = b.trace();
        let r = hf.run(&trace);
        let r_naive = naive.run(&trace);
        println!("=== {} ===", b.name());
        println!(
            "  time            : {:>10.2} ms (naive-Auto ablation: {:.2} ms, {:.1}x)",
            r.millis(),
            r_naive.millis(),
            r_naive.seconds / r.seconds
        );
        println!("  HBM traffic     : {:>10.2} GB", r.hbm_bytes as f64 / 1e9);
        println!(
            "  bandwidth util  : {:>9.1} %",
            r.bandwidth_utilisation * 100.0
        );
        println!(
            "  energy          : {:>10.3} J   EDP: {:.3e} J*s",
            r.energy.total(),
            r.edp()
        );
        print!("  time by op      : ");
        for op in [
            BasicOp::HAdd,
            BasicOp::PMult,
            BasicOp::CMult,
            BasicOp::Rotation,
            BasicOp::Rescale,
        ] {
            let share = r.time_share_percent(op);
            if share > 0.05 {
                print!("{} {:.1}%  ", op.name(), share);
            }
        }
        println!();
        print!("  cycles by core  : ");
        for op in poseidon::core::Operator::ALL {
            let share = r.operator_share_percent(op);
            if share > 0.05 {
                print!("{op} {share:.1}%  ");
            }
        }
        println!("\n");
    }
}
