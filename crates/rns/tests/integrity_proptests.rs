//! Property-based tests for the redundant-residue (RRNS) integrity guard:
//! detection coverage over a random corpus, guard algebra under the
//! pointwise ops, and re-anchoring across form changes.

use he_rns::{GuardedPoly, RnsBasis, RnsPoly};
use proptest::prelude::*;

const N: usize = 16;
const LIMBS: usize = 3;

fn basis() -> RnsBasis {
    RnsBasis::generate(N, 28, LIMBS)
}

fn arb_coeffs() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(-(1i64 << 20)..(1i64 << 20), N)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The acceptance criterion of the PR: every single-bit flip of any
    // residue word is caught by the guard check (the flip perturbs the
    // CRT projection by a non-multiple of Q mod the guard prime).
    #[test]
    fn single_bit_flip_is_always_detected(
        coeffs in arb_coeffs(),
        limb in 0usize..LIMBS,
        idx in 0usize..N,
        bit in 0u32..28,
    ) {
        let q = basis();
        let gp = GuardedPoly::guard_prime_for(&q);
        let poly = RnsPoly::from_i64_coeffs(&q, &coeffs);
        let mut g = GuardedPoly::attach(poly, gp);
        prop_assert!(g.verify().is_ok(), "clean poly must verify");
        g.poly_mut().all_residues_mut()[limb][idx] ^= 1u64 << bit;
        prop_assert!(g.verify().is_err(), "flip limb {limb} idx {idx} bit {bit} undetected");
    }

    // Guards ride through add/sub/neg without re-projection and still
    // verify; the carried result equals the plain RnsPoly op.
    #[test]
    fn guard_carries_through_pointwise_ops(a in arb_coeffs(), b in arb_coeffs()) {
        let q = basis();
        let gp = GuardedPoly::guard_prime_for(&q);
        let pa = RnsPoly::from_i64_coeffs(&q, &a);
        let pb = RnsPoly::from_i64_coeffs(&q, &b);
        let ga = GuardedPoly::attach(pa.clone(), gp);
        let gb = GuardedPoly::attach(pb.clone(), gp);

        let sum = ga.add(&gb);
        prop_assert!(sum.verify().is_ok());
        prop_assert_eq!(sum.poly(), &pa.add(&pb));

        let diff = ga.sub(&gb);
        prop_assert!(diff.verify().is_ok());
        prop_assert_eq!(diff.poly(), &pa.sub(&pb));

        let neg = ga.neg();
        prop_assert!(neg.verify().is_ok());
        prop_assert_eq!(neg.poly(), &pa.neg());
    }

    // Multiplication verifies its inputs and re-anchors: the product
    // matches the plain path and the fresh guard verifies.
    #[test]
    fn mul_verifies_inputs_and_reanchors(a in arb_coeffs(), b in arb_coeffs()) {
        let q = basis();
        let gp = GuardedPoly::guard_prime_for(&q);
        let pa = RnsPoly::from_i64_coeffs(&q, &a).into_eval();
        let pb = RnsPoly::from_i64_coeffs(&q, &b).into_eval();
        let ga = GuardedPoly::attach(pa.clone(), gp);
        let gb = GuardedPoly::attach(pb.clone(), gp);
        let prod = ga.mul(&gb).expect("clean operands");
        prop_assert!(prod.verify().is_ok());
        prop_assert_eq!(prod.poly(), &pa.mul(&pb));
    }

    // A corrupted operand is refused at the next checked boundary (mul /
    // form change) rather than silently laundered into a fresh guard.
    #[test]
    fn corrupted_operand_is_refused_at_boundaries(
        coeffs in arb_coeffs(),
        limb in 0usize..LIMBS,
        idx in 0usize..N,
        bit in 0u32..28,
    ) {
        let q = basis();
        let gp = GuardedPoly::guard_prime_for(&q);
        let mut ga = GuardedPoly::attach(RnsPoly::from_i64_coeffs(&q, &coeffs).into_eval(), gp);
        ga.poly_mut().all_residues_mut()[limb][idx] ^= 1u64 << bit;
        let gb = GuardedPoly::attach(RnsPoly::from_i64_coeffs(&q, &coeffs).into_eval(), gp);
        prop_assert!(ga.mul(&gb).is_err(), "corrupt mul operand accepted");
        prop_assert!(ga.into_coeff().is_err(), "corrupt form change accepted");
    }

    // Form changes verify then re-anchor, round-tripping cleanly.
    #[test]
    fn form_changes_reverify_and_round_trip(coeffs in arb_coeffs()) {
        let q = basis();
        let gp = GuardedPoly::guard_prime_for(&q);
        let p = RnsPoly::from_i64_coeffs(&q, &coeffs);
        let g = GuardedPoly::attach(p.clone(), gp);
        let eval = g.into_eval().expect("clean");
        let back = eval.into_coeff().expect("clean");
        prop_assert!(back.verify().is_ok());
        prop_assert_eq!(back.poly(), &p);
    }
}
