//! Bit-exactness of the limb-parallel engine: every RNS kernel must
//! produce identical outputs at one thread (the pre-engine serial path)
//! and at many threads.
//!
//! The ring degree is 2048 with five primes so the payloads cross
//! `poseidon_par::PAR_THRESHOLD` and the parallel dispatch actually runs;
//! `with_threads` is thread-local, so pinning counts here cannot race the
//! parallel test harness.

use he_ntt::KernelKind;
use he_rns::conv::{moddown, modup, rescale, rns_convert};
use he_rns::{RnsBasis, RnsPoly, ShoupOperand};
use poseidon_par::with_threads;
use proptest::prelude::*;

const N: usize = 2048;

fn bases() -> (RnsBasis, RnsBasis) {
    let q = RnsBasis::generate(N, 28, 3);
    let p = RnsBasis::new(N, he_math::prime::ntt_prime_chain(30, 2 * N as u64, 2));
    (q, p)
}

/// Sparse signed coefficients: a handful of seeds expanded over N slots so
/// case generation stays cheap at the large ring degree.
fn arb_coeffs() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(-(1i64 << 20)..(1i64 << 20), 16).prop_map(|seed| {
        (0..N)
            .map(|i| seed[i % seed.len()].wrapping_mul(i as i64 % 31 + 1))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn ntt_round_trip_is_thread_count_invariant(coeffs in arb_coeffs()) {
        let (q, _) = bases();
        let a = RnsPoly::from_i64_coeffs(&q, &coeffs);
        let serial = with_threads(1, || a.clone().into_eval());
        let parallel = with_threads(8, || a.clone().into_eval());
        prop_assert_eq!(&serial, &parallel);
        let back_s = with_threads(1, || serial.clone().into_coeff());
        let back_p = with_threads(8, || parallel.into_coeff());
        prop_assert_eq!(&back_s, &back_p);
        prop_assert_eq!(back_s, a);
    }

    #[test]
    fn pointwise_ops_are_thread_count_invariant(a in arb_coeffs(), b in arb_coeffs()) {
        let (q, _) = bases();
        let pa = RnsPoly::from_i64_coeffs(&q, &a).into_eval();
        let pb = RnsPoly::from_i64_coeffs(&q, &b).into_eval();
        let mul_s = with_threads(1, || pa.mul(&pb));
        let mul_p = with_threads(8, || pa.mul(&pb));
        prop_assert_eq!(mul_s, mul_p);
        let add_s = with_threads(1, || pa.add(&pb));
        let add_p = with_threads(8, || pa.add(&pb));
        prop_assert_eq!(add_s, add_p);
        let sub_s = with_threads(1, || pa.sub(&pb));
        let sub_p = with_threads(8, || pa.sub(&pb));
        prop_assert_eq!(sub_s, sub_p);
        let neg_s = with_threads(1, || pa.neg());
        let neg_p = with_threads(8, || pa.neg());
        prop_assert_eq!(neg_s, neg_p);
    }

    #[test]
    fn assign_ops_match_allocating_ops(a in arb_coeffs(), b in arb_coeffs()) {
        let (q, _) = bases();
        let pa = RnsPoly::from_i64_coeffs(&q, &a).into_eval();
        let pb = RnsPoly::from_i64_coeffs(&q, &b).into_eval();
        let mut acc = pa.clone();
        with_threads(8, || acc.mul_assign(&pb));
        prop_assert_eq!(&acc, &with_threads(1, || pa.mul(&pb)));
        let mut acc = pa.clone();
        with_threads(8, || acc.add_assign(&pb));
        prop_assert_eq!(&acc, &with_threads(1, || pa.add(&pb)));
    }

    #[test]
    fn basis_conversion_is_thread_count_invariant(coeffs in arb_coeffs()) {
        let (q, p) = bases();
        let a = RnsPoly::from_i64_coeffs(&q, &coeffs);
        let conv_s = with_threads(1, || rns_convert(&a, &p));
        let conv_p = with_threads(8, || rns_convert(&a, &p));
        prop_assert_eq!(conv_s, conv_p);
        let up_s = with_threads(1, || modup(&a, &p));
        let up_p = with_threads(8, || modup(&a, &p));
        prop_assert_eq!(&up_s, &up_p);
        let down_s = with_threads(1, || moddown(&up_s, q.len()));
        let down_p = with_threads(8, || moddown(&up_p, q.len()));
        prop_assert_eq!(down_s, down_p);
    }

    #[test]
    fn rescale_is_thread_count_invariant(coeffs in arb_coeffs()) {
        let (q, _) = bases();
        let a = RnsPoly::from_i64_coeffs(&q, &coeffs);
        let r_s = with_threads(1, || rescale(&a));
        let r_p = with_threads(8, || rescale(&a));
        prop_assert_eq!(r_s, r_p);
    }

    #[test]
    fn ntt_kernels_are_thread_count_invariant(coeffs in arb_coeffs()) {
        // The full (kernel × thread count) matrix on the limb-parallel
        // transform path: every combination must produce the bit-exact
        // residues of the serial scalar oracle.
        let (q, _) = bases();
        let mut oracle_basis = q.clone();
        oracle_basis.set_kernel(KernelKind::Scalar);
        let oracle = RnsPoly::from_i64_coeffs(&oracle_basis, &coeffs);
        let want = with_threads(1, || oracle.clone().into_eval());
        for kind in KernelKind::ALL {
            let mut b = q.clone();
            b.set_kernel(kind);
            prop_assert_eq!(b.kernel(), kind);
            let p = RnsPoly::from_i64_coeffs(&b, &coeffs);
            for threads in [1usize, 8] {
                let got = with_threads(threads, || p.clone().into_eval());
                prop_assert_eq!(
                    got.all_residues(), want.all_residues(),
                    "kernel {} at {} threads diverged", kind.name(), threads
                );
                let back = with_threads(threads, || got.into_coeff());
                prop_assert_eq!(
                    back.all_residues(), p.all_residues(),
                    "kernel {} at {} threads failed round trip", kind.name(), threads
                );
            }
        }
    }

    #[test]
    fn shoup_operand_is_thread_count_invariant(a in arb_coeffs(), b in arb_coeffs()) {
        let (q, _) = bases();
        let pa = RnsPoly::from_i64_coeffs(&q, &a).into_eval();
        let pb = RnsPoly::from_i64_coeffs(&q, &b).into_eval();
        let op = ShoupOperand::new(&pb);
        let want = with_threads(1, || pa.mul(&pb));
        for threads in [1usize, 8] {
            let mut acc = pa.clone();
            with_threads(threads, || acc.mul_assign_shoup(&op));
            prop_assert_eq!(&acc, &want, "Shoup lanes diverged at {} threads", threads);
        }
    }

    #[test]
    fn automorphism_is_thread_count_invariant(coeffs in arb_coeffs(), ge in 0u64..5) {
        let (q, _) = bases();
        let two_n = 2 * N as u64;
        let g = he_math::modops::pow_mod(5, ge, two_n);
        let a = RnsPoly::from_i64_coeffs(&q, &coeffs);
        let s = with_threads(1, || a.automorphism(g));
        let p = with_threads(8, || a.automorphism(g));
        prop_assert_eq!(s, p);
    }
}
