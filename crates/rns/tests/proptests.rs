//! Property-based tests for the RNS layer: CRT reconstruction, ring
//! semantics, automorphism group laws, and conversion error bounds.

use he_rns::conv::{moddown, modup, rescale, rns_convert};
use he_rns::{RnsBasis, RnsPoly};
use proptest::prelude::*;

const N: usize = 16;

fn bases() -> (RnsBasis, RnsBasis) {
    let q = RnsBasis::generate(N, 28, 3);
    let p = RnsBasis::new(N, he_math::prime::ntt_prime_chain(30, 2 * N as u64, 2));
    (q, p)
}

fn arb_coeffs() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(-(1i64 << 20)..(1i64 << 20), N)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn centered_reconstruction_round_trips(coeffs in arb_coeffs()) {
        let (q, _) = bases();
        let poly = RnsPoly::from_i64_coeffs(&q, &coeffs);
        prop_assert_eq!(poly.to_centered_coeffs(), coeffs);
    }

    #[test]
    fn add_sub_round_trip(a in arb_coeffs(), b in arb_coeffs()) {
        let (q, _) = bases();
        let pa = RnsPoly::from_i64_coeffs(&q, &a);
        let pb = RnsPoly::from_i64_coeffs(&q, &b);
        prop_assert_eq!(pa.add(&pb).sub(&pb), pa);
    }

    #[test]
    fn ring_multiplication_is_commutative(a in arb_coeffs(), b in arb_coeffs()) {
        let (q, _) = bases();
        let pa = RnsPoly::from_i64_coeffs(&q, &a).into_eval();
        let pb = RnsPoly::from_i64_coeffs(&q, &b).into_eval();
        prop_assert_eq!(pa.mul(&pb), pb.mul(&pa));
    }

    #[test]
    fn mul_distributes_over_add(a in arb_coeffs(), b in arb_coeffs(), c in arb_coeffs()) {
        let (q, _) = bases();
        let pa = RnsPoly::from_i64_coeffs(&q, &a).into_eval();
        let pb = RnsPoly::from_i64_coeffs(&q, &b).into_eval();
        let pc = RnsPoly::from_i64_coeffs(&q, &c).into_eval();
        let lhs = pa.mul(&pb.add(&pc));
        let rhs = pa.mul(&pb).add(&pa.mul(&pc));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn automorphism_composes_multiplicatively(coeffs in arb_coeffs(), g1e in 0u64..5, g2e in 0u64..5) {
        // τ_{g1} ∘ τ_{g2} = τ_{g1·g2 mod 2N} for g = 5^e.
        let (q, _) = bases();
        let two_n = 2 * N as u64;
        let g1 = he_math::modops::pow_mod(5, g1e, two_n);
        let g2 = he_math::modops::pow_mod(5, g2e, two_n);
        let p = RnsPoly::from_i64_coeffs(&q, &coeffs);
        let lhs = p.automorphism(g2).automorphism(g1);
        let rhs = p.automorphism((g1 * g2) % two_n);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn automorphism_preserves_addition(a in arb_coeffs(), b in arb_coeffs()) {
        let (q, _) = bases();
        let pa = RnsPoly::from_i64_coeffs(&q, &a);
        let pb = RnsPoly::from_i64_coeffs(&q, &b);
        prop_assert_eq!(
            pa.add(&pb).automorphism(3),
            pa.automorphism(3).add(&pb.automorphism(3))
        );
    }

    #[test]
    fn conversion_error_is_bounded_multiple_of_q(coeffs in arb_coeffs()) {
        let (q, p) = bases();
        let a = RnsPoly::from_i64_coeffs(&q, &coeffs);
        let out = rns_convert(&a, &p);
        let l = q.len() as u64;
        // Check every coefficient's residue against a + e·Q, 0 ≤ e ≤ L,
        // where a's representative lies in [0, Q).
        for (i, &pi) in p.primes().iter().enumerate() {
            let q_mod = q.modulus_product().rem_u64(pi);
            for c in 0..N {
                // Representative of the signed coefficient in [0, Q).
                let rep = {
                    let (neg, mag) = a.coeff_to_centered_bigint(c);
                    if neg {
                        let mut qq = q.modulus_product();
                        qq.sub_assign(&mag);
                        qq.rem_u64(pi)
                    } else {
                        mag.rem_u64(pi)
                    }
                };
                let got = out.residues(i)[c];
                let ok = (0..=l).any(|e| {
                    ((rep as u128 + e as u128 * q_mod as u128) % pi as u128) as u64 == got
                });
                prop_assert!(ok, "coeff {c}, prime {pi}");
            }
        }
    }

    #[test]
    fn moddown_inverts_scaled_modup(coeffs in arb_coeffs()) {
        let (q, p) = bases();
        let a = RnsPoly::from_i64_coeffs(&q, &coeffs);
        let up = modup(&a, &p);
        let full = up.basis().clone();
        let p_prod: Vec<u64> = full
            .primes()
            .iter()
            .map(|&f| {
                p.primes()
                    .iter()
                    .fold(1u64, |acc, &pi| he_math::modops::mul_mod(acc, pi % f, f))
            })
            .collect();
        let down = moddown(&up.mul_scalar_per_prime(&p_prod), q.len());
        prop_assert_eq!(down.to_centered_coeffs(), coeffs);
    }

    #[test]
    fn rescale_approximates_division(scale_mult in 1i64..1000, noise in -3i64..4) {
        let (q, _) = bases();
        let ql = *q.primes().last().unwrap() as i64;
        let coeffs: Vec<i64> = (0..N as i64).map(|i| scale_mult * ql * (i - 8) + noise).collect();
        let a = RnsPoly::from_i64_coeffs(&q, &coeffs);
        let r = rescale(&a);
        let got = r.to_centered_coeffs();
        for (i, &g) in got.iter().enumerate() {
            let want = scale_mult * (i as i64 - 8);
            prop_assert!((g - want).abs() <= 1, "coeff {i}: {g} vs {want}");
        }
    }

    #[test]
    fn truncation_preserves_small_values(coeffs in arb_coeffs()) {
        let (q, _) = bases();
        let a = RnsPoly::from_i64_coeffs(&q, &coeffs);
        prop_assert_eq!(a.truncate_basis(2).to_centered_coeffs(), coeffs);
    }
}
