//! Serde round-trip tests for the RNS types (feature `serde`).
#![cfg(feature = "serde")]

use he_rns::{RnsBasis, RnsPoly};

#[test]
fn basis_round_trips_through_json() {
    let b = RnsBasis::generate(32, 28, 3);
    let json = serde_json::to_string(&b).unwrap();
    let back: RnsBasis = serde_json::from_str(&json).unwrap();
    assert_eq!(back, b);
}

#[test]
fn poly_round_trips_through_json() {
    let b = RnsBasis::generate(16, 28, 2);
    let p = RnsPoly::from_i64_coeffs(&b, &(0..16).map(|i| i * 7 - 50).collect::<Vec<_>>());
    let json = serde_json::to_string(&p).unwrap();
    let back: RnsPoly = serde_json::from_str(&json).unwrap();
    assert_eq!(back, p);
    // Eval form survives too.
    let e = p.into_eval();
    let back: RnsPoly = serde_json::from_str(&serde_json::to_string(&e).unwrap()).unwrap();
    assert_eq!(back, e);
}

#[test]
fn tampered_payloads_are_rejected() {
    let b = RnsBasis::generate(16, 28, 2);
    let p = RnsPoly::from_i64_coeffs(&b, &[1i64; 16]);
    let mut v: serde_json::Value = serde_json::to_value(&p).unwrap();
    // Oversized residue must be rejected.
    v["residues"][0][0] = serde_json::json!(u64::MAX);
    assert!(serde_json::from_value::<RnsPoly>(v).is_err());
    // Non-NTT prime in the basis must be rejected.
    let mut bv: serde_json::Value = serde_json::to_value(&b).unwrap();
    bv["primes"][0] = serde_json::json!(101u64); // 101 - 1 is not divisible by 2N = 32
    assert!(serde_json::from_value::<RnsBasis>(bv).is_err());
    // Residue-count mismatch must be rejected.
    let mut v: serde_json::Value = serde_json::to_value(&p).unwrap();
    v["residues"].as_array_mut().unwrap().pop();
    assert!(serde_json::from_value::<RnsPoly>(v).is_err());
}
