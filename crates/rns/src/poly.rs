//! RNS polynomials: ring elements stored residue-wise per prime.

use he_math::modops::{add_mod, neg_mod, reduce_i64, sub_mod};
use he_math::shoup::{mul_shoup_lane, shoup_quotient};
use he_math::{BigUint, ShoupMul};

use crate::basis::RnsBasis;

/// Representation of the residue vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Form {
    /// Coefficients of the polynomial (power basis).
    Coeff,
    /// Pointwise evaluations (NTT domain, bit-reversed order).
    Eval,
}

/// A polynomial in `Z_Q[X]/(X^N + 1)` with `Q` given by an [`RnsBasis`].
///
/// The value is stored as one length-N residue vector per basis prime.
/// Pointwise operations require both operands in the same form and basis;
/// form conversions are explicit ([`into_eval`] / [`into_coeff`]) so that
/// operator-level instrumentation (the Poseidon trace layer) sees every NTT.
///
/// [`into_eval`]: Self::into_eval
/// [`into_coeff`]: Self::into_coeff
///
/// # Examples
///
/// ```
/// use he_rns::{RnsBasis, RnsPoly};
/// let basis = RnsBasis::generate(32, 28, 2);
/// let x = RnsPoly::from_i64_coeffs(&basis, &{
///     let mut c = vec![0i64; 32];
///     c[1] = 1;
///     c
/// });
/// let x2 = x.clone().into_eval().mul(&x.into_eval()).into_coeff();
/// assert_eq!(x2.to_centered_coeffs()[2], 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RnsPoly {
    basis: RnsBasis,
    residues: Vec<Vec<u64>>,
    form: Form,
}

impl RnsPoly {
    /// The all-zero polynomial in the given form.
    pub fn zero(basis: &RnsBasis, form: Form) -> Self {
        Self {
            basis: basis.clone(),
            residues: vec![vec![0; basis.n()]; basis.len()],
            form,
        }
    }

    /// Builds a polynomial from signed coefficients (reduced per prime).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != N`.
    pub fn from_i64_coeffs(basis: &RnsBasis, coeffs: &[i64]) -> Self {
        assert_eq!(coeffs.len(), basis.n(), "coefficient count must equal N");
        let residues = basis
            .primes()
            .iter()
            .map(|&q| coeffs.iter().map(|&c| reduce_i64(c, q)).collect())
            .collect();
        Self {
            basis: basis.clone(),
            residues,
            form: Form::Coeff,
        }
    }

    /// Builds a polynomial from raw residues (must already be reduced).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or unreduced residues.
    pub fn from_residues(basis: &RnsBasis, residues: Vec<Vec<u64>>, form: Form) -> Self {
        assert_eq!(residues.len(), basis.len(), "one residue vector per prime");
        for (r, &q) in residues.iter().zip(basis.primes()) {
            assert_eq!(r.len(), basis.n(), "residue vector must have length N");
            debug_assert!(r.iter().all(|&v| v < q), "residues must be reduced");
        }
        Self {
            basis: basis.clone(),
            residues,
            form,
        }
    }

    /// The basis this polynomial lives in.
    #[inline]
    pub fn basis(&self) -> &RnsBasis {
        &self.basis
    }

    /// Current representation form.
    #[inline]
    pub fn form(&self) -> Form {
        self.form
    }

    /// Ring degree `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.basis.n()
    }

    /// Number of RNS components (basis length).
    #[inline]
    pub fn level_count(&self) -> usize {
        self.basis.len()
    }

    /// Residue vector for prime index `j`.
    #[inline]
    pub fn residues(&self, j: usize) -> &[u64] {
        &self.residues[j]
    }

    /// All residue vectors.
    #[inline]
    pub fn all_residues(&self) -> &[Vec<u64>] {
        &self.residues
    }

    /// Mutable residue vectors (for in-place kernels; invariants are the
    /// caller's responsibility, enforced by debug assertions downstream).
    #[inline]
    pub fn all_residues_mut(&mut self) -> &mut [Vec<u64>] {
        &mut self.residues
    }

    /// Converts to evaluation form (applies the forward NTT per prime).
    /// No-op if already in evaluation form.
    ///
    /// Limbs transform independently, so the per-prime NTTs dispatch
    /// across the [`poseidon_par`] engine (the software analogue of the
    /// accelerator streaming one limb per HBM channel).
    pub fn into_eval(mut self) -> Self {
        if self.form == Form::Coeff {
            // Injection point for the `RnsResidue` fault site: corrupt the
            // limbs serially, before the parallel dispatch, so the firing
            // order is independent of thread count.
            #[cfg(feature = "faults")]
            poseidon_faults::tamper_rows(
                poseidon_faults::FaultSite::RnsResidue,
                &mut self.residues,
            );
            let n = self.basis.n();
            let tables = self.basis.tables();
            poseidon_par::par_for_each_mut(&mut self.residues, n, |j, r| {
                tables[j].forward(r);
            });
            self.form = Form::Eval;
        }
        self
    }

    /// Converts to coefficient form (applies the inverse NTT per prime).
    /// No-op if already in coefficient form.
    pub fn into_coeff(mut self) -> Self {
        if self.form == Form::Eval {
            #[cfg(feature = "faults")]
            poseidon_faults::tamper_rows(
                poseidon_faults::FaultSite::RnsResidue,
                &mut self.residues,
            );
            let n = self.basis.n();
            let tables = self.basis.tables();
            poseidon_par::par_for_each_mut(&mut self.residues, n, |j, r| {
                tables[j].inverse(r);
            });
            self.form = Form::Coeff;
        }
        self
    }

    fn assert_compatible(&self, other: &Self) {
        assert_eq!(self.basis, other.basis, "operands must share a basis");
        assert_eq!(self.form, other.form, "operands must share a form");
    }

    /// Element-wise modular addition (the MA operator), any form.
    ///
    /// Like every pointwise operation here, the per-prime work is
    /// dispatched limb-parallel through [`poseidon_par`].
    pub fn add(&self, other: &Self) -> Self {
        self.assert_compatible(other);
        let n = self.basis.n();
        #[cfg(feature = "telemetry")]
        let _span = crate::tel::pointwise().span((self.residues.len() * n) as u64);
        let primes = self.basis.primes();
        let residues = poseidon_par::par_map(self.residues.len(), n, |j| {
            let q = primes[j];
            self.residues[j]
                .iter()
                .zip(&other.residues[j])
                .map(|(&x, &y)| add_mod(x, y, q))
                .collect()
        });
        Self {
            basis: self.basis.clone(),
            residues,
            form: self.form,
        }
    }

    /// In-place element-wise modular addition: `self += other`.
    ///
    /// The allocation-free sibling of [`add`](Self::add), used by
    /// accumulation loops (keyswitch digit sums).
    pub fn add_assign(&mut self, other: &Self) {
        self.assert_compatible(other);
        let n = self.basis.n();
        #[cfg(feature = "telemetry")]
        let _span = crate::tel::pointwise().span((self.residues.len() * n) as u64);
        let primes = self.basis.primes();
        poseidon_par::par_for_each_mut(&mut self.residues, n, |j, r| {
            let q = primes[j];
            for (x, &y) in r.iter_mut().zip(&other.residues[j]) {
                *x = add_mod(*x, y, q);
            }
        });
    }

    /// Element-wise modular subtraction.
    pub fn sub(&self, other: &Self) -> Self {
        self.assert_compatible(other);
        let n = self.basis.n();
        #[cfg(feature = "telemetry")]
        let _span = crate::tel::pointwise().span((self.residues.len() * n) as u64);
        let primes = self.basis.primes();
        let residues = poseidon_par::par_map(self.residues.len(), n, |j| {
            let q = primes[j];
            self.residues[j]
                .iter()
                .zip(&other.residues[j])
                .map(|(&x, &y)| sub_mod(x, y, q))
                .collect()
        });
        Self {
            basis: self.basis.clone(),
            residues,
            form: self.form,
        }
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        let n = self.basis.n();
        #[cfg(feature = "telemetry")]
        let _span = crate::tel::pointwise().span((self.residues.len() * n) as u64);
        let primes = self.basis.primes();
        let residues = poseidon_par::par_map(self.residues.len(), n, |j| {
            let q = primes[j];
            self.residues[j].iter().map(|&x| neg_mod(x, q)).collect()
        });
        Self {
            basis: self.basis.clone(),
            residues,
            form: self.form,
        }
    }

    /// Element-wise modular multiplication (the MM operator).
    ///
    /// # Panics
    ///
    /// Panics unless both operands are in evaluation form — pointwise
    /// multiplication of coefficients is not ring multiplication.
    pub fn mul(&self, other: &Self) -> Self {
        self.assert_compatible(other);
        assert_eq!(self.form, Form::Eval, "ring product requires eval form");
        let n = self.basis.n();
        #[cfg(feature = "telemetry")]
        let _span = crate::tel::pointwise().span((self.residues.len() * n) as u64);
        let reducers = self.basis.reducers();
        let residues = poseidon_par::par_map(self.residues.len(), n, |j| {
            let red = &reducers[j];
            self.residues[j]
                .iter()
                .zip(&other.residues[j])
                .map(|(&x, &y)| red.mul(x, y))
                .collect()
        });
        Self {
            basis: self.basis.clone(),
            residues,
            form: self.form,
        }
    }

    /// In-place element-wise modular multiplication: `self *= other`.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are in evaluation form.
    pub fn mul_assign(&mut self, other: &Self) {
        self.assert_compatible(other);
        assert_eq!(self.form, Form::Eval, "ring product requires eval form");
        let n = self.basis.n();
        #[cfg(feature = "telemetry")]
        let _span = crate::tel::pointwise().span((self.residues.len() * n) as u64);
        let reducers = self.basis.reducers();
        poseidon_par::par_for_each_mut(&mut self.residues, n, |j, r| {
            let red = &reducers[j];
            for (x, &y) in r.iter_mut().zip(&other.residues[j]) {
                *x = red.mul(*x, y);
            }
        });
    }

    /// In-place multiplication by a precomputed fixed operand:
    /// `self *= op`, with every reduction on the Shoup fast path.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is in evaluation form and shares the operand's
    /// basis.
    pub fn mul_assign_shoup(&mut self, op: &ShoupOperand) {
        assert_eq!(self.basis, op.basis, "operands must share a basis");
        assert_eq!(self.form, Form::Eval, "ring product requires eval form");
        let n = self.basis.n();
        #[cfg(feature = "telemetry")]
        let _span = crate::tel::pointwise().span((self.residues.len() * n) as u64);
        let primes = self.basis.primes();
        poseidon_par::par_for_each_mut(&mut self.residues, n, |j, r| {
            let q = primes[j];
            let ws = &op.residues[j];
            let wqs = &op.quotients[j];
            for ((x, &w), &wq) in r.iter_mut().zip(ws).zip(wqs) {
                *x = mul_shoup_lane(*x, w, wq, q);
            }
        });
    }

    /// Multiplies every residue of prime `j` by the per-prime scalar
    /// `scalars[j]`.
    ///
    /// # Panics
    ///
    /// Panics if `scalars.len()` differs from the basis length.
    pub fn mul_scalar_per_prime(&self, scalars: &[u64]) -> Self {
        assert_eq!(scalars.len(), self.basis.len(), "one scalar per prime");
        let n = self.basis.n();
        #[cfg(feature = "telemetry")]
        let _span = crate::tel::pointwise().span((self.residues.len() * n) as u64);
        // One Shoup precompute per limb amortised over N residues: the
        // fixed-operand path (two multiplies + csub per element) replaces
        // the per-element Barrett reduction.
        let primes = self.basis.primes();
        let residues = poseidon_par::par_map(self.residues.len(), n, |j| {
            let q = primes[j];
            let m = ShoupMul::new(scalars[j] % q, q);
            self.residues[j].iter().map(|&x| m.mul(x)).collect()
        });
        Self {
            basis: self.basis.clone(),
            residues,
            form: self.form,
        }
    }

    /// Restricts to the first `count` RNS components (level truncation).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or exceeds the current component count.
    pub fn truncate_basis(&self, count: usize) -> Self {
        let basis = self.basis.prefix(count);
        Self {
            basis,
            residues: self.residues[..count].to_vec(),
            form: self.form,
        }
    }

    /// Applies the Galois automorphism `X ↦ X^g` for odd `g` (paper Eq. 4):
    /// coefficient `i` moves to index `i·g mod N` with sign `−1` whenever
    /// `i·g mod 2N ≥ N` (the negacyclic wraparound).
    ///
    /// This is the *Automorphism* operator of the paper — the reference
    /// implementation that `poseidon-core`'s HFAuto is validated against.
    ///
    /// # Panics
    ///
    /// Panics unless in coefficient form, or if `g` is even.
    ///
    /// # Examples
    ///
    /// ```
    /// use he_rns::{RnsBasis, RnsPoly};
    /// let b = RnsBasis::generate(16, 28, 1);
    /// let mut c = vec![0i64; 16];
    /// c[1] = 1; // X
    /// let x = RnsPoly::from_i64_coeffs(&b, &c);
    /// // X ↦ X^3 under g = 3.
    /// let y = x.automorphism(3);
    /// assert_eq!(y.to_centered_coeffs()[3], 1);
    /// ```
    pub fn automorphism(&self, g: u64) -> Self {
        assert_eq!(
            self.form,
            Form::Coeff,
            "automorphism operates on coefficients"
        );
        assert_eq!(g % 2, 1, "Galois element must be odd");
        let n = self.n() as u64;
        let two_n = 2 * n;
        let primes = self.basis.primes();
        let residues = poseidon_par::par_map(self.residues.len(), self.n(), |j| {
            let q = primes[j];
            let mut out = vec![0u64; n as usize];
            for (i, &v) in self.residues[j].iter().enumerate() {
                let e = (i as u64 * g) % two_n;
                if e < n {
                    out[e as usize] = v;
                } else {
                    out[(e - n) as usize] = neg_mod(v, q);
                }
            }
            out
        });
        Self {
            basis: self.basis.clone(),
            residues,
            form: Form::Coeff,
        }
    }

    /// Applies the Galois automorphism `X ↦ X^g` in the **evaluation
    /// domain**: a pure slot permutation, identical for every limb and
    /// free of the negacyclic sign logic (see
    /// [`he_ntt::galois_permutation`]).
    ///
    /// Bit-exact with the coefficient-domain route:
    /// `p.automorphism(g).into_eval() == p.clone().into_eval().automorphism_eval(g)`.
    /// This is the primitive behind rotation hoisting — digits already in
    /// evaluation form can be rotated without any NTT traffic.
    ///
    /// # Panics
    ///
    /// Panics unless in evaluation form, or if `g` is even.
    pub fn automorphism_eval(&self, g: u64) -> Self {
        assert_eq!(
            self.form,
            Form::Eval,
            "eval-domain automorphism needs evaluation form"
        );
        let n = self.n();
        #[cfg(feature = "telemetry")]
        let _span = crate::tel::pointwise().span((self.residues.len() * n) as u64);
        // One index table for all limbs: the slot exponent law depends
        // only on (j, N), never on the prime.
        let perm = he_ntt::galois_permutation(n, g);
        let residues = poseidon_par::par_map(self.residues.len(), n, |j| {
            let src = &self.residues[j];
            perm.iter().map(|&k| src[k]).collect()
        });
        Self {
            basis: self.basis.clone(),
            residues,
            form: Form::Eval,
        }
    }

    /// Consumes the polynomial, yielding its residue vectors (so callers
    /// can recycle the allocations through `poseidon_par::scratch`).
    #[inline]
    pub fn into_residues(self) -> Vec<Vec<u64>> {
        self.residues
    }

    /// CRT-reconstructs coefficient `idx` as a centred big integer in
    /// `(-Q/2, Q/2]`, returned as `(sign_negative, magnitude)`.
    ///
    /// # Panics
    ///
    /// Panics unless in coefficient form.
    pub fn coeff_to_centered_bigint(&self, idx: usize) -> (bool, BigUint) {
        assert_eq!(self.form, Form::Coeff, "reconstruction needs coeff form");
        let q = self.basis.modulus_product();
        let hat_inv = self.basis.qhat_inv_mod_self();
        // v = Σ_j [a_j · q̂_j⁻¹ mod q_j] · q̂_j, then reduce mod Q.
        let mut acc = BigUint::zero();
        for (j, &hi) in hat_inv.iter().enumerate() {
            let t = self.basis.reducers()[j].mul(self.residues[j][idx], hi);
            let mut qhat = BigUint::one();
            for (i, &p) in self.basis.primes().iter().enumerate() {
                if i != j {
                    qhat.mul_u64_assign(p);
                }
            }
            qhat.mul_u64_assign(t);
            acc.add_assign(&qhat);
        }
        // acc < L·Q; reduce by subtracting Q at most L times.
        while acc >= q {
            acc.sub_assign(&q);
        }
        let half = q.half();
        if acc > half {
            (true, q - &acc)
        } else {
            (false, acc)
        }
    }

    /// Centred coefficients as `i64` (values must fit; intended for tests
    /// and small-noise polynomials).
    ///
    /// # Panics
    ///
    /// Panics unless in coefficient form, or if a centred value exceeds
    /// `i64`.
    pub fn to_centered_coeffs(&self) -> Vec<i64> {
        (0..self.n())
            .map(|i| {
                let (neg, mag) = self.coeff_to_centered_bigint(i);
                assert!(mag.bits() <= 63, "coefficient does not fit i64");
                let v = mag.limbs().first().copied().unwrap_or(0) as i64;
                if neg {
                    -v
                } else {
                    v
                }
            })
            .collect()
    }

    /// Centred coefficients as `f64` (with precision loss for huge values);
    /// used by the CKKS decoder.
    ///
    /// # Panics
    ///
    /// Panics unless in coefficient form.
    pub fn to_centered_f64(&self) -> Vec<f64> {
        (0..self.n())
            .map(|i| {
                let (neg, mag) = self.coeff_to_centered_bigint(i);
                let v = mag.to_f64();
                if neg {
                    -v
                } else {
                    v
                }
            })
            .collect()
    }
}

/// An evaluation-form polynomial prepared as a *fixed* multiplicand: every
/// residue carries its precomputed Shoup quotient `floor(w·2^64/q_j)`.
///
/// This is the RNS-vector analogue of [`ShoupMul`] — the software
/// counterpart of the paper's observation that one factor of `CMult` (the
/// encoded plaintext) is known ahead of the ciphertext. Building the
/// operand costs one `u128` division per residue; each subsequent
/// [`RnsPoly::mul_assign_shoup`] then replaces the per-element Barrett
/// reduction with two multiplies and a conditional subtraction. It pays for
/// itself whenever the operand multiplies more than one residue vector
/// (e.g. both ciphertext components in plaintext multiplication).
///
/// # Examples
///
/// ```
/// use he_rns::{RnsBasis, RnsPoly, ShoupOperand};
/// let b = RnsBasis::generate(16, 28, 2);
/// let x = RnsPoly::from_i64_coeffs(&b, &[3i64; 16]).into_eval();
/// let m_poly = RnsPoly::from_i64_coeffs(&b, &[2i64; 16]).into_eval();
/// let mut y = x.clone();
/// y.mul_assign_shoup(&ShoupOperand::new(&m_poly));
/// assert_eq!(y, x.mul(&m_poly)); // bit-identical to the Barrett path
/// ```
#[derive(Debug, Clone)]
pub struct ShoupOperand {
    basis: RnsBasis,
    /// The operand residues `w` (reduced), one vector per prime.
    residues: Vec<Vec<u64>>,
    /// Per-residue Shoup quotients, same shape as `residues`.
    quotients: Vec<Vec<u64>>,
}

impl ShoupOperand {
    /// Precomputes Shoup lanes for an evaluation-form polynomial.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in evaluation form.
    pub fn new(p: &RnsPoly) -> Self {
        assert_eq!(p.form, Form::Eval, "fixed multiplicands live in eval form");
        let primes = p.basis.primes();
        let quotients = p
            .residues
            .iter()
            .zip(primes)
            .map(|(r, &q)| r.iter().map(|&w| shoup_quotient(w, q)).collect())
            .collect();
        Self {
            basis: p.basis.clone(),
            residues: p.residues.clone(),
            quotients,
        }
    }

    /// The basis the operand lives in.
    #[inline]
    pub fn basis(&self) -> &RnsBasis {
        &self.basis
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn basis() -> RnsBasis {
        RnsBasis::generate(16, 28, 3)
    }

    #[test]
    fn shoup_operand_matches_barrett_mul() {
        let b = basis();
        let coeffs: Vec<i64> = (0..16).map(|i| 7 * i - 50).collect();
        let other: Vec<i64> = (0..16).map(|i| 3 - 2 * i).collect();
        let x = RnsPoly::from_i64_coeffs(&b, &coeffs).into_eval();
        let m_poly = RnsPoly::from_i64_coeffs(&b, &other).into_eval();
        let want = x.mul(&m_poly);
        let mut got = x.clone();
        got.mul_assign_shoup(&ShoupOperand::new(&m_poly));
        assert_eq!(want, got);
    }

    #[test]
    fn scalar_per_prime_matches_reference() {
        let b = basis();
        let x = RnsPoly::from_i64_coeffs(&b, &[5i64; 16]);
        // Scalars above q exercise the internal reduction.
        let scalars: Vec<u64> = b.primes().iter().map(|&q| q + 3).collect();
        let got = x.mul_scalar_per_prime(&scalars);
        assert_eq!(got.to_centered_coeffs(), vec![15i64; 16]);
    }

    #[test]
    fn add_matches_signed_semantics() {
        let b = basis();
        let x = RnsPoly::from_i64_coeffs(&b, &[3i64; 16]);
        let y = RnsPoly::from_i64_coeffs(&b, &[-5i64; 16]);
        assert_eq!(x.add(&y).to_centered_coeffs(), vec![-2i64; 16]);
        assert_eq!(x.sub(&y).to_centered_coeffs(), vec![8i64; 16]);
        assert_eq!(y.neg().to_centered_coeffs(), vec![5i64; 16]);
    }

    #[test]
    fn eval_round_trip_preserves_value() {
        let b = basis();
        let coeffs: Vec<i64> = (0..16).map(|i| i * i - 40).collect();
        let x = RnsPoly::from_i64_coeffs(&b, &coeffs);
        let y = x.clone().into_eval().into_coeff();
        assert_eq!(x, y);
    }

    #[test]
    fn ring_multiplication_via_eval() {
        let b = basis();
        // (1 + X) · (1 - X) = 1 - X²
        let mut c1 = vec![0i64; 16];
        c1[0] = 1;
        c1[1] = 1;
        let mut c2 = vec![0i64; 16];
        c2[0] = 1;
        c2[1] = -1;
        let p = RnsPoly::from_i64_coeffs(&b, &c1)
            .into_eval()
            .mul(&RnsPoly::from_i64_coeffs(&b, &c2).into_eval())
            .into_coeff();
        let got = p.to_centered_coeffs();
        let mut want = vec![0i64; 16];
        want[0] = 1;
        want[2] = -1;
        assert_eq!(got, want);
    }

    #[test]
    fn centered_reconstruction_handles_negatives() {
        let b = basis();
        let coeffs: Vec<i64> = (0..16)
            .map(|i| if i % 2 == 0 { -1000 } else { 1000 })
            .collect();
        let x = RnsPoly::from_i64_coeffs(&b, &coeffs);
        assert_eq!(x.to_centered_coeffs(), coeffs);
    }

    #[test]
    fn truncate_drops_highest_components() {
        let b = basis();
        let x = RnsPoly::from_i64_coeffs(&b, &[7i64; 16]);
        let t = x.truncate_basis(2);
        assert_eq!(t.level_count(), 2);
        assert_eq!(t.to_centered_coeffs(), vec![7i64; 16]);
    }

    #[test]
    fn automorphism_eval_matches_coefficient_route() {
        let b = basis();
        let coeffs: Vec<i64> = (0..16).map(|i| 3 * i - 20).collect();
        let p = RnsPoly::from_i64_coeffs(&b, &coeffs);
        for g in [3u64, 5, 15, 31] {
            let via_coeff = p.automorphism(g).into_eval();
            let via_eval = p.clone().into_eval().automorphism_eval(g);
            assert_eq!(via_coeff, via_eval, "g = {g}");
        }
    }

    #[test]
    #[should_panic(expected = "evaluation form")]
    fn automorphism_eval_rejects_coeff_form() {
        let b = basis();
        let p = RnsPoly::from_i64_coeffs(&b, &[1i64; 16]);
        let _ = p.automorphism_eval(3);
    }

    #[test]
    #[should_panic(expected = "eval form")]
    fn mul_rejects_coeff_form() {
        let b = basis();
        let x = RnsPoly::from_i64_coeffs(&b, &[1i64; 16]);
        let _ = x.mul(&x);
    }
}

#[cfg(feature = "serde")]
mod serde_impls {
    //! Serde support: residues plus basis plus form, with residue-range
    //! validation on deserialise.
    use super::{Form, RnsPoly};
    use crate::basis::RnsBasis;
    use serde::de::Error as _;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    impl Serialize for Form {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            match self {
                Form::Coeff => "coeff".serialize(s),
                Form::Eval => "eval".serialize(s),
            }
        }
    }

    impl<'de> Deserialize<'de> for Form {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            match String::deserialize(d)?.as_str() {
                "coeff" => Ok(Form::Coeff),
                "eval" => Ok(Form::Eval),
                other => Err(D::Error::custom(format!("unknown form `{other}`"))),
            }
        }
    }

    #[derive(Serialize, Deserialize)]
    struct PolyRepr {
        basis: RnsBasis,
        residues: Vec<Vec<u64>>,
        form: Form,
    }

    impl Serialize for RnsPoly {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            PolyRepr {
                basis: self.basis.clone(),
                residues: self.residues.clone(),
                form: self.form,
            }
            .serialize(s)
        }
    }

    impl<'de> Deserialize<'de> for RnsPoly {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            let repr = PolyRepr::deserialize(d)?;
            if repr.residues.len() != repr.basis.len() {
                return Err(D::Error::custom("residue vector count mismatch"));
            }
            for (r, &q) in repr.residues.iter().zip(repr.basis.primes()) {
                if r.len() != repr.basis.n() {
                    return Err(D::Error::custom("residue length mismatch"));
                }
                if r.iter().any(|&v| v >= q) {
                    return Err(D::Error::custom("unreduced residue"));
                }
            }
            Ok(RnsPoly::from_residues(
                &repr.basis,
                repr.residues,
                repr.form,
            ))
        }
    }
}
