//! Residue Number System (RNS) layer for RNS-CKKS.
//!
//! Large ciphertext moduli `Q = q_0 · q_1 · … · q_L` are never materialised;
//! every polynomial is stored as one residue vector per prime (the *RNS
//! components* of the paper's §II-A.3). This crate provides:
//!
//! * [`basis::RnsBasis`] — an ordered set of NTT primes with per-prime
//!   transform tables and the precomputed constants (`q̂_j`, `q̂_j⁻¹ mod
//!   q_j`, cross-basis `q̂_j mod p_i`) that fast basis conversion needs.
//! * [`poly::RnsPoly`] — a polynomial in `Z_Q[X]/(X^N+1)` held residue-wise,
//!   in either coefficient or evaluation (NTT) form.
//! * [`conv`] — `RNSconv` (paper Eq. 1, the HPS fast basis conversion),
//!   `Modup` (Eq. 3), `Moddown` (Eq. 2), and the RNS `Rescale` step — the
//!   arithmetic backbone of Keyswitch and Rescale.
//!
//! # Examples
//!
//! ```
//! use he_rns::basis::RnsBasis;
//! use he_rns::poly::RnsPoly;
//!
//! let basis = RnsBasis::generate(64, 30, 3);
//! let a = RnsPoly::from_i64_coeffs(&basis, &[2i64; 64]);
//! let sq = a.clone().into_eval().mul(&a.clone().into_eval()).into_coeff();
//! // (2·(1+X+…))² has constant coefficient 4 - cross terms wrap, but the
//! // residues stay consistent across all primes:
//! assert_eq!(sq.basis().len(), 3);
//! ```

pub mod basis;
pub mod conv;
pub mod integrity;
pub mod poly;

/// Telemetry scopes for the RNS kernels. With the `telemetry` feature off,
/// the module and every call site compile away.
#[cfg(feature = "telemetry")]
pub(crate) mod tel {
    use poseidon_telemetry::{Metric, Registry};
    use std::sync::{Arc, OnceLock};

    /// Element-wise limb loops: add/sub/neg/mul/scalar-mul (items = limbs·N).
    pub fn pointwise() -> &'static Arc<Metric> {
        static M: OnceLock<Arc<Metric>> = OnceLock::new();
        M.get_or_init(|| Registry::global().scope("rns.pointwise"))
    }

    /// Fast basis conversion, paper Eq. 1 (items = source limbs·N).
    pub fn convert() -> &'static Arc<Metric> {
        static M: OnceLock<Arc<Metric>> = OnceLock::new();
        M.get_or_init(|| Registry::global().scope("rns.convert"))
    }

    /// Moddown, paper Eq. 2 (items = full-basis limbs·N).
    pub fn moddown() -> &'static Arc<Metric> {
        static M: OnceLock<Arc<Metric>> = OnceLock::new();
        M.get_or_init(|| Registry::global().scope("rns.moddown"))
    }

    /// RNS rescale kernel (items = limbs·N).
    pub fn rescale() -> &'static Arc<Metric> {
        static M: OnceLock<Arc<Metric>> = OnceLock::new();
        M.get_or_init(|| Registry::global().scope("rescale"))
    }
}

pub use basis::RnsBasis;
pub use integrity::{GuardedPoly, IntegrityError};
pub use poly::{Form, RnsPoly, ShoupOperand};
