//! Fast basis conversion and the Modup/Moddown/Rescale kernels.
//!
//! These implement the paper's Eq. 1–3 exactly:
//!
//! * `RNSconv(a_B → C)` — the HPS *approximate* fast basis conversion:
//!   `a_C[i] = Σ_j ([a_j · q̂_j⁻¹]_{q_j} · q̂_j) mod p_i`. The result equals
//!   `a + e·Q` for some small `0 ≤ e < L`, which downstream Moddown divides
//!   away (the classic RNS-CKKS noise argument).
//! * `Modup(a_Q) → a_{Q∪P}` — extend a polynomial to the keyswitching basis.
//! * `Moddown(ã_{Q∪P}) → ((ã_Q − conv(ã_P)) · P⁻¹)_Q` — exact scaled
//!   reduction back to the ciphertext basis.
//! * `rescale` — drop the last chain prime and rescale by its inverse,
//!   the RNS realisation of CKKS's `Rescale` (paper §II-A.3).
//!
//! All kernels operate on **coefficient-form** polynomials (the conversion
//! mixes residues across primes, which is only meaningful on coefficients);
//! they assert this precondition.

use crate::basis::RnsBasis;
use crate::poly::{Form, RnsPoly};
use he_math::modops::{inv_mod_prime, sub_mod};

/// Converts `a` from its basis `B` into basis `target` (paper Eq. 1).
///
/// The output is the HPS approximation `a + e·Q_B (mod target)` with
/// `0 ≤ e < |B|`; callers that need exactness follow up with a Moddown-style
/// correction.
///
/// # Panics
///
/// Panics if `a` is not in coefficient form or ring degrees differ.
///
/// # Examples
///
/// ```
/// use he_rns::{RnsBasis, RnsPoly};
/// use he_rns::conv::rns_convert;
/// let b = RnsBasis::generate(16, 28, 2);
/// let p = RnsBasis::new(16, he_math::prime::ntt_prime_chain(30, 32, 1));
/// let a = RnsPoly::from_i64_coeffs(&b, &[42i64; 16]);
/// let out = rns_convert(&a, &p);
/// // The result is congruent to 42 + e·Q for some small e ≥ 0.
/// let p0 = p.primes()[0];
/// let q_mod = b.modulus_product().rem_u64(p0);
/// let got = out.residues(0)[0];
/// assert!((0..2u64).any(|e| (42 + e as u128 * q_mod as u128) % p0 as u128 == got as u128));
/// ```
pub fn rns_convert(a: &RnsPoly, target: &RnsBasis) -> RnsPoly {
    assert_eq!(a.form(), Form::Coeff, "RNSconv operates on coefficients");
    assert_eq!(a.basis().n(), target.n(), "ring degrees must match");
    let src = a.basis();
    let n = src.n();
    #[cfg(feature = "telemetry")]
    let _span = crate::tel::convert().span((src.len() * n) as u64);
    let hat_inv = src.qhat_inv_mod_self();
    let hat_in_target = src.qhat_mod_other(target);

    // t_j = [a_j · q̂_j⁻¹]_{q_j}, computed once per source prime. Source
    // primes are independent, so the scaling dispatches limb-parallel; the
    // scratch pool recycles the temporaries across calls.
    let t: Vec<Vec<u64>> = poseidon_par::par_map(src.len(), n, |j| {
        let red = &src.reducers()[j];
        let mut tj = poseidon_par::scratch::take(n);
        for (o, &x) in tj.iter_mut().zip(a.residues(j)) {
            *o = red.mul(x, hat_inv[j]);
        }
        tj
    });

    // Target primes are likewise independent (each reads all of t).
    let residues: Vec<Vec<u64>> = poseidon_par::par_map(target.len(), n, |i| {
        let red = &target.reducers()[i];
        let hats = &hat_in_target[i];
        (0..n)
            .map(|c| {
                // Accumulate Σ_j t_j[c]·(q̂_j mod p_i) in 128 bits, one
                // shared Barrett reduction at the end (SBT reuse).
                let mut acc: u128 = 0;
                for (tj, &hat) in t.iter().zip(hats) {
                    acc += tj[c] as u128 * hat as u128;
                }
                red.reduce(acc)
            })
            .collect()
    });
    for tj in t {
        poseidon_par::scratch::recycle(tj);
    }
    RnsPoly::from_residues(target, residues, Form::Coeff)
}

/// `Modup` (paper Eq. 3): extends `a` from basis `Q` to `Q ∪ P`.
///
/// Returns the polynomial in the concatenated basis with the original
/// residues preserved and the `P` residues produced by [`rns_convert`].
///
/// # Panics
///
/// Panics if `a` is not in coefficient form or the bases overlap.
pub fn modup(a: &RnsPoly, special: &RnsBasis) -> RnsPoly {
    assert_eq!(a.form(), Form::Coeff, "Modup operates on coefficients");
    let converted = rns_convert(a, special);
    let full = a.basis().concat(special);
    let mut residues = a.all_residues().to_vec();
    residues.extend(converted.all_residues().iter().cloned());
    RnsPoly::from_residues(&full, residues, Form::Coeff)
}

/// `Moddown` (paper Eq. 2): reduces `a` from basis `Q ∪ P` back to `Q`,
/// dividing by `P` — `((a_Q − conv(a_P → Q)) · P⁻¹) mod Q`.
///
/// `q_len` is the number of leading primes that form `Q`.
///
/// # Panics
///
/// Panics if `a` is not in coefficient form or `q_len` is out of range.
pub fn moddown(a: &RnsPoly, q_len: usize) -> RnsPoly {
    assert_eq!(a.form(), Form::Coeff, "Moddown operates on coefficients");
    let total = a.level_count();
    assert!(q_len >= 1 && q_len < total, "q_len must split the basis");
    #[cfg(feature = "telemetry")]
    let _span = crate::tel::moddown().span((total * a.n()) as u64);
    let q_basis = a.basis().prefix(q_len);
    let p_primes = a.basis().primes()[q_len..].to_vec();
    let p_basis = RnsBasis::new(a.basis().n(), p_primes);

    // Split a into its Q part and P part.
    let a_q = RnsPoly::from_residues(&q_basis, a.all_residues()[..q_len].to_vec(), Form::Coeff);
    let a_p = RnsPoly::from_residues(&p_basis, a.all_residues()[q_len..].to_vec(), Form::Coeff);

    let conv = rns_convert(&a_p, &q_basis);
    let p_inv = p_basis.product_inv_mod_other(&q_basis);
    a_q.sub(&conv).mul_scalar_per_prime(&p_inv)
}

/// RNS `Rescale`: drops the last chain prime `q_l` and scales by `q_l⁻¹` —
/// `c'_j = [q_l⁻¹]_{q_j} · (c_j − c_l) mod q_j` (paper §II-A.3).
///
/// # Panics
///
/// Panics if `a` is not in coefficient form or has a single component.
pub fn rescale(a: &RnsPoly) -> RnsPoly {
    assert_eq!(a.form(), Form::Coeff, "Rescale operates on coefficients");
    let l = a.level_count();
    assert!(l >= 2, "cannot rescale a single-prime polynomial");
    #[cfg(feature = "telemetry")]
    let _span = crate::tel::rescale().span((l * a.basis().n()) as u64);
    let last_prime = a.basis().primes()[l - 1];
    let lower = a.basis().prefix(l - 1);
    let last = a.residues(l - 1);

    // Each surviving prime rescales independently — limb-parallel.
    let residues: Vec<Vec<u64>> = poseidon_par::par_map(l - 1, a.basis().n(), |j| {
        let qj = lower.primes()[j];
        let red = &lower.reducers()[j];
        let ql_inv = inv_mod_prime(last_prime % qj, qj).expect("distinct primes");
        a.residues(j)
            .iter()
            .zip(last)
            .map(|(&cj, &cl)| red.mul(sub_mod(cj, cl % qj, qj), ql_inv))
            .collect()
    });
    RnsPoly::from_residues(&lower, residues, Form::Coeff)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bases(n: usize) -> (RnsBasis, RnsBasis) {
        // Q from 28-bit primes, P from 30-bit primes (disjoint by size).
        let q = RnsBasis::generate(n, 28, 3);
        let p = RnsBasis::new(n, he_math::prime::ntt_prime_chain(30, 2 * n as u64, 2));
        (q, p)
    }

    #[test]
    fn convert_is_congruent_for_small_values() {
        // For any value, conversion returns a + e·Q for small e ≥ 0; for a
        // centred negative value the representative is Q + a, so the same
        // bound applies with the representative.
        let (q, p) = bases(16);
        let coeffs: Vec<i64> = (0..16).map(|i| i * 100).collect();
        let a = RnsPoly::from_i64_coeffs(&q, &coeffs);
        let out = rns_convert(&a, &p);
        let l = q.len() as u64;
        for (i, &pi) in p.primes().iter().enumerate() {
            let q_mod = q.modulus_product().rem_u64(pi);
            for (c, &v) in coeffs.iter().enumerate() {
                let got = out.residues(i)[c];
                let ok = (0..=l)
                    .any(|e| ((v as u128 + e as u128 * q_mod as u128) % pi as u128) as u64 == got);
                assert!(
                    ok,
                    "coefficient {c} prime {pi}: conversion off by more than L·Q"
                );
            }
        }
    }

    #[test]
    fn convert_error_is_multiple_of_q() {
        // For values near Q/2 the approximate conversion may be off by e·Q,
        // 0 ≤ e < L. Check residue-wise that out − a ≡ e·Q (mod p_i) with a
        // consistent small e per coefficient.
        let (q, p) = bases(16);
        let big = q.modulus_product().half(); // ~Q/2, worst case
                                              // Build a polynomial whose coefficient 0 is ~Q/2 via residues.
        let residues: Vec<Vec<u64>> = q
            .primes()
            .iter()
            .map(|&qi| {
                let mut v = vec![0u64; 16];
                v[0] = big.rem_u64(qi);
                v
            })
            .collect();
        let a = RnsPoly::from_residues(&q, residues, Form::Coeff);
        let out = rns_convert(&a, &p);
        let l = q.len() as u64;
        for (i, &pi) in p.primes().iter().enumerate() {
            let expect_base = big.rem_u64(pi);
            let got = out.residues(i)[0];
            let q_mod = q.modulus_product().rem_u64(pi);
            // got = expect_base + e·Q (mod p_i) for some 0 ≤ e < L.
            let mut ok = false;
            for e in 0..l {
                let cand = (expect_base as u128 + e as u128 * q_mod as u128) % pi as u128;
                if cand as u64 == got {
                    ok = true;
                    break;
                }
            }
            assert!(ok, "conversion error must be a small multiple of Q");
        }
    }

    #[test]
    fn modup_preserves_original_residues() {
        let (q, p) = bases(16);
        let a = RnsPoly::from_i64_coeffs(&q, &[12345i64; 16]);
        let up = modup(&a, &p);
        assert_eq!(up.level_count(), q.len() + p.len());
        for j in 0..q.len() {
            assert_eq!(up.residues(j), a.residues(j));
        }
    }

    #[test]
    fn moddown_inverts_modup_times_p() {
        // moddown(modup(a) scaled by P) should return a (exactly, because
        // multiplying by P before the division makes the value divisible).
        let (q, p) = bases(16);
        let coeffs: Vec<i64> = (0..16).map(|i| 37 * i - 290).collect();
        let a = RnsPoly::from_i64_coeffs(&q, &coeffs);
        let up = modup(&a, &p);
        // Multiply by P in the full basis.
        let full = up.basis().clone();
        let p_prod: Vec<u64> = full
            .primes()
            .iter()
            .map(|&f| {
                p.primes()
                    .iter()
                    .fold(1u64, |acc, &pi| he_math::modops::mul_mod(acc, pi % f, f))
            })
            .collect();
        let scaled = up.mul_scalar_per_prime(&p_prod);
        let down = moddown(&scaled, q.len());
        assert_eq!(down.to_centered_coeffs(), coeffs);
    }

    #[test]
    fn moddown_of_small_noise_rounds_away() {
        // For a value v = P·x + r with |r| small, moddown returns x plus a
        // rounding term bounded by the conversion error. With v = P·x
        // exactly, the result is exactly x.
        let (q, p) = bases(16);
        let x = 777i64;
        let p_prod_i128: i128 = p.primes().iter().map(|&v| v as i128).product();
        let v: i128 = p_prod_i128 * x as i128;
        // Build v in the full basis via i128 reduction.
        let full = q.concat(&p);
        let residues: Vec<Vec<u64>> = full
            .primes()
            .iter()
            .map(|&f| vec![(v.rem_euclid(f as i128)) as u64; 16])
            .collect();
        let poly = RnsPoly::from_residues(&full, residues, Form::Coeff);
        let down = moddown(&poly, q.len());
        assert_eq!(down.to_centered_coeffs(), vec![x; 16]);
    }

    #[test]
    fn rescale_divides_by_last_prime() {
        let (q, _) = bases(16);
        let ql = *q.primes().last().unwrap() as i64;
        // Choose coefficients divisible by q_l so rescale is exact.
        let coeffs: Vec<i64> = (0..16).map(|i| ql * (i - 8)).collect();
        let a = RnsPoly::from_i64_coeffs(&q, &coeffs);
        let r = rescale(&a);
        assert_eq!(r.level_count(), q.len() - 1);
        let want: Vec<i64> = (0..16).map(|i| i - 8).collect();
        assert_eq!(r.to_centered_coeffs(), want);
    }

    #[test]
    fn rescale_rounds_non_divisible_values() {
        let (q, _) = bases(16);
        let ql = *q.primes().last().unwrap() as i64;
        // v = 5·q_l + 3 → rescale gives 5 + (3 - 3)·q_l⁻¹ pattern: exact
        // CKKS analysis says result = round-ish (v - [v]_{q_l}) / q_l = 5.
        let coeffs = vec![5 * ql + 3; 16];
        let a = RnsPoly::from_i64_coeffs(&q, &coeffs);
        let r = rescale(&a);
        assert_eq!(r.to_centered_coeffs(), vec![5i64; 16]);
    }
}
