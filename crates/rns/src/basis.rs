//! RNS bases: ordered prime sets with transform tables and conversion
//! constants.

use std::sync::Arc;

use he_math::modops::inv_mod_prime;
use he_math::prime::ntt_prime_chain;
use he_math::{BarrettReducer, BigUint};
use he_ntt::NttTable;

/// An ordered RNS basis `{q_0, …, q_{L}}` of NTT primes for ring degree `N`.
///
/// Bases are cheap to clone (`Arc` shared tables) and sliceable: a basis
/// holding the full modulus chain yields level-truncated sub-bases via
/// [`prefix`], and keyswitching builds the extended basis `Q ∪ P` via
/// [`concat`].
///
/// [`prefix`]: Self::prefix
/// [`concat`]: Self::concat
///
/// # Examples
///
/// ```
/// use he_rns::RnsBasis;
/// let basis = RnsBasis::generate(64, 30, 4);
/// assert_eq!(basis.len(), 4);
/// let lower = basis.prefix(2);
/// assert_eq!(lower.primes(), &basis.primes()[..2]);
/// ```
#[derive(Debug, Clone)]
pub struct RnsBasis {
    n: usize,
    primes: Vec<u64>,
    tables: Vec<Arc<NttTable>>,
    reducers: Vec<BarrettReducer>,
}

impl RnsBasis {
    /// Builds a basis from explicit primes (each must satisfy
    /// `q ≡ 1 mod 2N` and be distinct).
    ///
    /// # Panics
    ///
    /// Panics on duplicate primes or primes unfit for the negacyclic NTT at
    /// degree `n`.
    pub fn new(n: usize, primes: Vec<u64>) -> Self {
        let mut seen = primes.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), primes.len(), "primes must be distinct");
        let tables: Vec<Arc<NttTable>> = primes
            .iter()
            .map(|&q| Arc::new(NttTable::new(n, q)))
            .collect();
        let reducers = primes.iter().map(|&q| BarrettReducer::new(q)).collect();
        Self {
            n,
            primes,
            tables,
            reducers,
        }
    }

    /// Generates a basis of `count` primes of the given bit size suitable
    /// for degree `n`.
    ///
    /// # Examples
    ///
    /// ```
    /// let b = he_rns::RnsBasis::generate(32, 28, 2);
    /// assert!(b.primes().iter().all(|&q| q < (1 << 28)));
    /// ```
    pub fn generate(n: usize, bits: u32, count: usize) -> Self {
        Self::new(n, ntt_prime_chain(bits, 2 * n as u64, count))
    }

    /// Ring degree `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of primes in the basis.
    #[inline]
    pub fn len(&self) -> usize {
        self.primes.len()
    }

    /// Whether the basis is empty (never true for constructed bases).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.primes.is_empty()
    }

    /// The primes, in order.
    #[inline]
    pub fn primes(&self) -> &[u64] {
        &self.primes
    }

    /// Per-prime NTT tables.
    #[inline]
    pub fn tables(&self) -> &[Arc<NttTable>] {
        &self.tables
    }

    /// The butterfly kernel the per-prime tables dispatch to.
    #[inline]
    pub fn kernel(&self) -> he_ntt::KernelKind {
        self.tables[0].kernel()
    }

    /// Switches the butterfly kernel on every table of this basis. All
    /// kernels are bit-identical, so transform outputs never change — used
    /// by equivalence tests and per-kernel bench sweeps.
    ///
    /// Tables shared with other bases (via `clone`/[`prefix`](Self::prefix)/
    /// [`concat`](Self::concat)) are copied on write, so only this basis is
    /// affected.
    pub fn set_kernel(&mut self, kernel: he_ntt::KernelKind) {
        for t in &mut self.tables {
            Arc::make_mut(t).set_kernel(kernel);
        }
    }

    /// Per-prime Barrett reducers (the software SBT).
    #[inline]
    pub fn reducers(&self) -> &[BarrettReducer] {
        &self.reducers
    }

    /// The product `Q` of all primes, as a big integer.
    pub fn modulus_product(&self) -> BigUint {
        let mut q = BigUint::one();
        for &p in &self.primes {
            q.mul_u64_assign(p);
        }
        q
    }

    /// The sub-basis of the first `count` primes (sharing tables).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or exceeds the basis length.
    pub fn prefix(&self, count: usize) -> RnsBasis {
        assert!(count >= 1 && count <= self.len(), "invalid prefix length");
        Self {
            n: self.n,
            primes: self.primes[..count].to_vec(),
            tables: self.tables[..count].to_vec(),
            reducers: self.reducers[..count].to_vec(),
        }
    }

    /// Concatenation `self ∪ other` (sharing tables) — the extended basis
    /// used by Modup.
    ///
    /// # Panics
    ///
    /// Panics if ring degrees differ or a prime appears in both bases.
    pub fn concat(&self, other: &RnsBasis) -> RnsBasis {
        assert_eq!(self.n, other.n, "ring degrees must match");
        let mut primes = self.primes.clone();
        for &p in &other.primes {
            assert!(!primes.contains(&p), "bases must be disjoint");
            primes.push(p);
        }
        let mut tables = self.tables.clone();
        tables.extend(other.tables.iter().cloned());
        let mut reducers = self.reducers.clone();
        reducers.extend(other.reducers.iter().copied());
        Self {
            n: self.n,
            primes,
            tables,
            reducers,
        }
    }

    /// `q̂_j = Q / q_j mod q_j` for each `j` — the CRT "hat" residues.
    pub fn qhat_mod_self(&self) -> Vec<u64> {
        (0..self.len())
            .map(|j| {
                let qj = self.primes[j];
                let mut acc = 1u64;
                for (i, &qi) in self.primes.iter().enumerate() {
                    if i != j {
                        acc = self.reducers[j].mul(acc, qi % qj);
                    }
                }
                acc
            })
            .collect()
    }

    /// `q̂_j⁻¹ mod q_j` for each `j` — the first multiplier of RNSconv.
    pub fn qhat_inv_mod_self(&self) -> Vec<u64> {
        self.qhat_mod_self()
            .iter()
            .zip(&self.primes)
            .map(|(&h, &q)| inv_mod_prime(h, q).expect("hat residues are units"))
            .collect()
    }

    /// `q̂_j mod p_i` for each `(i, j)` of a *target* basis — row-major
    /// `target.len() × self.len()` — the second multiplier of RNSconv.
    pub fn qhat_mod_other(&self, target: &RnsBasis) -> Vec<Vec<u64>> {
        target
            .primes
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let red = &target.reducers[i];
                (0..self.len())
                    .map(|j| {
                        let mut acc = 1u64;
                        for (jj, &qj) in self.primes.iter().enumerate() {
                            if jj != j {
                                acc = red.mul(acc, qj % p);
                            }
                        }
                        acc
                    })
                    .collect()
            })
            .collect()
    }

    /// `Q mod p_i` for each prime of a target basis.
    pub fn product_mod_other(&self, target: &RnsBasis) -> Vec<u64> {
        target
            .primes
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let red = &target.reducers[i];
                self.primes.iter().fold(1u64, |acc, &q| red.mul(acc, q % p))
            })
            .collect()
    }

    /// `Q⁻¹ mod p_i` for each prime of a target basis (needed by Moddown).
    pub fn product_inv_mod_other(&self, target: &RnsBasis) -> Vec<u64> {
        self.product_mod_other(target)
            .iter()
            .zip(target.primes())
            .map(|(&v, &p)| inv_mod_prime(v, p).expect("disjoint bases give units"))
            .collect()
    }
}

impl PartialEq for RnsBasis {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.primes == other.primes
    }
}

impl Eq for RnsBasis {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_produces_ntt_primes() {
        let b = RnsBasis::generate(128, 30, 3);
        for &q in b.primes() {
            assert_eq!((q - 1) % 256, 0);
            assert!(he_math::prime::is_prime(q));
        }
    }

    #[test]
    fn qhat_identity_crt() {
        // Σ_j q̂_j · (q̂_j⁻¹ mod q_j) ≡ 1 (mod Q)
        let b = RnsBasis::generate(32, 28, 3);
        let hat_inv = b.qhat_inv_mod_self();
        let q = b.modulus_product();
        let mut acc = BigUint::zero();
        for (j, &hi) in hat_inv.iter().enumerate() {
            let mut qhat = BigUint::one();
            for (i, &p) in b.primes().iter().enumerate() {
                if i != j {
                    qhat.mul_u64_assign(p);
                }
            }
            qhat.mul_u64_assign(hi);
            acc.add_assign(&qhat);
        }
        // acc mod Q must be 1.
        let r = {
            // Compute acc mod Q by repeated subtraction of Q·(acc/Q) using
            // limb division by each prime (Q fits in 3 u64 primes here, so
            // check residue-wise instead):
            b.primes().iter().all(|&p| acc.rem_u64(p) == 1)
        };
        assert!(r, "CRT identity must hold modulo every prime; Q={q}");
    }

    #[test]
    fn concat_and_prefix_are_consistent() {
        let q_basis = RnsBasis::generate(32, 28, 3);
        let p_basis = RnsBasis::new(32, he_math::prime::ntt_prime_chain(30, 64, 1));
        let full = q_basis.concat(&p_basis);
        assert_eq!(full.len(), 4);
        assert_eq!(full.prefix(3), q_basis);
    }

    #[test]
    #[should_panic(expected = "bases must be disjoint")]
    fn concat_rejects_overlap() {
        let b = RnsBasis::generate(32, 28, 2);
        let _ = b.concat(&b.prefix(1));
    }

    #[test]
    fn product_inv_inverts_product() {
        let q_basis = RnsBasis::generate(32, 28, 2);
        let p_basis = RnsBasis::new(32, he_math::prime::ntt_prime_chain(30, 64, 2));
        let prod = q_basis.product_mod_other(&p_basis);
        let inv = q_basis.product_inv_mod_other(&p_basis);
        for i in 0..p_basis.len() {
            assert_eq!(p_basis.reducers()[i].mul(prod[i], inv[i]), 1);
        }
    }
}

#[cfg(feature = "serde")]
mod serde_impls {
    //! Serde support: a basis serialises as `(n, primes)`; the transform
    //! tables are deterministic precomputations rebuilt on deserialise.
    use super::RnsBasis;
    use serde::de::Error as _;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    #[derive(Serialize, Deserialize)]
    struct BasisRepr {
        n: usize,
        primes: Vec<u64>,
    }

    impl Serialize for RnsBasis {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            BasisRepr {
                n: self.n,
                primes: self.primes.clone(),
            }
            .serialize(s)
        }
    }

    impl<'de> Deserialize<'de> for RnsBasis {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            let repr = BasisRepr::deserialize(d)?;
            if !repr.n.is_power_of_two() || repr.n < 2 {
                return Err(D::Error::custom("ring degree must be a power of two"));
            }
            for &q in &repr.primes {
                if !he_math::prime::is_prime(q) || (q - 1) % (2 * repr.n as u64) != 0 {
                    return Err(D::Error::custom(format!("{q} is not an NTT prime")));
                }
            }
            Ok(RnsBasis::new(repr.n, repr.primes))
        }
    }
}
