//! Residue-level integrity checking: RRNS guard limbs and FNV checksums.
//!
//! Poseidon's datapath moves every ciphertext limb through register files,
//! a scratchpad, and 32 HBM channels; a single flipped residue silently
//! decrypts to garbage. Redundant-arithmetic NTT datapaths (Alexakis et
//! al.) show the natural detection lever for an RNS pipeline is *residue
//! redundancy*: carry one extra modulus and check consistency. This module
//! implements that idea in a form that survives the mod-`Q` wraps of real
//! CKKS arithmetic, plus cheap FNV-1a checksums for duplicate-execution
//! comparison.
//!
//! # The guard projection
//!
//! A naive RRNS guard (`g_i = x_i mod q_r`, carried through every op) is
//! unsound here: pointwise ops reduce mod `Q`, so after an add the true
//! value has wrapped by an *unknown* multiple of `Q` that the guard limb
//! never saw, and after a multiply the wrap count is unbounded. Instead we
//! anchor the guard with the HPS fast-basis-conversion projection (the
//! same Eq. 1 kernel `RNSconv` uses):
//!
//! ```text
//! s(x)_i = Σ_j [x_{j,i} · q̂_j⁻¹]_{q_j} · (q̂_j mod q_r)  (mod q_r)
//!        = x̂_i + e·Q                                     (mod q_r),  0 ≤ e ≤ L
//! ```
//!
//! where `x̂_i ∈ [0, Q)` is the canonical representative. The invariant is
//! `guard_i ≡ x̂_i + m·Q (mod q_r)` with `|m|` bounded by a tracked
//! [`drift`](GuardedPoly::drift): anchoring gives `m ∈ [0, L]`; each
//! add/sub/neg wraps at most once more, so the bound grows by one per op.
//! [`verify`](GuardedPoly::verify) re-projects from the (possibly
//! corrupted) residues and accepts only if the difference is `t·(Q mod
//! q_r)` for `|t| ≤ drift + L` — a set of a few dozen values out of
//! `q_r ≈ 2²⁸`, so any residue corruption is detected except with
//! probability `≈ (2·drift+2L+1)/q_r < 2⁻²⁰` per coefficient.
//!
//! Multiplication and NTT form changes cannot carry the guard (unbounded
//! wrap / residue permutation), so those paths **verify the inputs, run
//! the op, and re-anchor** — exactly the operator-retire check boundaries
//! the accelerator's MM and NTT cores would implement in hardware.
//!
//! # Examples
//!
//! ```
//! use he_rns::{RnsBasis, RnsPoly};
//! use he_rns::integrity::GuardedPoly;
//!
//! let basis = RnsBasis::generate(16, 28, 3);
//! let x = RnsPoly::from_i64_coeffs(&basis, &[7i64; 16]);
//! let y = RnsPoly::from_i64_coeffs(&basis, &[-3i64; 16]);
//! let qr = GuardedPoly::guard_prime_for(&basis);
//! let gx = GuardedPoly::attach(x, qr);
//! let gy = GuardedPoly::attach(y, qr);
//! let sum = gx.add(&gy);
//! assert!(sum.verify().is_ok());
//!
//! // A corrupted residue is caught:
//! let mut bad = sum.clone();
//! bad.poly_mut().all_residues_mut()[0][3] ^= 1 << 12;
//! assert!(bad.verify().is_err());
//! ```

use he_math::modops::{add_mod, neg_mod, sub_mod};
use he_math::prime::ntt_prime_chain;
use he_math::BarrettReducer;

use crate::basis::RnsBasis;
use crate::poly::{Form, RnsPoly};

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over the little-endian bytes of a word slice. The same digest
/// the feature-parity harness uses, exposed here so checksum comparisons
/// across duplicate executions agree byte-for-byte.
pub fn fnv1a_words(words: &[u64]) -> u64 {
    let mut h = FNV_OFFSET;
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// FNV-1a digest of an entire polynomial: every limb's residues in order,
/// then the form tag, so coeff- and eval-form states never collide.
pub fn digest_poly(p: &RnsPoly) -> u64 {
    let mut h = FNV_OFFSET;
    for j in 0..p.level_count() {
        for &w in p.residues(j) {
            for b in w.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        }
    }
    h ^= match p.form() {
        Form::Coeff => 1,
        Form::Eval => 2,
    };
    h.wrapping_mul(FNV_PRIME)
}

/// A detected datapath integrity violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntegrityError {
    /// The RRNS guard projection disagreed with the carried guard limb at
    /// the given coefficient/slot index.
    GuardMismatch {
        /// First coefficient (or eval slot) where the check failed.
        index: usize,
    },
    /// Duplicate executions of the same kernel produced different digests.
    ChecksumMismatch {
        /// Name of the checked boundary (e.g. `"keyswitch"`, `"ntt"`).
        site: &'static str,
    },
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrityError::GuardMismatch { index } => {
                write!(f, "redundant-residue guard mismatch at coefficient {index}")
            }
            IntegrityError::ChecksumMismatch { site } => {
                write!(f, "checksum mismatch across duplicate execution at {site}")
            }
        }
    }
}

impl std::error::Error for IntegrityError {}

/// An [`RnsPoly`] carrying a redundant guard limb modulo an extra prime
/// `q_r` disjoint from its basis. See the module docs for the invariant
/// and the wrap-drift accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardedPoly {
    poly: RnsPoly,
    red: BarrettReducer,
    guard: Vec<u64>,
    drift: u64,
}

impl GuardedPoly {
    /// Picks a deterministic guard prime for `basis`: the first 28-bit NTT
    /// prime (for this ring degree) not already in the basis, so the guard
    /// channel is the same kind of modulus the datapath lanes carry.
    pub fn guard_prime_for(basis: &RnsBasis) -> u64 {
        let chain = ntt_prime_chain(28, 2 * basis.n() as u64, basis.len() + 1);
        *chain
            .iter()
            .find(|q| !basis.primes().contains(q))
            .expect("chain longer than basis always has a fresh prime")
    }

    /// Attaches a freshly anchored guard limb modulo `guard_prime`.
    ///
    /// # Panics
    ///
    /// Panics if `guard_prime` already belongs to the polynomial's basis
    /// (the projection would degenerate to a plain residue copy).
    pub fn attach(poly: RnsPoly, guard_prime: u64) -> Self {
        assert!(
            !poly.basis().primes().contains(&guard_prime),
            "guard prime must be disjoint from the basis"
        );
        let red = BarrettReducer::new(guard_prime);
        let guard = project(&poly, &red);
        let drift = poly.level_count() as u64;
        Self {
            poly,
            red,
            guard,
            drift,
        }
    }

    /// The guarded polynomial.
    #[inline]
    pub fn poly(&self) -> &RnsPoly {
        &self.poly
    }

    /// Mutable access to the polynomial — any change desynchronises the
    /// guard, which is the point for fault-injection tests.
    #[inline]
    pub fn poly_mut(&mut self) -> &mut RnsPoly {
        &mut self.poly
    }

    /// The guard modulus `q_r`.
    #[inline]
    pub fn guard_prime(&self) -> u64 {
        self.red.modulus()
    }

    /// Current bound on the wrap-multiple drift `|m|` (module docs).
    #[inline]
    pub fn drift(&self) -> u64 {
        self.drift
    }

    /// Discards the guard, yielding the polynomial.
    #[inline]
    pub fn into_inner(self) -> RnsPoly {
        self.poly
    }

    /// Re-projects the guard from the residues and checks consistency.
    /// Returns the first offending coefficient on mismatch.
    pub fn verify(&self) -> Result<(), IntegrityError> {
        let fresh = project(&self.poly, &self.red);
        let qr = self.red.modulus();
        let q_mod_r = self.poly.basis().modulus_product().rem_u64(qr);
        // Acceptable differences: t·(Q mod q_r) for |t| ≤ drift + L.
        let span = self.drift + self.poly.level_count() as u64;
        let mut accept = Vec::with_capacity(2 * span as usize + 1);
        let mut pos = 0u64;
        accept.push(0u64);
        for _ in 0..span {
            pos = add_mod(pos, q_mod_r, qr);
            accept.push(pos);
            accept.push(neg_mod(pos, qr));
        }
        accept.sort_unstable();
        accept.dedup();
        for (i, (&g, &f)) in self.guard.iter().zip(&fresh).enumerate() {
            let d = sub_mod(g, f, qr);
            if accept.binary_search(&d).is_err() {
                return Err(IntegrityError::GuardMismatch { index: i });
            }
        }
        Ok(())
    }

    /// Verifies, then re-anchors the guard (drift resets to the anchor
    /// bound `L`). Called at operator-retire boundaries.
    pub fn reanchor(&mut self) -> Result<(), IntegrityError> {
        self.verify()?;
        self.guard = project(&self.poly, &self.red);
        self.drift = self.poly.level_count() as u64;
        Ok(())
    }

    fn assert_same_guard(&self, other: &Self) {
        assert_eq!(
            self.red.modulus(),
            other.red.modulus(),
            "guarded operands must share a guard prime"
        );
    }

    /// Guarded addition: the guard limb rides through the add; drift grows
    /// by one (at most one extra mod-`Q` wrap).
    pub fn add(&self, other: &Self) -> Self {
        self.assert_same_guard(other);
        let qr = self.red.modulus();
        let guard = self
            .guard
            .iter()
            .zip(&other.guard)
            .map(|(&a, &b)| add_mod(a, b, qr))
            .collect();
        Self {
            poly: self.poly.add(&other.poly),
            red: self.red,
            guard,
            drift: self.drift + other.drift + 1,
        }
    }

    /// Guarded subtraction.
    pub fn sub(&self, other: &Self) -> Self {
        self.assert_same_guard(other);
        let qr = self.red.modulus();
        let guard = self
            .guard
            .iter()
            .zip(&other.guard)
            .map(|(&a, &b)| sub_mod(a, b, qr))
            .collect();
        Self {
            poly: self.poly.sub(&other.poly),
            red: self.red,
            guard,
            drift: self.drift + other.drift + 1,
        }
    }

    /// Guarded negation.
    pub fn neg(&self) -> Self {
        let qr = self.red.modulus();
        let guard = self.guard.iter().map(|&a| neg_mod(a, qr)).collect();
        Self {
            poly: self.poly.neg(),
            red: self.red,
            guard,
            drift: self.drift + 1,
        }
    }

    /// Guarded multiplication (the MM operator): the wrap count of a
    /// product is unbounded, so both inputs are verified *before* the
    /// multiply and the result is re-anchored — the retire-boundary
    /// pattern of the accelerator's MM core.
    pub fn mul(&self, other: &Self) -> Result<Self, IntegrityError> {
        self.assert_same_guard(other);
        self.verify()?;
        other.verify()?;
        let poly = self.poly.mul(&other.poly);
        let guard = project(&poly, &self.red);
        let drift = poly.level_count() as u64;
        Ok(Self {
            poly,
            red: self.red,
            guard,
            drift,
        })
    }

    /// Guarded forward NTT: verifies at transform entry, transforms, and
    /// re-anchors at exit (the guard is form-specific — an NTT permutes
    /// the residues it was projected from).
    pub fn into_eval(mut self) -> Result<Self, IntegrityError> {
        self.verify()?;
        self.poly = self.poly.into_eval();
        self.guard = project(&self.poly, &self.red);
        self.drift = self.poly.level_count() as u64;
        Ok(self)
    }

    /// Guarded inverse NTT: verify at entry, re-anchor at exit.
    pub fn into_coeff(mut self) -> Result<Self, IntegrityError> {
        self.verify()?;
        self.poly = self.poly.into_coeff();
        self.guard = project(&self.poly, &self.red);
        self.drift = self.poly.level_count() as u64;
        Ok(self)
    }
}

/// The HPS projection of every coefficient onto the guard modulus:
/// `s_i = Σ_j [x_{j,i}·q̂_j⁻¹]_{q_j}·(q̂_j mod q_r) mod q_r = x̂_i + e·Q`.
/// Form-agnostic: in eval form the CRT applies slot-wise just the same.
fn project(poly: &RnsPoly, red: &BarrettReducer) -> Vec<u64> {
    let basis = poly.basis();
    let qr = red.modulus();
    let hat_inv = basis.qhat_inv_mod_self();
    let hat_mod_r: Vec<u64> = (0..basis.len())
        .map(|j| {
            let mut acc = 1u64;
            for (i, &q) in basis.primes().iter().enumerate() {
                if i != j {
                    acc = red.mul(acc, q % qr);
                }
            }
            acc
        })
        .collect();
    let reducers = basis.reducers();
    (0..poly.n())
        .map(|c| {
            let mut acc: u128 = 0;
            for j in 0..basis.len() {
                let t = reducers[j].mul(poly.residues(j)[c], hat_inv[j]);
                acc += u128::from(t) * u128::from(hat_mod_r[j]);
            }
            red.reduce(acc)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn basis() -> RnsBasis {
        RnsBasis::generate(16, 28, 3)
    }

    fn guarded(b: &RnsBasis, coeffs: &[i64]) -> GuardedPoly {
        let qr = GuardedPoly::guard_prime_for(b);
        GuardedPoly::attach(RnsPoly::from_i64_coeffs(b, coeffs), qr)
    }

    #[test]
    fn guard_prime_is_fresh() {
        let b = basis();
        let qr = GuardedPoly::guard_prime_for(&b);
        assert!(!b.primes().contains(&qr));
        assert!(he_math::prime::is_prime(qr));
    }

    #[test]
    fn clean_polynomial_verifies() {
        let b = basis();
        let g = guarded(&b, &[123i64; 16]);
        assert_eq!(g.verify(), Ok(()));
    }

    #[test]
    fn guard_survives_pointwise_chains() {
        let b = basis();
        let x = guarded(&b, &(0..16).map(|i| 31 * i - 200).collect::<Vec<_>>());
        let y = guarded(&b, &(0..16).map(|i| -17 * i + 99).collect::<Vec<_>>());
        let z = x.add(&y).sub(&y).neg().add(&x.neg());
        assert_eq!(z.verify(), Ok(()));
        // Value semantics are untouched by the guard: z = −x − x = −2x.
        let want = RnsPoly::from_i64_coeffs(
            &b,
            &(0..16).map(|i| -2 * (31 * i - 200)).collect::<Vec<_>>(),
        );
        assert_eq!(z.poly().to_centered_coeffs(), want.to_centered_coeffs());
    }

    #[test]
    fn mul_verifies_and_reanchors() {
        let b = basis();
        let x = guarded(&b, &[3i64; 16]);
        let xe = x.into_eval().expect("clean transform");
        let prod = xe.mul(&xe).expect("clean multiply");
        assert_eq!(prod.drift(), b.len() as u64);
        let back = prod.into_coeff().expect("clean inverse transform");
        assert_eq!(back.verify(), Ok(()));
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let b = basis();
        let base = guarded(&b, &(0..16).map(|i| 1000 - 111 * i).collect::<Vec<_>>());
        for limb in 0..b.len() {
            for bit in 0..28u32 {
                let mut bad = base.clone();
                bad.poly_mut().all_residues_mut()[limb][5] ^= 1 << bit;
                assert!(
                    bad.verify().is_err(),
                    "flip of bit {bit} in limb {limb} went undetected"
                );
            }
        }
    }

    #[test]
    fn guard_limb_corruption_is_detected_too() {
        let b = basis();
        let mut g = guarded(&b, &[42i64; 16]);
        g.guard[7] ^= 1 << 9;
        assert!(matches!(
            g.verify(),
            Err(IntegrityError::GuardMismatch { index: 7 })
        ));
    }

    #[test]
    fn reanchor_resets_drift() {
        let b = basis();
        let x = guarded(&b, &[5i64; 16]);
        let mut z = x.add(&x).add(&x);
        assert!(z.drift() > b.len() as u64);
        z.reanchor().expect("clean reanchor");
        assert_eq!(z.drift(), b.len() as u64);
    }

    #[test]
    fn transform_entry_check_catches_prior_corruption() {
        let b = basis();
        let mut g = guarded(&b, &[9i64; 16]);
        g.poly_mut().all_residues_mut()[1][0] ^= 1 << 3;
        assert!(g.into_eval().is_err());
    }

    #[test]
    fn fnv_digest_is_stable_and_form_sensitive() {
        let b = basis();
        let p = RnsPoly::from_i64_coeffs(&b, &[7i64; 16]);
        assert_eq!(digest_poly(&p), digest_poly(&p.clone()));
        let e = p.clone().into_eval();
        assert_ne!(digest_poly(&p), digest_poly(&e));
        assert_eq!(fnv1a_words(&[]), FNV_OFFSET);
        assert_ne!(fnv1a_words(&[1]), fnv1a_words(&[2]));
    }
}
