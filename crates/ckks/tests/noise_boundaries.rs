//! Boundary pinning for the `noise` module: the evaluation planner uses
//! `remaining_depth` and `try_measure` to decide rescale placement, so
//! their behaviour at level 0 and under an exhausted scale budget must be
//! exact, not approximately right.

use he_ckks::cipher::{Ciphertext, Plaintext};
use he_ckks::context::CkksContext;
use he_ckks::encoding::Complex;
use he_ckks::error::EvalError;
use he_ckks::eval::Evaluator;
use he_ckks::keys::KeySet;
use he_ckks::noise::{remaining_depth, try_measure};
use he_ckks::params::CkksParams;
use rand::SeedableRng;

fn setup() -> (CkksContext, KeySet, Evaluator, rand::rngs::StdRng) {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x0D_EC_AF);
    let keys = KeySet::generate(&ctx, &mut rng);
    let eval = Evaluator::new(&ctx);
    (ctx, keys, eval, rng)
}

fn encrypt(ctx: &CkksContext, keys: &KeySet, rng: &mut rand::rngs::StdRng, v: f64) -> Ciphertext {
    let z = vec![Complex::new(v, 0.0)];
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
        ctx.default_scale(),
    );
    keys.public().encrypt(&pt, rng)
}

/// `remaining_depth` must equal the ciphertext level at every step of the
/// descent to 0 — the planner's budget accounting divides by it.
#[test]
fn remaining_depth_tracks_every_level_down_to_zero() {
    let (ctx, keys, eval, mut rng) = setup();
    let mut ct = encrypt(&ctx, &keys, &mut rng, 0.5);
    assert_eq!(remaining_depth(&ct), ctx.max_level());
    while ct.level() > 0 {
        let next = eval.try_drop_to_level(&ct, ct.level() - 1).unwrap();
        assert_eq!(remaining_depth(&next), remaining_depth(&ct) - 1);
        ct = next;
    }
    assert_eq!(remaining_depth(&ct), 0);
    // The floor is hard: rescaling past it is a typed error, not a wrap.
    assert_eq!(eval.try_rescale(&ct), Err(EvalError::RescaleAtLevelZero));
}

/// At level 0 the report stays exact: one live prime, budget =
/// first_prime_bits − scale_bits, still positive for a healthy
/// ciphertext.
#[test]
fn try_measure_is_exact_at_level_zero() {
    let (ctx, keys, eval, mut rng) = setup();
    let ct = encrypt(&ctx, &keys, &mut rng, 0.5);
    let floor = eval.try_drop_to_level(&ct, 0).unwrap();
    let report = try_measure(&ctx, keys.secret(), &floor, &[Complex::new(0.5, 0.0)]).unwrap();
    assert_eq!(report.level, 0);
    let expected = f64::from(ctx.params().first_prime_bits) - ctx.default_scale().log2();
    assert!(
        (report.budget_bits - expected).abs() < 1.0,
        "budget {} differs from first−scale {}",
        report.budget_bits,
        expected
    );
    assert!(report.budget_bits > 0.0);
    assert!(report.precision_bits > 10.0, "level-0 value lost precision");
}

/// Exhausted scale: a plaintext multiply at level 0 doubles the scale
/// bits past the single live prime. The report must flag the negative
/// budget rather than clamp it — this is exactly the signal the planner's
/// pressure rule keys on.
#[test]
fn try_measure_reports_negative_budget_when_scale_exceeds_modulus() {
    let (ctx, keys, eval, mut rng) = setup();
    let ct = encrypt(&ctx, &keys, &mut rng, 0.5);
    let floor = eval.try_drop_to_level(&ct, 0).unwrap();
    let z = vec![Complex::new(0.5, 0.0)];
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(&ctx.level_basis(0), &z, ctx.default_scale()),
        ctx.default_scale(),
    );
    let squeezed = eval.mul_plain(&floor, &pt);
    // toy(): first prime 50 bits, scale now ~80 bits → budget < 0.
    let report = try_measure(&ctx, keys.secret(), &squeezed, &[Complex::new(0.25, 0.0)]).unwrap();
    assert_eq!(report.level, 0);
    assert!(
        report.budget_bits < 0.0,
        "exhausted scale must report a negative budget, got {}",
        report.budget_bits
    );
}

/// Error surface pinning: empty references and oversized references are
/// typed errors at every level, including 0.
#[test]
fn try_measure_error_paths_hold_at_the_boundaries() {
    let (ctx, keys, eval, mut rng) = setup();
    let ct = encrypt(&ctx, &keys, &mut rng, 1.0);
    let floor = eval.try_drop_to_level(&ct, 0).unwrap();
    for probe in [&ct, &floor] {
        assert_eq!(
            try_measure(&ctx, keys.secret(), probe, &[]),
            Err(EvalError::EmptyOperands)
        );
        let too_many = vec![Complex::new(0.0, 0.0); ctx.params().slots() + 1];
        assert!(matches!(
            try_measure(&ctx, keys.secret(), probe, &too_many),
            Err(EvalError::InvalidParams(_))
        ));
    }
}
