//! Bit-exactness of the limb-parallel engine at the CKKS layer: CMult,
//! keyswitch, and rescale must produce identical ciphertexts at one
//! thread (the pre-engine serial path) and at many threads.
//!
//! Ring degree 2048 puts every operand over `poseidon_par::PAR_THRESHOLD`,
//! so the parallel dispatch genuinely runs. Key material is generated once
//! (keygen draws from a shared rng and is deliberately serial) and shared
//! across cases.

use std::sync::OnceLock;

use he_ckks::cipher::Plaintext;
use he_ckks::encoding::Complex;
use he_ckks::prelude::*;
use poseidon_par::with_threads;
use proptest::prelude::*;
use rand::SeedableRng;

fn fixture() -> &'static (CkksContext, KeySet, Evaluator) {
    static FIXTURE: OnceLock<(CkksContext, KeySet, Evaluator)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ctx = CkksContext::new(CkksParams::paper_32bit(1 << 11, 3));
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEEF);
        let keys = KeySet::generate(&ctx, &mut rng);
        let eval = Evaluator::new(&ctx);
        (ctx, keys, eval)
    })
}

fn encrypt(vals: &[f64], seed: u64) -> Ciphertext {
    let (ctx, keys, _) = fixture();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let z: Vec<Complex> = vals.iter().map(|&v| Complex::new(v, 0.0)).collect();
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
        ctx.default_scale(),
    );
    keys.public().encrypt(&pt, &mut rng)
}

fn arb_vals() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-4.0f64..4.0, 8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn cmult_is_thread_count_invariant(a in arb_vals(), b in arb_vals(), seed in 1u64..1000) {
        let (_, keys, eval) = fixture();
        let ct_a = encrypt(&a, seed);
        let ct_b = encrypt(&b, seed + 1);
        let serial = with_threads(1, || eval.mul(&ct_a, &ct_b, keys));
        let parallel = with_threads(8, || eval.mul(&ct_a, &ct_b, keys));
        prop_assert_eq!(serial.c0(), parallel.c0());
        prop_assert_eq!(serial.c1(), parallel.c1());
    }

    #[test]
    fn keyswitch_is_thread_count_invariant(a in arb_vals(), seed in 1u64..1000) {
        let (_, keys, eval) = fixture();
        let ct = encrypt(&a, seed);
        let (s0, s1) = with_threads(1, || eval.keyswitch(ct.c1(), keys.relin()));
        let (p0, p1) = with_threads(8, || eval.keyswitch(ct.c1(), keys.relin()));
        prop_assert_eq!(s0, p0);
        prop_assert_eq!(s1, p1);
    }

    #[test]
    fn rescale_is_thread_count_invariant(a in arb_vals(), seed in 1u64..1000) {
        let (_, _, eval) = fixture();
        let ct = encrypt(&a, seed);
        let serial = with_threads(1, || eval.rescale(&ct));
        let parallel = with_threads(8, || eval.rescale(&ct));
        prop_assert_eq!(serial.c0(), parallel.c0());
        prop_assert_eq!(serial.c1(), parallel.c1());
    }

    #[test]
    fn rotation_is_thread_count_invariant(a in arb_vals(), seed in 1u64..1000) {
        static ROT_KEYS: OnceLock<KeySet> = OnceLock::new();
        let keys = ROT_KEYS.get_or_init(|| {
            let (_, keys, _) = fixture();
            let mut keys = keys.clone();
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xFACE);
            keys.add_rotation_key(1, &mut rng);
            keys
        });
        let (_, _, eval) = fixture();
        let ct = encrypt(&a, seed);
        let serial = with_threads(1, || eval.rotate(&ct, 1, keys));
        let parallel = with_threads(8, || eval.rotate(&ct, 1, keys));
        prop_assert_eq!(serial.c0(), parallel.c0());
        prop_assert_eq!(serial.c1(), parallel.c1());
    }
}
