//! Bit-exactness digest for the `telemetry` feature gate.
//!
//! Telemetry probes must never perturb the arithmetic: a build with the
//! feature enabled and one without must produce bit-identical ciphertexts
//! for the same seeded pipeline. A single test binary cannot hold both
//! configurations, so this test digests a keyswitch + rotate pipeline and
//! writes the digest to `$POSEIDON_DIGEST_FILE` when set; CI runs it once
//! per configuration and diffs the two files (see `.github/workflows`).

use he_ckks::cipher::{Ciphertext, Plaintext};
use he_ckks::context::CkksContext;
use he_ckks::encoding::Complex;
use he_ckks::eval::Evaluator;
use he_ckks::keys::KeySet;
use he_ckks::params::CkksParams;
use rand::SeedableRng;

/// FNV-1a over every residue word of both ciphertext components.
fn digest(ct: &Ciphertext) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for poly in [ct.c0(), ct.c1()] {
        for row in poly.all_residues() {
            for &v in row {
                eat(v);
            }
        }
    }
    h
}

fn run_pipeline() -> Ciphertext {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xD16E57);
    let mut keys = KeySet::generate(&ctx, &mut rng);
    keys.add_rotation_key(1, &mut rng);
    let eval = Evaluator::new(&ctx);
    let encrypt = |v: f64, rng: &mut rand::rngs::StdRng| {
        let z = vec![Complex::new(v, 0.0)];
        let pt = Plaintext::new(
            ctx.encoder()
                .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
            ctx.default_scale(),
        );
        keys.public().encrypt(&pt, rng)
    };
    let a = encrypt(1.25, &mut rng);
    let b = encrypt(-0.5, &mut rng);
    // Keyswitch-bearing mul, rescale, then a keyswitch-bearing rotation.
    let prod = eval.mul(&a, &b, &keys);
    let scaled = eval.rescale(&prod);
    eval.rotate(&scaled, 1, &keys)
}

#[test]
fn keyswitch_rotate_pipeline_digest_is_deterministic() {
    let d1 = digest(&run_pipeline());
    let d2 = digest(&run_pipeline());
    assert_eq!(d1, d2, "seeded pipeline must be deterministic in-process");
    if let Ok(path) = std::env::var("POSEIDON_DIGEST_FILE") {
        std::fs::write(&path, format!("{d1:016x}\n")).expect("write digest file");
    }
}

/// Same contract for the hoisted batch engine: its digest must be stable,
/// and — since `rotate` routes through the same hoisted code path — each
/// batched output must be bit-identical to the per-call rotation, so the
/// hoisted and unhoisted digests written by CI are the same file content.
#[test]
fn hoisted_rotation_digest_matches_unhoisted() {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xD16E57);
    let mut keys = KeySet::generate(&ctx, &mut rng);
    for s in [1i64, 2, 3] {
        keys.add_rotation_key(s, &mut rng);
    }
    let eval = Evaluator::new(&ctx);
    let z = vec![Complex::new(0.75, 0.0)];
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
        ctx.default_scale(),
    );
    let ct = keys.public().encrypt(&pt, &mut rng);

    let steps = [1i64, 2, 3];
    let batch = eval.rotate_many(&ct, &steps, &keys);
    let mut hoisted = 0u64;
    let mut unhoisted = 0u64;
    for (&s, out) in steps.iter().zip(&batch) {
        hoisted ^= digest(out).rotate_left(s as u32);
        unhoisted ^= digest(&eval.rotate(&ct, s, &keys)).rotate_left(s as u32);
    }
    assert_eq!(
        hoisted, unhoisted,
        "hoisted batch diverged from per-call rotations"
    );
    if let Ok(path) = std::env::var("POSEIDON_HOISTED_DIGEST_FILE") {
        std::fs::write(&path, format!("{hoisted:016x}\n")).expect("write digest file");
    }
}
