//! Property-based tests for the CKKS scheme: homomorphic semantics over
//! random slot vectors.

use he_ckks::cipher::{Ciphertext, Plaintext};
use he_ckks::encoding::Complex;
use he_ckks::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;
use std::sync::OnceLock;

const SLOTS: usize = 4;

/// Shared context/keys (keygen is the expensive part; the properties vary
/// the messages, not the keys).
fn setup() -> &'static (CkksContext, KeySet, Evaluator) {
    static CELL: OnceLock<(CkksContext, KeySet, Evaluator)> = OnceLock::new();
    CELL.get_or_init(|| {
        let ctx = CkksContext::new(CkksParams::toy());
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xFACADE);
        let mut keys = KeySet::generate(&ctx, &mut rng);
        keys.add_rotation_key(1, &mut rng);
        keys.add_conjugation_key(&mut rng);
        let eval = Evaluator::new(&ctx);
        (ctx, keys, eval)
    })
}

fn encrypt(vals: &[f64]) -> Ciphertext {
    let (ctx, keys, _) = setup();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let z: Vec<Complex> = vals.iter().map(|&v| Complex::new(v, 0.0)).collect();
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
        ctx.default_scale(),
    );
    keys.public().encrypt(&pt, &mut rng)
}

fn decrypt(ct: &Ciphertext) -> Vec<f64> {
    let (ctx, keys, _) = setup();
    let pt = keys.secret().decrypt(ct);
    ctx.encoder()
        .decode_rns(pt.poly(), pt.scale(), SLOTS)
        .iter()
        .map(|c| c.re)
        .collect()
}

fn arb_vals() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-8.0f64..8.0, SLOTS)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn encryption_round_trips(vals in arb_vals()) {
        let got = decrypt(&encrypt(&vals));
        for (g, w) in got.iter().zip(&vals) {
            prop_assert!((g - w).abs() < 1e-3, "{g} vs {w}");
        }
    }

    #[test]
    fn addition_is_slotwise(a in arb_vals(), b in arb_vals()) {
        let (_, _, eval) = setup();
        let got = decrypt(&eval.add(&encrypt(&a), &encrypt(&b)));
        for i in 0..SLOTS {
            prop_assert!((got[i] - (a[i] + b[i])).abs() < 1e-3);
        }
    }

    #[test]
    fn multiplication_is_slotwise(a in arb_vals(), b in arb_vals()) {
        let (_, keys, eval) = setup();
        let prod = eval.rescale(&eval.mul(&encrypt(&a), &encrypt(&b), keys));
        let got = decrypt(&prod);
        for i in 0..SLOTS {
            prop_assert!((got[i] - a[i] * b[i]).abs() < 0.05, "{} vs {}", got[i], a[i] * b[i]);
        }
    }

    #[test]
    fn homomorphic_ops_commute_with_plaintext_ops(a in arb_vals(), b in arb_vals()) {
        // dec(enc(a) − enc(b)) + dec(enc(b)) ≈ a
        let (_, _, eval) = setup();
        let diff = decrypt(&eval.sub(&encrypt(&a), &encrypt(&b)));
        for i in 0..SLOTS {
            prop_assert!((diff[i] + b[i] - a[i]).abs() < 2e-3);
        }
    }

    #[test]
    fn rotation_permutes_slots(a in arb_vals()) {
        let (ctx, keys, eval) = setup();
        // Fill all slots by replication (SLOTS divides N/2), then rotating
        // by 1 shifts the replicated pattern by 1.
        let rot = eval.rotate(&encrypt(&a), 1, keys);
        let got = decrypt(&rot);
        let _ = ctx;
        for i in 0..SLOTS {
            let want = a[(i + 1) % SLOTS];
            prop_assert!((got[i] - want).abs() < 1e-2, "slot {i}");
        }
    }

    #[test]
    fn conjugation_is_involutive(a in arb_vals()) {
        let (_, keys, eval) = setup();
        let ct = encrypt(&a);
        let twice = eval.conjugate(&eval.conjugate(&ct, keys), keys);
        let got = decrypt(&twice);
        for i in 0..SLOTS {
            prop_assert!((got[i] - a[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn scalar_multiplication_matches(a in arb_vals(), c in -4.0f64..4.0) {
        let (_, _, eval) = setup();
        let prod = eval.rescale(&eval.mul_const(&encrypt(&a), Complex::new(c, 0.0)));
        let got = decrypt(&prod);
        for i in 0..SLOTS {
            prop_assert!((got[i] - c * a[i]).abs() < 0.02);
        }
    }

    #[test]
    fn rescale_preserves_semantics_at_any_level(a in arb_vals(), b in arb_vals()) {
        let (_, keys, eval) = setup();
        // Two chained multiplications with rescales at different levels.
        let p1 = eval.rescale(&eval.mul(&encrypt(&a), &encrypt(&b), keys));
        let p2 = eval.rescale(&eval.mul(&p1, &eval.adjust(&encrypt(&a), p1.level(), p1.scale()), keys));
        let got = decrypt(&p2);
        for i in 0..SLOTS {
            let want = a[i] * b[i] * a[i];
            prop_assert!((got[i] - want).abs() < 0.3 + want.abs() * 0.01, "{} vs {want}", got[i]);
        }
    }
}
