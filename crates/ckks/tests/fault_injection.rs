//! End-to-end fault-injection campaigns against the checked evaluator:
//! transient upsets must be absorbed by the detect-and-retry path and
//! persistent datapath faults must escalate to a typed error — never a
//! panic, never a silently wrong ciphertext.

#![cfg(feature = "faults")]

use he_ckks::cipher::{Ciphertext, Plaintext};
use he_ckks::context::CkksContext;
use he_ckks::encoding::Complex;
use he_ckks::error::EvalError;
use he_ckks::eval::Evaluator;
use he_ckks::integrity::{integrity_stats, CheckedEvaluator};
use he_ckks::keys::KeySet;
use he_ckks::params::CkksParams;
use poseidon_faults::{FaultKind, FaultPlan, FaultSite};
use rand::SeedableRng;

fn setup() -> (CkksContext, KeySet, rand::rngs::StdRng) {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xFA17);
    let mut keys = KeySet::generate(&ctx, &mut rng);
    keys.add_rotation_key(1, &mut rng);
    (ctx, keys, rng)
}

fn encrypt(ctx: &CkksContext, keys: &KeySet, rng: &mut rand::rngs::StdRng, v: f64) -> Ciphertext {
    let z = vec![Complex::new(v, 0.0)];
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
        ctx.default_scale(),
    );
    keys.public().encrypt(&pt, rng)
}

#[test]
fn transient_residue_fault_is_retried_and_recovers() {
    let _guard = poseidon_faults::test_lock();
    poseidon_faults::disarm();
    let (ctx, keys, mut rng) = setup();
    let a = encrypt(&ctx, &keys, &mut rng, 1.25);
    let b = encrypt(&ctx, &keys, &mut rng, -0.5);
    let checked = CheckedEvaluator::new(&ctx);
    let clean = checked.inner().mul(&a, &b, &keys);

    let before = integrity_stats();
    poseidon_faults::arm(FaultPlan::transient(
        FaultSite::RnsResidue,
        FaultKind::BitFlip,
        0x5EED,
    ));
    let got = checked.mul(&a, &b, &keys).expect("transient must recover");
    poseidon_faults::disarm();
    let after = integrity_stats();

    assert!(poseidon_faults::fired() > 0, "the fault never fired");
    assert_eq!(got, clean, "recovered result must match the clean run");
    assert!(after.detected > before.detected, "upset went undetected");
    assert!(after.retried > before.retried, "recovery not counted");
    assert_eq!(after.escalated, before.escalated, "transient escalated");
}

#[test]
fn persistent_residue_fault_escalates_to_typed_error() {
    let _guard = poseidon_faults::test_lock();
    poseidon_faults::disarm();
    let (ctx, keys, mut rng) = setup();
    let a = encrypt(&ctx, &keys, &mut rng, 2.0);
    let b = encrypt(&ctx, &keys, &mut rng, 3.0);
    let checked = CheckedEvaluator::new(&ctx);

    let before = integrity_stats();
    poseidon_faults::arm(FaultPlan::persistent(
        FaultSite::RnsResidue,
        FaultKind::StuckAt(0),
        0xBAD,
    ));
    let got = checked.mul(&a, &b, &keys);
    poseidon_faults::disarm();
    let after = integrity_stats();

    match got {
        Err(EvalError::IntegrityFault { .. }) => {}
        other => panic!("expected IntegrityFault, got {other:?}"),
    }
    assert!(after.escalated > before.escalated, "escalation not counted");
}

#[test]
fn transient_key_cache_fault_on_rotation_recovers() {
    let _guard = poseidon_faults::test_lock();
    poseidon_faults::disarm();
    let (ctx, keys, mut rng) = setup();
    let a = encrypt(&ctx, &keys, &mut rng, 0.75);
    let checked = CheckedEvaluator::new(&ctx);
    // Warm the eval-form key cache with a clean pass first so the armed
    // plan targets the cached rows the duplicated runs actually read.
    let clean = checked.inner().rotate(&a, 1, &keys);

    let before = integrity_stats();
    poseidon_faults::arm(FaultPlan::transient(
        FaultSite::KeyCache,
        FaultKind::DoubleBitFlip,
        0x1234,
    ));
    let got = checked
        .rotate(&a, 1, &keys)
        .expect("transient must recover");
    poseidon_faults::disarm();
    let after = integrity_stats();

    if poseidon_faults::fired() > 0 {
        assert!(after.detected > before.detected, "upset went undetected");
    }
    assert_eq!(got, clean, "recovered rotation must match the clean run");
    assert_eq!(after.escalated, before.escalated, "transient escalated");
}

#[test]
fn persistent_faults_never_panic_across_sites_and_ops() {
    let _guard = poseidon_faults::test_lock();
    poseidon_faults::disarm();
    let (ctx, keys, mut rng) = setup();
    let a = encrypt(&ctx, &keys, &mut rng, 1.0);
    let b = encrypt(&ctx, &keys, &mut rng, -1.0);
    let checked = CheckedEvaluator::new(&ctx);

    for site in [
        FaultSite::RnsResidue,
        FaultSite::NttTwiddle,
        FaultSite::KeyCache,
    ] {
        for seed in [1u64, 2, 3] {
            poseidon_faults::arm(FaultPlan::persistent(site, FaultKind::BitFlip, seed));
            // Any outcome is acceptable except a panic or a wrong answer:
            // either every duplicated run was corrupted identically-never
            // (escalation), or the site was not exercised by this op and
            // the clean result came back.
            let mul = checked.mul(&a, &b, &keys);
            let rot = checked.rotate(&a, 1, &keys);
            poseidon_faults::disarm();
            for res in [mul, rot] {
                match res {
                    Ok(ct) => {
                        assert!(ct.scale() > 0.0, "nonsense ciphertext returned")
                    }
                    Err(EvalError::IntegrityFault { .. }) => {}
                    Err(other) => panic!("unexpected error class: {other}"),
                }
            }
        }
    }
}

#[test]
fn checked_ops_are_clean_passthrough_when_disarmed() {
    let _guard = poseidon_faults::test_lock();
    poseidon_faults::disarm();
    let (ctx, keys, mut rng) = setup();
    let a = encrypt(&ctx, &keys, &mut rng, 0.5);
    let b = encrypt(&ctx, &keys, &mut rng, 0.25);
    let checked = CheckedEvaluator::new(&ctx);
    let eval = Evaluator::new(&ctx);

    let before = integrity_stats();
    assert_eq!(checked.add(&a, &b).unwrap(), eval.add(&a, &b));
    let prod = checked.mul(&a, &b, &keys).unwrap();
    assert_eq!(prod, eval.mul(&a, &b, &keys));
    assert_eq!(checked.rescale(&prod).unwrap(), eval.rescale(&prod));
    let after = integrity_stats();
    assert!(after.checked >= before.checked + 3, "checks not counted");
    assert_eq!(after.detected, before.detected, "false positive detection");
}
