//! Stage-by-stage diagnostic of the bootstrapping pipeline (run with
//! `--nocapture` to inspect; assertions are deliberately loose).

use he_ckks::bootstrap::{encode_for_bootstrap, exhaust_to_level0, Bootstrapper};
use he_ckks::encoding::Complex;
use he_ckks::prelude::*;
use rand::SeedableRng;

#[test]
#[ignore = "diagnostic: run manually with --nocapture"]
fn stage_by_stage() {
    let ctx = CkksContext::new(CkksParams::bootstrap_demo());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xB007);
    let mut keys = KeySet::generate_sparse(&ctx, 8, &mut rng);
    let eval = Evaluator::new(&ctx);
    let slots = 4usize;
    let bs = Bootstrapper::new(&ctx, slots, 6);
    for step in bs.required_rotations() {
        keys.add_rotation_key(step, &mut rng);
    }
    keys.add_conjugation_key(&mut rng);

    let message = [0.25f64, -0.5, 0.125, 0.4375];
    let z: Vec<Complex> = message.iter().map(|&v| Complex::new(v, 0.0)).collect();
    let pt = encode_for_bootstrap(&ctx, &z);
    let ct = keys.public().encrypt(&pt, &mut rng);
    let exhausted = exhaust_to_level0(&eval, &ct);

    let stride = ctx.n() / (2 * slots);
    let q0 = ctx.chain_basis().primes()[0];
    let d_factor = (ctx.n() / (2 * slots)) as f64;

    // Expected sparse coefficients of the (replicated) message poly.
    let msg_coeffs = {
        let full: Vec<Complex> = (0..ctx.n() / 2).map(|j| z[j % slots]).collect();
        ctx.encoder().encode_to_coeffs(&full, ctx.default_scale())
    };
    println!("message poly coeffs at strides:");
    for k in 0..2 * slots {
        println!("  m[{}] = {}", k * stride, msg_coeffs[k * stride]);
    }
    println!(
        "(nonzero off-stride coeffs: {})",
        msg_coeffs
            .iter()
            .enumerate()
            .filter(|(i, &v)| v != 0 && i % stride != 0)
            .count()
    );

    // Stage 1: ModRaise.
    let raised = bs.mod_raise(&exhausted);
    let dec = keys.secret().decrypt(&raised);
    let raw = dec.poly().to_centered_coeffs();
    println!("\nafter ModRaise (level {}):", raised.level());
    for k in 0..4 {
        println!(
            "  coeff[{}] = {} ; mod q0 centered = {}",
            k * stride,
            raw[k * stride],
            {
                let r = raw[k * stride].rem_euclid(q0 as i64);
                if r > q0 as i64 / 2 {
                    r - q0 as i64
                } else {
                    r
                }
            }
        );
    }

    // Stage 2: SubSum.
    let traced = bs.subsum(&eval, &keys, &raised);
    let dec = keys.secret().decrypt(&traced);
    let raw = dec.poly().to_centered_f64();
    println!(
        "\nafter SubSum (level {}), D = {}:",
        traced.level(),
        d_factor
    );
    let mut off_stride_max = 0f64;
    for (i, &v) in raw.iter().enumerate() {
        if i % stride != 0 {
            off_stride_max = off_stride_max.max(v.abs());
        }
    }
    println!("  max |off-stride coeff| = {off_stride_max} (should be 0)");
    for k in 0..4 {
        let v = raw[k * stride];
        println!(
            "  coeff[{}] = {v:.1} ; /D = {:.2} ; expected D·m = {}",
            k * stride,
            v / d_factor,
            d_factor as i64 * msg_coeffs[k * stride],
        );
    }

    // Stage 3: CoeffToSlot.
    let (low, high) = bs.coeff_to_slot(&eval, &keys, &traced);
    let dl = keys.secret().decrypt(&low);
    let gl = ctx.encoder().decode_rns(dl.poly(), dl.scale(), slots);
    let dh = keys.secret().decrypt(&high);
    let gh = ctx.encoder().decode_rns(dh.poly(), dh.scale(), slots);
    println!(
        "\nafter CoeffToSlot (levels {} / {}):",
        low.level(),
        high.level()
    );
    let dec_traced = keys.secret().decrypt(&traced).poly().to_centered_f64();
    for k in 0..slots {
        println!(
            "  low[{k}] = {:.6}{:+.6}i   want {:.6}  err {:.2e} im {:.2e}",
            gl[k].re,
            gl[k].im,
            dec_traced[k * stride] / d_factor / 2f64.powi(45),
            (gl[k].re - dec_traced[k * stride] / d_factor / 2f64.powi(45)).abs(),
            gl[k].im.abs()
        );
    }
    for k in 0..slots {
        println!(
            "  high[{k}] = {:.6}{:+.6}i  want {:.6}",
            gh[k].re,
            gh[k].im,
            dec_traced[(slots + k) * stride] / d_factor / 2f64.powi(45)
        );
    }

    // Stage 4: EvalMod on the low half.
    let low_mod = bs.eval_mod(&eval, &keys, &low);
    let dm = keys.secret().decrypt(&low_mod);
    let gm = ctx.encoder().decode_rns(dm.poly(), dm.scale(), slots);
    println!("\nafter EvalMod(low) (level {}):", low_mod.level());
    for k in 0..slots {
        let want = {
            let r = (dec_traced[k * stride] / d_factor).rem_euclid(q0 as f64);
            if r > q0 as f64 / 2.0 {
                r - q0 as f64
            } else {
                r
            }
        };
        println!(
            "  lowmod[{k}] = {:.6}{:+.6}i  want ≈ {:.6}",
            gm[k].re,
            gm[k].im,
            want / 2f64.powi(45)
        );
    }

    // Stage 5: SlotToCoeff.
    let high_mod = bs.eval_mod(&eval, &keys, &high);
    let out = bs.slot_to_coeff(&eval, &keys, &low_mod, &high_mod);
    let d = keys.secret().decrypt(&out);
    let g = ctx.encoder().decode_rns(d.poly(), d.scale(), slots);
    println!("\nafter SlotToCoeff (level {}):", out.level());
    for k in 0..slots {
        println!(
            "  out[{k}] = {:.4}{:+.4}i  want {}",
            g[k].re, g[k].im, message[k]
        );
    }
}

/// Replicates eval_mod step by step with decryption probes.
#[test]
#[ignore = "diagnostic: run manually with --nocapture"]
fn evalmod_stages() {
    use he_ckks::polyeval::evaluate_monomial;
    let ctx = CkksContext::new(CkksParams::bootstrap_demo());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xB007);
    let keys = KeySet::generate_sparse(&ctx, 8, &mut rng);
    let eval = Evaluator::new(&ctx);
    let slots = 4usize;

    let probe = |label: &str,
                 ct: &he_ckks::cipher::Ciphertext,
                 truth: &dyn Fn(f64) -> f64,
                 inputs: &[f64]| {
        let d = keys.secret().decrypt(ct);
        let g = ctx.encoder().decode_rns(d.poly(), d.scale(), slots);
        for k in 0..slots {
            let want = truth(inputs[k]);
            println!(
                "  {label}[{k}] = {:.8}{:+.8}i  want {:.8}  (err {:.2e})",
                g[k].re,
                g[k].im,
                want,
                (g[k].re - want).abs().max(g[k].im.abs())
            );
        }
    };

    // Simulate the post-C2S state: encrypt the known slot values directly.
    let inputs = [0.078125f64, 8.118563, 0.077340, -16.204575];
    let z: Vec<Complex> = inputs.iter().map(|&v| Complex::new(v, 0.0)).collect();
    let pt = encode_for_bootstrap(&ctx, &z);
    let ct = keys.public().encrypt(&pt, &mut rng);

    let q0_eff = ctx.chain_basis().primes()[0] as f64 / ctx.default_scale();
    let doublings = 6u32;
    let r_pow = 2f64.powi(doublings as i32);
    let c = 2.0 * std::f64::consts::PI / (q0_eff * r_pow);
    let half = c.sqrt();

    let mut y = ct.clone();
    for _ in 0..2 {
        let p = eval.encode_at_level(&[Complex::new(half, 0.0)], ctx.default_scale(), y.level());
        y = eval.rescale(&eval.mul_plain(&y, &p));
    }
    println!("after const muls (level {}):", y.level());
    probe("y", &y, &|x| c * x, &inputs);

    let sin_c = [
        0.0,
        1.0,
        0.0,
        -1.0 / 6.0,
        0.0,
        1.0 / 120.0,
        0.0,
        -1.0 / 5040.0,
    ];
    let cos_c = [1.0, 0.0, -0.5, 0.0, 1.0 / 24.0, 0.0, -1.0 / 720.0];
    let mut s = evaluate_monomial(&eval, &keys, &y, &sin_c);
    let mut co = evaluate_monomial(&eval, &keys, &y, &cos_c);
    println!("after Taylor (levels {} / {}):", s.level(), co.level());
    probe("sin", &s, &|x| (c * x).sin(), &inputs);
    probe("cos", &co, &|x| (c * x).cos(), &inputs);

    for it in 0..doublings {
        let level = s.level().min(co.level());
        let scale = s.scale();
        let s_al = eval.adjust(&s, level, scale);
        let c_al = eval.adjust(&co, level, scale);
        let sc = eval.rescale(&eval.mul(&s_al, &c_al, &keys));
        let s2 = eval.rescale(&eval.square(&s_al, &keys));
        let mut s_next = eval.add(&sc, &sc);
        let s2d = eval.add(&s2, &s2);
        let one = eval.encode_at_level(&[Complex::new(1.0, 0.0)], s2d.scale(), s2d.level());
        let mut c_next = eval.neg(&eval.sub_plain(&s2d, &one));
        let level = s_next.level().min(c_next.level());
        s_next = eval.adjust(&s_next, level, s_next.scale());
        c_next = eval.adjust(&c_next, level, c_next.scale());
        s = s_next;
        co = c_next;
        let mult = 2f64.powi(it as i32 + 1);
        println!("after doubling {} (level {}):", it + 1, s.level());
        probe("sin", &s, &|x| (c * mult * x).sin(), &inputs);
    }
}
