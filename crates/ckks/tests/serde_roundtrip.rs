//! Serde round trips for ciphertexts: serialise after encryption,
//! deserialise, keep computing, decrypt (feature `serde`).
#![cfg(feature = "serde")]

use he_ckks::cipher::Plaintext;
use he_ckks::encoding::Complex;
use he_ckks::prelude::*;
use rand::SeedableRng;

#[test]
fn ciphertext_survives_json_round_trip_and_still_computes() {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(404);
    let keys = KeySet::generate(&ctx, &mut rng);
    let eval = Evaluator::new(&ctx);
    let z = vec![Complex::new(1.25, 0.0), Complex::new(-2.0, 0.0)];
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
        ctx.default_scale(),
    );
    let ct = keys.public().encrypt(&pt, &mut rng);

    let json = serde_json::to_string(&ct).unwrap();
    let back: Ciphertext = serde_json::from_str(&json).unwrap();
    assert_eq!(back, ct);

    // The deserialised ciphertext is fully usable.
    let sq = eval.rescale(&eval.square(&back, &keys));
    let dec = keys.secret().decrypt(&sq);
    let got = ctx.encoder().decode_rns(dec.poly(), dec.scale(), 2);
    assert!((got[0].re - 1.5625).abs() < 0.01);
    assert!((got[1].re - 4.0).abs() < 0.01);
}

#[test]
fn plaintext_round_trips() {
    let ctx = CkksContext::new(CkksParams::toy());
    let z = vec![Complex::new(0.5, -0.25); 4];
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
        ctx.default_scale(),
    );
    let back: Plaintext = serde_json::from_str(&serde_json::to_string(&pt).unwrap()).unwrap();
    assert_eq!(back, pt);
}

#[test]
fn corrupted_scale_is_rejected() {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(405);
    let keys = KeySet::generate(&ctx, &mut rng);
    let z = vec![Complex::new(1.0, 0.0)];
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
        ctx.default_scale(),
    );
    let ct = keys.public().encrypt(&pt, &mut rng);
    let mut v: serde_json::Value = serde_json::to_value(&ct).unwrap();
    v["scale"] = serde_json::json!(-1.0);
    assert!(serde_json::from_value::<Ciphertext>(v).is_err());
}
