//! End-to-end packed bootstrapping: exhaust a ciphertext to level 0, run
//! the full ModRaise → SubSum → CoeffToSlot → EvalMod → SlotToCoeff
//! pipeline, and verify the refreshed ciphertext still decrypts to the
//! original message (to the expected approximation precision).

use he_ckks::bootstrap::{encode_for_bootstrap, exhaust_to_level0, Bootstrapper};
use he_ckks::encoding::Complex;
use he_ckks::prelude::*;
use rand::SeedableRng;

fn run_bootstrap(slots: usize, doublings: u32, message: &[f64]) -> (Vec<f64>, Vec<Complex>, usize) {
    let ctx = CkksContext::new(CkksParams::bootstrap_demo());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xB007);
    // Sparse secret keeps the ModRaise overflow |I| small enough for the
    // Taylor-grade sine approximation.
    let mut keys = KeySet::generate_sparse(&ctx, 8, &mut rng);
    let eval = Evaluator::new(&ctx);
    let bs = Bootstrapper::new(&ctx, slots, doublings);
    for step in bs.required_rotations() {
        keys.add_rotation_key(step, &mut rng);
    }
    keys.add_conjugation_key(&mut rng);

    let z: Vec<Complex> = message.iter().map(|&v| Complex::new(v, 0.0)).collect();
    let pt = encode_for_bootstrap(&ctx, &z);
    let ct = keys.public().encrypt(&pt, &mut rng);
    let exhausted = exhaust_to_level0(&eval, &ct);
    assert_eq!(exhausted.level(), 0);

    let refreshed = bs.bootstrap(&eval, &keys, &exhausted);
    let dec = keys.secret().decrypt(&refreshed);
    let got = ctx.encoder().decode_rns(dec.poly(), dec.scale(), slots);
    (message.to_vec(), got, refreshed.level())
}

#[test]
fn bootstrap_refreshes_an_exhausted_ciphertext() {
    let message = [0.25, -0.5, 0.125, 0.4375];
    let (want, got, level) = run_bootstrap(4, 6, &message);
    // The whole point: the refreshed ciphertext has levels to spend again.
    assert!(
        level >= 2,
        "refreshed ciphertext must regain levels, got {level}"
    );
    for (j, (w, g)) in want.iter().zip(&got).enumerate() {
        assert!(
            (w - g.re).abs() < 0.05,
            "slot {j}: wanted {w}, got {} (im {})",
            g.re,
            g.im
        );
        assert!(g.im.abs() < 0.05, "slot {j}: imaginary leakage {}", g.im);
    }
}

#[test]
fn bootstrap_preserves_zero() {
    let message = [0.0, 0.0, 0.0, 0.0];
    let (_, got, _) = run_bootstrap(4, 6, &message);
    for (j, g) in got.iter().enumerate() {
        assert!(g.abs() < 0.05, "slot {j}: {} should be ≈ 0", g.re);
    }
}
