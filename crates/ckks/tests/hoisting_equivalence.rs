//! Bit-exactness of the hoisted rotation engine and the eval-form key
//! cache: `apply_galois_hoisted`/`rotate_many` must reproduce the
//! per-call `rotate`/`apply_galois` outputs exactly, across levels, step
//! sets, and thread counts, and a key stripped of its evaluation-form
//! cache must keyswitch to the identical result through the fallback
//! (slice + NTT) path.
//!
//! Ring degree 2048 puts every operand over `poseidon_par::PAR_THRESHOLD`,
//! so the limb-parallel dispatch genuinely runs under the hoisted engine.

use std::sync::OnceLock;

use he_ckks::cipher::Plaintext;
use he_ckks::encoding::Complex;
use he_ckks::prelude::*;
use poseidon_par::with_threads;
use proptest::prelude::*;
use rand::SeedableRng;

const STEPS: [i64; 4] = [1, 2, 3, 5];

fn fixture() -> &'static (CkksContext, KeySet, Evaluator) {
    static FIXTURE: OnceLock<(CkksContext, KeySet, Evaluator)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ctx = CkksContext::new(CkksParams::paper_32bit(1 << 11, 3));
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEEF);
        let mut keys = KeySet::generate(&ctx, &mut rng);
        for s in STEPS {
            keys.add_rotation_key(s, &mut rng);
        }
        keys.add_conjugation_key(&mut rng);
        let eval = Evaluator::new(&ctx);
        (ctx, keys, eval)
    })
}

fn encrypt(vals: &[f64], seed: u64) -> Ciphertext {
    let (ctx, keys, _) = fixture();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let z: Vec<Complex> = vals.iter().map(|&v| Complex::new(v, 0.0)).collect();
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
        ctx.default_scale(),
    );
    keys.public().encrypt(&pt, &mut rng)
}

fn arb_vals() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-4.0f64..4.0, 8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// One hoisted batch == N independent rotations, bit for bit, at any
    /// level of the chain.
    #[test]
    fn rotate_many_is_bit_identical_to_rotate(
        a in arb_vals(),
        seed in 1u64..1000,
        level in 0usize..3,
    ) {
        let (_, keys, eval) = fixture();
        let ct = eval.drop_to_level(&encrypt(&a, seed), level);
        let batch = eval.rotate_many(&ct, &STEPS, keys);
        prop_assert_eq!(batch.len(), STEPS.len());
        for (&s, hoisted) in STEPS.iter().zip(&batch) {
            let single = eval.rotate(&ct, s, keys);
            prop_assert_eq!(hoisted.c0(), single.c0(), "c0 diverged at step {}", s);
            prop_assert_eq!(hoisted.c1(), single.c1(), "c1 diverged at step {}", s);
        }
    }

    /// The hoisted engine is deterministic across thread counts.
    #[test]
    fn rotate_many_is_thread_count_invariant(a in arb_vals(), seed in 1u64..1000) {
        let (_, keys, eval) = fixture();
        let ct = encrypt(&a, seed);
        let serial = with_threads(1, || eval.rotate_many(&ct, &STEPS, keys));
        let parallel = with_threads(8, || eval.rotate_many(&ct, &STEPS, keys));
        for (s, p) in serial.iter().zip(&parallel) {
            prop_assert_eq!(s.c0(), p.c0());
            prop_assert_eq!(s.c1(), p.c1());
        }
    }

    /// Explicit hoist + apply covers conjugation too (any Galois element,
    /// not just rotation powers of 5).
    #[test]
    fn hoisted_conjugation_matches_conjugate(a in arb_vals(), seed in 1u64..1000) {
        let (_, keys, eval) = fixture();
        let ct = encrypt(&a, seed);
        let g = keys.conjugation_element();
        let key = keys.galois_key(g).expect("conjugation key generated");
        let h = eval.hoist(&ct);
        let hoisted = eval.apply_galois_hoisted(&ct, &h, g, key);
        let plain = eval.conjugate(&ct, keys);
        prop_assert_eq!(hoisted.c0(), plain.c0());
        prop_assert_eq!(hoisted.c1(), plain.c1());
        prop_assert_eq!(h.uses(), 1);
    }

    /// The eval-form key cache is an encoding of the same key material:
    /// stripping it and forcing the slice + forward-NTT fallback must
    /// yield the identical keyswitch output.
    #[test]
    fn eval_key_cache_matches_seed_keyswitch_path(
        a in arb_vals(),
        seed in 1u64..1000,
        level in 0usize..3,
    ) {
        let (_, keys, eval) = fixture();
        let ct = eval.drop_to_level(&encrypt(&a, seed), level);
        let cached = eval.keyswitch(ct.c1(), keys.relin());
        let stripped = keys.relin().without_eval_cache();
        let fallback = eval.keyswitch(ct.c1(), &stripped);
        prop_assert_eq!(cached, fallback);
    }
}
