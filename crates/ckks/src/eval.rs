//! The homomorphic evaluator: every CKKS basic operation of the paper's
//! §II-A, implemented over the RNS substrates.
//!
//! | paper operation | method |
//! |---|---|
//! | HAdd (ct+ct, ct+pt)   | [`Evaluator::add`], [`Evaluator::add_plain`] |
//! | PMult                 | [`Evaluator::mul_plain`], [`Evaluator::mul_const`] |
//! | CMult + relinearise   | [`Evaluator::mul`] |
//! | Rescale               | [`Evaluator::rescale`] |
//! | Keyswitch (Modup/RNSconv/Moddown) | [`Evaluator::keyswitch`] |
//! | Rotation (automorphism + keyswitch) | [`Evaluator::rotate`] |
//! | Conjugation           | [`Evaluator::conjugate`] |

use std::sync::atomic::{AtomicU64, Ordering};

use he_rns::conv::{moddown, rescale as rns_rescale};
use he_rns::{RnsBasis, RnsPoly, ShoupOperand};

use crate::cipher::{Ciphertext, Plaintext};
use crate::context::CkksContext;
use crate::encoding::Complex;
use crate::error::EvalError;
use crate::keys::{KeySet, KeySwitchKey};

/// Per-`Evaluator` telemetry handles, resolved from the global registry
/// once at construction so the hot paths never touch the registry lock.
/// Cloning an evaluator shares the handles (and thus the counters).
#[cfg(feature = "telemetry")]
#[derive(Debug, Clone)]
struct EvalMetrics {
    mul: std::sync::Arc<poseidon_telemetry::Metric>,
    keyswitch: std::sync::Arc<poseidon_telemetry::Metric>,
    digit: std::sync::Arc<poseidon_telemetry::Metric>,
    rotate: std::sync::Arc<poseidon_telemetry::Metric>,
    conjugate: std::sync::Arc<poseidon_telemetry::Metric>,
    rescale: std::sync::Arc<poseidon_telemetry::Metric>,
    hoist: std::sync::Arc<poseidon_telemetry::Metric>,
    reuse: std::sync::Arc<poseidon_telemetry::Metric>,
    saved_ntt: std::sync::Arc<poseidon_telemetry::Metric>,
}

#[cfg(feature = "telemetry")]
impl EvalMetrics {
    fn resolve() -> Self {
        let r = poseidon_telemetry::Registry::global();
        Self {
            mul: r.scope("eval.mul"),
            keyswitch: r.scope("eval.keyswitch"),
            digit: r.scope("keyswitch.digit"),
            rotate: r.scope("eval.rotate"),
            conjugate: r.scope("eval.conjugate"),
            rescale: r.scope("eval.rescale"),
            hoist: r.scope("keyswitch.hoist"),
            reuse: r.scope("keyswitch.reuse"),
            saved_ntt: r.scope("keyswitch.saved_ntt"),
        }
    }
}

/// The reusable half of a rotation: the digit decomposition of `c_1`,
/// lifted to the extended basis `Q_l ∪ P` and forward-NTT'd **once**
/// (Halevi–Shoup hoisting).
///
/// Rotating a ciphertext splits into (1) the digit lift + forward NTTs of
/// `c_1` — identical for every rotation amount — and (2) the per-rotation
/// automorphism + key products. [`Evaluator::hoist`] pays (1) once;
/// [`Evaluator::apply_galois_hoisted`] then applies the automorphism
/// directly to the pre-decomposed evaluation-form digits (a pure index
/// permutation), so `N` rotations of one ciphertext cost one lift instead
/// of `N`. This is exactly the redundant-NTT traffic Poseidon's operator
/// reuse analysis (§III) targets on the rotation hot path.
///
/// The decomposition is tied to the ciphertext it was hoisted from: using
/// it with any other ciphertext yields garbage (but is not checked beyond
/// the level assertion — the digits carry no back-pointer).
#[derive(Debug)]
pub struct HoistedDecomposition {
    level: usize,
    /// Eval-form digit lifts of `c_1` over `Q_l ∪ P`, one per chain prime.
    digits: Vec<RnsPoly>,
    /// Number of rotations served, for reuse/saved-NTT accounting.
    uses: AtomicU64,
}

impl HoistedDecomposition {
    /// Level of the ciphertext this was hoisted from.
    #[inline]
    pub fn level(&self) -> usize {
        self.level
    }

    /// Number of digits (`level + 1` under the α = 1 decomposition).
    #[inline]
    pub fn digit_count(&self) -> usize {
        self.digits.len()
    }

    /// How many rotations this decomposition has served so far.
    #[inline]
    pub fn uses(&self) -> u64 {
        self.uses.load(Ordering::Relaxed)
    }
}

/// Stateless evaluator bound to a context.
///
/// # Examples
///
/// ```
/// use he_ckks::prelude::*;
/// use he_ckks::encoding::Complex;
/// let ctx = CkksContext::new(CkksParams::toy());
/// let mut rng = rand::thread_rng();
/// let keys = KeySet::generate(&ctx, &mut rng);
/// let eval = Evaluator::new(&ctx);
/// let z = vec![Complex::new(2.0, 0.0); 4];
/// let ct = keys.public().encrypt(&ctx.encoder().encode_rns(ctx.chain_basis(), &z, ctx.default_scale()).into(), &mut rng);
/// # let _ = (eval, ct);
/// ```
#[derive(Debug, Clone)]
pub struct Evaluator {
    ctx: CkksContext,
    #[cfg(feature = "telemetry")]
    tel: EvalMetrics,
}

impl From<he_rns::RnsPoly> for Plaintext {
    /// Wraps a coefficient polynomial at scale 1 — prefer
    /// [`CkksContext::encoder`] paths, which track the scale.
    fn from(poly: he_rns::RnsPoly) -> Self {
        Plaintext::new(poly, 1.0)
    }
}

impl Evaluator {
    /// Creates an evaluator for `ctx`.
    pub fn new(ctx: &CkksContext) -> Self {
        Self {
            ctx: ctx.clone(),
            #[cfg(feature = "telemetry")]
            tel: EvalMetrics::resolve(),
        }
    }

    /// The bound context.
    #[inline]
    pub fn context(&self) -> &CkksContext {
        &self.ctx
    }

    fn align(&self, a: &Ciphertext, b: &Ciphertext) -> (Ciphertext, Ciphertext) {
        let level = a.level().min(b.level());
        (self.drop_to_level(a, level), self.drop_to_level(b, level))
    }

    /// Fallible [`drop_to_level`](Self::drop_to_level).
    ///
    /// # Errors
    ///
    /// [`EvalError::LevelMismatch`] if `level` exceeds the current level
    /// (truncation can only lower a level).
    pub fn try_drop_to_level(
        &self,
        ct: &Ciphertext,
        level: usize,
    ) -> Result<Ciphertext, EvalError> {
        if level > ct.level() {
            return Err(EvalError::LevelMismatch {
                a: ct.level(),
                b: level,
            });
        }
        if level == ct.level() {
            return Ok(ct.clone());
        }
        Ok(Ciphertext::new(
            ct.c0().truncate_basis(level + 1),
            ct.c1().truncate_basis(level + 1),
            ct.scale(),
        ))
    }

    /// Drops a ciphertext to a lower level without rescaling (modulus
    /// truncation).
    ///
    /// # Panics
    ///
    /// Panics if `level` exceeds the current level.
    pub fn drop_to_level(&self, ct: &Ciphertext, level: usize) -> Ciphertext {
        self.try_drop_to_level(ct, level)
            .unwrap_or_else(|_| panic!("cannot raise level by truncation"))
    }

    /// Fallible [`add`](Self::add).
    ///
    /// # Errors
    ///
    /// [`EvalError::ScaleMismatch`] if the scales differ by more than
    /// 0.01 %.
    pub fn try_add(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, EvalError> {
        let (a, b) = self.align(a, b);
        check_scales_match(a.scale(), b.scale())?;
        Ok(Ciphertext::new(
            a.c0().add(b.c0()),
            a.c1().add(b.c1()),
            a.scale(),
        ))
    }

    /// Homomorphic addition (paper HAdd, ct+ct). Operands are aligned to
    /// the lower level; scales must match to within floating slack.
    ///
    /// # Panics
    ///
    /// Panics if the scales differ by more than 0.01 %.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.try_add(a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`add_assign`](Self::add_assign).
    ///
    /// # Errors
    ///
    /// [`EvalError::LevelMismatch`] if the operands sit at different
    /// levels, [`EvalError::ScaleMismatch`] if the scales disagree. `acc`
    /// is untouched on error.
    pub fn try_add_assign(&self, acc: &mut Ciphertext, term: &Ciphertext) -> Result<(), EvalError> {
        if acc.level() != term.level() {
            return Err(EvalError::LevelMismatch {
                a: acc.level(),
                b: term.level(),
            });
        }
        check_scales_match(acc.scale(), term.scale())?;
        acc.add_assign_raw(term);
        Ok(())
    }

    /// In-place homomorphic addition `acc += term` — the accumulation form
    /// used by [`add_many`]/[`linear_combination`] so summing `k` terms
    /// reuses one allocation instead of cloning per term. Unlike [`add`],
    /// operands must already sit at the same level.
    ///
    /// [`add`]: Self::add
    /// [`add_many`]: Self::add_many
    /// [`linear_combination`]: Self::linear_combination
    ///
    /// # Panics
    ///
    /// Panics if levels differ or scales disagree by more than 0.01 %.
    pub fn add_assign(&self, acc: &mut Ciphertext, term: &Ciphertext) {
        self.try_add_assign(acc, term).unwrap_or_else(|e| match e {
            EvalError::LevelMismatch { .. } => panic!("add_assign needs pre-aligned levels"),
            other => panic!("{other}"),
        })
    }

    /// Fallible [`sub`](Self::sub).
    ///
    /// # Errors
    ///
    /// [`EvalError::ScaleMismatch`] if the scales differ by more than
    /// 0.01 %.
    pub fn try_sub(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, EvalError> {
        let (a, b) = self.align(a, b);
        check_scales_match(a.scale(), b.scale())?;
        Ok(Ciphertext::new(
            a.c0().sub(b.c0()),
            a.c1().sub(b.c1()),
            a.scale(),
        ))
    }

    /// Homomorphic subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the scales differ by more than 0.01 %.
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.try_sub(a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Negation.
    pub fn neg(&self, a: &Ciphertext) -> Ciphertext {
        Ciphertext::new(a.c0().neg(), a.c1().neg(), a.scale())
    }

    /// Fallible [`add_plain`](Self::add_plain).
    ///
    /// # Errors
    ///
    /// [`EvalError::ScaleMismatch`] if ciphertext and plaintext scales
    /// disagree.
    pub fn try_add_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, EvalError> {
        check_scales_match(a.scale(), pt.scale())?;
        let m = pt.poly().truncate_basis(a.level() + 1);
        Ok(Ciphertext::new(a.c0().add(&m), a.c1().clone(), a.scale()))
    }

    /// Ciphertext + plaintext addition (paper HAdd, ct+pt): adds `m` to
    /// `c_0` only.
    ///
    /// # Panics
    ///
    /// Panics if the scales disagree by more than 0.01 %.
    pub fn add_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        self.try_add_plain(a, pt).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`sub_plain`](Self::sub_plain).
    ///
    /// # Errors
    ///
    /// [`EvalError::ScaleMismatch`] if ciphertext and plaintext scales
    /// disagree.
    pub fn try_sub_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, EvalError> {
        check_scales_match(a.scale(), pt.scale())?;
        let m = pt.poly().truncate_basis(a.level() + 1);
        Ok(Ciphertext::new(a.c0().sub(&m), a.c1().clone(), a.scale()))
    }

    /// Ciphertext − plaintext.
    ///
    /// # Panics
    ///
    /// Panics if the scales disagree by more than 0.01 %.
    pub fn sub_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        self.try_sub_plain(a, pt).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Plaintext multiplication (paper PMult): `(c_0·m, c_1·m)` with scale
    /// Δ_ct · Δ_pt. Rescale afterwards to restore the working scale.
    ///
    /// The plaintext is a fixed multiplicand known ahead of the
    /// ciphertext, so its residues are lifted to Shoup lanes once
    /// ([`he_rns::ShoupOperand`]) and reused for both components — no
    /// Barrett reduction on the pointwise path.
    pub fn mul_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let m = ShoupOperand::new(&pt.poly().truncate_basis(a.level() + 1).into_eval());
        let mut c0 = a.c0().clone().into_eval();
        c0.mul_assign_shoup(&m);
        let mut c1 = a.c1().clone().into_eval();
        c1.mul_assign_shoup(&m);
        Ciphertext::new(c0.into_coeff(), c1.into_coeff(), a.scale() * pt.scale())
    }

    /// Multiplies by a complex constant, encoding it at the context scale.
    /// Rescale afterwards.
    pub fn mul_const(&self, a: &Ciphertext, c: Complex) -> Ciphertext {
        let scale = self.ctx.default_scale();
        let pt = self.encode_at_level(&[c], scale, a.level());
        self.mul_plain(a, &pt)
    }

    /// Encodes a (replicated) slot vector at a specific level.
    pub fn encode_at_level(&self, z: &[Complex], scale: f64, level: usize) -> Plaintext {
        let basis = self.ctx.level_basis(level);
        Plaintext::new(self.ctx.encoder().encode_rns(&basis, z, scale), scale)
    }

    /// Ciphertext multiplication with relinearisation (paper CMult):
    /// computes `(d_0, d_1, d_2)` and folds `d_2` back with the relin key.
    /// Result scale is Δ_a · Δ_b; rescale afterwards.
    pub fn mul(&self, a: &Ciphertext, b: &Ciphertext, keys: &KeySet) -> Ciphertext {
        self.try_mul(a, b, keys).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`mul`](Self::mul). Today the only failure mode is an
    /// integrity escalation reported by the checked evaluation layer; the
    /// plain path always succeeds but shares this signature so callers can
    /// swap in checked execution without changing control flow.
    ///
    /// # Errors
    ///
    /// Reserved for [`EvalError::IntegrityFault`] under checked execution.
    pub fn try_mul(
        &self,
        a: &Ciphertext,
        b: &Ciphertext,
        keys: &KeySet,
    ) -> Result<Ciphertext, EvalError> {
        let (a, b) = self.align(a, b);
        #[cfg(feature = "telemetry")]
        let _span = self.tel.mul.span(((a.level() + 1) * self.ctx.n()) as u64);
        let a0 = a.c0().clone().into_eval();
        let a1 = a.c1().clone().into_eval();
        let b0 = b.c0().clone().into_eval();
        let b1 = b.c1().clone().into_eval();
        let d0 = a0.mul(&b0).into_coeff();
        let d1 = a0.mul(&b1).add(&a1.mul(&b0)).into_coeff();
        let d2 = a1.mul(&b1).into_coeff();
        let (k0, k1) = self.keyswitch(&d2, keys.relin());
        Ok(Ciphertext::new(
            d0.add(&k0),
            d1.add(&k1),
            a.scale() * b.scale(),
        ))
    }

    /// Squares a ciphertext (saves one eval-form product vs [`mul`]).
    ///
    /// [`mul`]: Self::mul
    pub fn square(&self, a: &Ciphertext, keys: &KeySet) -> Ciphertext {
        self.try_square(a, keys).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`square`](Self::square); see [`try_mul`](Self::try_mul)
    /// for the error contract.
    pub fn try_square(&self, a: &Ciphertext, keys: &KeySet) -> Result<Ciphertext, EvalError> {
        #[cfg(feature = "telemetry")]
        let _span = self.tel.mul.span(((a.level() + 1) * self.ctx.n()) as u64);
        let a0 = a.c0().clone().into_eval();
        let a1 = a.c1().clone().into_eval();
        let d0 = a0.mul(&a0).into_coeff();
        let cross = a0.mul(&a1);
        let d1 = cross.add(&cross).into_coeff();
        let d2 = a1.mul(&a1).into_coeff();
        let (k0, k1) = self.keyswitch(&d2, keys.relin());
        Ok(Ciphertext::new(
            d0.add(&k0),
            d1.add(&k1),
            a.scale() * a.scale(),
        ))
    }

    /// The raw keyswitch primitive (paper Keyswitch): given `d` in the
    /// level basis, returns `(e_0, e_1)` with `e_0 + e_1·s ≈ d·s'`.
    ///
    /// Per RNS digit (α = 1, one digit per chain prime): lift `[d]_{q_j}`
    /// exactly to the extended basis `Q_l ∪ P` (a degenerate Modup, Eq. 3),
    /// multiply by key pair `j`, accumulate, then Moddown (Eq. 2) divides
    /// the `P` factor away.
    pub fn keyswitch(&self, d: &RnsPoly, key: &KeySwitchKey) -> (RnsPoly, RnsPoly) {
        let level = d.level_count() - 1;
        let ext_basis = self.ctx.level_basis(level).concat(self.ctx.special_basis());
        let n = d.basis().n();
        #[cfg(feature = "telemetry")]
        let _span = self.tel.keyswitch.span(((level + 1) * n) as u64);

        // Digits are independent until the final accumulation, so the digit
        // loop dispatches across the limb-parallel engine (each worker runs
        // its lifts/NTTs serially — the parallelism axis is the digit).
        // Lift temporaries come from the scratch pool; the key products
        // reuse the key-slice allocations via `mul_assign`.
        let digit_weight = ext_basis.len() * n;
        let (p0s, p1s) = poseidon_par::par_map_unzip(level + 1, digit_weight, |j| {
            #[cfg(feature = "telemetry")]
            let _digit = self.tel.digit.span(digit_weight as u64);
            let lifted = lift_digit(d.residues(j), &ext_basis);
            let (mut p0, mut p1) = self.eval_key_slice(key, j, level);
            p0.mul_assign(&lifted);
            p1.mul_assign(&lifted);
            for buf in lifted.into_residues() {
                poseidon_par::scratch::recycle(buf);
            }
            (p0, p1)
        });
        // Modular addition is exact and associative, so in-order in-place
        // accumulation is bit-identical to the old pairwise `add` chain.
        let fold = |polys: Vec<RnsPoly>| {
            let mut acc: Option<RnsPoly> = None;
            for p in polys {
                match &mut acc {
                    None => acc = Some(p),
                    Some(a) => a.add_assign(&p),
                }
            }
            acc.expect("level ≥ 0")
        };
        let acc0 = fold(p0s);
        let acc1 = fold(p1s);
        let q_len = level + 1;
        (
            moddown(&acc0.into_coeff(), q_len),
            moddown(&acc1.into_coeff(), q_len),
        )
    }

    /// Key digit slice in evaluation form: the precomputed cache when the
    /// key carries one, else the seed path (`sliced` + two forward NTTs).
    fn eval_key_slice(&self, key: &KeySwitchKey, j: usize, level: usize) -> (RnsPoly, RnsPoly) {
        match key.eval_sliced(&self.ctx, j, level) {
            Some(pair) => pair,
            None => {
                let (kb, ka) = key.sliced(&self.ctx, j, level);
                (kb.into_eval(), ka.into_eval())
            }
        }
    }

    /// Precomputes the rotation-independent half of a keyswitch: digit
    /// lift of `c_1` to `Q_l ∪ P`, forward-NTT'd once (Halevi–Shoup
    /// hoisting). Feed the result to [`apply_galois_hoisted`] to rotate
    /// the same ciphertext many times for one lift.
    ///
    /// [`apply_galois_hoisted`]: Self::apply_galois_hoisted
    pub fn hoist(&self, a: &Ciphertext) -> HoistedDecomposition {
        let level = a.level();
        let ext_basis = self.ctx.level_basis(level).concat(self.ctx.special_basis());
        let n = a.n();
        let digit_weight = ext_basis.len() * n;
        #[cfg(feature = "telemetry")]
        let _span = self.tel.hoist.span(((level + 1) * digit_weight) as u64);
        let digits = poseidon_par::par_map(level + 1, digit_weight, |j| {
            lift_digit(a.c1().residues(j), &ext_basis)
        });
        HoistedDecomposition {
            level,
            digits,
            uses: AtomicU64::new(0),
        }
    }

    /// Applies Galois element `g` to `a` using its hoisted decomposition
    /// `h`: the automorphism acts on the pre-NTT'd digits as a pure index
    /// permutation (see [`he_ntt::galois_permutation`]), so no lift and no
    /// forward NTT of ciphertext data happens here. Bit-identical to
    /// [`apply_galois`], which is itself routed through this path.
    ///
    /// [`apply_galois`]: Self::apply_galois
    ///
    /// # Panics
    ///
    /// Panics if `h` was hoisted at a different level than `a`.
    pub fn apply_galois_hoisted(
        &self,
        a: &Ciphertext,
        h: &HoistedDecomposition,
        g: u64,
        key: &KeySwitchKey,
    ) -> Ciphertext {
        assert_eq!(
            a.level(),
            h.level,
            "hoisted decomposition level must match the ciphertext"
        );
        let level = h.level;
        let n = a.n();
        #[cfg(feature = "telemetry")]
        let _span = self.tel.keyswitch.span(((level + 1) * n) as u64);
        // Reuse accounting: every application after the first rides on the
        // hoisted digits and skips (level+1) lifts of ext_len forward NTTs.
        let prior = h.uses.fetch_add(1, Ordering::Relaxed);
        let ext_len = self.ctx.special_basis().len() + level + 1;
        #[cfg(feature = "telemetry")]
        if prior > 0 {
            self.tel.reuse.add(((level + 1) * ext_len) as u64);
            self.tel.saved_ntt.add(((level + 1) * ext_len) as u64);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = prior;
        let digit_weight = ext_len * n;
        let (p0s, p1s) = poseidon_par::par_map_unzip(level + 1, digit_weight, |j| {
            #[cfg(feature = "telemetry")]
            let _digit = self.tel.digit.span(digit_weight as u64);
            let rotated = h.digits[j].automorphism_eval(g);
            let (mut p0, mut p1) = self.eval_key_slice(key, j, level);
            p0.mul_assign(&rotated);
            p1.mul_assign(&rotated);
            (p0, p1)
        });
        let fold = |polys: Vec<RnsPoly>| {
            let mut acc: Option<RnsPoly> = None;
            for p in polys {
                match &mut acc {
                    None => acc = Some(p),
                    Some(a) => a.add_assign(&p),
                }
            }
            acc.expect("level ≥ 0")
        };
        let q_len = level + 1;
        let k0 = moddown(&fold(p0s).into_coeff(), q_len);
        let k1 = moddown(&fold(p1s).into_coeff(), q_len);
        let t0 = a.c0().automorphism(g);
        Ciphertext::new(t0.add(&k0), k1, a.scale())
    }

    /// Fallible [`rescale`](Self::rescale).
    ///
    /// # Errors
    ///
    /// [`EvalError::RescaleAtLevelZero`] at level 0 (no prime left to
    /// drop).
    pub fn try_rescale(&self, a: &Ciphertext) -> Result<Ciphertext, EvalError> {
        if a.level() == 0 {
            return Err(EvalError::RescaleAtLevelZero);
        }
        #[cfg(feature = "telemetry")]
        let _span = self
            .tel
            .rescale
            .span(((a.level() + 1) * self.ctx.n()) as u64);
        let dropped = *a.c0().basis().primes().last().expect("non-empty") as f64;
        Ok(Ciphertext::new(
            rns_rescale(a.c0()),
            rns_rescale(a.c1()),
            a.scale() / dropped,
        ))
    }

    /// Rescale (paper Rescale): divides by the last chain prime and drops a
    /// level; the tracked scale shrinks by exactly that prime.
    ///
    /// # Panics
    ///
    /// Panics at level 0 (no prime left to drop).
    pub fn rescale(&self, a: &Ciphertext) -> Ciphertext {
        self.try_rescale(a).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Rescales until the scale is within a factor of 2 of the default
    /// working scale (utility for deep circuits).
    pub fn rescale_to_default(&self, a: &Ciphertext) -> Ciphertext {
        let mut ct = a.clone();
        while ct.level() >= 1 && ct.scale() > 2.0 * self.ctx.default_scale() {
            ct = self.rescale(&ct);
        }
        ct
    }

    /// Sums many ciphertexts (aligning levels/scales to the weakest
    /// operand via [`adjust`]).
    ///
    /// [`adjust`]: Self::adjust
    ///
    /// # Panics
    ///
    /// Panics if `cts` is empty.
    pub fn add_many(&self, cts: &[Ciphertext]) -> Ciphertext {
        self.try_add_many(cts).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`add_many`](Self::add_many).
    ///
    /// # Errors
    ///
    /// [`EvalError::EmptyOperands`] if `cts` is empty.
    pub fn try_add_many(&self, cts: &[Ciphertext]) -> Result<Ciphertext, EvalError> {
        if cts.is_empty() {
            return Err(EvalError::EmptyOperands);
        }
        let level = cts.iter().map(Ciphertext::level).min().expect("non-empty");
        let scale = cts
            .iter()
            .find(|c| c.level() == level)
            .expect("non-empty")
            .scale();
        let mut acc = self.adjust(&cts[0], level, scale);
        for ct in &cts[1..] {
            let term = self.adjust(ct, level, scale);
            self.try_add_assign(&mut acc, &term)?;
        }
        Ok(acc)
    }

    /// Slot-wise linear combination `Σ w_i · ct_i` with plaintext scalar
    /// weights — one PMult per operand, one rescale total.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or are zero.
    pub fn linear_combination(&self, cts: &[Ciphertext], weights: &[f64]) -> Ciphertext {
        assert_eq!(cts.len(), weights.len(), "one weight per ciphertext");
        assert!(!cts.is_empty(), "need at least one term");
        self.try_linear_combination(cts, weights)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`linear_combination`](Self::linear_combination).
    ///
    /// # Errors
    ///
    /// [`EvalError::EmptyOperands`] if the lists are empty or their
    /// lengths differ.
    pub fn try_linear_combination(
        &self,
        cts: &[Ciphertext],
        weights: &[f64],
    ) -> Result<Ciphertext, EvalError> {
        if cts.is_empty() || cts.len() != weights.len() {
            return Err(EvalError::EmptyOperands);
        }
        let scale = self.ctx.default_scale();
        let level = cts.iter().map(Ciphertext::level).min().expect("non-empty");
        let ct_scale = cts
            .iter()
            .find(|c| c.level() == level)
            .expect("non-empty")
            .scale();
        let mut acc: Option<Ciphertext> = None;
        for (ct, &w) in cts.iter().zip(weights) {
            let aligned = self.adjust(ct, level, ct_scale);
            let pt = self.encode_at_level(&[Complex::new(w, 0.0)], scale, level);
            let term = self.mul_plain(&aligned, &pt);
            match &mut acc {
                None => acc = Some(term),
                Some(a) => self.try_add_assign(a, &term)?,
            }
        }
        self.try_rescale(&acc.expect("non-empty"))
    }

    /// Brings a ciphertext to exactly (`target_level`, ≈`target_scale`) by
    /// modulus truncation plus, when the scales disagree, one multiplication
    /// by the constant 1 encoded at the correcting scale followed by a
    /// rescale. Used to align circuit branches of different depth.
    ///
    /// # Panics
    ///
    /// Panics if `target_level` exceeds the current level, or if a scale
    /// correction is needed at level 0.
    pub fn adjust(&self, ct: &Ciphertext, target_level: usize, target_scale: f64) -> Ciphertext {
        assert!(target_level <= ct.level(), "cannot raise level");
        let rel = (ct.scale() - target_scale).abs() / target_scale;
        if rel <= 1e-9 || ct.level() == target_level {
            // Either already matched, or no spare level to correct with:
            // accept the (small, by construction) approximate-rescaling
            // drift. Tolerating large drift here would silently corrupt
            // values, so it stays asserted.
            assert!(
                rel <= 1e-4,
                "scale drift {rel} too large to absorb without a spare level"
            );
            let mut out = self.drop_to_level(ct, target_level);
            out.set_scale(target_scale);
            return out;
        }
        // Drop to one level above the target, multiply by 1 at the
        // correcting scale, rescale down onto the target level.
        let staged = self.drop_to_level(ct, target_level + 1);
        let dropped = *staged.c0().basis().primes().last().expect("non-empty") as f64;
        let correction = target_scale * dropped / staged.scale();
        assert!(correction > 1.0, "scale correction must be an up-scaling");
        let one = self.encode_at_level(&[Complex::new(1.0, 0.0)], correction, staged.level());
        let mut out = self.rescale(&self.mul_plain(&staged, &one));
        out.set_scale(target_scale);
        out
    }

    /// Fallible [`adjust`](Self::adjust) — the same level/scale alignment,
    /// but degenerate inputs surface as typed errors instead of aborting.
    ///
    /// # Errors
    ///
    /// [`EvalError::LevelMismatch`] if `target_level` exceeds the current
    /// level (truncation cannot raise a level);
    /// [`EvalError::ScaleMismatch`] if a scale correction is needed but is
    /// not an up-scaling, or if the drift is too large to absorb with no
    /// spare level to correct on.
    pub fn try_adjust(
        &self,
        ct: &Ciphertext,
        target_level: usize,
        target_scale: f64,
    ) -> Result<Ciphertext, EvalError> {
        if target_level > ct.level() {
            return Err(EvalError::LevelMismatch {
                a: ct.level(),
                b: target_level,
            });
        }
        let rel = (ct.scale() - target_scale).abs() / target_scale;
        if rel <= 1e-9 || ct.level() == target_level {
            if rel > 1e-4 {
                // No spare level to correct with and the drift is beyond
                // the tolerated approximate-rescaling slack.
                return Err(EvalError::ScaleMismatch {
                    a: ct.scale(),
                    b: target_scale,
                });
            }
            let mut out = self.try_drop_to_level(ct, target_level)?;
            out.set_scale(target_scale);
            return Ok(out);
        }
        let staged = self.try_drop_to_level(ct, target_level + 1)?;
        let dropped = *staged.c0().basis().primes().last().expect("non-empty") as f64;
        let correction = target_scale * dropped / staged.scale();
        if correction <= 1.0 {
            return Err(EvalError::ScaleMismatch {
                a: staged.scale(),
                b: target_scale,
            });
        }
        let one = self.encode_at_level(&[Complex::new(1.0, 0.0)], correction, staged.level());
        let mut out = self.try_rescale(&self.mul_plain(&staged, &one))?;
        out.set_scale(target_scale);
        Ok(out)
    }

    /// Applies Galois element `g` to both components and keyswitches back
    /// to `s` using `key` (which must match `g`).
    ///
    /// Internally routed through [`hoist`] + [`apply_galois_hoisted`] so
    /// single and batched rotations share one code path (and are therefore
    /// bit-identical): the digit lift happens on `c_1` *before* the
    /// automorphism, which then acts on the evaluation-form digits as an
    /// index permutation.
    ///
    /// [`hoist`]: Self::hoist
    /// [`apply_galois_hoisted`]: Self::apply_galois_hoisted
    pub fn apply_galois(&self, a: &Ciphertext, g: u64, key: &KeySwitchKey) -> Ciphertext {
        let h = self.hoist(a);
        self.apply_galois_hoisted(a, &h, g, key)
    }

    /// Fallible [`apply_galois`] that looks the keyswitching key up in
    /// `keys` by its raw Galois element.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::MissingGaloisKey`] if no key for `g` exists.
    ///
    /// [`apply_galois`]: Self::apply_galois
    pub fn try_apply_galois(
        &self,
        a: &Ciphertext,
        g: u64,
        keys: &KeySet,
    ) -> Result<Ciphertext, EvalError> {
        let key = keys
            .galois_key(g)
            .ok_or(EvalError::MissingGaloisKey { g })?;
        Ok(self.apply_galois(a, g, key))
    }

    /// Rotation (paper Rotation): left-rotates the slot vector by `steps`
    /// (automorphism with `g = 5^steps` + keyswitch).
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::MissingRotationKey`] if no rotation key for
    /// `steps` was generated.
    ///
    /// # Examples
    ///
    /// ```
    /// use he_ckks::prelude::*;
    /// use he_ckks::encoding::Complex;
    /// let ctx = CkksContext::new(CkksParams::toy());
    /// let mut rng = rand::thread_rng();
    /// let keys = KeySet::generate(&ctx, &mut rng); // no rotation keys
    /// let eval = Evaluator::new(&ctx);
    /// let pt = Plaintext::new(
    ///     ctx.encoder().encode_rns(ctx.chain_basis(), &[Complex::new(1.0, 0.0)], ctx.default_scale()),
    ///     ctx.default_scale(),
    /// );
    /// let ct = keys.public().encrypt(&pt, &mut rng);
    /// assert!(matches!(
    ///     eval.try_rotate(&ct, 1, &keys),
    ///     Err(EvalError::MissingRotationKey { steps: 1 })
    /// ));
    /// ```
    pub fn try_rotate(
        &self,
        a: &Ciphertext,
        steps: i64,
        keys: &KeySet,
    ) -> Result<Ciphertext, EvalError> {
        let g = keys.galois_element(steps);
        let key = keys
            .galois_key(g)
            .ok_or(EvalError::MissingRotationKey { steps })?;
        #[cfg(feature = "telemetry")]
        let _span = self
            .tel
            .rotate
            .span(((a.level() + 1) * self.ctx.n()) as u64);
        Ok(self.apply_galois(a, g, key))
    }

    /// Panicking wrapper over [`try_rotate`](Self::try_rotate).
    ///
    /// # Panics
    ///
    /// Panics if the rotation key for `steps` is missing.
    pub fn rotate(&self, a: &Ciphertext, steps: i64, keys: &KeySet) -> Ciphertext {
        self.try_rotate(a, steps, keys)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Rotates one ciphertext by every step in `steps`, hoisting the digit
    /// decomposition once (Halevi–Shoup): the lift + forward NTTs of `c_1`
    /// are paid once instead of `steps.len()` times. Each output is
    /// bit-identical to the corresponding [`try_rotate`] call.
    ///
    /// All keys are resolved before any work starts, so a missing key
    /// fails fast without a wasted hoist.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::MissingRotationKey`] for the first step whose
    /// rotation key is absent.
    ///
    /// [`try_rotate`]: Self::try_rotate
    pub fn try_rotate_many(
        &self,
        a: &Ciphertext,
        steps: &[i64],
        keys: &KeySet,
    ) -> Result<Vec<Ciphertext>, EvalError> {
        let resolved: Vec<(u64, &KeySwitchKey)> = steps
            .iter()
            .map(|&s| {
                let g = keys.galois_element(s);
                keys.galois_key(g)
                    .map(|k| (g, k))
                    .ok_or(EvalError::MissingRotationKey { steps: s })
            })
            .collect::<Result<_, _>>()?;
        if resolved.is_empty() {
            return Ok(Vec::new());
        }
        let h = self.hoist(a);
        Ok(resolved
            .into_iter()
            .map(|(g, key)| {
                #[cfg(feature = "telemetry")]
                let _span = self
                    .tel
                    .rotate
                    .span(((a.level() + 1) * self.ctx.n()) as u64);
                self.apply_galois_hoisted(a, &h, g, key)
            })
            .collect())
    }

    /// Panicking wrapper over [`try_rotate_many`](Self::try_rotate_many).
    ///
    /// # Panics
    ///
    /// Panics if any rotation key is missing.
    pub fn rotate_many(&self, a: &Ciphertext, steps: &[i64], keys: &KeySet) -> Vec<Ciphertext> {
        self.try_rotate_many(a, steps, keys)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Complex conjugation of every slot (`g = 2N − 1`).
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::MissingConjugationKey`] if no conjugation key
    /// was generated.
    pub fn try_conjugate(&self, a: &Ciphertext, keys: &KeySet) -> Result<Ciphertext, EvalError> {
        let g = keys.conjugation_element();
        let key = keys.galois_key(g).ok_or(EvalError::MissingConjugationKey)?;
        #[cfg(feature = "telemetry")]
        let _span = self
            .tel
            .conjugate
            .span(((a.level() + 1) * self.ctx.n()) as u64);
        Ok(self.apply_galois(a, g, key))
    }

    /// Panicking wrapper over [`try_conjugate`](Self::try_conjugate).
    ///
    /// # Panics
    ///
    /// Panics if the conjugation key is missing.
    pub fn conjugate(&self, a: &Ciphertext, keys: &KeySet) -> Ciphertext {
        self.try_conjugate(a, keys)
            .unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Exact lift of a single-prime residue vector `t` (values in `[0, q_j)`)
/// to every prime of `ext_basis` — a degenerate Modup (Eq. 3) — followed by
/// the forward NTT. One Barrett reducer per target prime replaces the
/// per-element `%`; Barrett reduction is exact, so the lifted residues are
/// bit-identical to the division path.
fn lift_digit(t: &[u64], ext_basis: &RnsBasis) -> RnsPoly {
    let residues: Vec<Vec<u64>> = ext_basis
        .reducers()
        .iter()
        .map(|red| {
            let mut buf = poseidon_par::scratch::take(t.len());
            for (o, &v) in buf.iter_mut().zip(t) {
                *o = red.reduce(u128::from(v));
            }
            buf
        })
        .collect();
    RnsPoly::from_residues(ext_basis, residues, he_rns::Form::Coeff).into_eval()
}

fn check_scales_match(a: f64, b: f64) -> Result<(), EvalError> {
    if (a - b).abs() <= 1e-4 * a.abs().max(b.abs()) {
        Ok(())
    } else {
        Err(EvalError::ScaleMismatch { a, b })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;
    use rand::SeedableRng;

    fn setup() -> (CkksContext, KeySet, Evaluator, rand::rngs::StdRng) {
        let ctx = CkksContext::new(CkksParams::toy());
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let keys = KeySet::generate(&ctx, &mut rng);
        let eval = Evaluator::new(&ctx);
        (ctx, keys, eval, rng)
    }

    fn encrypt(
        ctx: &CkksContext,
        keys: &KeySet,
        rng: &mut rand::rngs::StdRng,
        vals: &[f64],
    ) -> Ciphertext {
        let z: Vec<Complex> = vals.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let pt = Plaintext::new(
            ctx.encoder()
                .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
            ctx.default_scale(),
        );
        keys.public().encrypt(&pt, rng)
    }

    fn decrypt(ctx: &CkksContext, keys: &KeySet, ct: &Ciphertext, n: usize) -> Vec<f64> {
        let pt = keys.secret().decrypt(ct);
        ctx.encoder()
            .decode_rns(pt.poly(), pt.scale(), n)
            .iter()
            .map(|c| c.re)
            .collect()
    }

    #[test]
    fn add_sub_neg_are_slotwise() {
        let (ctx, keys, eval, mut rng) = setup();
        let a = encrypt(&ctx, &keys, &mut rng, &[1.0, 2.0, -3.0, 0.5]);
        let b = encrypt(&ctx, &keys, &mut rng, &[0.25, -1.0, 7.0, 2.0]);
        let sum = decrypt(&ctx, &keys, &eval.add(&a, &b), 4);
        let diff = decrypt(&ctx, &keys, &eval.sub(&a, &b), 4);
        let neg = decrypt(&ctx, &keys, &eval.neg(&a), 4);
        for (g, w) in sum.iter().zip([1.25, 1.0, 4.0, 2.5]) {
            assert!((g - w).abs() < 1e-4, "{g} vs {w}");
        }
        for (g, w) in diff.iter().zip([0.75, 3.0, -10.0, -1.5]) {
            assert!((g - w).abs() < 1e-4);
        }
        for (g, w) in neg.iter().zip([-1.0, -2.0, 3.0, -0.5]) {
            assert!((g - w).abs() < 1e-4);
        }
    }

    #[test]
    fn plain_ops_match_semantics() {
        let (ctx, keys, eval, mut rng) = setup();
        let a = encrypt(&ctx, &keys, &mut rng, &[1.0, -2.0]);
        let pt = eval.encode_at_level(
            &[Complex::new(0.5, 0.0), Complex::new(4.0, 0.0)],
            ctx.default_scale(),
            a.level(),
        );
        let got = decrypt(&ctx, &keys, &eval.add_plain(&a, &pt), 2);
        assert!((got[0] - 1.5).abs() < 1e-4 && (got[1] - 2.0).abs() < 1e-4);
        let prod = eval.rescale(&eval.mul_plain(&a, &pt));
        let got = decrypt(&ctx, &keys, &prod, 2);
        assert!(
            (got[0] - 0.5).abs() < 1e-3 && (got[1] + 8.0).abs() < 1e-3,
            "{got:?}"
        );
    }

    #[test]
    fn cmult_with_relin_multiplies_slotwise() {
        let (ctx, keys, eval, mut rng) = setup();
        let a = encrypt(&ctx, &keys, &mut rng, &[1.5, -2.0, 0.0, 3.0]);
        let b = encrypt(&ctx, &keys, &mut rng, &[2.0, 2.5, 5.0, -1.0]);
        let prod = eval.rescale(&eval.mul(&a, &b, &keys));
        let got = decrypt(&ctx, &keys, &prod, 4);
        for (g, w) in got.iter().zip([3.0, -5.0, 0.0, -3.0]) {
            assert!((g - w).abs() < 1e-2, "{g} vs {w}");
        }
    }

    #[test]
    fn square_matches_mul_self() {
        let (ctx, keys, eval, mut rng) = setup();
        let a = encrypt(&ctx, &keys, &mut rng, &[1.25, -0.5]);
        let s1 = decrypt(&ctx, &keys, &eval.rescale(&eval.square(&a, &keys)), 2);
        let s2 = decrypt(&ctx, &keys, &eval.rescale(&eval.mul(&a, &a, &keys)), 2);
        for (x, y) in s1.iter().zip(&s2) {
            assert!((x - y).abs() < 1e-2);
        }
        assert!((s1[0] - 1.5625).abs() < 1e-2);
    }

    #[test]
    fn rotation_shifts_slots_left() {
        let (ctx, keys, eval, mut rng) = setup();
        let mut keys = keys;
        keys.add_rotation_key(1, &mut rng);
        // Use a full-slot vector so rotation is a clean cyclic shift.
        let slots = ctx.params().slots();
        let vals: Vec<f64> = (0..slots).map(|i| (i % 17) as f64 / 4.0).collect();
        let a = encrypt(&ctx, &keys, &mut rng, &vals);
        let rot = eval.rotate(&a, 1, &keys);
        let got = decrypt(&ctx, &keys, &rot, slots);
        for i in 0..8 {
            let want = vals[(i + 1) % slots];
            assert!(
                (got[i] - want).abs() < 1e-3,
                "slot {i}: {} vs {want}",
                got[i]
            );
        }
    }

    #[test]
    fn conjugation_flips_imaginary_parts() {
        let (ctx, keys, eval, mut rng) = setup();
        let mut keys = keys;
        keys.add_conjugation_key(&mut rng);
        let z = vec![Complex::new(1.0, 2.0), Complex::new(-0.5, -1.5)];
        let pt = Plaintext::new(
            ctx.encoder()
                .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
            ctx.default_scale(),
        );
        let ct = keys.public().encrypt(&pt, &mut rng);
        let conj = eval.conjugate(&ct, &keys);
        let dec = keys.secret().decrypt(&conj);
        let got = ctx.encoder().decode_rns(dec.poly(), dec.scale(), 2);
        assert!((got[0].im + 2.0).abs() < 1e-3);
        assert!((got[1].im - 1.5).abs() < 1e-3);
        assert!((got[0].re - 1.0).abs() < 1e-3);
    }

    #[test]
    fn rescale_preserves_value_and_drops_level() {
        let (ctx, keys, eval, mut rng) = setup();
        let a = encrypt(&ctx, &keys, &mut rng, &[4.0]);
        let b = encrypt(&ctx, &keys, &mut rng, &[0.25]);
        let prod = eval.mul(&a, &b, &keys);
        let level_before = prod.level();
        let rs = eval.rescale(&prod);
        assert_eq!(rs.level(), level_before - 1);
        let got = decrypt(&ctx, &keys, &rs, 1);
        assert!((got[0] - 1.0).abs() < 1e-2, "{}", got[0]);
    }

    #[test]
    fn deep_circuit_three_multiplications() {
        let (ctx, keys, eval, mut rng) = setup();
        // ((2·1.5)·0.5) = 1.5 over 3 CMults on the toy 4-prime chain.
        let a = encrypt(&ctx, &keys, &mut rng, &[2.0]);
        let b = encrypt(&ctx, &keys, &mut rng, &[1.5]);
        let c = encrypt(&ctx, &keys, &mut rng, &[0.5]);
        let ab = eval.rescale(&eval.mul(&a, &b, &keys));
        let abc = eval.rescale(&eval.mul(&ab, &c, &keys));
        let got = decrypt(&ctx, &keys, &abc, 1);
        assert!((got[0] - 1.5).abs() < 0.05, "{}", got[0]);
    }

    #[test]
    fn add_many_sums_across_levels() {
        let (ctx, keys, eval, mut rng) = setup();
        let a = encrypt(&ctx, &keys, &mut rng, &[1.0]);
        let b = encrypt(&ctx, &keys, &mut rng, &[2.0]);
        // Put c at a lower level via a rescaled multiplication by 1.
        let one = eval.encode_at_level(&[Complex::new(1.0, 0.0)], ctx.default_scale(), a.level());
        let c = eval.rescale(&eval.mul_plain(&encrypt(&ctx, &keys, &mut rng, &[3.0]), &one));
        let sum = eval.add_many(&[a, b, c]);
        let got = decrypt(&ctx, &keys, &sum, 1);
        assert!((got[0] - 6.0).abs() < 0.02, "{}", got[0]);
    }

    #[test]
    fn linear_combination_weights_slots() {
        let (ctx, keys, eval, mut rng) = setup();
        let a = encrypt(&ctx, &keys, &mut rng, &[2.0]);
        let b = encrypt(&ctx, &keys, &mut rng, &[-1.0]);
        let lc = eval.linear_combination(&[a, b], &[0.5, 3.0]);
        let got = decrypt(&ctx, &keys, &lc, 1);
        assert!((got[0] - (-2.0)).abs() < 0.02, "{}", got[0]);
    }

    #[test]
    fn try_rotate_reports_missing_key() {
        let (ctx, keys, eval, mut rng) = setup(); // no rotation keys generated
        let a = encrypt(&ctx, &keys, &mut rng, &[1.0]);
        match eval.try_rotate(&a, 5, &keys) {
            Err(EvalError::MissingRotationKey { steps }) => assert_eq!(steps, 5),
            other => panic!("expected MissingRotationKey, got {other:?}"),
        }
        assert!(matches!(
            eval.try_conjugate(&a, &keys),
            Err(EvalError::MissingConjugationKey)
        ));
        let g = keys.galois_element(5);
        assert!(matches!(
            eval.try_apply_galois(&a, g, &keys),
            Err(EvalError::MissingGaloisKey { .. })
        ));
    }

    #[test]
    fn try_rotate_succeeds_with_key() {
        let (ctx, mut keys, eval, mut rng) = setup();
        keys.add_rotation_key(1, &mut rng);
        let slots = ctx.params().slots();
        let vals: Vec<f64> = (0..slots).map(|i| i as f64).collect();
        let a = encrypt(&ctx, &keys, &mut rng, &vals);
        let rot = eval.try_rotate(&a, 1, &keys).expect("key present");
        let got = decrypt(&ctx, &keys, &rot, slots);
        assert!((got[0] - vals[1]).abs() < 1e-3);
    }

    #[test]
    fn hoisted_rotation_is_bit_identical_to_rotate() {
        let (ctx, mut keys, eval, mut rng) = setup();
        keys.add_rotation_key(1, &mut rng);
        keys.add_rotation_key(2, &mut rng);
        let slots = ctx.params().slots();
        let vals: Vec<f64> = (0..slots).map(|i| i as f64 / 3.0).collect();
        let a = encrypt(&ctx, &keys, &mut rng, &vals);
        let h = eval.hoist(&a);
        assert_eq!(h.level(), a.level());
        assert_eq!(h.digit_count(), a.level() + 1);
        for steps in [1i64, 2] {
            let g = keys.galois_element(steps);
            let key = keys.galois_key(g).expect("key present");
            let hoisted = eval.apply_galois_hoisted(&a, &h, g, key);
            let plain = eval.rotate(&a, steps, &keys);
            assert_eq!(hoisted, plain, "steps {steps}");
        }
        assert_eq!(h.uses(), 2);
        let batch = eval.rotate_many(&a, &[1, 2], &keys);
        assert_eq!(batch[0], eval.rotate(&a, 1, &keys));
        assert_eq!(batch[1], eval.rotate(&a, 2, &keys));
    }

    #[test]
    fn rotate_many_fails_fast_on_missing_key() {
        let (ctx, mut keys, eval, mut rng) = setup();
        keys.add_rotation_key(1, &mut rng);
        let a = encrypt(&ctx, &keys, &mut rng, &[1.0]);
        match eval.try_rotate_many(&a, &[1, 4], &keys) {
            Err(EvalError::MissingRotationKey { steps }) => assert_eq!(steps, 4),
            other => panic!("expected MissingRotationKey, got {other:?}"),
        }
        assert!(eval
            .try_rotate_many(&a, &[], &keys)
            .expect("empty")
            .is_empty());
    }

    #[test]
    fn add_assign_matches_add() {
        let (ctx, keys, eval, mut rng) = setup();
        let a = encrypt(&ctx, &keys, &mut rng, &[1.0, -2.0]);
        let b = encrypt(&ctx, &keys, &mut rng, &[0.5, 4.0]);
        let mut acc = a.clone();
        eval.add_assign(&mut acc, &b);
        assert_eq!(acc, eval.add(&a, &b));
    }

    #[test]
    #[should_panic(expected = "missing rotation key for 3 steps")]
    fn rotate_wrapper_keeps_legacy_panic_message() {
        let (ctx, keys, eval, mut rng) = setup();
        let a = encrypt(&ctx, &keys, &mut rng, &[1.0]);
        let _ = eval.rotate(&a, 3, &keys);
    }

    #[test]
    #[should_panic(expected = "scale mismatch")]
    fn add_rejects_scale_mismatch() {
        let (ctx, keys, eval, mut rng) = setup();
        let a = encrypt(&ctx, &keys, &mut rng, &[1.0]);
        let mut b = encrypt(&ctx, &keys, &mut rng, &[1.0]);
        b.set_scale(b.scale() * 3.0);
        let _ = eval.add(&a, &b);
    }
}
