//! Typed errors for the fallible evaluation and construction paths.
//!
//! The panicking convenience methods ([`Evaluator::rotate`],
//! [`Evaluator::conjugate`], [`CkksContext::new`]) are thin wrappers over
//! `try_` counterparts returning these errors, so library users embedding
//! the scheme in a service can handle missing keys or bad parameters
//! without unwinding.
//!
//! [`Evaluator::rotate`]: crate::eval::Evaluator::rotate
//! [`Evaluator::conjugate`]: crate::eval::Evaluator::conjugate
//! [`CkksContext::new`]: crate::context::CkksContext::new

use std::fmt;

/// Why a homomorphic operation (or context construction) could not proceed.
///
/// (`Eq` is not derived: [`ScaleMismatch`](EvalError::ScaleMismatch)
/// carries the offending `f64` scales.)
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EvalError {
    /// No rotation key was generated for this step count
    /// (see [`KeySet::add_rotation_key`]).
    ///
    /// [`KeySet::add_rotation_key`]: crate::keys::KeySet::add_rotation_key
    MissingRotationKey {
        /// The requested left-rotation step count.
        steps: i64,
    },
    /// No conjugation key was generated
    /// (see [`KeySet::add_conjugation_key`]).
    ///
    /// [`KeySet::add_conjugation_key`]: crate::keys::KeySet::add_conjugation_key
    MissingConjugationKey,
    /// No keyswitching key exists for the raw Galois element `g`.
    MissingGaloisKey {
        /// The Galois element `X ↦ X^g` that has no key.
        g: u64,
    },
    /// Parameter validation failed ([`CkksParams::validate`]).
    ///
    /// [`CkksParams::validate`]: crate::params::CkksParams::validate
    InvalidParams(String),
    /// Operand levels disagree where the operation needs them pre-aligned
    /// (e.g. `add_assign`), or a level would have to be *raised* by
    /// truncation (`drop_to_level`).
    LevelMismatch {
        /// Level of the first operand (or the current level).
        a: usize,
        /// Level of the second operand (or the requested level).
        b: usize,
    },
    /// Operand scales differ by more than the floating slack (0.01 %).
    ScaleMismatch {
        /// Scale of the first operand.
        a: f64,
        /// Scale of the second operand.
        b: f64,
    },
    /// An operand list was empty (`add_many`, `linear_combination`), or a
    /// paired list (weights) had mismatched length.
    EmptyOperands,
    /// Rescale requested at level 0 — no chain prime left to drop.
    RescaleAtLevelZero,
    /// The integrity layer detected datapath corruption that survived the
    /// retry (redundant-residue guard mismatch or duplicate-execution
    /// checksum divergence). See `he_ckks::integrity`.
    IntegrityFault {
        /// The checked boundary that caught the fault (e.g. `"mul"`,
        /// `"keyswitch"`, `"pool.retire"`).
        site: &'static str,
    },
    /// A plan (or caller) requested bootstrapping but the executing
    /// backend has no [`Bootstrapper`](crate::bootstrap::Bootstrapper)
    /// available — either none was supplied to `plan::execute_with` or
    /// the backend does not support the operation.
    BootstrapUnavailable,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::MissingRotationKey { steps } => {
                write!(f, "missing rotation key for {steps} steps")
            }
            EvalError::MissingConjugationKey => write!(f, "missing conjugation key"),
            EvalError::MissingGaloisKey { g } => {
                write!(f, "missing Galois key for element {g}")
            }
            EvalError::InvalidParams(msg) => write!(f, "invalid CKKS parameters: {msg}"),
            EvalError::LevelMismatch { a, b } => {
                write!(f, "level mismatch: {a} vs {b}")
            }
            // Exact legacy `assert_scales_match` panic text: downstream
            // should_panic tests match the "scale mismatch" prefix.
            EvalError::ScaleMismatch { a, b } => write!(f, "scale mismatch: {a} vs {b}"),
            EvalError::EmptyOperands => write!(f, "need at least one ciphertext"),
            EvalError::RescaleAtLevelZero => write!(f, "cannot rescale at level 0"),
            EvalError::IntegrityFault { site } => {
                write!(
                    f,
                    "integrity fault detected at {site} (persisted across retry)"
                )
            }
            EvalError::BootstrapUnavailable => {
                write!(f, "no bootstrapper available on this backend")
            }
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_panic_messages() {
        // The panicking wrappers format these errors, so the historical
        // panic substrings (asserted by downstream should_panic tests)
        // must survive verbatim.
        assert_eq!(
            EvalError::MissingRotationKey { steps: -3 }.to_string(),
            "missing rotation key for -3 steps"
        );
        assert_eq!(
            EvalError::MissingConjugationKey.to_string(),
            "missing conjugation key"
        );
        assert!(EvalError::InvalidParams("n must be a power of two".into())
            .to_string()
            .starts_with("invalid CKKS parameters"));
        // "scale mismatch: {a} vs {b}" is the exact assert_scales_match
        // text the should_panic tests match on.
        assert_eq!(
            EvalError::ScaleMismatch { a: 2.0, b: 6.0 }.to_string(),
            "scale mismatch: 2 vs 6"
        );
        assert_eq!(
            EvalError::RescaleAtLevelZero.to_string(),
            "cannot rescale at level 0"
        );
        assert_eq!(
            EvalError::EmptyOperands.to_string(),
            "need at least one ciphertext"
        );
        assert!(EvalError::IntegrityFault { site: "keyswitch" }
            .to_string()
            .contains("integrity fault"));
    }
}
