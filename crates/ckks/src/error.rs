//! Typed errors for the fallible evaluation and construction paths.
//!
//! The panicking convenience methods ([`Evaluator::rotate`],
//! [`Evaluator::conjugate`], [`CkksContext::new`]) are thin wrappers over
//! `try_` counterparts returning these errors, so library users embedding
//! the scheme in a service can handle missing keys or bad parameters
//! without unwinding.
//!
//! [`Evaluator::rotate`]: crate::eval::Evaluator::rotate
//! [`Evaluator::conjugate`]: crate::eval::Evaluator::conjugate
//! [`CkksContext::new`]: crate::context::CkksContext::new

use std::fmt;

/// Why a homomorphic operation (or context construction) could not proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EvalError {
    /// No rotation key was generated for this step count
    /// (see [`KeySet::add_rotation_key`]).
    ///
    /// [`KeySet::add_rotation_key`]: crate::keys::KeySet::add_rotation_key
    MissingRotationKey {
        /// The requested left-rotation step count.
        steps: i64,
    },
    /// No conjugation key was generated
    /// (see [`KeySet::add_conjugation_key`]).
    ///
    /// [`KeySet::add_conjugation_key`]: crate::keys::KeySet::add_conjugation_key
    MissingConjugationKey,
    /// No keyswitching key exists for the raw Galois element `g`.
    MissingGaloisKey {
        /// The Galois element `X ↦ X^g` that has no key.
        g: u64,
    },
    /// Parameter validation failed ([`CkksParams::validate`]).
    ///
    /// [`CkksParams::validate`]: crate::params::CkksParams::validate
    InvalidParams(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::MissingRotationKey { steps } => {
                write!(f, "missing rotation key for {steps} steps")
            }
            EvalError::MissingConjugationKey => write!(f, "missing conjugation key"),
            EvalError::MissingGaloisKey { g } => {
                write!(f, "missing Galois key for element {g}")
            }
            EvalError::InvalidParams(msg) => write!(f, "invalid CKKS parameters: {msg}"),
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_legacy_panic_messages() {
        // The panicking wrappers format these errors, so the historical
        // panic substrings (asserted by downstream should_panic tests)
        // must survive verbatim.
        assert_eq!(
            EvalError::MissingRotationKey { steps: -3 }.to_string(),
            "missing rotation key for -3 steps"
        );
        assert_eq!(
            EvalError::MissingConjugationKey.to_string(),
            "missing conjugation key"
        );
        assert!(EvalError::InvalidParams("n must be a power of two".into())
            .to_string()
            .starts_with("invalid CKKS parameters"));
    }
}
