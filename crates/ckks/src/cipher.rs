//! Plaintext and ciphertext containers.

use he_rns::{Form, RnsPoly};

/// An encoded message: a ring polynomial together with its scale Δ.
///
/// Stored in coefficient form; the evaluator converts on demand.
#[derive(Debug, Clone, PartialEq)]
pub struct Plaintext {
    poly: RnsPoly,
    scale: f64,
}

impl Plaintext {
    /// Wraps a coefficient-form polynomial at scale Δ.
    ///
    /// # Panics
    ///
    /// Panics if the polynomial is in evaluation form.
    pub fn new(poly: RnsPoly, scale: f64) -> Self {
        assert_eq!(poly.form(), Form::Coeff, "plaintexts store coefficients");
        Self { poly, scale }
    }

    /// The underlying polynomial.
    #[inline]
    pub fn poly(&self) -> &RnsPoly {
        &self.poly
    }

    /// Consumes into the underlying polynomial.
    #[inline]
    pub fn into_poly(self) -> RnsPoly {
        self.poly
    }

    /// The encoding scale Δ.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Level (chain index of the highest prime present).
    #[inline]
    pub fn level(&self) -> usize {
        self.poly.level_count() - 1
    }
}

/// A CKKS ciphertext `(c_0, c_1)` with `c_0 + c_1·s ≈ Δ·m (mod Q_level)`.
///
/// Both components are kept in coefficient form between operations; the
/// evaluator performs the explicit NTT/INTT conversions — matching the
/// operator-level dataflow the Poseidon trace layer instruments.
#[derive(Debug, Clone, PartialEq)]
pub struct Ciphertext {
    c0: RnsPoly,
    c1: RnsPoly,
    scale: f64,
}

impl Ciphertext {
    /// Assembles a ciphertext from components at scale Δ.
    ///
    /// # Panics
    ///
    /// Panics if the components disagree in basis or form, or are in
    /// evaluation form.
    pub fn new(c0: RnsPoly, c1: RnsPoly, scale: f64) -> Self {
        assert_eq!(c0.basis(), c1.basis(), "components must share a basis");
        assert_eq!(c0.form(), Form::Coeff, "ciphertexts store coefficients");
        assert_eq!(c1.form(), Form::Coeff, "ciphertexts store coefficients");
        Self { c0, c1, scale }
    }

    /// The `c_0` component.
    #[inline]
    pub fn c0(&self) -> &RnsPoly {
        &self.c0
    }

    /// The `c_1` component.
    #[inline]
    pub fn c1(&self) -> &RnsPoly {
        &self.c1
    }

    /// The current scale Δ.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Overrides the tracked scale (used by rescale / constant folding).
    #[inline]
    pub fn set_scale(&mut self, scale: f64) {
        self.scale = scale;
    }

    /// Level: number of remaining scale primes (0 = only `q_0` left).
    #[inline]
    pub fn level(&self) -> usize {
        self.c0.level_count() - 1
    }

    /// Component-wise in-place addition; the caller (the evaluator) has
    /// already aligned levels and checked scales.
    #[inline]
    pub(crate) fn add_assign_raw(&mut self, other: &Ciphertext) {
        self.c0.add_assign(&other.c0);
        self.c1.add_assign(&other.c1);
    }

    /// Ring degree.
    #[inline]
    pub fn n(&self) -> usize {
        self.c0.n()
    }

    /// Decomposes into `(c0, c1, scale)`, surrendering ownership of both
    /// component polynomials — the hook a serving layer uses to recycle
    /// residue buffers of consumed operands back into a decode pool.
    #[inline]
    pub fn into_parts(self) -> (RnsPoly, RnsPoly, f64) {
        (self.c0, self.c1, self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use he_rns::RnsBasis;

    #[test]
    fn level_tracks_basis_length() {
        let b = RnsBasis::generate(16, 28, 3);
        let z = RnsPoly::from_i64_coeffs(&b, &[0i64; 16]);
        let ct = Ciphertext::new(z.clone(), z, 2.0_f64.powi(28));
        assert_eq!(ct.level(), 2);
        assert_eq!(ct.n(), 16);
    }

    #[test]
    #[should_panic(expected = "coefficients")]
    fn rejects_eval_form_components() {
        let b = RnsBasis::generate(16, 28, 2);
        let z = RnsPoly::from_i64_coeffs(&b, &[0i64; 16]);
        let e = z.clone().into_eval();
        let _ = Ciphertext::new(e.clone(), e, 1.0);
    }
}

#[cfg(feature = "serde")]
mod serde_impls {
    //! Serde support (feature `serde`): ciphertexts/plaintexts serialise
    //! as their polynomials plus the tracked scale; structural invariants
    //! are revalidated through the constructors on deserialise.
    use super::{Ciphertext, Plaintext};
    use he_rns::RnsPoly;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    #[derive(Serialize, Deserialize)]
    struct CiphertextRepr {
        c0: RnsPoly,
        c1: RnsPoly,
        scale: f64,
    }

    impl Serialize for Ciphertext {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            CiphertextRepr {
                c0: self.c0.clone(),
                c1: self.c1.clone(),
                scale: self.scale,
            }
            .serialize(s)
        }
    }

    impl<'de> Deserialize<'de> for Ciphertext {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            let r = CiphertextRepr::deserialize(d)?;
            if r.c0.basis() != r.c1.basis() || r.c0.form() != r.c1.form() {
                return Err(serde::de::Error::custom("mismatched ciphertext components"));
            }
            if r.c0.form() != he_rns::Form::Coeff {
                return Err(serde::de::Error::custom("ciphertexts store coefficients"));
            }
            if !(r.scale.is_finite() && r.scale > 0.0) {
                return Err(serde::de::Error::custom(
                    "scale must be finite and positive",
                ));
            }
            Ok(Ciphertext::new(r.c0, r.c1, r.scale))
        }
    }

    #[derive(Serialize, Deserialize)]
    struct PlaintextRepr {
        poly: RnsPoly,
        scale: f64,
    }

    impl Serialize for Plaintext {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            PlaintextRepr {
                poly: self.poly.clone(),
                scale: self.scale,
            }
            .serialize(s)
        }
    }

    impl<'de> Deserialize<'de> for Plaintext {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            let r = PlaintextRepr::deserialize(d)?;
            if r.poly.form() != he_rns::Form::Coeff {
                return Err(serde::de::Error::custom("plaintexts store coefficients"));
            }
            if !(r.scale.is_finite() && r.scale > 0.0) {
                return Err(serde::de::Error::custom(
                    "scale must be finite and positive",
                ));
            }
            Ok(Plaintext::new(r.poly, r.scale))
        }
    }
}
