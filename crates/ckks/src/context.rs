//! The CKKS context: validated parameters plus every precomputed object the
//! scheme operations share (modulus chain, special basis, encoder tables).

use he_math::prime::is_prime;
use he_rns::RnsBasis;

use crate::encoding::Encoder;
use crate::error::EvalError;
use crate::params::CkksParams;

/// Precomputed CKKS context.
///
/// Construction generates the NTT prime chain (first prime, scale primes,
/// special keyswitching primes — all distinct, all `≡ 1 mod 2N`), builds the
/// RNS bases, and prepares the canonical-embedding encoder.
///
/// # Examples
///
/// ```
/// use he_ckks::prelude::*;
/// let ctx = CkksContext::new(CkksParams::toy());
/// assert_eq!(ctx.chain_basis().len(), 4);
/// assert_eq!(ctx.special_basis().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CkksContext {
    params: CkksParams,
    chain_basis: RnsBasis,
    special_basis: RnsBasis,
    full_basis: RnsBasis,
    encoder: Encoder,
}

impl CkksContext {
    /// Builds a context for validated parameters.
    ///
    /// Thin wrapper over [`try_new`](Self::try_new) for callers that treat
    /// bad parameters as a programming error.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`CkksParams::validate`] or not enough
    /// NTT primes of the requested sizes exist.
    pub fn new(params: CkksParams) -> Self {
        Self::try_new(params).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a context, propagating parameter-validation failure as
    /// [`EvalError::InvalidParams`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::InvalidParams`] when the parameters fail
    /// [`CkksParams::validate`].
    ///
    /// # Panics
    ///
    /// Still panics if not enough NTT primes of the requested sizes exist —
    /// that depends on the prime landscape, not on user input shape.
    ///
    /// # Examples
    ///
    /// ```
    /// use he_ckks::prelude::*;
    /// let mut p = CkksParams::toy();
    /// p.n = 12; // not a power of two
    /// assert!(matches!(
    ///     CkksContext::try_new(p),
    ///     Err(EvalError::InvalidParams(_))
    /// ));
    /// ```
    pub fn try_new(params: CkksParams) -> Result<Self, EvalError> {
        params.validate().map_err(EvalError::InvalidParams)?;
        let n = params.n;
        let step = 2 * n as u64;

        let mut taken: Vec<u64> = Vec::new();
        let gen = |bits: u32, count: usize, taken: &mut Vec<u64>| -> Vec<u64> {
            let mut out = Vec::with_capacity(count);
            let mut cand = (((1u64 << bits) - 2) / step) * step + 1;
            while out.len() < count {
                assert!(cand > step, "not enough {bits}-bit NTT primes for N={n}");
                if is_prime(cand) && !taken.contains(&cand) {
                    out.push(cand);
                    taken.push(cand);
                }
                cand -= step;
            }
            out
        };

        // Special primes first (largest), then q0, then the scale chain.
        let special = gen(params.special_prime_bits, params.special_len, &mut taken);
        let mut chain = gen(params.first_prime_bits, 1, &mut taken);
        chain.extend(gen(
            params.scale_prime_bits,
            params.chain_len - 1,
            &mut taken,
        ));

        let chain_basis = RnsBasis::new(n, chain);
        let special_basis = RnsBasis::new(n, special);
        let full_basis = chain_basis.concat(&special_basis);
        let encoder = Encoder::new(n);
        Ok(Self {
            params,
            chain_basis,
            special_basis,
            full_basis,
            encoder,
        })
    }

    /// The validated parameters.
    #[inline]
    pub fn params(&self) -> &CkksParams {
        &self.params
    }

    /// Ring degree `N`.
    #[inline]
    pub fn n(&self) -> usize {
        self.params.n
    }

    /// The ciphertext modulus chain `q_0 … q_L`.
    #[inline]
    pub fn chain_basis(&self) -> &RnsBasis {
        &self.chain_basis
    }

    /// The keyswitching special basis `P`.
    #[inline]
    pub fn special_basis(&self) -> &RnsBasis {
        &self.special_basis
    }

    /// The extended basis `Q ∪ P` keys live in.
    #[inline]
    pub fn full_basis(&self) -> &RnsBasis {
        &self.full_basis
    }

    /// The canonical-embedding encoder.
    #[inline]
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// The default encoding scale Δ.
    #[inline]
    pub fn default_scale(&self) -> f64 {
        self.params.scale
    }

    /// Basis for a ciphertext at `level` (level L = full chain, level 0 =
    /// just `q_0`): the first `level + 1` chain primes.
    ///
    /// # Panics
    ///
    /// Panics if `level` exceeds the chain.
    pub fn level_basis(&self, level: usize) -> RnsBasis {
        self.chain_basis.prefix(level + 1)
    }

    /// Maximum level (chain length − 1).
    #[inline]
    pub fn max_level(&self) -> usize {
        self.params.chain_len - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primes_are_distinct_and_ntt_friendly() {
        let ctx = CkksContext::new(CkksParams::toy());
        let mut all = ctx.full_basis().primes().to_vec();
        let len = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), len, "primes must be distinct");
        for &q in ctx.full_basis().primes() {
            assert_eq!((q - 1) % (2 * ctx.n() as u64), 0);
        }
    }

    #[test]
    fn special_primes_dominate_scale_primes() {
        // Keyswitching noise control requires P ≥ each scale prime.
        let ctx = CkksContext::new(CkksParams::small());
        let max_chain = ctx.chain_basis().primes()[1..]
            .iter()
            .max()
            .copied()
            .unwrap();
        let min_special = ctx.special_basis().primes().iter().min().copied().unwrap();
        assert!(min_special > max_chain);
    }

    #[test]
    fn level_basis_is_prefix() {
        let ctx = CkksContext::new(CkksParams::toy());
        let b1 = ctx.level_basis(1);
        assert_eq!(b1.primes(), &ctx.chain_basis().primes()[..2]);
        assert_eq!(ctx.max_level(), 3);
    }

    #[test]
    #[should_panic(expected = "invalid CKKS parameters")]
    fn rejects_invalid_params() {
        let mut p = CkksParams::toy();
        p.n = 12;
        let _ = CkksContext::new(p);
    }
}
