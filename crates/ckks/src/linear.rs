//! Homomorphic linear algebra: slot folds, diagonal matrix-vector
//! products, and their baby-step/giant-step (BSGS) variant.
//!
//! These are the building blocks of the paper's benchmark workloads — the
//! HELR inner product, the LSTM 128×128 matrix products, and the
//! CoeffToSlot/SlotToCoeff transforms inside bootstrapping — exposed as a
//! reusable API.

use crate::cipher::Ciphertext;
use crate::encoding::Complex;
use crate::error::EvalError;
use crate::eval::Evaluator;
use crate::keys::KeySet;

/// Sums the first `width` slots of a ciphertext into every one of them via
/// a log-depth rotate-and-add fold.
///
/// `width` must be a power of two; the rotation keys for 1, 2, …, width/2
/// must exist. Consumes no levels (additions only).
///
/// # Panics
///
/// Panics if `width` is not a power of two or a rotation key is missing.
pub fn fold_sum(eval: &Evaluator, keys: &KeySet, ct: &Ciphertext, width: usize) -> Ciphertext {
    assert!(width.is_power_of_two(), "fold width must be a power of two");
    try_fold_sum(eval, keys, ct, width).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`fold_sum`].
///
/// # Errors
///
/// [`EvalError::EmptyOperands`] if `width` is not a power of two;
/// [`EvalError::MissingRotationKey`] for an absent fold key.
pub fn try_fold_sum(
    eval: &Evaluator,
    keys: &KeySet,
    ct: &Ciphertext,
    width: usize,
) -> Result<Ciphertext, EvalError> {
    if !width.is_power_of_two() {
        return Err(EvalError::EmptyOperands);
    }
    // Each iteration rotates the freshly updated accumulator, so there is
    // no shared ciphertext to hoist across — `rotate` (internally hoisted
    // for its single application) is already optimal here.
    let mut acc = ct.clone();
    let mut step = width / 2;
    while step >= 1 {
        let rot = eval.try_rotate(&acc, step as i64, keys)?;
        acc = eval.try_add(&acc, &rot)?;
        step /= 2;
    }
    Ok(acc)
}

/// Homomorphic inner product `⟨x, w⟩` with a plaintext weight vector of
/// power-of-two length: elementwise PMult, rescale, then [`fold_sum`].
/// Every slot of the result holds the inner product. Consumes one level.
///
/// # Panics
///
/// Panics if `weights` length is not a power of two or keys are missing.
pub fn inner_product_plain(
    eval: &Evaluator,
    keys: &KeySet,
    ct: &Ciphertext,
    weights: &[Complex],
) -> Ciphertext {
    try_inner_product_plain(eval, keys, ct, weights).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`inner_product_plain`].
///
/// # Errors
///
/// [`EvalError::EmptyOperands`] for a non-power-of-two weight vector;
/// [`EvalError::RescaleAtLevelZero`] on an exhausted ciphertext;
/// [`EvalError::MissingRotationKey`] for an absent fold key.
pub fn try_inner_product_plain(
    eval: &Evaluator,
    keys: &KeySet,
    ct: &Ciphertext,
    weights: &[Complex],
) -> Result<Ciphertext, EvalError> {
    let pt = eval.encode_at_level(weights, eval.context().default_scale(), ct.level());
    let prod = eval.try_rescale(&eval.mul_plain(ct, &pt))?;
    try_fold_sum(eval, keys, &prod, weights.len())
}

/// A plaintext matrix prepared for homomorphic matrix-vector products on
/// `dim` slots (`dim` a power of two dividing the slot count).
///
/// # Examples
///
/// ```no_run
/// # use he_ckks::prelude::*;
/// # use he_ckks::encoding::Complex;
/// # use he_ckks::linear::PlainMatrix;
/// # let ctx = CkksContext::new(CkksParams::small());
/// let m = vec![vec![Complex::new(1.0, 0.0); 8]; 8];
/// let mat = PlainMatrix::new(m);
/// assert_eq!(mat.dim(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct PlainMatrix {
    dim: usize,
    /// Generalised diagonals: `diag[d][i] = M[i][(i+d) mod dim]`.
    diagonals: Vec<Vec<Complex>>,
}

impl PlainMatrix {
    /// Builds the diagonal decomposition of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty, ragged, or not power-of-two sized.
    pub fn new(rows: Vec<Vec<Complex>>) -> Self {
        let dim = rows.len();
        assert!(dim.is_power_of_two(), "dimension must be a power of two");
        assert!(rows.iter().all(|r| r.len() == dim), "matrix must be square");
        let diagonals = (0..dim)
            .map(|d| (0..dim).map(|i| rows[i][(i + d) % dim]).collect())
            .collect();
        Self { dim, diagonals }
    }

    /// Matrix dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Diagonal `d` (for inspection/tests).
    #[inline]
    pub fn diagonal(&self, d: usize) -> &[Complex] {
        &self.diagonals[d]
    }

    /// Whether diagonal `d` is entirely (numerically) zero.
    fn diagonal_is_zero(&self, d: usize) -> bool {
        self.diagonals[d].iter().all(|c| c.abs() < 1e-300)
    }

    /// The rotation steps [`apply`]/[`apply_bsgs`] need keys for.
    ///
    /// [`apply`]: Self::apply
    /// [`apply_bsgs`]: Self::apply_bsgs
    pub fn required_rotations(&self) -> Vec<i64> {
        let mut steps: Vec<i64> = (1..self.dim as i64).collect();
        // BSGS also uses the giant steps; they are multiples of the baby
        // block, already contained in 1..dim.
        steps.dedup();
        steps
    }

    /// Applies `M·v` with the plain diagonal method: one rotation + PMult
    /// per non-zero diagonal, one rescale at the end. Consumes one level.
    ///
    /// # Panics
    ///
    /// Panics if rotation keys are missing or every diagonal is zero.
    pub fn apply(&self, eval: &Evaluator, keys: &KeySet, v: &Ciphertext) -> Ciphertext {
        match self.try_apply(eval, keys, v) {
            Ok(ct) => ct,
            Err(EvalError::EmptyOperands) => panic!("matrix must have a non-zero diagonal"),
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`apply`](Self::apply) — an all-(near-)zero matrix or a
    /// missing rotation key is reported instead of aborting.
    ///
    /// # Errors
    ///
    /// [`EvalError::EmptyOperands`] if every diagonal is numerically zero;
    /// [`EvalError::MissingRotationKey`] for an absent key;
    /// [`EvalError::RescaleAtLevelZero`] on an exhausted ciphertext.
    pub fn try_apply(
        &self,
        eval: &Evaluator,
        keys: &KeySet,
        v: &Ciphertext,
    ) -> Result<Ciphertext, EvalError> {
        let scale = eval.context().default_scale();
        let live: Vec<usize> = (0..self.dim)
            .filter(|&d| !self.diagonal_is_zero(d))
            .collect();
        // All rotations act on the same input `v`, so one hoisted batch
        // pays the digit lift + forward NTTs once for every diagonal.
        let steps: Vec<i64> = live
            .iter()
            .filter(|&&d| d != 0)
            .map(|&d| d as i64)
            .collect();
        let mut rotations = eval.try_rotate_many(v, &steps, keys)?.into_iter();
        let mut acc: Option<Ciphertext> = None;
        for &d in &live {
            let rot = if d == 0 {
                v.clone()
            } else {
                rotations.next().expect("one rotation per live diagonal")
            };
            let pt = eval.encode_at_level(&self.diagonals[d], scale, rot.level());
            let term = eval.mul_plain(&rot, &pt);
            match &mut acc {
                None => acc = Some(term),
                Some(a) => eval.try_add_assign(a, &term)?,
            }
        }
        eval.try_rescale(&acc.ok_or(EvalError::EmptyOperands)?)
    }

    /// Applies `M·v` with baby-step/giant-step: `√dim` baby rotations of
    /// the input plus `√dim` giant rotations of partial sums — the
    /// rotation count drops from `dim − 1` to `≈ 2√dim`. Consumes one
    /// level. Requires rotation keys for the baby steps `1..bs` and the
    /// giant steps `bs, 2bs, …`.
    ///
    /// # Panics
    ///
    /// Panics if rotation keys are missing.
    pub fn apply_bsgs(&self, eval: &Evaluator, keys: &KeySet, v: &Ciphertext) -> Ciphertext {
        match self.try_apply_bsgs(eval, keys, v) {
            Ok(ct) => ct,
            Err(EvalError::EmptyOperands) => panic!("matrix must have a non-zero diagonal"),
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`apply_bsgs`](Self::apply_bsgs).
    ///
    /// # Errors
    ///
    /// [`EvalError::EmptyOperands`] if every diagonal is numerically zero;
    /// [`EvalError::MissingRotationKey`] for an absent baby/giant key;
    /// [`EvalError::RescaleAtLevelZero`] on an exhausted ciphertext.
    pub fn try_apply_bsgs(
        &self,
        eval: &Evaluator,
        keys: &KeySet,
        v: &Ciphertext,
    ) -> Result<Ciphertext, EvalError> {
        let dim = self.dim;
        let bs = (dim as f64).sqrt().ceil() as usize; // baby block
        let gs = dim.div_ceil(bs);
        let scale = eval.context().default_scale();

        // Baby rotations of the input, computed once — and hoisted once:
        // all of them rotate the same `v`, so a single digit decomposition
        // serves the whole block.
        let baby_steps: Vec<i64> = (1..bs as i64).collect();
        let mut baby = Vec::with_capacity(bs);
        baby.push(v.clone());
        baby.extend(eval.try_rotate_many(v, &baby_steps, keys)?);

        // For giant block g: Σ_b diag[g·bs + b] rotated... Using the BSGS
        // identity: M·v = Σ_g rot_{g·bs}( Σ_b rot_{-g·bs}(diag_{g·bs+b}) ⊙
        // rot_b(v) ); rotating the diagonal in plaintext is free.
        let mut acc: Option<Ciphertext> = None;
        for g in 0..gs {
            let mut inner: Option<Ciphertext> = None;
            for (b, ct_b) in baby.iter().enumerate().take(bs) {
                let d = g * bs + b;
                if d >= dim || self.diagonal_is_zero(d) {
                    continue;
                }
                // Plaintext-rotated diagonal: entry i of rot_{-g·bs}(diag_d)
                // is diag_d[(i + dim - g·bs) mod dim]... rotation left by
                // −g·bs means index (i − g·bs) mod dim.
                let shift = g * bs;
                let rotated_diag: Vec<Complex> = (0..dim)
                    .map(|i| self.diagonals[d][(i + dim - shift) % dim])
                    .collect();
                let pt = eval.encode_at_level(&rotated_diag, scale, ct_b.level());
                let term = eval.mul_plain(ct_b, &pt);
                match &mut inner {
                    None => inner = Some(term),
                    Some(a) => eval.try_add_assign(a, &term)?,
                }
            }
            if let Some(inner) = inner {
                // Each giant step rotates a *different* inner sum, so
                // there is nothing to hoist across them.
                let shifted = if g == 0 {
                    inner
                } else {
                    eval.try_rotate(&inner, (g * bs) as i64, keys)?
                };
                match &mut acc {
                    None => acc = Some(shifted),
                    Some(a) => eval.try_add_assign(a, &shifted)?,
                }
            }
        }
        eval.try_rescale(&acc.ok_or(EvalError::EmptyOperands)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cipher::Plaintext;
    use crate::context::CkksContext;
    use crate::params::CkksParams;
    use rand::SeedableRng;

    const DIM: usize = 8;

    fn setup() -> (CkksContext, KeySet, Evaluator, rand::rngs::StdRng) {
        let ctx = CkksContext::new(CkksParams::small());
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x11);
        let mut keys = KeySet::generate(&ctx, &mut rng);
        for d in 1..DIM as i64 {
            keys.add_rotation_key(d, &mut rng);
        }
        (ctx.clone(), keys, Evaluator::new(&ctx), rng)
    }

    fn encrypt(
        ctx: &CkksContext,
        keys: &KeySet,
        rng: &mut rand::rngs::StdRng,
        vals: &[f64],
    ) -> Ciphertext {
        let z: Vec<Complex> = vals.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let pt = Plaintext::new(
            ctx.encoder()
                .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
            ctx.default_scale(),
        );
        keys.public().encrypt(&pt, rng)
    }

    fn decrypt(ctx: &CkksContext, keys: &KeySet, ct: &Ciphertext) -> Vec<f64> {
        let pt = keys.secret().decrypt(ct);
        ctx.encoder()
            .decode_rns(pt.poly(), pt.scale(), DIM)
            .iter()
            .map(|c| c.re)
            .collect()
    }

    fn test_matrix() -> (PlainMatrix, Vec<Vec<f64>>) {
        let raw: Vec<Vec<f64>> = (0..DIM)
            .map(|i| {
                (0..DIM)
                    .map(|j| ((i * 3 + j) % 5) as f64 * 0.25 - 0.5)
                    .collect()
            })
            .collect();
        let m = PlainMatrix::new(
            raw.iter()
                .map(|r| r.iter().map(|&v| Complex::new(v, 0.0)).collect())
                .collect(),
        );
        (m, raw)
    }

    #[test]
    fn fold_sum_totals_all_slots() {
        let (ctx, keys, eval, mut rng) = setup();
        let vals = [1.0, 2.0, 3.0, 4.0, -1.0, -2.0, 0.5, 0.25];
        let ct = encrypt(&ctx, &keys, &mut rng, &vals);
        let folded = fold_sum(&eval, &keys, &ct, DIM);
        let got = decrypt(&ctx, &keys, &folded);
        let want: f64 = vals.iter().sum();
        for (i, g) in got.iter().enumerate() {
            assert!((g - want).abs() < 1e-2, "slot {i}: {g} vs {want}");
        }
    }

    #[test]
    fn inner_product_matches_plaintext() {
        let (ctx, keys, eval, mut rng) = setup();
        let x = [0.5, -1.0, 2.0, 0.25, 1.5, -0.75, 0.0, 1.0];
        let w: Vec<f64> = vec![0.1, 0.2, -0.3, 0.4, -0.5, 0.6, 0.7, -0.8];
        let ct = encrypt(&ctx, &keys, &mut rng, &x);
        let wz: Vec<Complex> = w.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let ip = inner_product_plain(&eval, &keys, &ct, &wz);
        let got = decrypt(&ctx, &keys, &ip)[0];
        let want: f64 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
        assert!((got - want).abs() < 1e-2, "{got} vs {want}");
    }

    #[test]
    fn diagonal_matvec_matches_plaintext() {
        let (ctx, keys, eval, mut rng) = setup();
        let (m, raw) = test_matrix();
        let x = [1.0, -0.5, 0.25, 2.0, 0.0, 1.5, -1.0, 0.75];
        let ct = encrypt(&ctx, &keys, &mut rng, &x);
        let got = decrypt(&ctx, &keys, &m.apply(&eval, &keys, &ct));
        for i in 0..DIM {
            let want: f64 = (0..DIM).map(|j| raw[i][j] * x[j]).sum();
            assert!(
                (got[i] - want).abs() < 2e-2,
                "row {i}: {} vs {want}",
                got[i]
            );
        }
    }

    #[test]
    fn bsgs_matches_plain_diagonal_method() {
        let (ctx, keys, eval, mut rng) = setup();
        let (m, _) = test_matrix();
        let x = [0.3, 0.6, -0.9, 1.2, -1.5, 0.1, 0.4, -0.2];
        let ct = encrypt(&ctx, &keys, &mut rng, &x);
        let plain = decrypt(&ctx, &keys, &m.apply(&eval, &keys, &ct));
        let bsgs = decrypt(&ctx, &keys, &m.apply_bsgs(&eval, &keys, &ct));
        for i in 0..DIM {
            assert!((plain[i] - bsgs[i]).abs() < 2e-2, "row {i}");
        }
    }

    #[test]
    fn sparse_matrix_skips_zero_diagonals() {
        let (ctx, keys, eval, mut rng) = setup();
        // Identity matrix: only diagonal 0 is non-zero.
        let ident = PlainMatrix::new(
            (0..DIM)
                .map(|i| {
                    (0..DIM)
                        .map(|j| Complex::new(if i == j { 1.0 } else { 0.0 }, 0.0))
                        .collect()
                })
                .collect(),
        );
        assert!(ident.diagonal_is_zero(1));
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let ct = encrypt(&ctx, &keys, &mut rng, &x);
        let got = decrypt(&ctx, &keys, &ident.apply(&eval, &keys, &ct));
        for i in 0..DIM {
            assert!((got[i] - x[i]).abs() < 1e-2);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_dimension() {
        let _ = PlainMatrix::new(vec![vec![Complex::default(); 3]; 3]);
    }

    #[test]
    fn zero_matrix_reports_empty_operands_instead_of_panicking() {
        let (ctx, keys, eval, mut rng) = setup();
        let zero = PlainMatrix::new(vec![vec![Complex::default(); DIM]; DIM]);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let ct = encrypt(&ctx, &keys, &mut rng, &x);
        assert!(matches!(
            zero.try_apply(&eval, &keys, &ct),
            Err(crate::error::EvalError::EmptyOperands)
        ));
        assert!(matches!(
            zero.try_apply_bsgs(&eval, &keys, &ct),
            Err(crate::error::EvalError::EmptyOperands)
        ));
    }

    #[test]
    #[should_panic(expected = "matrix must have a non-zero diagonal")]
    fn zero_matrix_panicking_wrapper_keeps_legacy_message() {
        let (ctx, keys, eval, mut rng) = setup();
        let zero = PlainMatrix::new(vec![vec![Complex::default(); DIM]; DIM]);
        let x = [1.0; DIM];
        let ct = encrypt(&ctx, &keys, &mut rng, &x);
        let _ = zero.apply(&eval, &keys, &ct);
    }
}
