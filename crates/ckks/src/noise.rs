//! Noise measurement and budget estimation (requires the secret key —
//! a development/diagnostics tool, as in other FHE libraries).
//!
//! CKKS is approximate: "noise" is the deviation of the decrypted slot
//! values from the intended message. This module measures it against a
//! known reference and converts it into the familiar bits-of-precision /
//! remaining-budget views used when tuning parameters.

use crate::cipher::Ciphertext;
use crate::context::CkksContext;
use crate::encoding::Complex;
use crate::error::EvalError;
use crate::keys::SecretKey;

/// Noise statistics of a ciphertext measured against a reference message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseReport {
    /// Maximum absolute slot error.
    pub max_error: f64,
    /// Root-mean-square slot error.
    pub rms_error: f64,
    /// Bits of precision: `−log2(max_error)` (∞ clamped to 64).
    pub precision_bits: f64,
    /// Remaining modulus budget in bits: Σ log2(q_i) over live primes,
    /// minus the scale bits — an upper bound on how much more
    /// multiplication depth the ciphertext supports.
    pub budget_bits: f64,
    /// Ciphertext level.
    pub level: usize,
}

/// Measures the slot-wise error of `ct` against the expected `reference`
/// values (first `reference.len()` slots).
///
/// # Panics
///
/// Panics if `reference` is empty or exceeds the slot count.
pub fn measure(
    ctx: &CkksContext,
    sk: &SecretKey,
    ct: &Ciphertext,
    reference: &[Complex],
) -> NoiseReport {
    try_measure(ctx, sk, ct, reference)
        .unwrap_or_else(|_| panic!("reference must fit in the slots"))
}

/// Fallible [`measure`].
///
/// # Errors
///
/// [`EvalError::EmptyOperands`] if `reference` is empty,
/// [`EvalError::InvalidParams`] if it exceeds the slot count.
pub fn try_measure(
    ctx: &CkksContext,
    sk: &SecretKey,
    ct: &Ciphertext,
    reference: &[Complex],
) -> Result<NoiseReport, EvalError> {
    if reference.is_empty() {
        return Err(EvalError::EmptyOperands);
    }
    if reference.len() > ctx.params().slots() {
        return Err(EvalError::InvalidParams(format!(
            "reference has {} values but the context only has {} slots",
            reference.len(),
            ctx.params().slots()
        )));
    }
    let dec = sk.decrypt(ct);
    let got = ctx
        .encoder()
        .decode_rns(dec.poly(), dec.scale(), reference.len());
    let mut max_error = 0.0f64;
    let mut sum_sq = 0.0f64;
    for (g, r) in got.iter().zip(reference) {
        let e = (*g - *r).abs();
        max_error = max_error.max(e);
        sum_sq += e * e;
    }
    let rms_error = (sum_sq / reference.len() as f64).sqrt();
    let precision_bits = if max_error > 0.0 {
        (-max_error.log2()).min(64.0)
    } else {
        64.0
    };
    let live_bits: f64 = ct
        .c0()
        .basis()
        .primes()
        .iter()
        .map(|&q| (q as f64).log2())
        .sum();
    Ok(NoiseReport {
        max_error,
        rms_error,
        precision_bits,
        budget_bits: live_bits - ct.scale().log2(),
        level: ct.level(),
    })
}

/// Estimated multiplication depth remaining, assuming each CMult+rescale
/// consumes one scale prime.
pub fn remaining_depth(ct: &Ciphertext) -> usize {
    ct.level()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cipher::Plaintext;
    use crate::eval::Evaluator;
    use crate::keys::KeySet;
    use crate::params::CkksParams;
    use rand::SeedableRng;

    fn setup() -> (CkksContext, KeySet, Evaluator, rand::rngs::StdRng) {
        let ctx = CkksContext::new(CkksParams::toy());
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEEF);
        let keys = KeySet::generate(&ctx, &mut rng);
        let eval = Evaluator::new(&ctx);
        (ctx, keys, eval, rng)
    }

    #[test]
    fn fresh_ciphertext_has_high_precision() {
        let (ctx, keys, _, mut rng) = setup();
        let z = vec![Complex::new(1.5, 0.0); 4];
        let pt = Plaintext::new(
            ctx.encoder()
                .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
            ctx.default_scale(),
        );
        let ct = keys.public().encrypt(&pt, &mut rng);
        let r = measure(&ctx, keys.secret(), &ct, &z);
        assert!(r.precision_bits > 15.0, "precision {:.1}", r.precision_bits);
        assert_eq!(r.level, ctx.max_level());
        assert!(r.budget_bits > 0.0);
    }

    #[test]
    fn multiplication_reduces_precision_and_budget() {
        let (ctx, keys, eval, mut rng) = setup();
        let z = vec![Complex::new(2.0, 0.0); 4];
        let pt = Plaintext::new(
            ctx.encoder()
                .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
            ctx.default_scale(),
        );
        let ct = keys.public().encrypt(&pt, &mut rng);
        let fresh = measure(&ctx, keys.secret(), &ct, &z);
        let sq = eval.rescale(&eval.square(&ct, &keys));
        let z_sq = vec![Complex::new(4.0, 0.0); 4];
        let after = measure(&ctx, keys.secret(), &sq, &z_sq);
        assert!(after.budget_bits < fresh.budget_bits);
        assert!(after.precision_bits <= fresh.precision_bits + 1.0);
        assert_eq!(remaining_depth(&sq), remaining_depth(&ct) - 1);
    }

    #[test]
    fn wrong_reference_reports_large_error() {
        let (ctx, keys, _, mut rng) = setup();
        let z = vec![Complex::new(1.0, 0.0); 4];
        let pt = Plaintext::new(
            ctx.encoder()
                .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
            ctx.default_scale(),
        );
        let ct = keys.public().encrypt(&pt, &mut rng);
        let wrong = vec![Complex::new(5.0, 0.0); 4];
        let r = measure(&ctx, keys.secret(), &ct, &wrong);
        assert!(r.max_error > 3.9);
        assert!(r.precision_bits < 0.0 + 1.0);
    }

    #[test]
    fn try_measure_rejects_bad_references() {
        let (ctx, keys, _, mut rng) = setup();
        let z = vec![Complex::new(1.0, 0.0); 4];
        let pt = Plaintext::new(
            ctx.encoder()
                .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
            ctx.default_scale(),
        );
        let ct = keys.public().encrypt(&pt, &mut rng);
        assert!(matches!(
            try_measure(&ctx, keys.secret(), &ct, &[]),
            Err(EvalError::EmptyOperands)
        ));
        let too_many = vec![Complex::new(0.0, 0.0); ctx.params().slots() + 1];
        assert!(matches!(
            try_measure(&ctx, keys.secret(), &ct, &too_many),
            Err(EvalError::InvalidParams(_))
        ));
        assert!(try_measure(&ctx, keys.secret(), &ct, &z).is_ok());
    }

    #[test]
    fn decrypting_with_wrong_key_destroys_the_message() {
        // Failure injection: a different secret key must not recover the
        // plaintext (the error is of ciphertext magnitude).
        let (ctx, keys, _, mut rng) = setup();
        let z = vec![Complex::new(0.5, 0.0); 4];
        let pt = Plaintext::new(
            ctx.encoder()
                .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
            ctx.default_scale(),
        );
        let ct = keys.public().encrypt(&pt, &mut rng);
        let other = KeySet::generate(&ctx, &mut rng);
        let r = measure(&ctx, other.secret(), &ct, &z);
        assert!(
            r.max_error > 1e3,
            "wrong key should yield garbage, got error {}",
            r.max_error
        );
    }
}
