//! Packed CKKS bootstrapping (the paper's most complex workload, [30]).
//!
//! Pipeline, for a ciphertext exhausted down to the single prime `q_0`:
//!
//! 1. **ModRaise** — reinterpret the centred residues modulo the full chain
//!    `Q`. The plaintext becomes `m + q_0·I` for a small integer polynomial
//!    `I` (bounded by the secret's Hamming weight).
//! 2. **SubSum** — for `n' < N/2` sparse slots, apply the trace onto the
//!    subring `Z[X^s]` (`s = N/(2n')`): `log2(N/(2n'))` rotation-adds. This
//!    zeroes every coefficient off the sparse support and multiplies the
//!    rest by `D = N/(2n')`.
//! 3. **CoeffToSlot** — homomorphic linear transform moving the `2n'`
//!    meaningful coefficients into the slots of two ciphertexts, using
//!    one conjugation plus diagonal (BSGS-free) matrix-vector products.
//! 4. **EvalMod** — approximate `x mod q_0` by `(q_0/2πD)·sin(2πD·x/q_0)`:
//!    scale down, evaluate a degree-7 Taylor sine and degree-6 cosine of
//!    the divided angle, then apply `r` double-angle iterations.
//! 5. **SlotToCoeff** — the inverse linear transform, recombining both
//!    halves into a refreshed ciphertext at a high level.
//!
//! The linear-transform matrices are derived *numerically from the encoder
//! itself* (evaluating unit coefficient vectors), so every convention
//! (bit-reversal, 5^j ordering, replication) is captured by construction.

use crate::cipher::{Ciphertext, Plaintext};
use crate::context::CkksContext;
use crate::encoding::Complex;
use crate::error::EvalError;
use crate::eval::Evaluator;
use crate::keys::KeySet;
use crate::polyeval::try_evaluate_monomial;
use he_rns::RnsPoly;

/// Telemetry scopes for the bootstrapping stages (items = slot count).
/// With the `telemetry` feature off, this compiles away entirely.
#[cfg(feature = "telemetry")]
mod tel {
    use poseidon_telemetry::{Metric, Registry};
    use std::sync::{Arc, OnceLock};

    macro_rules! scope_fn {
        ($fn_name:ident, $scope:literal) => {
            pub fn $fn_name() -> &'static Arc<Metric> {
                static M: OnceLock<Arc<Metric>> = OnceLock::new();
                M.get_or_init(|| Registry::global().scope($scope))
            }
        };
    }

    scope_fn!(modraise, "boot.modraise");
    scope_fn!(subsum, "boot.subsum");
    scope_fn!(c2s, "boot.c2s");
    scope_fn!(evalmod, "boot.evalmod");
    scope_fn!(s2c, "boot.s2c");
    scope_fn!(total, "boot.total");
}

/// Degree-7 Taylor coefficients of sin(x).
const SIN_COEFFS: [f64; 8] = [
    0.0,
    1.0,
    0.0,
    -1.0 / 6.0,
    0.0,
    1.0 / 120.0,
    0.0,
    -1.0 / 5040.0,
];

/// Degree-6 Taylor coefficients of cos(x).
const COS_COEFFS: [f64; 7] = [1.0, 0.0, -0.5, 0.0, 1.0 / 24.0, 0.0, -1.0 / 720.0];

/// Precomputed bootstrapping context for a fixed sparse slot count.
///
/// # Examples
///
/// See `crates/ckks/tests` and the `bootstrapping` example binary — a full
/// run needs sparse-secret keys and rotation/conjugation keys from
/// [`Bootstrapper::required_rotations`].
#[derive(Debug, Clone)]
pub struct Bootstrapper {
    ctx: CkksContext,
    /// Sparse slot count `n'`.
    slots: usize,
    /// Double-angle iterations.
    doublings: u32,
    /// `q_0` as float.
    q0: f64,
    /// Coefficient→slot matrices: low/high half from `w` and `conj(w)`.
    a_low_w: Vec<Vec<Complex>>,
    a_low_cw: Vec<Vec<Complex>>,
    a_high_w: Vec<Vec<Complex>>,
    a_high_cw: Vec<Vec<Complex>>,
    /// Slot→coefficient matrices (columns of the forward map F).
    f_low: Vec<Vec<Complex>>,
    f_high: Vec<Vec<Complex>>,
}

impl Bootstrapper {
    /// Builds the bootstrapping context for `slots` sparse slots (a power
    /// of two dividing `N/2`) and `doublings` double-angle iterations.
    ///
    /// # Panics
    ///
    /// Panics if `slots` does not divide `N/2` or is not ≥ 2.
    pub fn new(ctx: &CkksContext, slots: usize, doublings: u32) -> Self {
        let n = ctx.n();
        assert!(
            slots >= 2 && slots.is_power_of_two() && (n / 2).is_multiple_of(slots),
            "slots must be a power of two dividing N/2"
        );
        let stride = n / (2 * slots);
        let enc = ctx.encoder();

        // Forward map F: 2n' strided unit coefficients → n' slots, derived
        // from the encoder itself.
        let two_np = 2 * slots;
        let mut f_cols: Vec<Vec<Complex>> = Vec::with_capacity(two_np);
        for k in 0..two_np {
            let mut coeffs = vec![0.0f64; n];
            coeffs[k * stride] = 1.0;
            f_cols.push(enc.decode_from_coeffs(&coeffs, 1.0, slots));
        }

        // Real 2n'×2n' system: m̃ → (Re w, Im w); invert by Gaussian
        // elimination.
        let dim = two_np;
        let mut m = vec![vec![0.0f64; dim]; dim];
        for (k, col) in f_cols.iter().enumerate() {
            for j in 0..slots {
                m[j][k] = col[j].re;
                m[slots + j][k] = col[j].im;
            }
        }
        let minv = invert_real(&m);

        // Blocks P1..P4 combine into complex matrices applied to w and
        // conj(w): m̃_low = A_lw·w + A_lcw·w̄, m̃_high likewise. The trace
        // factor D = N/(2n') left behind by SubSum is divided away here, so
        // the slots after CoeffToSlot hold `m + q_0·I` directly — keeping
        // the EvalMod sine argument within the double-angle budget.
        let d_factor = stride as f64;
        let build = |rows: std::ops::Range<usize>| {
            let mut aw = vec![vec![Complex::default(); slots]; slots];
            let mut acw = vec![vec![Complex::default(); slots]; slots];
            for (out_i, r) in rows.enumerate() {
                for j in 0..slots {
                    let p_re = minv[r][j] / d_factor; // multiplies Re w_j
                    let p_im = minv[r][slots + j] / d_factor; // multiplies Im w_j
                    aw[out_i][j] = Complex::new(p_re / 2.0, -p_im / 2.0);
                    acw[out_i][j] = Complex::new(p_re / 2.0, p_im / 2.0);
                }
            }
            (aw, acw)
        };
        let (a_low_w, a_low_cw) = build(0..slots);
        let (a_high_w, a_high_cw) = build(slots..two_np);

        // Slot→coeff: w_out = F_low·m̃_low + F_high·m̃_high, with F_low/high
        // the column blocks of F as n'×n' matrices.
        let mut f_low = vec![vec![Complex::default(); slots]; slots];
        let mut f_high = vec![vec![Complex::default(); slots]; slots];
        for j in 0..slots {
            for k in 0..slots {
                f_low[j][k] = f_cols[k][j];
                f_high[j][k] = f_cols[slots + k][j];
            }
        }

        Self {
            ctx: ctx.clone(),
            slots,
            doublings,
            q0: ctx.chain_basis().primes()[0] as f64,
            a_low_w,
            a_low_cw,
            a_high_w,
            a_high_cw,
            f_low,
            f_high,
        }
    }

    /// Sparse slot count `n'`.
    #[inline]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The rotation steps whose Galois keys must be generated before
    /// calling [`bootstrap`] (conjugation key needed as well).
    ///
    /// [`bootstrap`]: Self::bootstrap
    pub fn required_rotations(&self) -> Vec<i64> {
        let mut steps: Vec<i64> = (1..self.slots as i64).collect();
        // SubSum trace rotations.
        let total = self.ctx.n() / 2;
        let mut s = self.slots;
        while s < total {
            steps.push(s as i64);
            s *= 2;
        }
        steps.sort_unstable();
        steps.dedup();
        steps
    }

    /// ModRaise: reinterpret a level-0 ciphertext modulo the full chain.
    ///
    /// # Panics
    ///
    /// Panics unless the ciphertext is at level 0.
    pub fn mod_raise(&self, ct: &Ciphertext) -> Ciphertext {
        match self.try_mod_raise(ct) {
            Ok(ct) => ct,
            Err(EvalError::LevelMismatch { .. }) => {
                panic!("ModRaise expects an exhausted ciphertext")
            }
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`mod_raise`](Self::mod_raise).
    ///
    /// # Errors
    ///
    /// [`EvalError::LevelMismatch`] unless the ciphertext is at level 0.
    pub fn try_mod_raise(&self, ct: &Ciphertext) -> Result<Ciphertext, EvalError> {
        if ct.level() != 0 {
            return Err(EvalError::LevelMismatch {
                a: ct.level(),
                b: 0,
            });
        }
        #[cfg(feature = "telemetry")]
        let _span = tel::modraise().span(self.slots as u64);
        let full = self.ctx.chain_basis();
        let raise = |p: &RnsPoly| {
            let centered = p.to_centered_coeffs();
            RnsPoly::from_i64_coeffs(full, &centered)
        };
        Ok(Ciphertext::new(raise(ct.c0()), raise(ct.c1()), ct.scale()))
    }

    /// Homomorphic diagonal matrix-vector product `M·v` on the slot vector
    /// of `ct` (n'-periodic diagonals). Consumes one level. An
    /// all-(near-)zero matrix or a level-exhausted operand is a typed
    /// error, never a panic.
    fn try_matvec(
        &self,
        eval: &Evaluator,
        keys: &KeySet,
        rotated: &[Ciphertext],
        m: &[Vec<Complex>],
    ) -> Result<Ciphertext, EvalError> {
        let _ = keys;
        let scale = self.ctx.default_scale();
        let mut acc: Option<Ciphertext> = None;
        for (d, ct_d) in rotated.iter().enumerate() {
            let diag: Vec<Complex> = (0..self.slots)
                .map(|i| m[i][(i + d) % self.slots])
                .collect();
            if diag.iter().all(|c| c.abs() < 1e-300) {
                continue;
            }
            let pt = eval.encode_at_level(&diag, scale, ct_d.level());
            let term = eval.mul_plain(ct_d, &pt);
            match &mut acc {
                None => acc = Some(term),
                Some(a) => eval.try_add_assign(a, &term)?,
            }
        }
        eval.try_rescale(&acc.ok_or(EvalError::EmptyOperands)?)
    }

    /// All left-rotations `0..n'` of a ciphertext (index 0 = the input).
    ///
    /// This is the heaviest rotation consumer in the linear transforms, and
    /// every rotation acts on the same input — the textbook hoisting case:
    /// one batched call pays the digit lift + forward NTTs once for all
    /// `n' − 1` rotations.
    fn try_all_rotations(
        &self,
        eval: &Evaluator,
        keys: &KeySet,
        ct: &Ciphertext,
    ) -> Result<Vec<Ciphertext>, EvalError> {
        let steps: Vec<i64> = (1..self.slots as i64).collect();
        let mut out = Vec::with_capacity(self.slots);
        out.push(ct.clone());
        out.extend(eval.try_rotate_many(ct, &steps, keys)?);
        Ok(out)
    }

    /// SubSum: trace onto the sparse subring (step 2).
    pub fn subsum(&self, eval: &Evaluator, keys: &KeySet, ct: &Ciphertext) -> Ciphertext {
        self.try_subsum(eval, keys, ct)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`subsum`](Self::subsum).
    ///
    /// # Errors
    ///
    /// [`EvalError::MissingRotationKey`] for an absent trace rotation key.
    pub fn try_subsum(
        &self,
        eval: &Evaluator,
        keys: &KeySet,
        ct: &Ciphertext,
    ) -> Result<Ciphertext, EvalError> {
        #[cfg(feature = "telemetry")]
        let _span = tel::subsum().span(self.slots as u64);
        let total = self.ctx.n() / 2;
        // The fold rotates the evolving accumulator, so consecutive
        // rotations never share an input and hoisting across them does not
        // apply — each `rotate` is already hoisted internally.
        let mut acc = ct.clone();
        let mut s = self.slots;
        while s < total {
            let rot = eval.try_rotate(&acc, s as i64, keys)?;
            acc = eval.try_add(&acc, &rot)?;
            s *= 2;
        }
        Ok(acc)
    }

    /// CoeffToSlot (step 3): returns `(ct_low, ct_high)` whose slots hold
    /// the low/high halves of the sparse coefficient vector.
    pub fn coeff_to_slot(
        &self,
        eval: &Evaluator,
        keys: &KeySet,
        ct: &Ciphertext,
    ) -> (Ciphertext, Ciphertext) {
        match self.try_coeff_to_slot(eval, keys, ct) {
            Ok(pair) => pair,
            Err(EvalError::EmptyOperands) => panic!("matrix must have a non-zero diagonal"),
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`coeff_to_slot`](Self::coeff_to_slot).
    ///
    /// # Errors
    ///
    /// [`EvalError::MissingRotationKey`]/[`EvalError::MissingGaloisKey`]
    /// for absent keys; [`EvalError::RescaleAtLevelZero`] when the chain
    /// is too short; [`EvalError::EmptyOperands`] for a degenerate
    /// (all-zero) transform matrix.
    pub fn try_coeff_to_slot(
        &self,
        eval: &Evaluator,
        keys: &KeySet,
        ct: &Ciphertext,
    ) -> Result<(Ciphertext, Ciphertext), EvalError> {
        #[cfg(feature = "telemetry")]
        let _span = tel::c2s().span(self.slots as u64);
        let conj = eval.try_conjugate(ct, keys)?;
        let rot_w = self.try_all_rotations(eval, keys, ct)?;
        let rot_cw = self.try_all_rotations(eval, keys, &conj)?;
        let low = eval.try_add(
            &self.try_matvec(eval, keys, &rot_w, &self.a_low_w)?,
            &self.try_matvec(eval, keys, &rot_cw, &self.a_low_cw)?,
        )?;
        let high = eval.try_add(
            &self.try_matvec(eval, keys, &rot_w, &self.a_high_w)?,
            &self.try_matvec(eval, keys, &rot_cw, &self.a_high_cw)?,
        )?;
        Ok((low, high))
    }

    /// SlotToCoeff (step 5).
    pub fn slot_to_coeff(
        &self,
        eval: &Evaluator,
        keys: &KeySet,
        low: &Ciphertext,
        high: &Ciphertext,
    ) -> Ciphertext {
        match self.try_slot_to_coeff(eval, keys, low, high) {
            Ok(ct) => ct,
            Err(EvalError::EmptyOperands) => panic!("matrix must have a non-zero diagonal"),
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`slot_to_coeff`](Self::slot_to_coeff).
    ///
    /// # Errors
    ///
    /// See [`try_coeff_to_slot`](Self::try_coeff_to_slot).
    pub fn try_slot_to_coeff(
        &self,
        eval: &Evaluator,
        keys: &KeySet,
        low: &Ciphertext,
        high: &Ciphertext,
    ) -> Result<Ciphertext, EvalError> {
        #[cfg(feature = "telemetry")]
        let _span = tel::s2c().span(self.slots as u64);
        let level = low.level().min(high.level());
        let scale = low.scale();
        let low = eval.try_adjust(low, level, scale)?;
        let high = eval.try_adjust(high, level, scale)?;
        let rot_low = self.try_all_rotations(eval, keys, &low)?;
        let rot_high = self.try_all_rotations(eval, keys, &high)?;
        eval.try_add(
            &self.try_matvec(eval, keys, &rot_low, &self.f_low)?,
            &self.try_matvec(eval, keys, &rot_high, &self.f_high)?,
        )
    }

    /// EvalMod (step 4): approximates `x mod q_0` on the slot values of
    /// `ct`, accounting for the trace factor `D = N/(2n')`.
    pub fn eval_mod(&self, eval: &Evaluator, keys: &KeySet, ct: &Ciphertext) -> Ciphertext {
        self.try_eval_mod(eval, keys, ct)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`eval_mod`](Self::eval_mod).
    ///
    /// # Errors
    ///
    /// [`EvalError::RescaleAtLevelZero`] when the modulus chain runs out
    /// mid-approximation (the chain must fund two argument scalings, the
    /// Taylor tree, and `doublings` double-angle squarings).
    pub fn try_eval_mod(
        &self,
        eval: &Evaluator,
        keys: &KeySet,
        ct: &Ciphertext,
    ) -> Result<Ciphertext, EvalError> {
        #[cfg(feature = "telemetry")]
        let _span = tel::evalmod().span(self.slots as u64);
        let r_pow = 2f64.powi(self.doublings as i32);
        // CoeffToSlot leaves slot *values* x = (m + q0·I)/Δ (the natural
        // at-scale-Δ representation), so the effective modulus seen by the
        // value pipeline is q0/Δ. Scale the sine argument accordingly:
        // y = 2π·x / ((q0/Δ)·2^r); the integer multiple 2π·I drops out of
        // the sine after the doublings.
        let q0_eff = self.q0 / self.ctx.default_scale();
        let c = 2.0 * std::f64::consts::PI / (q0_eff * r_pow);
        let half = c.sqrt();
        let mut y = ct.clone();
        for _ in 0..2 {
            let pt = eval.encode_at_level(
                &[Complex::new(half, 0.0)],
                self.ctx.default_scale(),
                y.level(),
            );
            y = eval.try_rescale(&eval.mul_plain(&y, &pt))?;
        }

        // Taylor sine and cosine of the divided angle.
        let mut s = try_evaluate_monomial(eval, keys, &y, &SIN_COEFFS)?;
        let mut co = try_evaluate_monomial(eval, keys, &y, &COS_COEFFS)?;

        // r double-angle iterations: s ← 2sc, c ← 1 − 2s².
        for _ in 0..self.doublings {
            let level = s.level().min(co.level());
            let scale = s.scale();
            let s_al = eval.try_adjust(&s, level, scale)?;
            let c_al = eval.try_adjust(&co, level, scale)?;
            let sc = eval.try_rescale(&eval.try_mul(&s_al, &c_al, keys)?)?;
            let s2 = eval.try_rescale(&eval.try_square(&s_al, keys)?)?;
            // 2·sc and 1 − 2·s²: doubling by self-addition is exact.
            let mut s_next = eval.try_add(&sc, &sc)?;
            let s2_doubled = eval.try_add(&s2, &s2)?;
            let one = eval.encode_at_level(
                &[Complex::new(1.0, 0.0)],
                s2_doubled.scale(),
                s2_doubled.level(),
            );
            let mut c_next = eval.neg(&eval.try_sub_plain(&s2_doubled, &one)?);
            let level = s_next.level().min(c_next.level());
            s_next = eval.try_adjust(&s_next, level, s_next.scale())?;
            c_next = eval.try_adjust(&c_next, level, c_next.scale())?;
            s = s_next;
            co = c_next;
        }

        // Multiply back: x ≈ sin(2πx'/q0_eff)·q0_eff/(2π). With q0 only a
        // few bits above Δ the constant is O(1) and encodes at the working
        // scale without precision loss.
        let back = q0_eff / (2.0 * std::f64::consts::PI);
        let pt = eval.encode_at_level(
            &[Complex::new(back, 0.0)],
            self.ctx.default_scale(),
            s.level(),
        );
        eval.try_rescale(&eval.mul_plain(&s, &pt))
    }

    /// Runs the full bootstrapping pipeline on an exhausted (level 0)
    /// ciphertext, returning a refreshed ciphertext at a high level whose
    /// slots approximate the original message.
    ///
    /// # Panics
    ///
    /// Panics if required rotation/conjugation keys are missing or the
    /// input is not at level 0.
    pub fn bootstrap(&self, eval: &Evaluator, keys: &KeySet, ct: &Ciphertext) -> Ciphertext {
        match self.try_bootstrap(eval, keys, ct) {
            Ok(ct) => ct,
            Err(EvalError::EmptyOperands) => panic!("matrix must have a non-zero diagonal"),
            Err(EvalError::LevelMismatch { .. }) => {
                panic!("ModRaise expects an exhausted ciphertext")
            }
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`bootstrap`](Self::bootstrap): every degenerate input —
    /// missing keys, a chain too short for EvalMod, a non-exhausted input,
    /// an all-zero transform matrix — comes back as a typed
    /// [`EvalError`] instead of aborting the process.
    ///
    /// # Errors
    ///
    /// [`EvalError::LevelMismatch`] unless the input is at level 0;
    /// [`EvalError::RescaleAtLevelZero`] when the modulus chain is too
    /// short to fund the pipeline; [`EvalError::EmptyOperands`] for a
    /// degenerate linear-transform matrix; the missing-key variants for
    /// absent rotation/conjugation keys.
    pub fn try_bootstrap(
        &self,
        eval: &Evaluator,
        keys: &KeySet,
        ct: &Ciphertext,
    ) -> Result<Ciphertext, EvalError> {
        #[cfg(feature = "telemetry")]
        let _span = tel::total().span(self.slots as u64);
        let raised = self.try_mod_raise(ct)?;
        let traced = self.try_subsum(eval, keys, &raised)?;
        let (low, high) = self.try_coeff_to_slot(eval, keys, &traced)?;
        let low = self.try_eval_mod(eval, keys, &low)?;
        let high = self.try_eval_mod(eval, keys, &high)?;
        self.try_slot_to_coeff(eval, keys, &low, &high)
    }
}

/// Inverts a small dense real matrix by Gauss–Jordan with partial pivoting.
///
/// # Panics
///
/// Panics if the matrix is singular (the embedding map never is).
fn invert_real(m: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = m.len();
    let mut a: Vec<Vec<f64>> = m
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let mut r = row.clone();
            r.extend((0..n).map(|j| if i == j { 1.0 } else { 0.0 }));
            r
        })
        .collect();
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&x, &y| a[x][col].abs().partial_cmp(&a[y][col].abs()).unwrap())
            .unwrap();
        assert!(a[pivot][col].abs() > 1e-12, "singular matrix");
        a.swap(col, pivot);
        let p = a[col][col];
        for v in &mut a[col] {
            *v /= p;
        }
        let pivot_row = a[col].clone();
        for (row, r) in a.iter_mut().enumerate() {
            if row != col {
                let f = r[col];
                if f != 0.0 {
                    for (x, &pv) in r.iter_mut().zip(&pivot_row) {
                        *x -= f * pv;
                    }
                }
            }
        }
    }
    a.into_iter().map(|row| row[n..].to_vec()).collect()
}

/// Truncates a ciphertext to level 0 — test/demo utility producing the
/// "exhausted" input bootstrapping expects.
pub fn exhaust_to_level0(eval: &Evaluator, ct: &Ciphertext) -> Ciphertext {
    eval.drop_to_level(ct, 0)
}

/// Encrypt-ready plaintext helper used by the bootstrapping demo binaries.
pub fn encode_for_bootstrap(ctx: &CkksContext, z: &[Complex]) -> Plaintext {
    Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), z, ctx.default_scale()),
        ctx.default_scale(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;
    use rand::SeedableRng;

    #[test]
    fn invert_real_matches_identity() {
        let m = vec![
            vec![2.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ];
        let inv = invert_real(&m);
        for (i, mi) in m.iter().enumerate() {
            let prod_row: Vec<f64> = (0..3)
                .map(|j| (0..3).map(|k| mi[k] * inv[k][j]).sum())
                .collect();
            for (j, &dot) in prod_row.iter().enumerate() {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((dot - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn c2s_matrices_invert_the_encoder() {
        // Plain (non-homomorphic) check: F applied to strided unit coeffs,
        // then the A-matrices, returns the coefficients.
        let ctx = CkksContext::new(CkksParams::toy());
        let bs = Bootstrapper::new(&ctx, 4, 2);
        let slots = 4usize;
        let stride = ctx.n() / (2 * slots);
        // Random sparse coefficient vector.
        let coeffs_small: Vec<f64> = (0..2 * slots).map(|i| (i as f64 - 3.5) * 0.25).collect();
        let mut coeffs = vec![0.0f64; ctx.n()];
        for (k, &v) in coeffs_small.iter().enumerate() {
            coeffs[k * stride] = v;
        }
        let w = ctx.encoder().decode_from_coeffs(&coeffs, 1.0, slots);
        // m̃_low = A_lw·w + A_lcw·conj(w)
        let apply = |m: &[Vec<Complex>], v: &[Complex]| -> Vec<Complex> {
            (0..slots)
                .map(|i| {
                    let mut acc = Complex::default();
                    for j in 0..slots {
                        acc = acc + m[i][j] * v[j];
                    }
                    acc
                })
                .collect()
        };
        let cw: Vec<Complex> = w.iter().map(|c| c.conj()).collect();
        let low: Vec<Complex> = apply(&bs.a_low_w, &w)
            .iter()
            .zip(apply(&bs.a_low_cw, &cw))
            .map(|(a, b)| *a + b)
            .collect();
        let high: Vec<Complex> = apply(&bs.a_high_w, &w)
            .iter()
            .zip(apply(&bs.a_high_cw, &cw))
            .map(|(a, b)| *a + b)
            .collect();
        // The matrices fold in the 1/D trace correction (D = stride).
        let d = stride as f64;
        for k in 0..slots {
            assert!((low[k].re - coeffs_small[k] / d).abs() < 1e-9, "low {k}");
            assert!(low[k].im.abs() < 1e-9);
            assert!(
                (high[k].re - coeffs_small[slots + k] / d).abs() < 1e-9,
                "high {k}"
            );
        }
    }

    #[test]
    fn mod_raise_preserves_message_mod_q0() {
        let ctx = CkksContext::new(CkksParams::toy());
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let keys = KeySet::generate_sparse(&ctx, 8, &mut rng);
        let eval = Evaluator::new(&ctx);
        let bs = Bootstrapper::new(&ctx, 4, 2);
        let z = vec![Complex::new(0.5, 0.0); 4];
        let pt = encode_for_bootstrap(&ctx, &z);
        let ct = keys.public().encrypt(&pt, &mut rng);
        let exhausted = exhaust_to_level0(&eval, &ct);
        let raised = bs.mod_raise(&exhausted);
        assert_eq!(raised.level(), ctx.max_level());
        // Decrypting the raised ciphertext yields m + q0·I; check mod q0.
        let dec = keys.secret().decrypt(&raised);
        let q0 = ctx.chain_basis().primes()[0];
        let coeffs = dec.poly().to_centered_coeffs();
        let direct = keys
            .secret()
            .decrypt(&exhausted)
            .poly()
            .to_centered_coeffs();
        for (a, b) in coeffs.iter().zip(&direct) {
            assert_eq!(a.rem_euclid(q0 as i64), b.rem_euclid(q0 as i64));
        }
    }

    #[test]
    fn try_bootstrap_on_short_chain_reports_level_exhaustion() {
        // A 4-prime chain cannot fund EvalMod's Taylor tree: the pipeline
        // must surface RescaleAtLevelZero instead of aborting mid-flight.
        let ctx = CkksContext::new(CkksParams::toy());
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut keys = KeySet::generate_sparse(&ctx, 8, &mut rng);
        let eval = Evaluator::new(&ctx);
        let bs = Bootstrapper::new(&ctx, 4, 2);
        keys.add_rotation_keys(bs.required_rotations(), &mut rng);
        keys.add_conjugation_key(&mut rng);
        let z = vec![Complex::new(0.25, 0.0); 4];
        let pt = encode_for_bootstrap(&ctx, &z);
        let ct = keys.public().encrypt(&pt, &mut rng);
        let exhausted = exhaust_to_level0(&eval, &ct);
        let err = bs
            .try_bootstrap(&eval, &keys, &exhausted)
            .expect_err("toy chain is too short to bootstrap");
        assert!(
            matches!(err, EvalError::RescaleAtLevelZero),
            "unexpected error: {err:?}"
        );
    }

    #[test]
    fn try_bootstrap_on_fresh_ciphertext_reports_level_mismatch() {
        let ctx = CkksContext::new(CkksParams::toy());
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let keys = KeySet::generate_sparse(&ctx, 8, &mut rng);
        let eval = Evaluator::new(&ctx);
        let bs = Bootstrapper::new(&ctx, 4, 2);
        let z = vec![Complex::new(0.25, 0.0); 4];
        let pt = encode_for_bootstrap(&ctx, &z);
        let ct = keys.public().encrypt(&pt, &mut rng);
        let err = bs
            .try_bootstrap(&eval, &keys, &ct)
            .expect_err("input is not exhausted");
        assert!(matches!(err, EvalError::LevelMismatch { .. }));
    }

    #[test]
    fn required_rotations_cover_subsum_and_matvec() {
        let ctx = CkksContext::new(CkksParams::toy());
        let bs = Bootstrapper::new(&ctx, 4, 2);
        let rots = bs.required_rotations();
        // matvec rotations 1..4 and subsum 4,8,...,N/4.
        for d in [1i64, 2, 3, 4, 8, 16, 32, 64, 128, 256] {
            assert!(rots.contains(&d), "missing rotation {d}");
        }
    }
}
