//! CKKS parameter sets.
//!
//! A parameter set fixes the ring degree `N`, the modulus-chain layout
//! (first-prime bits, scale-prime bits, chain length `L`), the special
//! keyswitching primes, and the default encoding scale Δ.
//!
//! The presets mirror the two regimes the reproduction needs:
//!
//! * [`CkksParams::toy`] / [`CkksParams::small`] — fast functional tests.
//! * [`CkksParams::paper_32bit`] — 32-bit primes matching Poseidon's
//!   datapath width (§IV-A), used by the CPU-baseline benchmarks.
//! * [`CkksParams::bootstrap_demo`] — wider primes (precision headroom for
//!   the software library) and a deep chain for the bootstrapping pipeline.

/// Parameters for an RNS-CKKS instantiation.
///
/// # Examples
///
/// ```
/// let p = he_ckks::params::CkksParams::toy();
/// assert!(p.n.is_power_of_two());
/// assert!(p.chain_len >= 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CkksParams {
    /// Ring degree `N` (power of two).
    pub n: usize,
    /// Bit size of the first chain prime `q_0` (the decryption modulus
    /// floor for bootstrapping).
    pub first_prime_bits: u32,
    /// Bit size of the scale primes `q_1 … q_L` (≈ log2 Δ).
    pub scale_prime_bits: u32,
    /// Number of chain primes (`L + 1` in paper notation; multiplicative
    /// depth is `chain_len − 1`).
    pub chain_len: usize,
    /// Number of special primes `P` for keyswitching (dnum = 1 hybrid).
    pub special_len: usize,
    /// Bit size of the special primes.
    pub special_prime_bits: u32,
    /// Default encoding scale Δ.
    pub scale: f64,
    /// Standard deviation of the discrete-Gaussian error sampler.
    pub error_std: f64,
}

impl CkksParams {
    /// Minimal parameters for unit tests: `N = 2^10`, 4 chain primes.
    pub fn toy() -> Self {
        Self {
            n: 1 << 10,
            first_prime_bits: 50,
            scale_prime_bits: 40,
            chain_len: 4,
            special_len: 1,
            special_prime_bits: 51,
            scale: (1u64 << 40) as f64,
            error_std: 3.2,
        }
    }

    /// Small-but-deeper parameters (`N = 2^11`, 8 chain primes) for
    /// multi-operation pipelines in tests.
    pub fn small() -> Self {
        Self {
            n: 1 << 11,
            first_prime_bits: 50,
            scale_prime_bits: 40,
            chain_len: 8,
            special_len: 2,
            special_prime_bits: 51,
            scale: (1u64 << 40) as f64,
            error_std: 3.2,
        }
    }

    /// Paper-matched datapath parameters: 32-bit primes (§IV-A: "we use the
    /// RNS-based FHE scheme to limit the data width to 32 bits"),
    /// `N = 2^13` by default — the working set of the CPU-baseline
    /// measurements in Table IV.
    pub fn paper_32bit(n: usize, chain_len: usize) -> Self {
        Self {
            n,
            first_prime_bits: 31,
            scale_prime_bits: 28,
            chain_len,
            special_len: 1,
            special_prime_bits: 32,
            scale: (1u64 << 28) as f64,
            error_std: 3.2,
        }
    }

    /// Deep chain for the packed-bootstrapping pipeline. Uses wider primes
    /// than the hardware datapath for precision headroom in the software
    /// library (the simulator still models 32-bit words).
    pub fn bootstrap_demo() -> Self {
        Self {
            n: 1 << 11,
            // q0/Δ = 2^3 keeps the EvalMod back-multiplication (which
            // amplifies the sine-approximation error) close to 1 while
            // still leaving 8Δ of headroom for the message coefficients.
            first_prime_bits: 48,
            scale_prime_bits: 45,
            chain_len: 24,
            special_len: 2,
            special_prime_bits: 56,
            scale: (1u64 << 45) as f64,
            error_std: 3.2,
        }
    }

    /// Number of slots (`N / 2`).
    pub fn slots(&self) -> usize {
        self.n / 2
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.n.is_power_of_two() || self.n < 8 {
            return Err("N must be a power of two ≥ 8".into());
        }
        if self.chain_len < 1 {
            return Err("chain must contain at least one prime".into());
        }
        if self.special_len < 1 {
            return Err("keyswitching needs at least one special prime".into());
        }
        for bits in [
            self.first_prime_bits,
            self.scale_prime_bits,
            self.special_prime_bits,
        ] {
            if !(20..=60).contains(&bits) {
                return Err(format!("prime size {bits} outside supported 20..=60 bits"));
            }
        }
        if self.scale <= 1.0 {
            return Err("scale must exceed 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for p in [
            CkksParams::toy(),
            CkksParams::small(),
            CkksParams::paper_32bit(1 << 13, 6),
            CkksParams::bootstrap_demo(),
        ] {
            assert_eq!(p.validate(), Ok(()), "{p:?}");
        }
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut p = CkksParams::toy();
        p.n = 100;
        assert!(p.validate().is_err());

        let mut p = CkksParams::toy();
        p.special_len = 0;
        assert!(p.validate().is_err());

        let mut p = CkksParams::toy();
        p.scale_prime_bits = 63;
        assert!(p.validate().is_err());
    }
}
