//! Checked evaluation: duplicate execution with checksum comparison,
//! retry-once recovery, and typed escalation.
//!
//! The FPGA carries no ECC on its datapath BRAMs, so Poseidon-class
//! accelerators must assume residues, twiddle tables, and key material can
//! be silently corrupted in flight. This module is the software model of
//! the detection layer: every basic operation routed through
//! [`CheckedEvaluator`] is executed **twice** (dual modular redundancy)
//! and the two result ciphertexts are compared by FNV checksum over their
//! residue vectors ([`he_rns::integrity::digest_poly`] — the same cheap
//! digests taken at NTT/keyswitch entry and exit). The policy is:
//!
//! 1. **detect** — the duplicate digests disagree (or one execution
//!    panicked on poisoned data): a datapath fault happened in at least
//!    one run.
//! 2. **retry once** — re-execute the duplicated pair. A *transient*
//!    fault (the model's single-shot injections) has passed; the clean
//!    pair agrees and the caller never notices beyond the
//!    `integrity.retried` counter.
//! 3. **escalate** — the retried pair still disagrees: the fault is
//!    persistent (stuck-at bit, corrupted table). The operation returns
//!    [`EvalError::IntegrityFault`] — never a panic — so services can
//!    fail the request, quarantine the accelerator, and continue.
//!
//! Detection of persistent faults works because the deterministic
//! injector (`poseidon-faults`) derives each corruption from its global
//! hit counter, just as a real stuck-at bit corrupts different data each
//! time different values stream past it: the two duplicate executions are
//! corrupted *differently*, so their digests cannot agree.
//!
//! Complementing the DMR layer, `he_rns::integrity::GuardedPoly` provides
//! the cheaper single-execution redundant-residue (RRNS) check for
//! pointwise operand flows, and `poseidon_core::OperatorPool::ma_checked`
//! applies an exact sum-invariant at the MA core's retire boundary.
//!
//! Counters are process-global (mirroring `poseidon_par::contained_panics`)
//! and exported as telemetry scopes `integrity.checked` / `.detected` /
//! `.retried` / `.escalated` when the `telemetry` feature is on.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

use he_rns::integrity::{digest_poly, fnv1a_words};

use crate::cipher::{Ciphertext, Plaintext};
use crate::context::CkksContext;
use crate::error::EvalError;
use crate::eval::Evaluator;
use crate::keys::KeySet;

static CHECKED: AtomicU64 = AtomicU64::new(0);
static DETECTED: AtomicU64 = AtomicU64::new(0);
static RETRIED: AtomicU64 = AtomicU64::new(0);
static ESCALATED: AtomicU64 = AtomicU64::new(0);

/// Process-wide integrity counters (see the module docs for the policy
/// each one marks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityStats {
    /// Operations executed under duplicate-execution checking.
    pub checked: u64,
    /// Digest mismatches (or contained panics) observed on a first pair.
    pub detected: u64,
    /// Detections that recovered on the retried pair (transient faults).
    pub retried: u64,
    /// Detections that persisted across the retry and surfaced as
    /// [`EvalError::IntegrityFault`].
    pub escalated: u64,
}

/// Snapshot of the global integrity counters.
pub fn integrity_stats() -> IntegrityStats {
    IntegrityStats {
        checked: CHECKED.load(Ordering::Relaxed),
        detected: DETECTED.load(Ordering::Relaxed),
        retried: RETRIED.load(Ordering::Relaxed),
        escalated: ESCALATED.load(Ordering::Relaxed),
    }
}

/// Records a checked operation. Public so external checking layers (the
/// operator pool's retire-boundary checks, the machine's retry wrapper)
/// aggregate into the same process-wide counters this module exports.
pub fn note_checked() {
    CHECKED.fetch_add(1, Ordering::Relaxed);
    #[cfg(feature = "telemetry")]
    tel::checked().add(1);
}

/// Records a detection (see [`note_checked`]).
pub fn note_detected() {
    DETECTED.fetch_add(1, Ordering::Relaxed);
    #[cfg(feature = "telemetry")]
    tel::detected().add(1);
}

/// Records a successful retry after a detection (see [`note_checked`]).
pub fn note_retried() {
    RETRIED.fetch_add(1, Ordering::Relaxed);
    #[cfg(feature = "telemetry")]
    tel::retried().add(1);
}

/// Records an escalation to [`EvalError::IntegrityFault`]
/// (see [`note_checked`]).
pub fn note_escalated() {
    ESCALATED.fetch_add(1, Ordering::Relaxed);
    #[cfg(feature = "telemetry")]
    tel::escalated().add(1);
}

#[cfg(feature = "telemetry")]
mod tel {
    use poseidon_telemetry::{Metric, Registry};
    use std::sync::Arc;

    pub fn checked() -> Arc<Metric> {
        Registry::global().scope("integrity.checked")
    }
    pub fn detected() -> Arc<Metric> {
        Registry::global().scope("integrity.detected")
    }
    pub fn retried() -> Arc<Metric> {
        Registry::global().scope("integrity.retried")
    }
    pub fn escalated() -> Arc<Metric> {
        Registry::global().scope("integrity.escalated")
    }
}

/// Cheap structural checksum of a ciphertext: FNV over both component
/// polynomials' residues (form-tagged) and the scale bits.
pub fn digest_ciphertext(ct: &Ciphertext) -> u64 {
    fnv1a_words(&[
        digest_poly(ct.c0()),
        digest_poly(ct.c1()),
        ct.scale().to_bits(),
    ])
}

/// An [`Evaluator`] wrapper that runs every operation under duplicate
/// execution with digest comparison and the detect → retry-once →
/// escalate policy. All methods return `Result`: deterministic operand
/// errors (scale/level mismatch, missing keys) pass through unchanged;
/// datapath corruption that survives the retry surfaces as
/// [`EvalError::IntegrityFault`] — never a panic.
///
/// # Examples
///
/// ```
/// use he_ckks::integrity::CheckedEvaluator;
/// use he_ckks::prelude::*;
/// use he_ckks::encoding::Complex;
///
/// let ctx = CkksContext::new(CkksParams::toy());
/// let mut rng = rand::thread_rng();
/// let keys = KeySet::generate(&ctx, &mut rng);
/// let eval = CheckedEvaluator::new(&ctx);
/// let z = vec![Complex::new(1.0, 0.0); 4];
/// let pt = Plaintext::new(
///     ctx.encoder().encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
///     ctx.default_scale(),
/// );
/// let ct = keys.public().encrypt(&pt, &mut rng);
/// let sum = eval.add(&ct, &ct).expect("no faults armed");
/// # let _ = sum;
/// ```
#[derive(Debug, Clone)]
pub struct CheckedEvaluator {
    inner: Evaluator,
}

impl CheckedEvaluator {
    /// Creates a checked evaluator for `ctx`.
    pub fn new(ctx: &CkksContext) -> Self {
        Self {
            inner: Evaluator::new(ctx),
        }
    }

    /// Wraps an existing evaluator.
    pub fn from_evaluator(inner: Evaluator) -> Self {
        Self { inner }
    }

    /// The wrapped (unchecked) evaluator.
    pub fn inner(&self) -> &Evaluator {
        &self.inner
    }

    /// One duplicated, digest-compared attempt. `Ok(Some)` = pair agreed,
    /// `Ok(None)` = mismatch or contained panic (a fault was live),
    /// `Err` = deterministic operand error (identical in both runs —
    /// propagate, nothing to retry).
    fn attempt(
        &self,
        f: &impl Fn() -> Result<Ciphertext, EvalError>,
    ) -> Result<Option<Ciphertext>, EvalError> {
        let run = || catch_unwind(AssertUnwindSafe(f));
        let (first, second) = (run(), run());
        match (first, second) {
            (Ok(Ok(a)), Ok(Ok(b))) => {
                if digest_ciphertext(&a) == digest_ciphertext(&b) {
                    Ok(Some(a))
                } else {
                    Ok(None)
                }
            }
            // The same operand error from both runs is deterministic
            // operand validation, not corruption.
            (Ok(Err(ea)), Ok(Err(eb))) if ea == eb => Err(ea),
            // Any panic, or divergent error/ok outcomes: poisoned data
            // tripped an internal invariant in at least one run.
            _ => Ok(None),
        }
    }

    /// The detect → retry-once → escalate policy around a fallible
    /// operation closure.
    fn checked(
        &self,
        site: &'static str,
        f: impl Fn() -> Result<Ciphertext, EvalError>,
    ) -> Result<Ciphertext, EvalError> {
        note_checked();
        if let Some(ct) = self.attempt(&f)? {
            return Ok(ct);
        }
        note_detected();
        match self.attempt(&f)? {
            Some(ct) => {
                note_retried();
                Ok(ct)
            }
            None => {
                note_escalated();
                Err(EvalError::IntegrityFault { site })
            }
        }
    }

    /// Checked HAdd (ct+ct).
    ///
    /// # Errors
    ///
    /// [`EvalError::ScaleMismatch`] on operand mismatch;
    /// [`EvalError::IntegrityFault`] on persistent corruption.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, EvalError> {
        self.checked("add", || self.inner.try_add(a, b))
    }

    /// Checked subtraction.
    ///
    /// # Errors
    ///
    /// As [`add`](Self::add).
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, EvalError> {
        self.checked("sub", || self.inner.try_sub(a, b))
    }

    /// Checked ct+pt addition.
    ///
    /// # Errors
    ///
    /// As [`add`](Self::add).
    pub fn add_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, EvalError> {
        self.checked("add_plain", || self.inner.try_add_plain(a, pt))
    }

    /// Checked PMult.
    ///
    /// # Errors
    ///
    /// [`EvalError::IntegrityFault`] on persistent corruption.
    pub fn mul_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Result<Ciphertext, EvalError> {
        self.checked("mul_plain", || Ok(self.inner.mul_plain(a, pt)))
    }

    /// Checked CMult with relinearisation (covers the keyswitch datapath:
    /// digit lift, NTTs, key products, Moddown).
    ///
    /// # Errors
    ///
    /// [`EvalError::IntegrityFault`] on persistent corruption.
    pub fn mul(
        &self,
        a: &Ciphertext,
        b: &Ciphertext,
        keys: &KeySet,
    ) -> Result<Ciphertext, EvalError> {
        self.checked("mul", || self.inner.try_mul(a, b, keys))
    }

    /// Checked squaring.
    ///
    /// # Errors
    ///
    /// As [`mul`](Self::mul).
    pub fn square(&self, a: &Ciphertext, keys: &KeySet) -> Result<Ciphertext, EvalError> {
        self.checked("square", || self.inner.try_square(a, keys))
    }

    /// Checked rescale.
    ///
    /// # Errors
    ///
    /// [`EvalError::RescaleAtLevelZero`] at level 0;
    /// [`EvalError::IntegrityFault`] on persistent corruption.
    pub fn rescale(&self, a: &Ciphertext) -> Result<Ciphertext, EvalError> {
        self.checked("rescale", || self.inner.try_rescale(a))
    }

    /// Checked rotation (covers keyswitch + automorphism).
    ///
    /// # Errors
    ///
    /// [`EvalError::MissingRotationKey`] when no key exists;
    /// [`EvalError::IntegrityFault`] on persistent corruption.
    pub fn rotate(
        &self,
        a: &Ciphertext,
        steps: i64,
        keys: &KeySet,
    ) -> Result<Ciphertext, EvalError> {
        self.checked("rotate", || self.inner.try_rotate(a, steps, keys))
    }

    /// Checked conjugation.
    ///
    /// # Errors
    ///
    /// [`EvalError::MissingConjugationKey`] when no key exists;
    /// [`EvalError::IntegrityFault`] on persistent corruption.
    pub fn conjugate(&self, a: &Ciphertext, keys: &KeySet) -> Result<Ciphertext, EvalError> {
        self.checked("conjugate", || self.inner.try_conjugate(a, keys))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;
    use rand::SeedableRng;

    fn setup() -> (CkksContext, KeySet, CheckedEvaluator, rand::rngs::StdRng) {
        let ctx = CkksContext::new(CkksParams::toy());
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xFA17);
        let keys = KeySet::generate(&ctx, &mut rng);
        let eval = CheckedEvaluator::new(&ctx);
        (ctx, keys, eval, rng)
    }

    fn encrypt(
        ctx: &CkksContext,
        keys: &KeySet,
        rng: &mut rand::rngs::StdRng,
        v: f64,
    ) -> Ciphertext {
        let z = vec![crate::encoding::Complex::new(v, 0.0)];
        let pt = Plaintext::new(
            ctx.encoder()
                .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
            ctx.default_scale(),
        );
        keys.public().encrypt(&pt, rng)
    }

    #[test]
    fn checked_ops_match_unchecked_when_clean() {
        let (ctx, keys, eval, mut rng) = setup();
        let a = encrypt(&ctx, &keys, &mut rng, 2.0);
        let b = encrypt(&ctx, &keys, &mut rng, 3.0);
        let plain = Evaluator::new(&ctx);
        assert_eq!(eval.add(&a, &b).unwrap(), plain.add(&a, &b));
        assert_eq!(eval.sub(&a, &b).unwrap(), plain.sub(&a, &b));
        assert_eq!(eval.mul(&a, &b, &keys).unwrap(), plain.mul(&a, &b, &keys));
        assert_eq!(
            eval.rescale(&eval.mul(&a, &b, &keys).unwrap()).unwrap(),
            plain.rescale(&plain.mul(&a, &b, &keys))
        );
    }

    #[test]
    fn deterministic_operand_errors_pass_through() {
        let (ctx, keys, eval, mut rng) = setup();
        let a = encrypt(&ctx, &keys, &mut rng, 1.0);
        let before = integrity_stats();
        // Missing rotation key: deterministic, must not count as a
        // detection (both duplicate runs fail identically).
        assert!(matches!(
            eval.rotate(&a, 7, &keys),
            Err(EvalError::MissingRotationKey { steps: 7 })
        ));
        let low = eval.inner().drop_to_level(&a, 0);
        assert!(matches!(
            eval.rescale(&low),
            Err(EvalError::RescaleAtLevelZero)
        ));
        let after = integrity_stats();
        assert_eq!(after.detected, before.detected);
        assert_eq!(after.escalated, before.escalated);
    }

    #[test]
    fn digest_distinguishes_ciphertexts() {
        let (ctx, keys, _, mut rng) = setup();
        let a = encrypt(&ctx, &keys, &mut rng, 1.0);
        let b = encrypt(&ctx, &keys, &mut rng, 1.0);
        assert_eq!(digest_ciphertext(&a), digest_ciphertext(&a));
        // Different encryption randomness → different residues.
        assert_ne!(digest_ciphertext(&a), digest_ciphertext(&b));
    }
}
