//! Application kernels built on the public API — the workload classes of
//! the paper's benchmarks, packaged as reusable components.
//!
//! Currently: encrypted logistic-regression inference (the HELR class,
//! paper Table V's LR benchmark) and an encrypted polynomial neuron (the
//! LSTM cell's activation pattern).

use crate::cipher::Ciphertext;
use crate::encoding::Complex;
use crate::eval::Evaluator;
use crate::keys::KeySet;
use crate::linear::{fold_sum, inner_product_plain};
use crate::polyeval::evaluate_monomial;

/// The HELR degree-3 sigmoid approximation on [−4, 4]:
/// σ(x) ≈ 0.5 + 0.197·x − 0.004·x³.
pub const HELR_SIGMOID: [f64; 4] = [0.5, 0.197, 0.0, -0.004];

/// An encrypted logistic-regression scorer with plaintext weights.
///
/// The feature count must be a power of two dividing the slot count;
/// rotation keys for 1, 2, …, features/2 must exist.
#[derive(Debug, Clone)]
pub struct LogisticModel {
    weights: Vec<Complex>,
    bias: f64,
}

impl LogisticModel {
    /// Builds a model from plaintext weights and bias.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or not power-of-two sized.
    pub fn new(weights: &[f64], bias: f64) -> Self {
        assert!(
            !weights.is_empty() && weights.len().is_power_of_two(),
            "feature count must be a power of two"
        );
        Self {
            weights: weights.iter().map(|&w| Complex::new(w, 0.0)).collect(),
            bias,
        }
    }

    /// Number of features.
    pub fn features(&self) -> usize {
        self.weights.len()
    }

    /// Scores an encrypted feature vector: `σ(⟨w, x⟩ + b)` via the HELR
    /// polynomial. Consumes 3–4 levels.
    ///
    /// # Panics
    ///
    /// Panics if rotation keys for the fold are missing or the chain runs
    /// out of levels.
    pub fn score(&self, eval: &Evaluator, keys: &KeySet, x: &Ciphertext) -> Ciphertext {
        let logit = inner_product_plain(eval, keys, x, &self.weights);
        // Add the bias before the sigmoid.
        let with_bias = {
            let pt = eval.encode_at_level(
                &[Complex::new(self.bias, 0.0)],
                logit.scale(),
                logit.level(),
            );
            eval.add_plain(&logit, &pt)
        };
        evaluate_monomial(eval, keys, &with_bias, &HELR_SIGMOID)
    }

    /// Plaintext reference of [`score`] for validation.
    ///
    /// [`score`]: Self::score
    pub fn score_plain(&self, x: &[f64]) -> f64 {
        let logit: f64 = x
            .iter()
            .zip(&self.weights)
            .map(|(xi, wi)| xi * wi.re)
            .sum::<f64>()
            + self.bias;
        HELR_SIGMOID[0] + HELR_SIGMOID[1] * logit + HELR_SIGMOID[3] * logit.powi(3)
    }
}

/// An encrypted "polynomial neuron": `act(⟨w, x⟩)` with a cubic activation
/// — the per-cell computation of the paper's LSTM benchmark
/// (`y ← σ(W0·y + W1·x)` with a cubic σ).
///
/// # Panics
///
/// Panics if rotation keys for the fold are missing.
pub fn polynomial_neuron(
    eval: &Evaluator,
    keys: &KeySet,
    x: &Ciphertext,
    weights: &[Complex],
    activation: &[f64],
) -> Ciphertext {
    let s = inner_product_plain(eval, keys, x, weights);
    evaluate_monomial(eval, keys, &s, activation)
}

/// Mean of the first `width` slots, landing in every slot (a building
/// block of encrypted statistics; one level).
pub fn slot_mean(eval: &Evaluator, keys: &KeySet, x: &Ciphertext, width: usize) -> Ciphertext {
    let total = fold_sum(eval, keys, x, width);
    let pt = eval.encode_at_level(
        &[Complex::new(1.0 / width as f64, 0.0)],
        eval.context().default_scale(),
        total.level(),
    );
    eval.rescale(&eval.mul_plain(&total, &pt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cipher::Plaintext;
    use crate::context::CkksContext;
    use crate::params::CkksParams;
    use rand::SeedableRng;

    fn setup(features: usize) -> (CkksContext, KeySet, Evaluator, rand::rngs::StdRng) {
        let ctx = CkksContext::new(CkksParams::small());
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xA11);
        let mut keys = KeySet::generate(&ctx, &mut rng);
        let mut s = 1;
        while s < features {
            keys.add_rotation_key(s as i64, &mut rng);
            s *= 2;
        }
        (ctx.clone(), keys, Evaluator::new(&ctx), rng)
    }

    fn encrypt(
        ctx: &CkksContext,
        keys: &KeySet,
        rng: &mut rand::rngs::StdRng,
        vals: &[f64],
    ) -> Ciphertext {
        let z: Vec<Complex> = vals.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let pt = Plaintext::new(
            ctx.encoder()
                .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
            ctx.default_scale(),
        );
        keys.public().encrypt(&pt, rng)
    }

    fn decrypt0(ctx: &CkksContext, keys: &KeySet, ct: &Ciphertext) -> f64 {
        let pt = keys.secret().decrypt(ct);
        ctx.encoder().decode_rns(pt.poly(), pt.scale(), 1)[0].re
    }

    #[test]
    fn logistic_score_matches_plaintext() {
        let (ctx, keys, eval, mut rng) = setup(8);
        let model = LogisticModel::new(&[0.2, -0.4, 0.1, 0.3, -0.2, 0.05, 0.15, -0.1], 0.25);
        let x = [1.0, 0.5, -1.0, 2.0, 0.0, -0.5, 1.5, 0.75];
        let ct = encrypt(&ctx, &keys, &mut rng, &x);
        let got = decrypt0(&ctx, &keys, &model.score(&eval, &keys, &ct));
        let want = model.score_plain(&x);
        assert!((got - want).abs() < 0.02, "{got} vs {want}");
        // Probabilities stay in a sane range for bounded logits.
        assert!(got > 0.0 && got < 1.0);
    }

    #[test]
    fn neuron_applies_cubic_activation() {
        let (ctx, keys, eval, mut rng) = setup(4);
        let w: Vec<Complex> = [0.25, 0.5, -0.25, 0.1]
            .iter()
            .map(|&v| Complex::new(v, 0.0))
            .collect();
        let act = [0.0, 1.0, 0.0, -0.15]; // x − 0.15x³
        let x = [2.0, -1.0, 0.5, 1.0];
        let ct = encrypt(&ctx, &keys, &mut rng, &x);
        let got = decrypt0(&ctx, &keys, &polynomial_neuron(&eval, &keys, &ct, &w, &act));
        let s: f64 = x.iter().zip(&w).map(|(a, b)| a * b.re).sum();
        let want = s - 0.15 * s * s * s;
        assert!((got - want).abs() < 0.02, "{got} vs {want}");
    }

    #[test]
    fn slot_mean_averages() {
        let (ctx, keys, eval, mut rng) = setup(8);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let ct = encrypt(&ctx, &keys, &mut rng, &x);
        let got = decrypt0(&ctx, &keys, &slot_mean(&eval, &keys, &ct, 8));
        assert!((got - 4.5).abs() < 0.02, "{got}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn model_rejects_odd_feature_counts() {
        let _ = LogisticModel::new(&[1.0, 2.0, 3.0], 0.0);
    }
}
