//! Key generation: secret, public, relinearisation, and Galois keys.
//!
//! Keyswitching keys use the classic single-digit (dnum = 1) RNS layout the
//! paper describes around Eq. 1–3: a key for source secret `s'` under target
//! secret `s` is `(b, a) ∈ R²_{PQ}` with `b = −a·s + e + P·s'`, where `P` is
//! the product of the special primes. Using it is exactly Modup → pointwise
//! multiply → Moddown.

use std::collections::HashMap;

use he_rns::{Form, RnsBasis, RnsPoly};
use rand::Rng;

use crate::cipher::{Ciphertext, Plaintext};
use crate::context::CkksContext;
use crate::sampling;

/// The secret key: a ternary polynomial `s`.
///
/// Raw signed coefficients are retained so `s` can be instantiated in any
/// basis (full, level-truncated) and composed with automorphisms.
#[derive(Debug, Clone)]
pub struct SecretKey {
    ctx: CkksContext,
    coeffs: Vec<i64>,
}

impl SecretKey {
    /// Samples a fresh ternary secret.
    pub fn generate<R: Rng + ?Sized>(ctx: &CkksContext, rng: &mut R) -> Self {
        Self {
            ctx: ctx.clone(),
            coeffs: sampling::ternary_coeffs(ctx.n(), rng),
        }
    }

    /// Rebuilds a secret key from its signed coefficients — the
    /// deserialization entry point for the wire format.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is not exactly `N` long.
    pub fn from_coeffs(ctx: &CkksContext, coeffs: Vec<i64>) -> Self {
        assert_eq!(coeffs.len(), ctx.n(), "secret must have N coefficients");
        Self {
            ctx: ctx.clone(),
            coeffs,
        }
    }

    /// The signed ternary coefficients of `s`.
    #[inline]
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs
    }

    /// The context this secret belongs to.
    #[inline]
    pub fn context(&self) -> &CkksContext {
        &self.ctx
    }

    /// Instantiates `s` in `basis`, coefficient form.
    pub fn poly_in(&self, basis: &RnsBasis) -> RnsPoly {
        RnsPoly::from_i64_coeffs(basis, &self.coeffs)
    }

    /// Decrypts: `m = c_0 + c_1·s (mod Q_level)` at the ciphertext's scale.
    pub fn decrypt(&self, ct: &Ciphertext) -> Plaintext {
        let basis = ct.c0().basis().clone();
        let s = self.poly_in(&basis).into_eval();
        let c1s = ct.c1().clone().into_eval().mul(&s).into_coeff();
        Plaintext::new(ct.c0().add(&c1s), ct.scale())
    }
}

/// The public encryption key `(b, a) = (−a·s + e, a) mod Q`.
#[derive(Debug, Clone)]
pub struct PublicKey {
    ctx: CkksContext,
    b: RnsPoly,
    a: RnsPoly,
}

impl PublicKey {
    /// Derives a public key from the secret key.
    pub fn generate<R: Rng + ?Sized>(ctx: &CkksContext, sk: &SecretKey, rng: &mut R) -> Self {
        let basis = ctx.chain_basis();
        let a = sampling::uniform_poly(basis, Form::Coeff, rng);
        let e = RnsPoly::from_i64_coeffs(
            basis,
            &sampling::gaussian_coeffs(ctx.n(), ctx.params().error_std, rng),
        );
        let s = sk.poly_in(basis).into_eval();
        let b = a.clone().into_eval().mul(&s).into_coeff().neg().add(&e);
        Self {
            ctx: ctx.clone(),
            b,
            a,
        }
    }

    /// Rebuilds a public key from its `(b, a)` components (chain basis,
    /// coefficient form) — the deserialization entry point.
    pub fn from_parts(ctx: &CkksContext, b: RnsPoly, a: RnsPoly) -> Self {
        Self {
            ctx: ctx.clone(),
            b,
            a,
        }
    }

    /// The masked component `b = −a·s + e`.
    #[inline]
    pub fn b(&self) -> &RnsPoly {
        &self.b
    }

    /// The uniform component `a`.
    #[inline]
    pub fn a(&self) -> &RnsPoly {
        &self.a
    }

    /// Encrypts a plaintext: `(v·b + e_0 + m, v·a + e_1)`.
    pub fn encrypt<R: Rng + ?Sized>(&self, pt: &Plaintext, rng: &mut R) -> Ciphertext {
        let basis = pt.poly().basis().clone();
        let level = basis.len();
        let n = self.ctx.n();
        let std = self.ctx.params().error_std;
        let v = RnsPoly::from_i64_coeffs(&basis, &sampling::ternary_coeffs(n, rng)).into_eval();
        let e0 = RnsPoly::from_i64_coeffs(&basis, &sampling::gaussian_coeffs(n, std, rng));
        let e1 = RnsPoly::from_i64_coeffs(&basis, &sampling::gaussian_coeffs(n, std, rng));
        let b = self.b.truncate_basis(level).into_eval();
        let a = self.a.truncate_basis(level).into_eval();
        let c0 = v.mul(&b).into_coeff().add(&e0).add(pt.poly());
        let c1 = v.mul(&a).into_coeff().add(&e1);
        Ciphertext::new(c0, c1, pt.scale())
    }
}

/// A keyswitching key for one source secret (s², or s∘τ_g), in the RNS
/// digit-decomposed hybrid form (α = 1): one `(b_j, a_j)` pair per chain
/// prime, where `b_j = −a_j·s + e_j` everywhere **except** on RNS component
/// `j`, which additionally carries `P·s' mod q_j`.
///
/// At apply time each operand residue `[d]_{q_j}` is lifted *exactly* to
/// the extended basis and multiplied against pair `j`; the sum decrypts to
/// `P·d·s' + Σ_j [d]_{q_j}·e_j`, and Moddown divides the `P` away. The key
/// structure is level-independent: the per-prime identity holds for any
/// prefix of the chain.
#[derive(Debug, Clone)]
pub struct KeySwitchKey {
    /// One `(b_j, a_j)` pair per chain prime, over `Q ∪ P`, coeff form.
    pub(crate) pairs: Vec<(RnsPoly, RnsPoly)>,
    /// The same pairs forward-NTT'd over the full basis, precomputed at
    /// generation time. The per-prime NTT is basis-independent, so a
    /// level-`l` keyswitch slices these residue vectors directly — the hot
    /// loop never runs `into_eval()` on key material (the software
    /// analogue of Poseidon keeping keyswitch keys resident in HBM in
    /// evaluation representation). Empty when the cache was stripped
    /// ([`without_eval_cache`](Self::without_eval_cache)); apply paths
    /// then fall back to slicing + NTT, bit-identically.
    pub(crate) eval_pairs: Vec<(RnsPoly, RnsPoly)>,
}

impl KeySwitchKey {
    /// Generates a key switching `source` (coefficients of `s'`) to `sk`.
    pub fn generate<R: Rng + ?Sized>(
        ctx: &CkksContext,
        sk: &SecretKey,
        source: &[i64],
        rng: &mut R,
    ) -> Self {
        let full = ctx.full_basis();
        let s = sk.poly_in(full).into_eval();
        let chain = ctx.chain_basis();
        // This digit loop stays serial on purpose: each iteration draws
        // from the shared `rng`, and the draw order defines the key. The
        // heavy math inside (NTT/mul/add on RnsPoly) still dispatches
        // limb-parallel, and stays thread-count-invariant.
        let pairs = (0..chain.len())
            .map(|j| {
                let a = sampling::uniform_poly(full, Form::Coeff, rng);
                let e = RnsPoly::from_i64_coeffs(
                    full,
                    &sampling::gaussian_coeffs(ctx.n(), ctx.params().error_std, rng),
                );
                let mut b = a.clone().into_eval().mul(&s).into_coeff().neg().add(&e);
                // Add P·s' on component j only.
                let qj = chain.primes()[j];
                let red = he_math::BarrettReducer::new(qj);
                let p_mod_qj = ctx
                    .special_basis()
                    .primes()
                    .iter()
                    .fold(1u64, |acc, &p| red.mul(acc, p % qj));
                let comp = &mut b.all_residues_mut()[j];
                for (c, &sv) in comp.iter_mut().zip(source) {
                    let sv_mod = he_math::modops::reduce_i64(sv, qj);
                    *c = he_math::modops::add_mod(*c, red.mul(p_mod_qj, sv_mod), qj);
                }
                (b, a)
            })
            .collect();
        let mut key = Self {
            pairs,
            eval_pairs: Vec::new(),
        };
        key.precompute_eval_pairs();
        key
    }

    /// Rebuilds a key from its raw digit pairs (over `Q ∪ P`, coefficient
    /// form), restoring the evaluation-form cache — the deserialization
    /// entry point for the wire format.
    pub fn from_pairs(pairs: Vec<(RnsPoly, RnsPoly)>) -> Self {
        let mut key = Self {
            pairs,
            eval_pairs: Vec::new(),
        };
        key.precompute_eval_pairs();
        key
    }

    /// (Re)builds the evaluation-form key cache from the coefficient
    /// pairs. Called by [`generate`](Self::generate); exposed so keys
    /// deserialised or stripped for testing can restore the fast path.
    pub fn precompute_eval_pairs(&mut self) {
        self.eval_pairs = self
            .pairs
            .iter()
            .map(|(b, a)| (b.clone().into_eval(), a.clone().into_eval()))
            .collect();
    }

    /// A copy of this key with the evaluation-form cache stripped, forcing
    /// apply paths onto the slice + NTT fallback — for bit-exactness tests
    /// and memory-constrained callers.
    pub fn without_eval_cache(&self) -> Self {
        Self {
            pairs: self.pairs.clone(),
            eval_pairs: Vec::new(),
        }
    }

    /// The raw per-digit key pairs `(b_j, a_j)` over `Q ∪ P` in coefficient
    /// form — exposed for external executors (the Poseidon functional
    /// machine) that re-implement the keyswitch dataflow on their own
    /// operator cores.
    pub fn pairs(&self) -> &[(RnsPoly, RnsPoly)] {
        &self.pairs
    }

    /// Pair `j` restricted to level `l` plus the special primes — the basis
    /// a level-`l` keyswitch operates in.
    pub fn sliced(&self, ctx: &CkksContext, j: usize, level: usize) -> (RnsPoly, RnsPoly) {
        let chain_len = ctx.chain_basis().len();
        let keep = level + 1;
        let basis = ctx.level_basis(level).concat(ctx.special_basis());
        let slice = |p: &RnsPoly| {
            let mut residues = p.all_residues()[..keep].to_vec();
            residues.extend(p.all_residues()[chain_len..].iter().cloned());
            RnsPoly::from_residues(&basis, residues, Form::Coeff)
        };
        let (b, a) = &self.pairs[j];
        (slice(b), slice(a))
    }

    /// Pair `j` restricted to level `l` plus the special primes, already
    /// in evaluation form — served from the precomputed cache, so this is
    /// a residue copy with **zero** NTT work. Returns `None` when the
    /// cache is absent (stripped or hand-built key); callers fall back to
    /// [`sliced`](Self::sliced)` + into_eval()`, which is bit-identical.
    pub fn eval_sliced(
        &self,
        ctx: &CkksContext,
        j: usize,
        level: usize,
    ) -> Option<(RnsPoly, RnsPoly)> {
        if self.eval_pairs.is_empty() {
            return None;
        }
        let chain_len = ctx.chain_basis().len();
        let keep = level + 1;
        let basis = ctx.level_basis(level).concat(ctx.special_basis());
        let slice = |p: &RnsPoly| {
            let mut residues = p.all_residues()[..keep].to_vec();
            residues.extend(p.all_residues()[chain_len..].iter().cloned());
            #[allow(unused_mut)]
            let mut out = RnsPoly::from_residues(&basis, residues, Form::Eval);
            // Injection point for the `KeyCache` fault site: a corrupted
            // HBM-resident key digit read from the eval-form cache. The
            // tamper lands on the sliced copy, never the cache itself, so
            // a retry re-reads clean key material.
            #[cfg(feature = "faults")]
            poseidon_faults::tamper_rows(
                poseidon_faults::FaultSite::KeyCache,
                out.all_residues_mut(),
            );
            out
        };
        let (b, a) = &self.eval_pairs[j];
        Some((slice(b), slice(a)))
    }
}

/// The full key material: secret, public, relinearisation, and Galois keys.
///
/// # Examples
///
/// ```
/// use he_ckks::prelude::*;
/// let ctx = CkksContext::new(CkksParams::toy());
/// let mut rng = rand::thread_rng();
/// let mut keys = KeySet::generate(&ctx, &mut rng);
/// keys.add_rotation_key(1, &mut rng);
/// assert!(keys.galois_key_for_rotation(1).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct KeySet {
    ctx: CkksContext,
    secret: SecretKey,
    public: PublicKey,
    relin: KeySwitchKey,
    /// Galois keys by Galois element `g`.
    galois: HashMap<u64, KeySwitchKey>,
}

impl KeySet {
    /// Generates secret, public, and relinearisation keys.
    pub fn generate<R: Rng + ?Sized>(ctx: &CkksContext, rng: &mut R) -> Self {
        let secret = SecretKey::generate(ctx, rng);
        Self::from_secret(ctx, secret, rng)
    }

    /// Generates keys with a sparse ternary secret of the given Hamming
    /// weight — bootstrapping needs the small `‖s‖₁` to bound the ModRaise
    /// overflow polynomial `I`.
    pub fn generate_sparse<R: Rng + ?Sized>(
        ctx: &CkksContext,
        hamming: usize,
        rng: &mut R,
    ) -> Self {
        let secret = SecretKey {
            ctx: ctx.clone(),
            coeffs: sampling::sparse_ternary_coeffs(ctx.n(), hamming, rng),
        };
        Self::from_secret(ctx, secret, rng)
    }

    fn from_secret<R: Rng + ?Sized>(ctx: &CkksContext, secret: SecretKey, rng: &mut R) -> Self {
        let public = PublicKey::generate(ctx, &secret, rng);
        // s² as signed coefficients: compute in a scratch basis wide enough
        // to hold |s²|∞ ≤ N, then centre.
        let s2 = square_signed(&secret.coeffs);
        let relin = KeySwitchKey::generate(ctx, &secret, &s2, rng);
        Self {
            ctx: ctx.clone(),
            secret,
            public,
            relin,
            galois: HashMap::new(),
        }
    }

    /// Rebuilds a key set from deserialized components. Galois keys are
    /// keyed by their raw Galois element `g` (rotations use `5^k mod 2N`,
    /// conjugation uses `2N − 1`).
    pub fn from_parts(
        ctx: &CkksContext,
        secret: SecretKey,
        public: PublicKey,
        relin: KeySwitchKey,
        galois: Vec<(u64, KeySwitchKey)>,
    ) -> Self {
        Self {
            ctx: ctx.clone(),
            secret,
            public,
            relin,
            galois: galois.into_iter().collect(),
        }
    }

    /// All Galois keys as `(g, key)` pairs, sorted by `g` — a deterministic
    /// iteration order for serialization (the backing map is unordered).
    pub fn galois_entries(&self) -> Vec<(u64, &KeySwitchKey)> {
        let mut entries: Vec<(u64, &KeySwitchKey)> =
            self.galois.iter().map(|(&g, k)| (g, k)).collect();
        entries.sort_unstable_by_key(|&(g, _)| g);
        entries
    }

    /// The secret key.
    #[inline]
    pub fn secret(&self) -> &SecretKey {
        &self.secret
    }

    /// The public key.
    #[inline]
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// The relinearisation key (for `s²`).
    #[inline]
    pub fn relin(&self) -> &KeySwitchKey {
        &self.relin
    }

    /// The Galois element for a left rotation by `steps` slots:
    /// `g = 5^steps mod 2N` (negative steps rotate right).
    pub fn galois_element(&self, steps: i64) -> u64 {
        let two_n = 2 * self.ctx.n() as u64;
        let slots = self.ctx.n() as i64 / 2;
        let k = steps.rem_euclid(slots) as u64;
        he_math::modops::pow_mod(5, k, two_n)
    }

    /// The Galois element for complex conjugation: `2N − 1`.
    pub fn conjugation_element(&self) -> u64 {
        2 * self.ctx.n() as u64 - 1
    }

    /// Adds a Galois key enabling rotation by `steps`.
    pub fn add_rotation_key<R: Rng + ?Sized>(&mut self, steps: i64, rng: &mut R) {
        let g = self.galois_element(steps);
        self.add_galois_key(g, rng);
    }

    /// Adds a Galois key for raw element `g` (rotations use `5^k`,
    /// conjugation uses `2N − 1`).
    pub fn add_galois_key<R: Rng + ?Sized>(&mut self, g: u64, rng: &mut R) {
        if self.galois.contains_key(&g) {
            return;
        }
        // Source secret: s(X^g).
        let basis_probe = self.ctx.chain_basis().prefix(1);
        let _ = basis_probe; // g validity is enforced by automorphism itself
        let s_g = automorphism_signed(&self.secret.coeffs, g);
        let key = KeySwitchKey::generate(&self.ctx, &self.secret, &s_g, rng);
        self.galois.insert(g, key);
    }

    /// Adds Galois keys for every step in `steps` (duplicates are free).
    pub fn add_rotation_keys<R, I>(&mut self, steps: I, rng: &mut R)
    where
        R: Rng + ?Sized,
        I: IntoIterator<Item = i64>,
    {
        for s in steps {
            self.add_rotation_key(s, rng);
        }
    }

    /// Adds the power-of-two rotation keys 1, 2, 4, …, `width`/2 — the set
    /// a log-depth fold over `width` slots needs.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a power of two.
    pub fn add_fold_keys<R: Rng + ?Sized>(&mut self, width: usize, rng: &mut R) {
        assert!(width.is_power_of_two(), "fold width must be a power of two");
        let mut s = 1usize;
        while s < width {
            self.add_rotation_key(s as i64, rng);
            s *= 2;
        }
    }

    /// Adds a conjugation key.
    pub fn add_conjugation_key<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.add_galois_key(self.conjugation_element(), rng);
    }

    /// Looks up the Galois key for rotation by `steps`.
    pub fn galois_key_for_rotation(&self, steps: i64) -> Option<&KeySwitchKey> {
        self.galois.get(&self.galois_element(steps))
    }

    /// Looks up the Galois key for raw element `g`.
    pub fn galois_key(&self, g: u64) -> Option<&KeySwitchKey> {
        self.galois.get(&g)
    }
}

/// Squares a signed ternary polynomial in `Z[X]/(X^N+1)` exactly.
fn square_signed(s: &[i64]) -> Vec<i64> {
    let n = s.len();
    let mut out = vec![0i64; n];
    for i in 0..n {
        if s[i] == 0 {
            continue;
        }
        for j in 0..n {
            if s[j] == 0 {
                continue;
            }
            let k = i + j;
            let v = s[i] * s[j];
            if k < n {
                out[k] += v;
            } else {
                out[k - n] -= v;
            }
        }
    }
    out
}

/// Applies `X ↦ X^g` to signed coefficients (paper Eq. 4).
pub(crate) fn automorphism_signed(s: &[i64], g: u64) -> Vec<i64> {
    let n = s.len() as u64;
    let two_n = 2 * n;
    assert_eq!(g % 2, 1, "Galois element must be odd");
    let mut out = vec![0i64; n as usize];
    for (i, &v) in s.iter().enumerate() {
        let e = (i as u64 * g) % two_n;
        if e < n {
            out[e as usize] = v;
        } else {
            out[(e - n) as usize] = -v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;
    use rand::SeedableRng;

    fn setup() -> (CkksContext, rand::rngs::StdRng) {
        (
            CkksContext::new(CkksParams::toy()),
            rand::rngs::StdRng::seed_from_u64(7),
        )
    }

    #[test]
    fn fresh_encryption_decrypts_with_small_noise() {
        let (ctx, mut rng) = setup();
        let keys = KeySet::generate(&ctx, &mut rng);
        // Encrypt zero; decryption must be only noise.
        let zero = Plaintext::new(
            he_rns::RnsPoly::from_i64_coeffs(ctx.chain_basis(), &vec![0i64; ctx.n()]),
            ctx.default_scale(),
        );
        let ct = keys.public().encrypt(&zero, &mut rng);
        let dec = keys.secret().decrypt(&ct);
        let noise = dec.poly().to_centered_coeffs();
        let max = noise.iter().map(|v| v.abs()).max().unwrap();
        assert!(max > 0, "noise must be present");
        assert!(max < 1 << 20, "noise too large: {max}");
    }

    #[test]
    fn encryption_of_message_preserves_it() {
        let (ctx, mut rng) = setup();
        let keys = KeySet::generate(&ctx, &mut rng);
        let mut m = vec![0i64; ctx.n()];
        m[0] = 1 << 30;
        m[5] = -(1 << 29);
        let pt = Plaintext::new(
            he_rns::RnsPoly::from_i64_coeffs(ctx.chain_basis(), &m),
            ctx.default_scale(),
        );
        let ct = keys.public().encrypt(&pt, &mut rng);
        let dec = keys.secret().decrypt(&ct).poly().to_centered_coeffs();
        assert!((dec[0] - (1 << 30)).abs() < 1 << 16);
        assert!((dec[5] + (1 << 29)).abs() < 1 << 16);
    }

    #[test]
    fn square_signed_matches_small_case() {
        // (1 + X)² = 1 + 2X + X² in Z[X]/(X⁴+1)
        let got = square_signed(&[1, 1, 0, 0]);
        assert_eq!(got, vec![1, 2, 1, 0]);
        // X³·X³ = X⁶ = −X²
        let got = square_signed(&[0, 0, 0, 1]);
        assert_eq!(got, vec![0, 0, -1, 0]);
    }

    #[test]
    fn automorphism_signed_is_invertible() {
        // g·g⁻¹ ≡ 1 (mod 2N) composes to the identity.
        let s: Vec<i64> = (0..16).map(|i| (i % 3) as i64 - 1).collect();
        let g = 5u64; // unit mod 32
        let g_inv = he_math::modops::inv_mod(5, 32).unwrap();
        let round = automorphism_signed(&automorphism_signed(&s, g), g_inv);
        assert_eq!(round, s);
    }

    #[test]
    fn fold_keys_cover_powers_of_two() {
        let (ctx, mut rng) = setup();
        let mut keys = KeySet::generate(&ctx, &mut rng);
        keys.add_fold_keys(8, &mut rng);
        for s in [1i64, 2, 4] {
            assert!(keys.galois_key_for_rotation(s).is_some(), "step {s}");
        }
        assert!(keys.galois_key_for_rotation(8).is_none());
        // Bulk add with duplicates is idempotent.
        keys.add_rotation_keys([1, 2, 3, 3], &mut rng);
        assert!(keys.galois_key_for_rotation(3).is_some());
    }

    #[test]
    fn eval_sliced_matches_slice_then_ntt_bit_exactly() {
        let (ctx, mut rng) = setup();
        let keys = KeySet::generate(&ctx, &mut rng);
        let key = keys.relin();
        assert_eq!(key.eval_pairs.len(), key.pairs.len());
        for level in 0..ctx.chain_basis().len() {
            for j in 0..=level {
                let (b, a) = key.sliced(&ctx, j, level);
                let (be, ae) = key.eval_sliced(&ctx, j, level).expect("cache present");
                assert_eq!(b.into_eval(), be, "b digit {j} level {level}");
                assert_eq!(a.into_eval(), ae, "a digit {j} level {level}");
            }
        }
        let stripped = key.without_eval_cache();
        assert!(stripped.eval_sliced(&ctx, 0, 0).is_none());
    }

    #[test]
    fn galois_elements_compose_rotations() {
        let (ctx, _) = setup();
        let keys = KeySet {
            galois: HashMap::new(),
            relin: KeySwitchKey {
                pairs: Vec::new(),
                eval_pairs: Vec::new(),
            },
            secret: SecretKey {
                ctx: ctx.clone(),
                coeffs: vec![0; ctx.n()],
            },
            public: PublicKey {
                ctx: ctx.clone(),
                b: he_rns::RnsPoly::from_i64_coeffs(ctx.chain_basis(), &vec![0; ctx.n()]),
                a: he_rns::RnsPoly::from_i64_coeffs(ctx.chain_basis(), &vec![0; ctx.n()]),
            },
            ctx: ctx.clone(),
        };
        let two_n = 2 * ctx.n() as u64;
        let g1 = keys.galois_element(1);
        let g2 = keys.galois_element(2);
        assert_eq!(he_math::modops::mul_mod(g1, g1, two_n), g2);
        // Rotation by 0 is the identity element.
        assert_eq!(keys.galois_element(0), 1);
    }
}
