//! Polynomial evaluation on ciphertexts — the engine behind EvalMod.
//!
//! Powers are built with a balanced product tree (`x^j = x^⌈j/2⌉ ·
//! x^⌊j/2⌋`), so a degree-d polynomial consumes ⌈log2 d⌉ + 1 levels instead
//! of Horner's d. Branches of different depth are re-aligned with
//! [`Evaluator::adjust`].

use std::collections::HashMap;

use crate::cipher::Ciphertext;
use crate::encoding::Complex;
use crate::error::EvalError;
use crate::eval::Evaluator;
use crate::keys::KeySet;

/// Lazily materialised powers of a ciphertext.
///
/// # Examples
///
/// ```no_run
/// # use he_ckks::prelude::*;
/// # use he_ckks::polyeval::PowerBasis;
/// # let ctx = CkksContext::new(CkksParams::small());
/// # let mut rng = rand::thread_rng();
/// # let keys = KeySet::generate(&ctx, &mut rng);
/// # let eval = Evaluator::new(&ctx);
/// # let ct: Ciphertext = unimplemented!();
/// let mut powers = PowerBasis::new(ct);
/// let x3 = powers.power(&eval, &keys, 3); // x·x² with one relinearisation
/// ```
#[derive(Debug)]
pub struct PowerBasis {
    cache: HashMap<u32, Ciphertext>,
}

impl PowerBasis {
    /// Starts a power basis from `x` (power 1).
    pub fn new(x: Ciphertext) -> Self {
        let mut cache = HashMap::new();
        cache.insert(1, x);
        Self { cache }
    }

    /// Returns `x^j`, computing and caching intermediate powers.
    ///
    /// # Panics
    ///
    /// Panics if `j == 0` (constants are not ciphertext powers) or if the
    /// modulus chain runs out of levels.
    pub fn power(&mut self, eval: &Evaluator, keys: &KeySet, j: u32) -> Ciphertext {
        assert!(j >= 1, "power must be at least 1");
        self.try_power(eval, keys, j)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`power`](Self::power).
    ///
    /// # Errors
    ///
    /// [`EvalError::EmptyOperands`] if `j == 0`;
    /// [`EvalError::RescaleAtLevelZero`] when the modulus chain runs out
    /// of levels mid-tree.
    pub fn try_power(
        &mut self,
        eval: &Evaluator,
        keys: &KeySet,
        j: u32,
    ) -> Result<Ciphertext, EvalError> {
        if j == 0 {
            return Err(EvalError::EmptyOperands);
        }
        if let Some(ct) = self.cache.get(&j) {
            return Ok(ct.clone());
        }
        let hi = j / 2 + j % 2;
        let lo = j / 2;
        let a = self.try_power(eval, keys, hi)?;
        let b = self.try_power(eval, keys, lo)?;
        // Align operands, multiply, rescale back to the working scale.
        let level = a.level().min(b.level());
        let a = eval.try_drop_to_level(&a, level)?;
        let b = eval.try_drop_to_level(&b, level)?;
        let prod = eval.try_rescale(&eval.try_mul(&a, &b, keys)?)?;
        self.cache.insert(j, prod.clone());
        Ok(prod)
    }
}

/// Evaluates `Σ_j coeffs[j] · x^j` (monomial basis, real coefficients) on a
/// ciphertext. Zero coefficients cost nothing; the result sits at the level
/// of the deepest power used, one more for the coefficient products.
///
/// # Panics
///
/// Panics if `coeffs` is empty or the chain runs out of levels.
pub fn evaluate_monomial(
    eval: &Evaluator,
    keys: &KeySet,
    x: &Ciphertext,
    coeffs: &[f64],
) -> Ciphertext {
    assert!(!coeffs.is_empty(), "need at least one coefficient");
    try_evaluate_monomial(eval, keys, x, coeffs).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`evaluate_monomial`].
///
/// # Errors
///
/// [`EvalError::EmptyOperands`] if `coeffs` is empty;
/// [`EvalError::RescaleAtLevelZero`] when the chain runs out of levels.
pub fn try_evaluate_monomial(
    eval: &Evaluator,
    keys: &KeySet,
    x: &Ciphertext,
    coeffs: &[f64],
) -> Result<Ciphertext, EvalError> {
    if coeffs.is_empty() {
        return Err(EvalError::EmptyOperands);
    }
    let mut powers = PowerBasis::new(x.clone());
    // Materialise all needed powers first to learn the deepest level.
    let mut terms: Vec<(f64, Ciphertext)> = Vec::new();
    for (j, &c) in coeffs.iter().enumerate().skip(1) {
        if c != 0.0 {
            terms.push((c, powers.try_power(eval, keys, j as u32)?));
        }
    }

    let scale = eval.context().default_scale();
    if terms.is_empty() {
        // Pure constant: encode at the input's level as a "ciphertext" by
        // adding to an explicit zero — callers normally avoid this path.
        let zero = eval.try_sub(x, x)?;
        let pt = eval.encode_at_level(&[Complex::new(coeffs[0], 0.0)], zero.scale(), zero.level());
        return eval.try_add_plain(&zero, &pt);
    }

    // Multiply each term by its coefficient (PMult + rescale), then align
    // everything to the deepest resulting level and working scale.
    let mut scaled = Vec::with_capacity(terms.len());
    for (c, ct) in &terms {
        let pt = eval.encode_at_level(&[Complex::new(*c, 0.0)], scale, ct.level());
        scaled.push(eval.try_rescale(&eval.mul_plain(ct, &pt))?);
    }
    let target_level = scaled.iter().map(|c| c.level()).min().expect("non-empty");
    let target_scale = scaled
        .iter()
        .find(|c| c.level() == target_level)
        .expect("non-empty")
        .scale();
    let mut acc = eval.try_adjust(&scaled.remove(0), target_level, target_scale)?;
    for t in &scaled {
        acc = eval.try_add(&acc, &eval.try_adjust(t, target_level, target_scale)?)?;
    }
    if coeffs[0] != 0.0 {
        let pt = eval.encode_at_level(&[Complex::new(coeffs[0], 0.0)], acc.scale(), acc.level());
        acc = eval.try_add_plain(&acc, &pt)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CkksContext;
    use crate::params::CkksParams;
    use rand::SeedableRng;

    fn setup() -> (CkksContext, KeySet, Evaluator, rand::rngs::StdRng) {
        let ctx = CkksContext::new(CkksParams::small());
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let keys = KeySet::generate(&ctx, &mut rng);
        let eval = Evaluator::new(&ctx);
        (ctx, keys, eval, rng)
    }

    fn encrypt(
        ctx: &CkksContext,
        keys: &KeySet,
        rng: &mut rand::rngs::StdRng,
        vals: &[f64],
    ) -> Ciphertext {
        let z: Vec<Complex> = vals.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let pt = crate::cipher::Plaintext::new(
            ctx.encoder()
                .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
            ctx.default_scale(),
        );
        keys.public().encrypt(&pt, rng)
    }

    fn decrypt(ctx: &CkksContext, keys: &KeySet, ct: &Ciphertext) -> f64 {
        let pt = keys.secret().decrypt(ct);
        ctx.encoder().decode_rns(pt.poly(), pt.scale(), 1)[0].re
    }

    #[test]
    fn powers_match_plain_arithmetic() {
        let (ctx, keys, eval, mut rng) = setup();
        let x = 1.1f64;
        let ct = encrypt(&ctx, &keys, &mut rng, &[x]);
        let mut powers = PowerBasis::new(ct);
        for j in [2u32, 3, 4, 5] {
            let got = decrypt(&ctx, &keys, &powers.power(&eval, &keys, j));
            let want = x.powi(j as i32);
            assert!((got - want).abs() < 0.02, "x^{j}: {got} vs {want}");
        }
    }

    #[test]
    fn power_tree_depth_is_logarithmic() {
        let (ctx, keys, eval, mut rng) = setup();
        let ct = encrypt(&ctx, &keys, &mut rng, &[0.9]);
        let top = ct.level();
        let mut powers = PowerBasis::new(ct);
        let x7 = powers.power(&eval, &keys, 7);
        // Depth 3 (x², x³=x·x², x⁷=x³·x⁴) not 6.
        assert!(top - x7.level() <= 3, "depth {} too deep", top - x7.level());
    }

    #[test]
    fn cubic_polynomial_evaluates() {
        let (ctx, keys, eval, mut rng) = setup();
        let x = 0.7f64;
        let ct = encrypt(&ctx, &keys, &mut rng, &[x]);
        // p(x) = 2 − x + 0.5x³
        let got = decrypt(
            &ctx,
            &keys,
            &evaluate_monomial(&eval, &keys, &ct, &[2.0, -1.0, 0.0, 0.5]),
        );
        let want = 2.0 - x + 0.5 * x * x * x;
        assert!((got - want).abs() < 0.02, "{got} vs {want}");
    }

    #[test]
    fn degree7_sine_taylor_is_accurate() {
        let (ctx, keys, eval, mut rng) = setup();
        let x = 0.6f64;
        let ct = encrypt(&ctx, &keys, &mut rng, &[x]);
        let coeffs = [
            0.0,
            1.0,
            0.0,
            -1.0 / 6.0,
            0.0,
            1.0 / 120.0,
            0.0,
            -1.0 / 5040.0,
        ];
        let got = decrypt(&ctx, &keys, &evaluate_monomial(&eval, &keys, &ct, &coeffs));
        assert!((got - x.sin()).abs() < 0.01, "{got} vs {}", x.sin());
    }
}

/// Evaluates `Σ_j coeffs[j] · T_j(x)` in the Chebyshev basis (first kind),
/// the numerically preferred basis for EvalMod-style approximations on
/// `[-1, 1]`.
///
/// Uses the recurrence `T_{j+1} = 2x·T_j − T_{j−1}` with ciphertext
/// caching, costing one level per recurrence step beyond `T_1` plus one
/// for the coefficient products.
///
/// # Panics
///
/// Panics if `coeffs` is empty or the chain runs out of levels.
pub fn evaluate_chebyshev(
    eval: &Evaluator,
    keys: &KeySet,
    x: &Ciphertext,
    coeffs: &[f64],
) -> Ciphertext {
    assert!(!coeffs.is_empty(), "need at least one coefficient");
    let scale = eval.context().default_scale();
    // Materialise T_1..T_d with the recurrence.
    let mut t_polys: Vec<Ciphertext> = Vec::with_capacity(coeffs.len());
    if coeffs.len() > 1 {
        t_polys.push(x.clone()); // T_1
    }
    for j in 2..coeffs.len() {
        let prev = &t_polys[j - 2]; // T_{j-1}
                                    // 2x·T_{j−1}
        let level = prev.level().min(x.level());
        let x_al = eval.adjust(x, level, prev.scale().max(x.scale()).min(prev.scale()));
        let x_al = eval.adjust(&x_al, level, prev.scale());
        let two_x_t = {
            let prod =
                eval.rescale(&eval.mul(&x_al, &eval.adjust(prev, level, prev.scale()), keys));
            eval.add(&prod, &prod)
        };
        let t_next = if j == 2 {
            // T_2 = 2x² − 1
            let one =
                eval.encode_at_level(&[Complex::new(1.0, 0.0)], two_x_t.scale(), two_x_t.level());
            eval.sub_plain(&two_x_t, &one)
        } else {
            // T_j = 2x·T_{j−1} − T_{j−2}
            let t_m2 = &t_polys[j - 3];
            let aligned = eval.adjust(t_m2, two_x_t.level(), two_x_t.scale());
            eval.sub(&two_x_t, &aligned)
        };
        t_polys.push(t_next);
    }

    // Combine: c_0 + Σ_{j≥1} c_j·T_j.
    let mut scaled: Vec<Ciphertext> = Vec::new();
    for (j, &c) in coeffs.iter().enumerate().skip(1) {
        if c == 0.0 {
            continue;
        }
        let t_j = &t_polys[j - 1];
        let pt = eval.encode_at_level(&[Complex::new(c, 0.0)], scale, t_j.level());
        scaled.push(eval.rescale(&eval.mul_plain(t_j, &pt)));
    }
    if scaled.is_empty() {
        let zero = eval.sub(x, x);
        let pt = eval.encode_at_level(&[Complex::new(coeffs[0], 0.0)], zero.scale(), zero.level());
        return eval.add_plain(&zero, &pt);
    }
    let target_level = scaled.iter().map(|c| c.level()).min().expect("non-empty");
    let target_scale = scaled
        .iter()
        .find(|c| c.level() == target_level)
        .expect("non-empty")
        .scale();
    let mut acc = eval.adjust(&scaled.remove(0), target_level, target_scale);
    for t in &scaled {
        acc = eval.add(&acc, &eval.adjust(t, target_level, target_scale));
    }
    if coeffs[0] != 0.0 {
        let pt = eval.encode_at_level(&[Complex::new(coeffs[0], 0.0)], acc.scale(), acc.level());
        acc = eval.add_plain(&acc, &pt);
    }
    acc
}

/// Computes the Chebyshev interpolation coefficients of `f` on `[-1, 1]`
/// at degree `d` (Chebyshev nodes, discrete cosine transform form) — a
/// plaintext helper for preparing EvalMod-style approximations.
pub fn chebyshev_coefficients<F: Fn(f64) -> f64>(f: F, d: usize) -> Vec<f64> {
    let n = d + 1;
    let samples: Vec<f64> = (0..n)
        .map(|k| {
            let xk = (std::f64::consts::PI * (k as f64 + 0.5) / n as f64).cos();
            f(xk)
        })
        .collect();
    (0..n)
        .map(|j| {
            let sum: f64 = (0..n)
                .map(|k| {
                    samples[k]
                        * (std::f64::consts::PI * j as f64 * (k as f64 + 0.5) / n as f64).cos()
                })
                .sum();
            let norm = if j == 0 { 1.0 } else { 2.0 };
            norm * sum / n as f64
        })
        .collect()
}

#[cfg(test)]
mod chebyshev_tests {
    use super::*;
    use crate::context::CkksContext;
    use crate::params::CkksParams;
    use rand::SeedableRng;

    #[test]
    fn chebyshev_coefficients_reconstruct_function() {
        // Plaintext check: the interpolant of sin on [-1, 1] at degree 9.
        let coeffs = chebyshev_coefficients(f64::sin, 9);
        for x in [-0.9f64, -0.3, 0.0, 0.5, 0.99] {
            // Clenshaw evaluation.
            let (mut b1, mut b2) = (0.0f64, 0.0f64);
            for &c in coeffs.iter().rev() {
                let b0 = 2.0 * x * b1 - b2 + c;
                b2 = b1;
                b1 = b0;
            }
            let val = b1 - x * b2 - coeffs[0] / 2.0 + coeffs[0] / 2.0;
            let got = b1 - x * b2; // T-basis Clenshaw with c0 included once
            let want = x.sin();
            let _ = val;
            // Clenshaw above double-counts nothing for our convention:
            // p(x) = Σ c_j T_j with c_0 already halved by the DCT norm.
            assert!((got - want).abs() < 1e-6, "x={x}: {got} vs {want}");
        }
    }

    #[test]
    fn homomorphic_chebyshev_matches_plaintext() {
        let ctx = CkksContext::new(CkksParams::small());
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let keys = KeySet::generate(&ctx, &mut rng);
        let eval = Evaluator::new(&ctx);
        let x = 0.4f64;
        let z = vec![Complex::new(x, 0.0)];
        let pt = crate::cipher::Plaintext::new(
            ctx.encoder()
                .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
            ctx.default_scale(),
        );
        let ct = keys.public().encrypt(&pt, &mut rng);
        // p(x) = 0.5·T_0 + 0.25·T_1 − 0.125·T_2 + 0.0625·T_3
        let coeffs = [0.5, 0.25, -0.125, 0.0625];
        let got_ct = evaluate_chebyshev(&eval, &keys, &ct, &coeffs);
        let dec = keys.secret().decrypt(&got_ct);
        let got = ctx.encoder().decode_rns(dec.poly(), dec.scale(), 1)[0].re;
        let t = [1.0, x, 2.0 * x * x - 1.0, 4.0 * x * x * x - 3.0 * x];
        let want: f64 = coeffs.iter().zip(&t).map(|(c, t)| c * t).sum();
        assert!((got - want).abs() < 0.02, "{got} vs {want}");
    }
}
