//! Canonical-embedding encoder: complex slot vectors ↔ ring plaintexts.
//!
//! CKKS packs `n = N/2` complex numbers into one real polynomial through the
//! canonical embedding σ. Writing ζ = e^{iπ/N} (a primitive 2N-th root of
//! unity), the slot values of `m(X)` are its evaluations at ζ^{5^j},
//! `j = 0 … n−1`; the remaining N − n odd-power evaluation points are the
//! complex conjugates, which forces real coefficients.
//!
//! Implementation: the full odd-power evaluation `(m(ζ^{2t+1}))_t` equals a
//! ψ-twisted length-N complex DFT of the coefficients, so both directions
//! run in O(N log N) through one radix-2 complex FFT:
//!
//! * **decode**: twist `g_k = m_k ζ^k`, forward DFT, read slots at
//!   `t_j = (5^j − 1)/2`.
//! * **encode**: scatter `z_j·Δ` to `t_j` and `conj(z_j)·Δ` to `N−1−t_j`,
//!   inverse DFT, untwist, round to integers.

use std::fmt;

/// A complex number with `f64` components (minimal, crate-local — no
//  external dependency needed for the encoder).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates `re + i·im`.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Modulus (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl std::ops::Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.6}{:+.6}i", self.re, self.im)
    }
}

/// The canonical-embedding encoder for ring degree `N`.
///
/// # Examples
///
/// ```
/// use he_ckks::encoding::{Complex, Encoder};
/// let enc = Encoder::new(64);
/// let z: Vec<Complex> = (0..32).map(|i| Complex::new(i as f64 / 7.0, -(i as f64))).collect();
/// let coeffs = enc.encode_to_coeffs(&z, 1u64 as f64 * (1u64 << 30) as f64);
/// let back = enc.decode_from_coeffs(&coeffs.iter().map(|&c| c as f64).collect::<Vec<_>>(), (1u64 << 30) as f64, 32);
/// for (a, b) in z.iter().zip(&back) {
///     assert!((a.re - b.re).abs() < 1e-6 && (a.im - b.im).abs() < 1e-6);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Encoder {
    n: usize,
    /// Slot positions: `t_j = (5^j mod 2N − 1)/2` for `j < N/2`.
    slot_index: Vec<usize>,
    /// Twist factors ζ^k, k < N.
    twist: Vec<Complex>,
}

impl Encoder {
    /// Builds encoder tables for degree `n` (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two ≥ 8.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 8,
            "n must be a power of two ≥ 8"
        );
        let two_n = 2 * n as u64;
        let slots = n / 2;
        let mut slot_index = Vec::with_capacity(slots);
        let mut g: u64 = 1;
        for _ in 0..slots {
            slot_index.push(((g - 1) / 2) as usize);
            g = (g * 5) % two_n;
        }
        let twist = (0..n)
            .map(|k| Complex::from_angle(std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        Self {
            n,
            slot_index,
            twist,
        }
    }

    /// Ring degree.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Maximum slot count (`N/2`).
    #[inline]
    pub fn max_slots(&self) -> usize {
        self.n / 2
    }

    /// Encodes `z` (length dividing `N/2`; shorter vectors are replicated —
    /// CKKS sparse packing) into rounded integer coefficients at scale Δ.
    ///
    /// # Panics
    ///
    /// Panics if `z.len()` is zero or does not divide `N/2`.
    pub fn encode_to_coeffs(&self, z: &[Complex], scale: f64) -> Vec<i64> {
        let slots = self.max_slots();
        assert!(
            !z.is_empty() && slots.is_multiple_of(z.len()),
            "slot count must divide N/2"
        );
        // Sparse packing: replicate the vector to fill all slots.
        let full: Vec<Complex> = (0..slots).map(|j| z[j % z.len()]).collect();

        // Scatter slots and their conjugates into the odd-power value
        // vector V (length N).
        let mut v = vec![Complex::default(); self.n];
        for (j, &t) in self.slot_index.iter().enumerate() {
            v[t] = full[j] * scale;
            v[self.n - 1 - t] = (full[j] * scale).conj();
        }
        // Inverse DFT: g_k = (1/N) Σ_t V_t e^{−2πi tk/N}; untwist by ζ^{−k}.
        let g = dft(&v, true);
        g.iter()
            .enumerate()
            .map(|(k, &gk)| {
                let m = gk * self.twist[k].conj();
                // Imaginary part is numerically ~0 by conjugate symmetry.
                m.re.round() as i64
            })
            .collect()
    }

    /// Decodes centred real coefficients (already divided by nothing) into
    /// the first `slots` slot values at scale Δ.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != N` or `slots` does not divide `N/2`.
    pub fn decode_from_coeffs(&self, coeffs: &[f64], scale: f64, slots: usize) -> Vec<Complex> {
        assert_eq!(coeffs.len(), self.n, "coefficient count must equal N");
        assert!(
            slots >= 1 && self.max_slots().is_multiple_of(slots),
            "slot count must divide N/2"
        );
        let g: Vec<Complex> = coeffs
            .iter()
            .enumerate()
            .map(|(k, &m)| self.twist[k] * m)
            .collect();
        let v = dft(&g, false);
        (0..slots)
            .map(|j| v[self.slot_index[j]] * (1.0 / scale))
            .collect()
    }

    /// Encodes into a [`Plaintext`]-ready residue layout for `basis`.
    ///
    /// This is a convenience used by [`crate::context::CkksContext`]
    /// wrappers; see [`crate::encoding`] module docs for the math.
    pub fn encode_rns(
        &self,
        basis: &he_rns::RnsBasis,
        z: &[Complex],
        scale: f64,
    ) -> he_rns::RnsPoly {
        let coeffs = self.encode_to_coeffs(z, scale);
        he_rns::RnsPoly::from_i64_coeffs(basis, &coeffs)
    }

    /// Decodes an [`he_rns::RnsPoly`] (coefficient form) at scale Δ.
    pub fn decode_rns(&self, poly: &he_rns::RnsPoly, scale: f64, slots: usize) -> Vec<Complex> {
        let coeffs = poly.to_centered_f64();
        self.decode_from_coeffs(&coeffs, scale, slots)
    }
}

/// Iterative radix-2 complex DFT. `inverse` applies the 1/N factor and the
/// conjugated kernel. Input length must be a power of two.
pub fn dft(input: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = input.len();
    assert!(n.is_power_of_two(), "DFT length must be a power of two");
    let mut a = input.to_vec();
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits);
        let j = j as usize;
        if i < j {
            a.swap(i, j);
        }
    }
    let sign = if inverse { -1.0 } else { 1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wl = Complex::from_angle(ang);
        for i in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for j in 0..len / 2 {
                let u = a[i + j];
                let v = a[i + j + len / 2] * w;
                a[i + j] = u + v;
                a[i + j + len / 2] = u - v;
                w = w * wl;
            }
        }
        len <<= 1;
    }
    if inverse {
        let inv_n = 1.0 / n as f64;
        for x in &mut a {
            *x = *x * inv_n;
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn dft_inverts() {
        let v: Vec<Complex> = (0..16)
            .map(|i| Complex::new(i as f64, (i * i) as f64 / 10.0))
            .collect();
        let f = dft(&v, false);
        let back = dft(&f, true);
        for (x, y) in v.iter().zip(&back) {
            assert!(close(*x, *y, 1e-9));
        }
    }

    #[test]
    fn dft_of_delta_is_flat() {
        let mut v = vec![Complex::default(); 8];
        v[0] = Complex::new(1.0, 0.0);
        let f = dft(&v, false);
        for x in f {
            assert!(close(x, Complex::new(1.0, 0.0), 1e-12));
        }
    }

    #[test]
    fn encode_decode_round_trip_full_slots() {
        let enc = Encoder::new(64);
        let z: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64).sin() * 3.0, (i as f64).cos() * 2.0))
            .collect();
        let scale = (1u64 << 34) as f64;
        let coeffs = enc.encode_to_coeffs(&z, scale);
        let back = enc.decode_from_coeffs(
            &coeffs.iter().map(|&c| c as f64).collect::<Vec<_>>(),
            scale,
            32,
        );
        for (a, b) in z.iter().zip(&back) {
            assert!(close(*a, *b, 1e-5), "{a} vs {b}");
        }
    }

    #[test]
    fn sparse_packing_replicates() {
        let enc = Encoder::new(64);
        let z = vec![
            Complex::new(1.0, 0.0),
            Complex::new(2.0, 0.0),
            Complex::new(3.0, 0.0),
            Complex::new(4.0, 0.0),
        ];
        let scale = (1u64 << 34) as f64;
        let coeffs = enc.encode_to_coeffs(&z, scale);
        // Decoding all 32 slots shows the 4-vector repeated 8 times.
        let all = enc.decode_from_coeffs(
            &coeffs.iter().map(|&c| c as f64).collect::<Vec<_>>(),
            scale,
            32,
        );
        for (j, v) in all.iter().enumerate() {
            assert!(close(*v, z[j % 4], 1e-5), "slot {j}");
        }
    }

    #[test]
    fn encoding_produces_real_coefficients() {
        // The rounding path drops imaginary parts; verify they were
        // negligible by checking a round trip loses < 1/Δ accuracy.
        let enc = Encoder::new(32);
        let z: Vec<Complex> = (0..16)
            .map(|i| Complex::new(0.1 * i as f64, -0.05 * i as f64))
            .collect();
        let scale = (1u64 << 40) as f64;
        let coeffs = enc.encode_to_coeffs(&z, scale);
        let back = enc.decode_from_coeffs(
            &coeffs.iter().map(|&c| c as f64).collect::<Vec<_>>(),
            scale,
            16,
        );
        for (a, b) in z.iter().zip(&back) {
            assert!(close(*a, *b, 1e-9));
        }
    }

    #[test]
    fn slot_indices_are_a_permutation_half() {
        let enc = Encoder::new(128);
        let mut idx = enc.slot_index.clone();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), 64);
        // Together with their mirrors they tile 0..N−1 exactly once.
        let mut all: Vec<usize> = enc
            .slot_index
            .iter()
            .flat_map(|&t| [t, 128 - 1 - t])
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..128).collect::<Vec<_>>());
    }
}
