//! Randomness for key generation and encryption: uniform ring elements,
//! ternary secrets, and discrete Gaussian errors.

use he_rns::{Form, RnsBasis, RnsPoly};
use rand::Rng;

/// Samples a polynomial with residues uniform per prime (the public `a`
/// component of keys).
pub fn uniform_poly<R: Rng + ?Sized>(basis: &RnsBasis, form: Form, rng: &mut R) -> RnsPoly {
    let residues = basis
        .primes()
        .iter()
        .map(|&q| (0..basis.n()).map(|_| rng.gen_range(0..q)).collect())
        .collect();
    RnsPoly::from_residues(basis, residues, form)
}

/// Samples a uniform ternary polynomial with coefficients in `{−1, 0, 1}`
/// (the secret-key distribution).
pub fn ternary_coeffs<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<i64> {
    (0..n).map(|_| rng.gen_range(-1i64..=1)).collect()
}

/// Samples a sparse ternary polynomial with exactly `hamming` non-zero
/// coefficients — the bootstrap-friendly secret distribution whose `I`
/// bound the paper's packed-bootstrapping workload depends on.
///
/// # Panics
///
/// Panics if `hamming > n`.
pub fn sparse_ternary_coeffs<R: Rng + ?Sized>(n: usize, hamming: usize, rng: &mut R) -> Vec<i64> {
    assert!(hamming <= n, "hamming weight cannot exceed degree");
    let mut coeffs = vec![0i64; n];
    let mut placed = 0;
    while placed < hamming {
        let idx = rng.gen_range(0..n);
        if coeffs[idx] == 0 {
            coeffs[idx] = if rng.gen::<bool>() { 1 } else { -1 };
            placed += 1;
        }
    }
    coeffs
}

/// Samples discrete-Gaussian-ish error coefficients (rounded continuous
/// Gaussian via Box–Muller, σ = `std`), clamped at 6σ.
pub fn gaussian_coeffs<R: Rng + ?Sized>(n: usize, std: f64, rng: &mut R) -> Vec<i64> {
    let clamp = (6.0 * std).ceil();
    (0..n)
        .map(|_| {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (g * std).round().clamp(-clamp, clamp) as i64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn ternary_values_in_range() {
        let c = ternary_coeffs(1000, &mut rng());
        assert!(c.iter().all(|&v| (-1..=1).contains(&v)));
        // All three values should occur over 1000 draws.
        for want in [-1i64, 0, 1] {
            assert!(c.contains(&want));
        }
    }

    #[test]
    fn sparse_ternary_has_exact_weight() {
        let c = sparse_ternary_coeffs(256, 64, &mut rng());
        assert_eq!(c.iter().filter(|&&v| v != 0).count(), 64);
    }

    #[test]
    fn gaussian_is_centred_and_bounded() {
        let std = 3.2;
        let c = gaussian_coeffs(10_000, std, &mut rng());
        let mean: f64 = c.iter().map(|&v| v as f64).sum::<f64>() / c.len() as f64;
        assert!(mean.abs() < 0.5, "mean {mean} too far from 0");
        assert!(c.iter().all(|&v| v.abs() <= (6.0 * std).ceil() as i64));
        let var: f64 = c.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / c.len() as f64;
        assert!((var.sqrt() - std).abs() < 0.5, "σ̂ = {}", var.sqrt());
    }

    #[test]
    fn uniform_poly_is_reduced() {
        let b = RnsBasis::generate(32, 28, 2);
        let p = uniform_poly(&b, Form::Coeff, &mut rng());
        for (j, &q) in b.primes().iter().enumerate() {
            assert!(p.residues(j).iter().all(|&v| v < q));
        }
    }
}
