//! A complete RNS-CKKS implementation — the FHE scheme Poseidon accelerates.
//!
//! The crate provides every *basic operation* the paper decomposes into
//! operators (§II-A): homomorphic addition, plaintext and ciphertext
//! multiplication with relinearisation, rescale, keyswitch (Modup /
//! RNSconv / Moddown), rotation via Galois automorphisms, conjugation, and
//! packed bootstrapping.
//!
//! Quick tour:
//!
//! * [`params::CkksParams`] / [`context::CkksContext`] — parameter presets
//!   and the precomputed context (bases, encoder tables).
//! * [`encoding::Encoder`] — canonical-embedding encoder mapping complex
//!   slot vectors to ring plaintexts and back.
//! * [`keys`] — secret/public/relinearisation/Galois key generation.
//! * [`cipher::Ciphertext`] and [`eval::Evaluator`] — the homomorphic ops.
//! * [`polyeval`] — polynomial evaluation on ciphertexts (the EvalMod
//!   engine of bootstrapping).
//! * [`bootstrap`] — packed bootstrapping: ModRaise → CoeffToSlot → EvalMod
//!   → SlotToCoeff (the paper's most complex benchmark workload).
//!
//! # Examples
//!
//! ```
//! use he_ckks::prelude::*;
//! use he_ckks::encoding::Complex;
//!
//! let ctx = CkksContext::new(CkksParams::toy());
//! let mut rng = rand::thread_rng();
//! let keys = KeySet::generate(&ctx, &mut rng);
//! let eval = Evaluator::new(&ctx);
//!
//! let z: Vec<Complex> = [1.5, -2.0, 3.25, 0.0].iter().map(|&r| Complex::new(r, 0.0)).collect();
//! let pt = Plaintext::new(
//!     ctx.encoder().encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
//!     ctx.default_scale(),
//! );
//! let ct = keys.public().encrypt(&pt, &mut rng);
//! let ct2 = eval.add(&ct, &ct);
//! let dec = keys.secret().decrypt(&ct2);
//! let out = ctx.encoder().decode_rns(dec.poly(), dec.scale(), z.len());
//! assert!((out[0].re - 3.0).abs() < 1e-3);
//! ```

pub mod apps;
pub mod bootstrap;
pub mod cipher;
pub mod context;
pub mod encoding;
pub mod error;
pub mod eval;
pub mod integrity;
pub mod keys;
pub mod linear;
pub mod noise;
pub mod params;
pub mod polyeval;
pub mod sampling;

/// Convenient re-exports for typical usage.
pub mod prelude {
    pub use crate::cipher::{Ciphertext, Plaintext};
    pub use crate::context::CkksContext;
    pub use crate::encoding::Encoder;
    pub use crate::error::EvalError;
    pub use crate::eval::Evaluator;
    pub use crate::keys::{KeySet, PublicKey, SecretKey};
    pub use crate::params::CkksParams;
}
