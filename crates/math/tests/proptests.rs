//! Property-based tests pinning the fast modular-arithmetic paths to the
//! `u128` reference implementation and the bignum to a `u128` oracle.

use he_math::modops::{add_mod, inv_mod, mul_mod, pow_mod, sub_mod};
use he_math::prime::{is_prime, ntt_prime};
use he_math::{BarrettReducer, BigUint, ShoupMul};
use proptest::prelude::*;

fn arb_modulus() -> impl Strategy<Value = u64> {
    (2u64..(1u64 << 62)).prop_filter("nontrivial", |q| *q >= 2)
}

proptest! {
    #[test]
    fn barrett_mul_matches_reference(q in arb_modulus(), a in any::<u64>(), b in any::<u64>()) {
        let (a, b) = (a % q, b % q);
        let r = BarrettReducer::new(q);
        prop_assert_eq!(r.mul(a, b), mul_mod(a, b, q));
    }

    #[test]
    fn barrett_reduce_matches_reference(q in arb_modulus(), x in any::<u128>()) {
        let r = BarrettReducer::new(q);
        let x = x % (q as u128 * q as u128);
        prop_assert_eq!(r.reduce(x), (x % q as u128) as u64);
    }

    #[test]
    fn montgomery_matches_reference(q in (1u64..(1u64 << 62)).prop_map(|v| (v | 1).max(3)), a in any::<u64>(), b in any::<u64>()) {
        let (a, b) = (a % q, b % q);
        let m = he_math::montgomery::Montgomery::new(q);
        prop_assert_eq!(m.mul(a, b), mul_mod(a, b, q));
    }

    #[test]
    fn shoup_matches_reference(q in 2u64..(1u64 << 62), w in any::<u64>(), a in any::<u64>()) {
        let (w, a) = (w % q, a % q);
        let m = ShoupMul::new(w, q);
        prop_assert_eq!(m.mul(a), mul_mod(a, w, q));
    }

    #[test]
    fn add_sub_are_inverse(q in arb_modulus(), a in any::<u64>(), b in any::<u64>()) {
        let (a, b) = (a % q, b % q);
        prop_assert_eq!(sub_mod(add_mod(a, b, q), b, q), a);
    }

    #[test]
    fn pow_respects_exponent_addition(q in arb_modulus(), a in any::<u64>(), e1 in 0u64..1000, e2 in 0u64..1000) {
        let a = a % q;
        let lhs = pow_mod(a, e1 + e2, q);
        let rhs = mul_mod(pow_mod(a, e1, q), pow_mod(a, e2, q), q);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn inv_mod_is_inverse_when_it_exists(m in 2u64..(1u64 << 40), a in 1u64..(1u64 << 40)) {
        let a = a % m;
        if let Some(inv) = inv_mod(a, m) {
            prop_assert_eq!(mul_mod(a, inv, m), 1);
        }
    }

    #[test]
    fn bignum_mul_matches_u128(x in any::<u64>(), y in any::<u64>()) {
        let p = &BigUint::from(x) * &BigUint::from(y);
        prop_assert_eq!(p, BigUint::from(x as u128 * y as u128));
    }

    #[test]
    fn bignum_add_then_sub_round_trips(x in any::<u128>(), y in any::<u128>()) {
        let a = BigUint::from(x);
        let b = BigUint::from(y);
        let sum = a.clone() + &b;
        prop_assert_eq!(sum.clone() - &b, a);
        prop_assert_eq!(sum - &BigUint::from(x), b);
    }

    #[test]
    fn bignum_div_rem_consistent(x in any::<u128>(), d in 1u64..u64::MAX) {
        let mut q = BigUint::from(x);
        let r = q.div_u64_assign(d);
        // x = q*d + r
        let mut back = q;
        back.mul_u64_assign(d);
        back.add_u64_assign(r);
        prop_assert_eq!(back, BigUint::from(x));
    }

    #[test]
    fn ntt_primes_exist_at_useful_sizes(bits in 25u32..45, log2n in 10u32..15) {
        let p = ntt_prime(bits, 1u64 << (log2n + 1));
        if let Some(p) = p {
            prop_assert!(is_prime(p));
            prop_assert_eq!(p % (1u64 << (log2n + 1)), 1);
        }
    }
}
