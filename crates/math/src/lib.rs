//! Modular-arithmetic substrate for the Poseidon FHE stack.
//!
//! This crate provides the scalar building blocks every layer above it
//! (NTT, RNS, CKKS, and the accelerator operator models) relies on:
//!
//! * [`modops`] — plain modular add/sub/mul/pow/inverse on `u64` residues,
//!   using `u128` intermediates.
//! * [`barrett`] — precomputed Barrett reducers, the scalar equivalent of the
//!   paper's *Shared Barrett Reduction (SBT)* operator core.
//! * [`shoup`] — Shoup multiplication for hot loops with a fixed multiplicand
//!   (twiddle factors inside NTT butterflies).
//! * [`prime`] — deterministic Miller–Rabin primality testing, NTT-friendly
//!   prime generation (`p ≡ 1 mod 2N`), and primitive-root search.
//! * [`bigint`] — a deliberately small arbitrary-precision unsigned integer,
//!   sufficient for CRT reconstruction and exactness oracles in tests.
//!
//! # Examples
//!
//! ```
//! use he_math::barrett::BarrettReducer;
//! use he_math::prime::ntt_prime;
//!
//! // A 30-bit prime usable for a negacyclic NTT of length 2^12.
//! let q = ntt_prime(30, 1 << 13).expect("prime exists");
//! let r = BarrettReducer::new(q);
//! assert_eq!(r.mul(q - 1, q - 1), 1); // (-1)·(-1) = 1 (mod q)
//! ```

pub mod barrett;
pub mod bigint;
pub mod modops;
pub mod montgomery;
pub mod prime;
pub mod shoup;

pub use barrett::BarrettReducer;
pub use bigint::BigUint;
pub use shoup::ShoupMul;
