//! Prime generation for NTT-friendly modulus chains.
//!
//! RNS-CKKS needs chains of primes `q ≡ 1 (mod 2N)` so that the ring
//! `Z_q[X]/(X^N + 1)` has a 2N-th primitive root of unity (enabling the
//! negacyclic NTT). This module provides a deterministic Miller–Rabin test
//! for `u64`, a search for such primes at a given bit size, and
//! primitive-root discovery.

use crate::modops::{mul_mod, pow_mod};

/// Deterministically tests whether `n` is prime (valid for all `u64`).
///
/// Uses the 12-witness set that is known to be sufficient below 3.3·10^24.
///
/// # Examples
///
/// ```
/// assert!(he_math::prime::is_prime(786_433));
/// assert!(!he_math::prime::is_prime(786_435));
/// ```
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut s = 0u32;
    while d & 1 == 0 {
        d >>= 1;
        s += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Finds the largest prime `p < 2^bits` with `p ≡ 1 (mod modulo)`.
///
/// Returns `None` if no such prime exists in `(modulo, 2^bits)`.
///
/// # Examples
///
/// ```
/// let p = he_math::prime::ntt_prime(30, 1 << 13).unwrap();
/// assert!(he_math::prime::is_prime(p));
/// assert_eq!(p % (1 << 13), 1);
/// assert!(p < (1 << 30));
/// ```
pub fn ntt_prime(bits: u32, modulo: u64) -> Option<u64> {
    assert!((2..=62).contains(&bits), "bit size out of range");
    let top = 1u64 << bits;
    // Largest candidate of form k·modulo + 1 below 2^bits.
    let mut cand = ((top - 2) / modulo) * modulo + 1;
    while cand > modulo {
        if is_prime(cand) {
            return Some(cand);
        }
        cand -= modulo;
    }
    None
}

/// Generates a descending chain of `count` distinct primes, each `≡ 1 (mod
/// modulo)` and just below `2^bits`.
///
/// This is how the CKKS modulus chain and the keyswitching special basis are
/// provisioned.
///
/// # Panics
///
/// Panics if fewer than `count` such primes exist below `2^bits`.
///
/// # Examples
///
/// ```
/// let chain = he_math::prime::ntt_prime_chain(30, 1 << 13, 4);
/// assert_eq!(chain.len(), 4);
/// for w in chain.windows(2) { assert!(w[0] > w[1]); }
/// ```
pub fn ntt_prime_chain(bits: u32, modulo: u64, count: usize) -> Vec<u64> {
    let mut primes = Vec::with_capacity(count);
    let top = 1u64 << bits;
    let mut cand = ((top - 2) / modulo) * modulo + 1;
    while primes.len() < count && cand > modulo {
        if is_prime(cand) {
            primes.push(cand);
        }
        cand -= modulo;
    }
    assert!(
        primes.len() == count,
        "only {} primes of {} bits with p ≡ 1 mod {} exist",
        primes.len(),
        bits,
        modulo
    );
    primes
}

/// Finds the smallest primitive root modulo prime `p`.
///
/// # Panics
///
/// Panics if `p` is not prime.
///
/// # Examples
///
/// ```
/// assert_eq!(he_math::prime::primitive_root(7), 3);
/// ```
pub fn primitive_root(p: u64) -> u64 {
    assert!(is_prime(p), "primitive_root requires a prime modulus");
    if p == 2 {
        return 1;
    }
    let phi = p - 1;
    let factors = distinct_prime_factors(phi);
    'cand: for g in 2..p {
        for &f in &factors {
            if pow_mod(g, phi / f, p) == 1 {
                continue 'cand;
            }
        }
        return g;
    }
    unreachable!("every prime has a primitive root")
}

/// Returns a primitive `order`-th root of unity modulo prime `p`.
///
/// # Panics
///
/// Panics if `order` does not divide `p - 1`.
///
/// # Examples
///
/// ```
/// use he_math::modops::pow_mod;
/// let p = 786_433u64; // 3·2^18 + 1
/// let w = he_math::prime::root_of_unity(1 << 8, p);
/// assert_eq!(pow_mod(w, 1 << 8, p), 1);
/// assert_ne!(pow_mod(w, 1 << 7, p), 1);
/// ```
pub fn root_of_unity(order: u64, p: u64) -> u64 {
    assert_eq!((p - 1) % order, 0, "order must divide p - 1");
    let g = primitive_root(p);
    pow_mod(g, (p - 1) / order, p)
}

/// Distinct prime factors of `n` by trial division (adequate for `p - 1` of
/// our ≤ 62-bit NTT primes, whose cofactor after stripping the power of two
/// is small).
fn distinct_prime_factors(mut n: u64) -> Vec<u64> {
    let mut factors = Vec::new();
    let mut d = 2u64;
    while d.saturating_mul(d) <= n {
        if n.is_multiple_of(d) {
            factors.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += if d == 2 { 1 } else { 2 };
    }
    if n > 1 {
        factors.push(n);
    }
    factors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_classified() {
        let primes = [2u64, 3, 5, 7, 11, 13, 65537, 786_433];
        let composites = [0u64, 1, 4, 9, 561, 1_000_000, 65537 * 3];
        for p in primes {
            assert!(is_prime(p), "{p} is prime");
        }
        for c in composites {
            assert!(!is_prime(c), "{c} is composite");
        }
    }

    #[test]
    fn strong_pseudoprimes_rejected() {
        // Known strong pseudoprimes to small bases.
        for c in [3_215_031_751u64, 3_474_749_660_383, 341_550_071_728_321] {
            assert!(!is_prime(c), "{c} must be rejected");
        }
    }

    #[test]
    fn ntt_prime_has_required_form() {
        for bits in [20u32, 28, 30, 32, 45, 60] {
            for log2n in [10u64, 13, 16] {
                let m = 1u64 << (log2n + 1);
                if m >= (1 << bits) {
                    continue;
                }
                let p = ntt_prime(bits, m).unwrap();
                assert!(is_prime(p));
                assert_eq!(p % m, 1);
                assert!(p < (1u64 << bits));
            }
        }
    }

    #[test]
    fn chain_is_distinct_and_descending() {
        let chain = ntt_prime_chain(32, 1 << 17, 8);
        for w in chain.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn primitive_roots_generate_full_group() {
        for p in [5u64, 7, 11, 65537, 786_433] {
            let g = primitive_root(p);
            // g^k != 1 for all proper divisors of p-1 is already checked by
            // construction; spot-check the order via a few powers.
            assert_eq!(pow_mod(g, p - 1, p), 1);
            for &f in &distinct_prime_factors(p - 1) {
                assert_ne!(pow_mod(g, (p - 1) / f, p), 1);
            }
        }
    }

    #[test]
    fn root_of_unity_has_exact_order() {
        let p = ntt_prime(30, 1 << 14).unwrap();
        let w = root_of_unity(1 << 14, p);
        assert_eq!(pow_mod(w, 1 << 14, p), 1);
        assert_ne!(pow_mod(w, 1 << 13, p), 1);
    }
}
