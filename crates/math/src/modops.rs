//! Plain modular arithmetic on `u64` residues.
//!
//! All functions assume their residue inputs are already reduced
//! (`< modulus`) unless documented otherwise, mirroring the invariant the
//! paper's MA core relies on ("each input polynomial has already performed
//! modular reduction", §IV-B). Violations are caught by `debug_assert!`.

/// Adds two residues modulo `q` using the compare-and-correct scheme of the
/// paper's MA core (Eq. 5): compute `a + b` and subtract `q` once if needed.
///
/// # Examples
///
/// ```
/// assert_eq!(he_math::modops::add_mod(5, 6, 7), 4);
/// ```
#[inline]
pub fn add_mod(a: u64, b: u64, q: u64) -> u64 {
    debug_assert!(a < q && b < q, "inputs must be reduced");
    let s = a + b;
    if s >= q {
        s - q
    } else {
        s
    }
}

/// Subtracts `b` from `a` modulo `q`.
///
/// # Examples
///
/// ```
/// assert_eq!(he_math::modops::sub_mod(3, 5, 7), 5);
/// ```
#[inline]
pub fn sub_mod(a: u64, b: u64, q: u64) -> u64 {
    debug_assert!(a < q && b < q, "inputs must be reduced");
    if a >= b {
        a - b
    } else {
        a + q - b
    }
}

/// Negates a residue modulo `q`.
///
/// # Examples
///
/// ```
/// assert_eq!(he_math::modops::neg_mod(0, 7), 0);
/// assert_eq!(he_math::modops::neg_mod(2, 7), 5);
/// ```
#[inline]
pub fn neg_mod(a: u64, q: u64) -> u64 {
    debug_assert!(a < q, "input must be reduced");
    if a == 0 {
        0
    } else {
        q - a
    }
}

/// Conditionally subtracts `m` once: maps `[0, 2m)` to `[0, m)`.
///
/// The correction step of every lazy-reduction kernel: Harvey butterflies
/// keep values in a redundant range (`[0, 2q)` or `[0, 4q)`) and call this
/// at entry or at stage-group boundaries instead of running a full modular
/// reduction per stage. Branch-predictable and compiled to a `cmov`, it is
/// the software analogue of the single compare-and-correct stage of the
/// paper's MA core.
///
/// Unlike the reduced-input operations above, `a` may be any value below
/// `2m`; larger inputs are folded by only one `m`, so chains of `csub`
/// calls (`csub(csub(v, 2q), q)`) handle wider redundant ranges.
///
/// # Examples
///
/// ```
/// assert_eq!(he_math::modops::csub(9, 7), 2);
/// assert_eq!(he_math::modops::csub(5, 7), 5);
/// ```
#[inline(always)]
pub fn csub(a: u64, m: u64) -> u64 {
    if a >= m {
        a - m
    } else {
        a
    }
}

/// Multiplies two residues modulo `q` through a `u128` intermediate.
///
/// This is the reference implementation that the Barrett and Shoup fast
/// paths are property-tested against.
///
/// # Examples
///
/// ```
/// assert_eq!(he_math::modops::mul_mod(6, 6, 7), 1);
/// ```
#[inline]
pub fn mul_mod(a: u64, b: u64, q: u64) -> u64 {
    debug_assert!(q > 0);
    ((a as u128 * b as u128) % q as u128) as u64
}

/// Raises `base` to `exp` modulo `q` by square-and-multiply.
///
/// # Examples
///
/// ```
/// assert_eq!(he_math::modops::pow_mod(2, 10, 1_000_000_007), 1024);
/// ```
pub fn pow_mod(mut base: u64, mut exp: u64, q: u64) -> u64 {
    debug_assert!(q > 0);
    base %= q;
    let mut acc: u64 = 1 % q;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, q);
        }
        base = mul_mod(base, base, q);
        exp >>= 1;
    }
    acc
}

/// Computes the modular inverse of `a` modulo `q` for prime `q` via Fermat's
/// little theorem. Returns `None` when `a ≡ 0 (mod q)`.
///
/// # Examples
///
/// ```
/// assert_eq!(he_math::modops::inv_mod_prime(3, 7), Some(5));
/// assert_eq!(he_math::modops::inv_mod_prime(0, 7), None);
/// ```
pub fn inv_mod_prime(a: u64, q: u64) -> Option<u64> {
    if a.is_multiple_of(q) {
        return None;
    }
    Some(pow_mod(a, q - 2, q))
}

/// Computes the modular inverse of `a` modulo arbitrary `m` (not necessarily
/// prime) via the extended Euclidean algorithm. Returns `None` when
/// `gcd(a, m) ≠ 1`.
///
/// # Examples
///
/// ```
/// assert_eq!(he_math::modops::inv_mod(3, 10), Some(7));
/// assert_eq!(he_math::modops::inv_mod(4, 10), None);
/// ```
pub fn inv_mod(a: u64, m: u64) -> Option<u64> {
    let (mut old_r, mut r) = (a as i128, m as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let quot = old_r / r;
        (old_r, r) = (r, old_r - quot * r);
        (old_s, s) = (s, old_s - quot * s);
    }
    if old_r != 1 {
        return None;
    }
    Some(old_s.rem_euclid(m as i128) as u64)
}

/// Maps a residue in `[0, q)` to its centred representative in
/// `(-q/2, q/2]`, returned as `i64`.
///
/// Used by the CKKS decoder and by noise-budget estimation.
///
/// # Examples
///
/// ```
/// assert_eq!(he_math::modops::center(6, 7), -1);
/// assert_eq!(he_math::modops::center(3, 7), 3);
/// ```
#[inline]
pub fn center(a: u64, q: u64) -> i64 {
    debug_assert!(a < q);
    if a > q / 2 {
        -((q - a) as i64)
    } else {
        a as i64
    }
}

/// Reduces a signed integer into `[0, q)`.
///
/// # Examples
///
/// ```
/// assert_eq!(he_math::modops::reduce_i64(-1, 7), 6);
/// assert_eq!(he_math::modops::reduce_i64(8, 7), 1);
/// ```
#[inline]
pub fn reduce_i64(a: i64, q: u64) -> u64 {
    (a as i128).rem_euclid(q as i128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_wraps() {
        assert_eq!(add_mod(6, 6, 7), 5);
        assert_eq!(add_mod(0, 0, 7), 0);
        assert_eq!(add_mod(3, 3, 7), 6);
    }

    #[test]
    fn sub_wraps() {
        assert_eq!(sub_mod(0, 1, 7), 6);
        assert_eq!(sub_mod(6, 6, 7), 0);
    }

    #[test]
    fn neg_is_additive_inverse() {
        for a in 0..13u64 {
            assert_eq!(add_mod(a, neg_mod(a, 13), 13), 0);
        }
    }

    #[test]
    fn pow_edge_cases() {
        assert_eq!(pow_mod(0, 0, 5), 1);
        assert_eq!(pow_mod(5, 0, 5), 1);
        assert_eq!(pow_mod(7, 1, 11), 7);
        // Goldilocks prime: 2^64 ≡ 2^32 - 1 (mod 2^64 - 2^32 + 1).
        let goldilocks = 0xFFFF_FFFF_0000_0001u64;
        assert_eq!(pow_mod(2, 64, goldilocks), (1u64 << 32) - 1);
    }

    #[test]
    fn fermat_inverse_round_trips() {
        let q = 1_000_000_007u64;
        for a in [1u64, 2, 999, q - 1] {
            let inv = inv_mod_prime(a, q).unwrap();
            assert_eq!(mul_mod(a, inv, q), 1);
        }
    }

    #[test]
    fn extended_euclid_matches_fermat_for_primes() {
        let q = 65537u64;
        for a in 1..200u64 {
            assert_eq!(inv_mod(a, q), inv_mod_prime(a, q));
        }
    }

    #[test]
    fn center_round_trips() {
        let q = 97u64;
        for a in 0..q {
            assert_eq!(reduce_i64(center(a, q), q), a);
        }
    }
}
