//! Montgomery multiplication: the classic alternative to Barrett for
//! repeated modular products under a fixed odd modulus.
//!
//! Included as a substrate alternative so the reproduction can compare the
//! two reduction datapaths the accelerator literature debates (the paper
//! chooses Barrett for its shared SBT core; Montgomery avoids the
//! double-width quotient multiply at the cost of domain conversions).

use crate::modops;

/// Montgomery context for an odd modulus `q < 2^63`, with `R = 2^64`.
///
/// Values are converted into the Montgomery domain (`x·R mod q`) once,
/// multiplied cheaply many times, and converted back once.
///
/// # Examples
///
/// ```
/// use he_math::montgomery::Montgomery;
/// let m = Montgomery::new(0x7fff_ffff); // 2^31 − 1
/// let a = m.to_mont(12345);
/// let b = m.to_mont(67890);
/// let p = m.mont_mul(a, b);
/// assert_eq!(m.from_mont(p), he_math::modops::mul_mod(12345, 67890, 0x7fff_ffff));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Montgomery {
    q: u64,
    /// `−q⁻¹ mod 2^64`.
    q_neg_inv: u64,
    /// `R² mod q` for the into-domain conversion.
    r2: u64,
}

impl Montgomery {
    /// Creates a context for odd modulus `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is even, `< 3`, or `≥ 2^63`.
    pub fn new(q: u64) -> Self {
        assert!(q % 2 == 1, "Montgomery requires an odd modulus");
        assert!((3..(1u64 << 63)).contains(&q), "modulus out of range");
        // Newton iteration for q⁻¹ mod 2^64 (5 steps double the bits).
        let mut inv: u64 = q; // q⁻¹ ≡ q (mod 2^3) for odd q
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(q.wrapping_mul(inv)));
        }
        debug_assert_eq!(q.wrapping_mul(inv), 1);
        // R mod q, then R² mod q via repeated doubling-free square.
        let r_mod_q = (u64::MAX % q) + 1; // 2^64 mod q (q < 2^63 so no wrap to 0 issue)
        let r2 = modops::mul_mod(r_mod_q % q, r_mod_q % q, q);
        Self {
            q,
            q_neg_inv: inv.wrapping_neg(),
            r2,
        }
    }

    /// The modulus.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// Montgomery reduction of a 128-bit product: returns `t·R⁻¹ mod q`.
    ///
    /// Requires `t < q·2^64` (any product of two reduced values qualifies),
    /// which guarantees the 128-bit accumulation below cannot overflow.
    #[inline]
    pub fn reduce(&self, t: u128) -> u64 {
        debug_assert!(t < self.q as u128 * (1u128 << 64), "input too large");
        let m = (t as u64).wrapping_mul(self.q_neg_inv);
        let mq = m as u128 * self.q as u128;
        // t + m·q ≡ 0 (mod 2^64) by construction and < q·2^64 + q·2^64
        // ≤ 2^63·2^65 = 2^128 − ε, so the sum fits u128.
        let (sum, carry) = t.overflowing_add(mq);
        debug_assert!(!carry, "reduction accumulator overflow");
        let mut r = (sum >> 64) as u64;
        if r >= self.q {
            r -= self.q;
        }
        r
    }

    /// Converts into the Montgomery domain.
    #[inline]
    pub fn to_mont(&self, x: u64) -> u64 {
        debug_assert!(x < self.q);
        self.reduce(x as u128 * self.r2 as u128)
    }

    /// Converts out of the Montgomery domain.
    #[inline]
    pub fn from_mont(&self, x: u64) -> u64 {
        self.reduce(x as u128)
    }

    /// Multiplies two Montgomery-domain values (result stays in domain).
    #[inline]
    pub fn mont_mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        self.reduce(a as u128 * b as u128)
    }

    /// Plain-domain modular multiplication through Montgomery (two
    /// conversions; only worthwhile for long product chains).
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        self.from_mont(self.mont_mul(self.to_mont(a), self.to_mont(b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modops::mul_mod;

    #[test]
    fn matches_reference_small_exhaustive() {
        let q = 97u64;
        let m = Montgomery::new(q);
        for a in 0..q {
            for b in 0..q {
                assert_eq!(m.mul(a, b), mul_mod(a, b, q), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn matches_reference_large() {
        let q = (1u64 << 61) - 1;
        let m = Montgomery::new(q);
        let samples = [0u64, 1, 2, q / 3, q / 2, q - 2, q - 1];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(m.mul(a, b), mul_mod(a, b, q));
            }
        }
    }

    #[test]
    fn domain_round_trip() {
        let q = 786_433u64;
        let m = Montgomery::new(q);
        for x in [0u64, 1, 2, q / 2, q - 1] {
            assert_eq!(m.from_mont(m.to_mont(x)), x);
        }
    }

    #[test]
    fn chained_products_stay_in_domain() {
        // x^5 computed with one conversion each way.
        let q = 1_000_000_007u64;
        let m = Montgomery::new(q);
        let x = 123_456_789u64;
        let xm = m.to_mont(x);
        let mut acc = xm;
        for _ in 0..4 {
            acc = m.mont_mul(acc, xm);
        }
        assert_eq!(m.from_mont(acc), crate::modops::pow_mod(x, 5, q));
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn rejects_even_modulus() {
        let _ = Montgomery::new(100);
    }
}
