//! Shoup multiplication: fast modular multiplication by a *fixed* operand.
//!
//! Inside an NTT butterfly the twiddle factor `w` is known ahead of time, so
//! the quotient constant `w' = floor(w · 2^64 / q)` can be precomputed. The
//! reduction then costs one high multiply, one low multiply, and one
//! conditional subtraction — the structure Poseidon hard-codes into its NTT
//! core RTL. We use it both for speed in the software library and to count
//! "one modular reduction" per fused TAM faithfully in the operator models.

/// Multiplier for a fixed operand `w` modulo `q < 2^63`.
///
/// # Examples
///
/// ```
/// use he_math::ShoupMul;
/// let m = ShoupMul::new(3, 17);
/// assert_eq!(m.mul(10), 13); // 30 mod 17
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShoupMul {
    w: u64,
    /// `floor(w · 2^64 / q)`.
    w_shoup: u64,
    q: u64,
}

impl ShoupMul {
    /// Precomputes the Shoup constant for operand `w` under modulus `q`.
    ///
    /// # Panics
    ///
    /// Panics if `w >= q` or `q >= 2^63`.
    #[inline]
    pub fn new(w: u64, q: u64) -> Self {
        assert!(q < (1u64 << 63), "modulus must be below 2^63");
        assert!(w < q, "operand must be reduced");
        let w_shoup = (((w as u128) << 64) / q as u128) as u64;
        Self { w, w_shoup, q }
    }

    /// The fixed operand `w`.
    #[inline]
    pub fn operand(&self) -> u64 {
        self.w
    }

    /// The precomputed quotient constant `floor(w · 2^64 / q)`.
    #[inline]
    pub fn quotient(&self) -> u64 {
        self.w_shoup
    }

    /// Computes `a · w mod q` for reduced `a`.
    ///
    /// The result of the core step lies in `[0, 2q)`; one conditional
    /// subtraction completes the reduction.
    #[inline]
    pub fn mul(&self, a: u64) -> u64 {
        debug_assert!(a < self.q);
        let quot = ((self.w_shoup as u128 * a as u128) >> 64) as u64;
        let r = (self.w.wrapping_mul(a)).wrapping_sub(quot.wrapping_mul(self.q));
        if r >= self.q {
            r - self.q
        } else {
            r
        }
    }

    /// Computes `a · w mod q` leaving the result in `[0, 2q)` (lazy form),
    /// for pipelines that defer the final correction — mirroring how the
    /// hardware SBT core is shared across butterfly stages.
    #[inline]
    pub fn mul_lazy(&self, a: u64) -> u64 {
        debug_assert!(a < self.q);
        let quot = ((self.w_shoup as u128 * a as u128) >> 64) as u64;
        (self.w.wrapping_mul(a)).wrapping_sub(quot.wrapping_mul(self.q))
    }

    /// Computes `a · w mod q` in `[0, 2q)` for **any** `a`, reduced or not.
    ///
    /// This is the multiply of Harvey's lazy butterfly: with
    /// `w' = floor(w·2^64/q)` the quotient estimate
    /// `floor(w'·a / 2^64)` undershoots `floor(w·a/q)` by at most one for
    /// every `a < 2^64`, so the remainder lands in `[0, 2q)` with no
    /// correction — the caller keeps values in redundant representation
    /// and corrects once per stage group (or never, until the final
    /// reduction pass). Requires `q < 2^63` (guaranteed by [`new`]).
    ///
    /// [`new`]: Self::new
    #[inline(always)]
    pub fn mul_lazy_unreduced(&self, a: u64) -> u64 {
        let quot = ((self.w_shoup as u128 * a as u128) >> 64) as u64;
        (self.w.wrapping_mul(a)).wrapping_sub(quot.wrapping_mul(self.q))
    }
}

/// Precomputes the Shoup quotient `floor(w · 2^64 / q)` for a reduced
/// operand `w < q` — the lane-vector form of [`ShoupMul::new`] used when a
/// whole residue vector is a fixed multiplicand (plaintext lanes, twiddle
/// lanes) and storing per-element `ShoupMul` structs would triple memory.
///
/// # Panics
///
/// Panics (debug) if `w >= q`.
#[inline]
pub fn shoup_quotient(w: u64, q: u64) -> u64 {
    debug_assert!(w < q, "operand must be reduced");
    (((w as u128) << 64) / q as u128) as u64
}

/// Computes `a · w mod q` (fully reduced) from a raw `(w, quotient)` lane
/// pair as produced by [`shoup_quotient`]. Valid for any `a < 2^64` and
/// `q < 2^63`.
///
/// # Examples
///
/// ```
/// use he_math::shoup::{mul_shoup_lane, shoup_quotient};
/// let (w, q) = (3u64, 17u64);
/// let wq = shoup_quotient(w, q);
/// assert_eq!(mul_shoup_lane(10, w, wq, q), 13);
/// ```
#[inline(always)]
pub fn mul_shoup_lane(a: u64, w: u64, w_quot: u64, q: u64) -> u64 {
    let quot = ((w_quot as u128 * a as u128) >> 64) as u64;
    let r = (w.wrapping_mul(a)).wrapping_sub(quot.wrapping_mul(q));
    crate::modops::csub(r, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modops::mul_mod;

    #[test]
    fn matches_reference_exhaustively_small() {
        let q = 97u64;
        for w in 0..q {
            let m = ShoupMul::new(w, q);
            for a in 0..q {
                assert_eq!(m.mul(a), mul_mod(a, w, q), "w={w} a={a}");
            }
        }
    }

    #[test]
    fn matches_reference_large() {
        let q = (1u64 << 62) + 135; // not prime; Shoup does not require it
        let samples = [0u64, 1, q / 3, q / 2, q - 2, q - 1];
        for &w in &samples {
            let m = ShoupMul::new(w, q);
            for &a in &samples {
                assert_eq!(m.mul(a), mul_mod(a, w, q), "w={w} a={a}");
            }
        }
    }

    #[test]
    fn lazy_unreduced_accepts_redundant_inputs() {
        // Inputs up to 4q (the Harvey butterfly range) stay within [0, 2q)
        // and agree with the reference modulo q.
        let q = (1u64 << 61) - 1;
        let m = ShoupMul::new(q - 3, q);
        for a in [0u64, 1, q - 1, q, q + 5, 2 * q - 1, 2 * q, 4 * q - 1] {
            let r = m.mul_lazy_unreduced(a);
            assert!(r < 2 * q, "a={a}");
            assert_eq!(r % q, mul_mod(a % q, q - 3, q), "a={a}");
        }
    }

    #[test]
    fn lane_form_matches_struct_form() {
        let q = 786_433u64;
        for w in [0u64, 1, 5, q / 2, q - 1] {
            let m = ShoupMul::new(w, q);
            let wq = shoup_quotient(w, q);
            assert_eq!(wq, m.quotient());
            for a in [0u64, 1, q - 1, 2 * q - 1, u64::MAX] {
                assert_eq!(mul_shoup_lane(a, w, wq, q), mul_mod(a % q, w, q));
            }
        }
    }

    #[test]
    fn lazy_form_is_within_2q() {
        let q = 786_433u64;
        let m = ShoupMul::new(q - 1, q);
        for a in [0u64, 1, q / 2, q - 1] {
            let lazy = m.mul_lazy(a);
            assert!(lazy < 2 * q);
            assert_eq!(lazy % q, mul_mod(a, q - 1, q));
        }
    }
}
