//! Shoup multiplication: fast modular multiplication by a *fixed* operand.
//!
//! Inside an NTT butterfly the twiddle factor `w` is known ahead of time, so
//! the quotient constant `w' = floor(w · 2^64 / q)` can be precomputed. The
//! reduction then costs one high multiply, one low multiply, and one
//! conditional subtraction — the structure Poseidon hard-codes into its NTT
//! core RTL. We use it both for speed in the software library and to count
//! "one modular reduction" per fused TAM faithfully in the operator models.

/// Multiplier for a fixed operand `w` modulo `q < 2^63`.
///
/// # Examples
///
/// ```
/// use he_math::ShoupMul;
/// let m = ShoupMul::new(3, 17);
/// assert_eq!(m.mul(10), 13); // 30 mod 17
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShoupMul {
    w: u64,
    /// `floor(w · 2^64 / q)`.
    w_shoup: u64,
    q: u64,
}

impl ShoupMul {
    /// Precomputes the Shoup constant for operand `w` under modulus `q`.
    ///
    /// # Panics
    ///
    /// Panics if `w >= q` or `q >= 2^63`.
    #[inline]
    pub fn new(w: u64, q: u64) -> Self {
        assert!(q < (1u64 << 63), "modulus must be below 2^63");
        assert!(w < q, "operand must be reduced");
        let w_shoup = (((w as u128) << 64) / q as u128) as u64;
        Self { w, w_shoup, q }
    }

    /// The fixed operand `w`.
    #[inline]
    pub fn operand(&self) -> u64 {
        self.w
    }

    /// Computes `a · w mod q` for reduced `a`.
    ///
    /// The result of the core step lies in `[0, 2q)`; one conditional
    /// subtraction completes the reduction.
    #[inline]
    pub fn mul(&self, a: u64) -> u64 {
        debug_assert!(a < self.q);
        let quot = ((self.w_shoup as u128 * a as u128) >> 64) as u64;
        let r = (self.w.wrapping_mul(a)).wrapping_sub(quot.wrapping_mul(self.q));
        if r >= self.q {
            r - self.q
        } else {
            r
        }
    }

    /// Computes `a · w mod q` leaving the result in `[0, 2q)` (lazy form),
    /// for pipelines that defer the final correction — mirroring how the
    /// hardware SBT core is shared across butterfly stages.
    #[inline]
    pub fn mul_lazy(&self, a: u64) -> u64 {
        debug_assert!(a < self.q);
        let quot = ((self.w_shoup as u128 * a as u128) >> 64) as u64;
        (self.w.wrapping_mul(a)).wrapping_sub(quot.wrapping_mul(self.q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modops::mul_mod;

    #[test]
    fn matches_reference_exhaustively_small() {
        let q = 97u64;
        for w in 0..q {
            let m = ShoupMul::new(w, q);
            for a in 0..q {
                assert_eq!(m.mul(a), mul_mod(a, w, q), "w={w} a={a}");
            }
        }
    }

    #[test]
    fn matches_reference_large() {
        let q = (1u64 << 62) + 135; // not prime; Shoup does not require it
        let samples = [0u64, 1, q / 3, q / 2, q - 2, q - 1];
        for &w in &samples {
            let m = ShoupMul::new(w, q);
            for &a in &samples {
                assert_eq!(m.mul(a), mul_mod(a, w, q), "w={w} a={a}");
            }
        }
    }

    #[test]
    fn lazy_form_is_within_2q() {
        let q = 786_433u64;
        let m = ShoupMul::new(q - 1, q);
        for a in [0u64, 1, q / 2, q - 1] {
            let lazy = m.mul_lazy(a);
            assert!(lazy < 2 * q);
            assert_eq!(lazy % q, mul_mod(a, q - 1, q));
        }
    }
}
