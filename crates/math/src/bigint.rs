//! A small arbitrary-precision unsigned integer.
//!
//! CKKS decoding and the RNS exactness oracles need to reconstruct integers
//! modulo the full modulus product `Q = q_0 · … · q_L`, which exceeds 64
//! bits. Rather than pull in an external bignum crate, this module provides
//! the minimal little-endian limb arithmetic those paths require: addition,
//! subtraction, multiplication/division by `u64`, full multiplication,
//! comparison, and modular remainder by `u64`.

use std::cmp::Ordering;
use std::fmt;

/// Arbitrary-precision unsigned integer stored as little-endian 64-bit limbs
/// with no trailing zero limbs (zero is the empty limb vector).
///
/// # Examples
///
/// ```
/// use he_math::BigUint;
/// let a = BigUint::from(u64::MAX);
/// let b = &a * &a;
/// assert_eq!(b.rem_u64(97), ((u64::MAX % 97) as u128).pow(2) as u64 % 97);
/// ```
#[derive(Clone, PartialEq, Eq, Default, Hash)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        Self { limbs: vec![1] }
    }

    /// Whether this value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Builds a value from little-endian limbs (trailing zeros permitted).
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut v = Self { limbs };
        v.normalize();
        v
    }

    /// The little-endian limbs (no trailing zeros).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Number of significant bits (`0` for zero).
    pub fn bits(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(top) => (self.limbs.len() as u32 - 1) * 64 + (64 - top.leading_zeros()),
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Adds `other` into `self`.
    pub fn add_assign(&mut self, other: &BigUint) {
        let mut carry = 0u128;
        let n = self.limbs.len().max(other.limbs.len());
        self.limbs.resize(n, 0);
        for i in 0..n {
            let o = *other.limbs.get(i).unwrap_or(&0);
            let s = self.limbs[i] as u128 + o as u128 + carry;
            self.limbs[i] = s as u64;
            carry = s >> 64;
        }
        if carry > 0 {
            self.limbs.push(carry as u64);
        }
    }

    /// Subtracts `other` from `self`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub_assign(&mut self, other: &BigUint) {
        assert!(*self >= *other, "BigUint subtraction would underflow");
        let mut borrow = 0i128;
        for i in 0..self.limbs.len() {
            let o = *other.limbs.get(i).unwrap_or(&0);
            let d = self.limbs[i] as i128 - o as i128 - borrow;
            if d < 0 {
                self.limbs[i] = (d + (1i128 << 64)) as u64;
                borrow = 1;
            } else {
                self.limbs[i] = d as u64;
                borrow = 0;
            }
        }
        self.normalize();
    }

    /// Multiplies `self` by a `u64` scalar in place.
    pub fn mul_u64_assign(&mut self, m: u64) {
        if m == 0 {
            self.limbs.clear();
            return;
        }
        let mut carry = 0u128;
        for limb in &mut self.limbs {
            let p = *limb as u128 * m as u128 + carry;
            *limb = p as u64;
            carry = p >> 64;
        }
        if carry > 0 {
            self.limbs.push(carry as u64);
        }
    }

    /// Adds a `u64` scalar in place.
    pub fn add_u64_assign(&mut self, a: u64) {
        let mut carry = a as u128;
        let mut i = 0;
        while carry > 0 {
            if i == self.limbs.len() {
                self.limbs.push(0);
            }
            let s = self.limbs[i] as u128 + carry;
            self.limbs[i] = s as u64;
            carry = s >> 64;
            i += 1;
        }
    }

    /// Divides by a `u64` in place, returning the remainder.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn div_u64_assign(&mut self, d: u64) -> u64 {
        assert!(d != 0, "division by zero");
        let mut rem = 0u128;
        for limb in self.limbs.iter_mut().rev() {
            let cur = (rem << 64) | *limb as u128;
            *limb = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        self.normalize();
        rem as u64
    }

    /// Remainder modulo a `u64` without modifying `self`.
    ///
    /// # Examples
    ///
    /// ```
    /// use he_math::BigUint;
    /// let v = BigUint::from(1u64 << 40) * &BigUint::from(1u64 << 40);
    /// assert_eq!(v.rem_u64(1_000_003), {
    ///     let m = 1_000_003u64;
    ///     he_math::modops::pow_mod(1 << 40 % m, 2, m)
    /// });
    /// ```
    pub fn rem_u64(&self, d: u64) -> u64 {
        assert!(d != 0, "division by zero");
        let mut rem = 0u128;
        for limb in self.limbs.iter().rev() {
            rem = ((rem << 64) | *limb as u128) % d as u128;
        }
        rem as u64
    }

    /// Converts to `f64` (loses precision beyond 53 bits, as expected).
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for limb in self.limbs.iter().rev() {
            acc = acc * 18_446_744_073_709_551_616.0 + *limb as f64;
        }
        acc
    }

    /// Halves the value, rounding down.
    pub fn half(&self) -> BigUint {
        let mut out = self.clone();
        let mut carry = 0u64;
        for limb in out.limbs.iter_mut().rev() {
            let new_carry = *limb & 1;
            *limb = (*limb >> 1) | (carry << 63);
            carry = new_carry;
        }
        out.normalize();
        out
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            Self { limbs: vec![v] }
        }
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        Self::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl std::ops::Add<&BigUint> for BigUint {
    type Output = BigUint;
    fn add(mut self, rhs: &BigUint) -> BigUint {
        self.add_assign(rhs);
        self
    }
}

impl std::ops::Sub<&BigUint> for BigUint {
    type Output = BigUint;
    fn sub(mut self, rhs: &BigUint) -> BigUint {
        self.sub_assign(rhs);
        self
    }
}

impl std::ops::Mul<&BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + rhs.limbs.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }
}

impl std::ops::Mul<&BigUint> for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        &self * rhs
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut v = self.clone();
        while !v.is_zero() {
            digits.push(v.div_u64_assign(10) as u8);
        }
        for d in digits.iter().rev() {
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u128_round_trip_via_limbs() {
        let v: u128 = 0x0123_4567_89AB_CDEF_FEDC_BA98_7654_3210;
        let b = BigUint::from(v);
        assert_eq!(b.limbs(), &[v as u64, (v >> 64) as u64]);
    }

    #[test]
    fn add_sub_round_trip() {
        let a = BigUint::from(u128::MAX);
        let b = BigUint::from(12345u64);
        let sum = a.clone() + &b;
        assert_eq!(sum.clone() - &a, b);
        assert_eq!(sum - &b, a);
    }

    #[test]
    fn mul_matches_u128_oracle() {
        let pairs: [(u64, u64); 4] = [
            (u64::MAX, u64::MAX),
            (0, 123),
            (1 << 63, 2),
            (0xDEAD_BEEF, 0xCAFE_BABE),
        ];
        for (x, y) in pairs {
            let p = &BigUint::from(x) * &BigUint::from(y);
            assert_eq!(p, BigUint::from(x as u128 * y as u128));
        }
    }

    #[test]
    fn div_rem_u64_matches_oracle() {
        let v: u128 = 0xFFFF_FFFF_FFFF_FFFF_FFFF_FFFF_FFFF_FFFE;
        let mut b = BigUint::from(v);
        let r = b.div_u64_assign(1_000_000_007);
        assert_eq!(r as u128, v % 1_000_000_007);
        assert_eq!(b, BigUint::from(v / 1_000_000_007));
        assert_eq!(BigUint::from(v).rem_u64(97), (v % 97) as u64);
    }

    #[test]
    fn display_renders_decimal() {
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(
            BigUint::from(1234567890123456789u64).to_string(),
            "1234567890123456789"
        );
        let big = &BigUint::from(u64::MAX) * &BigUint::from(u64::MAX);
        assert_eq!(big.to_string(), "340282366920938463426481119284349108225");
    }

    #[test]
    fn ordering_and_bits() {
        assert!(BigUint::from(2u64) > BigUint::from(1u64));
        assert!(BigUint::from(1u128 << 64) > BigUint::from(u64::MAX));
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::from(1u64).bits(), 1);
        assert_eq!(BigUint::from(1u128 << 64).bits(), 65);
    }

    #[test]
    fn half_rounds_down() {
        assert_eq!(BigUint::from(7u64).half(), BigUint::from(3u64));
        let v = BigUint::from(1u128 << 65);
        assert_eq!(v.half(), BigUint::from(1u128 << 64));
    }
}
