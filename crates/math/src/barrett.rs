//! Barrett reduction — the scalar model of Poseidon's *Shared Barrett
//! Reduction (SBT)* operator core.
//!
//! The paper shares one Barrett-reduction datapath among the MM and NTT
//! cores (§IV-A). Here a [`BarrettReducer`] plays that role: every operator
//! model that needs `x mod q` for a product `x < q²` funnels through the same
//! precomputed constant, so the functional semantics of "sharing" the SBT
//! core is a shared `BarrettReducer` value.
//!
//! The classic Barrett scheme precomputes `u = floor(2^(2k) / q)` for a
//! modulus of bit width `k`; the quotient estimate `p = (x * u) >> 2k` is off
//! by at most 2, so at most two correction subtractions complete the
//! reduction (paper Fig. 3 uses the same split into an upper/lower half).

use crate::modops;

/// A precomputed Barrett reducer for a fixed modulus `q < 2^62`.
///
/// # Examples
///
/// ```
/// use he_math::BarrettReducer;
/// let r = BarrettReducer::new(0x7fff_ffff); // 2^31 - 1 (Mersenne prime)
/// assert_eq!(r.reduce((0x7fff_fffeu64 as u128) * 0x7fff_fffe), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrettReducer {
    q: u64,
    /// `floor(2^(2·shift) / q)` where `shift = bitlen(q)`.
    factor: u128,
    /// `2 · bitlen(q)`.
    shift2: u32,
}

impl BarrettReducer {
    /// Creates a reducer for modulus `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q < 2` or `q >= 2^62` (products must fit `u128` with the
    /// quotient-estimate slack).
    pub fn new(q: u64) -> Self {
        assert!(q >= 2, "modulus must be at least 2");
        assert!(q < (1u64 << 62), "modulus must be below 2^62");
        let shift = 64 - q.leading_zeros(); // bitlen(q)
        let shift2 = 2 * shift;
        // factor = floor(2^shift2 / q). shift2 <= 124 so this fits u128.
        let factor = (1u128 << shift2) / q as u128;
        Self { q, factor, shift2 }
    }

    /// The modulus this reducer was built for.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// Reduces `x` to `x mod q`.
    ///
    /// The quotient estimate never overshoots, so the result is correct for
    /// any `x`; it is *fast* (≤ 2 corrections) when `x < q²`, and the fused
    /// NTT kernels exploit the graceful degradation by accumulating up to
    /// `2^k` products before a single reduction (≤ `2^k + 1` corrections).
    ///
    /// # Examples
    ///
    /// ```
    /// let r = he_math::BarrettReducer::new(97);
    /// assert_eq!(r.reduce(96 * 96), 1);
    /// ```
    #[inline]
    pub fn reduce(&self, x: u128) -> u64 {
        // Quotient estimate: p = floor(x · factor / 2^shift2) <= floor(x/q).
        let p = mul_shift(x, self.factor, self.shift2);
        let mut r = (x - p * self.q as u128) as u64;
        while r >= self.q {
            r -= self.q;
        }
        r
    }

    /// Multiplies two reduced residues modulo `q`.
    ///
    /// # Examples
    ///
    /// ```
    /// let r = he_math::BarrettReducer::new(97);
    /// assert_eq!(r.mul(50, 2), 3);
    /// ```
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        self.reduce(a as u128 * b as u128)
    }

    /// Adds two reduced residues modulo `q` (delegates to the MA scheme).
    #[inline]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        modops::add_mod(a, b, self.q)
    }

    /// Subtracts two reduced residues modulo `q`.
    #[inline]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        modops::sub_mod(a, b, self.q)
    }

    /// Raises `base` to `exp` modulo `q` using the Barrett multiply.
    pub fn pow(&self, base: u64, exp: u64) -> u64 {
        let mut base = base % self.q;
        let mut exp = exp;
        let mut acc = 1u64 % self.q;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            exp >>= 1;
        }
        acc
    }
}

/// Computes `floor(a · b / 2^shift)` for `a < 2^126`, `b < 2^63`, splitting
/// `a` into 64-bit halves so the partial products fit `u128`.
///
/// The floor of the sum of shifted halves may undercount by the carry lost
/// between halves; to stay exact we recombine through the identity
/// `floor(x / 2^s) = floor((hi·2^64 + lo) / 2^s)` computed with explicit
/// carry propagation.
#[inline]
fn mul_shift(a: u128, b: u128, shift: u32) -> u128 {
    let a_lo = a as u64 as u128;
    let a_hi = a >> 64;
    let lo = a_lo * b; // < 2^127
    let hi = a_hi * b; // < 2^125
    if shift >= 64 {
        // a·b = (hi + (lo >> 64))·2^64 + (lo mod 2^64); dividing by
        // 2^(64+s) is exactly (hi + (lo >> 64)) >> s because the remaining
        // low part is strictly below 2^(64+s).
        (hi + (lo >> 64)) >> (shift - 64)
    } else {
        // shift < 64 implies the modulus is below 2^32, hence a < 2^66 and
        // hi < 2^2·b, so the shifted hi contribution still fits u128.
        (lo >> shift) + (hi << (64 - shift))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modops::mul_mod;

    #[test]
    fn matches_reference_small() {
        let r = BarrettReducer::new(97);
        for a in 0..97u64 {
            for b in 0..97u64 {
                assert_eq!(r.mul(a, b), mul_mod(a, b, 97));
            }
        }
    }

    #[test]
    fn matches_reference_large_modulus() {
        let q = (1u64 << 61) - 1; // Mersenne prime 2^61 - 1
        let r = BarrettReducer::new(q);
        let samples = [0u64, 1, 2, q / 2, q - 2, q - 1, 123_456_789_012_345];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(r.mul(a, b), mul_mod(a, b, q), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn reduce_handles_full_square_range() {
        let q = 0xFFFF_FFFBu64; // largest 32-bit prime
        let r = BarrettReducer::new(q);
        assert_eq!(r.reduce((q as u128 - 1) * (q as u128 - 1)), 1);
        assert_eq!(r.reduce(0), 0);
        assert_eq!(r.reduce(q as u128), 0);
        assert_eq!(r.reduce(q as u128 + 1), 1);
    }

    #[test]
    fn pow_matches_modops() {
        let q = 786_433u64; // 3·2^18 + 1
        let r = BarrettReducer::new(q);
        for (base, exp) in [(5u64, 0u64), (5, 1), (5, 100), (q - 1, 2), (7, q - 1)] {
            assert_eq!(r.pow(base, exp), modops::pow_mod(base, exp, q));
        }
    }

    #[test]
    #[should_panic(expected = "modulus must be at least 2")]
    fn rejects_tiny_modulus() {
        let _ = BarrettReducer::new(1);
    }
}
