//! Limb-parallel execution engine for the Poseidon software stack.
//!
//! The paper's accelerator gets its throughput from hardware parallelism
//! over *independent RNS limbs*: 512 vector lanes chew on butterflies while
//! 32 HBM channels stream one limb each (paper §IV). The software library
//! mirrors that axis here: every per-prime loop in `he-rns`/`he-ckks`
//! dispatches its limbs across a scoped thread team instead of a serial
//! `for`.
//!
//! Design constraints (and how they're met):
//!
//! * **No external dependencies.** The engine is `std`-only, built on
//!   [`std::thread::scope`]; no rayon. Workers are spawned per dispatch —
//!   acceptable because the parallel threshold (see below) keeps dispatch
//!   to payloads that dwarf thread-spawn cost.
//! * **Bit-exact at any thread count.** Work is split into contiguous
//!   chunks of the limb index space and results land at their original
//!   indices, so outputs are identical regardless of `threads()`; `1`
//!   degrades to the plain serial loop.
//! * **Configurable process-wide.** Thread count resolves, in order: the
//!   scoped override ([`with_threads`]), the process-wide setting
//!   ([`set_threads`] / [`Builder`]), the `POSEIDON_THREADS` environment
//!   variable, and finally [`std::thread::available_parallelism`].
//! * **No nested spawning.** Code running inside a worker executes nested
//!   dispatches serially (the limbs are already spread across the team;
//!   splitting further only adds overhead).
//! * **Allocation hygiene.** [`scratch`] keeps a small per-thread pool of
//!   `Vec<u64>` buffers so hot paths (keyswitch lifts, basis conversion)
//!   don't churn the allocator once warm.
//!
//! # Examples
//!
//! ```
//! let mut data = vec![1u64; 8];
//! poseidon_par::with_threads(4, || {
//!     poseidon_par::par_for_each_mut(&mut data, 1 << 20, |i, v| *v += i as u64);
//! });
//! assert_eq!(data[5], 6);
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod scratch;

/// Telemetry scopes for the dispatch layer. `par.dispatch` spans each
/// parallel fan-out (items = team size), `par.serial` counts dispatches
/// that fell below the cutoff (items = item count), and `par.worker`
/// accumulates per-worker busy time (items = chunk length). With the
/// `telemetry` feature off, the module and every call site compile away.
#[cfg(feature = "telemetry")]
mod tel {
    use poseidon_telemetry::{Metric, Registry};
    use std::sync::{Arc, OnceLock};

    pub fn dispatch() -> &'static Arc<Metric> {
        static M: OnceLock<Arc<Metric>> = OnceLock::new();
        M.get_or_init(|| Registry::global().scope("par.dispatch"))
    }

    pub fn serial() -> &'static Arc<Metric> {
        static M: OnceLock<Arc<Metric>> = OnceLock::new();
        M.get_or_init(|| Registry::global().scope("par.serial"))
    }

    pub fn worker() -> &'static Arc<Metric> {
        static M: OnceLock<Arc<Metric>> = OnceLock::new();
        M.get_or_init(|| Registry::global().scope("par.worker"))
    }

    pub fn contained() -> &'static Arc<Metric> {
        static M: OnceLock<Arc<Metric>> = OnceLock::new();
        M.get_or_init(|| Registry::global().scope("par.contained"))
    }
}

/// Dispatches whose total work (items × per-item weight) falls below this
/// many "element operations" run serially: thread spawn costs tens of
/// microseconds, so a parallel dispatch must bring at least that much work
/// per worker. The weight callers pass is the per-item element count (for
/// limb loops: the ring degree `N`), so the unit is u64-ish element ops.
pub const PAR_THRESHOLD: usize = 1 << 13;

/// `0` means "not set": fall back to `POSEIDON_THREADS` or the host.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Worker panics contained — and recovered by a serial re-dispatch — since
/// process start (see [`par_map`]).
static CONTAINED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Number of worker panics that [`par_map`]/[`par_map_unzip`] contained
/// and recovered via serial re-dispatch since process start. A panic that
/// reproduces on the retry is *not* counted — it propagates to the caller
/// unchanged.
pub fn contained_panics() -> u64 {
    CONTAINED.load(Ordering::Relaxed)
}

thread_local! {
    /// Scoped override installed by [`with_threads`].
    static LOCAL_THREADS: Cell<usize> = const { Cell::new(0) };
    /// Set while executing inside an engine worker (or the caller's own
    /// chunk of a dispatch) to suppress nested spawning.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn env_threads() -> Option<usize> {
    std::env::var("POSEIDON_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

fn host_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The thread count dispatches currently resolve to.
///
/// Resolution order: [`with_threads`] override → [`set_threads`] /
/// [`Builder`] → `POSEIDON_THREADS` → available host parallelism.
pub fn threads() -> usize {
    let local = LOCAL_THREADS.with(Cell::get);
    if local >= 1 {
        return local;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global >= 1 {
        return global;
    }
    env_threads().unwrap_or_else(host_threads)
}

/// Sets the process-wide thread count (`1` = serial execution everywhere).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn set_threads(n: usize) {
    assert!(n >= 1, "thread count must be at least 1");
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// Clears the process-wide setting, restoring env-var/host resolution.
pub fn reset_threads() {
    GLOBAL_THREADS.store(0, Ordering::Relaxed);
}

/// Runs `f` with the calling thread's dispatches using `n` threads,
/// restoring the previous setting afterwards (panic-safe).
///
/// This override is thread-local, so concurrent tests (cargo's default
/// test harness) can pin different counts without racing each other.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "thread count must be at least 1");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_THREADS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(LOCAL_THREADS.with(|c| c.replace(n)));
    f()
}

/// Builder-style configuration of the process-wide engine.
///
/// # Examples
///
/// ```
/// poseidon_par::Builder::new().threads(2).install();
/// assert_eq!(poseidon_par::threads(), 2);
/// poseidon_par::reset_threads();
/// ```
#[derive(Debug, Clone, Default)]
pub struct Builder {
    threads: Option<usize>,
}

impl Builder {
    /// An empty configuration (installing it resets to defaults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins the worker count.
    pub fn threads(mut self, n: usize) -> Self {
        assert!(n >= 1, "thread count must be at least 1");
        self.threads = Some(n);
        self
    }

    /// Applies the configuration process-wide.
    pub fn install(self) {
        match self.threads {
            Some(n) => set_threads(n),
            None => reset_threads(),
        }
    }
}

/// True while the current thread is executing inside an engine dispatch.
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// The team size a dispatch of `items` items × `weight` weight would use
/// right now (1 = it would run serially).
fn team_size(items: usize, weight: usize) -> usize {
    if items <= 1 || in_worker() || items.saturating_mul(weight.max(1)) < PAR_THRESHOLD {
        return 1;
    }
    threads().min(items)
}

/// Contiguous chunk bounds splitting `n` items into `t` near-equal parts.
fn chunk_bounds(n: usize, t: usize) -> Vec<(usize, usize)> {
    let base = n / t;
    let extra = n % t;
    let mut bounds = Vec::with_capacity(t);
    let mut start = 0;
    for k in 0..t {
        let len = base + usize::from(k < extra);
        bounds.push((start, start + len));
        start += len;
    }
    bounds
}

struct WorkerGuard;

impl WorkerGuard {
    fn enter() -> Self {
        IN_WORKER.with(|c| c.set(true));
        WorkerGuard
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        IN_WORKER.with(|c| c.set(false));
    }
}

/// Applies `f(index, &mut item)` to every slice element, splitting the
/// index space across the thread team. `weight` is the approximate element
/// count each item touches (for limb vectors: the ring degree `N`); small
/// payloads run serially.
///
/// Deterministic: items keep their positions, so the result is identical
/// at every thread count.
pub fn par_for_each_mut<T, F>(items: &mut [T], weight: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let t = team_size(n, weight);
    if t <= 1 {
        #[cfg(feature = "telemetry")]
        tel::serial().add(n as u64);
        let _guard = WorkerGuard::enter();
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    #[cfg(feature = "telemetry")]
    let _dispatch = tel::dispatch().span(t as u64);
    let bounds = chunk_bounds(n, t);
    std::thread::scope(|s| {
        let f = &f;
        let mut tail = items;
        let mut consumed = 0;
        // Spawn chunks 1..t; run chunk 0 on the calling thread.
        let (first, rest) = tail.split_at_mut(bounds[0].1);
        tail = rest;
        consumed += first.len();
        for &(start, end) in &bounds[1..] {
            let (chunk, rest) = tail.split_at_mut(end - start);
            tail = rest;
            debug_assert_eq!(start, consumed);
            let base = consumed;
            consumed += chunk.len();
            s.spawn(move || {
                let _guard = WorkerGuard::enter();
                #[cfg(feature = "telemetry")]
                let _busy = tel::worker().span(chunk.len() as u64);
                for (off, item) in chunk.iter_mut().enumerate() {
                    f(base + off, item);
                }
            });
        }
        let _guard = WorkerGuard::enter();
        #[cfg(feature = "telemetry")]
        let _busy = tel::worker().span(first.len() as u64);
        for (i, item) in first.iter_mut().enumerate() {
            f(i, item);
        }
        // scope joins all workers; a worker panic propagates here.
    });
}

/// Builds `vec![f(0), f(1), …, f(n-1)]`, evaluating `f` across the thread
/// team. `weight` as in [`par_for_each_mut`]. Output order is index order
/// regardless of scheduling, keeping results bit-identical to serial.
///
/// # Panic containment
///
/// On the parallel path each item runs under `catch_unwind`: a panicking
/// item does not tear down the dispatch. Failed items are re-run serially
/// on the calling thread, once each — a transient failure (a poisoned
/// limb job) recovers and bumps [`contained_panics`]; a panic that
/// reproduces on the retry propagates to the caller with its original
/// payload, so deterministic `assert!` failures behave exactly as before.
/// The retry re-invokes `f` from scratch, which is sound here because
/// dispatch closures in this workspace are pure per-index producers.
pub fn par_map<U, F>(n: usize, weight: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let t = team_size(n, weight);
    if t <= 1 {
        #[cfg(feature = "telemetry")]
        tel::serial().add(n as u64);
        let _guard = WorkerGuard::enter();
        return (0..n).map(f).collect();
    }
    #[cfg(feature = "telemetry")]
    let _dispatch = tel::dispatch().span(t as u64);
    let bounds = chunk_bounds(n, t);
    // Items evaluate to Ok(value) or Err(index) when the item panicked;
    // the unwind payload is dropped in the worker and regenerated (or not)
    // by the serial retry below.
    let run_contained = |i: usize| -> Result<U, usize> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))).map_err(|_| i)
    };
    let mut attempts: Vec<Result<U, usize>> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let run = &run_contained;
        let handles: Vec<_> = bounds[1..]
            .iter()
            .map(|&(start, end)| {
                s.spawn(move || {
                    let _guard = WorkerGuard::enter();
                    #[cfg(feature = "telemetry")]
                    let _busy = tel::worker().span((end - start) as u64);
                    (start..end).map(run).collect::<Vec<Result<U, usize>>>()
                })
            })
            .collect();
        {
            let _guard = WorkerGuard::enter();
            #[cfg(feature = "telemetry")]
            let _busy = tel::worker().span((bounds[0].1 - bounds[0].0) as u64);
            attempts.extend((bounds[0].0..bounds[0].1).map(run));
        }
        for h in handles {
            match h.join() {
                Ok(part) => attempts.extend(part),
                // Unreachable in practice (items are contained), but a
                // panic outside the contained region must still surface.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    attempts
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(i) => {
                // Serial re-dispatch of the poisoned item on the calling
                // thread; a second failure propagates unchanged.
                let _guard = WorkerGuard::enter();
                let v = f(i);
                CONTAINED.fetch_add(1, Ordering::Relaxed);
                #[cfg(feature = "telemetry")]
                tel::contained().add(1);
                v
            }
        })
        .collect()
}

/// Two-result variant of [`par_map`]: evaluates `f(j) -> (A, B)` over the
/// index space and unzips, preserving order. Used by keyswitch, whose per
/// digit work yields the `(b, a)` product pair.
pub fn par_map_unzip<A, B, F>(n: usize, weight: usize, f: F) -> (Vec<A>, Vec<B>)
where
    A: Send,
    B: Send,
    F: Fn(usize) -> (A, B) + Sync,
{
    let pairs = par_map(n, weight, f);
    let mut left = Vec::with_capacity(pairs.len());
    let mut right = Vec::with_capacity(pairs.len());
    for (a, b) in pairs {
        left.push(a);
        right.push(b);
    }
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_order_prefers_local_override() {
        set_threads(3);
        assert_eq!(threads(), 3);
        with_threads(7, || assert_eq!(threads(), 7));
        assert_eq!(threads(), 3);
        reset_threads();
        assert!(threads() >= 1);
    }

    #[test]
    fn builder_installs_and_resets() {
        Builder::new().threads(5).install();
        assert_eq!(threads(), 5);
        Builder::new().install();
        assert!(threads() >= 1);
    }

    #[test]
    fn chunk_bounds_partition_exactly() {
        for n in [1usize, 2, 5, 16, 17, 100] {
            for t in 1..=8.min(n) {
                let b = chunk_bounds(n, t);
                assert_eq!(b.len(), t);
                assert_eq!(b[0].0, 0);
                assert_eq!(b[t - 1].1, n);
                for w in b.windows(2) {
                    assert_eq!(w[0].1, w[1].0);
                }
            }
        }
    }

    #[test]
    fn par_for_each_mut_matches_serial() {
        let weight = PAR_THRESHOLD; // force the parallel path
        let mut serial: Vec<u64> = (0..64).collect();
        let mut parallel = serial.clone();
        with_threads(1, || {
            par_for_each_mut(&mut serial, weight, |i, v| *v = *v * 3 + i as u64)
        });
        with_threads(8, || {
            par_for_each_mut(&mut parallel, weight, |i, v| *v = *v * 3 + i as u64)
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_map_preserves_index_order() {
        let out = with_threads(8, || par_map(100, PAR_THRESHOLD, |i| i * i));
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_unzip_pairs_up() {
        let (a, b) = with_threads(4, || {
            par_map_unzip(10, PAR_THRESHOLD, |i| (i, i as u64 * 2))
        });
        assert_eq!(a, (0..10).collect::<Vec<_>>());
        assert_eq!(b, (0..10).map(|i| i as u64 * 2).collect::<Vec<_>>());
    }

    #[test]
    fn small_payloads_stay_serial() {
        // weight 1, 4 items: far below PAR_THRESHOLD — must not spawn.
        let main_id = std::thread::current().id();
        let mut hit_other_thread = false;
        let mut items = [0u8; 4];
        par_for_each_mut(&mut items, 1, |_, _| {
            if std::thread::current().id() != main_id {
                // Can't assert from worker; record via side effect below.
            }
        });
        // Serial path leaves IN_WORKER false afterwards.
        assert!(!in_worker());
        let _ = &mut hit_other_thread;
    }

    #[test]
    fn nested_dispatch_runs_serially() {
        let out = with_threads(4, || {
            par_map(4, PAR_THRESHOLD, |i| {
                // Inside a worker: nested dispatch must not spawn (and must
                // still be correct).
                let inner = par_map(4, PAR_THRESHOLD, move |j| i * 10 + j);
                inner.into_iter().sum::<usize>()
            })
        });
        assert_eq!(out, vec![6, 46, 86, 126]);
    }

    #[test]
    fn worker_panic_propagates() {
        // A deterministic panic survives the contained retry and reaches
        // the caller with its original payload.
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map(8, PAR_THRESHOLD, |i| {
                    if i == 7 {
                        panic!("boom");
                    }
                    i
                })
            })
        });
        let payload = caught.expect_err("persistent panic must propagate");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));
    }

    #[test]
    fn transient_worker_panic_is_contained() {
        use std::sync::atomic::AtomicBool;
        static TRIPPED: AtomicBool = AtomicBool::new(false);
        TRIPPED.store(false, Ordering::SeqCst);
        let before = contained_panics();
        let out = with_threads(4, || {
            par_map(8, PAR_THRESHOLD, |i| {
                if i == 3 && !TRIPPED.swap(true, Ordering::SeqCst) {
                    panic!("transient limb failure");
                }
                i * 2
            })
        });
        assert_eq!(out, (0..8).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(contained_panics(), before + 1);
    }

    #[test]
    fn unzip_recovers_transient_panics_too() {
        use std::sync::atomic::AtomicBool;
        static TRIPPED: AtomicBool = AtomicBool::new(false);
        TRIPPED.store(false, Ordering::SeqCst);
        let (a, b) = with_threads(4, || {
            par_map_unzip(6, PAR_THRESHOLD, |i| {
                if i == 5 && !TRIPPED.swap(true, Ordering::SeqCst) {
                    panic!("transient");
                }
                (i, i as u64)
            })
        });
        assert_eq!(a, (0..6).collect::<Vec<_>>());
        assert_eq!(b, (0..6).map(|i| i as u64).collect::<Vec<_>>());
    }
}
