//! Per-thread scratch-buffer pool for hot-path `Vec<u64>` allocations.
//!
//! Keyswitching and basis conversion allocate short-lived limb vectors on
//! every call (lifts into the extension basis, conversion temporaries).
//! Rather than hitting the allocator each time, callers [`take`] a zeroed
//! buffer and [`recycle`] it when done; each thread keeps a small stack of
//! retired buffers, so once warm the hot paths allocate nothing.
//!
//! The pool is thread-local on purpose: the engine's workers each build
//! their own pool, so there is no locking and no cross-thread traffic.
//!
//! # Examples
//!
//! ```
//! use poseidon_par::scratch;
//! let buf = scratch::take(1024);
//! assert!(buf.iter().all(|&x| x == 0));
//! scratch::recycle(buf);
//! let again = scratch::take(512); // reuses the retired allocation
//! assert_eq!(again.len(), 512);
//! scratch::recycle(again);
//! ```

use std::cell::RefCell;

/// Retired buffers kept per thread; beyond this, [`recycle`] just drops.
const POOL_CAP: usize = 32;

thread_local! {
    static POOL: RefCell<Vec<Vec<u64>>> = const { RefCell::new(Vec::new()) };
}

/// Hands out a zeroed `Vec<u64>` of length `len`, reusing a retired
/// buffer when one with enough capacity is pooled.
pub fn take(len: usize) -> Vec<u64> {
    let reused = POOL.with(|p| {
        let mut pool = p.borrow_mut();
        let idx = pool.iter().rposition(|b| b.capacity() >= len);
        idx.map(|i| pool.swap_remove(i))
    });
    #[allow(unused_mut)]
    let mut out = match reused {
        Some(mut buf) => {
            buf.clear();
            buf.resize(len, 0);
            buf
        }
        None => vec![0u64; len],
    };
    // Injection point for the `ParScratch` fault site: stale or flipped
    // scratchpad contents handed to a kernel. Runs after the zero-fill so
    // the corruption is what the consumer actually reads.
    #[cfg(feature = "faults")]
    poseidon_faults::tamper(poseidon_faults::FaultSite::ParScratch, &mut out);
    out
}

/// Returns a buffer to the calling thread's pool (dropped if full).
pub fn recycle(buf: Vec<u64>) {
    if buf.capacity() == 0 {
        return;
    }
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < POOL_CAP {
            pool.push(buf);
        }
    });
}

/// Drops every buffer pooled by the calling thread (mainly for tests and
/// memory-sensitive callers).
pub fn clear() {
    POOL.with(|p| p.borrow_mut().clear());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_even_after_dirty_recycle() {
        clear();
        let mut buf = take(64);
        buf.iter_mut().for_each(|x| *x = 0xDEAD_BEEF);
        recycle(buf);
        let buf = take(64);
        assert!(buf.iter().all(|&x| x == 0));
        recycle(buf);
    }

    #[test]
    fn reuses_capacity() {
        clear();
        let buf = take(256);
        let ptr = buf.as_ptr();
        recycle(buf);
        let buf = take(128);
        assert_eq!(buf.as_ptr(), ptr, "should reuse the pooled allocation");
        recycle(buf);
    }

    #[test]
    fn pool_is_bounded() {
        clear();
        let bufs: Vec<_> = (0..POOL_CAP + 8).map(|_| take(16)).collect();
        for b in bufs {
            recycle(b);
        }
        POOL.with(|p| assert!(p.borrow().len() <= POOL_CAP));
        clear();
    }
}
