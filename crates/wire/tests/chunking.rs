//! Chunked keyset streaming: slicing + reassembly must reproduce the
//! original frame bit-for-bit, and every stream violation is a typed
//! error that resets the assembler.

use he_ckks::context::CkksContext;
use he_ckks::keys::KeySet;
use he_ckks::params::CkksParams;
use poseidon_wire::{chunk_keyset, KeysetAssembler, WireError, KEYSET_CHUNK_BYTES};
use rand::SeedableRng;

fn tiny_params() -> CkksParams {
    CkksParams {
        n: 16,
        first_prime_bits: 30,
        scale_prime_bits: 25,
        chain_len: 3,
        special_len: 1,
        special_prime_bits: 31,
        scale: (1u64 << 25) as f64,
        error_std: 3.2,
    }
}

fn keyset_frame() -> Vec<u8> {
    let ctx = CkksContext::new(tiny_params());
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let mut keys = KeySet::generate(&ctx, &mut rng);
    keys.add_rotation_key(1, &mut rng);
    poseidon_wire::encode_keyset_public(&ctx, &keys)
}

#[test]
fn chunk_and_reassemble_is_bit_identical() {
    let frame = keyset_frame();
    for chunk_bytes in [64usize, 1000, 4096, KEYSET_CHUNK_BYTES] {
        let chunks = chunk_keyset(&frame, chunk_bytes);
        assert_eq!(chunks.len(), frame.len().div_ceil(chunk_bytes));
        let mut asm = KeysetAssembler::new();
        let mut done = None;
        for (i, c) in chunks.iter().enumerate() {
            let got = asm.accept(c).unwrap();
            if i + 1 < chunks.len() {
                assert!(got.is_none(), "stream completed early at chunk {i}");
            } else {
                done = got;
            }
        }
        let rebuilt = done.expect("final chunk completes the stream");
        assert_eq!(rebuilt, frame);
        // The reassembled frame is a real keyset frame.
        let (ctx, keys) = poseidon_wire::decode_keyset(&rebuilt).unwrap();
        assert_eq!(ctx.params(), &tiny_params());
        assert!(keys.galois_entries().iter().any(|(g, _)| *g > 0));
    }
}

#[test]
fn single_chunk_stream_completes_immediately() {
    let frame = keyset_frame();
    let chunks = chunk_keyset(&frame, frame.len());
    assert_eq!(chunks.len(), 1);
    let mut asm = KeysetAssembler::new();
    assert_eq!(asm.accept(&chunks[0]).unwrap().unwrap(), frame);
    // The assembler is reusable for a second stream.
    assert_eq!(asm.accept(&chunks[0]).unwrap().unwrap(), frame);
}

#[test]
fn out_of_order_and_duplicate_chunks_are_rejected() {
    let frame = keyset_frame();
    let chunks = chunk_keyset(&frame, 1000);
    assert!(chunks.len() >= 3);

    let mut asm = KeysetAssembler::new();
    // Starting mid-stream.
    assert!(matches!(
        asm.accept(&chunks[1]),
        Err(WireError::Malformed(_))
    ));
    // A duplicate of the chunk just accepted.
    asm.accept(&chunks[0]).unwrap();
    assert!(matches!(
        asm.accept(&chunks[0]),
        Err(WireError::Malformed(_))
    ));
    // The error reset the stream: a clean retry from zero succeeds.
    assert_eq!(asm.received(), 0);
    for (i, c) in chunks.iter().enumerate() {
        let got = asm.accept(c).unwrap();
        assert_eq!(got.is_some(), i + 1 == chunks.len());
    }
}

#[test]
fn inconsistent_totals_are_rejected() {
    let frame = keyset_frame();
    let chunks_a = chunk_keyset(&frame, 1000);
    let chunks_b = chunk_keyset(&frame, 2000);
    let mut asm = KeysetAssembler::new();
    asm.accept(&chunks_a[0]).unwrap();
    // chunk 1 of a stream sliced differently declares other totals.
    assert!(matches!(
        asm.accept(&chunks_b[1]),
        Err(WireError::Malformed(_))
    ));
}

#[test]
fn hostile_declared_size_is_rejected_before_allocation() {
    // Hand-build a chunk claiming a multi-GB keyset.
    let mut payload = Vec::new();
    payload.extend_from_slice(&0u64.to_le_bytes()); // index
    payload.extend_from_slice(&2u64.to_le_bytes()); // total_chunks
    payload.extend_from_slice(&(u64::MAX / 2).to_le_bytes()); // total_len
    payload.extend_from_slice(&[0u8; 32]);
    let mut evil = Vec::new();
    evil.extend_from_slice(&poseidon_wire::MAGIC);
    evil.extend_from_slice(&poseidon_wire::VERSION.to_le_bytes());
    evil.push(6); // Kind::KeySetChunk
    evil.push(0);
    evil.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    evil.extend_from_slice(&payload);
    let sum = poseidon_wire::checksum(&evil[8..]);
    evil.extend_from_slice(&sum.to_le_bytes());

    let mut asm = KeysetAssembler::new();
    assert!(matches!(asm.accept(&evil), Err(WireError::Malformed(_))));
}

#[test]
fn non_chunk_frames_are_kind_mismatches() {
    let frame = keyset_frame();
    let mut asm = KeysetAssembler::new();
    assert!(matches!(
        asm.accept(&frame),
        Err(WireError::KindMismatch { .. })
    ));
}
