//! Corrupt-on-decode fault hook: with a `WireFrame` plan armed, decode
//! entry points tamper a *copy* of the incoming bytes before parsing —
//! the checksum must turn the injected link corruption into a typed
//! error, and the caller's buffer must stay pristine.

#![cfg(feature = "faults")]

use he_ckks::cipher::Ciphertext;
use he_ckks::context::CkksContext;
use he_ckks::params::CkksParams;
use he_rns::{Form, RnsPoly};
use poseidon_faults::{FaultKind, FaultPlan, FaultSite};
use poseidon_wire::WireError;
use rand::{Rng, SeedableRng};

fn frame_under_test() -> (CkksContext, Vec<u8>) {
    let params = CkksParams {
        n: 16,
        first_prime_bits: 30,
        scale_prime_bits: 25,
        chain_len: 3,
        special_len: 1,
        special_prime_bits: 31,
        scale: (1u64 << 25) as f64,
        error_std: 3.2,
    };
    let ctx = CkksContext::new(params);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EED);
    let basis = ctx.level_basis(1);
    let rows = |rng: &mut rand::rngs::StdRng| {
        basis
            .primes()
            .iter()
            .map(|&q| (0..basis.n()).map(|_| rng.gen_range(0..q)).collect())
            .collect()
    };
    let c0 = RnsPoly::from_residues(&basis, rows(&mut rng), Form::Coeff);
    let c1 = RnsPoly::from_residues(&basis, rows(&mut rng), Form::Coeff);
    let ct = Ciphertext::new(c0, c1, ctx.default_scale());
    let bytes = poseidon_wire::encode_ciphertext(&ctx, &ct);
    (ctx, bytes)
}

#[test]
fn armed_wire_fault_is_caught_as_a_typed_error_and_input_stays_clean() {
    let _guard = poseidon_faults::test_lock();
    let (ctx, bytes) = frame_under_test();
    let pristine = bytes.clone();

    poseidon_faults::arm(FaultPlan::transient(
        FaultSite::WireFrame,
        FaultKind::BitFlip,
        0xBAD_11AC,
    ));
    let result = poseidon_wire::decode_ciphertext(&ctx, &bytes);
    poseidon_faults::disarm();

    match result {
        // Depending on which byte the seeded plan hits, the flip surfaces
        // as a checksum/field error — never as a panic, never as success.
        Err(
            WireError::ChecksumMismatch { .. }
            | WireError::BadMagic
            | WireError::UnsupportedVersion { .. }
            | WireError::UnknownKind(_)
            | WireError::LengthMismatch { .. }
            | WireError::Truncated { .. }
            | WireError::Malformed(_),
        ) => {}
        other => panic!("expected a typed decode error, got {other:?}"),
    }
    assert_eq!(poseidon_faults::site_hits(FaultSite::WireFrame), 1);
    assert_eq!(bytes, pristine, "caller's buffer must not be mutated");

    // Transient plan: the next decode sees clean bytes and succeeds.
    let back = poseidon_wire::decode_ciphertext(&ctx, &bytes).expect("clean decode");
    assert_eq!(poseidon_wire::encode_ciphertext(&ctx, &back), bytes);
}
