//! Adversarial decode corpus: truncation at every byte boundary, a bit
//! flip at every bit position, version skew, kind confusion, and
//! field-level garbage. Every case must come back as a typed
//! [`poseidon_wire::WireError`] — a panic anywhere here is a bug.

use he_ckks::cipher::Ciphertext;
use he_ckks::context::CkksContext;
use he_ckks::keys::KeySet;
use he_ckks::params::CkksParams;
use he_rns::{Form, RnsBasis, RnsPoly};
use poseidon_wire::{Kind, WireError, HEADER_LEN, MAGIC, VERSION};
use rand::{Rng, SeedableRng};

fn tiny_params() -> CkksParams {
    CkksParams {
        n: 16,
        first_prime_bits: 30,
        scale_prime_bits: 25,
        chain_len: 3,
        special_len: 1,
        special_prime_bits: 31,
        scale: (1u64 << 25) as f64,
        error_std: 3.2,
    }
}

fn random_poly(basis: &RnsBasis, rng: &mut rand::rngs::StdRng) -> RnsPoly {
    let rows = basis
        .primes()
        .iter()
        .map(|&q| (0..basis.n()).map(|_| rng.gen_range(0..q)).collect())
        .collect();
    RnsPoly::from_residues(basis, rows, Form::Coeff)
}

fn tiny_ciphertext_frame() -> (CkksContext, Vec<u8>) {
    let ctx = CkksContext::new(tiny_params());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xD15EA5E);
    let basis = ctx.level_basis(2);
    let ct = Ciphertext::new(
        random_poly(&basis, &mut rng),
        random_poly(&basis, &mut rng),
        ctx.default_scale(),
    );
    let bytes = poseidon_wire::encode_ciphertext(&ctx, &ct);
    (ctx, bytes)
}

/// Decoding dispatched on the frame's own kind — used to prove that *no*
/// decoder panics on a corrupt frame, whatever the bytes claim to be.
fn decode_any(ctx: &CkksContext, bytes: &[u8]) -> Result<(), WireError> {
    match poseidon_wire::peek_kind(bytes) {
        Ok(Kind::Params) => poseidon_wire::decode_params(bytes).map(|_| ()),
        Ok(Kind::Plaintext) => poseidon_wire::decode_plaintext(ctx, bytes).map(|_| ()),
        Ok(Kind::Ciphertext) => poseidon_wire::decode_ciphertext(ctx, bytes).map(|_| ()),
        Ok(Kind::KeySwitchKey) => poseidon_wire::decode_keyswitch_key(ctx, bytes).map(|_| ()),
        Ok(Kind::KeySet) => poseidon_wire::decode_keyset(bytes).map(|_| ()),
        Ok(Kind::KeySetChunk) => poseidon_wire::KeysetAssembler::new()
            .accept(bytes)
            .map(|_| ()),
        Err(e) => Err(e),
    }
}

#[test]
fn truncation_at_every_byte_boundary_is_a_typed_error() {
    let (ctx, bytes) = tiny_ciphertext_frame();
    for len in 0..bytes.len() {
        let err =
            decode_any(&ctx, &bytes[..len]).expect_err(&format!("prefix of {len} bytes decoded"));
        assert!(
            matches!(err, WireError::Truncated { .. }),
            "prefix of {len} bytes gave {err:?}, expected Truncated"
        );
    }
}

#[test]
fn bit_flip_at_every_position_is_a_typed_error() {
    let (ctx, bytes) = tiny_ciphertext_frame();
    for byte_idx in 0..bytes.len() {
        for bit in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[byte_idx] ^= 1 << bit;
            let err = decode_any(&ctx, &corrupt).expect_err(&format!(
                "flip of byte {byte_idx} bit {bit} decoded successfully"
            ));
            // The checksum spans everything after the magic, so a flip is
            // caught either by a field validation or by the checksum.
            match byte_idx {
                0..=7 => assert_eq!(err, WireError::BadMagic),
                8..=9 => assert!(matches!(err, WireError::UnsupportedVersion { .. })),
                _ => {}
            }
        }
    }
}

#[test]
fn trailing_garbage_is_a_length_mismatch() {
    let (ctx, mut bytes) = tiny_ciphertext_frame();
    bytes.push(0);
    assert!(matches!(
        poseidon_wire::decode_ciphertext(&ctx, &bytes),
        Err(WireError::LengthMismatch { .. })
    ));
}

#[test]
fn version_skew_is_reported_with_both_versions() {
    let (ctx, mut bytes) = tiny_ciphertext_frame();
    let future = VERSION + 1;
    bytes[8..10].copy_from_slice(&future.to_le_bytes());
    match poseidon_wire::decode_ciphertext(&ctx, &bytes) {
        Err(WireError::UnsupportedVersion { got, supported }) => {
            assert_eq!(got, future);
            assert_eq!(supported, VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn unknown_kind_and_kind_confusion_are_typed() {
    let (ctx, bytes) = tiny_ciphertext_frame();
    // peek_kind on a junk kind byte (header checksum not consulted there).
    let mut junk = bytes.clone();
    junk[10] = 0xEE;
    assert_eq!(
        poseidon_wire::peek_kind(&junk),
        Err(WireError::UnknownKind(0xEE))
    );
    // A well-formed ciphertext frame handed to the plaintext decoder.
    match poseidon_wire::decode_plaintext(&ctx, &bytes) {
        Err(WireError::KindMismatch { expected, got }) => {
            assert_eq!(expected, Kind::Plaintext);
            assert_eq!(got, Kind::Ciphertext);
        }
        other => panic!("expected KindMismatch, got {other:?}"),
    }
}

#[test]
fn not_a_frame_at_all() {
    let ctx = CkksContext::new(tiny_params());
    assert!(matches!(
        poseidon_wire::decode_ciphertext(&ctx, b"hello"),
        Err(WireError::Truncated { .. })
    ));
    assert!(matches!(
        poseidon_wire::decode_ciphertext(&ctx, b"NOTPOSEIDONWIREDATA_"),
        Err(WireError::BadMagic)
    ));
    assert!(matches!(
        poseidon_wire::decode_ciphertext(&ctx, &[]),
        Err(WireError::Truncated { .. })
    ));
}

#[test]
fn foreign_context_is_a_context_mismatch() {
    let (_, bytes) = tiny_ciphertext_frame();
    let other = CkksContext::new(CkksParams::toy());
    assert!(matches!(
        poseidon_wire::decode_ciphertext(&other, &bytes),
        Err(WireError::ContextMismatch(_))
    ));
}

/// Rebuilds a frame around a hand-mangled payload (valid checksum, invalid
/// fields) so field validation is exercised *past* the checksum gate.
fn reframe(original: &[u8], mangle: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
    let (kind, _flags, payload) = poseidon_wire::parse_frame(original).expect("valid input frame");
    let mut payload = payload.to_vec();
    mangle(&mut payload);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(match kind {
        Kind::Params => 1,
        Kind::Plaintext => 2,
        Kind::Ciphertext => 3,
        Kind::KeySwitchKey => 4,
        Kind::KeySet => 5,
        Kind::KeySetChunk => 6,
    });
    out.push(if kind == Kind::KeySet { 1 } else { 0 });
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let sum = poseidon_wire::checksum(&out[8..]);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

#[test]
fn checksummed_but_semantically_invalid_payloads_are_malformed() {
    let (ctx, bytes) = tiny_ciphertext_frame();

    // Out-of-range residue (≥ q) in the first c0 row.
    let q0 = ctx.chain_basis().primes()[0];
    let evil = reframe(&bytes, |p| {
        p[80..88].copy_from_slice(&q0.to_le_bytes());
    });
    assert!(matches!(
        poseidon_wire::decode_ciphertext(&ctx, &evil),
        Err(WireError::Malformed(_))
    ));

    // Level beyond the chain.
    let evil = reframe(&bytes, |p| {
        p[64..72].copy_from_slice(&99u64.to_le_bytes());
    });
    assert!(matches!(
        poseidon_wire::decode_ciphertext(&ctx, &evil),
        Err(WireError::Malformed(_))
    ));

    // Non-finite scale.
    let evil = reframe(&bytes, |p| {
        p[72..80].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
    });
    assert!(matches!(
        poseidon_wire::decode_ciphertext(&ctx, &evil),
        Err(WireError::Malformed(_))
    ));

    // Trailing payload bytes behind a well-formed object.
    let evil = reframe(&bytes, |p| p.push(7));
    assert!(matches!(
        poseidon_wire::decode_ciphertext(&ctx, &evil),
        Err(WireError::Malformed(_))
    ));

    // Invalid parameter block (N = 0) in a params frame.
    let params_frame = poseidon_wire::encode_params(&tiny_params());
    let evil = reframe(&params_frame, |p| {
        p[0..8].copy_from_slice(&0u64.to_le_bytes());
    });
    assert!(matches!(
        poseidon_wire::decode_params(&evil),
        Err(WireError::Malformed(_))
    ));
}

#[test]
fn keyset_field_validation_rejects_garbage() {
    let ctx = CkksContext::new(tiny_params());
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut keys = KeySet::generate(&ctx, &mut rng);
    keys.add_rotation_key(1, &mut rng);
    let bytes = poseidon_wire::encode_keyset(&ctx, &keys);

    // Non-ternary secret coefficient (zigzag(5) = 10 in the first slot).
    let evil = reframe(&bytes, |p| {
        p[64..72].copy_from_slice(&10u64.to_le_bytes());
    });
    assert!(matches!(
        poseidon_wire::decode_keyset(&evil),
        Err(WireError::Malformed(_))
    ));

    // Even Galois element: locate the single entry's g word. Layout after
    // params(64) + secret(16×8) + public b/a (2×3×16×8) + relin
    // (8 + 3 pairs × 2 polys × 4 rows × 16 × 8) is the Galois count.
    let g_off = 64 + 128 + 768 + (8 + 3 * 2 * 4 * 128) + 8;
    let evil = reframe(&bytes, |p| {
        p[g_off..g_off + 8].copy_from_slice(&4u64.to_le_bytes());
    });
    assert!(matches!(
        poseidon_wire::decode_keyset(&evil),
        Err(WireError::Malformed(_))
    ));
}

#[test]
fn decoder_never_panics_on_random_garbage() {
    let ctx = CkksContext::new(tiny_params());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xF00D);
    for len in [0usize, 1, 7, 19, 20, 27, 28, 64, 200, 1000] {
        for _ in 0..50 {
            let mut junk: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u64) as u8).collect();
            // Half the cases get a valid magic so parsing goes deeper.
            if rng.gen_range(0..2u32) == 0 && junk.len() >= 8 {
                junk[..8].copy_from_slice(&MAGIC);
            }
            let _ = decode_any(&ctx, &junk);
        }
    }
}
