//! Zero-copy view decoding: pooled decodes must be bit-identical to the
//! classic copying decoders, reuse pool rows in steady state, and reject
//! exactly the same malformed inputs.

use he_ckks::cipher::{Ciphertext, Plaintext};
use he_ckks::context::CkksContext;
use he_ckks::params::CkksParams;
use he_rns::{Form, RnsBasis, RnsPoly};
use poseidon_wire::{
    decode_ciphertext_pooled, decode_plaintext_pooled, BufferPool, CiphertextView, FrameView, Kind,
    PlaintextView, WireError,
};
use rand::{Rng, SeedableRng};

fn tiny_params() -> CkksParams {
    CkksParams {
        n: 16,
        first_prime_bits: 30,
        scale_prime_bits: 25,
        chain_len: 3,
        special_len: 1,
        special_prime_bits: 31,
        scale: (1u64 << 25) as f64,
        error_std: 3.2,
    }
}

fn random_poly(basis: &RnsBasis, rng: &mut rand::rngs::StdRng) -> RnsPoly {
    let rows = basis
        .primes()
        .iter()
        .map(|&q| (0..basis.n()).map(|_| rng.gen_range(0..q)).collect())
        .collect();
    RnsPoly::from_residues(basis, rows, Form::Coeff)
}

#[test]
fn pooled_ciphertext_decode_is_bit_identical_to_copying_decode() {
    let ctx = CkksContext::new(tiny_params());
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let pool = BufferPool::new(64);
    for level in 0..ctx.chain_basis().len() {
        let basis = ctx.level_basis(level);
        let ct = Ciphertext::new(
            random_poly(&basis, &mut rng),
            random_poly(&basis, &mut rng),
            ctx.default_scale(),
        );
        let bytes = poseidon_wire::encode_ciphertext(&ctx, &ct);
        let copied = poseidon_wire::decode_ciphertext(&ctx, &bytes).unwrap();
        let pooled = decode_ciphertext_pooled(&ctx, &bytes, &pool).unwrap();
        assert_eq!(copied, pooled);
        assert_eq!(pooled, ct);
    }
}

#[test]
fn pooled_plaintext_decode_is_bit_identical_to_copying_decode() {
    let ctx = CkksContext::new(tiny_params());
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    let pool = BufferPool::new(64);
    let pt = Plaintext::new(
        random_poly(ctx.chain_basis(), &mut rng),
        ctx.default_scale(),
    );
    let bytes = poseidon_wire::encode_plaintext(&ctx, &pt);
    let copied = poseidon_wire::decode_plaintext(&ctx, &bytes).unwrap();
    let pooled = decode_plaintext_pooled(&ctx, &bytes, &pool).unwrap();
    assert_eq!(copied, pooled);
}

#[test]
fn pool_rows_are_reused_across_decodes() {
    let ctx = CkksContext::new(tiny_params());
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let pool = BufferPool::new(64);
    let basis = ctx.chain_basis();
    let ct = Ciphertext::new(
        random_poly(basis, &mut rng),
        random_poly(basis, &mut rng),
        ctx.default_scale(),
    );
    let bytes = poseidon_wire::encode_ciphertext(&ctx, &ct);

    let first = decode_ciphertext_pooled(&ctx, &bytes, &pool).unwrap();
    // 2 components × 3 limbs = 6 rows recycled.
    pool.recycle_ciphertext(first);
    assert_eq!(pool.len(), 6);
    let second = decode_ciphertext_pooled(&ctx, &bytes, &pool).unwrap();
    assert_eq!(pool.len(), 0, "second decode drained the recycled rows");
    assert_eq!(second, ct);
}

#[test]
fn view_exposes_structure_without_materialising() {
    let ctx = CkksContext::new(tiny_params());
    let mut rng = rand::rngs::StdRng::seed_from_u64(14);
    let basis = ctx.level_basis(1);
    let ct = Ciphertext::new(
        random_poly(&basis, &mut rng),
        random_poly(&basis, &mut rng),
        2.0_f64.powi(25),
    );
    let bytes = poseidon_wire::encode_ciphertext(&ctx, &ct);

    let frame = FrameView::parse(&bytes).unwrap();
    assert_eq!(frame.kind(), Kind::Ciphertext);
    assert_eq!(frame.flags(), 0);
    assert!(frame.expect_kind(Kind::Plaintext).is_err());

    let view = CiphertextView::parse(&ctx, &bytes).unwrap();
    assert_eq!(view.level(), 1);
    assert_eq!(view.scale(), 2.0_f64.powi(25));
}

#[test]
fn corrupt_residue_returns_rows_to_pool() {
    let ctx = CkksContext::new(tiny_params());
    let mut rng = rand::rngs::StdRng::seed_from_u64(15);
    let basis = ctx.chain_basis();
    let ct = Ciphertext::new(
        random_poly(basis, &mut rng),
        random_poly(basis, &mut rng),
        ctx.default_scale(),
    );
    let bytes = poseidon_wire::encode_ciphertext(&ctx, &ct);

    // Rebuild the frame with an out-of-range residue in the *last* c1 row
    // so several rows are already pooled when validation fails.
    let (_, _, payload) = poseidon_wire::parse_frame(&bytes).unwrap();
    let mut payload = payload.to_vec();
    let q_last = *basis.primes().last().unwrap();
    let tail = payload.len() - 8;
    payload[tail..].copy_from_slice(&q_last.to_le_bytes());
    let mut evil = Vec::new();
    evil.extend_from_slice(&poseidon_wire::MAGIC);
    evil.extend_from_slice(&poseidon_wire::VERSION.to_le_bytes());
    evil.push(3); // Kind::Ciphertext
    evil.push(0);
    evil.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    evil.extend_from_slice(&payload);
    let sum = poseidon_wire::checksum(&evil[8..]);
    evil.extend_from_slice(&sum.to_le_bytes());

    let pool = BufferPool::new(64);
    // Warm the pool so we can observe conservation.
    for _ in 0..8 {
        pool.put(Vec::with_capacity(16));
    }
    let before = pool.len();
    let err = decode_ciphertext_pooled(&ctx, &evil, &pool).unwrap_err();
    assert!(matches!(err, WireError::Malformed(_)));
    assert_eq!(pool.len(), before, "failed decode must not leak pool rows");
}

#[test]
fn views_reject_the_corruption_corpus() {
    let ctx = CkksContext::new(tiny_params());
    let mut rng = rand::rngs::StdRng::seed_from_u64(16);
    let basis = ctx.chain_basis();
    let ct = Ciphertext::new(
        random_poly(basis, &mut rng),
        random_poly(basis, &mut rng),
        ctx.default_scale(),
    );
    let bytes = poseidon_wire::encode_ciphertext(&ctx, &ct);

    // Truncation at every boundary is a typed error, never a panic.
    for len in 0..bytes.len() {
        assert!(CiphertextView::parse(&ctx, &bytes[..len]).is_err());
    }
    // Bit flips are typed errors.
    for byte_idx in [0, 9, 10, 25, 80, bytes.len() - 1] {
        let mut corrupt = bytes.clone();
        corrupt[byte_idx] ^= 1;
        assert!(CiphertextView::parse(&ctx, &corrupt).is_err());
    }
    // Foreign context.
    let other = CkksContext::new(CkksParams::toy());
    assert!(matches!(
        CiphertextView::parse(&other, &bytes),
        Err(WireError::ContextMismatch(_))
    ));
    // Plaintext view refuses a ciphertext frame.
    assert!(matches!(
        PlaintextView::parse(&ctx, &bytes),
        Err(WireError::KindMismatch { .. })
    ));
}
