//! Round-trip bit-exactness: every object kind, across parameter presets
//! and every level of the modulus chain, must survive encode → decode →
//! re-encode with identical bytes and identical residues.

use he_ckks::cipher::{Ciphertext, Plaintext};
use he_ckks::context::CkksContext;
use he_ckks::keys::KeySet;
use he_ckks::params::CkksParams;
use he_rns::{Form, RnsBasis, RnsPoly};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Sub-toy parameters so exhaustive sweeps stay fast.
fn tiny_params() -> CkksParams {
    CkksParams {
        n: 16,
        first_prime_bits: 30,
        scale_prime_bits: 25,
        chain_len: 3,
        special_len: 1,
        special_prime_bits: 31,
        scale: (1u64 << 25) as f64,
        error_std: 3.2,
    }
}

/// A syntactically valid poly with pseudorandom residues (`< q_j`) — the
/// wire layer marshals residue matrices and never interprets them, so
/// random data exercises it as well as real ciphertexts do.
fn random_poly(basis: &RnsBasis, rng: &mut rand::rngs::StdRng) -> RnsPoly {
    let rows = basis
        .primes()
        .iter()
        .map(|&q| (0..basis.n()).map(|_| rng.gen_range(0..q)).collect())
        .collect();
    RnsPoly::from_residues(basis, rows, Form::Coeff)
}

#[test]
fn params_round_trip_all_presets() {
    for params in [
        tiny_params(),
        CkksParams::toy(),
        CkksParams::small(),
        CkksParams::paper_32bit(1 << 13, 6),
        CkksParams::bootstrap_demo(),
    ] {
        let bytes = poseidon_wire::encode_params(&params);
        let back = poseidon_wire::decode_params(&bytes).expect("valid frame");
        assert_eq!(back, params);
        assert_eq!(
            poseidon_wire::encode_params(&back),
            bytes,
            "re-encode drifted"
        );
        assert_eq!(
            poseidon_wire::peek_kind(&bytes).expect("peek"),
            poseidon_wire::Kind::Params
        );
    }
}

#[test]
fn ciphertext_round_trip_bit_exact_at_every_level() {
    for params in [tiny_params(), CkksParams::toy()] {
        let chain_len = params.chain_len;
        let ctx = CkksContext::new(params);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x11CE);
        for level in 0..chain_len {
            let basis = ctx.level_basis(level);
            let ct = Ciphertext::new(
                random_poly(&basis, &mut rng),
                random_poly(&basis, &mut rng),
                ctx.default_scale() * 1.5,
            );
            let bytes = poseidon_wire::encode_ciphertext(&ctx, &ct);
            let back = poseidon_wire::decode_ciphertext(&ctx, &bytes).expect("valid frame");
            assert_eq!(back.c0(), ct.c0(), "c0 drift at level {level}");
            assert_eq!(back.c1(), ct.c1(), "c1 drift at level {level}");
            assert_eq!(back.scale().to_bits(), ct.scale().to_bits());
            assert_eq!(back.level(), level);
            assert_eq!(poseidon_wire::encode_ciphertext(&ctx, &back), bytes);
        }
    }
}

#[test]
fn plaintext_round_trip_bit_exact_at_every_level() {
    let ctx = CkksContext::new(tiny_params());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x9147);
    for level in 0..ctx.chain_basis().len() {
        let basis = ctx.level_basis(level);
        let pt = Plaintext::new(random_poly(&basis, &mut rng), ctx.default_scale());
        let bytes = poseidon_wire::encode_plaintext(&ctx, &pt);
        let back = poseidon_wire::decode_plaintext(&ctx, &bytes).expect("valid frame");
        assert_eq!(back.poly(), pt.poly(), "residue drift at level {level}");
        assert_eq!(back.scale().to_bits(), pt.scale().to_bits());
        assert_eq!(poseidon_wire::encode_plaintext(&ctx, &back), bytes);
    }
}

#[test]
fn encrypted_ciphertext_survives_the_wire_and_decrypts() {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let keys = KeySet::generate(&ctx, &mut rng);
    let values: Vec<_> = (0..ctx.params().slots())
        .map(|i| he_ckks::encoding::Complex::new(i as f64 * 0.01, -(i as f64) * 0.02))
        .collect();
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), &values, ctx.default_scale()),
        ctx.default_scale(),
    );
    let ct = keys.public().encrypt(&pt, &mut rng);

    let bytes = poseidon_wire::encode_ciphertext(&ctx, &ct);
    let back = poseidon_wire::decode_ciphertext(&ctx, &bytes).expect("valid frame");
    let dec = keys.secret().decrypt(&back);
    let decoded = ctx
        .encoder()
        .decode_rns(dec.poly(), dec.scale(), values.len());
    for (got, want) in decoded.iter().zip(&values) {
        assert!((got.re - want.re).abs() < 1e-3 && (got.im - want.im).abs() < 1e-3);
    }
}

#[test]
fn keyswitch_key_round_trip_rebuilds_identical_eval_cache() {
    let ctx = CkksContext::new(tiny_params());
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let keys = KeySet::generate(&ctx, &mut rng);
    let bytes = poseidon_wire::encode_keyswitch_key(&ctx, keys.relin());
    let back = poseidon_wire::decode_keyswitch_key(&ctx, &bytes).expect("valid frame");
    assert_eq!(back.pairs(), keys.relin().pairs());
    assert_eq!(poseidon_wire::encode_keyswitch_key(&ctx, &back), bytes);
}

#[test]
fn keyset_round_trip_with_secret_is_bit_exact_and_functional() {
    let params = CkksParams::toy();
    let ctx = CkksContext::new(params);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xB007);
    let mut keys = KeySet::generate(&ctx, &mut rng);
    keys.add_rotation_keys([1, -2, 5], &mut rng);
    keys.add_conjugation_key(&mut rng);

    let bytes = poseidon_wire::encode_keyset(&ctx, &keys);
    let (ctx2, keys2) = poseidon_wire::decode_keyset(&bytes).expect("valid frame");
    assert_eq!(ctx2.params(), ctx.params());
    assert_eq!(ctx2.chain_basis().primes(), ctx.chain_basis().primes());
    assert_eq!(keys2.secret().coeffs(), keys.secret().coeffs());
    assert_eq!(keys2.relin().pairs(), keys.relin().pairs());
    assert_eq!(keys2.galois_entries().len(), keys.galois_entries().len());
    for ((g1, k1), (g2, k2)) in keys
        .galois_entries()
        .iter()
        .zip(keys2.galois_entries().iter())
    {
        assert_eq!(g1, g2);
        assert_eq!(k1.pairs(), k2.pairs());
    }
    // Deterministic bytes: the Galois map is a HashMap, but the wire order
    // is sorted, so re-encoding the decoded set reproduces the frame.
    assert_eq!(poseidon_wire::encode_keyset(&ctx2, &keys2), bytes);

    // The reconstituted keys still decrypt what the originals encrypt.
    let pt = Plaintext::new(
        ctx.encoder().encode_rns(
            ctx.chain_basis(),
            &[he_ckks::encoding::Complex::new(0.5, 0.25)],
            ctx.default_scale(),
        ),
        ctx.default_scale(),
    );
    let ct = keys.public().encrypt(&pt, &mut rng);
    let dec = keys2.secret().decrypt(&ct);
    let decoded = ctx2.encoder().decode_rns(dec.poly(), dec.scale(), 1);
    assert!((decoded[0].re - 0.5).abs() < 1e-3);
}

#[test]
fn public_keyset_omits_the_secret() {
    let ctx = CkksContext::new(tiny_params());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xCAFE);
    let mut keys = KeySet::generate(&ctx, &mut rng);
    keys.add_rotation_key(1, &mut rng);

    let public_bytes = poseidon_wire::encode_keyset_public(&ctx, &keys);
    let full_bytes = poseidon_wire::encode_keyset(&ctx, &keys);
    assert_eq!(
        full_bytes.len() - public_bytes.len(),
        ctx.n() * 8,
        "public frame should drop exactly the N secret coefficients"
    );
    let (_, pub_keys) = poseidon_wire::decode_keyset(&public_bytes).expect("valid frame");
    assert!(pub_keys.secret().coeffs().iter().all(|&c| c == 0));
    assert_eq!(pub_keys.relin().pairs(), keys.relin().pairs());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random residue matrices at random levels and scales round-trip
    /// word-for-word.
    #[test]
    fn prop_ciphertext_round_trip(seed in 0u64..1024, level in 0usize..3, scale_exp in 10u32..50) {
        let ctx = CkksContext::new(tiny_params());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let basis = ctx.level_basis(level);
        let ct = Ciphertext::new(
            random_poly(&basis, &mut rng),
            random_poly(&basis, &mut rng),
            (1u64 << scale_exp) as f64,
        );
        let bytes = poseidon_wire::encode_ciphertext(&ctx, &ct);
        let back = poseidon_wire::decode_ciphertext(&ctx, &bytes).expect("valid frame");
        prop_assert_eq!(back.c0(), ct.c0());
        prop_assert_eq!(back.c1(), ct.c1());
        prop_assert_eq!(back.scale().to_bits(), ct.scale().to_bits());
        prop_assert_eq!(poseidon_wire::encode_ciphertext(&ctx, &back), bytes);
    }
}
