//! Binary wire format for CKKS objects — the host↔accelerator marshalling
//! layer (paper §IV dataflow: ciphertexts and key material stream between
//! the host runtime and the accelerator's HBM-resident working set).
//!
//! Every frame is dependency-free, versioned, length-prefixed, and
//! checksummed:
//!
//! ```text
//! ┌──────────┬─────────┬──────┬───────┬─────────────┬─────────┬──────────┐
//! │ magic    │ version │ kind │ flags │ payload_len │ payload │ checksum │
//! │ 8 bytes  │ u16     │ u8   │ u8    │ u64         │ …       │ u64      │
//! └──────────┴─────────┴──────┴───────┴─────────────┴─────────┴──────────┘
//! ```
//!
//! All integers are little-endian; residues are explicit `u64` words;
//! floats travel as IEEE-754 bit patterns (`f64::to_bits`), so round trips
//! are bit-exact. The checksum is FNV-1a (reusing
//! [`he_rns::integrity::fnv1a_words`]) over everything after the magic —
//! version, kind, flags, length, and payload — so any single corrupted
//! bit in the frame is caught by a typed error.
//!
//! Each payload begins with the full [`CkksParams`] block. Contexts are
//! derived *deterministically* from their parameters
//! ([`CkksContext::try_new`] generates the prime chain), so the frame
//! never ships raw primes: decoders verify the encoded parameters against
//! the caller's context and reconstruct bases locally. [`decode_keyset`]
//! is the exception — it bootstraps a fresh context from the frame itself
//! (tenant provisioning).
//!
//! **Every decode path returns a typed [`WireError`]** — malformed,
//! truncated, checksum-mismatched, or version-skewed input must never
//! panic. Under the `faults` feature an armed
//! [`WireFrame`](poseidon_faults::FaultSite::WireFrame) plan corrupts a
//! copy of the incoming bytes at decode entry, modelling link corruption
//! the checksum has to catch.
//!
//! # Examples
//!
//! ```
//! use he_ckks::prelude::*;
//! use poseidon_wire::{decode_ciphertext, encode_ciphertext};
//!
//! let ctx = CkksContext::new(CkksParams::toy());
//! let mut rng = rand::thread_rng();
//! let keys = KeySet::generate(&ctx, &mut rng);
//! let pt = Plaintext::new(
//!     he_rns::RnsPoly::from_i64_coeffs(ctx.chain_basis(), &vec![0i64; ctx.n()]),
//!     ctx.default_scale(),
//! );
//! let ct = keys.public().encrypt(&pt, &mut rng);
//! let bytes = encode_ciphertext(&ctx, &ct);
//! let back = decode_ciphertext(&ctx, &bytes).unwrap();
//! assert_eq!(back.c0(), ct.c0());
//! ```

use std::fmt;

use he_ckks::cipher::{Ciphertext, Plaintext};
use he_ckks::context::CkksContext;
use he_ckks::keys::{KeySet, KeySwitchKey, PublicKey, SecretKey};
use he_ckks::params::CkksParams;
use he_rns::integrity::fnv1a_words;
use he_rns::{Form, RnsBasis, RnsPoly};

/// Telemetry scopes for frame marshalling (items = frame bytes).
#[cfg(feature = "telemetry")]
pub(crate) mod tel {
    use poseidon_telemetry::{Metric, Registry};
    use std::sync::{Arc, OnceLock};

    macro_rules! scope_fn {
        ($fn_name:ident, $scope:literal) => {
            pub fn $fn_name() -> &'static Arc<Metric> {
                static M: OnceLock<Arc<Metric>> = OnceLock::new();
                M.get_or_init(|| Registry::global().scope($scope))
            }
        };
    }

    scope_fn!(encode, "wire.encode");
    scope_fn!(decode, "wire.decode");
}

mod chunk;
mod codec;
mod pool;
mod view;

pub use chunk::{chunk_keyset, KeysetAssembler, KEYSET_CHUNK_BYTES, MAX_KEYSET_BYTES};
pub use codec::WireCodec;
pub use pool::BufferPool;
pub use view::{
    decode_ciphertext_pooled, decode_plaintext_pooled, CiphertextView, FrameView, PlaintextView,
};

/// Frame magic: the first eight bytes of every Poseidon wire frame.
pub const MAGIC: [u8; 8] = *b"PSDNWIRE";

/// The wire format version this build writes and accepts.
pub const VERSION: u16 = 1;

/// Header size in bytes (magic + version + kind + flags + payload length).
pub const HEADER_LEN: usize = 20;

/// Trailer size in bytes (the FNV-1a payload checksum).
pub const TRAILER_LEN: usize = 8;

/// KeySet frame flag bit: the frame carries the secret key coefficients.
pub const FLAG_HAS_SECRET: u8 = 1;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A bare [`CkksParams`] block.
    Params,
    /// A plaintext polynomial at some level.
    Plaintext,
    /// A two-component ciphertext at some level.
    Ciphertext,
    /// One keyswitching key (relinearisation or Galois).
    KeySwitchKey,
    /// A full key set (public + relin + Galois keys, secret optional).
    KeySet,
    /// One slice of a chunked [`Kind::KeySet`] frame (streamed
    /// provisioning; see [`chunk_keyset`] / [`KeysetAssembler`]).
    KeySetChunk,
}

impl Kind {
    fn code(self) -> u8 {
        match self {
            Kind::Params => 1,
            Kind::Plaintext => 2,
            Kind::Ciphertext => 3,
            Kind::KeySwitchKey => 4,
            Kind::KeySet => 5,
            Kind::KeySetChunk => 6,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(Kind::Params),
            2 => Some(Kind::Plaintext),
            3 => Some(Kind::Ciphertext),
            4 => Some(Kind::KeySwitchKey),
            5 => Some(Kind::KeySet),
            6 => Some(Kind::KeySetChunk),
            _ => None,
        }
    }
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Kind::Params => "params",
            Kind::Plaintext => "plaintext",
            Kind::Ciphertext => "ciphertext",
            Kind::KeySwitchKey => "keyswitch-key",
            Kind::KeySet => "keyset",
            Kind::KeySetChunk => "keyset-chunk",
        };
        f.write_str(s)
    }
}

/// Why a frame could not be decoded. Every variant is a graceful rejection
/// — no input, however malformed, panics the decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer ended before a field could be read.
    Truncated {
        /// Bytes the pending field still needed.
        needed: usize,
        /// Bytes actually left in the buffer.
        available: usize,
    },
    /// The first eight bytes are not [`MAGIC`].
    BadMagic,
    /// The frame was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the header.
        got: u16,
        /// Version this build supports.
        supported: u16,
    },
    /// The header kind byte is not a known [`Kind`].
    UnknownKind(u8),
    /// The frame decoded cleanly but is not the expected object kind.
    KindMismatch {
        /// Kind the caller asked for.
        expected: Kind,
        /// Kind the frame carries.
        got: Kind,
    },
    /// The buffer is longer than the header-declared frame.
    LengthMismatch {
        /// Total frame length the header declares.
        declared: u64,
        /// Bytes actually supplied.
        actual: u64,
    },
    /// The FNV-1a payload checksum does not match (corrupt frame).
    ChecksumMismatch {
        /// Checksum carried by the frame trailer.
        expected: u64,
        /// Checksum recomputed over the received payload.
        got: u64,
    },
    /// The frame's encoded parameters disagree with the caller's context.
    ContextMismatch(String),
    /// A structurally invalid payload (out-of-range residue, bad level,
    /// invalid parameters, trailing bytes, …).
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated frame: field needs {needed} bytes, {available} left"
                )
            }
            WireError::BadMagic => write!(f, "bad magic: not a Poseidon wire frame"),
            WireError::UnsupportedVersion { got, supported } => {
                write!(
                    f,
                    "unsupported wire version {got} (this build speaks {supported})"
                )
            }
            WireError::UnknownKind(code) => write!(f, "unknown frame kind {code}"),
            WireError::KindMismatch { expected, got } => {
                write!(f, "kind mismatch: expected {expected}, frame carries {got}")
            }
            WireError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "length mismatch: header declares {declared} bytes, got {actual}"
                )
            }
            WireError::ChecksumMismatch { expected, got } => {
                write!(
                    f,
                    "checksum mismatch: frame says {expected:#018x}, payload hashes to {got:#018x}"
                )
            }
            WireError::ContextMismatch(msg) => write!(f, "context mismatch: {msg}"),
            WireError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a checksum of a byte region, keyed with its length, via the
/// integrity layer's word hasher: bytes are packed into little-endian u64
/// words (zero-padded tail) behind a leading length word. Frames hash
/// everything between the magic and the trailer, so a flipped bit in any
/// header field or payload word surfaces as [`WireError::ChecksumMismatch`]
/// (when no earlier field check catches it first).
pub fn checksum(region: &[u8]) -> u64 {
    let mut words = Vec::with_capacity(2 + region.len() / 8);
    words.push(region.len() as u64);
    for chunk in region.chunks(8) {
        let mut b = [0u8; 8];
        b[..chunk.len()].copy_from_slice(chunk);
        words.push(u64::from_le_bytes(b));
    }
    fnv1a_words(&words)
}

// ---------------------------------------------------------------------------
// Fallible reader / writer primitives
// ---------------------------------------------------------------------------

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Rejects trailing bytes after the last expected field.
    pub(crate) fn finish(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Malformed(format!(
                "{} trailing payload bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

pub(crate) fn put_poly(out: &mut Vec<u8>, p: &RnsPoly) {
    assert_eq!(p.form(), Form::Coeff, "wire polys travel in coeff form");
    for row in p.all_residues() {
        for &w in row {
            put_u64(out, w);
        }
    }
}

/// Reads one residue matrix over `basis`, validating every word against
/// its prime before any `RnsPoly` is constructed (the constructor would
/// only debug-assert).
pub(crate) fn take_poly(r: &mut Reader<'_>, basis: &RnsBasis) -> Result<RnsPoly, WireError> {
    let n = basis.n();
    let mut rows = Vec::with_capacity(basis.len());
    for &q in basis.primes() {
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            let w = r.u64()?;
            if w >= q {
                return Err(WireError::Malformed(format!(
                    "residue {w} out of range for prime {q}"
                )));
            }
            row.push(w);
        }
        rows.push(row);
    }
    Ok(RnsPoly::from_residues(basis, rows, Form::Coeff))
}

pub(crate) fn put_params(out: &mut Vec<u8>, p: &CkksParams) {
    put_u64(out, p.n as u64);
    put_u64(out, u64::from(p.first_prime_bits));
    put_u64(out, u64::from(p.scale_prime_bits));
    put_u64(out, p.chain_len as u64);
    put_u64(out, p.special_len as u64);
    put_u64(out, u64::from(p.special_prime_bits));
    put_f64(out, p.scale);
    put_f64(out, p.error_std);
}

pub(crate) fn to_usize(v: u64, what: &str) -> Result<usize, WireError> {
    usize::try_from(v).map_err(|_| WireError::Malformed(format!("{what} exceeds address width")))
}

fn to_u32(v: u64, what: &str) -> Result<u32, WireError> {
    u32::try_from(v).map_err(|_| WireError::Malformed(format!("{what} out of range")))
}

pub(crate) fn take_params(r: &mut Reader<'_>) -> Result<CkksParams, WireError> {
    let params = CkksParams {
        n: to_usize(r.u64()?, "ring degree")?,
        first_prime_bits: to_u32(r.u64()?, "first prime bits")?,
        scale_prime_bits: to_u32(r.u64()?, "scale prime bits")?,
        chain_len: to_usize(r.u64()?, "chain length")?,
        special_len: to_usize(r.u64()?, "special length")?,
        special_prime_bits: to_u32(r.u64()?, "special prime bits")?,
        scale: r.f64()?,
        error_std: r.f64()?,
    };
    params
        .validate()
        .map_err(|msg| WireError::Malformed(format!("invalid parameters: {msg}")))?;
    Ok(params)
}

pub(crate) fn check_params(ctx: &CkksContext, r: &mut Reader<'_>) -> Result<(), WireError> {
    let params = take_params(r)?;
    if &params != ctx.params() {
        return Err(WireError::ContextMismatch(format!(
            "frame encoded for N={} chain_len={} special_len={}, \
             context has N={} chain_len={} special_len={}",
            params.n,
            params.chain_len,
            params.special_len,
            ctx.params().n,
            ctx.params().chain_len,
            ctx.params().special_len,
        )));
    }
    Ok(())
}

pub(crate) fn take_level(ctx: &CkksContext, r: &mut Reader<'_>) -> Result<usize, WireError> {
    let level = to_usize(r.u64()?, "level")?;
    if level >= ctx.chain_basis().len() {
        return Err(WireError::Malformed(format!(
            "level {level} exceeds chain of {} primes",
            ctx.chain_basis().len()
        )));
    }
    Ok(level)
}

pub(crate) fn take_scale(r: &mut Reader<'_>) -> Result<f64, WireError> {
    let scale = r.f64()?;
    if !scale.is_finite() || scale <= 0.0 {
        return Err(WireError::Malformed(format!("invalid scale {scale}")));
    }
    Ok(scale)
}

// ---------------------------------------------------------------------------
// Frame assembly / parsing
// ---------------------------------------------------------------------------

pub(crate) fn frame(kind: Kind, flags: u8, payload: Vec<u8>) -> Vec<u8> {
    #[cfg(feature = "telemetry")]
    let _span = tel::encode().span((HEADER_LEN + payload.len() + TRAILER_LEN) as u64);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(kind.code());
    out.push(flags);
    put_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    let sum = checksum(&out[MAGIC.len()..]);
    put_u64(&mut out, sum);
    out
}

/// Splits a frame into `(kind, flags, payload)`, verifying magic, version,
/// declared length, and checksum. The returned payload is unvalidated —
/// object decoders do field-level validation on top.
pub fn parse_frame(bytes: &[u8]) -> Result<(Kind, u8, &[u8]), WireError> {
    let mut r = Reader::new(bytes);
    let magic = r.take(8)?;
    if magic != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::from_le_bytes(r.take(2)?.try_into().expect("2-byte slice"));
    if version != VERSION {
        return Err(WireError::UnsupportedVersion {
            got: version,
            supported: VERSION,
        });
    }
    let kind_code = r.take(1)?[0];
    let kind = Kind::from_code(kind_code).ok_or(WireError::UnknownKind(kind_code))?;
    let flags = r.take(1)?[0];
    let payload_len = to_usize(r.u64()?, "payload length")?;
    let declared = (HEADER_LEN + payload_len + TRAILER_LEN) as u64;
    if (bytes.len() as u64) > declared {
        return Err(WireError::LengthMismatch {
            declared,
            actual: bytes.len() as u64,
        });
    }
    let payload = r.take(payload_len)?;
    let expected = r.u64()?;
    let got = checksum(&bytes[MAGIC.len()..HEADER_LEN + payload_len]);
    if expected != got {
        return Err(WireError::ChecksumMismatch { expected, got });
    }
    Ok((kind, flags, payload))
}

/// The kind of a frame, from its header alone (no checksum walk) — lets a
/// server dispatch before committing to a full decode.
pub fn peek_kind(bytes: &[u8]) -> Result<Kind, WireError> {
    let mut r = Reader::new(bytes);
    let magic = r.take(8)?;
    if magic != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::from_le_bytes(r.take(2)?.try_into().expect("2-byte slice"));
    if version != VERSION {
        return Err(WireError::UnsupportedVersion {
            got: version,
            supported: VERSION,
        });
    }
    let kind_code = r.take(1)?[0];
    Kind::from_code(kind_code).ok_or(WireError::UnknownKind(kind_code))
}

/// Runs a decoder body against the frame, with the corrupt-on-decode fault
/// hook applied first (a copy of the bytes is tampered, modelling link
/// corruption — the original buffer is never touched).
pub(crate) fn decode_with<T>(
    bytes: &[u8],
    want: Kind,
    f: impl FnOnce(u8, &[u8]) -> Result<T, WireError>,
) -> Result<T, WireError> {
    #[cfg(feature = "telemetry")]
    let _span = tel::decode().span(bytes.len() as u64);
    #[cfg(feature = "faults")]
    if poseidon_faults::armed() {
        let mut owned = bytes.to_vec();
        poseidon_faults::tamper_bytes(poseidon_faults::FaultSite::WireFrame, &mut owned);
        let (kind, flags, payload) = parse_frame(&owned)?;
        if kind != want {
            return Err(WireError::KindMismatch {
                expected: want,
                got: kind,
            });
        }
        return f(flags, payload);
    }
    let (kind, flags, payload) = parse_frame(bytes)?;
    if kind != want {
        return Err(WireError::KindMismatch {
            expected: want,
            got: kind,
        });
    }
    f(flags, payload)
}

// ---------------------------------------------------------------------------
// Params
// ---------------------------------------------------------------------------

/// Encodes a bare parameter block. Delegates to [`WireCodec`] (the
/// context argument is not needed for parameters).
pub fn encode_params(params: &CkksParams) -> Vec<u8> {
    codec::encode_params_frame(params)
}

/// Decodes a bare parameter block (validated, but no context is built).
///
/// # Errors
///
/// Any [`WireError`] on malformed/truncated/corrupt input.
pub fn decode_params(bytes: &[u8]) -> Result<CkksParams, WireError> {
    codec::decode_params_frame(bytes)
}

// ---------------------------------------------------------------------------
// Plaintext / Ciphertext
// ---------------------------------------------------------------------------

/// Encodes a plaintext at its level.
///
/// # Panics
///
/// Panics if the plaintext does not belong to `ctx` (level wider than the
/// chain) — encoding operates on trusted, locally-produced objects.
pub fn encode_plaintext(ctx: &CkksContext, pt: &Plaintext) -> Vec<u8> {
    pt.encode_frame(ctx)
}

/// Decodes a plaintext against `ctx`.
///
/// # Errors
///
/// [`WireError::ContextMismatch`] if the frame was encoded for different
/// parameters; any other [`WireError`] on malformed input.
pub fn decode_plaintext(ctx: &CkksContext, bytes: &[u8]) -> Result<Plaintext, WireError> {
    Plaintext::decode_frame(ctx, bytes)
}

/// Encodes a ciphertext at its level.
///
/// # Panics
///
/// Panics if the ciphertext does not belong to `ctx`.
pub fn encode_ciphertext(ctx: &CkksContext, ct: &Ciphertext) -> Vec<u8> {
    ct.encode_frame(ctx)
}

/// Decodes a ciphertext against `ctx`.
///
/// # Errors
///
/// [`WireError::ContextMismatch`] if the frame was encoded for different
/// parameters; any other [`WireError`] on malformed input.
pub fn decode_ciphertext(ctx: &CkksContext, bytes: &[u8]) -> Result<Ciphertext, WireError> {
    Ciphertext::decode_frame(ctx, bytes)
}

// ---------------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------------

pub(crate) fn put_ksk(out: &mut Vec<u8>, key: &KeySwitchKey) {
    put_u64(out, key.pairs().len() as u64);
    for (b, a) in key.pairs() {
        put_poly(out, b);
        put_poly(out, a);
    }
}

pub(crate) fn take_ksk(ctx: &CkksContext, r: &mut Reader<'_>) -> Result<KeySwitchKey, WireError> {
    let count = to_usize(r.u64()?, "key pair count")?;
    let chain_len = ctx.chain_basis().len();
    if count != chain_len {
        return Err(WireError::Malformed(format!(
            "keyswitch key has {count} digit pairs, chain needs {chain_len}"
        )));
    }
    let full = ctx.full_basis();
    let mut pairs = Vec::with_capacity(count);
    for _ in 0..count {
        let b = take_poly(r, full)?;
        let a = take_poly(r, full)?;
        pairs.push((b, a));
    }
    Ok(KeySwitchKey::from_pairs(pairs))
}

/// Encodes one keyswitching key (digit pairs over `Q ∪ P`, coeff form;
/// the eval-form cache is rebuilt on decode, bit-identically).
pub fn encode_keyswitch_key(ctx: &CkksContext, key: &KeySwitchKey) -> Vec<u8> {
    key.encode_frame(ctx)
}

/// Decodes one keyswitching key against `ctx`.
///
/// # Errors
///
/// [`WireError::ContextMismatch`] for foreign parameters; any other
/// [`WireError`] on malformed input.
pub fn decode_keyswitch_key(ctx: &CkksContext, bytes: &[u8]) -> Result<KeySwitchKey, WireError> {
    KeySwitchKey::decode_frame(ctx, bytes)
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

fn encode_keyset_inner(ctx: &CkksContext, keys: &KeySet, with_secret: bool) -> Vec<u8> {
    let mut payload = Vec::new();
    put_params(&mut payload, ctx.params());
    if with_secret {
        for &c in keys.secret().coeffs() {
            put_u64(&mut payload, zigzag(c));
        }
    }
    put_poly(&mut payload, keys.public().b());
    put_poly(&mut payload, keys.public().a());
    put_ksk(&mut payload, keys.relin());
    // Galois entries sorted by element: the backing map is unordered, and
    // the wire bytes must be deterministic for bit-exact re-encodes.
    let entries = keys.galois_entries();
    put_u64(&mut payload, entries.len() as u64);
    for (g, key) in entries {
        put_u64(&mut payload, g);
        put_ksk(&mut payload, key);
    }
    let flags = if with_secret { FLAG_HAS_SECRET } else { 0 };
    frame(Kind::KeySet, flags, payload)
}

/// Encodes a full key set *including the secret key* — for trusted
/// storage or tests. Servers should receive
/// [`encode_keyset_public`] frames instead.
pub fn encode_keyset(ctx: &CkksContext, keys: &KeySet) -> Vec<u8> {
    encode_keyset_inner(ctx, keys, true)
}

/// Encodes the evaluation-side key material only (public, relin, Galois) —
/// what a tenant registers with a serving front-end. The decoded set's
/// secret is all-zero and cannot decrypt.
pub fn encode_keyset_public(ctx: &CkksContext, keys: &KeySet) -> Vec<u8> {
    encode_keyset_inner(ctx, keys, false)
}

/// Decodes a key set, deriving a fresh context from the frame's parameter
/// block (tenant provisioning: the frame is self-contained).
///
/// # Errors
///
/// Any [`WireError`] on malformed input, including parameters the
/// deterministic prime generator rejects.
pub fn decode_keyset(bytes: &[u8]) -> Result<(CkksContext, KeySet), WireError> {
    decode_with(bytes, Kind::KeySet, |flags, payload| {
        let mut r = Reader::new(payload);
        let params = take_params(&mut r)?;
        let ctx = CkksContext::try_new(params)
            .map_err(|e| WireError::Malformed(format!("context derivation failed: {e}")))?;
        let n = ctx.n();
        let secret = if flags & FLAG_HAS_SECRET != 0 {
            let mut coeffs = Vec::with_capacity(n);
            for _ in 0..n {
                let c = unzigzag(r.u64()?);
                if c.abs() > 1 {
                    return Err(WireError::Malformed(format!(
                        "secret coefficient {c} is not ternary"
                    )));
                }
                coeffs.push(c);
            }
            SecretKey::from_coeffs(&ctx, coeffs)
        } else {
            SecretKey::from_coeffs(&ctx, vec![0i64; n])
        };
        let chain = ctx.chain_basis();
        let b = take_poly(&mut r, chain)?;
        let a = take_poly(&mut r, chain)?;
        let public = PublicKey::from_parts(&ctx, b, a);
        let relin = take_ksk(&ctx, &mut r)?;
        let count = to_usize(r.u64()?, "Galois key count")?;
        let two_n = 2 * n as u64;
        let mut galois = Vec::new();
        let mut prev: Option<u64> = None;
        for _ in 0..count {
            let g = r.u64()?;
            if g % 2 == 0 || g >= two_n {
                return Err(WireError::Malformed(format!(
                    "Galois element {g} is not an odd unit mod 2N"
                )));
            }
            if prev.is_some_and(|p| g <= p) {
                return Err(WireError::Malformed(
                    "Galois entries must be strictly ascending".into(),
                ));
            }
            prev = Some(g);
            galois.push((g, take_ksk(&ctx, &mut r)?));
        }
        r.finish()?;
        let keys = KeySet::from_parts(&ctx, secret, public, relin, galois);
        Ok((ctx, keys))
    })
}
