//! Borrowed, zero-copy views over wire frames.
//!
//! The classic decoders ([`crate::decode_ciphertext`]) walk the payload
//! through a [`Reader`] one `u64` at a time and push into fresh
//! allocations. A [`FrameView`] instead validates the header and checksum
//! **once**, and the typed views ([`CiphertextView`], [`PlaintextView`])
//! then check only the structure — params, level, scale, exact word
//! count — while leaving the residue words as borrowed byte regions.
//! [`CiphertextView::read_into`] finally bulk-converts those regions into
//! rows taken from a [`BufferPool`], so a hot serving path performs zero
//! transient allocations per request once the pool is warm.
//!
//! Validation strength is unchanged: every residue word is still
//! range-checked against its prime during `read_into`, exactly as
//! [`crate::take_poly`] does, before any `RnsPoly` is constructed.
//!
//! Under the `faults` feature, an armed tamper plan needs a mutable copy
//! of the bytes, so the pooled entry points fall back to the copying
//! decoders — correctness instrumentation beats the fast path.

use he_ckks::cipher::{Ciphertext, Plaintext};
use he_ckks::context::CkksContext;
use he_rns::{Form, RnsBasis, RnsPoly};

use crate::{
    check_params, parse_frame, take_level, take_scale, BufferPool, Kind, Reader, WireError,
};

/// A parsed frame envelope borrowing the input bytes: magic, version,
/// declared length, and checksum verified exactly once.
#[derive(Debug, Clone, Copy)]
pub struct FrameView<'a> {
    kind: Kind,
    flags: u8,
    payload: &'a [u8],
}

impl<'a> FrameView<'a> {
    /// Validates the envelope (magic, version, length, checksum) and
    /// borrows the payload.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] a malformed envelope produces.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, WireError> {
        let (kind, flags, payload) = parse_frame(bytes)?;
        Ok(Self {
            kind,
            flags,
            payload,
        })
    }

    /// The frame's object kind.
    #[inline]
    pub fn kind(&self) -> Kind {
        self.kind
    }

    /// The frame's flag byte.
    #[inline]
    pub fn flags(&self) -> u8 {
        self.flags
    }

    /// The checksum-verified payload bytes.
    #[inline]
    pub fn payload(&self) -> &'a [u8] {
        self.payload
    }

    /// Rejects any kind but `want`.
    pub fn expect_kind(&self, want: Kind) -> Result<(), WireError> {
        if self.kind != want {
            return Err(WireError::KindMismatch {
                expected: want,
                got: self.kind,
            });
        }
        Ok(())
    }
}

/// Structural prefix shared by plaintext and ciphertext payloads:
/// params (verified against `ctx`), level, scale — returning the reader
/// positioned at the first residue word.
fn object_prefix<'a>(
    ctx: &CkksContext,
    payload: &'a [u8],
) -> Result<(usize, f64, Reader<'a>), WireError> {
    let mut r = Reader::new(payload);
    check_params(ctx, &mut r)?;
    let level = take_level(ctx, &mut r)?;
    let scale = take_scale(&mut r)?;
    Ok((level, scale, r))
}

/// Bulk-converts one borrowed word region into residue rows over `basis`,
/// each row taken from `pool`, range-checking every word against its
/// prime. The region length is already known to be exact.
fn rows_from_words(
    words: &[u8],
    basis: &RnsBasis,
    pool: &BufferPool,
) -> Result<Vec<Vec<u64>>, WireError> {
    let n = basis.n();
    let mut rows = Vec::with_capacity(basis.len());
    for (i, &q) in basis.primes().iter().enumerate() {
        let mut row = pool.take(n);
        let region = &words[i * n * 8..(i + 1) * n * 8];
        for chunk in region.chunks_exact(8) {
            let w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            if w >= q {
                // Give the rows back before bailing — a corrupt frame
                // must not leak pool capacity.
                pool.put(row);
                for r in rows {
                    pool.put(r);
                }
                return Err(WireError::Malformed(format!(
                    "residue {w} out of range for prime {q}"
                )));
            }
            row.push(w);
        }
        rows.push(row);
    }
    Ok(rows)
}

/// A structurally validated ciphertext frame whose residue words are
/// still borrowed wire bytes.
#[derive(Debug, Clone, Copy)]
pub struct CiphertextView<'a> {
    level: usize,
    scale: f64,
    c0_words: &'a [u8],
    c1_words: &'a [u8],
}

impl<'a> CiphertextView<'a> {
    /// Validates a ciphertext frame against `ctx` down to (but not
    /// including) the per-word range checks.
    ///
    /// # Errors
    ///
    /// [`WireError::ContextMismatch`] for foreign parameters; any other
    /// [`WireError`] for a malformed envelope or structure.
    pub fn parse(ctx: &CkksContext, bytes: &'a [u8]) -> Result<Self, WireError> {
        let view = FrameView::parse(bytes)?;
        view.expect_kind(Kind::Ciphertext)?;
        let (level, scale, mut r) = object_prefix(ctx, view.payload())?;
        let row_bytes = (level + 1) * ctx.n() * 8;
        let c0_words = r.take(row_bytes)?;
        let c1_words = r.take(row_bytes)?;
        r.finish()?;
        Ok(Self {
            level,
            scale,
            c0_words,
            c1_words,
        })
    }

    /// The encoded level.
    #[inline]
    pub fn level(&self) -> usize {
        self.level
    }

    /// The encoded scale Δ.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Materialises the ciphertext, residue rows drawn from `pool`.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] if any residue word is out of range for
    /// its prime (rows taken so far are returned to the pool).
    pub fn read_into(&self, ctx: &CkksContext, pool: &BufferPool) -> Result<Ciphertext, WireError> {
        let basis = ctx.level_basis(self.level);
        let c0_rows = rows_from_words(self.c0_words, &basis, pool)?;
        let c1_rows = match rows_from_words(self.c1_words, &basis, pool) {
            Ok(rows) => rows,
            Err(e) => {
                // c0's rows are already out of the pool — hand them back
                // so a corrupt frame cannot bleed pool capacity.
                for row in c0_rows {
                    pool.put(row);
                }
                return Err(e);
            }
        };
        let c0 = RnsPoly::from_residues(&basis, c0_rows, Form::Coeff);
        let c1 = RnsPoly::from_residues(&basis, c1_rows, Form::Coeff);
        Ok(Ciphertext::new(c0, c1, self.scale))
    }
}

/// A structurally validated plaintext frame whose residue words are
/// still borrowed wire bytes.
#[derive(Debug, Clone, Copy)]
pub struct PlaintextView<'a> {
    level: usize,
    scale: f64,
    words: &'a [u8],
}

impl<'a> PlaintextView<'a> {
    /// Validates a plaintext frame against `ctx` down to (but not
    /// including) the per-word range checks.
    ///
    /// # Errors
    ///
    /// Same surface as [`CiphertextView::parse`].
    pub fn parse(ctx: &CkksContext, bytes: &'a [u8]) -> Result<Self, WireError> {
        let view = FrameView::parse(bytes)?;
        view.expect_kind(Kind::Plaintext)?;
        let (level, scale, mut r) = object_prefix(ctx, view.payload())?;
        let row_bytes = (level + 1) * ctx.n() * 8;
        let words = r.take(row_bytes)?;
        r.finish()?;
        Ok(Self {
            level,
            scale,
            words,
        })
    }

    /// The encoded level.
    #[inline]
    pub fn level(&self) -> usize {
        self.level
    }

    /// The encoded scale Δ.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Materialises the plaintext, residue rows drawn from `pool`.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] on out-of-range residues.
    pub fn read_into(&self, ctx: &CkksContext, pool: &BufferPool) -> Result<Plaintext, WireError> {
        let basis = ctx.level_basis(self.level);
        let poly = RnsPoly::from_residues(
            &basis,
            rows_from_words(self.words, &basis, pool)?,
            Form::Coeff,
        );
        Ok(Plaintext::new(poly, self.scale))
    }
}

/// One-shot pooled ciphertext decode: view parse + `read_into`.
///
/// Equivalent to [`crate::decode_ciphertext`] in result and validation
/// strength, but all residue rows come from `pool`. With the `faults`
/// feature armed this falls back to the copying decoder so the tamper
/// plan still fires.
///
/// # Errors
///
/// Same surface as [`crate::decode_ciphertext`].
pub fn decode_ciphertext_pooled(
    ctx: &CkksContext,
    bytes: &[u8],
    pool: &BufferPool,
) -> Result<Ciphertext, WireError> {
    #[cfg(feature = "telemetry")]
    let _span = crate::tel::decode().span(bytes.len() as u64);
    #[cfg(feature = "faults")]
    if poseidon_faults::armed() {
        let _ = pool;
        return crate::decode_ciphertext(ctx, bytes);
    }
    CiphertextView::parse(ctx, bytes)?.read_into(ctx, pool)
}

/// One-shot pooled plaintext decode: view parse + `read_into`.
///
/// # Errors
///
/// Same surface as [`crate::decode_plaintext`].
pub fn decode_plaintext_pooled(
    ctx: &CkksContext,
    bytes: &[u8],
    pool: &BufferPool,
) -> Result<Plaintext, WireError> {
    #[cfg(feature = "telemetry")]
    let _span = crate::tel::decode().span(bytes.len() as u64);
    #[cfg(feature = "faults")]
    if poseidon_faults::armed() {
        let _ = pool;
        return crate::decode_plaintext(ctx, bytes);
    }
    PlaintextView::parse(ctx, bytes)?.read_into(ctx, pool)
}
