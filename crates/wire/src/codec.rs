//! The [`WireCodec`] trait: one encode/decode surface for every framed
//! CKKS object.
//!
//! The crate grew up as free `encode_*`/`decode_*` function pairs; this
//! module unifies them behind a single trait so generic serving and
//! storage layers can marshal any object the same way:
//!
//! ```
//! use he_ckks::prelude::*;
//! use poseidon_wire::WireCodec;
//!
//! let ctx = CkksContext::new(CkksParams::toy());
//! let mut rng = rand::thread_rng();
//! let keys = KeySet::generate(&ctx, &mut rng);
//! let pt = Plaintext::new(
//!     he_rns::RnsPoly::from_i64_coeffs(ctx.chain_basis(), &vec![0i64; ctx.n()]),
//!     ctx.default_scale(),
//! );
//! let ct = keys.public().encrypt(&pt, &mut rng);
//! let bytes = ct.encode_frame(&ctx);
//! let back = Ciphertext::decode_frame(&ctx, &bytes).unwrap();
//! assert_eq!(back.c0(), ct.c0());
//! ```
//!
//! The historical free functions ([`crate::encode_ciphertext`] and
//! friends) are kept as thin delegates, so nothing downstream had to
//! move.

use he_ckks::cipher::{Ciphertext, Plaintext};
use he_ckks::context::CkksContext;
use he_ckks::keys::KeySwitchKey;
use he_ckks::params::CkksParams;

use crate::{
    check_params, decode_with, frame, put_f64, put_ksk, put_params, put_poly, put_u64, take_ksk,
    take_level, take_params, take_poly, take_scale, Kind, Reader, WireError,
};

/// A CKKS object that travels as one Poseidon wire frame.
///
/// `ctx` supplies the parameter block every payload embeds and the bases
/// residues are validated against; [`CkksParams`] itself ignores it (a
/// parameter block is self-describing).
pub trait WireCodec: Sized {
    /// The frame kind this object encodes as.
    const KIND: Kind;

    /// Encodes `self` into a versioned, checksummed frame.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `self` does not belong to `ctx`
    /// (encoding operates on trusted, locally produced objects).
    fn encode_frame(&self, ctx: &CkksContext) -> Vec<u8>;

    /// Decodes one frame against `ctx`.
    ///
    /// # Errors
    ///
    /// [`WireError::ContextMismatch`] if the frame was encoded for
    /// different parameters; any other [`WireError`] on malformed,
    /// truncated, or corrupt input.
    fn decode_frame(ctx: &CkksContext, bytes: &[u8]) -> Result<Self, WireError>;
}

impl WireCodec for CkksParams {
    const KIND: Kind = Kind::Params;

    fn encode_frame(&self, _ctx: &CkksContext) -> Vec<u8> {
        encode_params_frame(self)
    }

    fn decode_frame(_ctx: &CkksContext, bytes: &[u8]) -> Result<Self, WireError> {
        decode_params_frame(bytes)
    }
}

/// Context-free body of [`CkksParams::encode_frame`] (also backs the free
/// [`crate::encode_params`], which has no context to hand).
pub(crate) fn encode_params_frame(params: &CkksParams) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    put_params(&mut payload, params);
    frame(Kind::Params, 0, payload)
}

/// Context-free body of [`CkksParams::decode_frame`].
pub(crate) fn decode_params_frame(bytes: &[u8]) -> Result<CkksParams, WireError> {
    decode_with(bytes, Kind::Params, |_flags, payload| {
        let mut r = Reader::new(payload);
        let params = take_params(&mut r)?;
        r.finish()?;
        Ok(params)
    })
}

impl WireCodec for Plaintext {
    const KIND: Kind = Kind::Plaintext;

    fn encode_frame(&self, ctx: &CkksContext) -> Vec<u8> {
        let level = self.poly().level_count() - 1;
        assert!(level < ctx.chain_basis().len(), "plaintext outside context");
        let mut payload = Vec::with_capacity(64 + 16 + self.poly().level_count() * ctx.n() * 8);
        put_params(&mut payload, ctx.params());
        put_u64(&mut payload, level as u64);
        put_f64(&mut payload, self.scale());
        put_poly(&mut payload, self.poly());
        frame(Kind::Plaintext, 0, payload)
    }

    fn decode_frame(ctx: &CkksContext, bytes: &[u8]) -> Result<Self, WireError> {
        decode_with(bytes, Kind::Plaintext, |_flags, payload| {
            let mut r = Reader::new(payload);
            check_params(ctx, &mut r)?;
            let level = take_level(ctx, &mut r)?;
            let scale = take_scale(&mut r)?;
            let basis = ctx.level_basis(level);
            let poly = take_poly(&mut r, &basis)?;
            r.finish()?;
            Ok(Plaintext::new(poly, scale))
        })
    }
}

impl WireCodec for Ciphertext {
    const KIND: Kind = Kind::Ciphertext;

    fn encode_frame(&self, ctx: &CkksContext) -> Vec<u8> {
        assert!(
            self.level() < ctx.chain_basis().len(),
            "ciphertext outside context"
        );
        let mut payload = Vec::with_capacity(64 + 16 + 2 * (self.level() + 1) * ctx.n() * 8);
        put_params(&mut payload, ctx.params());
        put_u64(&mut payload, self.level() as u64);
        put_f64(&mut payload, self.scale());
        put_poly(&mut payload, self.c0());
        put_poly(&mut payload, self.c1());
        frame(Kind::Ciphertext, 0, payload)
    }

    fn decode_frame(ctx: &CkksContext, bytes: &[u8]) -> Result<Self, WireError> {
        decode_with(bytes, Kind::Ciphertext, |_flags, payload| {
            let mut r = Reader::new(payload);
            check_params(ctx, &mut r)?;
            let level = take_level(ctx, &mut r)?;
            let scale = take_scale(&mut r)?;
            let basis = ctx.level_basis(level);
            let c0 = take_poly(&mut r, &basis)?;
            let c1 = take_poly(&mut r, &basis)?;
            r.finish()?;
            Ok(Ciphertext::new(c0, c1, scale))
        })
    }
}

impl WireCodec for KeySwitchKey {
    const KIND: Kind = Kind::KeySwitchKey;

    fn encode_frame(&self, ctx: &CkksContext) -> Vec<u8> {
        let full_rows = ctx.full_basis().len();
        let mut payload =
            Vec::with_capacity(64 + 8 + self.pairs().len() * 2 * full_rows * ctx.n() * 8);
        put_params(&mut payload, ctx.params());
        put_ksk(&mut payload, self);
        frame(Kind::KeySwitchKey, 0, payload)
    }

    fn decode_frame(ctx: &CkksContext, bytes: &[u8]) -> Result<Self, WireError> {
        decode_with(bytes, Kind::KeySwitchKey, |_flags, payload| {
            let mut r = Reader::new(payload);
            check_params(ctx, &mut r)?;
            let key = take_ksk(ctx, &mut r)?;
            r.finish()?;
            Ok(key)
        })
    }
}
