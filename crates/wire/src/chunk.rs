//! Chunked keyset streaming.
//!
//! A public keyset frame at paper-scale parameters is ~12 MB (see
//! BENCH_serve.json) while ciphertext frames are ~256 KB; pushing the
//! whole keyset as one wire message forces every transport buffer on the
//! path to that worst case. [`chunk_keyset`] slices an encoded
//! [`Kind::KeySet`](crate::Kind::KeySet) frame into a stream of small
//! [`Kind::KeySetChunk`](crate::Kind::KeySetChunk) frames, each
//! independently checksummed; a [`KeysetAssembler`] on the receiving side
//! re-assembles them in order and hands back the original keyset frame,
//! bit-identical, ready for [`crate::decode_keyset`].
//!
//! Chunk payload layout (after the standard frame header):
//!
//! ```text
//! index u64 | total_chunks u64 | total_len u64 | data …
//! ```
//!
//! The assembler enforces sequential indices, consistent totals across
//! chunks, and the [`MAX_KEYSET_BYTES`] cap before reserving any memory,
//! so a hostile `total_len` cannot trigger a huge pre-allocation.

use crate::{decode_with, frame, put_u64, to_usize, Kind, Reader, WireError};

/// Default chunk data size (1 MiB): large enough that a 12 MB keyset is
/// ~12 messages, small enough to interleave with ciphertext traffic.
pub const KEYSET_CHUNK_BYTES: usize = 1 << 20;

/// Upper bound on an assembled keyset frame (64 MiB) — a provisioning
/// DoS guard, matching the serving tier's max frame size.
pub const MAX_KEYSET_BYTES: usize = 64 << 20;

/// Slices an encoded keyset frame into a sequence of chunk frames, each
/// carrying at most `chunk_bytes` of data.
///
/// # Panics
///
/// Panics if `chunk_bytes` is zero or `keyset_frame` is empty or larger
/// than [`MAX_KEYSET_BYTES`] (both are local usage errors, not wire
/// input).
pub fn chunk_keyset(keyset_frame: &[u8], chunk_bytes: usize) -> Vec<Vec<u8>> {
    assert!(chunk_bytes > 0, "chunk size must be positive");
    assert!(!keyset_frame.is_empty(), "cannot chunk an empty frame");
    assert!(
        keyset_frame.len() <= MAX_KEYSET_BYTES,
        "keyset frame exceeds MAX_KEYSET_BYTES"
    );
    let total_chunks = keyset_frame.len().div_ceil(chunk_bytes);
    keyset_frame
        .chunks(chunk_bytes)
        .enumerate()
        .map(|(index, data)| {
            let mut payload = Vec::with_capacity(24 + data.len());
            put_u64(&mut payload, index as u64);
            put_u64(&mut payload, total_chunks as u64);
            put_u64(&mut payload, keyset_frame.len() as u64);
            payload.extend_from_slice(data);
            frame(Kind::KeySetChunk, 0, payload)
        })
        .collect()
}

/// Reassembles a chunked keyset stream.
///
/// Feed each incoming chunk frame to [`accept`](Self::accept); it
/// returns `Ok(Some(frame))` with the reassembled keyset frame when the
/// final chunk lands. Any protocol violation (gap, duplicate,
/// inconsistent totals, oversized target) is a typed error, after which
/// the assembler resets so the peer can retry from chunk zero.
#[derive(Debug, Default)]
pub struct KeysetAssembler {
    buf: Vec<u8>,
    total_chunks: u64,
    total_len: usize,
    next_index: u64,
}

impl KeysetAssembler {
    /// A fresh assembler expecting chunk zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Chunks received so far in the current stream.
    pub fn received(&self) -> u64 {
        self.next_index
    }

    /// Drops any partial stream and waits for chunk zero again.
    pub fn reset(&mut self) {
        *self = Self::new();
    }

    /// Accepts one chunk frame; returns the reassembled keyset frame
    /// bytes once the last chunk has arrived.
    ///
    /// # Errors
    ///
    /// Any envelope [`WireError`], or [`WireError::Malformed`] for
    /// out-of-order indices, totals that disagree with earlier chunks,
    /// or a declared size beyond [`MAX_KEYSET_BYTES`]. Errors reset the
    /// assembler.
    pub fn accept(&mut self, chunk_frame: &[u8]) -> Result<Option<Vec<u8>>, WireError> {
        let result = self.accept_inner(chunk_frame);
        if result.is_err() {
            self.reset();
        }
        result
    }

    fn accept_inner(&mut self, chunk_frame: &[u8]) -> Result<Option<Vec<u8>>, WireError> {
        decode_with(chunk_frame, Kind::KeySetChunk, |_flags, payload| {
            let mut r = Reader::new(payload);
            let index = r.u64()?;
            let total_chunks = r.u64()?;
            let total_len = to_usize(r.u64()?, "keyset total length")?;
            let data = r.take(r.remaining())?;

            if total_len == 0 || total_len > MAX_KEYSET_BYTES {
                return Err(WireError::Malformed(format!(
                    "declared keyset size {total_len} outside (0, {MAX_KEYSET_BYTES}]"
                )));
            }
            if total_chunks == 0 || index >= total_chunks {
                return Err(WireError::Malformed(format!(
                    "chunk index {index} outside stream of {total_chunks}"
                )));
            }
            if index != self.next_index {
                return Err(WireError::Malformed(format!(
                    "chunk {index} arrived, expected {}",
                    self.next_index
                )));
            }
            if index == 0 {
                self.total_chunks = total_chunks;
                self.total_len = total_len;
                self.buf = Vec::with_capacity(total_len.min(MAX_KEYSET_BYTES));
            } else if total_chunks != self.total_chunks || total_len != self.total_len {
                return Err(WireError::Malformed(format!(
                    "chunk {index} declares {total_chunks} chunks / {total_len} bytes, \
                     stream started with {} / {}",
                    self.total_chunks, self.total_len
                )));
            }
            if self.buf.len() + data.len() > self.total_len {
                return Err(WireError::Malformed(format!(
                    "chunk {index} overflows declared keyset size {}",
                    self.total_len
                )));
            }
            self.buf.extend_from_slice(data);
            self.next_index += 1;

            if self.next_index == self.total_chunks {
                if self.buf.len() != self.total_len {
                    return Err(WireError::Malformed(format!(
                        "stream ended with {} bytes, declared {}",
                        self.buf.len(),
                        self.total_len
                    )));
                }
                let frame = std::mem::take(&mut self.buf);
                self.next_index = 0;
                self.total_chunks = 0;
                self.total_len = 0;
                Ok(Some(frame))
            } else {
                Ok(None)
            }
        })
    }
}
