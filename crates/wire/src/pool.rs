//! Reusable residue-row scratch buffers for zero-copy decoding.
//!
//! [`crate::decode_ciphertext_pooled`] fills one `Vec<u64>` per RNS limb;
//! at serving rates that is thousands of short-lived multi-KiB
//! allocations per second. A [`BufferPool`] keeps a bounded free list of
//! such rows so the steady state allocates nothing: decoders take rows
//! out, and the dispatcher puts the rows of consumed operands back via
//! [`BufferPool::recycle_ciphertext`].
//!
//! The pool is a plain `Mutex<Vec<_>>` — take/put are two pointer moves
//! under an uncontended lock, far cheaper than the page-touching `malloc`
//! they replace, and safe to share across dispatcher shards.

use std::sync::Mutex;

use he_ckks::cipher::Ciphertext;
use he_rns::RnsPoly;

/// A bounded free list of `Vec<u64>` residue rows.
#[derive(Debug)]
pub struct BufferPool {
    free: Mutex<Vec<Vec<u64>>>,
    max_buffers: usize,
}

impl BufferPool {
    /// An empty pool retaining at most `max_buffers` free rows; excess
    /// [`put`](Self::put)s fall through to the allocator.
    pub fn new(max_buffers: usize) -> Self {
        Self {
            free: Mutex::new(Vec::new()),
            max_buffers,
        }
    }

    /// Takes one cleared row with at least `capacity_hint` capacity
    /// (allocating fresh only when the pool is empty).
    pub fn take(&self, capacity_hint: usize) -> Vec<u64> {
        let recycled = self.free.lock().expect("buffer pool poisoned").pop();
        match recycled {
            Some(mut row) => {
                row.clear();
                row.reserve(capacity_hint);
                row
            }
            None => Vec::with_capacity(capacity_hint),
        }
    }

    /// Returns one row to the free list (dropped if the pool is full).
    pub fn put(&self, row: Vec<u64>) {
        if row.capacity() == 0 {
            return;
        }
        let mut free = self.free.lock().expect("buffer pool poisoned");
        if free.len() < self.max_buffers {
            free.push(row);
        }
    }

    /// Recycles every residue row of a consumed polynomial.
    pub fn recycle_poly(&self, poly: RnsPoly) {
        for row in poly.into_residues() {
            self.put(row);
        }
    }

    /// Recycles both component polynomials of a consumed ciphertext —
    /// the natural call after an evaluator has produced its output and
    /// the request operand is dead.
    pub fn recycle_ciphertext(&self, ct: Ciphertext) {
        let (c0, c1, _scale) = ct.into_parts();
        self.recycle_poly(c0);
        self.recycle_poly(c1);
    }

    /// Rows currently sitting on the free list.
    pub fn len(&self) -> usize {
        self.free.lock().expect("buffer pool poisoned").len()
    }

    /// Whether the free list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_round_trip_reuses_capacity() {
        let pool = BufferPool::new(4);
        let mut row = pool.take(128);
        row.extend_from_slice(&[1, 2, 3]);
        let cap = row.capacity();
        pool.put(row);
        assert_eq!(pool.len(), 1);
        let row = pool.take(16);
        assert!(row.is_empty(), "recycled rows come back cleared");
        assert!(row.capacity() >= cap.min(16));
        assert_eq!(pool.len(), 0);
    }

    #[test]
    fn bounded_at_max_buffers() {
        let pool = BufferPool::new(2);
        for _ in 0..5 {
            pool.put(Vec::with_capacity(8));
        }
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn zero_capacity_rows_are_not_retained() {
        let pool = BufferPool::new(4);
        pool.put(Vec::new());
        assert!(pool.is_empty());
    }
}
