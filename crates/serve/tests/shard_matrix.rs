//! Sharded dispatch correctness: bit-identity against the
//! single-dispatcher baseline across a shard × client-thread matrix,
//! strict global admission control under concurrent submission, and
//! work stealing that never corrupts or misroutes results.

use std::sync::Arc;

use he_ckks::cipher::{Ciphertext, Plaintext};
use he_ckks::context::CkksContext;
use he_ckks::encoding::Complex;
use he_ckks::eval::Evaluator;
use he_ckks::keys::KeySet;
use he_ckks::params::CkksParams;
use poseidon_serve::{EvalService, Request, ServeError, ServiceConfig};
use rand::SeedableRng;

fn setup(seed: u64) -> (CkksContext, KeySet, rand::rngs::StdRng) {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut keys = KeySet::generate(&ctx, &mut rng);
    keys.add_rotation_keys([1, 2], &mut rng);
    (ctx, keys, rng)
}

fn encrypt(
    ctx: &CkksContext,
    keys: &KeySet,
    rng: &mut rand::rngs::StdRng,
    values: &[Complex],
) -> Ciphertext {
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), values, ctx.default_scale()),
        ctx.default_scale(),
    );
    keys.public().encrypt(&pt, rng)
}

fn assert_same(got: &Ciphertext, want: &Ciphertext) {
    assert_eq!(got.c0(), want.c0());
    assert_eq!(got.c1(), want.c1());
    assert_eq!(got.scale().to_bits(), want.scale().to_bits());
}

/// Every (shards, client threads) cell must produce the same bits as a
/// local evaluator — shard affinity and stealing are scheduling-only.
#[test]
fn sharded_matches_single_dispatcher_across_the_matrix() {
    let (ctx, keys, mut rng) = setup(0x5A4D);
    let eval = Evaluator::new(&ctx);
    let tenants = ["acme", "globex", "initech"];

    // Per tenant: two operands and the locally evaluated references.
    let mut work: Vec<(&str, Vec<(Request, Ciphertext)>)> = Vec::new();
    for tenant in tenants {
        let a = encrypt(
            &ctx,
            &keys,
            &mut rng,
            &[Complex::new(0.5, 0.0), Complex::new(-0.25, 0.125)],
        );
        let b = encrypt(
            &ctx,
            &keys,
            &mut rng,
            &[Complex::new(0.125, -0.5), Complex::new(1.0, 0.0)],
        );
        let cases = vec![
            (
                Request::Add {
                    a: a.clone(),
                    b: b.clone(),
                },
                eval.add(&a, &b),
            ),
            (
                Request::Mul {
                    a: a.clone(),
                    b: b.clone(),
                },
                eval.mul(&a, &b, &keys),
            ),
            (
                Request::Rotate {
                    a: a.clone(),
                    steps: 1,
                },
                eval.rotate(&a, 1, &keys),
            ),
            (
                Request::Rotate {
                    a: a.clone(),
                    steps: 2,
                },
                eval.rotate(&a, 2, &keys),
            ),
        ];
        work.push((tenant, cases));
    }
    let work = Arc::new(work);

    for shards in [1usize, 2, 4] {
        for threads in [1usize, 4] {
            let service = EvalService::start(ServiceConfig {
                shards,
                ..ServiceConfig::default()
            });
            assert_eq!(service.shards(), shards);
            for tenant in tenants {
                service.register_tenant(tenant, ctx.clone(), keys.clone());
            }
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let service = Arc::clone(&service);
                    let work = Arc::clone(&work);
                    std::thread::spawn(move || {
                        for (i, (tenant, cases)) in work.iter().enumerate() {
                            if i % threads != t {
                                continue;
                            }
                            for (request, want) in cases {
                                let got = service
                                    .call(tenant, request.clone())
                                    .expect("served op failed");
                                assert_same(&got, want);
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("client thread panicked");
            }
        }
    }
}

/// Admission control is one global bound across shards, and it holds
/// under concurrent submission: exactly `capacity` submissions win.
#[test]
fn concurrent_submission_respects_the_global_bound() {
    let (ctx, keys, mut rng) = setup(0xCAFE);
    let ct = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.5, 0.0)]);
    let service = EvalService::start(ServiceConfig {
        queue_capacity: 4,
        shards: 2,
        ..ServiceConfig::default()
    });
    service.register_tenant("acme", ctx, keys);

    service.suspend();
    let (tx, rx) = std::sync::mpsc::channel();
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let service = Arc::clone(&service);
            let ct = ct.clone();
            let tx = tx.clone();
            std::thread::spawn(move || {
                let outcome = service.submit("acme", Request::Square { a: ct });
                tx.send(outcome).expect("result channel");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("submitter panicked");
    }
    drop(tx);

    let mut tickets = Vec::new();
    let mut rejected = 0;
    for outcome in rx {
        match outcome {
            Ok(ticket) => tickets.push(ticket),
            Err(e) => {
                assert_eq!(
                    e,
                    ServeError::QueueFull {
                        depth: 4,
                        capacity: 4
                    }
                );
                rejected += 1;
            }
        }
    }
    assert_eq!(tickets.len(), 4, "exactly capacity submissions admitted");
    assert_eq!(rejected, 4);

    service.resume();
    for ticket in tickets {
        ticket.wait().expect("admitted job served");
    }
}

/// A hot shard (one tenant, tiny batches) gets drained by the sibling
/// worker via back-stealing — and every result is still bit-identical.
#[test]
fn work_stealing_drains_a_hot_shard_without_corrupting_results() {
    let (ctx, keys, mut rng) = setup(0xBEEF);
    let eval = Evaluator::new(&ctx);
    // max_batch 1 ⇒ any backlog > 1 is steal-eligible, so the second
    // worker must participate; correctness must not depend on which
    // worker ran which job.
    let service = EvalService::start(ServiceConfig {
        shards: 2,
        max_batch: 1,
        ..ServiceConfig::default()
    });
    service.register_tenant("acme", ctx.clone(), keys.clone());

    let cases: Vec<(Ciphertext, Ciphertext)> = (0..8)
        .map(|i| {
            let ct = encrypt(
                &ctx,
                &keys,
                &mut rng,
                &[Complex::new(0.1 * f64::from(i), -0.05)],
            );
            let want = eval.square(&ct, &keys);
            (ct, want)
        })
        .collect();

    service.suspend();
    let tickets: Vec<_> = cases
        .iter()
        .map(|(ct, _)| {
            service
                .submit("acme", Request::Square { a: ct.clone() })
                .expect("submit")
        })
        .collect();
    assert_eq!(service.queue_depth(), 8);
    service.resume();

    for (ticket, (_, want)) in tickets.into_iter().zip(&cases) {
        let got = ticket.wait().expect("stolen or owned job served");
        assert_same(&got, want);
    }
}
