//! Faults-gated chaos scenarios: every injected failure — worker
//! panics and stalls, socket disconnects, corruption, and mid-frame
//! stalls — must resolve as a bit-identical success (after retry or
//! failover) or a typed [`ServeError`]. No hangs, no lost replies, no
//! escaped panics.

#![cfg(feature = "faults")]

use std::sync::Arc;
use std::time::{Duration, Instant};

use he_ckks::cipher::Plaintext;
use he_ckks::context::CkksContext;
use he_ckks::encoding::Complex;
use he_ckks::keys::KeySet;
use he_ckks::params::CkksParams;
use poseidon_faults::{FaultKind, FaultPlan, FaultSite};
use poseidon_serve::tcp::{self, Op, ResilientClient, RetryPolicy, SocketConfig};
use poseidon_serve::{EvalService, Request, ServeError, ServiceConfig};
use rand::SeedableRng;

fn setup() -> (CkksContext, KeySet, rand::rngs::StdRng) {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xCA05);
    let keys = KeySet::generate(&ctx, &mut rng);
    (ctx, keys, rng)
}

fn encrypt(
    ctx: &CkksContext,
    keys: &KeySet,
    rng: &mut rand::rngs::StdRng,
    values: &[Complex],
) -> he_ckks::cipher::Ciphertext {
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), values, ctx.default_scale()),
        ctx.default_scale(),
    );
    keys.public().encrypt(&pt, rng)
}

/// Drives manual watchdog scans until the victim shard's worker is
/// replaced; panics if detection never happens (a hang would otherwise
/// be silent).
fn scan_until_restarted(service: &EvalService, shard: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.worker_epoch(shard) == 0 {
        assert!(
            Instant::now() < deadline,
            "watchdog never detected the dead/stalled worker"
        );
        service.watchdog_scan();
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// An injected worker panic is contained: the held job resolves with a
/// typed `Internal` error (the reply drop guard), queued jobs survive
/// the failover, and the respawned worker serves them bit-identically.
#[test]
fn worker_panic_is_contained_and_watchdog_restarts_the_shard() {
    let _guard = poseidon_faults::test_lock();
    let (ctx, keys, mut rng) = setup();
    let ct = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.5, 0.0)]);
    let service = EvalService::start(ServiceConfig {
        shards: 1,
        max_batch: 1,
        watchdog_interval_ms: 0, // manual scans: deterministic detection
        ..ServiceConfig::default()
    });
    service.register_tenant("acme", ctx.clone(), keys.clone());
    let expected = service
        .call("acme", Request::Rescale { a: ct.clone() })
        .expect("unfaulted baseline");

    service.suspend();
    let victim_job = service
        .submit("acme", Request::Rescale { a: ct.clone() })
        .expect("first");
    let survivors: Vec<_> = (0..2)
        .map(|_| {
            service
                .submit("acme", Request::Rescale { a: ct.clone() })
                .expect("queued behind the victim")
        })
        .collect();
    poseidon_faults::arm(FaultPlan::transient(
        FaultSite::ShardWorker,
        FaultKind::Panic,
        0x9A1C,
    ));
    service.resume();

    // The held job dies with the worker — typed, not lost.
    match victim_job.wait() {
        Err(ServeError::Internal(msg)) => {
            assert!(msg.contains("worker died"), "unexpected message: {msg}")
        }
        other => panic!("expected a contained panic, got {other:?}"),
    }
    assert_eq!(poseidon_faults::fired(), 1, "the panic fault fired once");
    scan_until_restarted(&service, 0);
    poseidon_faults::disarm();

    for t in survivors {
        let got = t.wait().expect("survivor served by the respawned worker");
        assert_eq!(got.c0(), expected.c0(), "failover changed the bytes");
        assert_eq!(got.c1(), expected.c1(), "failover changed the bytes");
    }
    // The replacement keeps serving fresh traffic.
    let after = service
        .call("acme", Request::Rescale { a: ct })
        .expect("post-restart request");
    assert_eq!(after.c0(), expected.c0());
    service.shutdown();
}

/// A stalled worker trips the busy-since watchdog: its shard is retired
/// and queued work completes on the replacement long before the zombie
/// wakes. The job the zombie holds is failed *by the watchdog* with a
/// typed `Internal` at replacement — its waiter does not sleep out the
/// stall (which in a real wedge could be forever), and the zombie's
/// late answer is dropped, never double-delivered.
#[test]
fn stalled_worker_fails_over_before_the_stall_ends() {
    let _guard = poseidon_faults::test_lock();
    let (ctx, keys, mut rng) = setup();
    let ct = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.25, 0.0)]);
    let service = EvalService::start(ServiceConfig {
        shards: 1,
        max_batch: 1,
        watchdog_interval_ms: 0,
        stall_timeout_ms: 50,
        ..ServiceConfig::default()
    });
    service.register_tenant("acme", ctx, keys);

    service.suspend();
    let stalled_job = service
        .submit("acme", Request::Rescale { a: ct.clone() })
        .expect("first");
    let queued_job = service
        .submit("acme", Request::Rescale { a: ct.clone() })
        .expect("second");
    poseidon_faults::arm(FaultPlan::transient(
        FaultSite::ShardWorker,
        FaultKind::Stall(1_500),
        0x57A1,
    ));
    service.resume();

    // Wait for the worker to grab the first job and enter the stall.
    let grab_deadline = Instant::now() + Duration::from_secs(5);
    while service.queue_depth() > 1 {
        assert!(Instant::now() < grab_deadline, "worker never took the job");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        service.worker_in_flight(0),
        1,
        "the grabbed job must be parked in the in-flight table"
    );
    std::thread::sleep(Duration::from_millis(100)); // past stall_timeout_ms
    let t0 = Instant::now();
    scan_until_restarted(&service, 0);

    // The held job is answered by the watchdog, typed and promptly —
    // not by the zombie 1.5 s from now.
    match stalled_job
        .wait_timeout(Duration::from_millis(1_000))
        .expect("watchdog must fail the wedged worker's held job")
    {
        Err(ServeError::Internal(msg)) => {
            assert!(msg.contains("stalled"), "unexpected message: {msg}")
        }
        other => panic!("expected the watchdog's typed Internal, got {other:?}"),
    }
    assert_eq!(service.worker_in_flight(0), 0, "no reply left parked");
    queued_job
        .wait_timeout(Duration::from_millis(1_000))
        .expect("queued job must complete on the replacement, not wait out the stall")
        .expect("rescale succeeds");
    assert!(
        t0.elapsed() < Duration::from_millis(1_200),
        "failover did not beat the stall"
    );
    // Let the zombie wake mid-shutdown-free window: its late send must
    // find an empty slot and be dropped, not panic or double-answer.
    std::thread::sleep(Duration::from_millis(1_600));
    poseidon_faults::disarm();
    service.shutdown();
}

/// With multiple shards, a dead shard's backlog drains through the
/// surviving sibling (steal or watchdog requeue) — nothing is lost and
/// the bytes match the unfaulted run.
#[test]
fn dead_shard_backlog_drains_through_the_survivor() {
    let _guard = poseidon_faults::test_lock();
    let (ctx, keys, mut rng) = setup();
    let ct = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.75, 0.0)]);
    let service = EvalService::start(ServiceConfig {
        shards: 2,
        max_batch: 1,
        watchdog_interval_ms: 0,
        ..ServiceConfig::default()
    });
    service.register_tenant("acme", ctx, keys);
    let home = service.shard_of("acme");
    let expected = service
        .call("acme", Request::Rescale { a: ct.clone() })
        .expect("unfaulted baseline");

    service.suspend();
    let victim_job = service
        .submit("acme", Request::Rescale { a: ct.clone() })
        .expect("held by the doomed worker");
    let backlog: Vec<_> = (0..3)
        .map(|_| {
            service
                .submit("acme", Request::Rescale { a: ct.clone() })
                .expect("backlog")
        })
        .collect();
    poseidon_faults::arm(FaultPlan::transient(
        FaultSite::ShardWorker,
        FaultKind::Panic,
        0xDEAD,
    ));
    service.resume();

    // Exactly one worker dies holding exactly one job (max_batch is 1,
    // and a steal moves one job) — which job that is depends on whether
    // the home worker or a stealing sibling drew the fault first. The
    // invariant: one typed `Internal`, every other job served
    // bit-identically, nothing hangs.
    let mut contained = 0;
    for t in std::iter::once(victim_job).chain(backlog) {
        match t
            .wait_timeout(Duration::from_secs(30))
            .expect("no job may hang on a dead shard")
        {
            Ok(got) => {
                assert_eq!(got.c0(), expected.c0(), "survivor changed the bytes");
                assert_eq!(got.c1(), expected.c1(), "survivor changed the bytes");
            }
            Err(ServeError::Internal(msg)) => {
                assert!(msg.contains("worker died"), "unexpected message: {msg}");
                contained += 1;
            }
            Err(other) => panic!("unexpected error shape: {other:?}"),
        }
    }
    assert_eq!(
        contained, 1,
        "exactly the job held by the dying worker is typed Internal"
    );
    // The scan notices whichever worker died and replaces it.
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.worker_epoch(0) == 0 && service.worker_epoch(home.min(1)) == 0 {
        assert!(Instant::now() < deadline, "watchdog never saw the death");
        service.watchdog_scan();
        std::thread::sleep(Duration::from_millis(10));
    }
    poseidon_faults::disarm();
    service.shutdown();
}

fn loopback_fixture() -> (
    Arc<EvalService>,
    std::net::SocketAddr,
    CkksContext,
    Vec<u8>,
    Vec<u8>,
) {
    let (ctx, keys, mut rng) = setup();
    let service = EvalService::start(ServiceConfig::default());
    let handle = Arc::clone(&service);
    let (addr, _accept) = tcp::listen(handle, "127.0.0.1:0").expect("bind loopback");
    let bootstrap = tcp::Client::connect(addr).expect("bootstrap connect");
    bootstrap
        .register_tenant("acme", &poseidon_wire::encode_keyset_public(&ctx, &keys))
        .expect("register");
    let ct = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.5, -0.5)]);
    let frame = poseidon_wire::encode_ciphertext(&ctx, &ct);
    let expected = bootstrap
        .rescale("acme", &frame)
        .expect("unfaulted baseline");
    drop(bootstrap);
    (service, addr, ctx, frame, expected)
}

fn chaos_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        base_backoff_ms: 5,
        max_backoff_ms: 50,
        request_timeout_ms: 2_000,
        ttl_ms: 0,
        jitter_seed: seed,
    }
}

/// A connection severed while the request is being written: the client
/// sees a typed I/O failure, reconnects, resubmits, and the reply is
/// bit-identical to the unfaulted run.
#[test]
fn request_path_disconnect_is_retried_to_the_same_bytes() {
    let _guard = poseidon_faults::test_lock();
    let (_service, addr, _ctx, frame, expected) = loopback_fixture();
    let client = ResilientClient::connect(addr, SocketConfig::default(), chaos_policy(0xAB1))
        .expect("connect");

    poseidon_faults::arm(FaultPlan::transient(
        FaultSite::SocketWrite,
        FaultKind::Disconnect,
        0x0D15,
    ));
    let got = client
        .call("acme", Op::Rescale { a: &frame })
        .expect("retry must recover the request");
    assert_eq!(poseidon_faults::fired(), 1, "the disconnect fired");
    poseidon_faults::disarm();

    assert_eq!(got, expected, "retried request diverged");
    assert_eq!(client.connects(), 2, "exactly one reconnect");
    assert_eq!(client.retries(), 1, "exactly one resubmission");
}

/// The exactly-once guarantee: the *response* is lost after the server
/// executed the request. The replay-flagged resubmission returns the
/// cached outcome — the same bytes, with no second execution.
#[test]
fn lost_response_is_replayed_from_the_idempotency_cache() {
    let _guard = poseidon_faults::test_lock();
    let (service, addr, _ctx, frame, expected) = loopback_fixture();
    let client = ResilientClient::connect(addr, SocketConfig::default(), chaos_policy(0xAB2))
        .expect("connect");
    let entries_before = service.replay_entries();

    // Skip the client's request write; fire on the server's response
    // write — the request executes, its reply dies on the wire.
    poseidon_faults::arm(
        FaultPlan::transient(FaultSite::SocketWrite, FaultKind::Disconnect, 0x0D16).after(1),
    );
    let got = client
        .call("acme", Op::Rescale { a: &frame })
        .expect("replayed retry must recover the reply");
    assert_eq!(poseidon_faults::fired(), 1, "the response-path fault fired");
    poseidon_faults::disarm();

    assert_eq!(got, expected, "replayed reply diverged from the execution");
    assert_eq!(client.connects(), 2, "the dead connection was replaced");
    assert!(
        service.replay_entries() > entries_before,
        "the executed outcome must have been cached for replay"
    );
}

/// A corrupted inbound frame resolves — as the bit-identical reply
/// after retry, or as a typed error — within the retry budget. Never a
/// hang, even when the flipped bit lands in the request id.
#[test]
fn corrupted_socket_read_resolves_without_hanging() {
    let _guard = poseidon_faults::test_lock();
    let (_service, addr, _ctx, frame, expected) = loopback_fixture();
    let client = ResilientClient::connect(addr, SocketConfig::default(), chaos_policy(0xAB3))
        .expect("connect");

    poseidon_faults::arm(FaultPlan::transient(
        FaultSite::SocketRead,
        FaultKind::BitFlip,
        0xF11D,
    ));
    let t0 = Instant::now();
    let outcome = client.request("acme", Op::Rescale { a: &frame });
    assert!(poseidon_faults::fired() >= 1, "the corruption fired");
    poseidon_faults::disarm();

    assert!(
        t0.elapsed() < Duration::from_secs(12),
        "resolution must fit the bounded retry budget"
    );
    match outcome {
        Ok(Some(blob)) => assert_eq!(blob, expected, "recovered reply diverged"),
        Ok(None) => panic!("rescale cannot produce an empty reply"),
        // Corruption that lands in the payload surfaces as a typed
        // wire/protocol/remote error — resolved, just not retryable.
        Err(
            ServeError::Remote { .. }
            | ServeError::Wire(_)
            | ServeError::Protocol(_)
            | ServeError::Io(_),
        ) => {}
        Err(other) => panic!("unexpected error shape: {other:?}"),
    }
}

/// A mid-frame stall on the write path (the slowloris shape): the
/// server's read timeout frees the wedged connection and the client
/// recovers on a fresh one.
#[test]
fn mid_frame_stall_trips_the_server_timeout_and_client_recovers() {
    let _guard = poseidon_faults::test_lock();
    let (ctx, keys, mut rng) = setup();
    let service = EvalService::start(ServiceConfig::default());
    let (addr, _accept) = tcp::listen_with(
        Arc::clone(&service),
        "127.0.0.1:0",
        SocketConfig {
            read_timeout_ms: 100,
            write_timeout_ms: 1_000,
        },
    )
    .expect("bind loopback");
    let bootstrap = tcp::Client::connect(addr).expect("bootstrap");
    bootstrap
        .register_tenant("acme", &poseidon_wire::encode_keyset_public(&ctx, &keys))
        .expect("register");
    let ct = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.125, 0.0)]);
    let frame = poseidon_wire::encode_ciphertext(&ctx, &ct);
    let expected = bootstrap.rescale("acme", &frame).expect("baseline");
    drop(bootstrap);

    let client = ResilientClient::connect(addr, SocketConfig::default(), chaos_policy(0xAB4))
        .expect("connect");
    poseidon_faults::arm(FaultPlan::transient(
        FaultSite::SocketStall,
        FaultKind::Stall(800),
        0x510,
    ));
    let got = client
        .call("acme", Op::Rescale { a: &frame })
        .expect("client must recover from its own stalled write");
    assert_eq!(poseidon_faults::fired(), 1, "the stall fired");
    poseidon_faults::disarm();

    assert_eq!(got, expected, "post-stall retry diverged");
    assert!(
        client.connects() >= 2,
        "the stalled connection was replaced"
    );
    service.shutdown();
}
