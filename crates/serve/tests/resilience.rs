//! Resilience semantics that need no fault injection: deadline
//! enforcement at admission and dequeue, the graceful-degradation
//! priority ladder, the idempotent replay cache, bounded ticket waits,
//! and the pinned rendering of the enriched error variants.

use std::sync::Arc;
use std::time::{Duration, Instant};

use he_ckks::cipher::Plaintext;
use he_ckks::context::CkksContext;
use he_ckks::encoding::Complex;
use he_ckks::keys::KeySet;
use he_ckks::params::CkksParams;
use poseidon_serve::{EvalService, Request, ServeError, ServiceConfig, DEFAULT_PRIORITY};
use rand::SeedableRng;

fn setup() -> (CkksContext, KeySet, rand::rngs::StdRng) {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x9E51);
    let keys = KeySet::generate(&ctx, &mut rng);
    (ctx, keys, rng)
}

fn encrypt(
    ctx: &CkksContext,
    keys: &KeySet,
    rng: &mut rand::rngs::StdRng,
    values: &[Complex],
) -> he_ckks::cipher::Ciphertext {
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), values, ctx.default_scale()),
        ctx.default_scale(),
    );
    keys.public().encrypt(&pt, rng)
}

/// The enriched error variants render exactly these strings — clients
/// and log scrapers key on them.
#[test]
fn error_display_is_pinned() {
    assert_eq!(
        ServeError::QueueFull {
            depth: 7,
            capacity: 8
        }
        .to_string(),
        "queue full: admission control rejected (depth 7 of capacity 8)"
    );
    assert_eq!(
        ServeError::Overloaded { retry_after_ms: 42 }.to_string(),
        "overloaded: request shed by priority ladder (retry after 42 ms)"
    );
    assert_eq!(
        ServeError::DeadlineExceeded.to_string(),
        "deadline exceeded before execution"
    );
}

/// A deadline already in the past is rejected at admission — nothing is
/// queued, nothing runs.
#[test]
fn expired_deadline_rejected_at_admission() {
    let (ctx, keys, mut rng) = setup();
    let ct = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.5, 0.0)]);
    let service = EvalService::start(ServiceConfig::default());
    service.register_tenant("acme", ctx, keys);

    let past = Instant::now() - Duration::from_millis(5);
    let err = service
        .submit_opts("acme", Request::Rescale { a: ct }, Some(past))
        .expect_err("expired deadline must be rejected");
    assert_eq!(err, ServeError::DeadlineExceeded);
    assert_eq!(service.queue_depth(), 0, "nothing may have been queued");
    service.shutdown();
}

/// A deadline that elapses while the job sits in the queue is answered
/// with `DeadlineExceeded` at dequeue; a sibling without a deadline
/// still executes.
#[test]
fn deadline_elapsing_in_queue_is_typed_not_executed() {
    let (ctx, keys, mut rng) = setup();
    let ct = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.5, 0.0)]);
    let service = EvalService::start(ServiceConfig::default());
    service.register_tenant("acme", ctx, keys);

    service.suspend();
    let doomed = service
        .submit_opts(
            "acme",
            Request::Rescale { a: ct.clone() },
            Some(Instant::now() + Duration::from_millis(10)),
        )
        .expect("admitted while fresh");
    let unbounded = service
        .submit("acme", Request::Rescale { a: ct })
        .expect("no deadline");
    std::thread::sleep(Duration::from_millis(30));
    service.resume();

    assert_eq!(doomed.wait(), Err(ServeError::DeadlineExceeded));
    unbounded.wait().expect("undeadlined sibling still served");
    service.shutdown();
}

/// `Ticket::wait_timeout` returns `None` while the reply is pending and
/// the eventual result after — a bounded wait that never hangs.
#[test]
fn ticket_wait_timeout_bounds_the_wait() {
    let (ctx, keys, mut rng) = setup();
    let ct = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.5, 0.0)]);
    let service = EvalService::start(ServiceConfig::default());
    service.register_tenant("acme", ctx, keys);

    service.suspend();
    let ticket = service
        .submit("acme", Request::Rescale { a: ct })
        .expect("submit");
    assert!(
        ticket.wait_timeout(Duration::from_millis(50)).is_none(),
        "suspended service must not answer"
    );
    service.resume();
    ticket
        .wait_timeout(Duration::from_secs(30))
        .expect("resumed service answers")
        .expect("rescale succeeds");
    service.shutdown();
}

/// The degradation ladder sheds below-default-priority tenants as the
/// queue fills — with a depth-derived retry hint — while default
/// tenants ride to the hard capacity bound.
#[test]
fn overload_ladder_sheds_low_priority_first() {
    let (ctx, keys, mut rng) = setup();
    let ct = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.5, 0.0)]);
    let service = EvalService::start(ServiceConfig {
        queue_capacity: 8,
        ..ServiceConfig::default()
    });
    service.register_tenant("acme", ctx.clone(), keys.clone());
    service.register_tenant("batch-tier", ctx, keys);
    service.set_tenant_priority("batch-tier", 10);
    assert_eq!(service.tenant_priority("acme"), DEFAULT_PRIORITY);
    assert_eq!(service.tenant_priority("batch-tier"), 10);

    service.suspend();
    let mut tickets = Vec::new();
    // Below 3/4 capacity nobody is shed — the low tier is admitted.
    for _ in 0..5 {
        tickets.push(
            service
                .submit("batch-tier", Request::Rescale { a: ct.clone() })
                .expect("below the ladder, low priority admitted"),
        );
    }
    tickets.push(
        service
            .submit("acme", Request::Rescale { a: ct.clone() })
            .expect("sixth job"),
    );
    // Depth 6 ≥ 3/4 of 8: the floor rises above the low tier.
    let err = service
        .submit("batch-tier", Request::Rescale { a: ct.clone() })
        .expect_err("low priority shed under pressure");
    match err {
        ServeError::Overloaded { retry_after_ms } => {
            assert_eq!(retry_after_ms, 10 + 4 * 6, "hint derives from depth");
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    // Default-priority tenants are never shed — they ride to capacity...
    for _ in 0..2 {
        tickets.push(
            service
                .submit("acme", Request::Rescale { a: ct.clone() })
                .expect("default priority admitted to capacity"),
        );
    }
    // ...and then hit the hard bound, never the ladder.
    let err = service
        .submit("acme", Request::Rescale { a: ct.clone() })
        .expect_err("full queue");
    assert_eq!(
        err,
        ServeError::QueueFull {
            depth: 8,
            capacity: 8
        }
    );

    service.resume();
    for t in tickets {
        t.wait().expect("admitted job served after the storm");
    }
    service.shutdown();
}

/// The replay cache makes resubmission idempotent: the second
/// submission of an executed id returns the cached ciphertext without
/// re-running, bit-identically.
#[test]
fn replayed_resubmission_is_idempotent_and_bit_identical() {
    let (ctx, keys, mut rng) = setup();
    let ct = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.5, 0.25)]);
    let service = EvalService::start(ServiceConfig::default());
    service.register_tenant("acme", ctx, keys);

    let run = |id: u64| {
        let (tx, rx) = std::sync::mpsc::channel();
        service
            .submit_tagged_opts(
                "acme",
                Request::Rescale { a: ct.clone() },
                id,
                None,
                true,
                move |_, result| {
                    tx.send(result).expect("sink channel");
                },
            )
            .expect("submit");
        rx.recv().expect("sink fired").expect("rescale succeeds")
    };

    let first = run(77);
    assert_eq!(service.replay_entries(), 1, "executed outcome cached");
    let beats_before: u64 = (0..service.shards()).map(|s| service.worker_beats(s)).sum();
    let replayed = run(77);
    assert_eq!(first.c0(), replayed.c0(), "replay must be bit-identical");
    assert_eq!(first.c1(), replayed.c1(), "replay must be bit-identical");
    assert_eq!(service.replay_entries(), 1, "no duplicate entry");
    let beats_after: u64 = (0..service.shards()).map(|s| service.worker_beats(s)).sum();
    assert_eq!(
        beats_before, beats_after,
        "a replay hit must not wake a dispatcher"
    );

    // A different id executes fresh and is cached separately.
    let other = run(78);
    assert_eq!(service.replay_entries(), 2);
    assert_eq!(other.c0(), first.c0(), "same op, same bytes");
    service.shutdown();
}

/// Admission-type failures are never cached: a request that expired
/// before running may be resubmitted under the same id and actually
/// execute.
#[test]
fn unexecuted_outcomes_are_not_cached_for_replay() {
    let (ctx, keys, mut rng) = setup();
    let ct = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.5, 0.0)]);
    let service = EvalService::start(ServiceConfig::default());
    service.register_tenant("acme", ctx, keys);

    let past = Instant::now() - Duration::from_millis(5);
    let err = service
        .submit_tagged_opts(
            "acme",
            Request::Rescale { a: ct.clone() },
            91,
            Some(past),
            true,
            |_, _| panic!("sink must not fire for an admission rejection"),
        )
        .expect_err("expired at admission");
    assert_eq!(err, ServeError::DeadlineExceeded);
    assert_eq!(service.replay_entries(), 0, "rejection must not be cached");

    // The same id, now within deadline, runs for real.
    let (tx, rx) = std::sync::mpsc::channel();
    service
        .submit_tagged_opts(
            "acme",
            Request::Rescale { a: ct },
            91,
            None,
            true,
            move |_, result| {
                tx.send(result).expect("sink channel");
            },
        )
        .expect("resubmit");
    rx.recv().expect("sink fired").expect("executed this time");
    assert_eq!(service.replay_entries(), 1);
    service.shutdown();
}

/// The replay cache is bounded FIFO: old entries evict, the service does
/// not grow without bound under replay-flagged traffic.
#[test]
fn replay_cache_is_bounded() {
    let (ctx, keys, mut rng) = setup();
    let ct = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.5, 0.0)]);
    let service = EvalService::start(ServiceConfig {
        replay_capacity: 4,
        ..ServiceConfig::default()
    });
    service.register_tenant("acme", ctx, keys);

    for id in 0..10u64 {
        let (tx, rx) = std::sync::mpsc::channel();
        service
            .submit_tagged_opts(
                "acme",
                Request::Rescale { a: ct.clone() },
                id,
                None,
                true,
                move |_, result| {
                    tx.send(result).expect("sink channel");
                },
            )
            .expect("submit");
        rx.recv().expect("sink fired").expect("rescale succeeds");
    }
    assert_eq!(service.replay_entries(), 4, "FIFO bound holds");
    service.shutdown();
}

/// Eviction is tenant-fair: a chatty tenant's flood shrinks its own
/// window first and never evicts a quieter tenant's cached entry.
#[test]
fn replay_eviction_is_tenant_fair() {
    let (ctx, keys, mut rng) = setup();
    let ct = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.5, 0.0)]);
    let service = EvalService::start(ServiceConfig {
        replay_capacity: 4,
        ..ServiceConfig::default()
    });
    service.register_tenant("quiet", ctx.clone(), keys.clone());
    service.register_tenant("chatty", ctx, keys);

    let run = |tenant: &'static str, id: u64| {
        let (tx, rx) = std::sync::mpsc::channel();
        service
            .submit_tagged_opts(
                tenant,
                Request::Rescale { a: ct.clone() },
                id,
                None,
                true,
                move |_, result| {
                    tx.send(result).expect("sink channel");
                },
            )
            .expect("submit");
        rx.recv().expect("sink fired").expect("rescale succeeds")
    };

    let quiet_first = run("quiet", 1);
    for id in 0..10 {
        run("chatty", id);
    }
    assert_eq!(service.replay_entries(), 4, "global bound holds");

    // The quiet tenant's entry survived the flood: replaying id 1 is a
    // cache hit (no dispatcher wake) with identical bytes.
    let beats_before: u64 = (0..service.shards()).map(|s| service.worker_beats(s)).sum();
    let replayed = run("quiet", 1);
    let beats_after: u64 = (0..service.shards()).map(|s| service.worker_beats(s)).sum();
    assert_eq!(
        beats_before, beats_after,
        "the quiet tenant's entry was evicted by the chatty flood"
    );
    assert_eq!(quiet_first.c0(), replayed.c0());
    assert_eq!(quiet_first.c1(), replayed.c1());
    service.shutdown();
}

/// The byte budget bounds the cache even when the entry count does not:
/// oversized results evict older entries, but the newest always
/// survives so the retry it protects can still replay.
#[test]
fn replay_cache_byte_budget_evicts_but_keeps_newest() {
    let (ctx, keys, mut rng) = setup();
    let ct = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.5, 0.0)]);
    let service = EvalService::start(ServiceConfig {
        replay_capacity: 1024,
        // Every cached ciphertext alone overflows this, so each insert
        // evicts everything older than itself.
        replay_capacity_bytes: 1,
        ..ServiceConfig::default()
    });
    service.register_tenant("acme", ctx, keys);

    for id in 0..5u64 {
        let (tx, rx) = std::sync::mpsc::channel();
        service
            .submit_tagged_opts(
                "acme",
                Request::Rescale { a: ct.clone() },
                id,
                None,
                true,
                move |_, result| {
                    tx.send(result).expect("sink channel");
                },
            )
            .expect("submit");
        rx.recv().expect("sink fired").expect("rescale succeeds");
    }
    assert_eq!(
        service.replay_entries(),
        1,
        "byte budget must evict down to the newest entry"
    );
    assert!(
        service.replay_bytes() > 1,
        "the newest oversized entry is retained, not dropped"
    );
    service.shutdown();
}

/// A duplicate replay submission racing the original — retried while
/// the first is still queued — attaches to the in-flight execution
/// instead of enqueueing a second run: one execution, two sinks, both
/// bit-identical, one cache entry.
#[test]
fn racing_duplicate_replay_attaches_to_in_flight_execution() {
    let (ctx, keys, mut rng) = setup();
    let ct = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.25, -0.75)]);
    let service = EvalService::start(ServiceConfig::default());
    service.register_tenant("acme", ctx, keys);

    // Freeze the dispatcher so the original is still queued when the
    // duplicate arrives.
    service.suspend();
    let submit = |tx: std::sync::mpsc::Sender<Result<_, ServeError>>| {
        service
            .submit_tagged_opts(
                "acme",
                Request::Rescale { a: ct.clone() },
                7,
                None,
                true,
                move |_, result| {
                    tx.send(result).expect("sink channel");
                },
            )
            .expect("submit");
    };
    let (tx1, rx1) = std::sync::mpsc::channel();
    submit(tx1);
    assert_eq!(service.queue_depth(), 1);
    assert_eq!(service.replay_in_flight(), 1, "marker registered");

    let (tx2, rx2) = std::sync::mpsc::channel();
    submit(tx2);
    assert_eq!(
        service.queue_depth(),
        1,
        "the duplicate must attach, not enqueue a second execution"
    );
    assert_eq!(service.replay_in_flight(), 1);

    service.resume();
    let first = rx1.recv().expect("primary sink").expect("rescale succeeds");
    let dup = rx2.recv().expect("waiter sink").expect("rescale succeeds");
    assert_eq!(first.c0(), dup.c0(), "fan-out must be bit-identical");
    assert_eq!(first.c1(), dup.c1(), "fan-out must be bit-identical");
    assert_eq!(service.replay_entries(), 1, "one execution, one entry");
    assert_eq!(service.replay_in_flight(), 0, "marker cleared");
    service.shutdown();
}

/// On a healthy service the watchdog is a no-op: scans never bump an
/// epoch, and worker pulses keep advancing.
#[test]
fn watchdog_is_quiescent_on_a_healthy_service() {
    let (ctx, keys, mut rng) = setup();
    let ct = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.5, 0.0)]);
    let service = EvalService::start(ServiceConfig {
        shards: 2,
        // Manual scans only: determinism for the assertions below.
        watchdog_interval_ms: 0,
        ..ServiceConfig::default()
    });
    service.register_tenant("acme", ctx, keys);

    for _ in 0..3 {
        service
            .call("acme", Request::Rescale { a: ct.clone() })
            .expect("rescale");
        service.watchdog_scan();
    }
    for shard in 0..service.shards() {
        assert_eq!(
            service.worker_epoch(shard),
            0,
            "healthy workers must never be replaced"
        );
    }
    let total_beats: u64 = (0..service.shards()).map(|s| service.worker_beats(s)).sum();
    assert!(total_beats > 0, "pulses must advance under traffic");
    service.shutdown();
}

/// Shutdown with a live watchdog thread terminates cleanly — the
/// watchdog must not scan (and "restart") workers that are exiting.
#[test]
fn shutdown_races_cleanly_with_the_watchdog() {
    let (ctx, keys, mut rng) = setup();
    let ct = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.5, 0.0)]);
    let service = EvalService::start(ServiceConfig {
        shards: 2,
        watchdog_interval_ms: 1,
        ..ServiceConfig::default()
    });
    service.register_tenant("acme", ctx, keys);
    let svc = Arc::clone(&service);
    let pounder = std::thread::spawn(move || {
        for _ in 0..5 {
            let _ = svc.call("acme", Request::Rescale { a: ct.clone() });
        }
    });
    pounder.join().expect("traffic thread");
    service.shutdown();
    for shard in 0..service.shards() {
        assert_eq!(service.worker_epoch(shard), 0, "no spurious restarts");
    }
}
