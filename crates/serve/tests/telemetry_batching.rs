//! Telemetry-gated proof that the batching scheduler actually coalesces:
//! k same-ciphertext rotations served in one batch cost one
//! `keyswitch.hoist` lift, versus k lifts when served one at a time.
//!
//! Kept to a single test function: the telemetry registry is
//! process-global, and this binary must not race itself on the counters.

#![cfg(feature = "telemetry")]

use he_ckks::cipher::Plaintext;
use he_ckks::context::CkksContext;
use he_ckks::encoding::Complex;
use he_ckks::keys::KeySet;
use he_ckks::params::CkksParams;
use poseidon_serve::{EvalService, Request, ServiceConfig};
use poseidon_telemetry::{Registry, Snapshot};
use rand::SeedableRng;

fn count(snap: &Snapshot, scope: &str) -> u64 {
    snap.get(scope).map(|s| s.count).unwrap_or(0)
}

fn items(snap: &Snapshot, scope: &str) -> u64 {
    snap.get(scope).map(|s| s.items).unwrap_or(0)
}

#[test]
fn batched_rotations_hoist_once() {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x0157);
    let mut keys = KeySet::generate(&ctx, &mut rng);
    keys.add_rotation_keys([1, 2, 3, 4], &mut rng);
    let pt = Plaintext::new(
        ctx.encoder().encode_rns(
            ctx.chain_basis(),
            &[Complex::new(0.5, 0.0), Complex::new(0.25, 0.0)],
            ctx.default_scale(),
        ),
        ctx.default_scale(),
    );
    let ct = keys.public().encrypt(&pt, &mut rng);
    // Retained for the sharded sections below.
    let (ct_ctx, ct_keys) = (ctx.clone(), keys.clone());

    let service = EvalService::start(ServiceConfig::default());
    service.register_tenant("acme", ctx, keys);
    let steps = [1i64, 2, 3, 4];

    // Per-call baseline: wait for each rotation before submitting the
    // next, so every request forms its own singleton batch (one hoist
    // each).
    let before = Registry::global().snapshot();
    for s in steps {
        service
            .call(
                "acme",
                Request::Rotate {
                    a: ct.clone(),
                    steps: s,
                },
            )
            .expect("rotation");
    }
    let per_call = Registry::global().snapshot().since(&before);
    let per_call_hoists = count(&per_call, "keyswitch.hoist");
    assert_eq!(
        per_call_hoists,
        steps.len() as u64,
        "one hoist per singleton batch"
    );
    assert_eq!(count(&per_call, "serve.enqueue"), steps.len() as u64);

    // Batched: freeze the dispatcher, enqueue all four, release — one
    // coalesced group, one hoist.
    let before = Registry::global().snapshot();
    service.suspend();
    let tickets: Vec<_> = steps
        .iter()
        .map(|&s| {
            service
                .submit(
                    "acme",
                    Request::Rotate {
                        a: ct.clone(),
                        steps: s,
                    },
                )
                .expect("submit")
        })
        .collect();
    service.resume();
    for t in tickets {
        t.wait().expect("rotation");
    }
    let batched = Registry::global().snapshot().since(&before);
    let batched_hoists = count(&batched, "keyswitch.hoist");
    assert_eq!(batched_hoists, 1, "coalesced batch must hoist exactly once");
    assert!(
        batched_hoists < per_call_hoists,
        "batched ({batched_hoists}) must beat per-call ({per_call_hoists})"
    );
    // The batch scope saw one batch of four jobs.
    assert_eq!(count(&batched, "serve.batch.size"), 1);
    assert_eq!(items(&batched, "serve.batch.size"), steps.len() as u64);
    assert_eq!(items(&batched, "serve.dequeue"), steps.len() as u64);
    service.shutdown();

    // Sharded affinity: with four dispatcher shards, one tenant's
    // rotations still land on a single shard and still coalesce into one
    // hoist — sharding must not break the coalescing window.
    let (ctx, keys) = (ct_ctx.clone(), ct_keys.clone());
    let sharded = EvalService::start(ServiceConfig {
        shards: 4,
        ..ServiceConfig::default()
    });
    sharded.register_tenant("acme", ctx, keys);
    let home = sharded.shard_of("acme");
    let before = Registry::global().snapshot();
    sharded.suspend();
    let tickets: Vec<_> = steps
        .iter()
        .map(|&s| {
            sharded
                .submit(
                    "acme",
                    Request::Rotate {
                        a: ct.clone(),
                        steps: s,
                    },
                )
                .expect("submit")
        })
        .collect();
    sharded.resume();
    for t in tickets {
        t.wait().expect("rotation");
    }
    let diff = Registry::global().snapshot().since(&before);
    assert_eq!(
        count(&diff, "keyswitch.hoist"),
        1,
        "affinity must keep the coalesced batch on one shard"
    );
    assert_eq!(
        items(&diff, &format!("serve.shard.{home}")),
        steps.len() as u64,
        "all jobs must land on the tenant's affine shard"
    );
    let (_, all_shard_items) = diff.sum_prefix("serve.shard.");
    assert_eq!(
        all_shard_items,
        steps.len() as u64,
        "no other shard may have run this tenant's jobs"
    );
    assert_eq!(items(&diff, "serve.steal"), 0, "nothing to steal here");
    // The per-shard depth gauge sampled the suspended build-up (depths
    // 1,2,3,4 after each enqueue) and the single coalesced drain (depth
    // 0 after the batch was taken): five samples, ten queued-job
    // observations — the signal the overload ladder keys on.
    let depth_scope = format!("serve.queue.depth.{home}");
    assert_eq!(
        count(&diff, &depth_scope),
        steps.len() as u64 + 1,
        "one sample per enqueue plus one per dequeue"
    );
    assert_eq!(
        items(&diff, &depth_scope),
        (1..=steps.len() as u64).sum::<u64>(),
        "suspended enqueues must observe depths 1..=4"
    );
    sharded.shutdown();

    // Work stealing: a deep backlog on one shard with singleton batches
    // makes the idle sibling steal-eligible (len > max_batch). A couple
    // of rounds absorb scheduler luck on small hosts.
    let mut stole = 0;
    for round in 0..3 {
        let stealing = EvalService::start(ServiceConfig {
            shards: 2,
            max_batch: 1,
            queue_capacity: 64,
            ..ServiceConfig::default()
        });
        stealing.register_tenant("acme", ct_ctx.clone(), ct_keys.clone());
        let before = Registry::global().snapshot();
        stealing.suspend();
        let tickets: Vec<_> = (0..32)
            .map(|_| {
                stealing
                    .submit("acme", Request::Square { a: ct.clone() })
                    .expect("submit")
            })
            .collect();
        stealing.resume();
        for t in tickets {
            t.wait().expect("square");
        }
        let diff = Registry::global().snapshot().since(&before);
        stole = items(&diff, "serve.steal");
        stealing.shutdown();
        if stole > 0 {
            break;
        }
        eprintln!("round {round}: no steal observed, retrying");
    }
    assert!(stole > 0, "sibling worker never stole from the hot shard");
}
