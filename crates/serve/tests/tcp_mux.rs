//! Multiplexed-protocol edges: out-of-order reply reassembly, pipelined
//! submission against a real service, chunked key-set streaming, and
//! dead-connection failure propagation.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use he_ckks::cipher::Plaintext;
use he_ckks::context::CkksContext;
use he_ckks::encoding::Complex;
use he_ckks::keys::KeySet;
use he_ckks::params::CkksParams;
use poseidon_serve::tcp::{self, Op};
use poseidon_serve::{EvalService, ServeError, ServiceConfig};
use rand::SeedableRng;

fn encrypt(
    ctx: &CkksContext,
    keys: &KeySet,
    rng: &mut rand::rngs::StdRng,
    values: &[Complex],
) -> he_ckks::cipher::Ciphertext {
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), values, ctx.default_scale()),
        ctx.default_scale(),
    );
    keys.public().encrypt(&pt, rng)
}

fn read_raw_frame(stream: &mut TcpStream) -> Vec<u8> {
    let mut prefix = [0u8; 4];
    stream.read_exact(&mut prefix).expect("frame prefix");
    let mut body = vec![0u8; u32::from_le_bytes(prefix) as usize];
    stream.read_exact(&mut body).expect("frame body");
    body
}

fn write_raw_frame(stream: &mut TcpStream, body: &[u8]) {
    stream
        .write_all(&(body.len() as u32).to_le_bytes())
        .expect("prefix");
    stream.write_all(body).expect("body");
}

/// A scripted server that answers three requests in *reverse* arrival
/// order; the client must still hand each reply to the right waiter.
#[test]
fn out_of_order_replies_are_matched_by_request_id() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().expect("accept");
        let frames: Vec<Vec<u8>> = (0..3).map(|_| read_raw_frame(&mut conn)).collect();
        for frame in frames.iter().rev() {
            let id = &frame[..8];
            // ok response whose blob is the echoed id — lets the client
            // side verify which request this reply claimed to answer.
            let mut body = Vec::new();
            body.extend_from_slice(id);
            body.push(0);
            body.extend_from_slice(&8u32.to_le_bytes());
            body.extend_from_slice(id);
            write_raw_frame(&mut conn, &body);
        }
        // Hold the socket until the client has drained the replies.
        let _ = conn.read(&mut [0u8; 1]);
    });

    let client = tcp::Client::connect(addr).expect("connect");
    let pending: Vec<_> = (0..3)
        .map(|_| {
            client
                .submit("acme", Op::Square { a: b"opaque" })
                .expect("submit")
        })
        .collect();
    for reply in pending {
        let id = reply.id();
        let blob = reply.wait().expect("reply").expect("blob");
        assert_eq!(
            blob,
            id.to_le_bytes().to_vec(),
            "reply delivered to the wrong waiter"
        );
    }
    drop(client);
    server.join().expect("server thread");
}

/// Pipelined rotations through a real loopback server: all submitted
/// before any reply is read, coalesced into one batch by the suspended
/// dispatcher, and bit-identical to the local hoisted path.
#[test]
fn pipelined_rotations_coalesce_and_match_local_eval() {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x417);
    let mut keys = KeySet::generate(&ctx, &mut rng);
    keys.add_rotation_keys([1, 2, 3], &mut rng);

    let service = EvalService::start(ServiceConfig::default());
    let handle = Arc::clone(&service);
    let (addr, _accept) = tcp::listen(service, "127.0.0.1:0").expect("bind loopback");
    let client = tcp::Client::connect(addr).expect("connect");
    client
        .register_tenant("acme", &poseidon_wire::encode_keyset_public(&ctx, &keys))
        .expect("register");

    let ct = encrypt(
        &ctx,
        &keys,
        &mut rng,
        &[Complex::new(1.0, 0.0), Complex::new(2.0, 0.0)],
    );
    let frame = poseidon_wire::encode_ciphertext(&ctx, &ct);
    let expected = he_ckks::eval::Evaluator::new(&ctx)
        .try_rotate_many(&ct, &[1, 2, 3], &keys)
        .expect("local rotations");

    // Freeze the dispatcher so the three pipelined requests form one
    // batch — the coalescing path exercised through the full TCP stack.
    handle.suspend();
    let pending: Vec<_> = [1i64, 2, 3]
        .into_iter()
        .map(|steps| {
            client
                .submit("acme", Op::Rotate { a: &frame, steps })
                .expect("submit")
        })
        .collect();
    // All three must be queued before any reply exists.
    while handle.queue_depth() < 3 {
        std::thread::yield_now();
    }
    handle.resume();

    for (reply, want) in pending.into_iter().zip(&expected) {
        let blob = reply.wait().expect("rotation reply").expect("ciphertext");
        let got = poseidon_wire::decode_ciphertext(&ctx, &blob).expect("decode");
        assert_eq!(got.c0(), want.c0());
        assert_eq!(got.c1(), want.c1());
    }
}

/// A key set streamed in chunks provisions a tenant that serves
/// byte-identically to one registered from the whole frame — including
/// with adversarially tiny chunk sizes driven through the raw Op.
#[test]
fn chunked_registration_serves_identically_to_whole_frame() {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC4A);
    let mut keys = KeySet::generate(&ctx, &mut rng);
    keys.add_rotation_key(1, &mut rng);
    let keyset = poseidon_wire::encode_keyset_public(&ctx, &keys);

    let service = EvalService::start(ServiceConfig::default());
    let (addr, _accept) = tcp::listen(service, "127.0.0.1:0").expect("bind loopback");
    let client = tcp::Client::connect(addr).expect("connect");

    client.register_tenant("whole", &keyset).expect("whole");
    client
        .register_tenant_chunked("chunked", &keyset)
        .expect("chunked");
    // Tiny chunks (many frames) via the raw op, pipelined then awaited.
    let chunks = poseidon_wire::chunk_keyset(&keyset, 257);
    assert!(
        chunks.len() > 2,
        "chunk size too large to exercise streaming"
    );
    let acks: Vec<_> = chunks
        .iter()
        .map(|chunk| {
            client
                .submit("streamed", Op::RegisterTenantChunk { chunk })
                .expect("submit chunk")
        })
        .collect();
    for ack in acks {
        ack.wait().expect("chunk ack");
    }

    let ct = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.5, -0.5)]);
    let frame = poseidon_wire::encode_ciphertext(&ctx, &ct);
    let whole = client.rotate("whole", &frame, 1).expect("whole rotate");
    let chunked = client.rotate("chunked", &frame, 1).expect("chunked rotate");
    let streamed = client
        .rotate("streamed", &frame, 1)
        .expect("streamed rotate");
    assert_eq!(whole, chunked, "chunked registration diverged");
    assert_eq!(whole, streamed, "streamed registration diverged");
}

/// A slowloris connection — a valid length prefix, a sliver of payload,
/// then silence — trips the server's mid-frame read timeout and is
/// closed, while a well-behaved client on another socket keeps being
/// served the whole time.
#[test]
fn slowloris_connection_is_reaped_without_blocking_others() {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x510);
    let keys = KeySet::generate(&ctx, &mut rng);
    let service = EvalService::start(ServiceConfig::default());
    let (addr, _accept) = tcp::listen_with(
        service,
        "127.0.0.1:0",
        tcp::SocketConfig {
            read_timeout_ms: 100,
            write_timeout_ms: 1_000,
        },
    )
    .expect("bind loopback");

    // The attacker: claims a 4096-byte frame, delivers 10 bytes, stalls.
    let mut slow = TcpStream::connect(addr).expect("slow connect");
    slow.write_all(&4096u32.to_le_bytes()).expect("prefix");
    slow.write_all(&[0u8; 10]).expect("partial body");
    slow.flush().expect("flush");

    // Meanwhile a real client provisions and serves without delay.
    let client = tcp::Client::connect(addr).expect("connect");
    client
        .register_tenant("acme", &poseidon_wire::encode_keyset_public(&ctx, &keys))
        .expect("register while the slow socket stalls");
    let ct = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.5, 0.0)]);
    let frame = poseidon_wire::encode_ciphertext(&ctx, &ct);
    client
        .rescale("acme", &frame)
        .expect("healthy traffic unaffected");

    // The server must hang up on the stalled connection once the
    // mid-frame timeout trips — observed as EOF on our end.
    slow.set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .expect("timeout");
    let mut scratch = [0u8; 16];
    match slow.read(&mut scratch) {
        Ok(0) => {}  // clean close
        Err(_) => {} // reset — also a close
        Ok(n) => panic!("server answered a half-frame with {n} bytes"),
    }
}

/// Dropping the client fails every outstanding waiter with a typed
/// error and joins the demux reader — no detached thread, no waiter
/// hung on a half-closed socket.
#[test]
fn dropping_the_client_fails_outstanding_waiters() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().expect("accept");
        // Swallow one request, answer nothing, hold the socket open
        // until the client side hangs up.
        let _ = read_raw_frame(&mut conn);
        let _ = conn.read(&mut [0u8; 1]);
    });

    let client = tcp::Client::connect(addr).expect("connect");
    let orphan = client
        .submit("acme", Op::Square { a: b"opaque" })
        .expect("submit");
    drop(client); // must not hang: reader joined, waiters failed
    match orphan.wait() {
        Err(ServeError::Io(msg)) => {
            assert!(msg.contains("dropped"), "unexpected reason: {msg}")
        }
        other => panic!("expected a typed drop failure, got {other:?}"),
    }
    server.join().expect("server thread");
}

/// When the server vanishes, every in-flight request fails with a typed
/// I/O error and later submissions fail fast instead of hanging.
#[test]
fn dead_connection_fails_pending_and_future_requests() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().expect("accept");
        // Read one request, then hang up without answering.
        let _ = read_raw_frame(&mut conn);
    });

    let client = tcp::Client::connect(addr).expect("connect");
    let reply = client
        .submit("acme", Op::Square { a: b"opaque" })
        .expect("submit");
    match reply.wait() {
        Err(ServeError::Io(_)) => {}
        other => panic!("expected an I/O failure, got {other:?}"),
    }
    server.join().expect("server thread");

    // The client knows the connection is dead; no new request hangs.
    match client.submit("acme", Op::Square { a: b"opaque" }) {
        Err(ServeError::Io(_)) => {}
        other => panic!("expected fail-fast on a dead connection, got {other:?}"),
    }
}

/// Two independently connected resilient clients sharing one tenant and
/// the *default* retry policy must not collide in the replay-id space.
/// Ids mix per-instance entropy into the seed, so each client's first
/// replay-flagged request draws a distinct id; were the streams
/// deterministic (the old behaviour), the second client's rotation
/// would replay the first client's cached ciphertext instead of its
/// own.
#[test]
fn independent_resilient_clients_draw_disjoint_replay_ids() {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xD15);
    let mut keys = KeySet::generate(&ctx, &mut rng);
    keys.add_rotation_keys([1, 2], &mut rng);

    let service = EvalService::start(ServiceConfig::default());
    let handle = Arc::clone(&service);
    let (addr, _accept) = tcp::listen(service, "127.0.0.1:0").expect("bind loopback");

    // Provision via a plain client (its submissions are not
    // replay-flagged, so the cache stays empty until the rotations).
    let admin = tcp::Client::connect(addr).expect("connect");
    admin
        .register_tenant("acme", &poseidon_wire::encode_keyset_public(&ctx, &keys))
        .expect("register");

    let ct = encrypt(&ctx, &keys, &mut rng, &[Complex::new(1.5, -0.5)]);
    let frame = poseidon_wire::encode_ciphertext(&ctx, &ct);
    let expected = he_ckks::eval::Evaluator::new(&ctx)
        .try_rotate_many(&ct, &[1, 2], &keys)
        .expect("local rotations");

    // Same address, same tenant, byte-identical default policy — the
    // adversarial alignment for id collision.
    let policy = tcp::RetryPolicy::default();
    let c1 = tcp::ResilientClient::connect(addr, tcp::SocketConfig::default(), policy)
        .expect("client 1");
    let c2 = tcp::ResilientClient::connect(addr, tcp::SocketConfig::default(), policy)
        .expect("client 2");

    let r1 = c1
        .call(
            "acme",
            Op::Rotate {
                a: &frame,
                steps: 1,
            },
        )
        .expect("rotate by 1");
    let r2 = c2
        .call(
            "acme",
            Op::Rotate {
                a: &frame,
                steps: 2,
            },
        )
        .expect("rotate by 2");

    for (blob, want) in [(&r1, &expected[0]), (&r2, &expected[1])] {
        let got = poseidon_wire::decode_ciphertext(&ctx, blob).expect("decode");
        assert_eq!(got.c0(), want.c0(), "client got another client's reply");
        assert_eq!(got.c1(), want.c1(), "client got another client's reply");
    }
    // Both rotations executed and cached separately: the ids were
    // distinct, no cross-client replay aliasing.
    assert_eq!(handle.replay_entries(), 2, "replay ids collided");
}
