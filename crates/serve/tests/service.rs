//! In-process service behaviour: correctness against a local evaluator,
//! admission control, typed per-request failures, and shutdown draining.

use he_ckks::cipher::Plaintext;
use he_ckks::context::CkksContext;
use he_ckks::encoding::Complex;
use he_ckks::error::EvalError;
use he_ckks::eval::Evaluator;
use he_ckks::keys::KeySet;
use he_ckks::params::CkksParams;
use poseidon_serve::{EvalService, Request, ServeError, ServiceConfig};
use rand::SeedableRng;

fn setup() -> (CkksContext, KeySet, rand::rngs::StdRng) {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5E4E);
    let mut keys = KeySet::generate(&ctx, &mut rng);
    keys.add_rotation_keys([1, 2, 3], &mut rng);
    (ctx, keys, rng)
}

fn encrypt(
    ctx: &CkksContext,
    keys: &KeySet,
    rng: &mut rand::rngs::StdRng,
    values: &[Complex],
) -> he_ckks::cipher::Ciphertext {
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), values, ctx.default_scale()),
        ctx.default_scale(),
    );
    keys.public().encrypt(&pt, rng)
}

#[test]
fn served_ops_match_the_local_evaluator_bit_for_bit() {
    let (ctx, keys, mut rng) = setup();
    let eval = Evaluator::new(&ctx);
    let a = encrypt(
        &ctx,
        &keys,
        &mut rng,
        &[Complex::new(0.5, 0.0), Complex::new(-0.25, 0.125)],
    );
    let b = encrypt(
        &ctx,
        &keys,
        &mut rng,
        &[Complex::new(0.125, -0.5), Complex::new(1.0, 0.0)],
    );

    let service = EvalService::start(ServiceConfig::default());
    service.register_tenant("acme", ctx.clone(), keys.clone());

    let cases: Vec<(Request, he_ckks::cipher::Ciphertext)> = vec![
        (
            Request::Add {
                a: a.clone(),
                b: b.clone(),
            },
            eval.add(&a, &b),
        ),
        (
            Request::Sub {
                a: a.clone(),
                b: b.clone(),
            },
            eval.sub(&a, &b),
        ),
        (
            Request::Mul {
                a: a.clone(),
                b: b.clone(),
            },
            eval.mul(&a, &b, &keys),
        ),
        (Request::Square { a: a.clone() }, eval.square(&a, &keys)),
        (
            Request::Rotate {
                a: a.clone(),
                steps: 2,
            },
            eval.rotate(&a, 2, &keys),
        ),
    ];
    for (request, expected) in cases {
        let got = service.call("acme", request).expect("served op failed");
        assert_eq!(got.c0(), expected.c0());
        assert_eq!(got.c1(), expected.c1());
        assert_eq!(got.scale().to_bits(), expected.scale().to_bits());
    }
}

#[test]
fn coalesced_rotation_batch_matches_per_call_results() {
    let (ctx, keys, mut rng) = setup();
    let eval = Evaluator::new(&ctx);
    let ct = encrypt(
        &ctx,
        &keys,
        &mut rng,
        &[Complex::new(1.0, 0.0), Complex::new(2.0, 0.0)],
    );
    let expected = eval
        .try_rotate_many(&ct, &[1, 2, 3], &keys)
        .expect("local rotations");

    let service = EvalService::start(ServiceConfig::default());
    service.register_tenant("acme", ctx, keys);

    // Freeze the dispatcher so all three requests land in one batch —
    // the coalescing path, not three singleton groups.
    service.suspend();
    let tickets: Vec<_> = [1i64, 2, 3]
        .into_iter()
        .map(|steps| {
            service
                .submit(
                    "acme",
                    Request::Rotate {
                        a: ct.clone(),
                        steps,
                    },
                )
                .expect("submit")
        })
        .collect();
    assert_eq!(service.queue_depth(), 3);
    service.resume();

    for (ticket, want) in tickets.into_iter().zip(&expected) {
        let got = ticket.wait().expect("rotation failed");
        assert_eq!(got.c0(), want.c0());
        assert_eq!(got.c1(), want.c1());
    }
}

#[test]
fn queue_full_rejects_with_capacity() {
    let (ctx, keys, mut rng) = setup();
    let ct = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.5, 0.0)]);
    let service = EvalService::start(ServiceConfig {
        queue_capacity: 2,
        max_batch: 16,
        ..ServiceConfig::default()
    });
    service.register_tenant("acme", ctx, keys);

    service.suspend();
    let t1 = service
        .submit("acme", Request::Rescale { a: ct.clone() })
        .expect("first");
    let t2 = service
        .submit("acme", Request::Rescale { a: ct.clone() })
        .expect("second");
    let err = service
        .submit("acme", Request::Rescale { a: ct.clone() })
        .expect_err("third should be rejected");
    assert_eq!(
        err,
        ServeError::QueueFull {
            depth: 2,
            capacity: 2
        }
    );
    service.resume();
    t1.wait().expect("first survives the rejection");
    t2.wait().expect("second survives the rejection");
}

#[test]
fn unknown_tenant_and_missing_key_are_typed_errors() {
    let (ctx, _, mut rng) = setup();
    // A tenant registered with *no* rotation keys.
    let bare_keys = KeySet::generate(&ctx, &mut rng);
    let ct = encrypt(&ctx, &bare_keys, &mut rng, &[Complex::new(0.5, 0.0)]);

    let service = EvalService::start(ServiceConfig::default());
    service.register_tenant("acme", ctx, bare_keys);

    let err = service
        .submit("nobody", Request::Rescale { a: ct.clone() })
        .expect_err("unknown tenant");
    assert_eq!(err, ServeError::UnknownTenant("nobody".into()));

    let err = service
        .call(
            "acme",
            Request::Rotate {
                a: ct.clone(),
                steps: 7,
            },
        )
        .expect_err("missing rotation key");
    assert_eq!(
        err,
        ServeError::Eval(EvalError::MissingRotationKey { steps: 7 })
    );

    let err = service
        .call("acme", Request::Conjugate { a: ct })
        .expect_err("missing conjugation key");
    assert_eq!(err, ServeError::Eval(EvalError::MissingConjugationKey));
}

#[test]
fn level_exhaustion_is_a_per_request_error_not_a_crash() {
    let (ctx, keys, mut rng) = setup();
    let eval = Evaluator::new(&ctx);
    let ct = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.5, 0.0)]);
    let exhausted = eval.drop_to_level(&ct, 0);

    let service = EvalService::start(ServiceConfig::default());
    service.register_tenant("acme", ctx, keys);
    let err = service
        .call(
            "acme",
            Request::Rescale {
                a: exhausted.clone(),
            },
        )
        .expect_err("rescale at level 0");
    assert_eq!(err, ServeError::Eval(EvalError::RescaleAtLevelZero));

    // The dispatcher survived; the service still answers.
    service
        .call(
            "acme",
            Request::Add {
                a: exhausted.clone(),
                b: exhausted,
            },
        )
        .expect("still serving");
}

#[test]
fn shutdown_drains_pending_jobs_with_a_typed_error() {
    let (ctx, keys, mut rng) = setup();
    let ct = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.5, 0.0)]);
    let service = EvalService::start(ServiceConfig::default());
    service.register_tenant("acme", ctx, keys);

    service.suspend();
    let ticket = service
        .submit("acme", Request::Rescale { a: ct.clone() })
        .expect("submit");
    service.shutdown();
    assert_eq!(ticket.wait(), Err(ServeError::ShuttingDown));
    assert_eq!(
        service.submit("acme", Request::Rescale { a: ct }).err(),
        Some(ServeError::ShuttingDown)
    );
}
