//! Serve-side program planning: a whole `.pos` program submitted as one
//! admission-controlled unit — planned and executed server-side, with
//! the deadline and typed-error machinery covering the entire program.

use std::time::{Duration, Instant};

use he_ckks::cipher::{Ciphertext, Plaintext};
use he_ckks::context::CkksContext;
use he_ckks::encoding::Complex;
use he_ckks::error::EvalError;
use he_ckks::integrity::digest_ciphertext;
use he_ckks::keys::KeySet;
use he_ckks::params::CkksParams;
use poseidon_core::plan::{execute, plan_trace, PlanOptions};
use poseidon_serve::{tcp, EvalService, Request, ServeError, ServiceConfig};
use rand::SeedableRng;

/// A small BSGS-flavoured program: a hoistable rotation fan, masks, a
/// reduction, and one depth-consuming squaring chain tail.
const PROGRAM: &str = "\
# serve-side planning test program
n=65536 special=2 dnum=1
rotation L=8 x4
pmult    L=8 x4
hadd     L=8 x4
rescale  L=8 x1
cmult    L=7 x1
rescale  L=6 x1
";

fn setup() -> (CkksContext, KeySet, rand::rngs::StdRng) {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x9706);
    let mut keys = KeySet::generate(&ctx, &mut rng);
    keys.add_rotation_keys(1..=8i64, &mut rng);
    (ctx, keys, rng)
}

fn encrypt(
    ctx: &CkksContext,
    keys: &KeySet,
    rng: &mut rand::rngs::StdRng,
    values: &[Complex],
) -> Ciphertext {
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), values, ctx.default_scale()),
        ctx.default_scale(),
    );
    keys.public().encrypt(&pt, rng)
}

/// The served program reply is bit-identical to planning and executing
/// the same text locally with the same options — the server adds
/// scheduling, not noise.
#[test]
fn served_program_matches_local_planned_execution() {
    let (ctx, keys, mut rng) = setup();
    let a = encrypt(
        &ctx,
        &keys,
        &mut rng,
        &[Complex::new(0.5, 0.0), Complex::new(-0.25, 0.125)],
    );

    let trace = poseidon_sim::program::parse(PROGRAM).expect("parse");
    let plan = plan_trace(&trace, &ctx, &PlanOptions::default()).expect("plan");
    let inputs = vec![a.clone(); plan.graph.inputs().len()];
    let mut eval = he_ckks::eval::Evaluator::new(&ctx);
    let local = execute(&plan, &mut eval, &inputs, &keys)
        .expect("local execution")
        .outputs
        .pop()
        .expect("program output");

    let service = EvalService::start(ServiceConfig::default());
    service.register_tenant("acme", ctx, keys);
    let served = service
        .call(
            "acme",
            Request::Program {
                text: PROGRAM.into(),
                a,
            },
        )
        .expect("served program");

    assert_eq!(digest_ciphertext(&served), digest_ciphertext(&local));
    service.shutdown();
}

/// An already-expired program deadline is rejected at admission: no op
/// of the program executes and nothing is queued.
#[test]
fn expired_program_deadline_rejected_before_any_op_runs() {
    let (ctx, keys, mut rng) = setup();
    let a = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.5, 0.0)]);
    let service = EvalService::start(ServiceConfig::default());
    service.register_tenant("acme", ctx, keys);

    let past = Instant::now() - Duration::from_millis(5);
    let err = service
        .submit_opts(
            "acme",
            Request::Program {
                text: PROGRAM.into(),
                a,
            },
            Some(past),
        )
        .expect_err("expired program must be rejected");
    assert_eq!(err, ServeError::DeadlineExceeded);
    assert_eq!(service.queue_depth(), 0, "nothing may have been queued");
    service.shutdown();
}

/// A malformed program is a typed per-request eval failure, not a
/// panic and not a silent empty reply.
#[test]
fn malformed_program_is_a_typed_error() {
    let (ctx, keys, mut rng) = setup();
    let a = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.5, 0.0)]);
    let service = EvalService::start(ServiceConfig::default());
    service.register_tenant("acme", ctx, keys);

    let err = service
        .call(
            "acme",
            Request::Program {
                text: "this is not a trace".into(),
                a,
            },
        )
        .expect_err("malformed program must fail");
    match err {
        ServeError::Eval(EvalError::InvalidParams(msg)) => {
            assert!(msg.contains("program parse"), "{msg}");
        }
        other => panic!("unexpected error: {other:?}"),
    }
    service.shutdown();
}

/// Opcode 12 round-trips over loopback TCP: program text + seed
/// ciphertext up, the planned program's final output back.
#[test]
fn program_submission_round_trips_over_tcp() {
    let (ctx, keys, mut rng) = setup();
    let a = encrypt(
        &ctx,
        &keys,
        &mut rng,
        &[Complex::new(0.5, 0.0), Complex::new(-0.25, 0.125)],
    );

    let service = EvalService::start(ServiceConfig::default());
    let (addr, _accept) = tcp::listen(service, "127.0.0.1:0").expect("bind loopback");
    let client = tcp::Client::connect(addr).expect("connect");
    let keyset_frame = poseidon_wire::encode_keyset_public(&ctx, &keys);
    client
        .register_tenant("acme", &keyset_frame)
        .expect("register");

    let a_frame = poseidon_wire::encode_ciphertext(&ctx, &a);
    let reply_frame = client
        .program("acme", PROGRAM, &a_frame)
        .expect("program over tcp");
    let served = poseidon_wire::decode_ciphertext(&ctx, &reply_frame).expect("decode reply");

    let trace = poseidon_sim::program::parse(PROGRAM).expect("parse");
    let plan = plan_trace(&trace, &ctx, &PlanOptions::default()).expect("plan");
    let inputs = vec![a.clone(); plan.graph.inputs().len()];
    let mut eval = he_ckks::eval::Evaluator::new(&ctx);
    let local = execute(&plan, &mut eval, &inputs, &keys)
        .expect("local execution")
        .outputs
        .pop()
        .expect("program output");
    assert_eq!(digest_ciphertext(&served), digest_ciphertext(&local));
}
