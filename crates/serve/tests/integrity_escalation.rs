//! Faults-gated: a persistent datapath fault during a checked op comes
//! back as a per-request `IntegrityFault` response — the dispatcher and
//! the other tenants keep running.

#![cfg(feature = "faults")]

use he_ckks::cipher::Plaintext;
use he_ckks::context::CkksContext;
use he_ckks::encoding::Complex;
use he_ckks::error::EvalError;
use he_ckks::keys::KeySet;
use he_ckks::params::CkksParams;
use poseidon_faults::{FaultKind, FaultPlan, FaultSite};
use poseidon_serve::{EvalService, Request, ServeError, ServiceConfig};
use rand::SeedableRng;

#[test]
fn persistent_fault_escalates_per_request_and_service_survives() {
    let _guard = poseidon_faults::test_lock();
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xFA17);
    let keys = KeySet::generate(&ctx, &mut rng);
    let pt = Plaintext::new(
        ctx.encoder().encode_rns(
            ctx.chain_basis(),
            &[Complex::new(0.5, 0.0)],
            ctx.default_scale(),
        ),
        ctx.default_scale(),
    );
    let a = keys.public().encrypt(&pt, &mut rng);
    let b = keys.public().encrypt(&pt, &mut rng);

    let service = EvalService::start(ServiceConfig::default());
    service.register_tenant("acme", ctx, keys);

    // A persistent stuck-at corruption on RNS residues: duplicate
    // executions are corrupted differently, so the checked evaluator
    // detects, retries, detects again, and escalates.
    poseidon_faults::arm(FaultPlan::persistent(
        FaultSite::RnsResidue,
        FaultKind::StuckAt(0),
        0xDEAD,
    ));
    let result = service.call(
        "acme",
        Request::Mul {
            a: a.clone(),
            b: b.clone(),
        },
    );
    poseidon_faults::disarm();

    match result {
        Err(ServeError::Eval(EvalError::IntegrityFault { .. })) => {}
        other => panic!("expected an integrity escalation, got {other:?}"),
    }

    // Faults disarmed: the same request now succeeds on the same,
    // still-running service.
    service
        .call("acme", Request::Mul { a, b })
        .expect("post-fault mul");
}
