//! Loopback TCP smoke: encode → serve → decode → decrypt matches the
//! plaintext reference, and malformed traffic gets typed error frames
//! instead of killing the server.

use std::io::Write;

use he_ckks::cipher::Plaintext;
use he_ckks::context::CkksContext;
use he_ckks::encoding::Complex;
use he_ckks::keys::KeySet;
use he_ckks::params::CkksParams;
use poseidon_serve::tcp;
use poseidon_serve::{EvalService, ServeError, ServiceConfig};
use rand::SeedableRng;

fn encrypt(
    ctx: &CkksContext,
    keys: &KeySet,
    rng: &mut rand::rngs::StdRng,
    values: &[Complex],
) -> he_ckks::cipher::Ciphertext {
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), values, ctx.default_scale()),
        ctx.default_scale(),
    );
    keys.public().encrypt(&pt, rng)
}

#[test]
fn loopback_round_trip_decrypts_to_the_reference() {
    // Client-side key material; the server only ever sees the public set.
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x7C9);
    let mut keys = KeySet::generate(&ctx, &mut rng);
    keys.add_rotation_key(1, &mut rng);

    let service = EvalService::start(ServiceConfig::default());
    let (addr, _accept) = tcp::listen(service, "127.0.0.1:0").expect("bind loopback");
    let client = tcp::Client::connect(addr).expect("connect");

    // Provision the tenant over the wire — eval keys only, no secret.
    let keyset_frame = poseidon_wire::encode_keyset_public(&ctx, &keys);
    client
        .register_tenant("acme", &keyset_frame)
        .expect("register");

    let va = [Complex::new(0.5, 0.0), Complex::new(-0.25, 0.5)];
    let vb = [Complex::new(0.125, -0.125), Complex::new(0.75, 0.0)];
    let a = encrypt(&ctx, &keys, &mut rng, &va);
    let b = encrypt(&ctx, &keys, &mut rng, &vb);
    let a_frame = poseidon_wire::encode_ciphertext(&ctx, &a);
    let b_frame = poseidon_wire::encode_ciphertext(&ctx, &b);

    // add: slot-wise sum.
    let sum_frame = client.add("acme", &a_frame, &b_frame).expect("add");
    let sum = poseidon_wire::decode_ciphertext(&ctx, &sum_frame).expect("decode sum");
    let dec = keys.secret().decrypt(&sum);
    let got = ctx.encoder().decode_rns(dec.poly(), dec.scale(), 2);
    for (g, (x, y)) in got.iter().zip(va.iter().zip(&vb)) {
        assert!((g.re - (x.re + y.re)).abs() < 1e-3, "sum drifted: {g:?}");
        assert!((g.im - (x.im + y.im)).abs() < 1e-3, "sum drifted: {g:?}");
    }

    // rotate(1): bit-identical to the local hoisted rotation.
    let rot_frame = client.rotate("acme", &a_frame, 1).expect("rotate");
    let rot = poseidon_wire::decode_ciphertext(&ctx, &rot_frame).expect("decode rot");
    let expected = he_ckks::eval::Evaluator::new(&ctx).rotate(&a, 1, &keys);
    assert_eq!(rot.c0(), expected.c0());
    assert_eq!(rot.c1(), expected.c1());

    // mul: slot-wise product (then still decryptable at the wire scale).
    let prod_frame = client.mul("acme", &a_frame, &b_frame).expect("mul");
    let prod = poseidon_wire::decode_ciphertext(&ctx, &prod_frame).expect("decode prod");
    let dec = keys.secret().decrypt(&prod);
    let got = ctx.encoder().decode_rns(dec.poly(), dec.scale(), 2);
    for (g, (x, y)) in got.iter().zip(va.iter().zip(&vb)) {
        let want = *x * *y;
        assert!(
            (g.re - want.re).abs() < 1e-2,
            "product drifted: {g:?} vs {want:?}"
        );
        assert!(
            (g.im - want.im).abs() < 1e-2,
            "product drifted: {g:?} vs {want:?}"
        );
    }
}

#[test]
fn server_reports_typed_errors_over_the_wire() {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE44);
    let keys = KeySet::generate(&ctx, &mut rng);

    let service = EvalService::start(ServiceConfig::default());
    let (addr, _accept) = tcp::listen(service, "127.0.0.1:0").expect("bind loopback");
    let client = tcp::Client::connect(addr).expect("connect");

    let ct = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.5, 0.0)]);
    let frame = poseidon_wire::encode_ciphertext(&ctx, &ct);

    // Unknown tenant (code 1).
    match client.square("ghost", &frame) {
        Err(ServeError::Remote { code: 1, .. }) => {}
        other => panic!("expected unknown-tenant error, got {other:?}"),
    }

    // Registered tenant, corrupt ciphertext frame → wire error (code 4).
    let keyset_frame = poseidon_wire::encode_keyset_public(&ctx, &keys);
    client
        .register_tenant("acme", &keyset_frame)
        .expect("register");
    let mut corrupt = frame.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x40;
    match client.square("acme", &corrupt) {
        Err(ServeError::Remote { code: 4, message }) => {
            assert!(
                message.contains("checksum"),
                "unexpected message: {message}"
            );
        }
        other => panic!("expected wire error, got {other:?}"),
    }

    // Missing rotation key → eval error (code 3), connection still fine.
    match client.rotate("acme", &frame, 5) {
        Err(ServeError::Remote { code: 3, message }) => {
            assert!(
                message.contains("rotation key"),
                "unexpected message: {message}"
            );
        }
        other => panic!("expected eval error, got {other:?}"),
    }

    // And the connection still works for a valid request afterwards.
    client.square("acme", &frame).expect("square after errors");
}

#[test]
fn protocol_garbage_gets_an_error_frame_not_a_dead_server() {
    let service = EvalService::start(ServiceConfig::default());
    let (addr, _accept) = tcp::listen(service, "127.0.0.1:0").expect("bind loopback");

    // Raw garbage on one connection: a framed body whose first 8 bytes
    // parse as a request id but whose remainder is not a valid request.
    // The server must answer with an error frame (echoed id, status 1,
    // code 7) rather than dropping silently or crashing.
    let mut raw = std::net::TcpStream::connect(addr).expect("connect");
    let junk = b"\xEEgarbage";
    raw.write_all(&(junk.len() as u32).to_le_bytes())
        .expect("len");
    raw.write_all(junk).expect("body");
    let mut response = Vec::new();
    use std::io::Read;
    let mut prefix = [0u8; 4];
    raw.read_exact(&mut prefix).expect("response prefix");
    response.resize(u32::from_le_bytes(prefix) as usize, 0);
    raw.read_exact(&mut response).expect("response body");
    assert_eq!(&response[..8], junk, "expected the request id echoed");
    assert_eq!(response[8], 1, "expected an error status");
    assert_eq!(response[9], 7, "expected a protocol error code");

    // The listener survived: a fresh, well-behaved connection works.
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let keys = KeySet::generate(&ctx, &mut rng);
    let client = tcp::Client::connect(addr).expect("reconnect");
    client
        .register_tenant("acme", &poseidon_wire::encode_keyset_public(&ctx, &keys))
        .expect("register after garbage");
}
