//! Bounded key cache: resident decoded keysets stay under the
//! configured cap, evicted tenants reload bit-identically from their
//! retained frames, and in-process (pinned) tenants are never evicted.

use he_ckks::cipher::{Ciphertext, Plaintext};
use he_ckks::context::CkksContext;
use he_ckks::encoding::Complex;
use he_ckks::eval::Evaluator;
use he_ckks::keys::KeySet;
use he_ckks::params::CkksParams;
use poseidon_serve::{EvalService, Request, ServiceConfig};
use rand::SeedableRng;

fn setup(seed: u64) -> (CkksContext, KeySet, rand::rngs::StdRng) {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut keys = KeySet::generate(&ctx, &mut rng);
    keys.add_rotation_key(1, &mut rng);
    (ctx, keys, rng)
}

fn encrypt(
    ctx: &CkksContext,
    keys: &KeySet,
    rng: &mut rand::rngs::StdRng,
    values: &[Complex],
) -> Ciphertext {
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), values, ctx.default_scale()),
        ctx.default_scale(),
    );
    keys.public().encrypt(&pt, rng)
}

#[test]
fn eviction_bounds_residents_and_reload_is_bit_identical() {
    let (ctx, keys, mut rng) = setup(0x10CA);
    let eval = Evaluator::new(&ctx);
    let frame = poseidon_wire::encode_keyset_public(&ctx, &keys);

    let service = EvalService::start(ServiceConfig {
        key_cache_capacity: 2,
        ..ServiceConfig::default()
    });
    for i in 0..4 {
        service
            .register_tenant_frame(format!("t{i}"), &frame)
            .expect("register frame");
    }
    // Four registered, but only the cap's worth of decoded keysets live.
    assert_eq!(service.resident_tenants(), 2, "LRU cap not enforced");

    // "t0" and "t1" were evicted; serving them re-decodes their frames
    // and the rebuilt evaluation state answers bit-identically.
    let ct = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.5, -0.25)]);
    let want_sq = eval.square(&ct, &keys);
    let want_rot = eval.rotate(&ct, 1, &keys);
    for tenant in ["t0", "t1", "t2", "t3"] {
        let got = service
            .call(tenant, Request::Square { a: ct.clone() })
            .expect("square after reload");
        assert_eq!(got.c0(), want_sq.c0());
        assert_eq!(got.c1(), want_sq.c1());
        let got = service
            .call(
                tenant,
                Request::Rotate {
                    a: ct.clone(),
                    steps: 1,
                },
            )
            .expect("rotate after reload");
        assert_eq!(got.c0(), want_rot.c0());
        assert_eq!(got.c1(), want_rot.c1());
        // Touching every tenant churns the cache but never exceeds it.
        assert!(
            service.resident_tenants() <= 2,
            "cache grew past capacity while serving {tenant}"
        );
    }
}

#[test]
fn pinned_in_process_tenants_are_never_evicted() {
    let (ctx, keys, mut rng) = setup(0x91AE);
    let frame = poseidon_wire::encode_keyset_public(&ctx, &keys);

    let service = EvalService::start(ServiceConfig {
        key_cache_capacity: 1,
        ..ServiceConfig::default()
    });
    service.register_tenant("pinned", ctx.clone(), keys.clone());
    for i in 0..3 {
        service
            .register_tenant_frame(format!("f{i}"), &frame)
            .expect("register frame");
    }
    // One pinned resident plus at most one unpinned.
    assert_eq!(service.resident_tenants(), 2);

    let ct = encrypt(&ctx, &keys, &mut rng, &[Complex::new(0.25, 0.0)]);
    service
        .call("pinned", Request::Square { a: ct })
        .expect("pinned tenant still serves after frame churn");
}
