//! Multi-tenant sharded evaluation service over the Poseidon wire
//! format.
//!
//! The paper's deployment model (§VII) is an accelerator shared by many
//! client keys: requests arrive as serialized ciphertexts, are queued,
//! batched, and executed against per-tenant key material resident on the
//! device. This crate is the software model of that serving layer, built
//! on std-only threads and scaled the way the paper scales its memory
//! system — many independent channels, placement by affinity, stealing
//! for skew:
//!
//! - **Sharded dispatch with tenant affinity** —
//!   [`ServiceConfig::shards`] dispatcher workers drain per-shard
//!   queues; a job's shard is the FNV-1a hash of its tenant id, so one
//!   tenant's requests stay on one worker and rotation coalescing (see
//!   below) keeps firing. An idle worker steals from the *back* of a
//!   loaded victim's queue — only when the victim is busy or its
//!   backlog exceeds `max_batch`, so stealing never splits a batch a
//!   resident worker was about to coalesce. Outputs are bit-identical
//!   at every shard count.
//! - **Global admission control** — [`EvalService::submit`] rejects
//!   with [`ServeError::QueueFull`] at one capacity bound shared by all
//!   shards instead of buffering without bound; rejects are counted
//!   (`serve.reject`, plus per-shard `serve.shard.N` and `serve.steal`)
//!   so operators see backpressure and skew.
//! - **Batching scheduler** — each dispatcher drains up to
//!   `max_batch` jobs at once and coalesces rotation requests on the
//!   *same ciphertext* into one hoisted
//!   [`Evaluator::try_rotate_many`] call: the expensive digit
//!   decomposition (`keyswitch.hoist`) is paid once per batch instead of
//!   once per request — the software analogue of the paper's reuse of a
//!   decomposed operand across automorphisms.
//! - **Bounded key cache** — tenants registered from a wire frame keep
//!   the encoded keyset as a cheap `Arc<[u8]>`; the decoded key
//!   material is a bounded LRU resident (`key_cache_capacity`). An
//!   evicted tenant's next request re-decodes from the retained frame
//!   (outside the lock, double-checked install) bit-identically;
//!   in-process registrations are pinned. Counters:
//!   `serve.keycache.{hit,miss,evict}`.
//! - **Integrity escalation** — non-rotation ops run under
//!   [`CheckedEvaluator`] (dual execution + digest compare), so a
//!   persistent datapath fault surfaces as a per-request
//!   [`EvalError::IntegrityFault`] response, never a crashed server.
//!   Worker panics are contained and returned as
//!   [`ServeError::Internal`].
//! - **Multiplexed TCP front-end** — every [`tcp`] request carries a
//!   client-chosen request id echoed in the reply, so one socket holds
//!   many requests in flight and replies return in completion order.
//!   The [`tcp::Client`] is `&self`-shareable (submit from any thread,
//!   a reader demuxes by id), payloads decode through borrowed frame
//!   views into pooled scratch rows, and multi-megabyte keysets stream
//!   in chunks ([`tcp::Client::register_tenant_chunked`]).
//!
//! [`CkksContext`]: he_ckks::context::CkksContext
//! [`Evaluator`]: he_ckks::eval::Evaluator
//! [`Evaluator::try_rotate_many`]: he_ckks::eval::Evaluator::try_rotate_many
//! [`CheckedEvaluator`]: he_ckks::integrity::CheckedEvaluator
//! [`EvalError::IntegrityFault`]: he_ckks::error::EvalError::IntegrityFault

use std::fmt;

use he_ckks::cipher::{Ciphertext, Plaintext};
use he_ckks::error::EvalError;
use poseidon_wire::WireError;

mod key_cache;
mod service;
mod shard;
pub mod tcp;

pub use service::{EvalService, ServiceConfig, TenantContext, Ticket, DEFAULT_PRIORITY};

/// One evaluation request against a tenant's key material. Ciphertexts
/// are owned: the service executes asynchronously to the submitter.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Request {
    /// Homomorphic addition.
    Add {
        /// Left operand.
        a: Ciphertext,
        /// Right operand.
        b: Ciphertext,
    },
    /// Homomorphic subtraction.
    Sub {
        /// Left operand.
        a: Ciphertext,
        /// Right operand.
        b: Ciphertext,
    },
    /// Relinearised multiplication.
    Mul {
        /// Left operand.
        a: Ciphertext,
        /// Right operand.
        b: Ciphertext,
    },
    /// Relinearised squaring.
    Square {
        /// Operand.
        a: Ciphertext,
    },
    /// Rescale by the top chain prime.
    Rescale {
        /// Operand.
        a: Ciphertext,
    },
    /// Slot rotation — the request kind the scheduler coalesces.
    Rotate {
        /// Operand.
        a: Ciphertext,
        /// Left-rotation step count.
        steps: i64,
    },
    /// Slot-wise complex conjugation.
    Conjugate {
        /// Operand.
        a: Ciphertext,
    },
    /// Ciphertext + plaintext addition.
    AddPlain {
        /// Ciphertext operand.
        a: Ciphertext,
        /// Plaintext operand.
        pt: Plaintext,
    },
    /// Ciphertext × plaintext multiplication.
    MulPlain {
        /// Ciphertext operand.
        a: Ciphertext,
        /// Plaintext operand.
        pt: Plaintext,
    },
    /// A whole `.pos` program, compiled through the evaluation planner
    /// and executed as **one** admission-controlled unit: the deadline,
    /// priority ladder, and replay cache govern the entire program, and
    /// the planner's rotation hoisting / rescale sinking apply across
    /// its full dataflow instead of per wire op.
    Program {
        /// Program text in the `.pos` trace format
        /// (`poseidon_sim::program`).
        text: String,
        /// Seed ciphertext bound to every graph input slot.
        a: Ciphertext,
    },
}

/// Why a request was rejected or failed. Like the wire layer, serving is
/// panic-free: every failure mode is a typed response.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// No tenant registered under this identifier.
    UnknownTenant(String),
    /// Admission control: the bounded queue is at capacity. Carries the
    /// observed depth so client backoff can be informed rather than
    /// blind.
    QueueFull {
        /// Jobs queued across all shards at the moment of rejection.
        depth: usize,
        /// The configured queue bound.
        capacity: usize,
    },
    /// Graceful degradation: the service is under sustained pressure and
    /// shed this request because its tenant sits below the current
    /// priority floor. Higher-priority tenants are still admitted.
    Overloaded {
        /// Suggested client backoff before resubmitting, derived from
        /// the queue depth at shed time.
        retry_after_ms: u64,
    },
    /// The request's deadline elapsed before execution (at admission,
    /// dequeue, or just before running); no work was performed.
    DeadlineExceeded,
    /// The evaluation itself failed (missing key, level exhaustion,
    /// integrity escalation, …).
    Eval(EvalError),
    /// A wire frame in the request could not be decoded.
    Wire(WireError),
    /// The service is shutting down; queued jobs are drained with this.
    ShuttingDown,
    /// A contained worker panic or broken internal channel.
    Internal(String),
    /// A malformed TCP protocol frame (not a wire-format issue).
    Protocol(String),
    /// A client-side socket error.
    Io(String),
    /// A server-reported failure, as seen by the TCP client: the
    /// server's error code (see [`tcp`] docs) plus its message.
    Remote {
        /// Server-side error code (1 = unknown tenant, 2 = queue full,
        /// 3 = eval, 4 = wire, 5 = shutting down, 6 = internal,
        /// 7 = protocol; codes 8 = overloaded and 9 = deadline exceeded
        /// are mapped back to their typed variants by the client and
        /// never surface as `Remote`).
        code: u8,
        /// The server's rendered error message.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownTenant(id) => write!(f, "unknown tenant {id:?}"),
            ServeError::QueueFull { depth, capacity } => {
                write!(
                    f,
                    "queue full: admission control rejected (depth {depth} of capacity {capacity})"
                )
            }
            ServeError::Overloaded { retry_after_ms } => {
                write!(
                    f,
                    "overloaded: request shed by priority ladder (retry after {retry_after_ms} ms)"
                )
            }
            ServeError::DeadlineExceeded => {
                write!(f, "deadline exceeded before execution")
            }
            ServeError::Eval(e) => write!(f, "evaluation failed: {e}"),
            ServeError::Wire(e) => write!(f, "wire decode failed: {e}"),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Internal(msg) => write!(f, "internal serving error: {msg}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Io(msg) => write!(f, "socket error: {msg}"),
            ServeError::Remote { code, message } => {
                write!(f, "server error (code {code}): {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EvalError> for ServeError {
    fn from(e: EvalError) -> Self {
        ServeError::Eval(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

/// Queue/batch observability scopes (compiled away without `telemetry`).
#[cfg(feature = "telemetry")]
pub(crate) mod tel {
    use poseidon_telemetry::{Metric, Registry};
    use std::sync::{Arc, OnceLock};

    macro_rules! scope_fn {
        ($fn_name:ident, $scope:literal) => {
            pub fn $fn_name() -> &'static Arc<Metric> {
                static M: OnceLock<Arc<Metric>> = OnceLock::new();
                M.get_or_init(|| Registry::global().scope($scope))
            }
        };
    }

    scope_fn!(enqueue, "serve.enqueue");
    scope_fn!(dequeue, "serve.dequeue");
    scope_fn!(batch, "serve.batch.size");
    scope_fn!(reject, "serve.reject");
    scope_fn!(steal, "serve.steal");
    scope_fn!(keycache_hit, "serve.keycache.hit");
    scope_fn!(keycache_miss, "serve.keycache.miss");
    scope_fn!(keycache_evict, "serve.keycache.evict");
    scope_fn!(shed, "serve.shed");
    scope_fn!(deadline, "serve.deadline");
    scope_fn!(replay_hit, "serve.replay.hit");
    scope_fn!(watchdog_restart, "serve.watchdog.restart");
    scope_fn!(watchdog_requeued, "serve.watchdog.requeued");
    scope_fn!(watchdog_failed, "serve.watchdog.failed");
    scope_fn!(replay_coalesced, "serve.replay.coalesced");
    scope_fn!(program, "serve.program");
}
