//! The in-process service: tenant registry (LRU key cache), sharded
//! bounded queues, the batching dispatcher workers, and the watchdog
//! supervisor that restarts them.

use std::collections::{HashMap, VecDeque};
use std::ops::Deref;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use he_ckks::cipher::Ciphertext;
use he_ckks::context::CkksContext;
use he_ckks::eval::Evaluator;
use he_ckks::integrity::{digest_ciphertext, CheckedEvaluator};
use he_ckks::keys::KeySet;

use crate::key_cache::KeyCache;
use crate::shard::{dispatch_loop, Job, Reply, SharedQueues};
use crate::{Request, ServeError};

/// The default tenant priority: tenants never marked otherwise sit here
/// and are only rejected at the hard [`ServeError::QueueFull`] bound,
/// never shed by the overload ladder.
pub const DEFAULT_PRIORITY: u8 = 128;

/// Sizing knobs for the queues and scheduler.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Admission-control bound: submissions beyond this many queued jobs
    /// (summed across shards) are rejected with
    /// [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Upper bound on jobs drained into one scheduling batch (the
    /// coalescing window for same-ciphertext rotations).
    pub max_batch: usize,
    /// Dispatcher worker count. Each tenant hashes to one shard
    /// (affinity keeps its rotation coalescing intact); idle workers
    /// steal from the back of loaded shards. `0` is treated as `1`.
    pub shards: usize,
    /// How many frame-registered tenants may hold decoded key material
    /// at once; beyond this the least-recently-used tenant's keys are
    /// dropped and re-decoded from its retained frame on next use.
    /// In-process registrations are pinned and never counted.
    pub key_cache_capacity: usize,
    /// How often the watchdog scans the dispatcher workers for deaths
    /// and stalls. `0` disables the watchdog entirely.
    pub watchdog_interval_ms: u64,
    /// A worker continuously executing one batch for longer than this is
    /// declared stalled: its queued jobs fail over to a surviving shard
    /// and a replacement worker is installed. Generous by default —
    /// integrity-checked batches are milliseconds, not seconds. `0`
    /// disables stall detection (deaths are still handled).
    pub stall_timeout_ms: u64,
    /// Entry bound on the idempotent-replay cache: completed `(tenant,
    /// request id)` results retained so a client retry of an
    /// already-executed request returns the cached reply instead of
    /// re-running (exactly-once observable effect). Eviction is
    /// tenant-fair FIFO: the oldest entry of the tenant holding the
    /// most entries goes first, so one chatty tenant cannot evict every
    /// other tenant's window.
    pub replay_capacity: usize,
    /// Approximate byte bound on the same cache. Each cached success
    /// clones a full ciphertext (potentially megabytes of RNS
    /// residues), so the entry count alone is not a memory bound; FIFO
    /// eviction also fires once the summed approximate entry sizes
    /// exceed this. The newest entry is always retained. `0` disables
    /// the byte bound.
    pub replay_capacity_bytes: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            max_batch: 16,
            shards: 1,
            key_cache_capacity: 64,
            watchdog_interval_ms: 25,
            stall_timeout_ms: 10_000,
            replay_capacity: 256,
            replay_capacity_bytes: 64 << 20,
        }
    }
}

/// Per-tenant evaluation state, built once at registration (or rebuilt
/// deterministically from the retained keyset frame after eviction).
pub(crate) struct Tenant {
    pub(crate) ctx: CkksContext,
    pub(crate) keys: KeySet,
    pub(crate) eval: Evaluator,
    pub(crate) checked: CheckedEvaluator,
}

impl Tenant {
    pub(crate) fn build(ctx: CkksContext, keys: KeySet) -> Self {
        let eval = Evaluator::new(&ctx);
        let checked = CheckedEvaluator::new(&ctx);
        Self {
            ctx,
            keys,
            eval,
            checked,
        }
    }
}

/// A cheap handle on a tenant's [`CkksContext`] — an `Arc` clone, not a
/// context copy. Dereferences to the context for decoding wire frames.
#[derive(Clone)]
pub struct TenantContext {
    tenant: Arc<Tenant>,
}

impl Deref for TenantContext {
    type Target = CkksContext;

    fn deref(&self) -> &CkksContext {
        &self.tenant.ctx
    }
}

impl AsRef<CkksContext> for TenantContext {
    fn as_ref(&self) -> &CkksContext {
        &self.tenant.ctx
    }
}

/// Handle to one submitted job; [`wait`](Ticket::wait) blocks for its
/// result.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Ciphertext, ServeError>>,
}

impl Ticket {
    /// Blocks until a dispatcher answers this job.
    ///
    /// # Errors
    ///
    /// Whatever the dispatcher reported — or [`ServeError::Internal`] if
    /// it dropped the reply channel without answering.
    pub fn wait(self) -> Result<Ciphertext, ServeError> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(ServeError::Internal("reply channel dropped".into())))
    }

    /// Blocks for at most `timeout`; `None` means the job is still in
    /// flight (the ticket stays valid).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Ciphertext, ServeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Some(Err(ServeError::Internal("reply channel dropped".into())))
            }
        }
    }
}

/// Bounded FIFO cache of completed results keyed `(tenant, request
/// id)`: the server half of safe resubmission. Only *executed* outcomes
/// are cached (success or a deterministic evaluation error) — admission
/// rejections never ran, so retrying them must actually run.
///
/// Two bounds hold at once: a global entry count and a global
/// *approximate byte* budget (each cached success clones full RNS
/// polynomials, so entry count alone could pin hundreds of megabytes).
/// Eviction is tenant-fair: the victim is the oldest entry of whichever
/// tenant holds the most cached entries, so one chatty tenant shrinks
/// its own window first and cannot FIFO-evict the other tenants'
/// idempotency windows. With a single tenant this degenerates to plain
/// FIFO.
struct ReplayCache {
    capacity: usize,
    capacity_bytes: usize,
    state: Mutex<ReplayState>,
}

struct CachedOutcome {
    result: Result<Ciphertext, ServeError>,
    /// Approximate heap size of `result`, fixed at insert time.
    cost: usize,
}

/// Approximate heap bytes held by one cached outcome. Residue rows
/// dominate (`2 polys × limbs × n × 8 bytes`); everything else is a
/// flat per-entry overhead.
fn outcome_cost(result: &Result<Ciphertext, ServeError>) -> usize {
    const ENTRY_OVERHEAD: usize = 96;
    match result {
        Ok(ct) => ENTRY_OVERHEAD + 8 * ct.n() * (ct.c0().level_count() + ct.c1().level_count()),
        Err(_) => ENTRY_OVERHEAD,
    }
}

#[derive(Default)]
struct ReplayState {
    map: HashMap<(Arc<str>, u64), CachedOutcome>,
    order: VecDeque<(Arc<str>, u64)>,
    bytes: usize,
    per_tenant: HashMap<Arc<str>, usize>,
}

impl ReplayState {
    fn remove_key(&mut self, key: &(Arc<str>, u64)) {
        if let Some(old) = self.map.remove(key) {
            self.bytes -= old.cost;
            if let Some(count) = self.per_tenant.get_mut(&key.0) {
                *count -= 1;
                if *count == 0 {
                    self.per_tenant.remove(&key.0);
                }
            }
        }
    }

    /// Evicts one entry, tenant-fairly: the oldest entry belonging to a
    /// tenant currently holding the most cached entries. The order scan
    /// is linear, but the deque is bounded by the (small) global entry
    /// cap. Scanning from the front means the victim is never the
    /// just-inserted back entry while anything older ties it.
    fn evict_fair(&mut self) {
        let heaviest = self.per_tenant.values().copied().max().unwrap_or(0);
        let victim = self
            .order
            .iter()
            .position(|(t, _)| self.per_tenant.get(t).copied().unwrap_or(0) == heaviest);
        if let Some(i) = victim {
            let old = self.order.remove(i).expect("position within deque");
            self.remove_key(&old);
        }
    }
}

impl ReplayCache {
    fn new(capacity: usize, capacity_bytes: usize) -> Self {
        Self {
            capacity,
            capacity_bytes,
            state: Mutex::new(ReplayState::default()),
        }
    }

    fn get(&self, tenant: &Arc<str>, id: u64) -> Option<Result<Ciphertext, ServeError>> {
        let state = self.state.lock().expect("replay cache poisoned");
        state
            .map
            .get(&(Arc::clone(tenant), id))
            .map(|o| o.result.clone())
    }

    fn put(&self, tenant: Arc<str>, id: u64, result: Result<Ciphertext, ServeError>) {
        if self.capacity == 0 {
            return;
        }
        let cost = outcome_cost(&result);
        let mut state = self.state.lock().expect("replay cache poisoned");
        let key = (tenant, id);
        match state
            .map
            .insert(key.clone(), CachedOutcome { result, cost })
        {
            None => {
                state.order.push_back(key.clone());
                state.bytes += cost;
                *state.per_tenant.entry(Arc::clone(&key.0)).or_insert(0) += 1;
            }
            Some(old) => {
                state.bytes = state.bytes - old.cost + cost;
            }
        }
        // The newest entry always survives (order.len() > 1): an
        // oversized result must still be replayable at least until the
        // next insert, or retrying it would re-execute.
        while (state.order.len() > self.capacity
            || (self.capacity_bytes > 0 && state.bytes > self.capacity_bytes))
            && state.order.len() > 1
        {
            state.evict_fair();
        }
    }

    fn len(&self) -> usize {
        self.state.lock().expect("replay cache poisoned").map.len()
    }

    fn bytes(&self) -> usize {
        self.state.lock().expect("replay cache poisoned").bytes
    }
}

/// The boxed completion sink of a tagged submission.
type TaggedSink = Box<dyn FnOnce(u64, Result<Ciphertext, ServeError>) + Send>;

/// In-flight replay-flagged executions and the sinks attached to each,
/// keyed `(tenant, request id)`.
type PendingSinks = HashMap<(Arc<str>, u64), Vec<TaggedSink>>;

/// Replay-flagged executions currently queued or executing, keyed
/// `(tenant, request id)`. A duplicate replay submission that *races*
/// the original — retried before the first execution completed —
/// attaches its sink here instead of enqueueing a second execution;
/// the primary's completion fans the one result out to every attached
/// waiter. Completion writes the replay cache *before* clearing its
/// entry here, so a submitter that misses this map and then reads the
/// cache can never miss both.
#[derive(Default)]
struct ReplayPending {
    map: Mutex<PendingSinks>,
}

struct WorkerSlot {
    handle: JoinHandle<()>,
}

/// Owns the dispatcher worker handles and performs the watchdog scan:
/// a finished handle outside shutdown is a death (escaped panic), a
/// busy-since pulse past the stall bound is a wedge. Either way the
/// victim shard's queued jobs fail over to a surviving sibling, the
/// worker's epoch is retired (a recovered zombie exits on observing
/// it), and a fresh worker is installed.
struct Supervisor {
    queues: Arc<SharedQueues>,
    slots: Mutex<Vec<WorkerSlot>>,
    stall_timeout_ms: u64,
}

impl Supervisor {
    fn spawn_worker(queues: &Arc<SharedQueues>, i: usize, epoch: u64) -> JoinHandle<()> {
        let q = Arc::clone(queues);
        std::thread::Builder::new()
            .name(format!("poseidon-serve-dispatch-{i}"))
            .spawn(move || dispatch_loop(q, i, epoch))
            .expect("spawn dispatcher")
    }

    fn scan(&self) {
        if self.queues.is_shutdown() {
            return;
        }
        let mut slots = self.slots.lock().expect("worker handles poisoned");
        for (i, slot) in slots.iter_mut().enumerate() {
            let dead = slot.handle.is_finished();
            let stalled = !dead
                && self.stall_timeout_ms > 0
                && self.queues.busy_for_ms(i) > self.stall_timeout_ms;
            if !dead && !stalled {
                continue;
            }
            if self.queues.is_shutdown() {
                // Workers exit on their own during shutdown; a finished
                // handle here is drain, not death.
                return;
            }
            let requeued = self.queues.requeue_shard(i);
            let epoch = self.queues.bump_epoch(i);
            // A stalled zombie may sleep forever holding its batch; its
            // waiters must not. Fail the shard's in-flight replies with
            // a typed Internal now — the zombie's own sends become
            // no-ops once the slots are empty (exactly-once either
            // way). A *dead* worker's unwind already answered its batch
            // through the Reply drop guards, so this drains nothing.
            let failed = if stalled {
                self.queues.fail_in_flight(i)
            } else {
                0
            };
            let fresh = Self::spawn_worker(&self.queues, i, epoch);
            let old = std::mem::replace(slot, WorkerSlot { handle: fresh });
            if dead {
                // Reap the panicked thread. A stalled zombie cannot be
                // joined (it may be wedged indefinitely); dropping its
                // handle detaches it, and the retired epoch guarantees
                // it exits without touching the queues if it recovers.
                let _ = old.handle.join();
            }
            #[cfg(feature = "telemetry")]
            {
                crate::tel::watchdog_restart().add(1);
                if requeued > 0 {
                    crate::tel::watchdog_requeued().add(requeued as u64);
                }
                if failed > 0 {
                    crate::tel::watchdog_failed().add(failed as u64);
                }
            }
            #[cfg(not(feature = "telemetry"))]
            let _ = (requeued, failed);
        }
    }

    fn shutdown_join(&self) {
        let handles: Vec<_> = self
            .slots
            .lock()
            .expect("worker handles poisoned")
            .drain(..)
            .collect();
        for slot in handles {
            let _ = slot.handle.join();
        }
    }
}

/// The batch evaluation service. `shards` dispatcher workers drain
/// per-tenant-affine bounded queues in batches under a watchdog
/// supervisor; see the crate docs for the scheduling and resilience
/// policies.
pub struct EvalService {
    queues: Arc<SharedQueues>,
    tenants: KeyCache,
    supervisor: Arc<Supervisor>,
    watchdog: Mutex<Option<JoinHandle<()>>>,
    replay: Arc<ReplayCache>,
    replay_pending: Arc<ReplayPending>,
    priorities: Mutex<HashMap<String, u8>>,
}

impl EvalService {
    /// Starts the service, its dispatcher workers, and (unless
    /// `watchdog_interval_ms` is 0) the watchdog supervisor thread.
    pub fn start(config: ServiceConfig) -> Arc<Self> {
        let shards = config.shards.max(1);
        let queues = Arc::new(SharedQueues::new(
            shards,
            config.queue_capacity,
            config.max_batch,
        ));
        let slots = (0..shards)
            .map(|i| WorkerSlot {
                handle: Supervisor::spawn_worker(&queues, i, 0),
            })
            .collect();
        let supervisor = Arc::new(Supervisor {
            queues: Arc::clone(&queues),
            slots: Mutex::new(slots),
            stall_timeout_ms: config.stall_timeout_ms,
        });
        let watchdog = if config.watchdog_interval_ms > 0 {
            let sup = Arc::clone(&supervisor);
            let interval = Duration::from_millis(config.watchdog_interval_ms);
            Some(
                std::thread::Builder::new()
                    .name("poseidon-serve-watchdog".into())
                    .spawn(move || loop {
                        std::thread::sleep(interval);
                        if sup.queues.is_shutdown() {
                            return;
                        }
                        sup.scan();
                    })
                    .expect("spawn watchdog"),
            )
        } else {
            None
        };
        Arc::new(Self {
            queues,
            tenants: KeyCache::new(config.key_cache_capacity),
            supervisor,
            watchdog: Mutex::new(watchdog),
            replay: Arc::new(ReplayCache::new(
                config.replay_capacity,
                config.replay_capacity_bytes,
            )),
            replay_pending: Arc::new(ReplayPending::default()),
            priorities: Mutex::new(HashMap::new()),
        })
    }

    /// Registers (or replaces) a tenant from in-process key material.
    /// Such tenants have no frame to reload from, so their decoded state
    /// is pinned resident (never evicted by the key cache).
    pub fn register_tenant(&self, id: impl Into<String>, ctx: CkksContext, keys: KeySet) {
        let id: Arc<str> = Arc::from(id.into());
        self.tenants
            .insert_pinned(id, Arc::new(Tenant::build(ctx, keys)));
    }

    /// Registers a tenant from a serialized key-set frame (the TCP
    /// provisioning path). The frame carries its own parameters; the
    /// context is derived deterministically from them. The frame is
    /// retained so the decoded keys can be evicted under memory pressure
    /// and rebuilt bit-identically on next use.
    ///
    /// # Errors
    ///
    /// [`ServeError::Wire`] if the frame does not decode.
    pub fn register_tenant_frame(
        &self,
        id: impl Into<String>,
        frame: &[u8],
    ) -> Result<(), ServeError> {
        let (ctx, keys) = poseidon_wire::decode_keyset(frame)?;
        let id: Arc<str> = Arc::from(id.into());
        self.tenants
            .insert_frame(id, Arc::from(frame), Arc::new(Tenant::build(ctx, keys)));
        Ok(())
    }

    /// Sets a tenant's priority for the overload ladder. The default is
    /// [`DEFAULT_PRIORITY`] (128): under sustained pressure, priorities
    /// below 64 shed at 3/4 queue capacity and priorities below 128 at
    /// 7/8, both as typed [`ServeError::Overloaded`]; tenants at or
    /// above the default only ever see the hard
    /// [`ServeError::QueueFull`] bound.
    pub fn set_tenant_priority(&self, id: impl Into<String>, priority: u8) {
        self.priorities
            .lock()
            .expect("priorities poisoned")
            .insert(id.into(), priority);
    }

    /// The tenant's current overload-ladder priority.
    pub fn tenant_priority(&self, id: &str) -> u8 {
        self.priorities
            .lock()
            .expect("priorities poisoned")
            .get(id)
            .copied()
            .unwrap_or(DEFAULT_PRIORITY)
    }

    pub(crate) fn tenant(&self, id: &str) -> Result<Option<Arc<Tenant>>, ServeError> {
        self.tenants.get(id)
    }

    /// The tenant's context, for decoding its wire frames — a cheap
    /// shared handle (no context clone; the historical API copied the
    /// full prime chain and NTT tables per lookup).
    pub fn tenant_context(&self, id: &str) -> Option<TenantContext> {
        self.tenants
            .get(id)
            .ok()
            .flatten()
            .map(|tenant| TenantContext { tenant })
    }

    /// Decoded tenants currently resident in the key cache (pinned
    /// registrations included) — observability for tests and operators.
    pub fn resident_tenants(&self) -> usize {
        self.tenants.resident()
    }

    /// The configured dispatcher shard count.
    pub fn shards(&self) -> usize {
        self.queues.shard_count()
    }

    /// Which shard a tenant's jobs land on (FNV-1a affinity).
    pub fn shard_of(&self, tenant_id: &str) -> usize {
        self.queues.shard_for(tenant_id, self.queues.shard_count())
    }

    /// Completed results currently retained by the idempotent-replay
    /// cache (observability for tests and operators).
    pub fn replay_entries(&self) -> usize {
        self.replay.len()
    }

    /// Approximate bytes currently pinned by the idempotent-replay
    /// cache (observability for tests and operators).
    pub fn replay_bytes(&self) -> usize {
        self.replay.bytes()
    }

    /// Replay-flagged `(tenant, id)` executions currently queued or
    /// executing — duplicates of these attach to the pending execution
    /// instead of running twice (observability for tests and
    /// operators).
    pub fn replay_in_flight(&self) -> usize {
        self.replay_pending
            .map
            .lock()
            .expect("replay pending poisoned")
            .len()
    }

    /// Heartbeat count for one dispatcher worker — ticks every time the
    /// worker returns to the queue, so a flatlined value under load
    /// means a wedge (the watchdog's view, exposed for observability).
    pub fn worker_beats(&self, shard: usize) -> u64 {
        self.queues.beats(shard)
    }

    /// Jobs one dispatcher worker has dequeued but not yet answered —
    /// the replies the watchdog would fail with a typed error if the
    /// worker stalled (observability for tests and operators).
    pub fn worker_in_flight(&self, shard: usize) -> usize {
        self.queues.in_flight_len(shard)
    }

    /// Current worker generation for one shard: starts at 0, incremented
    /// each time the watchdog replaces the worker.
    pub fn worker_epoch(&self, shard: usize) -> u64 {
        self.queues.epoch(shard)
    }

    /// Runs one watchdog scan synchronously (deaths and stalls are
    /// detected exactly as the background thread would) — lets tests
    /// drive failover deterministically instead of sleeping.
    pub fn watchdog_scan(&self) {
        self.supervisor.scan();
    }

    fn lookup(&self, tenant_id: &str) -> Result<Arc<Tenant>, ServeError> {
        self.tenant(tenant_id)?
            .ok_or_else(|| ServeError::UnknownTenant(tenant_id.into()))
    }

    fn expired(deadline: Option<Instant>) -> bool {
        deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Enqueues one request. Admission control is strict: a full queue
    /// rejects immediately rather than blocking the caller.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`], [`ServeError::QueueFull`],
    /// [`ServeError::Overloaded`], or [`ServeError::ShuttingDown`].
    pub fn submit(&self, tenant_id: &str, request: Request) -> Result<Ticket, ServeError> {
        self.submit_opts(tenant_id, request, None)
    }

    /// [`submit`](Self::submit) with an absolute deadline: a request
    /// whose deadline has already passed is rejected at admission, and
    /// one that expires while queued is answered with
    /// [`ServeError::DeadlineExceeded`] at dequeue instead of computing
    /// dead work.
    ///
    /// # Errors
    ///
    /// The [`submit`](Self::submit) surface plus
    /// [`ServeError::DeadlineExceeded`].
    pub fn submit_opts(
        &self,
        tenant_id: &str,
        request: Request,
        deadline: Option<Instant>,
    ) -> Result<Ticket, ServeError> {
        let tenant = self.lookup(tenant_id)?;
        if Self::expired(deadline) {
            #[cfg(feature = "telemetry")]
            crate::tel::deadline().add(1);
            return Err(ServeError::DeadlineExceeded);
        }
        let (tx, rx) = mpsc::channel();
        self.queues.submit(Job {
            tenant_id: Arc::from(tenant_id),
            tenant,
            request,
            deadline,
            priority: self.tenant_priority(tenant_id),
            reply: Reply::ticket(tx),
        })?;
        Ok(Ticket { rx })
    }

    /// Enqueues one request tagged with a caller-chosen id; the `sink`
    /// receives `(id, result)` from whichever dispatcher worker finishes
    /// the job — the multiplexed front-end's out-of-order reply path.
    ///
    /// # Errors
    ///
    /// Same surface as [`submit`](Self::submit). On error the sink is
    /// dropped unused: the caller still owns error reporting for
    /// requests that never entered the queue.
    pub fn submit_tagged(
        &self,
        tenant_id: &str,
        request: Request,
        id: u64,
        sink: impl FnOnce(u64, Result<Ciphertext, ServeError>) + Send + 'static,
    ) -> Result<(), ServeError> {
        self.submit_tagged_opts(tenant_id, request, id, None, false, sink)
    }

    /// [`submit_tagged`](Self::submit_tagged) with a deadline and the
    /// idempotent-replay flag. With `replay` set, an id this tenant
    /// already executed returns the cached result immediately (the sink
    /// fires inline; nothing re-runs); an id still *queued or
    /// executing* attaches this sink to that pending execution (one
    /// run, every waiter answered — a retry racing its original never
    /// double-executes); and a fresh execution's outcome is recorded
    /// before any sink sees it — the server half of safe client
    /// resubmission.
    ///
    /// # Errors
    ///
    /// The [`submit`](Self::submit) surface plus
    /// [`ServeError::DeadlineExceeded`].
    pub fn submit_tagged_opts(
        &self,
        tenant_id: &str,
        request: Request,
        id: u64,
        deadline: Option<Instant>,
        replay: bool,
        sink: impl FnOnce(u64, Result<Ciphertext, ServeError>) + Send + 'static,
    ) -> Result<(), ServeError> {
        let tenant = self.lookup(tenant_id)?;
        let tid: Arc<str> = Arc::from(tenant_id);
        let reply = if replay {
            let key = (Arc::clone(&tid), id);
            {
                let mut pending = self
                    .replay_pending
                    .map
                    .lock()
                    .expect("replay pending poisoned");
                if let Some(waiters) = pending.get_mut(&key) {
                    // The same (tenant, id) is already queued or
                    // executing: ride that execution instead of
                    // enqueueing a second one.
                    waiters.push(Box::new(sink));
                    #[cfg(feature = "telemetry")]
                    crate::tel::replay_coalesced().add(1);
                    return Ok(());
                }
                // Completed-outcome check under the pending lock:
                // completion fills the cache before clearing its
                // pending entry, so missing both maps means the id
                // genuinely never executed.
                if let Some(cached) = self.replay.get(&tid, id) {
                    #[cfg(feature = "telemetry")]
                    crate::tel::replay_hit().add(1);
                    drop(pending);
                    sink(id, cached);
                    return Ok(());
                }
                if Self::expired(deadline) {
                    #[cfg(feature = "telemetry")]
                    crate::tel::deadline().add(1);
                    return Err(ServeError::DeadlineExceeded);
                }
                pending.insert(key, Vec::new());
            }
            let cache = Arc::clone(&self.replay);
            let pending = Arc::clone(&self.replay_pending);
            let key_tenant = Arc::clone(&tid);
            Reply::tagged(
                id,
                Box::new(move |id, result: Result<Ciphertext, ServeError>| {
                    // Record only executed outcomes: an admission-style
                    // error (queue full, shutdown, deadline) never ran,
                    // so a retry must be allowed to actually run. Cache
                    // first, *then* clear pending (see above).
                    if matches!(result, Ok(_) | Err(ServeError::Eval(_))) {
                        cache.put(Arc::clone(&key_tenant), id, result.clone());
                    }
                    let waiters = pending
                        .map
                        .lock()
                        .expect("replay pending poisoned")
                        .remove(&(key_tenant, id))
                        .unwrap_or_default();
                    for waiter in waiters {
                        waiter(id, result.clone());
                    }
                    sink(id, result);
                }),
            )
        } else {
            if Self::expired(deadline) {
                #[cfg(feature = "telemetry")]
                crate::tel::deadline().add(1);
                return Err(ServeError::DeadlineExceeded);
            }
            Reply::tagged(id, Box::new(sink))
        };
        let submitted = self.queues.submit(Job {
            tenant_id: Arc::clone(&tid),
            tenant,
            request,
            deadline,
            priority: self.tenant_priority(tenant_id),
            reply,
        });
        if let Err(e) = &submitted {
            if replay {
                // The job never entered a queue (its reply was defused,
                // so the completion wrapper will never run): clear the
                // pending entry and answer any waiters that attached in
                // the window with the same rejection.
                let waiters = self
                    .replay_pending
                    .map
                    .lock()
                    .expect("replay pending poisoned")
                    .remove(&(tid, id))
                    .unwrap_or_default();
                for waiter in waiters {
                    waiter(id, Err(e.clone()));
                }
            }
        }
        submitted
    }

    /// Submit + wait: the blocking convenience used by tests and simple
    /// embedders.
    ///
    /// # Errors
    ///
    /// See [`submit`](Self::submit) and [`Ticket::wait`].
    pub fn call(&self, tenant_id: &str, request: Request) -> Result<Ciphertext, ServeError> {
        self.submit(tenant_id, request)?.wait()
    }

    /// Pauses all dispatchers (jobs accumulate). Lets tests and
    /// operators control batch formation deterministically.
    pub fn suspend(&self) {
        self.queues.suspend();
    }

    /// Resumes the dispatchers.
    pub fn resume(&self) {
        self.queues.resume();
    }

    /// Jobs currently queued across all shards (excluding batches in
    /// flight).
    pub fn queue_depth(&self) -> usize {
        self.queues.depth()
    }

    /// Stops the dispatchers; queued jobs are answered with
    /// [`ServeError::ShuttingDown`]. Called automatically on drop.
    pub fn shutdown(&self) {
        self.queues.begin_shutdown();
        if let Some(handle) = self
            .watchdog
            .lock()
            .expect("watchdog handle poisoned")
            .take()
        {
            let _ = handle.join();
        }
        self.supervisor.shutdown_join();
    }
}

impl Drop for EvalService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Coalescing key for rotation jobs: tenant plus a cheap ciphertext
/// digest (level/scale folded in). Digest ties are confirmed by exact
/// residue comparison before jobs share a hoist. The tenant id is an
/// `Arc` clone — the historical key allocated a `String` per job.
fn rotation_key(tenant_id: &Arc<str>, ct: &Ciphertext) -> (Arc<str>, u64, usize, u64) {
    (
        Arc::clone(tenant_id),
        digest_ciphertext(ct),
        ct.level(),
        ct.scale().to_bits(),
    )
}

/// Answers `job` with [`ServeError::DeadlineExceeded`] if its deadline
/// has passed; returns the job back otherwise.
fn reap_expired(job: Job) -> Option<Job> {
    match job.deadline {
        Some(d) if Instant::now() >= d => {
            #[cfg(feature = "telemetry")]
            crate::tel::deadline().add(1);
            job.reply.send(Err(ServeError::DeadlineExceeded));
            None
        }
        _ => Some(job),
    }
}

pub(crate) fn execute_batch(batch: Vec<Job>) {
    // Dequeue-time deadline check: a request that expired while queued
    // is answered without computing dead work.
    let batch: Vec<Job> = batch.into_iter().filter_map(reap_expired).collect();

    // Rotation groups: representative ciphertext + member jobs.
    type Key = (Arc<str>, u64, usize, u64);
    let mut groups: Vec<(Key, Vec<Job>)> = Vec::new();
    let mut singles: Vec<Job> = Vec::new();

    for job in batch {
        let Request::Rotate { ref a, .. } = job.request else {
            singles.push(job);
            continue;
        };
        let key = rotation_key(&job.tenant_id, a);
        let slot = groups.iter_mut().find(|(k, jobs)| {
            *k == key
                && matches!(
                    &jobs[0].request,
                    // Digest collisions must not merge distinct operands.
                    Request::Rotate { a: rep, .. } if rep.c0() == a.c0() && rep.c1() == a.c1()
                )
        });
        match slot {
            Some((_, jobs)) => jobs.push(job),
            None => groups.push((key, vec![job])),
        }
    }

    for (_, jobs) in groups {
        // Pre-execution deadline check, per member: earlier groups may
        // have consumed the remaining budget.
        let jobs: Vec<Job> = jobs.into_iter().filter_map(reap_expired).collect();
        if !jobs.is_empty() {
            run_rotation_group(jobs);
        }
    }
    for job in singles {
        let Some(job) = reap_expired(job) else {
            continue;
        };
        let result = contain(|| run_one(&job.tenant, &job.request).map_err(ServeError::Eval));
        job.reply.send(result);
    }
}

/// Executes one same-ciphertext rotation group through a single hoisted
/// `try_rotate_many` lift — k requests, one digit decomposition.
fn run_rotation_group(jobs: Vec<Job>) {
    let steps: Vec<i64> = jobs
        .iter()
        .map(|j| match &j.request {
            Request::Rotate { steps, .. } => *steps,
            _ => unreachable!("rotation group holds only Rotate jobs"),
        })
        .collect();
    // Borrow the representative operand in place — the historical path
    // cloned the full ciphertext (two RNS polys) per group.
    let outcome = {
        let tenant = &jobs[0].tenant;
        let Request::Rotate { a, .. } = &jobs[0].request else {
            unreachable!("rotation group holds only Rotate jobs");
        };
        contain(|| {
            tenant
                .eval
                .try_rotate_many(a, &steps, &tenant.keys)
                .map_err(ServeError::Eval)
        })
    };
    match outcome {
        Ok(rotated) => {
            for (job, ct) in jobs.into_iter().zip(rotated) {
                job.reply.send(Ok(ct));
            }
        }
        Err(e) => {
            for job in jobs {
                job.reply.send(Err(e.clone()));
            }
        }
    }
}

/// Non-rotation ops run under the integrity-checked evaluator: a
/// persistent datapath fault comes back as `EvalError::IntegrityFault`
/// for this request only.
fn run_one(tenant: &Tenant, request: &Request) -> Result<Ciphertext, he_ckks::error::EvalError> {
    match request {
        Request::Add { a, b } => tenant.checked.add(a, b),
        Request::Sub { a, b } => tenant.checked.sub(a, b),
        Request::Mul { a, b } => tenant.checked.mul(a, b, &tenant.keys),
        Request::Square { a } => tenant.checked.square(a, &tenant.keys),
        Request::Rescale { a } => tenant.checked.rescale(a),
        // Fallback for a Rotate that reached the scalar path.
        Request::Rotate { a, steps } => tenant.checked.rotate(a, *steps, &tenant.keys),
        Request::Conjugate { a } => tenant.checked.conjugate(a, &tenant.keys),
        Request::AddPlain { a, pt } => tenant.checked.add_plain(a, pt),
        Request::MulPlain { a, pt } => tenant.checked.mul_plain(a, pt),
        Request::Program { text, a } => run_program(tenant, text, a),
    }
}

/// Compiles and executes one `.pos` program as a unit: parse → lower
/// (`compile_trace`) → pass pipeline (`try_plan`) → plan executor, on a
/// fresh evaluator over the tenant's context. Every graph input is
/// seeded with `a`; the reply is the program's final output.
///
/// Serve-side planning runs without bootstrap insertion — tenants
/// register evaluation keys, not bootstrap keys, so an exhausted
/// program is a typed rejection rather than a silent truncation.
fn run_program(
    tenant: &Tenant,
    text: &str,
    a: &Ciphertext,
) -> Result<Ciphertext, he_ckks::error::EvalError> {
    use he_ckks::error::EvalError;
    use poseidon_core::plan::{execute, plan_trace, PlanOptions};

    let trace = poseidon_sim::program::parse(text)
        .map_err(|e| EvalError::InvalidParams(format!("program parse: {e}")))?;
    let plan = plan_trace(&trace, &tenant.ctx, &PlanOptions::default())
        .map_err(|e| EvalError::InvalidParams(format!("program planning: {e}")))?;
    #[cfg(feature = "telemetry")]
    crate::tel::program().add(plan.schedule.len() as u64);
    let inputs = vec![a.clone(); plan.graph.inputs().len()];
    let mut eval = Evaluator::new(&tenant.ctx);
    let outcome = execute(&plan, &mut eval, &inputs, &tenant.keys)?;
    outcome
        .outputs
        .into_iter()
        .next_back()
        .ok_or_else(|| EvalError::InvalidParams("program produced no outputs".into()))
}

/// Panic containment: a worker panic answers this request with
/// `Internal` instead of killing the dispatcher.
fn contain<R>(f: impl FnOnce() -> Result<R, ServeError>) -> Result<R, ServeError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".into());
            Err(ServeError::Internal(msg))
        }
    }
}
