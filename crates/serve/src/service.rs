//! The in-process service: tenant registry (LRU key cache), sharded
//! bounded queues, and the batching dispatcher workers.

use std::ops::Deref;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use he_ckks::cipher::Ciphertext;
use he_ckks::context::CkksContext;
use he_ckks::eval::Evaluator;
use he_ckks::integrity::{digest_ciphertext, CheckedEvaluator};
use he_ckks::keys::KeySet;

use crate::key_cache::KeyCache;
use crate::shard::{dispatch_loop, Job, Reply, SharedQueues};
use crate::{Request, ServeError};

/// Sizing knobs for the queues and scheduler.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Admission-control bound: submissions beyond this many queued jobs
    /// (summed across shards) are rejected with
    /// [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Upper bound on jobs drained into one scheduling batch (the
    /// coalescing window for same-ciphertext rotations).
    pub max_batch: usize,
    /// Dispatcher worker count. Each tenant hashes to one shard
    /// (affinity keeps its rotation coalescing intact); idle workers
    /// steal from the back of loaded shards. `0` is treated as `1`.
    pub shards: usize,
    /// How many frame-registered tenants may hold decoded key material
    /// at once; beyond this the least-recently-used tenant's keys are
    /// dropped and re-decoded from its retained frame on next use.
    /// In-process registrations are pinned and never counted.
    pub key_cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            max_batch: 16,
            shards: 1,
            key_cache_capacity: 64,
        }
    }
}

/// Per-tenant evaluation state, built once at registration (or rebuilt
/// deterministically from the retained keyset frame after eviction).
pub(crate) struct Tenant {
    pub(crate) ctx: CkksContext,
    pub(crate) keys: KeySet,
    pub(crate) eval: Evaluator,
    pub(crate) checked: CheckedEvaluator,
}

impl Tenant {
    pub(crate) fn build(ctx: CkksContext, keys: KeySet) -> Self {
        let eval = Evaluator::new(&ctx);
        let checked = CheckedEvaluator::new(&ctx);
        Self {
            ctx,
            keys,
            eval,
            checked,
        }
    }
}

/// A cheap handle on a tenant's [`CkksContext`] — an `Arc` clone, not a
/// context copy. Dereferences to the context for decoding wire frames.
#[derive(Clone)]
pub struct TenantContext {
    tenant: Arc<Tenant>,
}

impl Deref for TenantContext {
    type Target = CkksContext;

    fn deref(&self) -> &CkksContext {
        &self.tenant.ctx
    }
}

impl AsRef<CkksContext> for TenantContext {
    fn as_ref(&self) -> &CkksContext {
        &self.tenant.ctx
    }
}

/// Handle to one submitted job; [`wait`](Ticket::wait) blocks for its
/// result.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Ciphertext, ServeError>>,
}

impl Ticket {
    /// Blocks until a dispatcher answers this job.
    ///
    /// # Errors
    ///
    /// Whatever the dispatcher reported — or [`ServeError::Internal`] if
    /// it dropped the reply channel without answering.
    pub fn wait(self) -> Result<Ciphertext, ServeError> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(ServeError::Internal("reply channel dropped".into())))
    }
}

/// The batch evaluation service. `shards` dispatcher workers drain
/// per-tenant-affine bounded queues in batches; see the crate docs for
/// the scheduling policy.
pub struct EvalService {
    queues: Arc<SharedQueues>,
    tenants: KeyCache,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl EvalService {
    /// Starts the service and its dispatcher workers.
    pub fn start(config: ServiceConfig) -> Arc<Self> {
        let shards = config.shards.max(1);
        let queues = Arc::new(SharedQueues::new(
            shards,
            config.queue_capacity,
            config.max_batch,
        ));
        let workers = (0..shards)
            .map(|i| {
                let q = Arc::clone(&queues);
                std::thread::Builder::new()
                    .name(format!("poseidon-serve-dispatch-{i}"))
                    .spawn(move || dispatch_loop(q, i))
                    .expect("spawn dispatcher")
            })
            .collect();
        Arc::new(Self {
            queues,
            tenants: KeyCache::new(config.key_cache_capacity),
            workers: Mutex::new(workers),
        })
    }

    /// Registers (or replaces) a tenant from in-process key material.
    /// Such tenants have no frame to reload from, so their decoded state
    /// is pinned resident (never evicted by the key cache).
    pub fn register_tenant(&self, id: impl Into<String>, ctx: CkksContext, keys: KeySet) {
        let id: Arc<str> = Arc::from(id.into());
        self.tenants
            .insert_pinned(id, Arc::new(Tenant::build(ctx, keys)));
    }

    /// Registers a tenant from a serialized key-set frame (the TCP
    /// provisioning path). The frame carries its own parameters; the
    /// context is derived deterministically from them. The frame is
    /// retained so the decoded keys can be evicted under memory pressure
    /// and rebuilt bit-identically on next use.
    ///
    /// # Errors
    ///
    /// [`ServeError::Wire`] if the frame does not decode.
    pub fn register_tenant_frame(
        &self,
        id: impl Into<String>,
        frame: &[u8],
    ) -> Result<(), ServeError> {
        let (ctx, keys) = poseidon_wire::decode_keyset(frame)?;
        let id: Arc<str> = Arc::from(id.into());
        self.tenants
            .insert_frame(id, Arc::from(frame), Arc::new(Tenant::build(ctx, keys)));
        Ok(())
    }

    pub(crate) fn tenant(&self, id: &str) -> Result<Option<Arc<Tenant>>, ServeError> {
        self.tenants.get(id)
    }

    /// The tenant's context, for decoding its wire frames — a cheap
    /// shared handle (no context clone; the historical API copied the
    /// full prime chain and NTT tables per lookup).
    pub fn tenant_context(&self, id: &str) -> Option<TenantContext> {
        self.tenants
            .get(id)
            .ok()
            .flatten()
            .map(|tenant| TenantContext { tenant })
    }

    /// Decoded tenants currently resident in the key cache (pinned
    /// registrations included) — observability for tests and operators.
    pub fn resident_tenants(&self) -> usize {
        self.tenants.resident()
    }

    /// The configured dispatcher shard count.
    pub fn shards(&self) -> usize {
        self.queues.shard_count()
    }

    /// Which shard a tenant's jobs land on (FNV-1a affinity).
    pub fn shard_of(&self, tenant_id: &str) -> usize {
        self.queues.shard_for(tenant_id, self.queues.shard_count())
    }

    fn lookup(&self, tenant_id: &str) -> Result<Arc<Tenant>, ServeError> {
        self.tenant(tenant_id)?
            .ok_or_else(|| ServeError::UnknownTenant(tenant_id.into()))
    }

    /// Enqueues one request. Admission control is strict: a full queue
    /// rejects immediately rather than blocking the caller.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`], [`ServeError::QueueFull`], or
    /// [`ServeError::ShuttingDown`].
    pub fn submit(&self, tenant_id: &str, request: Request) -> Result<Ticket, ServeError> {
        let tenant = self.lookup(tenant_id)?;
        let (tx, rx) = mpsc::channel();
        self.queues.submit(Job {
            tenant_id: Arc::from(tenant_id),
            tenant,
            request,
            reply: Reply::Ticket(tx),
        })?;
        Ok(Ticket { rx })
    }

    /// Enqueues one request tagged with a caller-chosen id; the `sink`
    /// receives `(id, result)` from whichever dispatcher worker finishes
    /// the job — the multiplexed front-end's out-of-order reply path.
    ///
    /// # Errors
    ///
    /// Same surface as [`submit`](Self::submit). On error the sink is
    /// dropped unused: the caller still owns error reporting for
    /// requests that never entered the queue.
    pub fn submit_tagged(
        &self,
        tenant_id: &str,
        request: Request,
        id: u64,
        sink: impl FnOnce(u64, Result<Ciphertext, ServeError>) + Send + 'static,
    ) -> Result<(), ServeError> {
        let tenant = self.lookup(tenant_id)?;
        self.queues.submit(Job {
            tenant_id: Arc::from(tenant_id),
            tenant,
            request,
            reply: Reply::Tagged {
                id,
                sink: Box::new(sink),
            },
        })
    }

    /// Submit + wait: the blocking convenience used by tests and simple
    /// embedders.
    ///
    /// # Errors
    ///
    /// See [`submit`](Self::submit) and [`Ticket::wait`].
    pub fn call(&self, tenant_id: &str, request: Request) -> Result<Ciphertext, ServeError> {
        self.submit(tenant_id, request)?.wait()
    }

    /// Pauses all dispatchers (jobs accumulate). Lets tests and
    /// operators control batch formation deterministically.
    pub fn suspend(&self) {
        self.queues.suspend();
    }

    /// Resumes the dispatchers.
    pub fn resume(&self) {
        self.queues.resume();
    }

    /// Jobs currently queued across all shards (excluding batches in
    /// flight).
    pub fn queue_depth(&self) -> usize {
        self.queues.depth()
    }

    /// Stops the dispatchers; queued jobs are answered with
    /// [`ServeError::ShuttingDown`]. Called automatically on drop.
    pub fn shutdown(&self) {
        self.queues.begin_shutdown();
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("worker handles poisoned")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for EvalService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Coalescing key for rotation jobs: tenant plus a cheap ciphertext
/// digest (level/scale folded in). Digest ties are confirmed by exact
/// residue comparison before jobs share a hoist. The tenant id is an
/// `Arc` clone — the historical key allocated a `String` per job.
fn rotation_key(tenant_id: &Arc<str>, ct: &Ciphertext) -> (Arc<str>, u64, usize, u64) {
    (
        Arc::clone(tenant_id),
        digest_ciphertext(ct),
        ct.level(),
        ct.scale().to_bits(),
    )
}

pub(crate) fn execute_batch(batch: Vec<Job>) {
    // Rotation groups: representative ciphertext + member jobs.
    type Key = (Arc<str>, u64, usize, u64);
    let mut groups: Vec<(Key, Vec<Job>)> = Vec::new();
    let mut singles: Vec<Job> = Vec::new();

    for job in batch {
        let Request::Rotate { ref a, .. } = job.request else {
            singles.push(job);
            continue;
        };
        let key = rotation_key(&job.tenant_id, a);
        let slot = groups.iter_mut().find(|(k, jobs)| {
            *k == key
                && matches!(
                    &jobs[0].request,
                    // Digest collisions must not merge distinct operands.
                    Request::Rotate { a: rep, .. } if rep.c0() == a.c0() && rep.c1() == a.c1()
                )
        });
        match slot {
            Some((_, jobs)) => jobs.push(job),
            None => groups.push((key, vec![job])),
        }
    }

    for (_, jobs) in groups {
        run_rotation_group(jobs);
    }
    for job in singles {
        let result = contain(|| run_one(&job.tenant, &job.request).map_err(ServeError::Eval));
        job.reply.send(result);
    }
}

/// Executes one same-ciphertext rotation group through a single hoisted
/// `try_rotate_many` lift — k requests, one digit decomposition.
fn run_rotation_group(jobs: Vec<Job>) {
    let steps: Vec<i64> = jobs
        .iter()
        .map(|j| match &j.request {
            Request::Rotate { steps, .. } => *steps,
            _ => unreachable!("rotation group holds only Rotate jobs"),
        })
        .collect();
    // Borrow the representative operand in place — the historical path
    // cloned the full ciphertext (two RNS polys) per group.
    let outcome = {
        let tenant = &jobs[0].tenant;
        let Request::Rotate { a, .. } = &jobs[0].request else {
            unreachable!("rotation group holds only Rotate jobs");
        };
        contain(|| {
            tenant
                .eval
                .try_rotate_many(a, &steps, &tenant.keys)
                .map_err(ServeError::Eval)
        })
    };
    match outcome {
        Ok(rotated) => {
            for (job, ct) in jobs.into_iter().zip(rotated) {
                job.reply.send(Ok(ct));
            }
        }
        Err(e) => {
            for job in jobs {
                job.reply.send(Err(e.clone()));
            }
        }
    }
}

/// Non-rotation ops run under the integrity-checked evaluator: a
/// persistent datapath fault comes back as `EvalError::IntegrityFault`
/// for this request only.
fn run_one(tenant: &Tenant, request: &Request) -> Result<Ciphertext, he_ckks::error::EvalError> {
    match request {
        Request::Add { a, b } => tenant.checked.add(a, b),
        Request::Sub { a, b } => tenant.checked.sub(a, b),
        Request::Mul { a, b } => tenant.checked.mul(a, b, &tenant.keys),
        Request::Square { a } => tenant.checked.square(a, &tenant.keys),
        Request::Rescale { a } => tenant.checked.rescale(a),
        // Fallback for a Rotate that reached the scalar path.
        Request::Rotate { a, steps } => tenant.checked.rotate(a, *steps, &tenant.keys),
        Request::Conjugate { a } => tenant.checked.conjugate(a, &tenant.keys),
        Request::AddPlain { a, pt } => tenant.checked.add_plain(a, pt),
        Request::MulPlain { a, pt } => tenant.checked.mul_plain(a, pt),
    }
}

/// Panic containment: a worker panic answers this request with
/// `Internal` instead of killing the dispatcher.
fn contain<R>(f: impl FnOnce() -> Result<R, ServeError>) -> Result<R, ServeError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".into());
            Err(ServeError::Internal(msg))
        }
    }
}
