//! The in-process service: tenant registry, bounded queue, and the
//! batching dispatcher thread.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;

use he_ckks::cipher::Ciphertext;
use he_ckks::context::CkksContext;
use he_ckks::eval::Evaluator;
use he_ckks::integrity::{digest_ciphertext, CheckedEvaluator};
use he_ckks::keys::KeySet;

use crate::{Request, ServeError};

/// Sizing knobs for the queue and scheduler.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Admission-control bound: submissions beyond this many queued jobs
    /// are rejected with [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Upper bound on jobs drained into one scheduling batch (the
    /// coalescing window for same-ciphertext rotations).
    pub max_batch: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            max_batch: 16,
        }
    }
}

/// Per-tenant evaluation state, built once at registration.
pub(crate) struct Tenant {
    pub(crate) ctx: CkksContext,
    pub(crate) keys: KeySet,
    eval: Evaluator,
    checked: CheckedEvaluator,
}

struct Job {
    tenant_id: String,
    tenant: Arc<Tenant>,
    request: Request,
    reply: mpsc::Sender<Result<Ciphertext, ServeError>>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    suspended: bool,
    shutdown: bool,
}

struct Shared {
    config: ServiceConfig,
    tenants: RwLock<HashMap<String, Arc<Tenant>>>,
    queue: Mutex<QueueState>,
    cv: Condvar,
}

/// Handle to one submitted job; [`wait`](Ticket::wait) blocks for its
/// result.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Ciphertext, ServeError>>,
}

impl Ticket {
    /// Blocks until the dispatcher answers this job.
    ///
    /// # Errors
    ///
    /// Whatever the dispatcher reported — or [`ServeError::Internal`] if
    /// it dropped the reply channel without answering.
    pub fn wait(self) -> Result<Ciphertext, ServeError> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(ServeError::Internal("reply channel dropped".into())))
    }
}

/// The batch evaluation service. One dispatcher thread drains the
/// bounded queue in batches; see the crate docs for the scheduling
/// policy.
pub struct EvalService {
    shared: Arc<Shared>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl EvalService {
    /// Starts the service and its dispatcher thread.
    pub fn start(config: ServiceConfig) -> Arc<Self> {
        let shared = Arc::new(Shared {
            config,
            tenants: RwLock::new(HashMap::new()),
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                suspended: false,
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let worker_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("poseidon-serve-dispatch".into())
            .spawn(move || dispatch_loop(worker_shared))
            .expect("spawn dispatcher");
        Arc::new(Self {
            shared,
            worker: Mutex::new(Some(handle)),
        })
    }

    /// Registers (or replaces) a tenant from in-process key material.
    pub fn register_tenant(&self, id: impl Into<String>, ctx: CkksContext, keys: KeySet) {
        let eval = Evaluator::new(&ctx);
        let checked = CheckedEvaluator::new(&ctx);
        let tenant = Arc::new(Tenant {
            ctx,
            keys,
            eval,
            checked,
        });
        self.shared
            .tenants
            .write()
            .expect("tenant registry poisoned")
            .insert(id.into(), tenant);
    }

    /// Registers a tenant from a serialized key-set frame (the TCP
    /// provisioning path). The frame carries its own parameters; the
    /// context is derived deterministically from them.
    ///
    /// # Errors
    ///
    /// [`ServeError::Wire`] if the frame does not decode.
    pub fn register_tenant_frame(
        &self,
        id: impl Into<String>,
        frame: &[u8],
    ) -> Result<(), ServeError> {
        let (ctx, keys) = poseidon_wire::decode_keyset(frame)?;
        self.register_tenant(id, ctx, keys);
        Ok(())
    }

    pub(crate) fn tenant(&self, id: &str) -> Option<Arc<Tenant>> {
        self.shared
            .tenants
            .read()
            .expect("tenant registry poisoned")
            .get(id)
            .cloned()
    }

    /// The tenant's context, for decoding its wire frames.
    pub fn tenant_context(&self, id: &str) -> Option<CkksContext> {
        self.tenant(id).map(|t| t.ctx.clone())
    }

    /// Enqueues one request. Admission control is strict: a full queue
    /// rejects immediately rather than blocking the caller.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`], [`ServeError::QueueFull`], or
    /// [`ServeError::ShuttingDown`].
    pub fn submit(&self, tenant_id: &str, request: Request) -> Result<Ticket, ServeError> {
        let tenant = self
            .tenant(tenant_id)
            .ok_or_else(|| ServeError::UnknownTenant(tenant_id.into()))?;
        let (tx, rx) = mpsc::channel();
        {
            let mut q = self.shared.queue.lock().expect("queue poisoned");
            if q.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if q.jobs.len() >= self.shared.config.queue_capacity {
                #[cfg(feature = "telemetry")]
                crate::tel::reject().add(1);
                return Err(ServeError::QueueFull {
                    capacity: self.shared.config.queue_capacity,
                });
            }
            q.jobs.push_back(Job {
                tenant_id: tenant_id.into(),
                tenant,
                request,
                reply: tx,
            });
        }
        #[cfg(feature = "telemetry")]
        crate::tel::enqueue().add(1);
        self.shared.cv.notify_all();
        Ok(Ticket { rx })
    }

    /// Submit + wait: the blocking convenience used by the TCP front-end.
    ///
    /// # Errors
    ///
    /// See [`submit`](Self::submit) and [`Ticket::wait`].
    pub fn call(&self, tenant_id: &str, request: Request) -> Result<Ciphertext, ServeError> {
        self.submit(tenant_id, request)?.wait()
    }

    /// Pauses the dispatcher (jobs accumulate). Lets tests and operators
    /// control batch formation deterministically.
    pub fn suspend(&self) {
        self.shared.queue.lock().expect("queue poisoned").suspended = true;
    }

    /// Resumes the dispatcher.
    pub fn resume(&self) {
        self.shared.queue.lock().expect("queue poisoned").suspended = false;
        self.shared.cv.notify_all();
    }

    /// Jobs currently queued (excluding any batch in flight).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("queue poisoned").jobs.len()
    }

    /// Stops the dispatcher; queued jobs are answered with
    /// [`ServeError::ShuttingDown`]. Called automatically on drop.
    pub fn shutdown(&self) {
        {
            let mut q = self.shared.queue.lock().expect("queue poisoned");
            q.shutdown = true;
        }
        self.shared.cv.notify_all();
        if let Some(handle) = self.worker.lock().expect("worker handle poisoned").take() {
            let _ = handle.join();
        }
    }
}

impl Drop for EvalService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn dispatch_loop(shared: Arc<Shared>) {
    loop {
        let batch: Vec<Job> = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            loop {
                if q.shutdown {
                    while let Some(job) = q.jobs.pop_front() {
                        let _ = job.reply.send(Err(ServeError::ShuttingDown));
                    }
                    return;
                }
                if !q.suspended && !q.jobs.is_empty() {
                    break;
                }
                q = shared.cv.wait(q).expect("queue poisoned");
            }
            let n = q.jobs.len().min(shared.config.max_batch);
            q.jobs.drain(..n).collect()
        };
        #[cfg(feature = "telemetry")]
        {
            crate::tel::dequeue().add(batch.len() as u64);
            crate::tel::batch().add(batch.len() as u64);
        }
        execute_batch(batch);
    }
}

/// Coalescing key for rotation jobs: tenant plus a cheap ciphertext
/// digest (level/scale folded in). Digest ties are confirmed by exact
/// residue comparison before jobs share a hoist.
fn rotation_key(tenant_id: &str, ct: &Ciphertext) -> (String, u64, usize, u64) {
    (
        tenant_id.to_string(),
        digest_ciphertext(ct),
        ct.level(),
        ct.scale().to_bits(),
    )
}

fn execute_batch(batch: Vec<Job>) {
    // Rotation groups: representative ciphertext + member jobs.
    type Key = (String, u64, usize, u64);
    let mut groups: Vec<(Key, Vec<Job>)> = Vec::new();
    let mut singles: Vec<Job> = Vec::new();

    for job in batch {
        let Request::Rotate { ref a, .. } = job.request else {
            singles.push(job);
            continue;
        };
        let key = rotation_key(&job.tenant_id, a);
        let slot = groups.iter_mut().find(|(k, jobs)| {
            *k == key
                && matches!(
                    &jobs[0].request,
                    // Digest collisions must not merge distinct operands.
                    Request::Rotate { a: rep, .. } if rep.c0() == a.c0() && rep.c1() == a.c1()
                )
        });
        match slot {
            Some((_, jobs)) => jobs.push(job),
            None => groups.push((key, vec![job])),
        }
    }

    for (_, jobs) in groups {
        run_rotation_group(jobs);
    }
    for job in singles {
        let result = contain(|| run_one(&job.tenant, &job.request).map_err(ServeError::Eval));
        let _ = job.reply.send(result);
    }
}

/// Executes one same-ciphertext rotation group through a single hoisted
/// `try_rotate_many` lift — k requests, one digit decomposition.
fn run_rotation_group(jobs: Vec<Job>) {
    let steps: Vec<i64> = jobs
        .iter()
        .map(|j| match &j.request {
            Request::Rotate { steps, .. } => *steps,
            _ => unreachable!("rotation group holds only Rotate jobs"),
        })
        .collect();
    let tenant = Arc::clone(&jobs[0].tenant);
    let Request::Rotate { a, .. } = jobs[0].request.clone() else {
        unreachable!("rotation group holds only Rotate jobs");
    };
    let outcome = contain(|| {
        tenant
            .eval
            .try_rotate_many(&a, &steps, &tenant.keys)
            .map_err(ServeError::Eval)
    });
    match outcome {
        Ok(rotated) => {
            for (job, ct) in jobs.into_iter().zip(rotated) {
                let _ = job.reply.send(Ok(ct));
            }
        }
        Err(e) => {
            for job in jobs {
                let _ = job.reply.send(Err(e.clone()));
            }
        }
    }
}

/// Non-rotation ops run under the integrity-checked evaluator: a
/// persistent datapath fault comes back as `EvalError::IntegrityFault`
/// for this request only.
fn run_one(tenant: &Tenant, request: &Request) -> Result<Ciphertext, he_ckks::error::EvalError> {
    match request {
        Request::Add { a, b } => tenant.checked.add(a, b),
        Request::Sub { a, b } => tenant.checked.sub(a, b),
        Request::Mul { a, b } => tenant.checked.mul(a, b, &tenant.keys),
        Request::Square { a } => tenant.checked.square(a, &tenant.keys),
        Request::Rescale { a } => tenant.checked.rescale(a),
        // Fallback for a Rotate that reached the scalar path.
        Request::Rotate { a, steps } => tenant.checked.rotate(a, *steps, &tenant.keys),
        Request::Conjugate { a } => tenant.checked.conjugate(a, &tenant.keys),
        Request::AddPlain { a, pt } => tenant.checked.add_plain(a, pt),
        Request::MulPlain { a, pt } => tenant.checked.mul_plain(a, pt),
    }
}

/// Panic containment: a worker panic answers this request with
/// `Internal` instead of killing the dispatcher.
fn contain<R>(f: impl FnOnce() -> Result<R, ServeError>) -> Result<R, ServeError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".into());
            Err(ServeError::Internal(msg))
        }
    }
}
