//! Bounded LRU cache of resident tenant evaluation state.
//!
//! A tenant's decoded key material is large (~12 MB of key-switch keys
//! at paper-scale parameters, plus the eval-form caches built at
//! registration), so keeping every registered tenant resident makes
//! server memory O(tenants). This cache keeps the *frames* for all
//! tenants (compact, checksummed bytes) but bounds how many decoded
//! [`Tenant`]s are alive at once: on a miss the frame is re-decoded —
//! deterministically, so the rebuilt evaluation state is bit-identical —
//! and the least-recently-used unpinned resident is dropped.
//!
//! Tenants registered from in-process key material have no frame to
//! reload from; they are *pinned* and never evicted.
//!
//! Decode-on-miss runs **outside** the cache lock (it is milliseconds of
//! NTT work); a double-check on re-acquire keeps concurrent misses from
//! installing twice.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::service::Tenant;
use crate::ServeError;

struct Slot {
    resident: Option<Arc<Tenant>>,
    /// The registered keyset frame — retained for reload after eviction.
    frame: Option<Arc<[u8]>>,
    /// Pinned slots (in-process registrations) are never evicted.
    pinned: bool,
    last_use: u64,
}

struct Inner {
    slots: HashMap<Arc<str>, Slot>,
    clock: u64,
}

/// The tenant registry: every registered tenant has a slot; at most
/// `capacity` unpinned slots hold decoded state at once.
pub(crate) struct KeyCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl KeyCache {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                clock: 0,
            }),
            capacity,
        }
    }

    /// Registers (or replaces) a tenant that cannot be reloaded from a
    /// frame — always resident.
    pub(crate) fn insert_pinned(&self, id: Arc<str>, tenant: Arc<Tenant>) {
        let mut inner = self.inner.lock().expect("key cache poisoned");
        inner.clock += 1;
        let last_use = inner.clock;
        inner.slots.insert(
            id,
            Slot {
                resident: Some(tenant),
                frame: None,
                pinned: true,
                last_use,
            },
        );
    }

    /// Registers (or replaces) a tenant backed by its keyset frame; the
    /// decoded state is installed resident and is evictable.
    pub(crate) fn insert_frame(&self, id: Arc<str>, frame: Arc<[u8]>, tenant: Arc<Tenant>) {
        let mut inner = self.inner.lock().expect("key cache poisoned");
        inner.clock += 1;
        let last_use = inner.clock;
        inner.slots.insert(
            id,
            Slot {
                resident: Some(tenant),
                frame: Some(frame),
                pinned: false,
                last_use,
            },
        );
        self.evict_excess(&mut inner);
    }

    /// Looks up a tenant, re-decoding its frame if it was evicted.
    /// `Ok(None)` means the id was never registered.
    ///
    /// # Errors
    ///
    /// [`ServeError::Wire`] if a reload decode fails (only possible if
    /// key derivation stopped being deterministic — effectively never,
    /// but typed rather than panicking).
    pub(crate) fn get(&self, id: &str) -> Result<Option<Arc<Tenant>>, ServeError> {
        let frame = {
            let mut inner = self.inner.lock().expect("key cache poisoned");
            inner.clock += 1;
            let clock = inner.clock;
            let Some(slot) = inner.slots.get_mut(id) else {
                return Ok(None);
            };
            slot.last_use = clock;
            if let Some(tenant) = &slot.resident {
                #[cfg(feature = "telemetry")]
                crate::tel::keycache_hit().add(1);
                return Ok(Some(Arc::clone(tenant)));
            }
            Arc::clone(
                slot.frame
                    .as_ref()
                    .expect("non-resident slot must hold a frame"),
            )
        };
        // Miss: decode outside the lock.
        #[cfg(feature = "telemetry")]
        crate::tel::keycache_miss().add(1);
        let (ctx, keys) = poseidon_wire::decode_keyset(&frame)?;
        let rebuilt = Arc::new(Tenant::build(ctx, keys));
        let mut inner = self.inner.lock().expect("key cache poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        let Some(slot) = inner.slots.get_mut(id) else {
            // Deregistered while decoding — hand the caller the state
            // it asked for; it simply will not be cached.
            return Ok(Some(rebuilt));
        };
        slot.last_use = clock;
        if let Some(tenant) = &slot.resident {
            // A concurrent miss beat us to the install; use theirs.
            return Ok(Some(Arc::clone(tenant)));
        }
        slot.resident = Some(Arc::clone(&rebuilt));
        self.evict_excess(&mut inner);
        Ok(Some(rebuilt))
    }

    /// Decoded tenants currently resident (pinned included) — test and
    /// telemetry visibility.
    pub(crate) fn resident(&self) -> usize {
        self.inner
            .lock()
            .expect("key cache poisoned")
            .slots
            .values()
            .filter(|s| s.resident.is_some())
            .count()
    }

    /// Evicts least-recently-used unpinned residents down to capacity.
    fn evict_excess(&self, inner: &mut Inner) {
        loop {
            let over = inner
                .slots
                .values()
                .filter(|s| s.resident.is_some() && !s.pinned)
                .count();
            if over <= self.capacity {
                return;
            }
            let victim = inner
                .slots
                .iter()
                .filter(|(_, s)| s.resident.is_some() && !s.pinned)
                .min_by_key(|(_, s)| s.last_use)
                .map(|(id, _)| Arc::clone(id))
                .expect("over > capacity implies a victim exists");
            if let Some(slot) = inner.slots.get_mut(&*victim) {
                slot.resident = None;
            }
            #[cfg(feature = "telemetry")]
            crate::tel::keycache_evict().add(1);
        }
    }
}
