//! Sharded dispatch queues: per-tenant shard affinity plus bounded work
//! stealing, heartbeat pulses for the watchdog, and failover requeueing.
//!
//! The software analogue of the paper's channel scheduling: Poseidon
//! keeps all HBM channels busy by statically mapping operands to
//! channels and letting idle lanes pull from busy ones. Here each
//! dispatcher worker owns one shard of the job queue; a tenant always
//! hashes to the same shard (FNV-1a affinity), so same-ciphertext
//! rotation requests from one tenant stay adjacent and the batching
//! scheduler's hoist coalescing still fires. A worker whose shard runs
//! dry *steals from the back* of a loaded sibling — only when that
//! sibling is mid-batch or oversubscribed — so the front of every shard
//! (the coalescing window the owner will drain next) is never broken up
//! by theft.
//!
//! All shards live under one mutex with one condvar. Queue depths are a
//! few dozen jobs while each job is milliseconds of NTT work, so
//! fine-grained per-shard locking would buy nothing and cost deadlock
//! surface; the single lock also makes admission control (one global
//! capacity) and shutdown draining trivially race-free.
//!
//! Resilience hooks (this layer's contribution to the watchdog in
//! [`crate::service`]):
//!
//! - every worker carries an **epoch**: a replaced worker (stalled,
//!   superseded by the watchdog) observes the bumped epoch at its next
//!   queue interaction and exits instead of competing with its
//!   replacement;
//! - every shard has a **pulse**: a beats counter plus a busy-since
//!   timestamp, letting the watchdog distinguish "executing a long
//!   batch" from "wedged";
//! - [`SharedQueues::requeue_shard`] migrates a victim shard's queued
//!   jobs to the least-loaded surviving sibling in submission order, so
//!   coalescing windows survive failover intact;
//! - every dequeued job parks its reply sink in the [`InFlightTable`]
//!   until answered, so a *wedged* worker's held batch can be failed by
//!   the watchdog with a typed error instead of hanging its waiters
//!   until the zombie wakes (which may be never). Whoever takes the
//!   slot first — the executing worker or the watchdog — answers;
//!   the loser's send is a no-op, so a reply fires exactly once.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

use he_ckks::cipher::Ciphertext;

use crate::service::Tenant;
use crate::{Request, ServeError};

/// Milliseconds since process start (monotonic). The watchdog's clock:
/// cheap, `u64`-storable, immune to wall-clock steps.
pub(crate) fn now_ms() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    let start = *START.get_or_init(Instant::now);
    Instant::now().duration_since(start).as_millis() as u64
}

/// How a finished job's result leaves the dispatcher.
enum ReplySink {
    /// The in-process path: one-shot channel behind a
    /// [`Ticket`](crate::Ticket).
    Ticket(mpsc::Sender<Result<Ciphertext, ServeError>>),
    /// The multiplexed path: the caller's request id is handed back with
    /// the result, in whatever order jobs complete.
    Tagged {
        id: u64,
        sink: Box<dyn FnOnce(u64, Result<Ciphertext, ServeError>) + Send>,
    },
}

impl ReplySink {
    fn dispatch(self, result: Result<Ciphertext, ServeError>) {
        match self {
            ReplySink::Ticket(tx) => {
                let _ = tx.send(result);
            }
            ReplySink::Tagged { id, sink } => sink(id, result),
        }
    }
}

/// Reply sinks parked by dequeued-but-unanswered jobs, one slot map per
/// shard. The executing worker answers through its slot; if the worker
/// wedges, the watchdog drains the shard's slots at replacement and
/// fails each with a typed [`ServeError::Internal`] — the in-flight
/// half of "never a hang, never a lost reply". The slot mutexes are
/// leaf locks: nothing is acquired while one is held.
pub(crate) struct InFlightTable {
    shards: Vec<Mutex<HashMap<u64, ReplySink>>>,
    serial: AtomicU64,
}

impl InFlightTable {
    fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            serial: AtomicU64::new(0),
        }
    }

    fn park(&self, shard: usize, sink: ReplySink) -> u64 {
        let serial = self.serial.fetch_add(1, Ordering::Relaxed);
        self.shards[shard]
            .lock()
            .expect("in-flight table poisoned")
            .insert(serial, sink);
        serial
    }

    fn take(&self, shard: usize, serial: u64) -> Option<ReplySink> {
        self.shards[shard]
            .lock()
            .expect("in-flight table poisoned")
            .remove(&serial)
    }

    /// Fails every parked reply on `shard` with a typed error. Called by
    /// the watchdog when it retires a stalled worker: the zombie may
    /// sleep forever, so its waiters must not. Returns how many replies
    /// were failed.
    pub(crate) fn fail_shard(&self, shard: usize) -> usize {
        let drained: Vec<ReplySink> = {
            let mut slots = self.shards[shard].lock().expect("in-flight table poisoned");
            slots.drain().map(|(_, sink)| sink).collect()
        };
        let n = drained.len();
        for sink in drained {
            sink.dispatch(Err(ServeError::Internal(
                "worker stalled past the watchdog timeout; request abandoned at failover".into(),
            )));
        }
        n
    }
}

/// A job's reply channel. Before dequeue it owns its sink directly,
/// armed with a drop guard: if a worker dies mid-batch (an escaped
/// panic unwinds the batch it held), every unanswered reply resolves as
/// a typed [`ServeError::Internal`] rather than a silently lost
/// response. At dequeue the sink is parked in the [`InFlightTable`]
/// (see [`Reply::park_in_flight`]) so the watchdog can also answer it
/// if the worker wedges. Admission-control rejections
/// [`defuse`](Reply::defuse) the guard — the submitter still owns error
/// reporting for jobs that never entered a queue.
pub(crate) struct Reply {
    inner: Option<ReplyState>,
}

enum ReplyState {
    Direct(ReplySink),
    Parked {
        table: Arc<InFlightTable>,
        shard: usize,
        serial: u64,
    },
}

impl ReplyState {
    fn dispatch(self, result: Result<Ciphertext, ServeError>) {
        match self {
            ReplyState::Direct(sink) => sink.dispatch(result),
            // Empty slot: the watchdog already failed this job (or a
            // racing path answered it) — exactly-once means we drop.
            ReplyState::Parked {
                table,
                shard,
                serial,
            } => {
                if let Some(sink) = table.take(shard, serial) {
                    sink.dispatch(result);
                }
            }
        }
    }
}

impl Reply {
    pub(crate) fn ticket(tx: mpsc::Sender<Result<Ciphertext, ServeError>>) -> Self {
        Self {
            inner: Some(ReplyState::Direct(ReplySink::Ticket(tx))),
        }
    }

    pub(crate) fn tagged(
        id: u64,
        sink: Box<dyn FnOnce(u64, Result<Ciphertext, ServeError>) + Send>,
    ) -> Self {
        Self {
            inner: Some(ReplyState::Direct(ReplySink::Tagged { id, sink })),
        }
    }

    pub(crate) fn send(mut self, result: Result<Ciphertext, ServeError>) {
        if let Some(state) = self.inner.take() {
            state.dispatch(result);
        }
    }

    /// Moves the sink into `table`'s slot map for `shard` — called at
    /// dequeue, while the executing worker owns this job. From here on
    /// the reply is answered by whoever claims the slot first: the
    /// worker (normal completion, or its unwind drop guard) or the
    /// watchdog ([`InFlightTable::fail_shard`] on a stall).
    fn park_in_flight(&mut self, table: &Arc<InFlightTable>, shard: usize) {
        if let Some(ReplyState::Direct(sink)) = self.inner.take() {
            let serial = table.park(shard, sink);
            self.inner = Some(ReplyState::Parked {
                table: Arc::clone(table),
                shard,
                serial,
            });
        }
    }

    /// Disarms the drop guard without answering: the job was rejected at
    /// admission and its error travels back on the submit path instead.
    pub(crate) fn defuse(&mut self) {
        self.inner = None;
    }
}

impl Drop for Reply {
    fn drop(&mut self) {
        if let Some(state) = self.inner.take() {
            state.dispatch(Err(ServeError::Internal(
                "dispatcher dropped reply (worker died mid-batch)".into(),
            )));
        }
    }
}

pub(crate) struct Job {
    pub(crate) tenant_id: Arc<str>,
    pub(crate) tenant: Arc<Tenant>,
    pub(crate) request: Request,
    /// Absolute completion deadline; enforced at admission, dequeue, and
    /// just before execution.
    pub(crate) deadline: Option<Instant>,
    /// Tenant priority for the overload ladder (default 128; below 128
    /// sheds first under pressure).
    pub(crate) priority: u8,
    pub(crate) reply: Reply,
}

/// FNV-1a over the tenant id — the shard affinity hash. Stable across
/// runs (no randomized hasher) so a tenant's shard is deterministic.
pub(crate) fn tenant_hash(id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in id.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One shard's heartbeat, read lock-free by the watchdog. `beats` ticks
/// every time the worker returns to the queue; `busy_since_ms` is the
/// [`now_ms`] timestamp when its current batch started (0 = idle).
pub(crate) struct Pulse {
    pub(crate) beats: AtomicU64,
    pub(crate) busy_since_ms: AtomicU64,
}

struct QueueSet {
    shards: Vec<VecDeque<Job>>,
    /// Worker i is currently executing a batch (its shard may be stolen
    /// from while this is set).
    busy: Vec<bool>,
    /// Total queued jobs across shards (the admission-control quantity).
    total: usize,
    suspended: bool,
    shutdown: bool,
}

/// The shared queue set: one mutex + condvar over all shards.
pub(crate) struct SharedQueues {
    state: Mutex<QueueSet>,
    cv: Condvar,
    capacity: usize,
    max_batch: usize,
    /// Per-shard worker generation. A worker spawned at epoch e exits as
    /// soon as it observes `epochs[me] != e` — the watchdog bumps this
    /// when it installs a replacement, so a stalled-then-recovered
    /// zombie never races its successor for jobs.
    epochs: Vec<AtomicU64>,
    pulses: Vec<Pulse>,
    /// Reply sinks of dequeued-but-unanswered jobs, per executing shard.
    in_flight: Arc<InFlightTable>,
    /// Live queue-depth gauges, one per shard (`serve.queue.depth.N`):
    /// each enqueue/dequeue samples the shard's depth, so
    /// `items / count` reads as the mean observed depth.
    #[cfg(feature = "telemetry")]
    depth_gauges: Vec<Arc<poseidon_telemetry::Metric>>,
}

impl SharedQueues {
    pub(crate) fn new(shards: usize, capacity: usize, max_batch: usize) -> Self {
        let shards = shards.max(1);
        Self {
            state: Mutex::new(QueueSet {
                shards: (0..shards).map(|_| VecDeque::new()).collect(),
                busy: vec![false; shards],
                total: 0,
                suspended: false,
                shutdown: false,
            }),
            cv: Condvar::new(),
            capacity,
            max_batch: max_batch.max(1),
            epochs: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            in_flight: Arc::new(InFlightTable::new(shards)),
            pulses: (0..shards)
                .map(|_| Pulse {
                    beats: AtomicU64::new(0),
                    busy_since_ms: AtomicU64::new(0),
                })
                .collect(),
            #[cfg(feature = "telemetry")]
            depth_gauges: (0..shards)
                .map(|i| {
                    poseidon_telemetry::Registry::global().scope_indexed("serve.queue.depth.", i)
                })
                .collect(),
        }
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.state.lock().expect("queue poisoned").shards.len()
    }

    pub(crate) fn shard_for(&self, tenant_id: &str, shard_count: usize) -> usize {
        (tenant_hash(tenant_id) % shard_count as u64) as usize
    }

    #[cfg(feature = "telemetry")]
    fn sample_depth(&self, q: &QueueSet, shard: usize) {
        self.depth_gauges[shard].add(q.shards[shard].len() as u64);
    }

    /// Enqueues one job onto its tenant's shard. Strict admission
    /// control against the *global* capacity, with a graceful-
    /// degradation ladder in front of it: under sustained pressure the
    /// lowest-priority tenants shed first (typed
    /// [`ServeError::Overloaded`] with a depth-derived retry hint)
    /// while higher-priority traffic is still admitted.
    pub(crate) fn submit(&self, mut job: Job) -> Result<(), ServeError> {
        {
            let mut q = self.state.lock().expect("queue poisoned");
            if q.shutdown {
                job.reply.defuse();
                return Err(ServeError::ShuttingDown);
            }
            if q.total >= self.capacity {
                #[cfg(feature = "telemetry")]
                crate::tel::reject().add(1);
                job.reply.defuse();
                return Err(ServeError::QueueFull {
                    depth: q.total,
                    capacity: self.capacity,
                });
            }
            // Overload ladder: at 3/4 capacity shed the low tier
            // (priority < 64); at 7/8 shed everything below the default
            // (priority < 128). Default-priority tenants ride through to
            // the hard QueueFull bound.
            let floor = if q.total >= self.capacity.saturating_mul(7) / 8 {
                128
            } else if q.total >= self.capacity.saturating_mul(3) / 4 {
                64
            } else {
                0
            };
            if job.priority < floor {
                #[cfg(feature = "telemetry")]
                crate::tel::shed().add(1);
                let retry_after_ms = 10 + 4 * q.total as u64;
                job.reply.defuse();
                return Err(ServeError::Overloaded { retry_after_ms });
            }
            let shard = self.shard_for(&job.tenant_id, q.shards.len());
            q.shards[shard].push_back(job);
            q.total += 1;
            #[cfg(feature = "telemetry")]
            self.sample_depth(&q, shard);
        }
        #[cfg(feature = "telemetry")]
        crate::tel::enqueue().add(1);
        self.cv.notify_all();
        Ok(())
    }

    pub(crate) fn suspend(&self) {
        self.state.lock().expect("queue poisoned").suspended = true;
    }

    pub(crate) fn resume(&self) {
        self.state.lock().expect("queue poisoned").suspended = false;
        self.cv.notify_all();
    }

    pub(crate) fn depth(&self) -> usize {
        self.state.lock().expect("queue poisoned").total
    }

    pub(crate) fn begin_shutdown(&self) {
        self.state.lock().expect("queue poisoned").shutdown = true;
        self.cv.notify_all();
    }

    pub(crate) fn is_shutdown(&self) -> bool {
        self.state.lock().expect("queue poisoned").shutdown
    }

    /// Current worker generation for shard `i`.
    pub(crate) fn epoch(&self, i: usize) -> u64 {
        self.epochs[i].load(Ordering::Acquire)
    }

    /// Retires shard `i`'s current worker generation (the old worker
    /// exits at its next queue interaction), clears its busy/pulse
    /// state, and returns the fresh epoch its replacement should run at.
    pub(crate) fn bump_epoch(&self, i: usize) -> u64 {
        let fresh = self.epochs[i].fetch_add(1, Ordering::AcqRel) + 1;
        let mut q = self.state.lock().expect("queue poisoned");
        q.busy[i] = false;
        self.pulses[i].busy_since_ms.store(0, Ordering::Release);
        drop(q);
        self.cv.notify_all();
        fresh
    }

    /// How long shard `i`'s worker has been executing its current batch,
    /// in milliseconds (0 when idle). The watchdog's stall signal.
    pub(crate) fn busy_for_ms(&self, i: usize) -> u64 {
        let since = self.pulses[i].busy_since_ms.load(Ordering::Acquire);
        if since == 0 {
            0
        } else {
            now_ms().saturating_sub(since).max(1)
        }
    }

    /// Heartbeat count for shard `i`'s worker (liveness observability).
    pub(crate) fn beats(&self, i: usize) -> u64 {
        self.pulses[i].beats.load(Ordering::Acquire)
    }

    /// Fails every in-flight (dequeued, unanswered) job executing on
    /// shard `i` with a typed [`ServeError::Internal`]. The watchdog's
    /// stall-replacement path: the retired zombie still holds the batch,
    /// but its waiters get answered now. Returns how many were failed.
    pub(crate) fn fail_in_flight(&self, i: usize) -> usize {
        self.in_flight.fail_shard(i)
    }

    /// In-flight jobs currently parked for shard `i` (observability).
    pub(crate) fn in_flight_len(&self, i: usize) -> usize {
        self.in_flight.shards[i]
            .lock()
            .expect("in-flight table poisoned")
            .len()
    }

    /// Failover: migrates every job queued on `victim` to the least-
    /// loaded surviving shard, preserving submission order (the jobs
    /// stay contiguous, so the coalescing window survives the move).
    /// Returns how many jobs moved. With a single shard there is no
    /// survivor; jobs stay put for the respawned worker.
    pub(crate) fn requeue_shard(&self, victim: usize) -> usize {
        let mut q = self.state.lock().expect("queue poisoned");
        if q.shards[victim].is_empty() {
            return 0;
        }
        let Some(target) = (0..q.shards.len())
            .filter(|&j| j != victim)
            .min_by_key(|&j| q.shards[j].len())
        else {
            return 0;
        };
        let moved: Vec<Job> = q.shards[victim].drain(..).collect();
        let n = moved.len();
        for job in moved {
            q.shards[target].push_back(job);
        }
        #[cfg(feature = "telemetry")]
        {
            self.sample_depth(&q, victim);
            self.sample_depth(&q, target);
        }
        drop(q);
        self.cv.notify_all();
        n
    }

    /// Is there a shard worker `me` may steal from? Only shards whose
    /// owner is mid-batch, or whose backlog exceeds one full batch —
    /// an idle owner's short queue is left intact so its coalescing
    /// window (the queue front it will drain next) survives.
    fn steal_candidate(&self, q: &QueueSet, me: usize) -> Option<usize> {
        (0..q.shards.len())
            .filter(|&j| j != me && !q.shards[j].is_empty())
            .filter(|&j| q.busy[j] || q.shards[j].len() > self.max_batch)
            .max_by_key(|&j| q.shards[j].len())
    }

    /// Blocks until worker `me` (spawned at `epoch`) has a batch to run.
    /// Returns `None` on shutdown — after draining `me`'s own shard with
    /// [`ServeError::ShuttingDown`] — or when the watchdog has retired
    /// this worker's epoch (the shard now belongs to a replacement; exit
    /// without touching shared state). The bool is `true` when the batch
    /// was stolen from a sibling shard.
    pub(crate) fn next_batch(&self, me: usize, epoch: u64) -> Option<(Vec<Job>, bool)> {
        let mut q = self.state.lock().expect("queue poisoned");
        if self.epochs[me].load(Ordering::Acquire) != epoch {
            return None;
        }
        q.busy[me] = false;
        self.pulses[me].busy_since_ms.store(0, Ordering::Release);
        self.pulses[me].beats.fetch_add(1, Ordering::AcqRel);
        loop {
            if self.epochs[me].load(Ordering::Acquire) != epoch {
                return None;
            }
            if q.shutdown {
                let drained: Vec<Job> = q.shards[me].drain(..).collect();
                q.total -= drained.len();
                drop(q);
                for job in drained {
                    job.reply.send(Err(ServeError::ShuttingDown));
                }
                return None;
            }
            if !q.suspended {
                if !q.shards[me].is_empty() {
                    let n = q.shards[me].len().min(self.max_batch);
                    let mut batch: Vec<Job> = q.shards[me].drain(..n).collect();
                    for job in &mut batch {
                        job.reply.park_in_flight(&self.in_flight, me);
                    }
                    q.total -= batch.len();
                    q.busy[me] = true;
                    self.pulses[me]
                        .busy_since_ms
                        .store(now_ms().max(1), Ordering::Release);
                    #[cfg(feature = "telemetry")]
                    self.sample_depth(&q, me);
                    return Some((batch, false));
                }
                if let Some(victim) = self.steal_candidate(&q, me) {
                    // Take up to half the victim's backlog off the BACK:
                    // newest jobs move, the owner's coalescing window at
                    // the front stays whole.
                    let len = q.shards[victim].len();
                    let take = len.div_ceil(2).min(self.max_batch);
                    let mut batch: Vec<Job> = Vec::with_capacity(take);
                    for _ in 0..take {
                        batch.push(q.shards[victim].pop_back().expect("victim non-empty"));
                    }
                    // Restore submission order within the stolen slice.
                    batch.reverse();
                    for job in &mut batch {
                        job.reply.park_in_flight(&self.in_flight, me);
                    }
                    q.total -= batch.len();
                    q.busy[me] = true;
                    self.pulses[me]
                        .busy_since_ms
                        .store(now_ms().max(1), Ordering::Release);
                    #[cfg(feature = "telemetry")]
                    self.sample_depth(&q, victim);
                    return Some((batch, true));
                }
            }
            q = self.cv.wait(q).expect("queue poisoned");
        }
    }
}

/// One dispatcher worker: drain own shard (or steal), execute, repeat —
/// until shutdown or until the watchdog retires this worker's `epoch`.
pub(crate) fn dispatch_loop(queues: Arc<SharedQueues>, me: usize, epoch: u64) {
    #[cfg(feature = "telemetry")]
    let shard_scope = poseidon_telemetry::Registry::global().scope_indexed("serve.shard.", me);
    loop {
        let Some((batch, stolen)) = queues.next_batch(me, epoch) else {
            return;
        };
        #[cfg(feature = "telemetry")]
        {
            crate::tel::dequeue().add(batch.len() as u64);
            crate::tel::batch().add(batch.len() as u64);
            shard_scope.add(batch.len() as u64);
            if stolen {
                crate::tel::steal().add(batch.len() as u64);
            }
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = stolen;
        // Chaos hook: a seeded plan at `ShardWorker` can stall this
        // worker (tripping the stall watchdog) or kill it outright (the
        // escaped panic unwinds `batch`, whose Reply drop guards answer
        // every held job with a typed Internal error; the watchdog then
        // requeues the shard and respawns the worker).
        #[cfg(feature = "faults")]
        match poseidon_faults::disrupt(poseidon_faults::FaultSite::ShardWorker, &mut []) {
            Some(poseidon_faults::Disruption::Stalled(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            Some(poseidon_faults::Disruption::Panicked) => {
                panic!("injected shard-worker panic");
            }
            _ => {}
        }
        crate::service::execute_batch(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::tenant_hash;

    #[test]
    fn affinity_hash_is_stable_and_spreads() {
        // Pinned values: the shard map is part of observable behaviour
        // (affinity must not silently change between builds).
        assert_eq!(tenant_hash(""), 0xcbf2_9ce4_8422_2325);
        let shards = 4u64;
        let ids = ["acme", "globex", "initech", "umbrella", "t0", "t1", "t2"];
        let mut seen = std::collections::HashSet::new();
        for id in ids {
            seen.insert(tenant_hash(id) % shards);
        }
        assert!(seen.len() >= 2, "hash degenerated to one shard: {seen:?}");
    }
}
