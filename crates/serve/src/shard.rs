//! Sharded dispatch queues: per-tenant shard affinity plus bounded work
//! stealing.
//!
//! The software analogue of the paper's channel scheduling: Poseidon
//! keeps all HBM channels busy by statically mapping operands to
//! channels and letting idle lanes pull from busy ones. Here each
//! dispatcher worker owns one shard of the job queue; a tenant always
//! hashes to the same shard (FNV-1a affinity), so same-ciphertext
//! rotation requests from one tenant stay adjacent and the batching
//! scheduler's hoist coalescing still fires. A worker whose shard runs
//! dry *steals from the back* of a loaded sibling — only when that
//! sibling is mid-batch or oversubscribed — so the front of every shard
//! (the coalescing window the owner will drain next) is never broken up
//! by theft.
//!
//! All shards live under one mutex with one condvar. Queue depths are a
//! few dozen jobs while each job is milliseconds of NTT work, so
//! fine-grained per-shard locking would buy nothing and cost deadlock
//! surface; the single lock also makes admission control (one global
//! capacity) and shutdown draining trivially race-free.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};

use he_ckks::cipher::Ciphertext;

use crate::service::Tenant;
use crate::{Request, ServeError};

/// How a finished job's result leaves the dispatcher.
pub(crate) enum Reply {
    /// The in-process path: one-shot channel behind a
    /// [`Ticket`](crate::Ticket).
    Ticket(mpsc::Sender<Result<Ciphertext, ServeError>>),
    /// The multiplexed path: the caller's request id is handed back with
    /// the result, in whatever order jobs complete.
    Tagged {
        id: u64,
        sink: Box<dyn FnOnce(u64, Result<Ciphertext, ServeError>) + Send>,
    },
}

impl Reply {
    pub(crate) fn send(self, result: Result<Ciphertext, ServeError>) {
        match self {
            Reply::Ticket(tx) => {
                let _ = tx.send(result);
            }
            Reply::Tagged { id, sink } => sink(id, result),
        }
    }
}

pub(crate) struct Job {
    pub(crate) tenant_id: Arc<str>,
    pub(crate) tenant: Arc<Tenant>,
    pub(crate) request: Request,
    pub(crate) reply: Reply,
}

/// FNV-1a over the tenant id — the shard affinity hash. Stable across
/// runs (no randomized hasher) so a tenant's shard is deterministic.
pub(crate) fn tenant_hash(id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in id.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct QueueSet {
    shards: Vec<VecDeque<Job>>,
    /// Worker i is currently executing a batch (its shard may be stolen
    /// from while this is set).
    busy: Vec<bool>,
    /// Total queued jobs across shards (the admission-control quantity).
    total: usize,
    suspended: bool,
    shutdown: bool,
}

/// The shared queue set: one mutex + condvar over all shards.
pub(crate) struct SharedQueues {
    state: Mutex<QueueSet>,
    cv: Condvar,
    capacity: usize,
    max_batch: usize,
}

impl SharedQueues {
    pub(crate) fn new(shards: usize, capacity: usize, max_batch: usize) -> Self {
        let shards = shards.max(1);
        Self {
            state: Mutex::new(QueueSet {
                shards: (0..shards).map(|_| VecDeque::new()).collect(),
                busy: vec![false; shards],
                total: 0,
                suspended: false,
                shutdown: false,
            }),
            cv: Condvar::new(),
            capacity,
            max_batch: max_batch.max(1),
        }
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.state.lock().expect("queue poisoned").shards.len()
    }

    pub(crate) fn shard_for(&self, tenant_id: &str, shard_count: usize) -> usize {
        (tenant_hash(tenant_id) % shard_count as u64) as usize
    }

    /// Enqueues one job onto its tenant's shard. Strict admission
    /// control against the *global* capacity.
    pub(crate) fn submit(&self, job: Job) -> Result<(), ServeError> {
        {
            let mut q = self.state.lock().expect("queue poisoned");
            if q.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if q.total >= self.capacity {
                #[cfg(feature = "telemetry")]
                crate::tel::reject().add(1);
                return Err(ServeError::QueueFull {
                    capacity: self.capacity,
                });
            }
            let shard = self.shard_for(&job.tenant_id, q.shards.len());
            q.shards[shard].push_back(job);
            q.total += 1;
        }
        #[cfg(feature = "telemetry")]
        crate::tel::enqueue().add(1);
        self.cv.notify_all();
        Ok(())
    }

    pub(crate) fn suspend(&self) {
        self.state.lock().expect("queue poisoned").suspended = true;
    }

    pub(crate) fn resume(&self) {
        self.state.lock().expect("queue poisoned").suspended = false;
        self.cv.notify_all();
    }

    pub(crate) fn depth(&self) -> usize {
        self.state.lock().expect("queue poisoned").total
    }

    pub(crate) fn begin_shutdown(&self) {
        self.state.lock().expect("queue poisoned").shutdown = true;
        self.cv.notify_all();
    }

    /// Is there a shard worker `me` may steal from? Only shards whose
    /// owner is mid-batch, or whose backlog exceeds one full batch —
    /// an idle owner's short queue is left intact so its coalescing
    /// window (the queue front it will drain next) survives.
    fn steal_candidate(&self, q: &QueueSet, me: usize) -> Option<usize> {
        (0..q.shards.len())
            .filter(|&j| j != me && !q.shards[j].is_empty())
            .filter(|&j| q.busy[j] || q.shards[j].len() > self.max_batch)
            .max_by_key(|&j| q.shards[j].len())
    }

    /// Blocks until worker `me` has a batch to run. Returns `None` on
    /// shutdown, after draining `me`'s own shard with
    /// [`ServeError::ShuttingDown`]. The bool is `true` when the batch
    /// was stolen from a sibling shard.
    pub(crate) fn next_batch(&self, me: usize) -> Option<(Vec<Job>, bool)> {
        let mut q = self.state.lock().expect("queue poisoned");
        q.busy[me] = false;
        loop {
            if q.shutdown {
                let drained: Vec<Job> = q.shards[me].drain(..).collect();
                q.total -= drained.len();
                drop(q);
                for job in drained {
                    job.reply.send(Err(ServeError::ShuttingDown));
                }
                return None;
            }
            if !q.suspended {
                if !q.shards[me].is_empty() {
                    let n = q.shards[me].len().min(self.max_batch);
                    let batch: Vec<Job> = q.shards[me].drain(..n).collect();
                    q.total -= batch.len();
                    q.busy[me] = true;
                    return Some((batch, false));
                }
                if let Some(victim) = self.steal_candidate(&q, me) {
                    // Take up to half the victim's backlog off the BACK:
                    // newest jobs move, the owner's coalescing window at
                    // the front stays whole.
                    let len = q.shards[victim].len();
                    let take = len.div_ceil(2).min(self.max_batch);
                    let mut batch: Vec<Job> = Vec::with_capacity(take);
                    for _ in 0..take {
                        batch.push(q.shards[victim].pop_back().expect("victim non-empty"));
                    }
                    // Restore submission order within the stolen slice.
                    batch.reverse();
                    q.total -= batch.len();
                    q.busy[me] = true;
                    return Some((batch, true));
                }
            }
            q = self.cv.wait(q).expect("queue poisoned");
        }
    }
}

/// One dispatcher worker: drain own shard (or steal), execute, repeat.
pub(crate) fn dispatch_loop(queues: Arc<SharedQueues>, me: usize) {
    #[cfg(feature = "telemetry")]
    let shard_scope = poseidon_telemetry::Registry::global().scope_indexed("serve.shard.", me);
    loop {
        let Some((batch, stolen)) = queues.next_batch(me) else {
            return;
        };
        #[cfg(feature = "telemetry")]
        {
            crate::tel::dequeue().add(batch.len() as u64);
            crate::tel::batch().add(batch.len() as u64);
            shard_scope.add(batch.len() as u64);
            if stolen {
                crate::tel::steal().add(batch.len() as u64);
            }
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = stolen;
        crate::service::execute_batch(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::tenant_hash;

    #[test]
    fn affinity_hash_is_stable_and_spreads() {
        // Pinned values: the shard map is part of observable behaviour
        // (affinity must not silently change between builds).
        assert_eq!(tenant_hash(""), 0xcbf2_9ce4_8422_2325);
        let shards = 4u64;
        let ids = ["acme", "globex", "initech", "umbrella", "t0", "t1", "t2"];
        let mut seen = std::collections::HashSet::new();
        for id in ids {
            seen.insert(tenant_hash(id) % shards);
        }
        assert!(seen.len() >= 2, "hash degenerated to one shard: {seen:?}");
    }
}
