//! Length-prefixed TCP front-end over the wire format, plus a tiny
//! blocking client.
//!
//! ## Protocol
//!
//! Both directions speak `u32` little-endian length-prefixed frames
//! (length excludes the prefix itself; bounded by [`MAX_FRAME`]).
//!
//! **Request** frame body:
//!
//! ```text
//! opcode: u8 | tenant_len: u16 LE | tenant: utf-8
//! [steps: i64 LE]                     -- Rotate only
//! blobs: (u32 LE length | bytes)*     -- poseidon-wire frames
//! ```
//!
//! Two-blob ops: `Add`/`Sub`/`Mul` (two ciphertexts), `AddPlain`/
//! `MulPlain` (ciphertext, plaintext). One-blob ops: `Square`,
//! `Rescale`, `Rotate`, `Conjugate` (ciphertext), `RegisterTenant`
//! (key-set frame, normally [`poseidon_wire::encode_keyset_public`]).
//!
//! **Response** frame body: status `u8` — `0` = ok followed by one
//! optional blob (`u32` LE length, possibly zero, then a ciphertext
//! frame), `1` = error followed by `code: u8 | msg_len: u16 LE | msg`.
//!
//! A protocol-level parse failure answers with an error frame and drops
//! the connection; a wire/eval failure answers with an error frame and
//! keeps serving. Malformed input never panics the server.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::{EvalService, Request, ServeError};

/// Upper bound on one protocol frame (64 MiB — comfortably above any
/// supported key-set frame).
pub const MAX_FRAME: usize = 64 << 20;

/// Request opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Op {
    Add = 1,
    Sub = 2,
    Mul = 3,
    Square = 4,
    Rescale = 5,
    Rotate = 6,
    Conjugate = 7,
    AddPlain = 8,
    MulPlain = 9,
    RegisterTenant = 10,
}

impl Op {
    fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            1 => Op::Add,
            2 => Op::Sub,
            3 => Op::Mul,
            4 => Op::Square,
            5 => Op::Rescale,
            6 => Op::Rotate,
            7 => Op::Conjugate,
            8 => Op::AddPlain,
            9 => Op::MulPlain,
            10 => Op::RegisterTenant,
            _ => return None,
        })
    }
}

fn error_code(e: &ServeError) -> u8 {
    match e {
        ServeError::UnknownTenant(_) => 1,
        ServeError::QueueFull { .. } => 2,
        ServeError::Eval(_) => 3,
        ServeError::Wire(_) => 4,
        ServeError::ShuttingDown => 5,
        ServeError::Internal(_) => 6,
        _ => 7,
    }
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF before a
/// prefix.
fn read_frame(stream: &mut TcpStream) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    match stream.read_exact(&mut prefix) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(Some(body))
}

fn write_frame(stream: &mut TcpStream, body: &[u8]) -> io::Result<()> {
    stream.write_all(&(body.len() as u32).to_le_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

fn ok_response(blob: Option<&[u8]>) -> Vec<u8> {
    let blob = blob.unwrap_or(&[]);
    let mut out = Vec::with_capacity(5 + blob.len());
    out.push(0);
    out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
    out.extend_from_slice(blob);
    out
}

fn err_response(e: &ServeError) -> Vec<u8> {
    let msg = e.to_string();
    let msg = &msg.as_bytes()[..msg.len().min(u16::MAX as usize)];
    let mut out = Vec::with_capacity(4 + msg.len());
    out.push(1);
    out.push(error_code(e));
    out.extend_from_slice(&(msg.len() as u16).to_le_bytes());
    out.extend_from_slice(msg);
    out
}

struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        if self.buf.len() - self.pos < n {
            return Err(ServeError::Protocol(format!(
                "request frame truncated: wanted {n} more bytes"
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn blob(&mut self) -> Result<&'a [u8], ServeError> {
        let len = u32::from_le_bytes(self.take(4)?.try_into().expect("4-byte slice")) as usize;
        self.take(len)
    }

    fn done(&self) -> Result<(), ServeError> {
        if self.pos != self.buf.len() {
            return Err(ServeError::Protocol(format!(
                "{} trailing bytes after request",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Parses and executes one request frame; `Ok(Some(bytes))` is a
/// ciphertext frame to return, `Ok(None)` an empty success.
fn process(service: &EvalService, frame: &[u8]) -> Result<Option<Vec<u8>>, ServeError> {
    let mut r = FrameReader { buf: frame, pos: 0 };
    let code = r.take(1)?[0];
    let op = Op::from_code(code)
        .ok_or_else(|| ServeError::Protocol(format!("unknown opcode {code}")))?;
    let tenant_len = u16::from_le_bytes(r.take(2)?.try_into().expect("2-byte slice")) as usize;
    let tenant = std::str::from_utf8(r.take(tenant_len)?)
        .map_err(|_| ServeError::Protocol("tenant id is not utf-8".into()))?
        .to_string();

    if op == Op::RegisterTenant {
        let frame = r.blob()?;
        r.done()?;
        service.register_tenant_frame(&tenant, frame)?;
        return Ok(None);
    }

    let steps = if op == Op::Rotate {
        Some(i64::from_le_bytes(
            r.take(8)?.try_into().expect("8-byte slice"),
        ))
    } else {
        None
    };

    let ctx = service
        .tenant_context(&tenant)
        .ok_or_else(|| ServeError::UnknownTenant(tenant.clone()))?;
    let a = poseidon_wire::decode_ciphertext(&ctx, r.blob()?)?;
    let request = match op {
        Op::Add => Request::Add {
            a,
            b: poseidon_wire::decode_ciphertext(&ctx, r.blob()?)?,
        },
        Op::Sub => Request::Sub {
            a,
            b: poseidon_wire::decode_ciphertext(&ctx, r.blob()?)?,
        },
        Op::Mul => Request::Mul {
            a,
            b: poseidon_wire::decode_ciphertext(&ctx, r.blob()?)?,
        },
        Op::Square => Request::Square { a },
        Op::Rescale => Request::Rescale { a },
        Op::Rotate => Request::Rotate {
            a,
            steps: steps.expect("steps parsed for Rotate"),
        },
        Op::Conjugate => Request::Conjugate { a },
        Op::AddPlain => Request::AddPlain {
            a,
            pt: poseidon_wire::decode_plaintext(&ctx, r.blob()?)?,
        },
        Op::MulPlain => Request::MulPlain {
            a,
            pt: poseidon_wire::decode_plaintext(&ctx, r.blob()?)?,
        },
        Op::RegisterTenant => unreachable!("handled above"),
    };
    r.done()?;
    let out = service.call(&tenant, request)?;
    Ok(Some(poseidon_wire::encode_ciphertext(&ctx, &out)))
}

fn handle_connection(service: Arc<EvalService>, mut stream: TcpStream) {
    while let Ok(Some(frame)) = read_frame(&mut stream) {
        let response = match process(&service, &frame) {
            Ok(blob) => ok_response(blob.as_deref()),
            Err(e) => err_response(&e),
        };
        if write_frame(&mut stream, &response).is_err() {
            break;
        }
        // A protocol desync is unrecoverable mid-stream; close after
        // reporting it. Wire/eval errors keep the connection alive.
        if let Err(ServeError::Protocol(_)) = process_status(&frame) {
            break;
        }
    }
}

/// Re-checks only the cheap protocol framing of a request (no decode, no
/// execution) so the connection loop can decide whether the stream is
/// still in sync.
fn process_status(frame: &[u8]) -> Result<(), ServeError> {
    let mut r = FrameReader { buf: frame, pos: 0 };
    let code = r.take(1)?[0];
    let op = Op::from_code(code)
        .ok_or_else(|| ServeError::Protocol(format!("unknown opcode {code}")))?;
    let tenant_len = u16::from_le_bytes(r.take(2)?.try_into().expect("2-byte slice")) as usize;
    r.take(tenant_len)?;
    if op == Op::Rotate {
        r.take(8)?;
    }
    let blobs = match op {
        Op::Add | Op::Sub | Op::Mul | Op::AddPlain | Op::MulPlain => 2,
        _ => 1,
    };
    for _ in 0..blobs {
        r.blob()?;
    }
    r.done()
}

/// Binds `addr` and serves connections on background threads; returns
/// the bound address (use port 0 for an ephemeral port) and the acceptor
/// handle. The acceptor runs until the process exits or the listener
/// errors; per-connection threads are detached.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn listen(
    service: Arc<EvalService>,
    addr: impl ToSocketAddrs,
) -> io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let handle = std::thread::Builder::new()
        .name("poseidon-serve-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { break };
                let service = Arc::clone(&service);
                let _ = std::thread::Builder::new()
                    .name("poseidon-serve-conn".into())
                    .spawn(move || handle_connection(service, stream));
            }
        })?;
    Ok((local, handle))
}

/// Minimal blocking client for the protocol above. All payloads are
/// `poseidon-wire` frames; encoding/decoding stays on the caller's side
/// (the client never needs key material).
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a serving endpoint.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(Self {
            stream: TcpStream::connect(addr)?,
        })
    }

    fn roundtrip(
        &mut self,
        op: Op,
        tenant: &str,
        steps: Option<i64>,
        blobs: &[&[u8]],
    ) -> Result<Option<Vec<u8>>, ServeError> {
        let mut body = Vec::new();
        body.push(op as u8);
        let id = tenant.as_bytes();
        body.extend_from_slice(&(id.len().min(u16::MAX as usize) as u16).to_le_bytes());
        body.extend_from_slice(&id[..id.len().min(u16::MAX as usize)]);
        if let Some(s) = steps {
            body.extend_from_slice(&s.to_le_bytes());
        }
        for blob in blobs {
            body.extend_from_slice(&(blob.len() as u32).to_le_bytes());
            body.extend_from_slice(blob);
        }
        write_frame(&mut self.stream, &body).map_err(|e| ServeError::Io(e.to_string()))?;
        let response = read_frame(&mut self.stream)
            .map_err(|e| ServeError::Io(e.to_string()))?
            .ok_or_else(|| ServeError::Io("server closed the connection".into()))?;

        let mut r = FrameReader {
            buf: &response,
            pos: 0,
        };
        match r.take(1)?[0] {
            0 => {
                let blob = r.blob()?;
                r.done()?;
                Ok(if blob.is_empty() {
                    None
                } else {
                    Some(blob.to_vec())
                })
            }
            1 => {
                let code = r.take(1)?[0];
                let len = u16::from_le_bytes(r.take(2)?.try_into().expect("2-byte slice")) as usize;
                let message = String::from_utf8_lossy(r.take(len)?).into_owned();
                r.done()?;
                Err(ServeError::Remote { code, message })
            }
            s => Err(ServeError::Protocol(format!("unknown response status {s}"))),
        }
    }

    fn expect_blob(result: Result<Option<Vec<u8>>, ServeError>) -> Result<Vec<u8>, ServeError> {
        result?.ok_or_else(|| ServeError::Protocol("expected a ciphertext in response".into()))
    }

    /// Registers a tenant from a key-set frame.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn register_tenant(&mut self, tenant: &str, keyset_frame: &[u8]) -> Result<(), ServeError> {
        self.roundtrip(Op::RegisterTenant, tenant, None, &[keyset_frame])
            .map(|_| ())
    }

    /// Homomorphic addition of two ciphertext frames.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn add(&mut self, tenant: &str, a: &[u8], b: &[u8]) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.roundtrip(Op::Add, tenant, None, &[a, b]))
    }

    /// Homomorphic subtraction.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn sub(&mut self, tenant: &str, a: &[u8], b: &[u8]) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.roundtrip(Op::Sub, tenant, None, &[a, b]))
    }

    /// Relinearised multiplication.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn mul(&mut self, tenant: &str, a: &[u8], b: &[u8]) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.roundtrip(Op::Mul, tenant, None, &[a, b]))
    }

    /// Relinearised squaring.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn square(&mut self, tenant: &str, a: &[u8]) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.roundtrip(Op::Square, tenant, None, &[a]))
    }

    /// Rescale by the top chain prime.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn rescale(&mut self, tenant: &str, a: &[u8]) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.roundtrip(Op::Rescale, tenant, None, &[a]))
    }

    /// Slot rotation by `steps`.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn rotate(&mut self, tenant: &str, a: &[u8], steps: i64) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.roundtrip(Op::Rotate, tenant, Some(steps), &[a]))
    }

    /// Slot-wise conjugation.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn conjugate(&mut self, tenant: &str, a: &[u8]) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.roundtrip(Op::Conjugate, tenant, None, &[a]))
    }

    /// Ciphertext + plaintext addition.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn add_plain(&mut self, tenant: &str, a: &[u8], pt: &[u8]) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.roundtrip(Op::AddPlain, tenant, None, &[a, pt]))
    }

    /// Ciphertext × plaintext multiplication.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn mul_plain(&mut self, tenant: &str, a: &[u8], pt: &[u8]) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.roundtrip(Op::MulPlain, tenant, None, &[a, pt]))
    }
}
