//! Multiplexed TCP front-end over the wire format, plus pipelining and
//! self-healing clients.
//!
//! ## Protocol (v4)
//!
//! Both directions speak `u32` little-endian length-prefixed frames
//! (length excludes the prefix itself; bounded by [`MAX_FRAME`]). Every
//! frame body begins with a **request id** chosen by the client; one
//! connection carries many in-flight requests, and the server answers
//! in whatever order its dispatcher shards finish — the client matches
//! replies to requests through a pending map keyed on the id.
//!
//! **Request** frame body:
//!
//! ```text
//! request_id: u64 LE
//! opcode: u8 | flags: u8 | ttl_ms: u32 LE
//! tenant_len: u16 LE | tenant: utf-8
//! [steps: i64 LE]                     -- Rotate only
//! blobs: (u32 LE length | bytes)*     -- poseidon-wire frames
//! ```
//!
//! `flags` bit 0 requests **idempotent replay**: the server records the
//! executed outcome under `(tenant, request_id)`, and a resubmission of
//! the same id returns the cached reply instead of re-running — the
//! server half of safe client retries. `ttl_ms` (0 = none) becomes an
//! absolute **deadline** at parse time, enforced at admission, dequeue,
//! and pre-execution; an expired request answers with error code 9
//! instead of computing dead work.
//!
//! Two-blob ops: `Add`/`Sub`/`Mul` (two ciphertexts), `AddPlain`/
//! `MulPlain` (ciphertext, plaintext). One-blob ops: `Square`,
//! `Rescale`, `Rotate`, `Conjugate` (ciphertext), `RegisterTenant`
//! (key-set frame, normally [`poseidon_wire::encode_keyset_public`]),
//! and `RegisterTenantChunk` (one [`poseidon_wire::chunk_keyset`] slice;
//! chunks stream in order on one connection and the final chunk's reply
//! acknowledges the registration). `Program` (opcode 12, v4) carries
//! two blobs — raw utf-8 `.pos` program text, then one seed ciphertext
//! frame — and executes the whole program server-side through the
//! evaluation planner as a single admission-controlled unit.
//!
//! **Response** frame body: `request_id: u64 LE` (echoed) followed by
//! status `u8` — `0` = ok then one optional blob (`u32` LE length,
//! possibly zero, then a ciphertext frame), `1` = error then
//! `code: u8 | retry_after_ms: u32 LE | msg_len: u16 LE | msg`.
//! `retry_after_ms` is nonzero only for code 8 (overloaded): the
//! server's backoff hint. The client maps codes 8 and 9 back to the
//! typed [`ServeError::Overloaded`] / [`ServeError::DeadlineExceeded`];
//! every other code surfaces as [`ServeError::Remote`].
//!
//! ## Resilience
//!
//! Both ends run with socket **read/write timeouts**
//! ([`SocketConfig`]). Reads are *patient while idle*: a connection
//! with no bytes in flight waits forever, but a peer that goes silent
//! mid-frame (the slowloris shape: a valid length prefix, then a stall)
//! trips the timeout and frees the connection without blocking other
//! sockets. [`ResilientClient`] layers per-request timeouts, capped
//! exponential backoff with deterministic seeded jitter, automatic
//! reconnection, and replay-flagged resubmission on top of [`Client`].
//!
//! With the `faults` feature, the seeded chaos sites
//! `SocketRead`/`SocketWrite`/`SocketStall` hook the framed read/write
//! paths (truncate, corrupt, stall, disconnect) so the failure modes
//! above are reproducible in tests and campaigns.
//!
//! Ciphertext operands are decoded **zero-copy**: the server validates
//! each frame once through [`poseidon_wire::CiphertextView`] and fills
//! residue rows from a shared [`poseidon_wire::BufferPool`]; encoded
//! result ciphertexts recycle their rows back into the pool, so the
//! steady-state request path allocates nothing for polynomial data.
//!
//! A protocol-level parse failure answers with an error frame and drops
//! the connection; a wire/eval failure answers with an error frame and
//! keeps serving. Malformed input never panics the server.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use he_ckks::cipher::Ciphertext;
use poseidon_wire::{BufferPool, KeysetAssembler};

use crate::{EvalService, Request, ServeError, TenantContext};

/// Upper bound on one protocol frame (64 MiB — comfortably above any
/// supported key-set frame).
pub const MAX_FRAME: usize = 64 << 20;

/// Residue rows retained by a listener's decode pool. At paper-scale
/// parameters a row is ~32 KiB, so the cap bounds pool memory at a few
/// MiB while covering many in-flight requests.
const POOL_ROWS: usize = 256;

/// Socket-level timeouts applied to both ends of a connection. Reads
/// are patient while idle (see the module docs): the read timeout only
/// trips against a peer stalled *mid-frame*.
#[derive(Debug, Clone, Copy)]
pub struct SocketConfig {
    /// Mid-frame read timeout in milliseconds (0 = never time out).
    pub read_timeout_ms: u64,
    /// Socket write timeout in milliseconds (0 = never time out).
    pub write_timeout_ms: u64,
}

impl Default for SocketConfig {
    fn default() -> Self {
        Self {
            read_timeout_ms: 30_000,
            write_timeout_ms: 30_000,
        }
    }
}

impl SocketConfig {
    fn apply_read(&self, stream: &TcpStream) -> io::Result<()> {
        stream.set_read_timeout(
            (self.read_timeout_ms > 0).then(|| Duration::from_millis(self.read_timeout_ms)),
        )
    }

    fn apply_write(&self, stream: &TcpStream) -> io::Result<()> {
        stream.set_write_timeout(
            (self.write_timeout_ms > 0).then(|| Duration::from_millis(self.write_timeout_ms)),
        )
    }
}

/// One serving operation, borrowing its operand frames. The generic
/// surface behind [`Client::request`]; the named convenience methods
/// (`add`, `mul`, …) are thin wrappers over these variants.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub enum Op<'a> {
    /// Homomorphic addition of two ciphertext frames.
    Add {
        /// Left operand frame.
        a: &'a [u8],
        /// Right operand frame.
        b: &'a [u8],
    },
    /// Homomorphic subtraction.
    Sub {
        /// Left operand frame.
        a: &'a [u8],
        /// Right operand frame.
        b: &'a [u8],
    },
    /// Relinearised multiplication.
    Mul {
        /// Left operand frame.
        a: &'a [u8],
        /// Right operand frame.
        b: &'a [u8],
    },
    /// Relinearised squaring.
    Square {
        /// Operand frame.
        a: &'a [u8],
    },
    /// Rescale by the top chain prime.
    Rescale {
        /// Operand frame.
        a: &'a [u8],
    },
    /// Slot rotation — the request kind the scheduler coalesces.
    Rotate {
        /// Operand frame.
        a: &'a [u8],
        /// Left-rotation step count.
        steps: i64,
    },
    /// Slot-wise complex conjugation.
    Conjugate {
        /// Operand frame.
        a: &'a [u8],
    },
    /// Ciphertext + plaintext addition.
    AddPlain {
        /// Ciphertext operand frame.
        a: &'a [u8],
        /// Plaintext operand frame.
        pt: &'a [u8],
    },
    /// Ciphertext × plaintext multiplication.
    MulPlain {
        /// Ciphertext operand frame.
        a: &'a [u8],
        /// Plaintext operand frame.
        pt: &'a [u8],
    },
    /// Tenant provisioning from one whole key-set frame.
    RegisterTenant {
        /// The key-set frame.
        keyset: &'a [u8],
    },
    /// Tenant provisioning, one chunk of a streamed key-set.
    RegisterTenantChunk {
        /// One [`poseidon_wire::chunk_keyset`] chunk frame.
        chunk: &'a [u8],
    },
    /// A whole `.pos` program submitted as one planned, admission-
    /// controlled unit (deadline, priority, and replay cover the full
    /// program, and the planner optimises across its dataflow).
    Program {
        /// Program text in the `.pos` trace format (utf-8).
        program: &'a [u8],
        /// Seed ciphertext frame bound to every program input.
        a: &'a [u8],
    },
}

impl Op<'_> {
    fn code(&self) -> u8 {
        match self {
            Op::Add { .. } => 1,
            Op::Sub { .. } => 2,
            Op::Mul { .. } => 3,
            Op::Square { .. } => 4,
            Op::Rescale { .. } => 5,
            Op::Rotate { .. } => 6,
            Op::Conjugate { .. } => 7,
            Op::AddPlain { .. } => 8,
            Op::MulPlain { .. } => 9,
            Op::RegisterTenant { .. } => 10,
            Op::RegisterTenantChunk { .. } => 11,
            Op::Program { .. } => 12,
        }
    }

    fn steps(&self) -> Option<i64> {
        match self {
            Op::Rotate { steps, .. } => Some(*steps),
            _ => None,
        }
    }

    fn blobs(&self) -> Vec<&[u8]> {
        match self {
            Op::Add { a, b } | Op::Sub { a, b } | Op::Mul { a, b } => vec![a, b],
            Op::Square { a } | Op::Rescale { a } | Op::Rotate { a, .. } | Op::Conjugate { a } => {
                vec![a]
            }
            Op::AddPlain { a, pt } | Op::MulPlain { a, pt } => vec![a, pt],
            Op::RegisterTenant { keyset } => vec![keyset],
            Op::RegisterTenantChunk { chunk } => vec![chunk],
            Op::Program { program, a } => vec![program, a],
        }
    }
}

/// Request flag bit 0: idempotent replay (see the module docs).
const FLAG_REPLAY: u8 = 1;

fn error_code(e: &ServeError) -> u8 {
    match e {
        ServeError::UnknownTenant(_) => 1,
        ServeError::QueueFull { .. } => 2,
        ServeError::Eval(_) => 3,
        ServeError::Wire(_) => 4,
        ServeError::ShuttingDown => 5,
        ServeError::Internal(_) => 6,
        ServeError::Overloaded { .. } => 8,
        ServeError::DeadlineExceeded => 9,
        _ => 7,
    }
}

/// Fills `buf` exactly. `Ok(false)` means the peer closed cleanly
/// before the first byte. While `idle_ok` and nothing has arrived, a
/// socket read timeout just keeps waiting (an idle connection is not an
/// error); once any byte of `buf` has landed, a timeout is the
/// slowloris signal and fails the read.
fn read_exact_or_eof(stream: &mut TcpStream, buf: &mut [u8], idle_ok: bool) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if idle_ok && filled == 0 {
                    continue;
                }
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "read timed out mid-frame (stalled peer)",
                ));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF before a
/// prefix. Waits out idle periods regardless of the socket read
/// timeout; times out only against a peer stalled mid-frame.
fn read_frame(stream: &mut TcpStream) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    if !read_exact_or_eof(stream, &mut prefix, true)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut body = vec![0u8; len];
    if len > 0 && !read_exact_or_eof(stream, &mut body, false)? {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "peer closed between prefix and body",
        ));
    }
    // Chaos hook: seeded plans at `SocketRead` corrupt, truncate, stall,
    // or sever the inbound frame; every shape must surface as a typed
    // error (wire checksum, protocol parse, or socket error) downstream.
    #[cfg(feature = "faults")]
    match poseidon_faults::disrupt(poseidon_faults::FaultSite::SocketRead, &mut body) {
        Some(poseidon_faults::Disruption::Truncated(n)) => body.truncate(n),
        Some(poseidon_faults::Disruption::Stalled(ms)) => {
            std::thread::sleep(Duration::from_millis(ms));
        }
        Some(poseidon_faults::Disruption::Disconnected)
        | Some(poseidon_faults::Disruption::Panicked) => {
            let _ = stream.shutdown(Shutdown::Both);
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected read disconnect",
            ));
        }
        Some(poseidon_faults::Disruption::Corrupted) | None => {}
    }
    Ok(Some(body))
}

#[cfg(not(feature = "faults"))]
fn write_frame(stream: &mut TcpStream, body: &[u8]) -> io::Result<()> {
    stream.write_all(&(body.len() as u32).to_le_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Framed write with the `SocketWrite`/`SocketStall` chaos sites wired
/// in. The disarmed fast path is byte-identical to the plain writer and
/// copies nothing.
#[cfg(feature = "faults")]
fn write_frame(stream: &mut TcpStream, body: &[u8]) -> io::Result<()> {
    use poseidon_faults::{disrupt, Disruption, FaultSite};
    if !poseidon_faults::armed() {
        stream.write_all(&(body.len() as u32).to_le_bytes())?;
        stream.write_all(body)?;
        return stream.flush();
    }
    // Mid-frame stall (the slowloris shape, from the writing side): send
    // the prefix and half the payload, hold the rest for the stall
    // duration. A peer with a read timeout must trip and free itself.
    if let Some(Disruption::Stalled(ms)) = disrupt(FaultSite::SocketStall, &mut []) {
        stream.write_all(&(body.len() as u32).to_le_bytes())?;
        let half = body.len() / 2;
        stream.write_all(&body[..half])?;
        stream.flush()?;
        std::thread::sleep(Duration::from_millis(ms));
        stream.write_all(&body[half..])?;
        return stream.flush();
    }
    let mut owned = body.to_vec();
    match disrupt(FaultSite::SocketWrite, &mut owned) {
        Some(Disruption::Disconnected) | Some(Disruption::Panicked) => {
            let _ = stream.shutdown(Shutdown::Both);
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected write disconnect",
            ));
        }
        Some(Disruption::Truncated(n)) => {
            // Declare the full length but deliver a prefix, then sever:
            // the peer observes a mid-frame EOF.
            stream.write_all(&(owned.len() as u32).to_le_bytes())?;
            stream.write_all(&owned[..n])?;
            let _ = stream.flush();
            let _ = stream.shutdown(Shutdown::Both);
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected write truncation",
            ));
        }
        Some(Disruption::Stalled(ms)) => std::thread::sleep(Duration::from_millis(ms)),
        Some(Disruption::Corrupted) | None => {}
    }
    stream.write_all(&(owned.len() as u32).to_le_bytes())?;
    stream.write_all(&owned)?;
    stream.flush()
}

fn ok_response(id: u64, blob: Option<&[u8]>) -> Vec<u8> {
    let blob = blob.unwrap_or(&[]);
    let mut out = Vec::with_capacity(13 + blob.len());
    out.extend_from_slice(&id.to_le_bytes());
    out.push(0);
    out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
    out.extend_from_slice(blob);
    out
}

fn err_response(id: u64, e: &ServeError) -> Vec<u8> {
    let retry_after_ms: u32 = match e {
        ServeError::Overloaded { retry_after_ms } => {
            (*retry_after_ms).min(u64::from(u32::MAX)) as u32
        }
        _ => 0,
    };
    let msg = e.to_string();
    let msg = &msg.as_bytes()[..msg.len().min(u16::MAX as usize)];
    let mut out = Vec::with_capacity(16 + msg.len());
    out.extend_from_slice(&id.to_le_bytes());
    out.push(1);
    out.push(error_code(e));
    out.extend_from_slice(&retry_after_ms.to_le_bytes());
    out.extend_from_slice(&(msg.len() as u16).to_le_bytes());
    out.extend_from_slice(msg);
    out
}

struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        if self.buf.len() - self.pos < n {
            return Err(ServeError::Protocol(format!(
                "request frame truncated: wanted {n} more bytes"
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn blob(&mut self) -> Result<&'a [u8], ServeError> {
        let len = u32::from_le_bytes(self.take(4)?.try_into().expect("4-byte slice")) as usize;
        self.take(len)
    }

    fn done(&self) -> Result<(), ServeError> {
        if self.pos != self.buf.len() {
            return Err(ServeError::Protocol(format!(
                "{} trailing bytes after request",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Traffic from the connection's reader (and the dispatcher sinks) to
/// its single writer thread.
enum WriterMsg {
    /// Announces an in-flight request *before* it is submitted, carrying
    /// the context its eventual result encodes under. Always enqueued
    /// ahead of the matching `Done`, so the writer never sees an
    /// unknown id.
    Expect { id: u64, ctx: TenantContext },
    /// A dispatcher shard finished the job — out of order by design.
    Done {
        id: u64,
        result: Box<Result<Ciphertext, ServeError>>,
    },
    /// A fully rendered response (registration acks, pre-submit errors).
    Immediate { body: Vec<u8> },
}

fn writer_loop(mut stream: TcpStream, rx: mpsc::Receiver<WriterMsg>, pool: Arc<BufferPool>) {
    let mut pending: HashMap<u64, TenantContext> = HashMap::new();
    while let Ok(msg) = rx.recv() {
        let body = match msg {
            WriterMsg::Expect { id, ctx } => {
                pending.insert(id, ctx);
                continue;
            }
            WriterMsg::Done { id, result } => {
                let Some(ctx) = pending.remove(&id) else {
                    // A stray completion (e.g. a drop-guard reply racing
                    // an already-answered id) is dropped, not fatal: the
                    // client resolved this id already.
                    continue;
                };
                match *result {
                    Ok(ct) => {
                        let frame = poseidon_wire::encode_ciphertext(&ctx, &ct);
                        // The result's residue rows feed future decodes.
                        pool.recycle_ciphertext(ct);
                        ok_response(id, Some(&frame))
                    }
                    Err(e) => err_response(id, &e),
                }
            }
            WriterMsg::Immediate { body } => body,
        };
        if write_frame(&mut stream, &body).is_err() {
            break;
        }
    }
}

/// Whether the connection can keep parsing frames after this request.
enum Flow {
    Continue,
    /// Protocol desync — unrecoverable mid-stream; close after reporting.
    Close,
}

/// Parses and dispatches one request frame. Eval ops are *submitted*
/// (the reply flows through the writer when a dispatcher finishes);
/// registrations are answered immediately.
fn process(
    service: &EvalService,
    pool: &Arc<BufferPool>,
    assembler: &mut KeysetAssembler,
    frame: &[u8],
    tx: &mpsc::Sender<WriterMsg>,
) -> Flow {
    let mut r = FrameReader { buf: frame, pos: 0 };
    let id = match r.take(8) {
        Ok(b) => u64::from_le_bytes(b.try_into().expect("8-byte slice")),
        Err(e) => {
            let _ = tx.send(WriterMsg::Immediate {
                body: err_response(0, &e),
            });
            return Flow::Close;
        }
    };
    match process_body(service, pool, assembler, id, &mut r, tx) {
        Ok(()) => Flow::Continue,
        Err(e) => {
            let desync = matches!(e, ServeError::Protocol(_));
            let _ = tx.send(WriterMsg::Immediate {
                body: err_response(id, &e),
            });
            if desync {
                Flow::Close
            } else {
                Flow::Continue
            }
        }
    }
}

fn process_body(
    service: &EvalService,
    pool: &Arc<BufferPool>,
    assembler: &mut KeysetAssembler,
    id: u64,
    r: &mut FrameReader<'_>,
    tx: &mpsc::Sender<WriterMsg>,
) -> Result<(), ServeError> {
    let code = r.take(1)?[0];
    let flags = r.take(1)?[0];
    let ttl_ms = u32::from_le_bytes(r.take(4)?.try_into().expect("4-byte slice"));
    // The deadline is anchored at parse time: queueing and execution all
    // happen inside the client's budget from here on.
    let deadline = (ttl_ms > 0).then(|| Instant::now() + Duration::from_millis(u64::from(ttl_ms)));
    let replay = flags & FLAG_REPLAY != 0;
    let tenant_len = u16::from_le_bytes(r.take(2)?.try_into().expect("2-byte slice")) as usize;
    let tenant = std::str::from_utf8(r.take(tenant_len)?)
        .map_err(|_| ServeError::Protocol("tenant id is not utf-8".into()))?
        .to_string();

    // Provisioning ops are answered inline from the reader thread.
    match code {
        10 => {
            let keyset = r.blob()?;
            r.done()?;
            service.register_tenant_frame(&tenant, keyset)?;
            let _ = tx.send(WriterMsg::Immediate {
                body: ok_response(id, None),
            });
            return Ok(());
        }
        11 => {
            let chunk = r.blob()?;
            r.done()?;
            if let Some(keyset) = assembler.accept(chunk)? {
                service.register_tenant_frame(&tenant, &keyset)?;
            }
            let _ = tx.send(WriterMsg::Immediate {
                body: ok_response(id, None),
            });
            return Ok(());
        }
        _ => {}
    }

    let steps = if code == 6 {
        Some(i64::from_le_bytes(
            r.take(8)?.try_into().expect("8-byte slice"),
        ))
    } else {
        None
    };

    let ctx = service
        .tenant_context(&tenant)
        .ok_or_else(|| ServeError::UnknownTenant(tenant.clone()))?;

    // Program submission carries its `.pos` text as the *first* blob —
    // handled before the generic leading-ciphertext decode below.
    if code == 12 {
        let text = std::str::from_utf8(r.blob()?)
            .map_err(|_| ServeError::Protocol("program text is not utf-8".into()))?
            .to_string();
        let a = poseidon_wire::decode_ciphertext_pooled(&ctx, r.blob()?, pool)?;
        r.done()?;
        let _ = tx.send(WriterMsg::Expect { id, ctx });
        let done_tx = tx.clone();
        let submit = service.submit_tagged_opts(
            &tenant,
            Request::Program { text, a },
            id,
            deadline,
            replay,
            move |id, result| {
                let _ = done_tx.send(WriterMsg::Done {
                    id,
                    result: Box::new(result),
                });
            },
        );
        if let Err(e) = submit {
            let _ = tx.send(WriterMsg::Done {
                id,
                result: Box::new(Err(e)),
            });
        }
        return Ok(());
    }

    let a = poseidon_wire::decode_ciphertext_pooled(&ctx, r.blob()?, pool)?;
    let request = match code {
        1 => Request::Add {
            a,
            b: poseidon_wire::decode_ciphertext_pooled(&ctx, r.blob()?, pool)?,
        },
        2 => Request::Sub {
            a,
            b: poseidon_wire::decode_ciphertext_pooled(&ctx, r.blob()?, pool)?,
        },
        3 => Request::Mul {
            a,
            b: poseidon_wire::decode_ciphertext_pooled(&ctx, r.blob()?, pool)?,
        },
        4 => Request::Square { a },
        5 => Request::Rescale { a },
        6 => Request::Rotate {
            a,
            steps: steps.expect("steps parsed for Rotate"),
        },
        7 => Request::Conjugate { a },
        8 => Request::AddPlain {
            a,
            pt: poseidon_wire::decode_plaintext_pooled(&ctx, r.blob()?, pool)?,
        },
        9 => Request::MulPlain {
            a,
            pt: poseidon_wire::decode_plaintext_pooled(&ctx, r.blob()?, pool)?,
        },
        other => return Err(ServeError::Protocol(format!("unknown opcode {other}"))),
    };
    r.done()?;

    // Expect strictly precedes Done on the writer channel: the sink can
    // only fire after submit enqueues the job (or, on a replay-cache
    // hit, inline below) — both after this send.
    let _ = tx.send(WriterMsg::Expect { id, ctx });
    let done_tx = tx.clone();
    if let Err(e) =
        service.submit_tagged_opts(&tenant, request, id, deadline, replay, move |id, result| {
            let _ = done_tx.send(WriterMsg::Done {
                id,
                result: Box::new(result),
            });
        })
    {
        // The job never entered a queue; answer through the same path
        // so the writer clears its Expect entry.
        let _ = tx.send(WriterMsg::Done {
            id,
            result: Box::new(Err(e)),
        });
    }
    Ok(())
}

fn handle_connection(
    service: Arc<EvalService>,
    mut stream: TcpStream,
    pool: Arc<BufferPool>,
    socket: SocketConfig,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let _ = socket.apply_read(&stream);
    let _ = socket.apply_write(&write_half);
    let (tx, rx) = mpsc::channel();
    let writer_pool = Arc::clone(&pool);
    let Ok(writer) = std::thread::Builder::new()
        .name("poseidon-serve-write".into())
        .spawn(move || writer_loop(write_half, rx, writer_pool))
    else {
        return;
    };
    let mut assembler = KeysetAssembler::new();
    while let Ok(Some(frame)) = read_frame(&mut stream) {
        match process(&service, &pool, &mut assembler, &frame, &tx) {
            Flow::Continue => {}
            Flow::Close => break,
        }
    }
    // Dropping our sender lets the writer drain in-flight replies and
    // exit once every dispatcher sink has fired.
    drop(tx);
    let _ = writer.join();
}

/// [`listen`] with explicit socket timeouts — the short-timeout knob
/// the slowloris tests turn.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn listen_with(
    service: Arc<EvalService>,
    addr: impl ToSocketAddrs,
    socket: SocketConfig,
) -> io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let pool = Arc::new(BufferPool::new(POOL_ROWS));
    let handle = std::thread::Builder::new()
        .name("poseidon-serve-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { break };
                let service = Arc::clone(&service);
                let pool = Arc::clone(&pool);
                let _ = std::thread::Builder::new()
                    .name("poseidon-serve-conn".into())
                    .spawn(move || handle_connection(service, stream, pool, socket));
            }
        })?;
    Ok((local, handle))
}

/// Binds `addr` and serves connections on background threads; returns
/// the bound address (use port 0 for an ephemeral port) and the acceptor
/// handle. The acceptor runs until the process exits or the listener
/// errors; per-connection threads are detached. All connections share
/// one decode [`BufferPool`] and the default [`SocketConfig`] timeouts.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn listen(
    service: Arc<EvalService>,
    addr: impl ToSocketAddrs,
) -> io::Result<(SocketAddr, JoinHandle<()>)> {
    listen_with(service, addr, SocketConfig::default())
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

type ReplyTx = mpsc::Sender<Result<Option<Vec<u8>>, ServeError>>;

struct PendingMap {
    replies: HashMap<u64, ReplyTx>,
    /// Set when the reader thread stops; new submissions fail fast.
    dead: Option<String>,
}

struct ClientShared {
    writer: Mutex<TcpStream>,
    pending: Mutex<PendingMap>,
    next_id: AtomicU64,
}

/// Per-request knobs for [`Client::submit_opts`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOptions {
    /// Explicit request id. `None` draws from the client's counter; a
    /// caller supplying ids (the replay path) owns their uniqueness.
    pub id: Option<u64>,
    /// Deadline budget shipped to the server (0 = none): enforced at
    /// admission, dequeue, and pre-execution over there.
    pub ttl_ms: u32,
    /// Request idempotent replay: the server caches this id's executed
    /// outcome, and a resubmission returns the cached reply.
    pub replay: bool,
}

/// One submitted request on a [`Client`]; [`wait`](PendingReply::wait)
/// blocks for the server's reply. Dropping it abandons the reply.
#[derive(Debug)]
pub struct PendingReply {
    rx: mpsc::Receiver<Result<Option<Vec<u8>>, ServeError>>,
    id: u64,
}

impl PendingReply {
    /// The request id this reply is keyed on.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the server answers this request.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], or [`ServeError::Io`] if the
    /// connection died first.
    pub fn wait(self) -> Result<Option<Vec<u8>>, ServeError> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(ServeError::Io("connection closed".into())))
    }

    /// Blocks for at most `timeout`; `None` means no reply yet (the
    /// pending reply stays valid and can be waited again).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Option<Vec<u8>>, ServeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Some(Err(ServeError::Io("connection closed".into())))
            }
        }
    }
}

/// Multiplexing client for the protocol above. All payloads are
/// `poseidon-wire` frames; encoding/decoding stays on the caller's side
/// (the client never needs key material). Shareable across threads
/// (`&self` methods): requests interleave on one connection and replies
/// are matched by id, so many calls can be in flight at once — that
/// pipelining is what keeps the server's shard queues full enough to
/// coalesce.
pub struct Client {
    shared: Arc<ClientShared>,
    read_half: TcpStream,
    reader: Option<JoinHandle<()>>,
}

impl Client {
    /// Connects to a serving endpoint and starts the reply-demux reader,
    /// with the default [`SocketConfig`] timeouts.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with(addr, SocketConfig::default())
    }

    /// [`connect`](Self::connect) with explicit socket timeouts.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect_with(addr: impl ToSocketAddrs, socket: SocketConfig) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let read_half = stream.try_clone()?;
        socket.apply_write(&stream)?;
        socket.apply_read(&read_half)?;
        let shared = Arc::new(ClientShared {
            writer: Mutex::new(stream),
            pending: Mutex::new(PendingMap {
                replies: HashMap::new(),
                dead: None,
            }),
            next_id: AtomicU64::new(1),
        });
        let reader_shared = Arc::clone(&shared);
        let mut reader_stream = read_half.try_clone()?;
        let reader = std::thread::Builder::new()
            .name("poseidon-client-read".into())
            .spawn(move || reader_loop(&mut reader_stream, &reader_shared))?;
        Ok(Self {
            shared,
            read_half,
            reader: Some(reader),
        })
    }

    /// Sends one request without waiting — the pipelining primitive.
    /// Replies arrive whenever the server finishes; collect them through
    /// the returned [`PendingReply`] in any order.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the connection is closed or the send fails.
    pub fn submit(&self, tenant: &str, op: Op<'_>) -> Result<PendingReply, ServeError> {
        self.submit_opts(tenant, op, SubmitOptions::default())
    }

    /// [`submit`](Self::submit) with per-request options: explicit id,
    /// deadline budget, and the idempotent-replay flag — the primitives
    /// [`ResilientClient`] builds safe resubmission from.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the connection is closed or the send fails.
    pub fn submit_opts(
        &self,
        tenant: &str,
        op: Op<'_>,
        opts: SubmitOptions,
    ) -> Result<PendingReply, ServeError> {
        let id = opts
            .id
            .unwrap_or_else(|| self.shared.next_id.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = mpsc::channel();
        {
            let mut pending = self.shared.pending.lock().expect("pending map poisoned");
            if let Some(reason) = &pending.dead {
                return Err(ServeError::Io(reason.clone()));
            }
            pending.replies.insert(id, tx);
        }

        let mut body = Vec::new();
        body.extend_from_slice(&id.to_le_bytes());
        body.push(op.code());
        body.push(if opts.replay { FLAG_REPLAY } else { 0 });
        body.extend_from_slice(&opts.ttl_ms.to_le_bytes());
        let tenant_bytes = tenant.as_bytes();
        let tenant_bytes = &tenant_bytes[..tenant_bytes.len().min(u16::MAX as usize)];
        body.extend_from_slice(&(tenant_bytes.len() as u16).to_le_bytes());
        body.extend_from_slice(tenant_bytes);
        if let Some(s) = op.steps() {
            body.extend_from_slice(&s.to_le_bytes());
        }
        for blob in op.blobs() {
            body.extend_from_slice(&(blob.len() as u32).to_le_bytes());
            body.extend_from_slice(blob);
        }

        let write_result = {
            let mut stream = self.shared.writer.lock().expect("writer poisoned");
            write_frame(&mut stream, &body)
        };
        if let Err(e) = write_result {
            self.shared
                .pending
                .lock()
                .expect("pending map poisoned")
                .replies
                .remove(&id);
            return Err(ServeError::Io(e.to_string()));
        }
        Ok(PendingReply { rx, id })
    }

    /// Submit + wait: one request, blocking for its reply. The generic
    /// surface every named convenience method wraps.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], or a local [`ServeError::Io`].
    pub fn request(&self, tenant: &str, op: Op<'_>) -> Result<Option<Vec<u8>>, ServeError> {
        self.submit(tenant, op)?.wait()
    }

    fn expect_blob(result: Result<Option<Vec<u8>>, ServeError>) -> Result<Vec<u8>, ServeError> {
        result?.ok_or_else(|| ServeError::Protocol("expected a ciphertext in response".into()))
    }

    /// Registers a tenant from a key-set frame.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn register_tenant(&self, tenant: &str, keyset_frame: &[u8]) -> Result<(), ServeError> {
        self.request(
            tenant,
            Op::RegisterTenant {
                keyset: keyset_frame,
            },
        )
        .map(|_| ())
    }

    /// Registers a tenant by streaming its key-set frame in
    /// [`poseidon_wire::KEYSET_CHUNK_BYTES`] chunks — all chunks are
    /// pipelined before the acks are collected, so provisioning takes
    /// one round trip regardless of key-set size.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`] for whichever chunk failed.
    pub fn register_tenant_chunked(
        &self,
        tenant: &str,
        keyset_frame: &[u8],
    ) -> Result<(), ServeError> {
        let chunks = poseidon_wire::chunk_keyset(keyset_frame, poseidon_wire::KEYSET_CHUNK_BYTES);
        let mut acks = Vec::with_capacity(chunks.len());
        for chunk in &chunks {
            acks.push(self.submit(tenant, Op::RegisterTenantChunk { chunk })?);
        }
        for ack in acks {
            ack.wait()?;
        }
        Ok(())
    }

    /// Homomorphic addition of two ciphertext frames.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn add(&self, tenant: &str, a: &[u8], b: &[u8]) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.request(tenant, Op::Add { a, b }))
    }

    /// Homomorphic subtraction.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn sub(&self, tenant: &str, a: &[u8], b: &[u8]) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.request(tenant, Op::Sub { a, b }))
    }

    /// Relinearised multiplication.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn mul(&self, tenant: &str, a: &[u8], b: &[u8]) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.request(tenant, Op::Mul { a, b }))
    }

    /// Relinearised squaring.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn square(&self, tenant: &str, a: &[u8]) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.request(tenant, Op::Square { a }))
    }

    /// Rescale by the top chain prime.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn rescale(&self, tenant: &str, a: &[u8]) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.request(tenant, Op::Rescale { a }))
    }

    /// Slot rotation by `steps`.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn rotate(&self, tenant: &str, a: &[u8], steps: i64) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.request(tenant, Op::Rotate { a, steps }))
    }

    /// Slot-wise conjugation.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn conjugate(&self, tenant: &str, a: &[u8]) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.request(tenant, Op::Conjugate { a }))
    }

    /// Ciphertext + plaintext addition.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn add_plain(&self, tenant: &str, a: &[u8], pt: &[u8]) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.request(tenant, Op::AddPlain { a, pt }))
    }

    /// Ciphertext × plaintext multiplication.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn mul_plain(&self, tenant: &str, a: &[u8], pt: &[u8]) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.request(tenant, Op::MulPlain { a, pt }))
    }

    /// Submits a whole `.pos` program with `a` seeding every program
    /// input; the reply is the program's final output ciphertext.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message — a parse
    /// or planning failure comes back as an eval error (code 3) without
    /// executing any operation.
    pub fn program(&self, tenant: &str, program: &str, a: &[u8]) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.request(
            tenant,
            Op::Program {
                program: program.as_bytes(),
                a,
            },
        ))
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        // Fail outstanding requests with a typed error *before* tearing
        // the socket down: a waiter never observes a silent hang, even
        // if the reader thread is itself wedged on a half-closed socket.
        {
            let mut pending = self.shared.pending.lock().expect("pending map poisoned");
            if pending.dead.is_none() {
                pending.dead = Some("client dropped".into());
            }
            for (_, tx) in pending.replies.drain() {
                let _ = tx.send(Err(ServeError::Io("client dropped".into())));
            }
        }
        let _ = self.read_half.shutdown(Shutdown::Both);
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

/// Demultiplexes server replies into the pending map until the
/// connection closes, then fails every outstanding request.
fn reader_loop(stream: &mut TcpStream, shared: &ClientShared) {
    let reason = loop {
        let frame = match read_frame(stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => break "server closed the connection".to_string(),
            Err(e) => break e.to_string(),
        };
        if frame.len() < 9 {
            break format!("short response frame of {} bytes", frame.len());
        }
        let id = u64::from_le_bytes(frame[..8].try_into().expect("8-byte slice"));
        let result = parse_reply(&frame[8..]);
        let tx = shared
            .pending
            .lock()
            .expect("pending map poisoned")
            .replies
            .remove(&id);
        // An unknown id (abandoned PendingReply) is dropped silently.
        if let Some(tx) = tx {
            let _ = tx.send(result);
        }
    };
    let mut pending = shared.pending.lock().expect("pending map poisoned");
    if pending.dead.is_none() {
        pending.dead = Some(reason.clone());
    }
    for (_, tx) in pending.replies.drain() {
        let _ = tx.send(Err(ServeError::Io(reason.clone())));
    }
}

fn parse_reply(body: &[u8]) -> Result<Option<Vec<u8>>, ServeError> {
    let mut r = FrameReader { buf: body, pos: 0 };
    match r.take(1)?[0] {
        0 => {
            let blob = r.blob()?;
            r.done()?;
            Ok(if blob.is_empty() {
                None
            } else {
                Some(blob.to_vec())
            })
        }
        1 => {
            let code = r.take(1)?[0];
            let retry_after_ms = u64::from(u32::from_le_bytes(
                r.take(4)?.try_into().expect("4-byte slice"),
            ));
            let len = u16::from_le_bytes(r.take(2)?.try_into().expect("2-byte slice")) as usize;
            let message = String::from_utf8_lossy(r.take(len)?).into_owned();
            r.done()?;
            Err(match code {
                8 => ServeError::Overloaded { retry_after_ms },
                9 => ServeError::DeadlineExceeded,
                code => ServeError::Remote { code, message },
            })
        }
        s => Err(ServeError::Protocol(format!("unknown response status {s}"))),
    }
}

// ---------------------------------------------------------------------------
// Resilient client
// ---------------------------------------------------------------------------

/// Retry/backoff/timeout policy for [`ResilientClient`]. Backoff is
/// capped exponential with deterministic seeded jitter — two clients
/// built from the same seed retry on identical schedules, which is what
/// lets the chaos campaign assert its outcomes bit-for-bit.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total tries per request (first attempt included). At least 1.
    pub max_attempts: u32,
    /// Backoff before retry k is `min(base << (k-1), max) + jitter`.
    pub base_backoff_ms: u64,
    /// Backoff ceiling (pre-jitter).
    pub max_backoff_ms: u64,
    /// Per-attempt reply timeout; an attempt that exceeds it abandons
    /// the connection and retries. `0` waits forever.
    pub request_timeout_ms: u64,
    /// Deadline budget attached to every attempt (protocol `ttl_ms`;
    /// 0 = none).
    pub ttl_ms: u32,
    /// Seed for the backoff-jitter stream: two clients built from the
    /// same seed retry on identical schedules. The seed does *not*
    /// determine the replay request-id range — ids additionally mix
    /// per-instance OS entropy, because the server's replay cache is
    /// keyed `(tenant, id)` and two clients drawing the same ids for
    /// one tenant would silently receive each other's cached replies.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff_ms: 10,
            max_backoff_ms: 500,
            request_timeout_ms: 5_000,
            ttl_ms: 0,
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// SplitMix64 — the same deterministic stream the fault injector uses.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-instance entropy for the replay request-id range: a process-wide
/// instance counter hashed through an OS-randomly-keyed SipHash
/// ([`RandomState`] draws its keys from the OS at first use), with the
/// process id folded in. Two `ResilientClient`s — in one process, in
/// two processes, or across a restart — therefore draw from disjoint id
/// ranges even under the identical default [`RetryPolicy`], which is
/// what keeps the server's `(tenant, id)`-keyed replay cache from
/// handing one client another client's cached reply.
///
/// [`RandomState`]: std::collections::hash_map::RandomState
fn instance_entropy() -> u64 {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    use std::sync::OnceLock;
    static INSTANCE: AtomicU64 = AtomicU64::new(0);
    static KEYS: OnceLock<RandomState> = OnceLock::new();
    let mut h = KEYS.get_or_init(RandomState::new).build_hasher();
    h.write_u64(INSTANCE.fetch_add(1, Ordering::Relaxed));
    h.write_u32(std::process::id());
    h.finish()
}

/// A self-healing wrapper over [`Client`]: per-request timeout, capped
/// exponential backoff with seeded jitter, automatic reconnection, and
/// replay-flagged resubmission. Every request ships the replay flag, so
/// a retry of a request the server already executed returns the cached
/// reply — the observable effect is exactly-once even when the
/// connection dies mid-flight.
///
/// Retryable failures: local socket errors, per-attempt timeouts,
/// [`ServeError::Overloaded`] (honouring its retry-after hint), and the
/// remote queue-full/internal codes. Everything else (unknown tenant,
/// eval errors, protocol desync, deadline exhaustion) returns
/// immediately.
pub struct ResilientClient {
    addr: SocketAddr,
    socket: SocketConfig,
    policy: RetryPolicy,
    conn: Mutex<Option<Client>>,
    jitter: Mutex<u64>,
    next_id: AtomicU64,
    connects: AtomicU64,
    retries: AtomicU64,
}

impl ResilientClient {
    /// Resolves `addr` once and connects eagerly (the address is kept
    /// for reconnects).
    ///
    /// # Errors
    ///
    /// Address resolution or initial connect failure.
    pub fn connect(
        addr: impl ToSocketAddrs,
        socket: SocketConfig,
        policy: RetryPolicy,
    ) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved empty"))?;
        let client = Self {
            addr,
            socket,
            policy: RetryPolicy {
                max_attempts: policy.max_attempts.max(1),
                ..policy
            },
            conn: Mutex::new(None),
            jitter: Mutex::new(splitmix64(policy.jitter_seed)),
            // Replay ids must not collide across reconnects (a fresh
            // Client counts from 1; the top bit separates the ranges)
            // nor across client instances (the server's replay cache
            // is keyed (tenant, id), so a shared range would alias two
            // clients' cached replies) — mix per-instance entropy into
            // the seeded base.
            next_id: AtomicU64::new(
                splitmix64(policy.jitter_seed ^ instance_entropy()) | (1 << 63),
            ),
            connects: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// Connections established so far (1 = never reconnected).
    pub fn connects(&self) -> u64 {
        self.connects.load(Ordering::Relaxed)
    }

    /// Resubmissions performed so far across all requests.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    fn ensure_connected(&self) -> io::Result<()> {
        let mut conn = self.conn.lock().expect("connection poisoned");
        if conn.is_none() {
            *conn = Some(Client::connect_with(self.addr, self.socket)?);
            self.connects.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn drop_conn(&self) {
        *self.conn.lock().expect("connection poisoned") = None;
    }

    fn next_jitter(&self) -> u64 {
        let mut state = self.jitter.lock().expect("jitter poisoned");
        *state = splitmix64(*state);
        *state
    }

    fn backoff_ms(&self, attempt: u32, hint_ms: Option<u64>) -> u64 {
        let exp = self
            .policy
            .base_backoff_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.policy.max_backoff_ms);
        let base = hint_ms.map_or(exp, |h| h.max(exp).min(self.policy.max_backoff_ms.max(h)));
        let jitter_span = self.policy.base_backoff_ms.max(1);
        base + self.next_jitter() % jitter_span
    }

    fn attempt(&self, tenant: &str, op: Op<'_>, id: u64) -> Result<Option<Vec<u8>>, ServeError> {
        self.ensure_connected()
            .map_err(|e| ServeError::Io(e.to_string()))?;
        let pending = {
            let conn = self.conn.lock().expect("connection poisoned");
            let client = conn.as_ref().expect("connection established above");
            match client.submit_opts(
                tenant,
                op,
                SubmitOptions {
                    id: Some(id),
                    ttl_ms: self.policy.ttl_ms,
                    replay: true,
                },
            ) {
                Ok(pending) => pending,
                Err(e) => {
                    drop(conn);
                    self.drop_conn();
                    return Err(e);
                }
            }
        };
        if self.policy.request_timeout_ms == 0 {
            return pending.wait();
        }
        match pending.wait_timeout(Duration::from_millis(self.policy.request_timeout_ms)) {
            Some(Ok(reply)) => Ok(reply),
            Some(Err(e)) => {
                if matches!(e, ServeError::Io(_)) {
                    self.drop_conn();
                }
                Err(e)
            }
            None => {
                // The attempt outlived its budget: the connection is
                // suspect (stalled server, lost reply). Abandon it; the
                // replay flag makes resubmission safe.
                self.drop_conn();
                Err(ServeError::Io(format!(
                    "request {id} timed out after {} ms",
                    self.policy.request_timeout_ms
                )))
            }
        }
    }

    /// One request with the full resilience ladder: submit with replay,
    /// bounded wait, reconnect + seeded backoff + resubmit on retryable
    /// failure.
    ///
    /// # Errors
    ///
    /// The last attempt's [`ServeError`] once retries are exhausted, or
    /// the first non-retryable failure.
    pub fn request(&self, tenant: &str, op: Op<'_>) -> Result<Option<Vec<u8>>, ServeError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut attempt = 0u32;
        loop {
            match self.attempt(tenant, op, id) {
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    let hint = match &e {
                        ServeError::Overloaded { retry_after_ms } => Some(*retry_after_ms),
                        _ => None,
                    };
                    let retryable = matches!(
                        e,
                        ServeError::Io(_)
                            | ServeError::Overloaded { .. }
                            | ServeError::QueueFull { .. }
                            | ServeError::Remote { code: 2 | 6, .. }
                    );
                    attempt += 1;
                    if !retryable || attempt >= self.policy.max_attempts {
                        return Err(e);
                    }
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(self.backoff_ms(attempt - 1, hint)));
                }
            }
        }
    }

    /// Registers a tenant from a key-set frame, with the same retry
    /// ladder (registration replaces the tenant, so it is naturally
    /// idempotent).
    ///
    /// # Errors
    ///
    /// See [`request`](Self::request).
    pub fn register_tenant(&self, tenant: &str, keyset_frame: &[u8]) -> Result<(), ServeError> {
        self.request(
            tenant,
            Op::RegisterTenant {
                keyset: keyset_frame,
            },
        )
        .map(|_| ())
    }

    /// Blocking convenience: expects a ciphertext reply.
    ///
    /// # Errors
    ///
    /// See [`request`](Self::request).
    pub fn call(&self, tenant: &str, op: Op<'_>) -> Result<Vec<u8>, ServeError> {
        self.request(tenant, op)?
            .ok_or_else(|| ServeError::Protocol("expected a ciphertext in response".into()))
    }
}
