//! Multiplexed TCP front-end over the wire format, plus a pipelining
//! client.
//!
//! ## Protocol (v2)
//!
//! Both directions speak `u32` little-endian length-prefixed frames
//! (length excludes the prefix itself; bounded by [`MAX_FRAME`]). Every
//! frame body begins with a **request id** chosen by the client; one
//! connection carries many in-flight requests, and the server answers
//! in whatever order its dispatcher shards finish — the client matches
//! replies to requests through a pending map keyed on the id.
//!
//! **Request** frame body:
//!
//! ```text
//! request_id: u64 LE
//! opcode: u8 | tenant_len: u16 LE | tenant: utf-8
//! [steps: i64 LE]                     -- Rotate only
//! blobs: (u32 LE length | bytes)*     -- poseidon-wire frames
//! ```
//!
//! Two-blob ops: `Add`/`Sub`/`Mul` (two ciphertexts), `AddPlain`/
//! `MulPlain` (ciphertext, plaintext). One-blob ops: `Square`,
//! `Rescale`, `Rotate`, `Conjugate` (ciphertext), `RegisterTenant`
//! (key-set frame, normally [`poseidon_wire::encode_keyset_public`]),
//! and `RegisterTenantChunk` (one [`poseidon_wire::chunk_keyset`] slice;
//! chunks stream in order on one connection and the final chunk's reply
//! acknowledges the registration).
//!
//! **Response** frame body: `request_id: u64 LE` (echoed) followed by
//! status `u8` — `0` = ok then one optional blob (`u32` LE length,
//! possibly zero, then a ciphertext frame), `1` = error then
//! `code: u8 | msg_len: u16 LE | msg`.
//!
//! Ciphertext operands are decoded **zero-copy**: the server validates
//! each frame once through [`poseidon_wire::CiphertextView`] and fills
//! residue rows from a shared [`poseidon_wire::BufferPool`]; encoded
//! result ciphertexts recycle their rows back into the pool, so the
//! steady-state request path allocates nothing for polynomial data.
//!
//! A protocol-level parse failure answers with an error frame and drops
//! the connection; a wire/eval failure answers with an error frame and
//! keeps serving. Malformed input never panics the server.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use he_ckks::cipher::Ciphertext;
use poseidon_wire::{BufferPool, KeysetAssembler};

use crate::{EvalService, Request, ServeError, TenantContext};

/// Upper bound on one protocol frame (64 MiB — comfortably above any
/// supported key-set frame).
pub const MAX_FRAME: usize = 64 << 20;

/// Residue rows retained by a listener's decode pool. At paper-scale
/// parameters a row is ~32 KiB, so the cap bounds pool memory at a few
/// MiB while covering many in-flight requests.
const POOL_ROWS: usize = 256;

/// One serving operation, borrowing its operand frames. The generic
/// surface behind [`Client::request`]; the named convenience methods
/// (`add`, `mul`, …) are thin wrappers over these variants.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub enum Op<'a> {
    /// Homomorphic addition of two ciphertext frames.
    Add {
        /// Left operand frame.
        a: &'a [u8],
        /// Right operand frame.
        b: &'a [u8],
    },
    /// Homomorphic subtraction.
    Sub {
        /// Left operand frame.
        a: &'a [u8],
        /// Right operand frame.
        b: &'a [u8],
    },
    /// Relinearised multiplication.
    Mul {
        /// Left operand frame.
        a: &'a [u8],
        /// Right operand frame.
        b: &'a [u8],
    },
    /// Relinearised squaring.
    Square {
        /// Operand frame.
        a: &'a [u8],
    },
    /// Rescale by the top chain prime.
    Rescale {
        /// Operand frame.
        a: &'a [u8],
    },
    /// Slot rotation — the request kind the scheduler coalesces.
    Rotate {
        /// Operand frame.
        a: &'a [u8],
        /// Left-rotation step count.
        steps: i64,
    },
    /// Slot-wise complex conjugation.
    Conjugate {
        /// Operand frame.
        a: &'a [u8],
    },
    /// Ciphertext + plaintext addition.
    AddPlain {
        /// Ciphertext operand frame.
        a: &'a [u8],
        /// Plaintext operand frame.
        pt: &'a [u8],
    },
    /// Ciphertext × plaintext multiplication.
    MulPlain {
        /// Ciphertext operand frame.
        a: &'a [u8],
        /// Plaintext operand frame.
        pt: &'a [u8],
    },
    /// Tenant provisioning from one whole key-set frame.
    RegisterTenant {
        /// The key-set frame.
        keyset: &'a [u8],
    },
    /// Tenant provisioning, one chunk of a streamed key-set.
    RegisterTenantChunk {
        /// One [`poseidon_wire::chunk_keyset`] chunk frame.
        chunk: &'a [u8],
    },
}

impl Op<'_> {
    fn code(&self) -> u8 {
        match self {
            Op::Add { .. } => 1,
            Op::Sub { .. } => 2,
            Op::Mul { .. } => 3,
            Op::Square { .. } => 4,
            Op::Rescale { .. } => 5,
            Op::Rotate { .. } => 6,
            Op::Conjugate { .. } => 7,
            Op::AddPlain { .. } => 8,
            Op::MulPlain { .. } => 9,
            Op::RegisterTenant { .. } => 10,
            Op::RegisterTenantChunk { .. } => 11,
        }
    }

    fn steps(&self) -> Option<i64> {
        match self {
            Op::Rotate { steps, .. } => Some(*steps),
            _ => None,
        }
    }

    fn blobs(&self) -> Vec<&[u8]> {
        match self {
            Op::Add { a, b } | Op::Sub { a, b } | Op::Mul { a, b } => vec![a, b],
            Op::Square { a } | Op::Rescale { a } | Op::Rotate { a, .. } | Op::Conjugate { a } => {
                vec![a]
            }
            Op::AddPlain { a, pt } | Op::MulPlain { a, pt } => vec![a, pt],
            Op::RegisterTenant { keyset } => vec![keyset],
            Op::RegisterTenantChunk { chunk } => vec![chunk],
        }
    }
}

fn error_code(e: &ServeError) -> u8 {
    match e {
        ServeError::UnknownTenant(_) => 1,
        ServeError::QueueFull { .. } => 2,
        ServeError::Eval(_) => 3,
        ServeError::Wire(_) => 4,
        ServeError::ShuttingDown => 5,
        ServeError::Internal(_) => 6,
        _ => 7,
    }
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF before a
/// prefix.
fn read_frame(stream: &mut TcpStream) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    match stream.read_exact(&mut prefix) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(Some(body))
}

fn write_frame(stream: &mut TcpStream, body: &[u8]) -> io::Result<()> {
    stream.write_all(&(body.len() as u32).to_le_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

fn ok_response(id: u64, blob: Option<&[u8]>) -> Vec<u8> {
    let blob = blob.unwrap_or(&[]);
    let mut out = Vec::with_capacity(13 + blob.len());
    out.extend_from_slice(&id.to_le_bytes());
    out.push(0);
    out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
    out.extend_from_slice(blob);
    out
}

fn err_response(id: u64, e: &ServeError) -> Vec<u8> {
    let msg = e.to_string();
    let msg = &msg.as_bytes()[..msg.len().min(u16::MAX as usize)];
    let mut out = Vec::with_capacity(12 + msg.len());
    out.extend_from_slice(&id.to_le_bytes());
    out.push(1);
    out.push(error_code(e));
    out.extend_from_slice(&(msg.len() as u16).to_le_bytes());
    out.extend_from_slice(msg);
    out
}

struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        if self.buf.len() - self.pos < n {
            return Err(ServeError::Protocol(format!(
                "request frame truncated: wanted {n} more bytes"
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn blob(&mut self) -> Result<&'a [u8], ServeError> {
        let len = u32::from_le_bytes(self.take(4)?.try_into().expect("4-byte slice")) as usize;
        self.take(len)
    }

    fn done(&self) -> Result<(), ServeError> {
        if self.pos != self.buf.len() {
            return Err(ServeError::Protocol(format!(
                "{} trailing bytes after request",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Traffic from the connection's reader (and the dispatcher sinks) to
/// its single writer thread.
enum WriterMsg {
    /// Announces an in-flight request *before* it is submitted, carrying
    /// the context its eventual result encodes under. Always enqueued
    /// ahead of the matching `Done`, so the writer never sees an
    /// unknown id.
    Expect { id: u64, ctx: TenantContext },
    /// A dispatcher shard finished the job — out of order by design.
    Done {
        id: u64,
        result: Box<Result<Ciphertext, ServeError>>,
    },
    /// A fully rendered response (registration acks, pre-submit errors).
    Immediate { body: Vec<u8> },
}

fn writer_loop(mut stream: TcpStream, rx: mpsc::Receiver<WriterMsg>, pool: Arc<BufferPool>) {
    let mut pending: HashMap<u64, TenantContext> = HashMap::new();
    while let Ok(msg) = rx.recv() {
        let body = match msg {
            WriterMsg::Expect { id, ctx } => {
                pending.insert(id, ctx);
                continue;
            }
            WriterMsg::Done { id, result } => {
                let Some(ctx) = pending.remove(&id) else {
                    // Protocol invariant broken server-side; drop the
                    // connection rather than answer nonsense.
                    break;
                };
                match *result {
                    Ok(ct) => {
                        let frame = poseidon_wire::encode_ciphertext(&ctx, &ct);
                        // The result's residue rows feed future decodes.
                        pool.recycle_ciphertext(ct);
                        ok_response(id, Some(&frame))
                    }
                    Err(e) => err_response(id, &e),
                }
            }
            WriterMsg::Immediate { body } => body,
        };
        if write_frame(&mut stream, &body).is_err() {
            break;
        }
    }
}

/// Whether the connection can keep parsing frames after this request.
enum Flow {
    Continue,
    /// Protocol desync — unrecoverable mid-stream; close after reporting.
    Close,
}

/// Parses and dispatches one request frame. Eval ops are *submitted*
/// (the reply flows through the writer when a dispatcher finishes);
/// registrations are answered immediately.
fn process(
    service: &EvalService,
    pool: &Arc<BufferPool>,
    assembler: &mut KeysetAssembler,
    frame: &[u8],
    tx: &mpsc::Sender<WriterMsg>,
) -> Flow {
    let mut r = FrameReader { buf: frame, pos: 0 };
    let id = match r.take(8) {
        Ok(b) => u64::from_le_bytes(b.try_into().expect("8-byte slice")),
        Err(e) => {
            let _ = tx.send(WriterMsg::Immediate {
                body: err_response(0, &e),
            });
            return Flow::Close;
        }
    };
    match process_body(service, pool, assembler, id, &mut r, tx) {
        Ok(()) => Flow::Continue,
        Err(e) => {
            let desync = matches!(e, ServeError::Protocol(_));
            let _ = tx.send(WriterMsg::Immediate {
                body: err_response(id, &e),
            });
            if desync {
                Flow::Close
            } else {
                Flow::Continue
            }
        }
    }
}

fn process_body(
    service: &EvalService,
    pool: &Arc<BufferPool>,
    assembler: &mut KeysetAssembler,
    id: u64,
    r: &mut FrameReader<'_>,
    tx: &mpsc::Sender<WriterMsg>,
) -> Result<(), ServeError> {
    let code = r.take(1)?[0];
    let tenant_len = u16::from_le_bytes(r.take(2)?.try_into().expect("2-byte slice")) as usize;
    let tenant = std::str::from_utf8(r.take(tenant_len)?)
        .map_err(|_| ServeError::Protocol("tenant id is not utf-8".into()))?
        .to_string();

    // Provisioning ops are answered inline from the reader thread.
    match code {
        10 => {
            let keyset = r.blob()?;
            r.done()?;
            service.register_tenant_frame(&tenant, keyset)?;
            let _ = tx.send(WriterMsg::Immediate {
                body: ok_response(id, None),
            });
            return Ok(());
        }
        11 => {
            let chunk = r.blob()?;
            r.done()?;
            if let Some(keyset) = assembler.accept(chunk)? {
                service.register_tenant_frame(&tenant, &keyset)?;
            }
            let _ = tx.send(WriterMsg::Immediate {
                body: ok_response(id, None),
            });
            return Ok(());
        }
        _ => {}
    }

    let steps = if code == 6 {
        Some(i64::from_le_bytes(
            r.take(8)?.try_into().expect("8-byte slice"),
        ))
    } else {
        None
    };

    let ctx = service
        .tenant_context(&tenant)
        .ok_or_else(|| ServeError::UnknownTenant(tenant.clone()))?;
    let a = poseidon_wire::decode_ciphertext_pooled(&ctx, r.blob()?, pool)?;
    let request = match code {
        1 => Request::Add {
            a,
            b: poseidon_wire::decode_ciphertext_pooled(&ctx, r.blob()?, pool)?,
        },
        2 => Request::Sub {
            a,
            b: poseidon_wire::decode_ciphertext_pooled(&ctx, r.blob()?, pool)?,
        },
        3 => Request::Mul {
            a,
            b: poseidon_wire::decode_ciphertext_pooled(&ctx, r.blob()?, pool)?,
        },
        4 => Request::Square { a },
        5 => Request::Rescale { a },
        6 => Request::Rotate {
            a,
            steps: steps.expect("steps parsed for Rotate"),
        },
        7 => Request::Conjugate { a },
        8 => Request::AddPlain {
            a,
            pt: poseidon_wire::decode_plaintext_pooled(&ctx, r.blob()?, pool)?,
        },
        9 => Request::MulPlain {
            a,
            pt: poseidon_wire::decode_plaintext_pooled(&ctx, r.blob()?, pool)?,
        },
        other => return Err(ServeError::Protocol(format!("unknown opcode {other}"))),
    };
    r.done()?;

    // Expect strictly precedes Done on the writer channel: the sink can
    // only fire after submit_tagged enqueues the job, which happens
    // after this send.
    let _ = tx.send(WriterMsg::Expect { id, ctx });
    let done_tx = tx.clone();
    if let Err(e) = service.submit_tagged(&tenant, request, id, move |id, result| {
        let _ = done_tx.send(WriterMsg::Done {
            id,
            result: Box::new(result),
        });
    }) {
        // The job never entered a queue; answer through the same path
        // so the writer clears its Expect entry.
        let _ = tx.send(WriterMsg::Done {
            id,
            result: Box::new(Err(e)),
        });
    }
    Ok(())
}

fn handle_connection(service: Arc<EvalService>, mut stream: TcpStream, pool: Arc<BufferPool>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel();
    let writer_pool = Arc::clone(&pool);
    let Ok(writer) = std::thread::Builder::new()
        .name("poseidon-serve-write".into())
        .spawn(move || writer_loop(write_half, rx, writer_pool))
    else {
        return;
    };
    let mut assembler = KeysetAssembler::new();
    while let Ok(Some(frame)) = read_frame(&mut stream) {
        match process(&service, &pool, &mut assembler, &frame, &tx) {
            Flow::Continue => {}
            Flow::Close => break,
        }
    }
    // Dropping our sender lets the writer drain in-flight replies and
    // exit once every dispatcher sink has fired.
    drop(tx);
    let _ = writer.join();
}

/// Binds `addr` and serves connections on background threads; returns
/// the bound address (use port 0 for an ephemeral port) and the acceptor
/// handle. The acceptor runs until the process exits or the listener
/// errors; per-connection threads are detached. All connections share
/// one decode [`BufferPool`].
///
/// # Errors
///
/// Propagates the bind failure.
pub fn listen(
    service: Arc<EvalService>,
    addr: impl ToSocketAddrs,
) -> io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let pool = Arc::new(BufferPool::new(POOL_ROWS));
    let handle = std::thread::Builder::new()
        .name("poseidon-serve-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { break };
                let service = Arc::clone(&service);
                let pool = Arc::clone(&pool);
                let _ = std::thread::Builder::new()
                    .name("poseidon-serve-conn".into())
                    .spawn(move || handle_connection(service, stream, pool));
            }
        })?;
    Ok((local, handle))
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

type ReplyTx = mpsc::Sender<Result<Option<Vec<u8>>, ServeError>>;

struct PendingMap {
    replies: HashMap<u64, ReplyTx>,
    /// Set when the reader thread stops; new submissions fail fast.
    dead: Option<String>,
}

struct ClientShared {
    writer: Mutex<TcpStream>,
    pending: Mutex<PendingMap>,
    next_id: AtomicU64,
}

/// One submitted request on a [`Client`]; [`wait`](PendingReply::wait)
/// blocks for the server's reply. Dropping it abandons the reply.
#[derive(Debug)]
pub struct PendingReply {
    rx: mpsc::Receiver<Result<Option<Vec<u8>>, ServeError>>,
    id: u64,
}

impl PendingReply {
    /// The request id this reply is keyed on.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the server answers this request.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError::Remote`], or [`ServeError::Io`] if the
    /// connection died first.
    pub fn wait(self) -> Result<Option<Vec<u8>>, ServeError> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(ServeError::Io("connection closed".into())))
    }
}

/// Multiplexing client for the protocol above. All payloads are
/// `poseidon-wire` frames; encoding/decoding stays on the caller's side
/// (the client never needs key material). Shareable across threads
/// (`&self` methods): requests interleave on one connection and replies
/// are matched by id, so many calls can be in flight at once — that
/// pipelining is what keeps the server's shard queues full enough to
/// coalesce.
pub struct Client {
    shared: Arc<ClientShared>,
    read_half: TcpStream,
    reader: Option<JoinHandle<()>>,
}

impl Client {
    /// Connects to a serving endpoint and starts the reply-demux reader.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let read_half = stream.try_clone()?;
        let shared = Arc::new(ClientShared {
            writer: Mutex::new(stream),
            pending: Mutex::new(PendingMap {
                replies: HashMap::new(),
                dead: None,
            }),
            next_id: AtomicU64::new(1),
        });
        let reader_shared = Arc::clone(&shared);
        let mut reader_stream = read_half.try_clone()?;
        let reader = std::thread::Builder::new()
            .name("poseidon-client-read".into())
            .spawn(move || reader_loop(&mut reader_stream, &reader_shared))?;
        Ok(Self {
            shared,
            read_half,
            reader: Some(reader),
        })
    }

    /// Sends one request without waiting — the pipelining primitive.
    /// Replies arrive whenever the server finishes; collect them through
    /// the returned [`PendingReply`] in any order.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the connection is closed or the send fails.
    pub fn submit(&self, tenant: &str, op: Op<'_>) -> Result<PendingReply, ServeError> {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        {
            let mut pending = self.shared.pending.lock().expect("pending map poisoned");
            if let Some(reason) = &pending.dead {
                return Err(ServeError::Io(reason.clone()));
            }
            pending.replies.insert(id, tx);
        }

        let mut body = Vec::new();
        body.extend_from_slice(&id.to_le_bytes());
        body.push(op.code());
        let tenant_bytes = tenant.as_bytes();
        let tenant_bytes = &tenant_bytes[..tenant_bytes.len().min(u16::MAX as usize)];
        body.extend_from_slice(&(tenant_bytes.len() as u16).to_le_bytes());
        body.extend_from_slice(tenant_bytes);
        if let Some(s) = op.steps() {
            body.extend_from_slice(&s.to_le_bytes());
        }
        for blob in op.blobs() {
            body.extend_from_slice(&(blob.len() as u32).to_le_bytes());
            body.extend_from_slice(blob);
        }

        let write_result = {
            let mut stream = self.shared.writer.lock().expect("writer poisoned");
            write_frame(&mut stream, &body)
        };
        if let Err(e) = write_result {
            self.shared
                .pending
                .lock()
                .expect("pending map poisoned")
                .replies
                .remove(&id);
            return Err(ServeError::Io(e.to_string()));
        }
        Ok(PendingReply { rx, id })
    }

    /// Submit + wait: one request, blocking for its reply. The generic
    /// surface every named convenience method wraps.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], or a local [`ServeError::Io`].
    pub fn request(&self, tenant: &str, op: Op<'_>) -> Result<Option<Vec<u8>>, ServeError> {
        self.submit(tenant, op)?.wait()
    }

    fn expect_blob(result: Result<Option<Vec<u8>>, ServeError>) -> Result<Vec<u8>, ServeError> {
        result?.ok_or_else(|| ServeError::Protocol("expected a ciphertext in response".into()))
    }

    /// Registers a tenant from a key-set frame.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn register_tenant(&self, tenant: &str, keyset_frame: &[u8]) -> Result<(), ServeError> {
        self.request(
            tenant,
            Op::RegisterTenant {
                keyset: keyset_frame,
            },
        )
        .map(|_| ())
    }

    /// Registers a tenant by streaming its key-set frame in
    /// [`poseidon_wire::KEYSET_CHUNK_BYTES`] chunks — all chunks are
    /// pipelined before the acks are collected, so provisioning takes
    /// one round trip regardless of key-set size.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`] for whichever chunk failed.
    pub fn register_tenant_chunked(
        &self,
        tenant: &str,
        keyset_frame: &[u8],
    ) -> Result<(), ServeError> {
        let chunks = poseidon_wire::chunk_keyset(keyset_frame, poseidon_wire::KEYSET_CHUNK_BYTES);
        let mut acks = Vec::with_capacity(chunks.len());
        for chunk in &chunks {
            acks.push(self.submit(tenant, Op::RegisterTenantChunk { chunk })?);
        }
        for ack in acks {
            ack.wait()?;
        }
        Ok(())
    }

    /// Homomorphic addition of two ciphertext frames.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn add(&self, tenant: &str, a: &[u8], b: &[u8]) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.request(tenant, Op::Add { a, b }))
    }

    /// Homomorphic subtraction.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn sub(&self, tenant: &str, a: &[u8], b: &[u8]) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.request(tenant, Op::Sub { a, b }))
    }

    /// Relinearised multiplication.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn mul(&self, tenant: &str, a: &[u8], b: &[u8]) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.request(tenant, Op::Mul { a, b }))
    }

    /// Relinearised squaring.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn square(&self, tenant: &str, a: &[u8]) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.request(tenant, Op::Square { a }))
    }

    /// Rescale by the top chain prime.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn rescale(&self, tenant: &str, a: &[u8]) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.request(tenant, Op::Rescale { a }))
    }

    /// Slot rotation by `steps`.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn rotate(&self, tenant: &str, a: &[u8], steps: i64) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.request(tenant, Op::Rotate { a, steps }))
    }

    /// Slot-wise conjugation.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn conjugate(&self, tenant: &str, a: &[u8]) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.request(tenant, Op::Conjugate { a }))
    }

    /// Ciphertext + plaintext addition.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn add_plain(&self, tenant: &str, a: &[u8], pt: &[u8]) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.request(tenant, Op::AddPlain { a, pt }))
    }

    /// Ciphertext × plaintext multiplication.
    ///
    /// # Errors
    ///
    /// The server's [`ServeError`], flattened to its message.
    pub fn mul_plain(&self, tenant: &str, a: &[u8], pt: &[u8]) -> Result<Vec<u8>, ServeError> {
        Self::expect_blob(self.request(tenant, Op::MulPlain { a, pt }))
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        let _ = self.read_half.shutdown(Shutdown::Both);
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

/// Demultiplexes server replies into the pending map until the
/// connection closes, then fails every outstanding request.
fn reader_loop(stream: &mut TcpStream, shared: &ClientShared) {
    let reason = loop {
        let frame = match read_frame(stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => break "server closed the connection".to_string(),
            Err(e) => break e.to_string(),
        };
        if frame.len() < 9 {
            break format!("short response frame of {} bytes", frame.len());
        }
        let id = u64::from_le_bytes(frame[..8].try_into().expect("8-byte slice"));
        let result = parse_reply(&frame[8..]);
        let tx = shared
            .pending
            .lock()
            .expect("pending map poisoned")
            .replies
            .remove(&id);
        // An unknown id (abandoned PendingReply) is dropped silently.
        if let Some(tx) = tx {
            let _ = tx.send(result);
        }
    };
    let mut pending = shared.pending.lock().expect("pending map poisoned");
    pending.dead = Some(reason.clone());
    for (_, tx) in pending.replies.drain() {
        let _ = tx.send(Err(ServeError::Io(reason.clone())));
    }
}

fn parse_reply(body: &[u8]) -> Result<Option<Vec<u8>>, ServeError> {
    let mut r = FrameReader { buf: body, pos: 0 };
    match r.take(1)?[0] {
        0 => {
            let blob = r.blob()?;
            r.done()?;
            Ok(if blob.is_empty() {
                None
            } else {
                Some(blob.to_vec())
            })
        }
        1 => {
            let code = r.take(1)?[0];
            let len = u16::from_le_bytes(r.take(2)?.try_into().expect("2-byte slice")) as usize;
            let message = String::from_utf8_lossy(r.take(len)?).into_owned();
            r.done()?;
            Err(ServeError::Remote { code, message })
        }
        s => Err(ServeError::Protocol(format!("unknown response status {s}"))),
    }
}
