//! Shared harness for the serving-scale benchmark: a mixed
//! add/mul/rotation workload driven over the TCP loopback against a
//! sharded [`EvalService`], either as a blocking request-per-roundtrip
//! baseline (the pre-mux serving stack's only client mode: one in-flight
//! request per tenant, so dispatcher queues never fill and rotation
//! coalescing never fires) or through the pipelined multiplexing client
//! (every request in flight at once; shard queues stay full; rotation
//! bursts coalesce into hoisted groups).
//!
//! Outputs are digest-checked across every configuration: sharding,
//! stealing, and pipelining are scheduling-only and must not change a
//! single bit of any response frame.

use std::sync::Arc;
use std::time::Instant;

use he_ckks::cipher::Plaintext;
use he_ckks::context::CkksContext;
use he_ckks::encoding::Complex;
use he_ckks::keys::KeySet;
use he_ckks::params::CkksParams;
use poseidon_serve::tcp::{self, Op};
use poseidon_serve::{EvalService, ServiceConfig};
use rand::SeedableRng;

/// Rotation steps issued per round (each has a key in the harness set).
pub const ROT_STEPS: [i64; 6] = [1, 2, 3, 4, 5, 6];
/// Ciphertext additions per round.
pub const ADDS_PER_ROUND: usize = 2;
/// Relinearised multiplications per round.
pub const MULS_PER_ROUND: usize = 1;
/// Rounds each tenant drives per cell.
pub const ROUNDS: usize = 4;

/// Requests one tenant issues in one cell.
pub fn requests_per_tenant() -> usize {
    ROUNDS * (ROT_STEPS.len() + ADDS_PER_ROUND + MULS_PER_ROUND)
}

/// Fixed client-side state: operand frames and the tenant key set,
/// encoded once and shared by every cell so all configurations serve
/// byte-identical inputs.
pub struct Harness {
    /// The paper-scale context (N=2^12, 4 chain primes + special).
    pub ctx: CkksContext,
    /// First operand, encoded.
    pub frame_a: Vec<u8>,
    /// Second operand, encoded.
    pub frame_b: Vec<u8>,
    /// Public key-set frame (rotation keys for [`ROT_STEPS`]) — streamed
    /// to each cell's service in chunks.
    pub keyset_frame: Vec<u8>,
}

impl Harness {
    /// Builds the deterministic workload operands (fixed seed).
    pub fn new() -> Self {
        let ctx = CkksContext::new(CkksParams::paper_32bit(1 << 12, 4));
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5CA1E);
        let mut keys = KeySet::generate(&ctx, &mut rng);
        for &s in &ROT_STEPS {
            keys.add_rotation_key(s, &mut rng);
        }
        let z: Vec<Complex> = (0..8)
            .map(|i| Complex::new(0.1 * i as f64, -0.05))
            .collect();
        let pt = Plaintext::new(
            ctx.encoder()
                .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
            ctx.default_scale(),
        );
        let a = keys.public().encrypt(&pt, &mut rng);
        let b = keys.public().encrypt(&pt, &mut rng);
        let frame_a = poseidon_wire::encode_ciphertext(&ctx, &a);
        let frame_b = poseidon_wire::encode_ciphertext(&ctx, &b);
        let keyset_frame = poseidon_wire::encode_keyset_public(&ctx, &keys);
        Self {
            ctx,
            frame_a,
            frame_b,
            keyset_frame,
        }
    }
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

/// One measured configuration.
pub struct Cell {
    /// `"blocking"` or `"pipelined"`.
    pub mode: &'static str,
    /// Dispatcher shard count.
    pub shards: usize,
    /// Concurrent tenants driving the workload.
    pub tenants: usize,
    /// Total requests served.
    pub requests: usize,
    /// Wall time for the request phase (registration excluded).
    pub elapsed_s: f64,
    /// Sustained requests per second.
    pub rps: f64,
    /// 99th-percentile request latency (submit → reply observed).
    pub p99_ms: f64,
    /// Order-independent FNV digest over every response frame; equal
    /// digests across cells prove bit-identical outputs.
    pub digest: u64,
}

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn response_digest(tenant: usize, index: usize, frame: &[u8]) -> u64 {
    let h = fnv(0xcbf2_9ce4_8422_2325, &(tenant as u64).to_le_bytes());
    let h = fnv(h, &(index as u64).to_le_bytes());
    fnv(h, frame)
}

/// The per-round request mix, in issue order.
fn round_ops<'a>(h: &'a Harness) -> Vec<Op<'a>> {
    let mut ops = Vec::new();
    for &steps in &ROT_STEPS {
        ops.push(Op::Rotate {
            a: &h.frame_a,
            steps,
        });
    }
    for _ in 0..ADDS_PER_ROUND {
        ops.push(Op::Add {
            a: &h.frame_a,
            b: &h.frame_b,
        });
    }
    for _ in 0..MULS_PER_ROUND {
        ops.push(Op::Mul {
            a: &h.frame_a,
            b: &h.frame_b,
        });
    }
    ops
}

fn drive_tenant(
    client: &tcp::Client,
    h: &Harness,
    tenant_idx: usize,
    id: &str,
    pipelined: bool,
) -> (Vec<f64>, u64) {
    let ops: Vec<Op<'_>> = (0..ROUNDS).flat_map(|_| round_ops(h)).collect();
    let mut latencies = Vec::with_capacity(ops.len());
    let mut digest = 0u64;
    if pipelined {
        // Bounded pipelining: one round in flight per tenant. Keeps the
        // shard queue deep enough to coalesce a full rotation burst
        // while bounding in-flight memory and tail latency.
        let window = round_ops(h).len();
        let mut i = 0;
        for chunk in ops.chunks(window) {
            let pending: Vec<(Instant, tcp::PendingReply)> = chunk
                .iter()
                .map(|op| (Instant::now(), client.submit(id, *op).expect("submit")))
                .collect();
            for (t0, reply) in pending {
                let frame = reply.wait().expect("reply").expect("ciphertext");
                latencies.push(t0.elapsed().as_secs_f64());
                digest ^= response_digest(tenant_idx, i, &frame);
                i += 1;
            }
        }
    } else {
        for (i, op) in ops.iter().enumerate() {
            let t0 = Instant::now();
            let frame = client.request(id, *op).expect("reply").expect("ciphertext");
            latencies.push(t0.elapsed().as_secs_f64());
            digest ^= response_digest(tenant_idx, i, &frame);
        }
    }
    (latencies, digest)
}

/// Runs one configuration end to end: fresh service, chunk-streamed
/// tenant registration, then `tenants` concurrent drivers issuing the
/// mixed workload.
pub fn run_cell(h: &Harness, shards: usize, tenants: usize, pipelined: bool) -> Cell {
    let service = EvalService::start(ServiceConfig {
        shards,
        queue_capacity: 4096,
        max_batch: 64,
        key_cache_capacity: 8,
        ..ServiceConfig::default()
    });
    let (addr, _accept) = tcp::listen(Arc::clone(&service), "127.0.0.1:0").expect("bind loopback");
    let client = tcp::Client::connect(addr).expect("connect");
    let ids: Vec<String> = (0..tenants).map(|t| format!("tenant{t}")).collect();
    for id in &ids {
        client
            .register_tenant_chunked(id, &h.keyset_frame)
            .expect("chunked registration");
    }

    let t0 = Instant::now();
    let mut latencies: Vec<f64> = Vec::new();
    let mut digest = 0u64;
    std::thread::scope(|s| {
        let handles: Vec<_> = ids
            .iter()
            .enumerate()
            .map(|(ti, id)| {
                let client = &client;
                s.spawn(move || drive_tenant(client, h, ti, id, pipelined))
            })
            .collect();
        for handle in handles {
            let (lats, d) = handle.join().expect("tenant driver panicked");
            latencies.extend(lats);
            digest ^= d;
        }
    });
    let elapsed_s = t0.elapsed().as_secs_f64();
    service.shutdown();

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p99_idx = (latencies.len() * 99).div_ceil(100).saturating_sub(1);
    let requests = latencies.len();
    Cell {
        mode: if pipelined { "pipelined" } else { "blocking" },
        shards,
        tenants,
        requests,
        elapsed_s,
        rps: requests as f64 / elapsed_s,
        p99_ms: latencies[p99_idx] * 1e3,
        digest,
    }
}
