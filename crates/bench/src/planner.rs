//! `tables plan`: compiles every shipped `.pos` program through the
//! graph-level evaluation planner and measures what planning buys.
//!
//! For each program the trace is parsed, lowered to a dataflow graph
//! (`plan::compile_trace`), then executed twice on the functional
//! `Evaluator` under `CkksParams::small()`: once in recorded creation
//! order (`Plan::passthrough`) and once through the full pass pipeline
//! (rotation hoisting, rescale placement, dead-value elimination,
//! affinity scheduling). The report prints forward-NTT counts, hoist
//! batch sizes, rescale counts, peak live ciphertexts and wall time for
//! both schedules, asserts that the outputs agree (digest-identical when
//! the schedule is value-preserving, decrypted-value agreement
//! otherwise), and exports `BENCH_planner.json`.
//!
//! A hand-built 8-rotation fan ("rotate8") pins the headline claim —
//! planning must at least halve `ntt.forward` on a shared-source
//! rotation fan — as does `bsgs_matvec.pos` end to end.

#[cfg(not(feature = "telemetry"))]
pub fn plan() {
    println!("telemetry is compiled out of this build (all probes are no-ops).");
    println!("rebuild with:");
    println!("  cargo run -p poseidon-bench --features telemetry --bin tables -- plan");
}

#[cfg(feature = "telemetry")]
pub fn plan() {
    use he_ckks::cipher::{Ciphertext, Plaintext};
    use he_ckks::context::CkksContext;
    use he_ckks::encoding::Complex;
    use he_ckks::eval::Evaluator;
    use he_ckks::integrity::digest_ciphertext;
    use he_ckks::keys::KeySet;
    use he_ckks::params::CkksParams;
    use poseidon_core::plan::{
        compile_trace, execute, plan as plan_graph, CompileOptions, EvalGraph, Plan, PlanOptions,
    };
    use poseidon_telemetry::{Registry, Snapshot};
    use rand::SeedableRng;
    use std::time::Instant;

    const SLOTS: usize = 8;

    let ctx = CkksContext::new(CkksParams::small());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x9_1A_2B);
    let mut keys = KeySet::generate(&ctx, &mut rng);
    keys.add_rotation_keys(1..=8i64, &mut rng);
    let reg = Registry::global();
    let fwd = |d: &Snapshot| d.get("ntt.forward").map_or(0, |s| s.count);

    let encrypt = |rng: &mut rand::rngs::StdRng, seed: f64| -> Ciphertext {
        let z: Vec<Complex> = (0..SLOTS)
            .map(|i| Complex::new(seed + 0.06 * i as f64, 0.0))
            .collect();
        let pt = Plaintext::new(
            ctx.encoder()
                .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
            ctx.default_scale(),
        );
        keys.public().encrypt(&pt, rng)
    };
    let decrypt = |ct: &Ciphertext| -> Vec<f64> {
        let pt = keys.secret().decrypt(ct);
        ctx.encoder()
            .decode_rns(pt.poly(), pt.scale(), SLOTS)
            .iter()
            .map(|z| z.re)
            .collect()
    };

    struct Row {
        name: String,
        nodes_before: usize,
        nodes_after: usize,
        rescales_before: usize,
        rescales_after: usize,
        hoist_batches: Vec<usize>,
        max_live_before: usize,
        max_live_after: usize,
        value_preserving: bool,
        outputs_agree: bool,
        ntt_unplanned: u64,
        ntt_planned: u64,
        wall_ms_unplanned: f64,
        wall_ms_planned: f64,
    }
    impl Row {
        fn reduction(&self) -> f64 {
            if self.ntt_unplanned == 0 {
                1.0
            } else {
                self.ntt_unplanned as f64 / self.ntt_planned.max(1) as f64
            }
        }
    }

    // Measures one graph: warmup (populates lazy key caches), then the
    // unplanned passthrough schedule, then the planned schedule.
    let run_graph = |name: &str, graph: EvalGraph| -> Row {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xBE_EF ^ name.len() as u64);
        let inputs: Vec<Ciphertext> = (0..graph.inputs().len())
            .map(|i| encrypt(&mut rng, 0.4 + 0.05 * i as f64))
            .collect();
        let unplanned = Plan::passthrough(graph.clone());
        let planned = plan_graph(graph, &PlanOptions::default());
        let mut eval = Evaluator::new(&ctx);
        // Warm the rotation-key eval caches so neither timed run pays
        // one-time key transforms.
        let _ = execute(&unplanned, &mut eval, &inputs, &keys).expect("warmup");

        let before = reg.snapshot();
        let t0 = Instant::now();
        let base = execute(&unplanned, &mut eval, &inputs, &keys).expect("unplanned");
        let wall_u = t0.elapsed().as_secs_f64() * 1e3;
        let d_unplanned = reg.snapshot().since(&before);

        let before = reg.snapshot();
        let t0 = Instant::now();
        let opt = execute(&planned, &mut eval, &inputs, &keys).expect("planned");
        let wall_p = t0.elapsed().as_secs_f64() * 1e3;
        let d_planned = reg.snapshot().since(&before);

        assert_eq!(
            base.outputs.len(),
            opt.outputs.len(),
            "{name}: output arity"
        );
        let outputs_agree = if planned.value_preserving {
            base.outputs
                .iter()
                .zip(&opt.outputs)
                .all(|(a, b)| digest_ciphertext(a) == digest_ciphertext(b))
        } else {
            base.outputs.iter().zip(&opt.outputs).all(|(a, b)| {
                decrypt(a)
                    .iter()
                    .zip(decrypt(b))
                    .all(|(x, y)| (x - y).abs() < 1e-3 * x.abs().max(1.0))
            })
        };
        assert!(outputs_agree, "{name}: planned outputs diverged");

        Row {
            name: name.to_string(),
            nodes_before: planned.stats.nodes_before,
            nodes_after: planned.stats.nodes_after,
            rescales_before: planned.stats.rescales_before,
            rescales_after: planned.stats.rescales_after,
            hoist_batches: planned.stats.hoist_batches.clone(),
            max_live_before: planned.stats.max_live_before,
            max_live_after: opt.max_live,
            value_preserving: planned.value_preserving,
            outputs_agree,
            ntt_unplanned: fwd(&d_unplanned),
            ntt_planned: fwd(&d_planned),
            wall_ms_unplanned: wall_u,
            wall_ms_planned: wall_p,
        }
    };

    // -- rotate8 micro: 8 rotations of one source, summed --------------
    let rotate8 = {
        let mut g = EvalGraph::new(f64::from(ctx.params().scale_prime_bits));
        let x = g.input(ctx.max_level(), ctx.default_scale().log2());
        let rots: Vec<_> = (1..=8).map(|s| g.rotate(x, s)).collect();
        let mut acc = rots[0];
        for &r in &rots[1..] {
            acc = g.add(acc, r);
        }
        g.mark_output(acc);
        run_graph("rotate8", g)
    };
    assert!(
        rotate8.value_preserving,
        "hoisting and reordering must be bit-preserving"
    );
    assert!(
        rotate8.ntt_planned * 2 <= rotate8.ntt_unplanned,
        "rotate8: expected >=2x ntt.forward reduction, got {} -> {}",
        rotate8.ntt_unplanned,
        rotate8.ntt_planned
    );

    // -- every shipped .pos program ------------------------------------
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../programs");
    let mut names: Vec<_> = std::fs::read_dir(&dir)
        .expect("programs dir")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("pos"))
        .collect();
    names.sort();
    let mut rows: Vec<Row> = Vec::new();
    for path in &names {
        let name = path.file_stem().unwrap().to_string_lossy().to_string();
        let text = std::fs::read_to_string(path).unwrap();
        let trace = poseidon_sim::program::parse(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let compiled = compile_trace(&trace, &ctx, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        rows.push(run_graph(&name, compiled.graph));
    }

    let bsgs = rows
        .iter()
        .find(|r| r.name == "bsgs_matvec")
        .expect("bsgs_matvec.pos is shipped");
    assert!(
        bsgs.ntt_planned * 2 <= bsgs.ntt_unplanned,
        "bsgs_matvec: expected >=2x ntt.forward reduction, got {} -> {}",
        bsgs.ntt_unplanned,
        bsgs.ntt_planned
    );

    // -- report ---------------------------------------------------------
    println!(
        "N=2^11, L={} (8 chain primes + 2 special); counts are ntt.forward invocations",
        ctx.max_level()
    );
    println!(
        "\n{:<18} {:>11} {:>11} {:>6} {:>9} {:>9} {:>9} {:>9} {:>5} {:<8}",
        "program",
        "ntt base",
        "ntt plan",
        "gain",
        "resc b/a",
        "live b/a",
        "ms base",
        "ms plan",
        "biteq",
        "hoists"
    );
    for r in std::iter::once(&rotate8).chain(rows.iter()) {
        println!(
            "{:<18} {:>11} {:>11} {:>5.2}x {:>4}/{:<4} {:>4}/{:<4} {:>9.2} {:>9.2} {:>5} {:?}",
            r.name,
            r.ntt_unplanned,
            r.ntt_planned,
            r.reduction(),
            r.rescales_before,
            r.rescales_after,
            r.max_live_before,
            r.max_live_after,
            r.wall_ms_unplanned,
            r.wall_ms_planned,
            if r.value_preserving { "yes" } else { "no" },
            r.hoist_batches,
        );
    }
    println!(
        "\nevery program's planned outputs agree with the unplanned run \
         (digest-identical when value-preserving, decrypted values otherwise)"
    );

    // -- export ----------------------------------------------------------
    let json_row = |r: &Row| -> String {
        format!(
            "{{\"name\":\"{}\",\"nodes_before\":{},\"nodes_after\":{},\
             \"rescales_before\":{},\"rescales_after\":{},\"hoist_batches\":[{}],\
             \"max_live_before\":{},\"max_live_after\":{},\"value_preserving\":{},\
             \"outputs_agree\":{},\"ntt_forward_unplanned\":{},\"ntt_forward_planned\":{},\
             \"ntt_reduction\":{:.3},\"wall_ms_unplanned\":{:.3},\"wall_ms_planned\":{:.3}}}",
            r.name,
            r.nodes_before,
            r.nodes_after,
            r.rescales_before,
            r.rescales_after,
            r.hoist_batches
                .iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(","),
            r.max_live_before,
            r.max_live_after,
            r.value_preserving,
            r.outputs_agree,
            r.ntt_unplanned,
            r.ntt_planned,
            r.reduction(),
            r.wall_ms_unplanned,
            r.wall_ms_planned,
        )
    };
    let json = format!(
        "{{\n  \"schema\": \"poseidon.bench.planner.v1\",\n  \"params\": {{\"n\": {}, \"max_level\": {}}},\n  \"rotate8\": {},\n  \"programs\": [\n    {}\n  ]\n}}\n",
        ctx.params().n,
        ctx.max_level(),
        json_row(&rotate8),
        rows.iter().map(json_row).collect::<Vec<_>>().join(",\n    "),
    );
    let path = crate::export_path("BENCH_planner.json");
    std::fs::write(&path, &json).expect("write BENCH_planner.json");
    println!("wrote {}", path.display());
}
