//! Regenerators for every table and figure in the paper's evaluation.
//!
//! Conventions: `published` columns restate the paper's numbers (from
//! `poseidon_sim::published`); `model` columns come from the analytical
//! accelerator model; `measured` columns come from timing our own software
//! library on the host CPU. EXPERIMENTS.md records the side-by-side.

use he_ntt::access::AccessPattern;
use he_ntt::{FusedNtt, FusionAnalysis, NttTable};
use poseidon_core::decompose::{BasicOp, OpParams};
use poseidon_core::Operator;
use poseidon_sim::published;
use poseidon_sim::resources;
use poseidon_sim::workloads::Benchmark;
use poseidon_sim::{AcceleratorConfig, Simulator};

fn sim() -> Simulator {
    Simulator::new(AcceleratorConfig::poseidon_u280())
}

/// Table I: operator usage per basic operation (checkmark matrix).
pub fn table1_operator_usage() {
    let p = OpParams::new(1 << 16, 44, 2);
    println!(
        "{:<12} {:>4} {:>4} {:>9} {:>13} {:>4}",
        "Operation", "MA", "MM", "NTT/INTT", "Automorphism", "SBT"
    );
    for op in BasicOp::ALL {
        let marks: Vec<String> = op
            .uses(&p)
            .iter()
            .map(|(_, used)| {
                if *used {
                    "x".to_string()
                } else {
                    "-".to_string()
                }
            })
            .collect();
        println!(
            "{:<12} {:>4} {:>4} {:>9} {:>13} {:>4}",
            op.name(),
            marks[0],
            marks[1],
            marks[2],
            marks[3],
            marks[4]
        );
    }
}

/// Table II: conventional vs fused NTT operation counts per radix.
pub fn table2_ntt_fusion() {
    println!(
        "{:<3} {:>11} {:>19} {:>16} {:>14} {:>11} {:>9}",
        "k",
        "W(unfused)",
        "W(fused,published)",
        "W(fused,model)",
        "Mult(unfused)",
        "Mult(fused)",
        "Red(u/f)"
    );
    let q = he_math::prime::ntt_prime(30, 1 << 13).unwrap();
    let table = NttTable::new(1 << 12, q);
    for k in 2..=6u32 {
        let a = FusionAnalysis::for_radix(k);
        let measured = FusedNtt::new(&table, k).distinct_twiddles_per_block();
        println!(
            "{:<3} {:>11} {:>19} {:>16.1} {:>14} {:>11} {:>6}/{}",
            k,
            a.twiddles_unfused,
            a.twiddles_fused_paper,
            measured,
            a.mult_unfused,
            a.mult_fused,
            a.reductions_unfused,
            a.reductions_fused
        );
    }
}

/// Table III: per-iteration data access offsets, conventional vs fused.
pub fn table3_access_pattern() {
    let p = AccessPattern::new(4096, 3);
    println!("N = 4096, k = 3");
    println!(
        "conventional: {} iterations, offsets {:?}",
        p.conventional_iterations(),
        (1..=p.conventional_iterations())
            .map(|i| p.conventional_offset(i))
            .collect::<Vec<_>>()
    );
    println!(
        "fused:        {} iterations, offsets {:?}",
        p.fused_iterations(),
        (1..=p.fused_iterations())
            .map(|i| p.fused_offset(i))
            .collect::<Vec<_>>()
    );
    println!(
        "diagonal BRAM banking conflict-free: {}",
        p.verify_conflict_free().is_ok()
    );
}

/// Table IV: basic-operation throughput — measured CPU (our library),
/// modelled Poseidon, published comparisons.
pub fn table4_basic_ops() {
    // Paper parameter regime for HEAX-comparable numbers: N = 2^13.
    let n = 1 << 13;
    let chain = 6;
    println!("measuring software library at N=2^13, L={chain} (this may take a minute)...");
    let measured = crate::cpu_baseline::measure_basic_ops(n, chain, 3);
    let p = OpParams::new(n, chain, 1);
    let sim = sim();
    println!(
        "{:<10} {:>16} {:>16} {:>12} {:>14} {:>14} {:>12}",
        "Operation",
        "CPU meas (op/s)",
        "Poseidon model",
        "speedup",
        "paper CPU",
        "paper Poseidon",
        "paper spd"
    );
    for (name, cpu_ops) in &measured {
        let op = match *name {
            "HAdd" => Some(BasicOp::HAdd),
            "PMult" => Some(BasicOp::PMult),
            "CMult" => Some(BasicOp::CMult),
            "Keyswitch" => Some(BasicOp::Keyswitch),
            "Rotation" => Some(BasicOp::Rotation),
            "Rescale" => Some(BasicOp::Rescale),
            _ => None,
        };
        let model_ops = match (*name, op) {
            // NTT throughput: one transform of all chain components.
            ("NTT", _) => {
                let t = sim.time_single(BasicOp::Modup, &p);
                1.0 / t.seconds // stand-in: transform-dominated op
            }
            (_, Some(op)) => sim.ops_per_second(op, &p),
            _ => 0.0,
        };
        let pub_row = published::TABLE4.iter().find(|r| r.op == *name);
        let (pc, pp, ps) = match pub_row {
            Some(r) => (
                format!("{:.2}", r.cpu_ops),
                format!("{:.0}", r.poseidon_ops()),
                format!("{:.0}x", r.poseidon_speedup),
            ),
            None => ("-".into(), "-".into(), "-".into()),
        };
        println!(
            "{:<10} {:>16.2} {:>16.0} {:>11.0}x {:>14} {:>14} {:>12}",
            name,
            cpu_ops,
            model_ops,
            model_ops / cpu_ops,
            pc,
            pp,
            ps
        );
    }
}

/// Fig. 7: operator composition of each basic operation (cycle shares).
pub fn fig7_operator_composition() {
    let p = OpParams::new(1 << 16, 44, 2);
    let cfg = AcceleratorConfig::poseidon_u280();
    println!("N = 2^16, L = 44 (paper Fig. 7 setting); % of operator cycles");
    println!(
        "{:<12} {:>7} {:>7} {:>9} {:>13}",
        "Operation", "MA%", "MM%", "NTT%", "Automorphism%"
    );
    for op in [
        BasicOp::HAdd,
        BasicOp::PMult,
        BasicOp::CMult,
        BasicOp::Rescale,
        BasicOp::Keyswitch,
        BasicOp::Rotation,
    ] {
        let cycles = poseidon_sim::timing::cycles_by_operator(&op.operator_counts(&p), &p, &cfg);
        let total = (cycles.ma + cycles.mm + cycles.ntt + cycles.auto) as f64;
        println!(
            "{:<12} {:>6.1}% {:>6.1}% {:>8.1}% {:>12.1}%",
            op.name(),
            100.0 * cycles.ma as f64 / total,
            100.0 * cycles.mm as f64 / total,
            100.0 * cycles.ntt as f64 / total,
            100.0 * cycles.auto as f64 / total,
        );
    }
}

/// Table VI: full-system benchmark times, model vs published.
pub fn table6_full_system() {
    let sim = sim();
    let published = [
        published::POSEIDON_TIMES.lr_ms,
        published::POSEIDON_TIMES.lstm_ms,
        published::POSEIDON_TIMES.resnet_ms,
        published::POSEIDON_TIMES.bootstrap_ms,
    ];
    println!(
        "{:<22} {:>14} {:>16} {:>8}",
        "Benchmark", "model (ms)", "published (ms)", "ratio"
    );
    for (b, pub_ms) in Benchmark::ALL.iter().zip(published) {
        let r = sim.run(&b.trace());
        println!(
            "{:<22} {:>14.2} {:>16.2} {:>8.2}",
            b.name(),
            r.millis(),
            pub_ms,
            r.millis() / pub_ms
        );
    }
}

/// Fig. 8: per-benchmark time breakdown across basic operations.
pub fn fig8_time_breakdown() {
    let sim = sim();
    println!(
        "{:<22} {:>7} {:>7} {:>7} {:>9} {:>9} {:>9} {:>10}",
        "Benchmark", "HAdd%", "PMult%", "CMult%", "Rotation%", "Rescale%", "KeySw%", "total(ms)"
    );
    for b in Benchmark::ALL {
        let r = sim.run(&b.trace());
        println!(
            "{:<22} {:>6.1}% {:>6.1}% {:>6.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>10.2}",
            b.name(),
            r.time_share_percent(BasicOp::HAdd),
            r.time_share_percent(BasicOp::PMult),
            r.time_share_percent(BasicOp::CMult),
            r.time_share_percent(BasicOp::Rotation),
            r.time_share_percent(BasicOp::Rescale),
            r.time_share_percent(BasicOp::Keyswitch),
            r.millis()
        );
    }
}

/// Fig. 9: per-benchmark operator-cycle breakdown.
pub fn fig9_operator_breakdown() {
    let sim = sim();
    println!(
        "{:<22} {:>7} {:>7} {:>9} {:>13}",
        "Benchmark", "MA%", "MM%", "NTT%", "Automorphism%"
    );
    for b in Benchmark::ALL {
        let r = sim.run(&b.trace());
        println!(
            "{:<22} {:>6.1}% {:>6.1}% {:>8.1}% {:>12.1}%",
            b.name(),
            r.operator_share_percent(Operator::Ma),
            r.operator_share_percent(Operator::Mm),
            r.operator_share_percent(Operator::Ntt),
            r.operator_share_percent(Operator::Automorphism),
        );
    }
}

/// Table VII: bandwidth utilisation per basic op and benchmark.
pub fn table7_bandwidth() {
    let sim = sim();
    let reports: Vec<_> = Benchmark::ALL.iter().map(|b| sim.run(&b.trace())).collect();
    println!(
        "{:<12} {:>17} {:>17} {:>17} {:>17}",
        "Op", "LR", "LSTM", "ResNet-20", "PackedBoot"
    );
    for op in [
        BasicOp::HAdd,
        BasicOp::PMult,
        BasicOp::CMult,
        BasicOp::Keyswitch,
        BasicOp::Rotation,
        BasicOp::Rescale,
    ] {
        let row: Vec<String> = reports
            .iter()
            .map(|r| {
                r.utilisation_by_op
                    .iter()
                    .find(|(o, _)| *o == op)
                    .map(|(_, u)| format!("{:.1}%", u * 100.0))
                    .unwrap_or_else(|| "-".into())
            })
            .collect();
        let pub_row = published::TABLE7.iter().find(|r| r.op == op.name());
        let pubs = pub_row
            .map(|r| {
                format!(
                    "  [paper: {:.0}/{:.0}/{:.0}/{:.0}]",
                    r.percent[0], r.percent[1], r.percent[2], r.percent[3]
                )
            })
            .unwrap_or_default();
        println!(
            "{:<12} {:>17} {:>17} {:>17} {:>17}{}",
            op.name(),
            row[0],
            row[1],
            row[2],
            row[3],
            pubs
        );
    }
    let avg: Vec<String> = reports
        .iter()
        .map(|r| format!("{:.1}%", r.bandwidth_utilisation * 100.0))
        .collect();
    println!(
        "{:<12} {:>17} {:>17} {:>17} {:>17}  [paper: 43/52/48/59]",
        "Average", avg[0], avg[1], avg[2], avg[3]
    );
}

/// Table VIII: Auto vs HFAuto core resources and latency.
pub fn table8_auto_resources() {
    use poseidon_sim::AutoMode;
    println!(
        "{:<8} {:>8} {:>9} {:>6} {:>6} {:>16} {:>22}",
        "Design", "FF", "LUT", "DSP", "BRAM", "latency (model)", "latency (published)"
    );
    for (mode, pub_row) in [
        (AutoMode::Naive, &published::TABLE8[0]),
        (AutoMode::HfAuto, &published::TABLE8[1]),
    ] {
        let r = resources::auto_core(mode, 512);
        let hf = poseidon_core::HfAuto::new(1 << 16, 512);
        let lat = match mode {
            AutoMode::Naive => hf.naive_latency_cycles(),
            AutoMode::HfAuto => hf.hf_latency_steps(),
        };
        println!(
            "{:<8} {:>8} {:>9} {:>6} {:>6} {:>16} {:>22}",
            pub_row.design, r.ff, r.lut, r.dsp, r.bram, lat, pub_row.latency_cycles
        );
    }
}

/// Table IX: benchmark times with naive Auto vs HFAuto.
pub fn table9_auto_ablation() {
    let hf = Simulator::new(AcceleratorConfig::poseidon_u280());
    let naive = Simulator::new(AcceleratorConfig::poseidon_naive_auto());
    let pub_hf = [
        published::POSEIDON_TIMES.lr_ms,
        published::POSEIDON_TIMES.lstm_ms,
        published::POSEIDON_TIMES.resnet_ms,
        published::POSEIDON_TIMES.bootstrap_ms,
    ];
    let pub_naive = [
        published::POSEIDON_NAIVE_AUTO_TIMES.lr_ms,
        published::POSEIDON_NAIVE_AUTO_TIMES.lstm_ms,
        published::POSEIDON_NAIVE_AUTO_TIMES.resnet_ms,
        published::POSEIDON_NAIVE_AUTO_TIMES.bootstrap_ms,
    ];
    println!(
        "{:<22} {:>12} {:>12} {:>8} {:>14}",
        "Benchmark", "Auto (ms)", "HFAuto (ms)", "ratio", "paper ratio"
    );
    for (i, b) in Benchmark::ALL.iter().enumerate() {
        let t = b.trace();
        let a = naive.run(&t).millis();
        let h = hf.run(&t).millis();
        println!(
            "{:<22} {:>12.2} {:>12.2} {:>7.1}x {:>13.1}x",
            b.name(),
            a,
            h,
            a / h,
            pub_naive[i] / pub_hf[i]
        );
    }
}

/// Fig. 10: NTT fusion-degree sweep — resources and execution time.
pub fn fig10_fusion_sweep() {
    let n = 4096;
    println!(
        "{:<3} {:>10} {:>10} {:>7} {:>14}",
        "k", "#Regs/lane", "#LUTs/lane", "#DSPs", "NTT time (us)"
    );
    for k in 2..=6u32 {
        let cfg = AcceleratorConfig {
            ntt_fusion_k: k,
            ..AcceleratorConfig::poseidon_u280()
        };
        let r = resources::ntt_core_per_lane(k, n);
        println!(
            "{:<3} {:>10} {:>10} {:>7} {:>14.3}{}",
            k,
            r.ff,
            r.lut,
            r.dsp,
            resources::ntt_time_us(k, n, &cfg),
            if k == 3 {
                "   <- optimum (paper: k = 3)"
            } else {
                ""
            }
        );
    }
}

/// Fig. 11: lane-count sensitivity on ResNet-20 (time and EDP).
pub fn fig11_lane_sweep() {
    let t = Benchmark::ResNet20.trace();
    println!(
        "{:<7} {:>14} {:>16} {:>10}",
        "lanes", "time (ms)", "EDP (J*s)", "speedup"
    );
    let mut base = None;
    for lanes in [64usize, 128, 256, 512] {
        let cfg = AcceleratorConfig {
            lanes,
            ..AcceleratorConfig::poseidon_u280()
        };
        let r = Simulator::new(cfg).run(&t);
        let b = *base.get_or_insert(r.seconds);
        println!(
            "{:<7} {:>14.2} {:>16.4e} {:>9.2}x",
            lanes,
            r.millis(),
            r.edp(),
            b / r.seconds
        );
    }
}

/// Fig. 12: energy consumption and breakdown per benchmark.
pub fn fig12_energy() {
    let sim = sim();
    println!(
        "{:<22} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "Benchmark", "total (J)", "mem%", "MM%", "NTT%", "MA%", "Auto%", "static%"
    );
    for b in Benchmark::ALL {
        let r = sim.run(&b.trace());
        let e = r.energy;
        let tot = e.total();
        println!(
            "{:<22} {:>10.3} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>8.1}%",
            b.name(),
            tot,
            100.0 * e.memory / tot,
            100.0 * e.mm / tot,
            100.0 * e.ntt / tot,
            100.0 * e.ma / tot,
            100.0 * e.auto / tot,
            100.0 * e.static_energy / tot,
        );
    }
}

/// Table X: energy-delay product per benchmark.
pub fn table10_edp() {
    let sim = sim();
    println!(
        "{:<22} {:>16} {:>14}",
        "Benchmark", "EDP (J*s)", "energy (J)"
    );
    for b in Benchmark::ALL {
        let r = sim.run(&b.trace());
        println!(
            "{:<22} {:>16.4e} {:>14.3}",
            b.name(),
            r.edp(),
            r.energy.total()
        );
    }
    println!("(paper Table X reports Poseidon ahead of the GPU by ~1000x on LR and");
    println!(" ahead of CraterLake/BTS on LR and ResNet-20; ASICs lead elsewhere.)");
}

/// Table XI: per-core resource consumption at 512 lanes.
pub fn table11_core_resources() {
    let lanes = 512u64;
    let n = 1 << 16;
    println!(
        "{:<14} {:>10} {:>10} {:>8} {:>7}",
        "Core", "FF", "LUT", "DSP", "BRAM"
    );
    let rows = [
        ("MA", resources::ma_core_per_lane()),
        ("MM", resources::mm_core_per_lane()),
        ("SBT", resources::sbt_core_per_lane()),
        ("NTT", resources::ntt_core_per_lane(3, n)),
    ];
    let mut total = resources::auto_core(poseidon_sim::AutoMode::HfAuto, 512);
    for (name, per_lane) in rows {
        let ff = per_lane.ff * lanes;
        let lut = per_lane.lut * lanes;
        let dsp = per_lane.dsp * lanes;
        let bram = per_lane.bram * lanes;
        println!("{:<14} {:>10} {:>10} {:>8} {:>7}", name, ff, lut, dsp, bram);
        total.ff += ff;
        total.lut += lut;
        total.dsp += dsp;
        total.bram += bram;
    }
    let auto = resources::auto_core(poseidon_sim::AutoMode::HfAuto, 512);
    println!(
        "{:<14} {:>10} {:>10} {:>8} {:>7}",
        "Automorphism", auto.ff, auto.lut, auto.dsp, auto.bram
    );
    println!(
        "{:<14} {:>10} {:>10} {:>8} {:>7}",
        "Total", total.ff, total.lut, total.dsp, total.bram
    );
}

/// Table XII: resource comparison against other FPGA prototypes.
pub fn table12_fpga_comparison() {
    let r = resources::design_resources(&AcceleratorConfig::poseidon_u280(), 1 << 16);
    println!("{:<26} {:>10} {:>8} {:>7}", "Design", "LUT", "DSP", "BRAM");
    println!(
        "{:<26} {:>10} {:>8} {:>7}",
        "Poseidon (model)", r.lut, r.dsp, r.bram
    );
    println!(
        "{:<26} {:>10} {:>8} {:>7}",
        "U280 capacity", 1_303_680, 9_024, 2_016
    );
    println!("(the paper's Table XII compares against Kim et al. and HEAX and reports");
    println!(" lower consumption for Poseidon; those columns are not legible in the");
    println!(" provided text and are recorded as unavailable in EXPERIMENTS.md.)");
}

/// Extension: design-space ablations for the §VI discussion parameters
/// (scratchpad volume, HBM bandwidth, fusion degree at system level).
pub fn ablations() {
    use poseidon_sim::sweeps;
    let t = Benchmark::PackedBootstrapping.trace();

    println!("--- scratchpad capacity (packed bootstrapping) ---");
    println!(
        "{:<10} {:>12} {:>14} {:>10}",
        "MB", "time (ms)", "EDP (J*s)", "bw util"
    );
    for p in sweeps::sweep_scratchpad(&t, &[0.5, 2.0, 4.0, 8.6, 16.0, 32.0]) {
        println!(
            "{:<10} {:>12.2} {:>14.4e} {:>9.1}%",
            p.x,
            p.millis,
            p.edp,
            p.bandwidth_utilisation * 100.0
        );
    }

    println!("\n--- HBM bandwidth (packed bootstrapping) ---");
    println!(
        "{:<10} {:>12} {:>14} {:>10}",
        "GB/s", "time (ms)", "EDP (J*s)", "bw util"
    );
    for p in sweeps::sweep_bandwidth(&t, &[115.0, 230.0, 460.0, 920.0, 1840.0]) {
        println!(
            "{:<10} {:>12.2} {:>14.4e} {:>9.1}%",
            p.x,
            p.millis,
            p.edp,
            p.bandwidth_utilisation * 100.0
        );
    }

    println!("\n--- NTT fusion degree at system level (packed bootstrapping) ---");
    println!("{:<10} {:>12} {:>14}", "k", "time (ms)", "EDP (J*s)");
    for p in sweeps::sweep_fusion(&t, &[1, 2, 3, 4, 5, 6]) {
        println!("{:<10} {:>12.2} {:>14.4e}", p.x, p.millis, p.edp);
    }

    println!("\n--- keyswitch digit count (CMult at N=2^16, L=44) ---");
    println!("{:<10} {:>14} {:>14}", "dnum", "time (us)", "HBM (MB)");
    let sim = sim();
    for dnum in [1usize, 2, 4, 11, 22, 44] {
        let p = poseidon_core::OpParams::with_dnum(1 << 16, 44, 2, dnum);
        let t = sim.time_single(BasicOp::CMult, &p);
        println!(
            "{:<10} {:>14.2} {:>14.2}",
            dnum,
            t.seconds * 1e6,
            t.hbm_bytes as f64 / 1e6
        );
    }
}

/// Extension: limb-parallel engine thread sweep — serial vs multi-threaded
/// throughput of the NTT/CMult/keyswitch hot paths, the software analogue
/// of the paper's lane-count sweep (Fig. 11). Thread counts are pinned via
/// `poseidon_par::with_threads`; speedups are relative to 1 thread.
pub fn parallel_scaling() {
    type Op<'a> = (&'a str, Box<dyn Fn() + 'a>);
    let n = 1 << 13;
    let chain = 6;
    let host = std::thread::available_parallelism().map_or(1, |c| c.get());
    println!("software library at N=2^13, L={chain}; host cores available: {host}");
    let h = crate::cpu_baseline::CpuHarness::new(n, chain);
    let coeff = h.ct_a.c0().clone();
    let ops: Vec<Op> = vec![
        ("NTT", {
            let coeff = coeff.clone();
            Box::new(move || {
                let _ = coeff.clone().into_eval();
            })
        }),
        (
            "CMult",
            Box::new(|| {
                let _ = h.eval.mul(&h.ct_a, &h.ct_b, &h.keys);
            }),
        ),
        (
            "Keyswitch",
            Box::new(|| {
                let _ = h.eval.keyswitch(h.ct_a.c1(), h.keys.relin());
            }),
        ),
        (
            "Rescale",
            Box::new(|| {
                let _ = h.eval.rescale(&h.ct_a);
            }),
        ),
    ];
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "Operation", "1t (op/s)", "2t", "4t", "8t"
    );
    for (name, f) in &ops {
        let rates: Vec<f64> = [1usize, 2, 4, 8]
            .iter()
            .map(|&t| poseidon_par::with_threads(t, || h.ops_per_second(3, f)))
            .collect();
        println!(
            "{:<10} {:>12.2} {:>7.2} ({:>4.2}x) {:>5.2} ({:>4.2}x) {:>5.2} ({:>4.2}x)",
            name,
            rates[0],
            rates[1],
            rates[1] / rates[0],
            rates[2],
            rates[2] / rates[0],
            rates[3],
            rates[3] / rates[0],
        );
    }
}

/// Extension: cross-operation pipelining (double-buffered prefetch) — the
/// dataflow-planning headroom §IV-A's memory-system description implies.
pub fn pipeline() {
    use poseidon_sim::schedule::schedule;
    let cfg = AcceleratorConfig::poseidon_u280();
    println!(
        "{:<22} {:>13} {:>15} {:>9}",
        "Benchmark", "serial (ms)", "pipelined (ms)", "gain"
    );
    for b in Benchmark::ALL {
        let s = schedule(&b.trace(), &cfg);
        println!(
            "{:<22} {:>13.2} {:>15.2} {:>8.2}x",
            b.name(),
            s.serial_seconds * 1e3,
            s.makespan * 1e3,
            s.speedup()
        );
    }
}

/// `tables run <file>`: simulate a program file (see
/// `poseidon_sim::program` for the format) and print its report.
pub fn run_program(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let trace = match poseidon_sim::program::parse(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}:{e}");
            std::process::exit(1);
        }
    };
    let r = sim().run(&trace);
    println!("program           : {path}");
    println!("entries           : {}", trace.entries().len());
    println!("time              : {:.3} ms", r.millis());
    println!("HBM traffic       : {:.3} GB", r.hbm_bytes as f64 / 1e9);
    println!(
        "bandwidth util    : {:.1} %",
        r.bandwidth_utilisation * 100.0
    );
    println!(
        "energy            : {:.3} J  (EDP {:.3e} J*s)",
        r.energy.total(),
        r.edp()
    );
    for op in BasicOp::ALL {
        let share = r.time_share_percent(op);
        if share > 0.05 {
            println!("  {:<10} {:>5.1} % of time", op.name(), share);
        }
    }
}

/// `tables metrics` without the `telemetry` feature: explain how to get
/// the instrumented build instead of printing an empty report.
#[cfg(not(feature = "telemetry"))]
pub fn metrics() {
    println!("telemetry is compiled out of this build (all probes are no-ops).");
    println!("rebuild with:");
    println!("  cargo run -p poseidon-bench --features telemetry --bin tables -- metrics");
}

/// `tables hoisting` without the `telemetry` feature: the NTT counters the
/// report is built from are compiled out, so point at the right build.
#[cfg(not(feature = "telemetry"))]
pub fn hoisting() {
    println!("telemetry is compiled out of this build (all probes are no-ops).");
    println!("rebuild with:");
    println!("  cargo run -p poseidon-bench --features telemetry --bin tables -- hoisting");
}

/// `tables hoisting`: measured `ntt.forward` counts for 8-rotation
/// workloads under three key-switch regimes — the seed path (per-call
/// rotations, key slices forward-NTT'd on every call), the per-call path
/// with the eval-form key cache, and the hoisted batch engine — so the
/// saving the hoisting engine claims is a counter readout, not an
/// estimate. Every variant's ciphertexts are asserted bit-identical
/// before the counts are printed.
#[cfg(feature = "telemetry")]
pub fn hoisting() {
    use he_ckks::cipher::{Ciphertext, Plaintext};
    use he_ckks::context::CkksContext;
    use he_ckks::encoding::Complex;
    use he_ckks::eval::Evaluator;
    use he_ckks::keys::{KeySet, KeySwitchKey};
    use he_ckks::linear::PlainMatrix;
    use he_ckks::params::CkksParams;
    use poseidon_telemetry::{Registry, Snapshot};
    use rand::SeedableRng;
    use std::collections::HashMap;

    // Dim 32 with a 24-wide band (diagonals 24..32 zero) gives BSGS
    // exactly 8 rotations: baby steps 1..5 plus giant steps 6, 12, 18
    // (the two all-zero giant blocks are skipped).
    const DIM: usize = 32;
    const BAND: usize = 24;
    let ctx = CkksContext::new(CkksParams::paper_32bit(1 << 12, 4));
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x0157);
    let mut keys = KeySet::generate(&ctx, &mut rng);
    let key_steps: Vec<i64> = (1..=8).chain([12, 18]).collect();
    for &s in &key_steps {
        keys.add_rotation_key(s, &mut rng);
    }
    let eval = Evaluator::new(&ctx);
    let z: Vec<Complex> = (0..DIM)
        .map(|i| Complex::new(0.3 + 0.05 * i as f64, 0.0))
        .collect();
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
        ctx.default_scale(),
    );
    let ct = keys.public().encrypt(&pt, &mut rng);

    // Seed-path keys: the eval-form cache stripped, so every keyswitch
    // re-runs the slice + forward-NTT the cache was built to remove.
    let stripped: HashMap<i64, (u64, KeySwitchKey)> = key_steps
        .iter()
        .map(|&s| {
            let g = keys.galois_element(s);
            let key = keys
                .galois_key(g)
                .expect("rotation key")
                .without_eval_cache();
            (s, (g, key))
        })
        .collect();
    let seed_rotate = |a: &Ciphertext, s: i64| {
        let (g, key) = &stripped[&s];
        eval.apply_galois(a, *g, key)
    };

    let reg = Registry::global();
    let fwd = |d: &Snapshot| d.get("ntt.forward").map_or(0, |s| s.count);
    let hoists = |d: &Snapshot| d.get("keyswitch.hoist").map_or(0, |s| s.count);
    let saved = |d: &Snapshot| d.get("keyswitch.saved_ntt").map_or(0, |s| s.items);
    let measure = |f: &mut dyn FnMut() -> Vec<Ciphertext>| -> (Vec<Ciphertext>, Snapshot) {
        let before = reg.snapshot();
        let out = f();
        (out, reg.snapshot().since(&before))
    };

    println!(
        "N=2^12, L={} (4 chain primes + 1 special); counts are ntt.forward invocations",
        ctx.max_level()
    );

    // -- 8 rotations of one ciphertext ------------------------------------
    let steps: Vec<i64> = (1..=8).collect();
    let (r_seed, d_seed) = measure(&mut || steps.iter().map(|&s| seed_rotate(&ct, s)).collect());
    let (r_cached, d_cached) =
        measure(&mut || steps.iter().map(|&s| eval.rotate(&ct, s, &keys)).collect());
    let (r_hoist, d_hoist) = measure(&mut || eval.rotate_many(&ct, &steps, &keys));
    assert_eq!(r_seed, r_cached, "key cache changed rotation bits");
    assert_eq!(r_cached, r_hoist, "hoisted batch changed rotation bits");

    println!("\n-- 8 rotations of one ciphertext (bit-identical outputs) --");
    println!(
        "{:<34} {:>12} {:>8} {:>12}",
        "variant", "ntt.forward", "hoists", "saved NTTs"
    );
    for (name, d) in [
        ("seed path (slice+NTT keys)", &d_seed),
        ("eval-form key cache, per call", &d_cached),
        ("hoisted batch (rotate_many)", &d_hoist),
    ] {
        println!(
            "{:<34} {:>12} {:>8} {:>12}",
            name,
            fwd(d),
            hoists(d),
            saved(d)
        );
    }
    println!(
        "forward-NTT reduction: {:.1}x vs seed, {:.1}x vs per-call  (acceptance: >= 2x)",
        fwd(&d_seed) as f64 / fwd(&d_hoist) as f64,
        fwd(&d_cached) as f64 / fwd(&d_hoist) as f64,
    );

    // -- 8-rotation BSGS matvec -------------------------------------------
    // The unhoisted reference replays `PlainMatrix::apply_bsgs` with the
    // seed-path rotation for every baby and giant step; the hoisted run is
    // the shipped method. Both produce identical ciphertexts, so the NTT
    // delta is pure dataflow.
    let m = PlainMatrix::new(
        (0..DIM)
            .map(|i| {
                (0..DIM)
                    .map(|j| {
                        if (j + DIM - i) % DIM < BAND {
                            Complex::new(((i * 7 + j * 3) % 7) as f64 * 0.05 - 0.15, 0.0)
                        } else {
                            Complex::new(0.0, 0.0)
                        }
                    })
                    .collect()
            })
            .collect(),
    );
    let bsgs_seed = |v: &Ciphertext| -> Ciphertext {
        let bs = (DIM as f64).sqrt().ceil() as usize;
        let gs = DIM.div_ceil(bs);
        let scale = eval.context().default_scale();
        let mut baby = vec![v.clone()];
        for b in 1..bs {
            baby.push(seed_rotate(v, b as i64));
        }
        let mut acc: Option<Ciphertext> = None;
        for g in 0..gs {
            let mut inner: Option<Ciphertext> = None;
            for (b, ct_b) in baby.iter().enumerate().take(bs) {
                let d = g * bs + b;
                // Same zero-diagonal skip as `apply_bsgs`.
                if d >= DIM || m.diagonal(d).iter().all(|c| c.abs() < 1e-300) {
                    continue;
                }
                let shift = g * bs;
                let diag: Vec<Complex> = (0..DIM)
                    .map(|i| m.diagonal(d)[(i + DIM - shift) % DIM])
                    .collect();
                let pt = eval.encode_at_level(&diag, scale, ct_b.level());
                let term = eval.mul_plain(ct_b, &pt);
                match &mut inner {
                    None => inner = Some(term),
                    Some(a) => eval.add_assign(a, &term),
                }
            }
            if let Some(inner) = inner {
                let shifted = if g == 0 {
                    inner
                } else {
                    seed_rotate(&inner, (g * bs) as i64)
                };
                match &mut acc {
                    None => acc = Some(shifted),
                    Some(a) => eval.add_assign(a, &shifted),
                }
            }
        }
        eval.rescale(&acc.expect("non-zero matrix"))
    };
    let (v_seed, b_seed) = measure(&mut || vec![bsgs_seed(&ct)]);
    let (v_hoist, b_hoist) = measure(&mut || vec![m.apply_bsgs(&eval, &keys, &ct)]);
    assert_eq!(v_seed, v_hoist, "hoisted BSGS changed matvec bits");

    println!("\n-- 8-rotation BSGS matvec, dim 32, band 24 (bit-identical outputs) --");
    println!(
        "{:<34} {:>12} {:>8} {:>12}",
        "variant", "ntt.forward", "hoists", "saved NTTs"
    );
    println!(
        "{:<34} {:>12} {:>8} {:>12}",
        "seed path (per-call, no cache)",
        fwd(&b_seed),
        hoists(&b_seed),
        saved(&b_seed)
    );
    println!(
        "{:<34} {:>12} {:>8} {:>12}",
        "hoisted (apply_bsgs)",
        fwd(&b_hoist),
        hoists(&b_hoist),
        saved(&b_hoist)
    );
    println!(
        "forward-NTT reduction: {:.2}x vs seed  (acceptance: >= 2x)",
        fwd(&b_seed) as f64 / fwd(&b_hoist) as f64,
    );
}

/// One row of the per-kernel transform timing sweep.
#[derive(Debug, Clone, Copy)]
pub struct NttKernelTiming {
    /// Kernel name (stable, lowercase).
    pub kernel: &'static str,
    /// log2 of the ring degree.
    pub log_n: u32,
    /// Mean forward-transform time, nanoseconds.
    pub forward_ns: f64,
    /// Mean inverse-transform time, nanoseconds.
    pub inverse_ns: f64,
}

/// Times forward/inverse for every [`he_ntt::KernelKind`] at the given
/// ring degrees. Shared by `tables ntt` and `benches/ntt_kernels.rs`.
///
/// Outputs are checksummed through [`std::hint::black_box`] so the
/// optimiser cannot elide the transforms.
pub fn ntt_kernel_sweep(log_ns: &[u32]) -> Vec<NttKernelTiming> {
    use he_ntt::KernelKind;
    use std::time::Instant;

    let mut rows = Vec::new();
    for &log_n in log_ns {
        let n = 1usize << log_n;
        let q = he_math::prime::ntt_prime(30, 2 * n as u64).unwrap();
        // Same deterministic input for every kernel.
        let input: Vec<u64> = (0..n as u64)
            .map(|i| (i.wrapping_mul(2654435761).wrapping_add(97)) % q)
            .collect();
        // Enough iterations to dominate timer noise, fewer at large N.
        let iters = (1u32 << 22).checked_shr(log_n).unwrap_or(1).clamp(16, 4096);
        for kind in KernelKind::ALL {
            let t = NttTable::with_kernel(n, q, kind);
            let mut buf = input.clone();
            // Warm-up (also faults the twiddle tables into cache).
            for _ in 0..4 {
                t.forward(&mut buf);
                t.inverse(&mut buf);
            }
            let start = Instant::now();
            for _ in 0..iters {
                t.forward(&mut buf);
            }
            let forward_ns = start.elapsed().as_nanos() as f64 / iters as f64;
            std::hint::black_box(&buf);
            let start = Instant::now();
            for _ in 0..iters {
                t.inverse(&mut buf);
            }
            let inverse_ns = start.elapsed().as_nanos() as f64 / iters as f64;
            std::hint::black_box(&buf);
            rows.push(NttKernelTiming {
                kernel: kind.name(),
                log_n,
                forward_ns,
                inverse_ns,
            });
        }
    }
    rows
}

/// End-to-end wall time of the `tables hoisting` workload (8-rotation
/// batch + the dim-32 band-24 BSGS matvec at N = 2^12, L = 4) per NTT
/// kernel, by rebuilding the whole context under a process-wide kernel
/// override. Returns `(kernel, rotate8_ms, bsgs_ms)` rows; outputs are
/// asserted bit-identical across kernels before any time is reported.
pub fn ntt_end_to_end(iters: u32) -> Vec<(&'static str, f64, f64)> {
    use he_ckks::cipher::Plaintext;
    use he_ckks::context::CkksContext;
    use he_ckks::encoding::Complex;
    use he_ckks::eval::Evaluator;
    use he_ckks::keys::KeySet;
    use he_ckks::linear::PlainMatrix;
    use he_ckks::params::CkksParams;
    use he_ntt::KernelKind;
    use rand::SeedableRng;
    use std::time::Instant;

    const DIM: usize = 32;
    const BAND: usize = 24;
    let steps: Vec<i64> = (1..=8).collect();
    let mut rows = Vec::new();
    let mut reference = None;
    for kind in KernelKind::ALL {
        he_ntt::set_default_kind(Some(kind));
        let ctx = CkksContext::new(CkksParams::paper_32bit(1 << 12, 4));
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x0157);
        let mut keys = KeySet::generate(&ctx, &mut rng);
        for s in (1..=8).chain([12, 18]) {
            keys.add_rotation_key(s, &mut rng);
        }
        let eval = Evaluator::new(&ctx);
        let z: Vec<Complex> = (0..DIM)
            .map(|i| Complex::new(0.3 + 0.05 * i as f64, 0.0))
            .collect();
        let pt = Plaintext::new(
            ctx.encoder()
                .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
            ctx.default_scale(),
        );
        let ct = keys.public().encrypt(&pt, &mut rng);
        let m = PlainMatrix::new(
            (0..DIM)
                .map(|i| {
                    (0..DIM)
                        .map(|j| {
                            if (j + DIM - i) % DIM < BAND {
                                Complex::new(((i * 7 + j * 3) % 7) as f64 * 0.05 - 0.15, 0.0)
                            } else {
                                Complex::new(0.0, 0.0)
                            }
                        })
                        .collect()
                })
                .collect(),
        );

        let rotated = eval.rotate_many(&ct, &steps, &keys);
        let matvec = m.apply_bsgs(&eval, &keys, &ct);
        match &reference {
            None => reference = Some((rotated, matvec)),
            Some((r, v)) => {
                assert_eq!(r, &rotated, "kernel {kind} changed rotation bits");
                assert_eq!(v, &matvec, "kernel {kind} changed matvec bits");
            }
        }

        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(eval.rotate_many(&ct, &steps, &keys));
        }
        let rotate_ms = start.elapsed().as_secs_f64() * 1e3 / iters as f64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(m.apply_bsgs(&eval, &keys, &ct));
        }
        let bsgs_ms = start.elapsed().as_secs_f64() * 1e3 / iters as f64;
        rows.push((kind.name(), rotate_ms, bsgs_ms));
    }
    he_ntt::set_default_kind(None);
    rows
}

/// `tables ntt`: per-kernel forward/inverse transform times across ring
/// degrees, and the end-to-end delta the kernels make on the 8-rotation
/// workloads of `tables hoisting`.
pub fn ntt() {
    println!("-- per-kernel transform times (mean of a deterministic sweep) --");
    println!(
        "{:<8} {:<14} {:>14} {:>14}",
        "log N", "kernel", "forward (us)", "inverse (us)"
    );
    let rows = ntt_kernel_sweep(&[10, 11, 12, 13]);
    let mut scalar_fwd = std::collections::HashMap::new();
    for r in &rows {
        if r.kernel == "scalar" {
            scalar_fwd.insert(r.log_n, r.forward_ns);
        }
    }
    for r in &rows {
        println!(
            "{:<8} {:<14} {:>14.2} {:>14.2}{}",
            r.log_n,
            r.kernel,
            r.forward_ns / 1e3,
            r.inverse_ns / 1e3,
            if r.kernel == "scalar" {
                String::new()
            } else {
                format!(
                    "   ({:.2}x fwd vs scalar)",
                    scalar_fwd[&r.log_n] / r.forward_ns
                )
            }
        );
    }

    println!("\n-- end-to-end: 8-rotation workloads at N=2^12, L=4 (bit-identical outputs) --");
    println!(
        "{:<14} {:>16} {:>18}",
        "kernel", "rotate_x8 (ms)", "bsgs matvec (ms)"
    );
    let e2e = ntt_end_to_end(2);
    for (kernel, rot, bsgs) in &e2e {
        println!("{kernel:<14} {rot:>16.2} {bsgs:>18.2}");
    }
    let scalar = e2e.iter().find(|r| r.0 == "scalar").unwrap();
    let fused = e2e.iter().find(|r| r.0 == "fused_radix8").unwrap();
    println!(
        "fused_radix8 end-to-end gain: rotate_x8 {:.2}x, bsgs {:.2}x vs scalar",
        scalar.1 / fused.1,
        scalar.2 / fused.2
    );
}

/// The HELR scoring kernel written once against [`HomomorphicOps`]:
/// PMult + rotate-fold dot product, bias add, then the cubic term of the
/// HELR sigmoid (square + CMult). Runs identically on the evaluator and
/// on the operator-pool machine.
#[cfg(feature = "telemetry")]
fn helr_kernel<B: poseidon_core::HomomorphicOps>(
    backend: &mut B,
    ctx: &he_ckks::context::CkksContext,
    keys: &he_ckks::keys::KeySet,
    x: &he_ckks::cipher::Ciphertext,
    weights: &[f64],
    bias: f64,
) -> he_ckks::cipher::Ciphertext {
    use he_ckks::cipher::Plaintext;
    use he_ckks::encoding::Complex;
    let enc = |z: &[Complex], scale: f64, level: usize| {
        Plaintext::new(
            ctx.encoder().encode_rns(&ctx.level_basis(level), z, scale),
            scale,
        )
    };
    let w: Vec<Complex> = weights.iter().map(|&w| Complex::new(w, 0.0)).collect();
    let w_pt = enc(&w, ctx.default_scale(), x.level());
    let wx = backend.mul_plain(x, &w_pt);
    let mut acc = backend.rescale(&wx);
    let mut step = 1;
    while step < weights.len() {
        let r = backend.rotate(&acc, step as i64, keys);
        acc = backend.add(&acc, &r);
        step *= 2;
    }
    let bias_pt = enc(&[Complex::new(bias, 0.0)], acc.scale(), acc.level());
    let logit = backend.add_plain(&acc, &bias_pt);
    let sq = backend.square(&logit, keys);
    let z2 = backend.rescale(&sq);
    let z_low = backend.drop_to_level(&logit, z2.level());
    let prod = backend.mul(&z2, &z_low, keys);
    backend.rescale(&prod)
}

/// `tables metrics`: runtime per-operator telemetry for a HELR scoring
/// workload — the measured counterpart of the paper's Fig. 7 operator
/// composition — plus every instrumented scope across the stack.
///
/// The report cross-checks the telemetry items against
/// [`OperatorPool::usage`](poseidon_core::OperatorPool::usage) (they are
/// two views over the same atomics, so agreement must be exact).
#[cfg(feature = "telemetry")]
pub fn metrics() {
    use he_ckks::apps::LogisticModel;
    use he_ckks::cipher::Plaintext;
    use he_ckks::context::CkksContext;
    use he_ckks::encoding::Complex;
    use he_ckks::eval::Evaluator;
    use he_ckks::keys::KeySet;
    use he_ckks::params::CkksParams;
    use poseidon_core::PoseidonMachine;
    use rand::SeedableRng;

    let ctx = CkksContext::new(CkksParams::small());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x0E71);
    let mut keys = KeySet::generate(&ctx, &mut rng);
    let weights = [0.4, -0.2, 0.1, 0.3];
    let bias = 0.15;
    let mut step = 1;
    while step < weights.len() {
        keys.add_rotation_key(step as i64, &mut rng);
        step *= 2;
    }
    let features: Vec<Complex> = (0..weights.len())
        .map(|i| Complex::new(0.3 + 0.1 * i as f64, 0.0))
        .collect();
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), &features, ctx.default_scale()),
        ctx.default_scale(),
    );
    let ct = keys.public().encrypt(&pt, &mut rng);

    // Reference software run: full HELR sigmoid on the evaluator,
    // populating the eval.* / keyswitch.* / rns.* / ntt.* scopes.
    let eval = Evaluator::new(&ctx);
    let model = LogisticModel::new(&weights, bias);
    let _score = model.score(&eval, &keys, &ct);

    // Machine run of the kernel through the shared trait: every element
    // retired by an operator core is counted AND timed.
    let mut machine = PoseidonMachine::new(&ctx, 256, 2);
    let out = helr_kernel(&mut machine, &ctx, &keys, &ct, &weights, bias);
    let got = {
        let pt = keys.secret().decrypt(&out);
        ctx.encoder()
            .decode_rns(pt.poly(), pt.scale(), weights.len())[0]
            .re
    };
    let logit: f64 = weights
        .iter()
        .zip(&[0.3, 0.4, 0.5, 0.6])
        .map(|(w, x)| w * x)
        .sum::<f64>()
        + bias;
    println!(
        "workload          : HELR scoring, N=2^11, L={} (z3 check: {:.4} vs {:.4})",
        ctx.max_level(),
        got,
        logit.powi(3)
    );

    println!("\n-- operator pool (machine HELR kernel, measured) --");
    let usage = machine.usage();
    let snap = machine.pool_mut().snapshot();
    print!("{}", snap.to_text_table());
    let mut exact = true;
    for (scope, count) in [
        ("pool.ma", usage.ma),
        ("pool.mm", usage.mm),
        ("pool.ntt", usage.ntt),
        ("pool.auto", usage.auto),
        ("pool.sbt", usage.sbt),
    ] {
        let items = snap.get(scope).map_or(0, |s| s.items);
        if items != count {
            exact = false;
            println!("  MISMATCH {scope}: telemetry {items} != usage {count}");
        }
    }
    println!(
        "telemetry vs OperatorPool::usage(): {}",
        if exact { "exact agreement" } else { "MISMATCH" }
    );

    // Fig. 7 shape: element share per operator, decomposition model vs
    // the machine's measured counters for the same basic-op mix.
    println!("\n-- operator composition, model vs measured (Fig. 7 shape) --");
    let p = OpParams::new(ctx.n(), ctx.max_level() + 1, ctx.special_basis().len());
    let kernel_ops = [
        (BasicOp::PMult, 1u64),
        (BasicOp::Rotation, 2),
        (BasicOp::HAdd, 3),
        (BasicOp::CMult, 2),
        (BasicOp::Rescale, 3),
    ];
    let mut predicted = poseidon_core::OperatorCounts::ZERO;
    for (op, times) in kernel_ops {
        predicted += op.operator_counts(&p) * times;
    }
    let ptotal = predicted.total() as f64;
    let mtotal = usage.total() as f64;
    println!("{:<14} {:>9} {:>10}", "Operator", "model %", "measured %");
    for op in Operator::ALL {
        println!(
            "{:<14} {:>8.1}% {:>9.1}%",
            op.to_string(),
            100.0 * predicted.get(op) as f64 / ptotal,
            100.0 * usage.get(op) as f64 / mtotal,
        );
    }

    println!("\n-- all instrumented scopes (global registry) --");
    print!(
        "{}",
        poseidon_telemetry::Registry::global()
            .snapshot()
            .to_text_table()
    );
}

/// `tables faults` without the `faults` feature: the injector hooks are
/// compiled out, so point at the instrumented build.
#[cfg(not(feature = "faults"))]
pub fn faults() {
    println!("fault injection is compiled out of this build (all hooks are no-ops).");
    println!("rebuild with:");
    println!("  cargo run -p poseidon-bench --features faults --bin tables -- faults");
}

/// `tables faults`: the datapath-integrity evaluation. Sweeps seeded
/// single-upset campaigns over every fault site against a checked
/// keyswitch workload (CMult + rotation through [`CheckedEvaluator`]),
/// reporting per-site detection, recovery, and escalation counts, then
/// measures the wall-clock overhead the duplicated checked execution adds
/// over the plain evaluator. EXPERIMENTS.md records the sweep.
///
/// [`CheckedEvaluator`]: he_ckks::integrity::CheckedEvaluator
#[cfg(feature = "faults")]
pub fn faults() {
    use he_ckks::cipher::{Ciphertext, Plaintext};
    use he_ckks::context::CkksContext;
    use he_ckks::encoding::Complex;
    use he_ckks::error::EvalError;
    use he_ckks::eval::Evaluator;
    use he_ckks::integrity::{integrity_stats, CheckedEvaluator};
    use he_ckks::keys::KeySet;
    use he_ckks::params::CkksParams;
    use poseidon_faults::{FaultKind, FaultPlan, FaultSite};
    use poseidon_sim::hbm::HbmLayout;
    use rand::SeedableRng;
    use std::time::Instant;

    let _guard = poseidon_faults::test_lock();
    poseidon_faults::disarm();

    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xFA7E);
    let mut keys = KeySet::generate(&ctx, &mut rng);
    keys.add_rotation_key(1, &mut rng);
    let checked = CheckedEvaluator::new(&ctx);
    let eval = Evaluator::new(&ctx);
    let encrypt = |v: f64, rng: &mut rand::rngs::StdRng| {
        let z = vec![Complex::new(v, 0.0)];
        let pt = Plaintext::new(
            ctx.encoder()
                .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
            ctx.default_scale(),
        );
        keys.public().encrypt(&pt, rng)
    };
    let a = encrypt(1.25, &mut rng);
    let b = encrypt(-0.5, &mut rng);
    let clean_mul = eval.mul(&a, &b, &keys);
    let clean_rot = eval.rotate(&a, 1, &keys);

    // The checked workload a campaign attacks: one relinearising CMult and
    // one rotation — together they traverse every evaluator-side site
    // (residues, twiddles, key cache, par scratch).
    let workload = |checked: &CheckedEvaluator| -> [Result<Ciphertext, EvalError>; 2] {
        [checked.mul(&a, &b, &keys), checked.rotate(&a, 1, &keys)]
    };

    const SEEDS: u64 = 8;
    println!("single-upset campaigns: {SEEDS} seeded transient BitFlips per site");
    println!("workload: CMult + rotation through CheckedEvaluator (N=2^10 toy chain)");
    println!(
        "\n{:<14} {:>6} {:>9} {:>9} {:>10} {:>11}",
        "site", "fired", "detected", "retried", "escalated", "bit-exact"
    );
    let eval_sites = [
        FaultSite::RnsResidue,
        FaultSite::NttTwiddle,
        FaultSite::KeyCache,
        FaultSite::ParScratch,
    ];
    for site in eval_sites {
        let (mut fired, mut exact) = (0u64, 0u64);
        let before = integrity_stats();
        for seed in 0..SEEDS {
            poseidon_faults::arm(FaultPlan::transient(site, FaultKind::BitFlip, seed));
            let out = workload(&checked);
            fired += poseidon_faults::fired();
            poseidon_faults::disarm();
            if out[0].as_ref() == Ok(&clean_mul) && out[1].as_ref() == Ok(&clean_rot) {
                exact += 1;
            }
        }
        let d = integrity_stats();
        println!(
            "{:<14} {:>6} {:>9} {:>9} {:>10} {:>8}/{}",
            site.as_str(),
            fired,
            d.detected - before.detected,
            d.retried - before.retried,
            d.escalated - before.escalated,
            exact,
            SEEDS,
        );
    }

    // The HBM channel site is attacked through the data-bearing stream
    // model; detection there is the transfer-level checksum (FNV over the
    // streamed words), the stand-in for a per-channel CRC.
    {
        let layout = HbmLayout::from_config(&poseidon_sim::AcceleratorConfig::poseidon_u280());
        let clean: Vec<u64> = (0..(1u64 << 12)).map(|i| i.wrapping_mul(0x9E37)).collect();
        let reference = he_rns::integrity::fnv1a_words(&clean);
        let (mut fired, mut caught) = (0u64, 0u64);
        for seed in 0..SEEDS {
            poseidon_faults::arm(FaultPlan::transient(
                FaultSite::HbmChannel,
                FaultKind::BitFlip,
                seed,
            ));
            let mut words = clean.clone();
            layout.stream_through(&mut words);
            fired += poseidon_faults::fired();
            poseidon_faults::disarm();
            if he_rns::integrity::fnv1a_words(&words) != reference {
                caught += 1;
            }
        }
        println!(
            "{:<14} {:>6} {:>9} {:>9} {:>10} {:>8}  (transfer checksum)",
            FaultSite::HbmChannel.as_str(),
            fired,
            caught,
            0,
            0,
            "-",
        );
    }
    println!(
        "note: par_scratch upsets are architecturally masked — recycled \
         scratch is write-before-read,\nso corrupted stale words are \
         overwritten before any butterfly consumes them (bit-exact 8/8)."
    );

    // Persistent (stuck-element) campaigns must end in a typed escalation,
    // never a panic and never a silently wrong ciphertext.
    println!("\npersistent campaigns: 4 seeded every-hit BitFlips per site");
    println!("{:<14} {:>10} {:>10}", "site", "escalated", "wrong-bits");
    for site in eval_sites {
        let (mut escalated, mut wrong) = (0u64, 0u64);
        for seed in 0..4 {
            poseidon_faults::arm(FaultPlan::persistent(site, FaultKind::BitFlip, seed));
            for out in workload(&checked) {
                match out {
                    Err(EvalError::IntegrityFault { .. }) => escalated += 1,
                    Err(_) => {}
                    Ok(ct) => {
                        if ct != clean_mul && ct != clean_rot {
                            wrong += 1;
                        }
                    }
                }
            }
            poseidon_faults::disarm();
        }
        println!("{:<14} {:>8}/8 {:>10}", site.as_str(), escalated, wrong);
    }

    // Overhead: duplicated checked execution vs the plain evaluator on the
    // same keyswitch-bearing operation (disarmed injector — the fast path).
    const REPS: u32 = 10;
    let t0 = Instant::now();
    for _ in 0..REPS {
        std::hint::black_box(eval.mul(&a, &b, &keys));
    }
    let plain = t0.elapsed().as_secs_f64() / f64::from(REPS);
    let t1 = Instant::now();
    for _ in 0..REPS {
        std::hint::black_box(checked.mul(&a, &b, &keys).expect("clean"));
    }
    let dmr = t1.elapsed().as_secs_f64() / f64::from(REPS);
    println!("\n-- checked-execution overhead (disarmed hooks, CMult w/ relin) --");
    println!("plain evaluator   {:>9.3} ms", plain * 1e3);
    println!(
        "checked (DMR x2)  {:>9.3} ms   {:.2}x",
        dmr * 1e3,
        dmr / plain
    );

    let s = integrity_stats();
    println!(
        "\ncumulative integrity counters: checked {} detected {} retried {} escalated {}",
        s.checked, s.detected, s.retried, s.escalated
    );
}

/// `tables serve`: the batch-serving layer in one table — wire frame
/// sizes for the payloads crossing the TCP boundary, served operations
/// checked bit-for-bit against the bare evaluator, and an 8-rotation
/// burst timed per-call (eight singleton batches, eight hoisted lifts)
/// versus coalesced (one batch, one lift). With `--features telemetry`
/// the hoist counters backing the claim are printed too.
pub fn serve() {
    use he_ckks::cipher::Plaintext;
    use he_ckks::context::CkksContext;
    use he_ckks::encoding::Complex;
    use he_ckks::eval::Evaluator;
    use he_ckks::keys::KeySet;
    use he_ckks::params::CkksParams;
    use poseidon_serve::{EvalService, Request, ServiceConfig};
    use rand::SeedableRng;
    use std::time::Instant;

    let steps: Vec<i64> = (1..=8).collect();
    let ctx = CkksContext::new(CkksParams::paper_32bit(1 << 12, 4));
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5E4E);
    let mut keys = KeySet::generate(&ctx, &mut rng);
    for &s in &steps {
        keys.add_rotation_key(s, &mut rng);
    }
    let eval = Evaluator::new(&ctx);
    let z: Vec<Complex> = (0..8).map(|i| Complex::new(0.1 * i as f64, 0.0)).collect();
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
        ctx.default_scale(),
    );
    let a = keys.public().encrypt(&pt, &mut rng);
    let b = keys.public().encrypt(&pt, &mut rng);

    println!("N=2^12, L={} (4 chain primes + 1 special)", ctx.max_level());

    // -- wire frames -------------------------------------------------------
    let ct_frame = poseidon_wire::encode_ciphertext(&ctx, &a);
    let pk_frame = poseidon_wire::encode_keyset_public(&ctx, &keys);
    let pt_frame = poseidon_wire::encode_plaintext(&ctx, &pt);
    println!("\n-- wire frame sizes --");
    println!("{:<26} {:>12}", "frame", "bytes");
    println!("{:<26} {:>12}", "ciphertext", ct_frame.len());
    println!("{:<26} {:>12}", "plaintext", pt_frame.len());
    println!("{:<26} {:>12}", "public keyset (+8 rot)", pk_frame.len());
    let back = poseidon_wire::decode_ciphertext(&ctx, &ct_frame).expect("round trip");
    assert_eq!(back.c0(), a.c0(), "wire round trip changed ciphertext bits");

    // -- served ops vs the bare evaluator ---------------------------------
    let service = EvalService::start(ServiceConfig::default());
    service.register_tenant("tables", ctx.clone(), keys.clone());
    let served = service
        .call(
            "tables",
            Request::Mul {
                a: a.clone(),
                b: b.clone(),
            },
        )
        .expect("served mul");
    let local = eval.mul(&a, &b, &keys);
    assert_eq!(served.c0(), local.c0(), "served mul diverged from local");
    println!("\nserved CMult is bit-identical to the local evaluator");

    // -- 8-rotation burst: per-call vs coalesced --------------------------
    #[cfg(feature = "telemetry")]
    let reg = poseidon_telemetry::Registry::global();
    #[cfg(feature = "telemetry")]
    let hoists = |d: &poseidon_telemetry::Snapshot| d.get("keyswitch.hoist").map_or(0, |s| s.count);

    #[cfg(feature = "telemetry")]
    let before = reg.snapshot();
    let t0 = Instant::now();
    let per_call: Vec<_> = steps
        .iter()
        .map(|&s| {
            service
                .call(
                    "tables",
                    Request::Rotate {
                        a: a.clone(),
                        steps: s,
                    },
                )
                .expect("served rotate")
        })
        .collect();
    let per_call_t = t0.elapsed().as_secs_f64();
    #[cfg(feature = "telemetry")]
    let per_call_hoists = hoists(&reg.snapshot().since(&before));

    #[cfg(feature = "telemetry")]
    let before = reg.snapshot();
    let t1 = Instant::now();
    service.suspend();
    let tickets: Vec<_> = steps
        .iter()
        .map(|&s| {
            service
                .submit(
                    "tables",
                    Request::Rotate {
                        a: a.clone(),
                        steps: s,
                    },
                )
                .expect("submit")
        })
        .collect();
    service.resume();
    let batched: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().expect("batched rotate"))
        .collect();
    let batched_t = t1.elapsed().as_secs_f64();
    #[cfg(feature = "telemetry")]
    let batched_hoists = hoists(&reg.snapshot().since(&before));

    for (p, q) in per_call.iter().zip(&batched) {
        assert_eq!(p.c0(), q.c0(), "batched rotation diverged from per-call");
    }
    service.shutdown();

    println!("\n-- 8-rotation burst, one ciphertext (bit-identical outputs) --");
    println!("{:<26} {:>10} {:>8}", "schedule", "ms", "hoists");
    #[cfg(feature = "telemetry")]
    {
        println!(
            "{:<26} {:>10.3} {:>8}",
            "per-call (8 batches)",
            per_call_t * 1e3,
            per_call_hoists
        );
        println!(
            "{:<26} {:>10.3} {:>8}",
            "coalesced (1 batch)",
            batched_t * 1e3,
            batched_hoists
        );
        assert!(
            batched_hoists < per_call_hoists,
            "coalesced batch must hoist fewer times than per-call"
        );
    }
    #[cfg(not(feature = "telemetry"))]
    {
        println!(
            "{:<26} {:>10.3} {:>8}",
            "per-call (8 batches)",
            per_call_t * 1e3,
            "n/a"
        );
        println!(
            "{:<26} {:>10.3} {:>8}",
            "coalesced (1 batch)",
            batched_t * 1e3,
            "n/a"
        );
        println!("(rebuild with --features telemetry for the hoist counters)");
    }
}

/// `tables serve_scale` — sharded multi-dispatcher serving throughput.
///
/// Drives the mixed add/mul/rotation workload of
/// [`crate::serve_scale`] over the TCP loopback: a blocking
/// request-per-roundtrip baseline on a single dispatcher (the pre-mux
/// stack's behaviour — queues never fill, rotations never coalesce),
/// then the pipelined multiplexing client against 1, 2, and 4 shards
/// and against 1 and 4 tenants. Every cell's response digest must be
/// identical: sharding, stealing, and pipelining are scheduling-only.
pub fn serve_scale() {
    use crate::serve_scale::{requests_per_tenant, run_cell, Harness};

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let h = Harness::new();
    println!(
        "N=2^12, L=4+special; {} requests/tenant ({} rotations : {} adds : {} muls per round, {} rounds); host cores: {}",
        requests_per_tenant(),
        crate::serve_scale::ROT_STEPS.len(),
        crate::serve_scale::ADDS_PER_ROUND,
        crate::serve_scale::MULS_PER_ROUND,
        crate::serve_scale::ROUNDS,
        cores,
    );
    println!(
        "keyset frame: {} bytes (chunk-streamed registration), ciphertext frame: {} bytes",
        h.keyset_frame.len(),
        h.frame_a.len()
    );

    #[cfg(feature = "telemetry")]
    let reg = poseidon_telemetry::Registry::global();

    let baseline = run_cell(&h, 1, 4, false);

    // The tentpole cell — 4 shards, 4 tenants, pipelined — with the
    // coalescing counters watched under telemetry.
    #[cfg(feature = "telemetry")]
    let before = reg.snapshot();
    let tentpole = run_cell(&h, 4, 4, true);
    #[cfg(feature = "telemetry")]
    {
        let diff = reg.snapshot().since(&before);
        let hoists = diff.get("keyswitch.hoist").map_or(0, |s| s.count);
        let rotations =
            (crate::serve_scale::ROT_STEPS.len() * crate::serve_scale::ROUNDS * 4) as u64;
        let (_, stolen) = diff.sum_prefix("serve.steal");
        println!(
            "coalescing under shard affinity: {rotations} rotations -> {hoists} hoisted lifts ({stolen} jobs stolen)"
        );
        assert!(
            hoists < rotations,
            "pipelined shard queues must coalesce same-ciphertext rotations \
             ({hoists} hoists for {rotations} rotations)"
        );
    }

    let cells = [
        run_cell(&h, 1, 4, true),
        run_cell(&h, 2, 4, true),
        run_cell(&h, 4, 1, true),
    ];

    println!(
        "\n{:<12} {:>7} {:>8} {:>9} {:>10} {:>10} {:>10}",
        "mode", "shards", "tenants", "requests", "req/s", "p99 ms", "digest"
    );
    let mut rows = vec![&baseline, &tentpole];
    rows.extend(cells.iter());
    for c in &rows {
        println!(
            "{:<12} {:>7} {:>8} {:>9} {:>10.1} {:>10.2} {:>10x}",
            c.mode, c.shards, c.tenants, c.requests, c.rps, c.p99_ms, c.digest
        );
    }

    // Bit-identity: every 4-tenant cell must produce the same digest.
    for c in &rows {
        if c.tenants == baseline.tenants {
            assert_eq!(
                c.digest, baseline.digest,
                "{} x{} shards diverged from the baseline digest",
                c.mode, c.shards
            );
        }
    }
    println!("\nall 4-tenant schedules produced bit-identical response frames");

    let speedup = tentpole.rps / baseline.rps;
    println!(
        "4 shards (pipelined) vs single-dispatcher blocking baseline: {speedup:.2}x requests/sec"
    );
    if cores >= 4 {
        assert!(
            speedup >= 2.0,
            "acceptance: >= 2x sustained requests/sec at 4 shards (got {speedup:.2}x)"
        );
    } else {
        println!(
            "(acceptance >= 2x expects >= 4 cores so shard workers run in parallel; \
             this host has {cores} — crypto work serializes and the ratio reflects \
             scheduling/coalescing effects only; see EXPERIMENTS.md)"
        );
    }
}
