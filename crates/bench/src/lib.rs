//! Benchmark-harness library: table/figure regenerators and timing helpers
//! shared by the `tables` binary and the Criterion benches.

pub mod chaos;
pub mod cpu_baseline;
pub mod planner;
pub mod planner2;
pub mod serve_scale;
pub mod tables;

/// Repo-root path for a benchmark export (`BENCH_*.json`).
///
/// Benches and the `tables` binary can be launched from the workspace
/// root, from `crates/bench`, or from wherever CI happens to `cd` —
/// resolving against `CARGO_MANIFEST_DIR` (baked in at compile time)
/// instead of the current working directory pins every export to one
/// canonical location: the repository root.
pub fn export_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name)
}
