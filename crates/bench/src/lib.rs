//! Benchmark-harness library: table/figure regenerators and timing helpers
//! shared by the `tables` binary and the Criterion benches.

pub mod cpu_baseline;
pub mod tables;
