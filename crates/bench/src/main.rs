//! `tables` — regenerates every table and figure of the Poseidon HPCA'23
//! evaluation section from the model and the functional library.
//!
//! Usage: `tables [all|table1|...|table12|fig7|...|fig12|metrics|ntt|hoisting|faults|chaos|serve|serve_scale|plan|plan2]`
//!
//! `tables chaos` (build with `--features faults`) runs the seeded
//! network/worker chaos campaign through the resilient TCP client and
//! proves every injected failure resolves bit-identically or as a typed
//! error; without the feature it prints the unfaulted serve digest CI
//! diffs against the instrumented build.
//!
//! `tables plan` (build with `--features telemetry`) compiles every
//! shipped `.pos` program through the graph-level evaluation planner and
//! prints unplanned-vs-planned forward-NTT counts, hoist batch sizes,
//! rescale placement and wall time, exporting `BENCH_planner.json`.
//!
//! `tables plan2` (build with `--features telemetry`) submits every
//! shipped `.pos` program to the serving stack twice — once as a whole
//! planned program (`Request::Program`, opcode 12) and once as the
//! naive op-by-op dispatch a planless client would issue — and compares
//! forward-NTT counts and wall time, exporting `BENCH_planner2.json`.
//!
//! `tables serve_scale` sweeps the sharded serving stack (blocking
//! baseline vs the pipelined mux client at 1/2/4 shards and 1/4
//! tenants) and digest-checks that every schedule is bit-identical.
//!
//! `tables ntt` times every butterfly kernel (`scalar`, `lazy`,
//! `fused_radix8`) across ring degrees and reports the end-to-end delta
//! on the 8-rotation hoisting workloads.
//!
//! `tables metrics` (build with `--features telemetry`) prints the
//! runtime per-operator telemetry for a HELR workload.
//!
//! `tables faults` (build with `--features faults`) sweeps seeded fault
//! campaigns over every injection site and reports detection/recovery.
//!
//! Each regenerator prints the same rows/series the paper reports;
//! `published` columns are the paper's own numbers, `model`/`measured`
//! columns come from this reproduction. EXPERIMENTS.md records the
//! comparison.

use poseidon_bench::{chaos, planner, planner2, tables};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    if which == "run" {
        let path = std::env::args().nth(2).unwrap_or_else(|| {
            eprintln!("usage: tables run <program-file>");
            std::process::exit(2);
        });
        tables::run_program(&path);
        return;
    }
    let all = which == "all";
    let mut ran = false;
    let mut run = |name: &str, f: fn()| {
        if all || which == name {
            println!("\n================ {name} ================");
            f();
            ran = true;
        }
    };
    run("table1", tables::table1_operator_usage);
    run("table2", tables::table2_ntt_fusion);
    run("table3", tables::table3_access_pattern);
    run("table4", tables::table4_basic_ops);
    run("fig7", tables::fig7_operator_composition);
    run("table6", tables::table6_full_system);
    run("fig8", tables::fig8_time_breakdown);
    run("fig9", tables::fig9_operator_breakdown);
    run("table7", tables::table7_bandwidth);
    run("table8", tables::table8_auto_resources);
    run("table9", tables::table9_auto_ablation);
    run("fig10", tables::fig10_fusion_sweep);
    run("fig11", tables::fig11_lane_sweep);
    run("fig12", tables::fig12_energy);
    run("table10", tables::table10_edp);
    run("table11", tables::table11_core_resources);
    run("table12", tables::table12_fpga_comparison);
    run("ablations", tables::ablations);
    run("parallel", tables::parallel_scaling);
    run("pipeline", tables::pipeline);
    run("metrics", tables::metrics);
    run("ntt", tables::ntt);
    run("hoisting", tables::hoisting);
    run("faults", tables::faults);
    run("chaos", chaos::chaos);
    run("serve", tables::serve);
    run("serve_scale", tables::serve_scale);
    run("plan", planner::plan);
    run("plan2", planner2::plan2);
    if !ran {
        eprintln!("unknown selector `{which}`");
        std::process::exit(2);
    }
}

// (The `run` subcommand lives in tables::run_program; dispatched before
// the table selectors in `main` via early return.)
