//! `tables plan2`: planned-program serving vs op-by-op dispatch.
//!
//! PR 9's serving stack executes one wire op per request; planner
//! phase 2 adds `SubmitProgram`, which ships a whole `.pos` program and
//! lets the server compile it through the evaluation planner and run it
//! as one admission-controlled unit. This regenerator measures what that
//! buys: for every shipped program, the op-by-op baseline walks the
//! compiled graph client-side and issues each node as an individual
//! blocking request (no batching window ever forms, so no rotation ever
//! hoists — the honest naive-client shape), while the program path
//! submits the same text once. Forward-NTT counts and wall time are
//! compared, outputs are checked for agreement, and the table is
//! exported as `BENCH_planner2.json`.
//!
//! `bsgs_matvec.pos` pins the headline claim: the planned program must
//! at least halve `ntt.forward` against op-by-op dispatch, because its
//! rotation fan hoists server-side only when the server can see the
//! whole dataflow.

#[cfg(not(feature = "telemetry"))]
pub fn plan2() {
    println!("telemetry is compiled out of this build (all probes are no-ops).");
    println!("rebuild with:");
    println!("  cargo run -p poseidon-bench --features telemetry --bin tables -- plan2");
}

#[cfg(feature = "telemetry")]
pub fn plan2() {
    use he_ckks::cipher::{Ciphertext, Plaintext};
    use he_ckks::context::CkksContext;
    use he_ckks::encoding::Complex;
    use he_ckks::eval::Evaluator;
    use he_ckks::keys::KeySet;
    use he_ckks::params::CkksParams;
    use poseidon_core::plan::{compile_trace, CompileOptions, GraphOp, Plan};
    use poseidon_serve::{EvalService, Request, ServiceConfig};
    use poseidon_telemetry::{Registry, Snapshot};
    use rand::SeedableRng;
    use std::time::Instant;

    const SLOTS: usize = 8;

    let ctx = CkksContext::new(CkksParams::small());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x9_2B_3C);
    let mut keys = KeySet::generate(&ctx, &mut rng);
    keys.add_rotation_keys(1..=8i64, &mut rng);
    let reg = Registry::global();
    let fwd = |d: &Snapshot| d.get("ntt.forward").map_or(0, |s| s.count);

    let service = EvalService::start(ServiceConfig::default());
    service.register_tenant("bench", ctx.clone(), keys.clone());

    let encrypt = |rng: &mut rand::rngs::StdRng, seed: f64| -> Ciphertext {
        let z: Vec<Complex> = (0..SLOTS)
            .map(|i| Complex::new(seed + 0.06 * i as f64, 0.0))
            .collect();
        let pt = Plaintext::new(
            ctx.encoder()
                .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
            ctx.default_scale(),
        );
        keys.public().encrypt(&pt, rng)
    };
    let decrypt = |ct: &Ciphertext| -> Vec<f64> {
        let pt = keys.secret().decrypt(ct);
        ctx.encoder()
            .decode_rns(pt.poly(), pt.scale(), SLOTS)
            .iter()
            .map(|z| z.re)
            .collect()
    };

    struct Row {
        name: String,
        requests_op_by_op: usize,
        ntt_op_by_op: u64,
        ntt_program: u64,
        wall_ms_op_by_op: f64,
        wall_ms_program: f64,
        outputs_agree: bool,
    }
    impl Row {
        fn reduction(&self) -> f64 {
            if self.ntt_op_by_op == 0 {
                1.0
            } else {
                self.ntt_op_by_op as f64 / self.ntt_program.max(1) as f64
            }
        }
    }

    // Op-by-op baseline: walk the compiled graph in creation order and
    // dispatch every node as its own blocking request. `Input` binds the
    // seed ciphertext and `DropToLevel` is client-side modulus
    // truncation (no arithmetic, not a serving op) — everything else
    // round-trips through the service.
    let op_by_op = |graph: &poseidon_core::plan::EvalGraph,
                    seed: &Ciphertext|
     -> (Ciphertext, usize) {
        let local = Evaluator::new(&ctx);
        let unplanned = Plan::passthrough(graph.clone());
        let mut slots: Vec<Option<Ciphertext>> = vec![None; graph.values().len()];
        let mut dispatched = 0usize;
        let arg = |slots: &[Option<Ciphertext>], v: poseidon_core::plan::ValueId| -> Ciphertext {
            slots[v.index()].clone().expect("value produced in order")
        };
        for &nid in &unplanned.schedule {
            let node = graph.node(nid);
            let mut served = |req: Request| {
                dispatched += 1;
                service.call("bench", req).expect("served op")
            };
            let out = match &node.op {
                GraphOp::Input { slot: _ } => seed.clone(),
                GraphOp::DropToLevel { level } => {
                    local.drop_to_level(&arg(&slots, node.inputs[0]), *level)
                }
                GraphOp::Add => served(Request::Add {
                    a: arg(&slots, node.inputs[0]),
                    b: arg(&slots, node.inputs[1]),
                }),
                GraphOp::Sub => served(Request::Sub {
                    a: arg(&slots, node.inputs[0]),
                    b: arg(&slots, node.inputs[1]),
                }),
                GraphOp::Mul => served(Request::Mul {
                    a: arg(&slots, node.inputs[0]),
                    b: arg(&slots, node.inputs[1]),
                }),
                GraphOp::Square => served(Request::Square {
                    a: arg(&slots, node.inputs[0]),
                }),
                GraphOp::Rescale => served(Request::Rescale {
                    a: arg(&slots, node.inputs[0]),
                }),
                GraphOp::Rotate { steps } => served(Request::Rotate {
                    a: arg(&slots, node.inputs[0]),
                    steps: *steps,
                }),
                GraphOp::Conjugate => served(Request::Conjugate {
                    a: arg(&slots, node.inputs[0]),
                }),
                GraphOp::AddPlain { pt } => served(Request::AddPlain {
                    a: arg(&slots, node.inputs[0]),
                    pt: graph.plaintexts()[*pt].clone(),
                }),
                GraphOp::MulPlain { pt } => served(Request::MulPlain {
                    a: arg(&slots, node.inputs[0]),
                    pt: graph.plaintexts()[*pt].clone(),
                }),
                GraphOp::RotateMany { .. } | GraphOp::Bootstrap { .. } => {
                    unreachable!("passthrough schedules contain no pass-inserted ops")
                }
            };
            slots[node.outputs[0].index()] = Some(out);
        }
        let last = *graph.outputs().last().expect("program output");
        (arg(&slots, last), dispatched)
    };

    // -- every shipped .pos program ------------------------------------
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../programs");
    let mut names: Vec<_> = std::fs::read_dir(&dir)
        .expect("programs dir")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("pos"))
        .collect();
    names.sort();
    let mut rows: Vec<Row> = Vec::new();
    for path in &names {
        let name = path.file_stem().unwrap().to_string_lossy().to_string();
        let text = std::fs::read_to_string(path).unwrap();
        let trace = poseidon_sim::program::parse(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let compiled = compile_trace(&trace, &ctx, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let seed = encrypt(&mut rng, 0.4);

        // Warmup run populates lazy rotation-key caches on the server.
        let _ = service
            .call(
                "bench",
                Request::Program {
                    text: text.clone(),
                    a: seed.clone(),
                },
            )
            .unwrap_or_else(|e| panic!("{name}: warmup program: {e}"));

        let before = reg.snapshot();
        let t0 = Instant::now();
        let (base_out, dispatched) = op_by_op(&compiled.graph, &seed);
        let wall_o = t0.elapsed().as_secs_f64() * 1e3;
        let d_op = reg.snapshot().since(&before);

        let before = reg.snapshot();
        let t0 = Instant::now();
        let prog_out = service
            .call(
                "bench",
                Request::Program {
                    text: text.clone(),
                    a: seed.clone(),
                },
            )
            .unwrap_or_else(|e| panic!("{name}: program submission: {e}"));
        let wall_p = t0.elapsed().as_secs_f64() * 1e3;
        let d_prog = reg.snapshot().since(&before);

        // The program path re-plans (rescale placement may move), so
        // agreement is at the decrypted-value level.
        let outputs_agree = decrypt(&base_out)
            .iter()
            .zip(decrypt(&prog_out))
            .all(|(x, y)| (x - y).abs() < 1e-3 * x.abs().max(1.0));
        assert!(outputs_agree, "{name}: program path diverged from op-by-op");

        rows.push(Row {
            name,
            requests_op_by_op: dispatched,
            ntt_op_by_op: fwd(&d_op),
            ntt_program: fwd(&d_prog),
            wall_ms_op_by_op: wall_o,
            wall_ms_program: wall_p,
            outputs_agree,
        });
    }
    service.shutdown();

    let bsgs = rows
        .iter()
        .find(|r| r.name == "bsgs_matvec")
        .expect("bsgs_matvec.pos is shipped");
    assert!(
        bsgs.ntt_program * 2 <= bsgs.ntt_op_by_op,
        "bsgs_matvec: expected >=2x ntt.forward reduction from program submission, got {} -> {}",
        bsgs.ntt_op_by_op,
        bsgs.ntt_program
    );

    // -- report ---------------------------------------------------------
    println!(
        "N=2^11, L={}; one tenant, in-process service; counts are ntt.forward invocations",
        ctx.max_level()
    );
    println!(
        "\n{:<18} {:>8} {:>11} {:>11} {:>6} {:>9} {:>9} {:>6}",
        "program", "reqs", "ntt op/op", "ntt prog", "gain", "ms op/op", "ms prog", "agree"
    );
    for r in &rows {
        println!(
            "{:<18} {:>8} {:>11} {:>11} {:>5.2}x {:>9.2} {:>9.2} {:>6}",
            r.name,
            r.requests_op_by_op,
            r.ntt_op_by_op,
            r.ntt_program,
            r.reduction(),
            r.wall_ms_op_by_op,
            r.wall_ms_program,
            if r.outputs_agree { "yes" } else { "no" },
        );
    }
    println!(
        "\nevery program's planned-submission output agrees with the op-by-op \
         dispatch at the decrypted-value level"
    );

    // -- export ----------------------------------------------------------
    let json_row = |r: &Row| -> String {
        format!(
            "{{\"name\":\"{}\",\"requests_op_by_op\":{},\"ntt_forward_op_by_op\":{},\
             \"ntt_forward_program\":{},\"ntt_reduction\":{:.3},\
             \"wall_ms_op_by_op\":{:.3},\"wall_ms_program\":{:.3},\"outputs_agree\":{}}}",
            r.name,
            r.requests_op_by_op,
            r.ntt_op_by_op,
            r.ntt_program,
            r.reduction(),
            r.wall_ms_op_by_op,
            r.wall_ms_program,
            r.outputs_agree,
        )
    };
    let json = format!(
        "{{\n  \"schema\": \"poseidon.bench.planner2.v1\",\n  \"params\": {{\"n\": {}, \"max_level\": {}}},\n  \"programs\": [\n    {}\n  ]\n}}\n",
        ctx.params().n,
        ctx.max_level(),
        rows.iter().map(json_row).collect::<Vec<_>>().join(",\n    "),
    );
    let path = crate::export_path("BENCH_planner2.json");
    std::fs::write(&path, &json).expect("write BENCH_planner2.json");
    println!("wrote {}", path.display());
}
