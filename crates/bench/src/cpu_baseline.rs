//! Measured CPU throughput of the basic operations using our own software
//! CKKS library — the reproduction's stand-in for the paper's
//! single-threaded Xeon 6234 baseline (Table IV's CPU column).

use std::time::Instant;

use he_ckks::cipher::{Ciphertext, Plaintext};
use he_ckks::encoding::Complex;
use he_ckks::prelude::*;
use rand::SeedableRng;

/// A ready-to-measure CKKS working set.
pub struct CpuHarness {
    /// The context.
    pub ctx: CkksContext,
    /// Keys incl. one rotation key.
    pub keys: KeySet,
    /// The evaluator.
    pub eval: Evaluator,
    /// Two fresh ciphertexts.
    pub ct_a: Ciphertext,
    /// Second operand.
    pub ct_b: Ciphertext,
    /// An encoded plaintext operand.
    pub pt: Plaintext,
}

impl CpuHarness {
    /// Builds the harness at ring degree `n` with `chain_len` primes
    /// (32-bit datapath parameters, matching the paper's word width).
    pub fn new(n: usize, chain_len: usize) -> Self {
        let ctx = CkksContext::new(CkksParams::paper_32bit(n, chain_len));
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE);
        let mut keys = KeySet::generate(&ctx, &mut rng);
        keys.add_rotation_key(1, &mut rng);
        let eval = Evaluator::new(&ctx);
        let z: Vec<Complex> = (0..8).map(|i| Complex::new(i as f64 * 0.1, 0.0)).collect();
        let pt = Plaintext::new(
            ctx.encoder()
                .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
            ctx.default_scale(),
        );
        let ct_a = keys.public().encrypt(&pt, &mut rng);
        let ct_b = keys.public().encrypt(&pt, &mut rng);
        Self {
            ctx,
            keys,
            eval,
            ct_a,
            ct_b,
            pt,
        }
    }

    /// Times `f` over `iters` runs, returning operations per second.
    pub fn ops_per_second<F: FnMut()>(&self, iters: u32, mut f: F) -> f64 {
        // One warm-up.
        f();
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        iters as f64 / start.elapsed().as_secs_f64()
    }
}

/// Measured ops/s for the six Table IV operations.
pub fn measure_basic_ops(n: usize, chain_len: usize, iters: u32) -> Vec<(&'static str, f64)> {
    let h = CpuHarness::new(n, chain_len);
    let mut out = Vec::new();

    out.push((
        "HAdd",
        h.ops_per_second(iters * 4, || {
            let _ = h.eval.add(&h.ct_a, &h.ct_b);
        }),
    ));
    out.push((
        "PMult",
        h.ops_per_second(iters, || {
            let _ = h.eval.mul_plain(&h.ct_a, &h.pt);
        }),
    ));
    out.push((
        "CMult",
        h.ops_per_second(iters, || {
            let _ = h.eval.mul(&h.ct_a, &h.ct_b, &h.keys);
        }),
    ));
    // NTT: one forward transform per chain prime on a ring element.
    let poly = h.ct_a.c0().clone();
    out.push((
        "NTT",
        h.ops_per_second(iters, || {
            let _ = poly.clone().into_eval();
        }),
    ));
    out.push((
        "Keyswitch",
        h.ops_per_second(iters, || {
            let _ = h.eval.keyswitch(h.ct_a.c1(), h.keys.relin());
        }),
    ));
    out.push((
        "Rotation",
        h.ops_per_second(iters, || {
            let _ = h.eval.rotate(&h.ct_a, 1, &h.keys);
        }),
    ));
    out.push((
        "Rescale",
        h.ops_per_second(iters, || {
            let _ = h.eval.rescale(&h.ct_a);
        }),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_operations_run() {
        let h = CpuHarness::new(1 << 10, 3);
        let sum = h.eval.add(&h.ct_a, &h.ct_b);
        assert_eq!(sum.level(), h.ct_a.level());
        let rate = h.ops_per_second(2, || {
            let _ = h.eval.add(&h.ct_a, &h.ct_b);
        });
        assert!(rate > 0.0);
    }

    #[test]
    fn measure_returns_all_operations() {
        let rows = measure_basic_ops(1 << 10, 3, 1);
        assert_eq!(rows.len(), 7);
        assert!(rows.iter().all(|(_, v)| *v > 0.0));
        // Cheap ops must be faster than CMult.
        let hadd = rows.iter().find(|(n, _)| *n == "HAdd").unwrap().1;
        let cmult = rows.iter().find(|(n, _)| *n == "CMult").unwrap().1;
        assert!(hadd > cmult);
    }
}
