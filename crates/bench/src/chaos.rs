//! Network/worker chaos campaign over the resilient serving stack.
//!
//! The campaign drives a fixed single-request workload through
//! [`ResilientClient`] against a loopback [`EvalService`] while a seeded
//! fault plan attacks one site per scenario — socket reads and writes
//! (corruption, truncation, disconnect, stall), mid-frame stalls (the
//! slowloris shape), and dispatcher workers (panic, stall). Every run
//! must land in one of two buckets:
//!
//! - **bit-identical success** — the reply, possibly after reconnect,
//!   retry, replay, or watchdog failover, matches the unfaulted bytes;
//! - **typed error** — a [`ServeError`] variant, never a hang, never a
//!   lost reply, never an escaped panic.
//!
//! A reply with *different* bytes would be a correctness bug and is
//! counted separately (`mismatches`, asserted zero in CI).
//!
//! `tables chaos` prints the campaign table; `benches/chaos.rs` exports
//! the same results as `BENCH_chaos.json`. Both builds (with and
//! without the `faults` feature) also print an order-independent FNV
//! digest of an unfaulted serving workload — CI diffs the two to prove
//! the chaos hooks compile out bit-identically.
//!
//! [`ResilientClient`]: poseidon_serve::tcp::ResilientClient
//! [`EvalService`]: poseidon_serve::EvalService
//! [`ServeError`]: poseidon_serve::ServeError

use std::sync::Arc;

use he_ckks::cipher::Plaintext;
use he_ckks::context::CkksContext;
use he_ckks::encoding::Complex;
use he_ckks::keys::KeySet;
use he_ckks::params::CkksParams;
use poseidon_serve::tcp::{self, Op};
use poseidon_serve::{EvalService, ServiceConfig};
use rand::SeedableRng;

/// Deterministic client-side fixture: operand frames and the tenant
/// key set for the toy-parameter chaos workload.
pub struct Fixture {
    /// The toy CKKS context the frames were encoded under.
    pub ctx: CkksContext,
    /// Operand ciphertext frame.
    pub frame: Vec<u8>,
    /// Second operand (additions).
    pub frame_b: Vec<u8>,
    /// Public key-set frame (rotation key for step 1 included).
    pub keyset_frame: Vec<u8>,
}

impl Fixture {
    /// Builds the fixed-seed fixture.
    pub fn new() -> Self {
        let ctx = CkksContext::new(CkksParams::toy());
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC405);
        let mut keys = KeySet::generate(&ctx, &mut rng);
        keys.add_rotation_key(1, &mut rng);
        let z: Vec<Complex> = (0..4).map(|i| Complex::new(0.25 * i as f64, 0.1)).collect();
        let pt = Plaintext::new(
            ctx.encoder()
                .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
            ctx.default_scale(),
        );
        let a = keys.public().encrypt(&pt, &mut rng);
        let b = keys.public().encrypt(&pt, &mut rng);
        Self {
            frame: poseidon_wire::encode_ciphertext(&ctx, &a),
            frame_b: poseidon_wire::encode_ciphertext(&ctx, &b),
            keyset_frame: poseidon_wire::encode_keyset_public(&ctx, &keys),
            ctx,
        }
    }
}

impl Default for Fixture {
    fn default() -> Self {
        Self::new()
    }
}

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Order-independent FNV-1a digest of an unfaulted serving workload
/// (rotations, adds, muls over the loopback TCP stack). Identical in
/// `faults` and non-`faults` builds when no plan is armed — the
/// bit-exactness witness CI diffs across the two builds.
pub fn serve_digest() -> u64 {
    let f = Fixture::new();
    let service = EvalService::start(ServiceConfig::default());
    let (addr, _accept) = tcp::listen(Arc::clone(&service), "127.0.0.1:0").expect("bind loopback");
    let client = tcp::Client::connect(addr).expect("connect");
    client
        .register_tenant("acme", &f.keyset_frame)
        .expect("register");
    let ops: Vec<Op<'_>> = vec![
        Op::Rotate {
            a: &f.frame,
            steps: 1,
        },
        Op::Add {
            a: &f.frame,
            b: &f.frame_b,
        },
        Op::Mul {
            a: &f.frame,
            b: &f.frame_b,
        },
        Op::Rescale { a: &f.frame },
        Op::Square { a: &f.frame },
    ];
    let mut digest = 0u64;
    for (i, op) in ops.iter().enumerate() {
        let reply = client
            .request("acme", *op)
            .expect("unfaulted request")
            .expect("ciphertext reply");
        digest ^= fnv(
            fnv(0xcbf2_9ce4_8422_2325, &(i as u64).to_le_bytes()),
            &reply,
        );
    }
    service.shutdown();
    digest
}

/// `tables chaos` without the `faults` feature: hooks are compiled out;
/// print the digest for the CI bit-exactness diff and point at the
/// instrumented build.
#[cfg(not(feature = "faults"))]
pub fn chaos() {
    println!(
        "serve digest (faults compiled out): {:#018x}",
        serve_digest()
    );
    println!("chaos injection is compiled out of this build (all hooks are no-ops).");
    println!("rebuild with:");
    println!("  cargo run -p poseidon-bench --features faults --bin tables -- chaos");
}

/// One scenario's aggregate outcome across its seeds.
#[cfg(feature = "faults")]
pub struct ScenarioOutcome {
    /// Fault site attacked.
    pub site: &'static str,
    /// Fault kind injected.
    pub kind: &'static str,
    /// Seeded runs performed.
    pub seeds: u64,
    /// Runs that ended with the unfaulted bytes (possibly via retry,
    /// replay, or failover).
    pub bit_identical: u64,
    /// Runs that ended with a typed [`poseidon_serve::ServeError`].
    pub typed_errors: u64,
    /// Runs that returned *wrong* bytes — a correctness bug; must be 0.
    pub mismatches: u64,
    /// Total injector fires across the seeds.
    pub fired: u64,
    /// Total client resubmissions across the seeds.
    pub retries: u64,
    /// Total reconnections across the seeds (1 per run is the
    /// fault-free baseline).
    pub connects: u64,
    /// Slowest single run, milliseconds — bounded by the retry budget,
    /// far below it in the common case; a hang would blow through it.
    pub max_elapsed_ms: f64,
}

/// Runs the full campaign: every scenario in the site×kind matrix,
/// [`CAMPAIGN_SEEDS`] seeded transient plans each, a fresh service and
/// client per run.
#[cfg(feature = "faults")]
pub fn run_campaign() -> Vec<ScenarioOutcome> {
    use poseidon_faults::{FaultKind, FaultPlan, FaultSite};
    use poseidon_serve::tcp::{ResilientClient, RetryPolicy, SocketConfig};
    use std::time::Instant;

    let _guard = poseidon_faults::test_lock();
    poseidon_faults::disarm();
    let f = Fixture::new();

    let scenarios: &[(FaultSite, FaultKind, &'static str)] = &[
        (FaultSite::ShardWorker, FaultKind::Panic, "panic"),
        (FaultSite::ShardWorker, FaultKind::Stall(400), "stall400"),
        (FaultSite::SocketRead, FaultKind::BitFlip, "bitflip"),
        (FaultSite::SocketRead, FaultKind::Truncate, "truncate"),
        (FaultSite::SocketRead, FaultKind::Disconnect, "disconnect"),
        (FaultSite::SocketRead, FaultKind::Stall(50), "stall50"),
        (FaultSite::SocketWrite, FaultKind::BitFlip, "bitflip"),
        (FaultSite::SocketWrite, FaultKind::Truncate, "truncate"),
        (FaultSite::SocketWrite, FaultKind::Disconnect, "disconnect"),
        (FaultSite::SocketWrite, FaultKind::Stall(50), "stall50"),
        (FaultSite::SocketStall, FaultKind::Stall(300), "stall300"),
    ];

    // The reply bytes are deterministic across services (same frames,
    // same keys), so one unfaulted baseline covers every run.
    let expected = {
        let service = EvalService::start(ServiceConfig::default());
        let (addr, _accept) =
            tcp::listen(Arc::clone(&service), "127.0.0.1:0").expect("bind loopback");
        let client = tcp::Client::connect(addr).expect("connect");
        client
            .register_tenant("acme", &f.keyset_frame)
            .expect("register");
        let bytes = client
            .rotate("acme", &f.frame, 1)
            .expect("unfaulted baseline");
        service.shutdown();
        bytes
    };

    let mut results = Vec::with_capacity(scenarios.len());
    for &(site, kind, kind_name) in scenarios {
        let mut out = ScenarioOutcome {
            site: site.as_str(),
            kind: kind_name,
            seeds: CAMPAIGN_SEEDS,
            bit_identical: 0,
            typed_errors: 0,
            mismatches: 0,
            fired: 0,
            retries: 0,
            connects: 0,
            max_elapsed_ms: 0.0,
        };
        for seed in 0..CAMPAIGN_SEEDS {
            let service = EvalService::start(ServiceConfig::default());
            let (addr, _accept) =
                tcp::listen(Arc::clone(&service), "127.0.0.1:0").expect("bind loopback");
            let bootstrap = tcp::Client::connect(addr).expect("connect");
            bootstrap
                .register_tenant("acme", &f.keyset_frame)
                .expect("register");
            drop(bootstrap);
            let client = ResilientClient::connect(
                addr,
                SocketConfig::default(),
                RetryPolicy {
                    max_attempts: 5,
                    base_backoff_ms: 5,
                    max_backoff_ms: 50,
                    request_timeout_ms: 1_500,
                    ttl_ms: 0,
                    jitter_seed: 0xC0FFEE ^ seed,
                },
            )
            .expect("resilient connect");

            poseidon_faults::arm(FaultPlan::transient(site, kind, seed));
            let t0 = Instant::now();
            let outcome = client.request(
                "acme",
                Op::Rotate {
                    a: &f.frame,
                    steps: 1,
                },
            );
            let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
            out.fired += poseidon_faults::fired();
            poseidon_faults::disarm();

            match outcome {
                Ok(Some(bytes)) if bytes == expected => out.bit_identical += 1,
                Ok(_) => out.mismatches += 1,
                Err(_) => out.typed_errors += 1,
            }
            out.retries += client.retries();
            out.connects += client.connects();
            out.max_elapsed_ms = out.max_elapsed_ms.max(elapsed_ms);
            service.shutdown();
        }
        results.push(out);
    }
    results
}

/// Seeded runs per scenario.
#[cfg(feature = "faults")]
pub const CAMPAIGN_SEEDS: u64 = 4;

/// Renders the campaign as the `BENCH_chaos.json` payload.
#[cfg(feature = "faults")]
pub fn campaign_json(results: &[ScenarioOutcome], digest: u64) -> String {
    let mut json = String::from("{\n  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"site\": \"{}\", \"kind\": \"{}\", \"seeds\": {}, \
             \"bit_identical\": {}, \"typed_errors\": {}, \"mismatches\": {}, \
             \"fired\": {}, \"retries\": {}, \"connects\": {}, \
             \"max_elapsed_ms\": {:.1} }}{}\n",
            r.site,
            r.kind,
            r.seeds,
            r.bit_identical,
            r.typed_errors,
            r.mismatches,
            r.fired,
            r.retries,
            r.connects,
            r.max_elapsed_ms,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"serve_digest\": \"{digest:#018x}\"\n"));
    json.push('}');
    json.push('\n');
    json
}

/// `tables chaos`: prints the unfaulted serve digest (for the CI
/// bit-exactness diff) and the per-scenario campaign table.
#[cfg(feature = "faults")]
pub fn chaos() {
    println!("serve digest (disarmed): {:#018x}", serve_digest());
    println!(
        "\nchaos campaign: {CAMPAIGN_SEEDS} seeded transient plans per scenario, \
         resilient client (5 attempts, replayed ids), toy chain"
    );
    println!(
        "\n{:<13} {:<11} {:>5} {:>9} {:>6} {:>9} {:>6} {:>8} {:>9} {:>11}",
        "site",
        "kind",
        "seeds",
        "bit-exact",
        "typed",
        "mismatch",
        "fired",
        "retries",
        "connects",
        "max-ms"
    );
    let results = run_campaign();
    for r in &results {
        println!(
            "{:<13} {:<11} {:>5} {:>9} {:>6} {:>9} {:>6} {:>8} {:>9} {:>11.1}",
            r.site,
            r.kind,
            r.seeds,
            r.bit_identical,
            r.typed_errors,
            r.mismatches,
            r.fired,
            r.retries,
            r.connects,
            r.max_elapsed_ms,
        );
    }
    let mismatches: u64 = results.iter().map(|r| r.mismatches).sum();
    let resolved: u64 = results
        .iter()
        .map(|r| r.bit_identical + r.typed_errors)
        .sum();
    let total: u64 = results.iter().map(|r| r.seeds).sum();
    println!(
        "\n{resolved}/{total} runs resolved (bit-identical or typed), {mismatches} wrong-byte replies"
    );
    assert_eq!(mismatches, 0, "a chaos run returned wrong bytes");
}
