//! Every program file shipped in `programs/` must parse and simulate —
//! and compile through the graph-level evaluation planner, executing
//! planned and unplanned with agreeing outputs on every backend.

use he_ckks::cipher::{Ciphertext, Plaintext};
use he_ckks::context::CkksContext;
use he_ckks::encoding::Complex;
use he_ckks::eval::Evaluator;
use he_ckks::integrity::digest_ciphertext;
use he_ckks::keys::KeySet;
use he_ckks::params::CkksParams;
use poseidon_core::plan::{compile_trace, execute, CompileOptions, Plan, PlanOptions};
use poseidon_core::PoseidonMachine;
use rand::SeedableRng;
use std::path::PathBuf;

fn programs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../programs")
}

#[test]
fn all_shipped_programs_parse_and_simulate() {
    let dir = programs_dir();
    let mut found = 0;
    for entry in std::fs::read_dir(&dir).expect("programs dir exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("pos") {
            continue;
        }
        found += 1;
        let text = std::fs::read_to_string(&path).unwrap();
        let trace = poseidon_sim::program::parse(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(!trace.entries().is_empty(), "{}", path.display());
        let sim = poseidon_sim::Simulator::new(poseidon_sim::AcceleratorConfig::poseidon_u280());
        let r = sim.run(&trace);
        assert!(r.seconds > 0.0, "{}", path.display());
    }
    assert!(found >= 6, "expected shipped programs, found {found}");
}

fn pos_files() -> Vec<PathBuf> {
    let mut v: Vec<_> = std::fs::read_dir(programs_dir())
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("pos"))
        .collect();
    v.sort();
    v
}

const SLOTS: usize = 8;

fn setup() -> (CkksContext, KeySet, rand::rngs::StdRng) {
    let ctx = CkksContext::new(CkksParams::toy());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x70_05);
    let mut keys = KeySet::generate(&ctx, &mut rng);
    keys.add_rotation_keys(1..=8i64, &mut rng);
    (ctx, keys, rng)
}

fn encrypt(
    ctx: &CkksContext,
    keys: &KeySet,
    rng: &mut rand::rngs::StdRng,
    seed: f64,
) -> Ciphertext {
    let z: Vec<Complex> = (0..SLOTS)
        .map(|i| Complex::new(seed + 0.06 * i as f64, 0.0))
        .collect();
    let pt = Plaintext::new(
        ctx.encoder()
            .encode_rns(ctx.chain_basis(), &z, ctx.default_scale()),
        ctx.default_scale(),
    );
    keys.public().encrypt(&pt, rng)
}

fn decrypt(ctx: &CkksContext, keys: &KeySet, ct: &Ciphertext) -> Vec<f64> {
    let pt = keys.secret().decrypt(ct);
    ctx.encoder()
        .decode_rns(pt.poly(), pt.scale(), SLOTS)
        .iter()
        .map(|z| z.re)
        .collect()
}

fn assert_close(name: &str, a: &[f64], b: &[f64], tol: f64) {
    for (x, y) in a.iter().zip(b) {
        assert!((x - y).abs() < tol * x.abs().max(1.0), "{name}: {x} vs {y}");
    }
}

/// Every shipped program compiles through the planner and the planned
/// schedule reproduces the unplanned one on the functional Evaluator —
/// digest-identically when every rewrite was bit-preserving, at the
/// decrypted-value level when rescale placement moved.
#[test]
fn all_shipped_programs_compile_plan_and_execute() {
    let (ctx, keys, mut rng) = setup();
    for path in pos_files() {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let text = std::fs::read_to_string(&path).unwrap();
        let trace = poseidon_sim::program::parse(&text).unwrap();
        let compiled = compile_trace(&trace, &ctx, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let graph = compiled.graph;
        assert!(graph.live_node_count() > 0, "{name}: empty graph");
        assert!(!graph.outputs().is_empty(), "{name}: no outputs");

        let inputs: Vec<Ciphertext> = (0..graph.inputs().len())
            .map(|i| encrypt(&ctx, &keys, &mut rng, 0.4 + 0.05 * i as f64))
            .collect();
        let unplanned = Plan::passthrough(graph.clone());
        let planned = poseidon_core::plan::plan(graph, &PlanOptions::default());

        let mut eval = Evaluator::new(&ctx);
        let base = execute(&unplanned, &mut eval, &inputs, &keys)
            .unwrap_or_else(|e| panic!("{name} unplanned: {e}"));
        let opt = execute(&planned, &mut eval, &inputs, &keys)
            .unwrap_or_else(|e| panic!("{name} planned: {e}"));
        assert_eq!(base.outputs.len(), opt.outputs.len(), "{name}");
        for (a, b) in base.outputs.iter().zip(&opt.outputs) {
            if planned.value_preserving {
                assert_eq!(
                    digest_ciphertext(a),
                    digest_ciphertext(b),
                    "{name}: value-preserving plan changed bits"
                );
            } else {
                assert_close(
                    &name,
                    &decrypt(&ctx, &keys, a),
                    &decrypt(&ctx, &keys, b),
                    1e-3,
                );
            }
        }
    }
}

/// The planned schedule executes on the cycle-modelled PoseidonMachine
/// backend too, and its decrypted outputs agree with the Evaluator's.
#[test]
fn planned_programs_agree_between_evaluator_and_machine() {
    let (ctx, keys, mut rng) = setup();
    for path in pos_files() {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let text = std::fs::read_to_string(&path).unwrap();
        let trace = poseidon_sim::program::parse(&text).unwrap();
        let compiled = compile_trace(&trace, &ctx, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let planned = poseidon_core::plan::plan(compiled.graph, &PlanOptions::default());

        let inputs: Vec<Ciphertext> = (0..planned.graph.inputs().len())
            .map(|i| encrypt(&ctx, &keys, &mut rng, 0.4 + 0.05 * i as f64))
            .collect();
        let mut eval = Evaluator::new(&ctx);
        let mut machine = PoseidonMachine::new(&ctx, 8, 1);
        let e = execute(&planned, &mut eval, &inputs, &keys)
            .unwrap_or_else(|err| panic!("{name} eval: {err}"));
        let m = execute(&planned, &mut machine, &inputs, &keys)
            .unwrap_or_else(|err| panic!("{name} machine: {err}"));
        assert_eq!(e.outputs.len(), m.outputs.len(), "{name}");
        for (a, b) in e.outputs.iter().zip(&m.outputs) {
            assert_close(
                &name,
                &decrypt(&ctx, &keys, a),
                &decrypt(&ctx, &keys, b),
                1e-2,
            );
        }
    }
}

#[test]
fn shipped_programs_round_trip_through_format() {
    for entry in std::fs::read_dir(programs_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("pos") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let t1 = poseidon_sim::program::parse(&text).unwrap();
        let t2 = poseidon_sim::program::parse(&poseidon_sim::program::format(&t1)).unwrap();
        assert_eq!(t1, t2, "{}", path.display());
    }
}

#[test]
fn streaming_program_is_bandwidth_bound() {
    let text = std::fs::read_to_string(programs_dir().join("hadd_stream.pos")).unwrap();
    let trace = poseidon_sim::program::parse(&text).unwrap();
    let sim = poseidon_sim::Simulator::new(poseidon_sim::AcceleratorConfig::poseidon_u280());
    let r = sim.run(&trace);
    assert!(
        r.bandwidth_utilisation > 0.95,
        "{}",
        r.bandwidth_utilisation
    );
}
