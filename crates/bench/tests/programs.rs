//! Every program file shipped in `programs/` must parse and simulate.

use std::path::PathBuf;

fn programs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../programs")
}

#[test]
fn all_shipped_programs_parse_and_simulate() {
    let dir = programs_dir();
    let mut found = 0;
    for entry in std::fs::read_dir(&dir).expect("programs dir exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("pos") {
            continue;
        }
        found += 1;
        let text = std::fs::read_to_string(&path).unwrap();
        let trace = poseidon_sim::program::parse(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(!trace.entries().is_empty(), "{}", path.display());
        let sim = poseidon_sim::Simulator::new(poseidon_sim::AcceleratorConfig::poseidon_u280());
        let r = sim.run(&trace);
        assert!(r.seconds > 0.0, "{}", path.display());
    }
    assert!(found >= 3, "expected shipped programs, found {found}");
}

#[test]
fn shipped_programs_round_trip_through_format() {
    for entry in std::fs::read_dir(programs_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("pos") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let t1 = poseidon_sim::program::parse(&text).unwrap();
        let t2 = poseidon_sim::program::parse(&poseidon_sim::program::format(&t1)).unwrap();
        assert_eq!(t1, t2, "{}", path.display());
    }
}

#[test]
fn streaming_program_is_bandwidth_bound() {
    let text = std::fs::read_to_string(programs_dir().join("hadd_stream.pos")).unwrap();
    let trace = poseidon_sim::program::parse(&text).unwrap();
    let sim = poseidon_sim::Simulator::new(poseidon_sim::AcceleratorConfig::poseidon_u280());
    let r = sim.run(&trace);
    assert!(
        r.bandwidth_utilisation > 0.95,
        "{}",
        r.bandwidth_utilisation
    );
}
