//! Serving-scale export: requests/sec and p99 latency versus shard
//! count and tenant count for the mixed add/mul/rotation workload,
//! blocking baseline versus the pipelined multiplexing client.
//! Results land in `BENCH_serve_scale.json` at the repository root.

use poseidon_bench::serve_scale::{requests_per_tenant, run_cell, Cell, Harness};

fn cell_json(c: &Cell) -> String {
    format!(
        "{{ \"mode\": \"{}\", \"shards\": {}, \"tenants\": {}, \"requests\": {}, \
         \"elapsed_s\": {:.6}, \"requests_per_sec\": {:.2}, \"p99_ms\": {:.3}, \
         \"digest\": \"{:016x}\" }}",
        c.mode, c.shards, c.tenants, c.requests, c.elapsed_s, c.rps, c.p99_ms, c.digest
    )
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let h = Harness::new();

    // Baseline: the pre-mux serving stack's shape — one dispatcher,
    // blocking request-per-roundtrip clients (queues never deeper than
    // the tenant count, so rotation coalescing cannot fire).
    let baseline = run_cell(&h, 1, 4, false);
    // Shard sweep at fixed tenants, then tenant sweep at fixed shards.
    let cells = [
        run_cell(&h, 1, 4, true),
        run_cell(&h, 2, 4, true),
        run_cell(&h, 4, 4, true),
        run_cell(&h, 4, 1, true),
        run_cell(&h, 4, 2, true),
    ];

    // Scheduling must never change bits: every 4-tenant schedule agrees.
    for c in cells.iter().filter(|c| c.tenants == baseline.tenants) {
        assert_eq!(
            c.digest, baseline.digest,
            "{} x{} shards diverged from baseline",
            c.mode, c.shards
        );
    }
    let tentpole = &cells[2];
    let speedup = tentpole.rps / baseline.rps;

    let mut json = String::from("{\n  \"serve_scale\": {\n");
    json.push_str(&format!(
        "    \"workload\": {{ \"requests_per_tenant\": {}, \"rotations_per_round\": {}, \
         \"adds_per_round\": {}, \"muls_per_round\": {}, \"rounds\": {} }},\n",
        requests_per_tenant(),
        poseidon_bench::serve_scale::ROT_STEPS.len(),
        poseidon_bench::serve_scale::ADDS_PER_ROUND,
        poseidon_bench::serve_scale::MULS_PER_ROUND,
        poseidon_bench::serve_scale::ROUNDS,
    ));
    json.push_str(&format!(
        "    \"ciphertext_frame_bytes\": {},\n    \"keyset_frame_bytes\": {},\n    \"host_cores\": {cores},\n",
        h.frame_a.len(),
        h.keyset_frame.len(),
    ));
    json.push_str(&format!("    \"baseline\": {},\n", cell_json(&baseline)));
    json.push_str("    \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "      {}{}\n",
            cell_json(c),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("    ],\n");
    json.push_str(&format!(
        "    \"speedup_4shards_vs_baseline\": {speedup:.3},\n    \"bit_identical\": true\n  }}\n}}\n"
    ));

    let path = poseidon_bench::export_path("BENCH_serve_scale.json");
    std::fs::write(&path, &json).expect("write BENCH_serve_scale.json");
    println!("serving-scale snapshot written to {}", path.display());
    println!(
        "4 shards pipelined vs blocking single-dispatcher baseline: {speedup:.2}x requests/sec ({cores} cores)"
    );
}
