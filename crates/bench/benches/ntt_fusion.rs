//! Criterion sweep over the NTT fusion degree k (the measured companion to
//! Fig. 10's execution-time panel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use he_ntt::{FusedNtt, NttTable};

fn bench_fusion_sweep(c: &mut Criterion) {
    let n = 1usize << 12; // the paper's Fig. 10 example length
    let q = he_math::prime::ntt_prime(30, 2 * n as u64).unwrap();
    let table = NttTable::new(n, q);
    let data: Vec<u64> = (0..n as u64).map(|i| (i * 40503) % q).collect();
    let mut group = c.benchmark_group("ntt_fusion_n4096");
    for k in 1..=6u32 {
        let fused = FusedNtt::new(&table, k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let mut d = data.clone();
                fused.forward(&mut d);
                d
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fusion_sweep
}
criterion_main!(benches);
