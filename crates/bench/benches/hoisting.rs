//! Hoisted-vs-naive rotation criterion benches: an 8-rotation batch of
//! one ciphertext as a per-call loop (each rotation pays its own digit
//! lift + forward NTTs) against one `rotate_many` (the lift is hoisted
//! and paid once), plus the BSGS matvec consumer.

use criterion::{criterion_group, Criterion};
use he_ckks::encoding::Complex;
use he_ckks::linear::PlainMatrix;
use poseidon_bench::cpu_baseline::CpuHarness;

const STEPS: [i64; 8] = [1, 2, 3, 4, 5, 6, 7, 8];
const DIM: usize = 32;

fn bench_hoisting(c: &mut Criterion) {
    let mut h = CpuHarness::new(1 << 12, 4);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0x4015);
    for s in STEPS.iter().skip(1).chain(&[12, 18]) {
        h.keys.add_rotation_key(*s, &mut rng);
    }
    // Same 24-wide band as `tables hoisting`: exactly 8 rotations
    // (baby 1..5, giant 6/12/18).
    let m = PlainMatrix::new(
        (0..DIM)
            .map(|i| {
                (0..DIM)
                    .map(|j| {
                        if (j + DIM - i) % DIM < 24 {
                            Complex::new(((i * 7 + j * 3) % 7) as f64 * 0.05 - 0.15, 0.0)
                        } else {
                            Complex::new(0.0, 0.0)
                        }
                    })
                    .collect()
            })
            .collect(),
    );

    let mut group = c.benchmark_group("hoisting_n4096_l4");
    group.bench_function("rotate_x8_per_call", |b| {
        b.iter(|| {
            STEPS
                .iter()
                .map(|&s| h.eval.rotate(&h.ct_a, s, &h.keys))
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("rotate_x8_hoisted", |b| {
        b.iter(|| h.eval.rotate_many(&h.ct_a, &STEPS, &h.keys))
    });
    group.bench_function("hoist_only", |b| b.iter(|| h.eval.hoist(&h.ct_a)));
    group.bench_function("bsgs_matvec_dim32", |b| {
        b.iter(|| m.apply_bsgs(&h.eval, &h.keys, &h.ct_a))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_hoisting
}

// Manual main instead of `criterion_main!`: with `--features telemetry`
// the accumulated scope snapshot (ntt.forward, keyswitch.hoist/reuse/
// saved_ntt, ...) is exported to `BENCH_hoisting.json` so the saved-NTT
// accounting lands next to the wall times.
fn main() {
    benches();
    #[cfg(feature = "telemetry")]
    {
        let json = poseidon_telemetry::Registry::global().snapshot().to_json();
        let path = poseidon_bench::export_path("BENCH_hoisting.json");
        std::fs::write(&path, &json).expect("write BENCH_hoisting.json");
        println!("telemetry snapshot written to {}", path.display());
    }
}
