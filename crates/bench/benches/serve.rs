//! Serving-layer benches: the wire codec round trip, in-process served
//! operations against the bare evaluator (the dispatch + checked-
//! execution overhead), and an 8-rotation burst served per-call versus
//! coalesced into one batch (one hoisted digit lift for the whole
//! group — the scheduler's reason to exist).

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use poseidon_bench::cpu_baseline::CpuHarness;
use poseidon_serve::{EvalService, Request, ServiceConfig};

const STEPS: [i64; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

fn harness() -> CpuHarness {
    let mut h = CpuHarness::new(1 << 12, 4);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0x5E4E);
    for s in STEPS.iter().skip(1) {
        h.keys.add_rotation_key(*s, &mut rng);
    }
    h
}

fn bench_serve(c: &mut Criterion) {
    let h = harness();
    let frame = poseidon_wire::encode_ciphertext(&h.ctx, &h.ct_a);

    let service = EvalService::start(ServiceConfig::default());
    service.register_tenant("bench", h.ctx.clone(), h.keys.clone());

    let mut group = c.benchmark_group("serve_n4096_l4");
    group.bench_function("wire_encode_ct", |b| {
        b.iter(|| poseidon_wire::encode_ciphertext(&h.ctx, &h.ct_a))
    });
    group.bench_function("wire_decode_ct", |b| {
        b.iter(|| poseidon_wire::decode_ciphertext(&h.ctx, &frame).expect("decode"))
    });
    group.bench_function("mul_direct", |b| {
        b.iter(|| h.eval.mul(&h.ct_a, &h.ct_b, &h.keys))
    });
    group.bench_function("mul_served", |b| {
        b.iter(|| {
            service
                .call(
                    "bench",
                    Request::Mul {
                        a: h.ct_a.clone(),
                        b: h.ct_b.clone(),
                    },
                )
                .expect("served mul")
        })
    });
    group.bench_function("rotate_x8_served_per_call", |b| {
        b.iter(|| {
            STEPS
                .iter()
                .map(|&s| {
                    service
                        .call(
                            "bench",
                            Request::Rotate {
                                a: h.ct_a.clone(),
                                steps: s,
                            },
                        )
                        .expect("served rotate")
                })
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("rotate_x8_served_batched", |b| {
        b.iter(|| {
            service.suspend();
            let tickets: Vec<_> = STEPS
                .iter()
                .map(|&s| {
                    service
                        .submit(
                            "bench",
                            Request::Rotate {
                                a: h.ct_a.clone(),
                                steps: s,
                            },
                        )
                        .expect("submit")
                })
                .collect();
            service.resume();
            tickets
                .into_iter()
                .map(|t| t.wait().expect("batched rotate"))
                .collect::<Vec<_>>()
        })
    });
    group.finish();
    service.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serve
}

// Manual main instead of `criterion_main!`: after the timed runs, one
// measured per-call/batched rotation burst and the wire frame sizes are
// exported to `BENCH_serve.json` (plus, with `--features telemetry`,
// the scope snapshot with the serve.* and keyswitch.hoist counters).
fn main() {
    benches();

    let h = harness();
    let frame = poseidon_wire::encode_ciphertext(&h.ctx, &h.ct_a);
    let keyset_frame = poseidon_wire::encode_keyset_public(&h.ctx, &h.keys);
    let service = EvalService::start(ServiceConfig::default());
    service.register_tenant("bench", h.ctx.clone(), h.keys.clone());

    let t0 = Instant::now();
    for &s in &STEPS {
        service
            .call(
                "bench",
                Request::Rotate {
                    a: h.ct_a.clone(),
                    steps: s,
                },
            )
            .expect("per-call rotate");
    }
    let per_call_ns = t0.elapsed().as_nanos();

    let t0 = Instant::now();
    service.suspend();
    let tickets: Vec<_> = STEPS
        .iter()
        .map(|&s| {
            service
                .submit(
                    "bench",
                    Request::Rotate {
                        a: h.ct_a.clone(),
                        steps: s,
                    },
                )
                .expect("submit")
        })
        .collect();
    service.resume();
    for t in tickets {
        t.wait().expect("batched rotate");
    }
    let batched_ns = t0.elapsed().as_nanos();
    service.shutdown();

    let mut json = format!(
        "{{\n  \"serve\": {{ \"ciphertext_frame_bytes\": {}, \"public_keyset_frame_bytes\": {}, \
         \"rotate_burst\": {}, \"per_call_ns\": {}, \"batched_ns\": {} }}",
        frame.len(),
        keyset_frame.len(),
        STEPS.len(),
        per_call_ns,
        batched_ns
    );
    #[cfg(feature = "telemetry")]
    {
        json.push_str(",\n  \"telemetry\": ");
        json.push_str(&poseidon_telemetry::Registry::global().snapshot().to_json());
    }
    json.push_str("\n}\n");
    let path = poseidon_bench::export_path("BENCH_serve.json");
    std::fs::write(&path, &json).expect("write BENCH_serve.json");
    println!("serving snapshot written to {}", path.display());
}
