//! Criterion benches for the CKKS basic operations (the Table IV CPU
//! baseline, measured on our own software library at paper-matched 32-bit
//! datapath parameters).

use criterion::{criterion_group, Criterion};
use poseidon_bench::cpu_baseline::CpuHarness;

fn bench_basic_ops(c: &mut Criterion) {
    let h = CpuHarness::new(1 << 12, 4);
    let mut group = c.benchmark_group("basic_ops_n4096_l4");
    group.bench_function("hadd", |b| b.iter(|| h.eval.add(&h.ct_a, &h.ct_b)));
    group.bench_function("pmult", |b| b.iter(|| h.eval.mul_plain(&h.ct_a, &h.pt)));
    group.bench_function("cmult_relin", |b| {
        b.iter(|| h.eval.mul(&h.ct_a, &h.ct_b, &h.keys))
    });
    group.bench_function("rescale", |b| b.iter(|| h.eval.rescale(&h.ct_a)));
    group.bench_function("keyswitch", |b| {
        b.iter(|| h.eval.keyswitch(h.ct_a.c1(), h.keys.relin()))
    });
    group.bench_function("rotation", |b| {
        b.iter(|| h.eval.rotate(&h.ct_a, 1, &h.keys))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_basic_ops
}

// Manual main instead of `criterion_main!`: with `--features telemetry`
// the bench run ends by exporting the accumulated scope snapshot as JSON,
// so per-operation wall times land next to the library's internal spans.
fn main() {
    benches();
    #[cfg(feature = "telemetry")]
    println!(
        "{}",
        poseidon_telemetry::Registry::global().snapshot().to_json()
    );
}
