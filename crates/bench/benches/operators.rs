//! Criterion benches for the five operator kernels (software library) —
//! the measured side of the paper's key-operator comparisons.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use he_ntt::{FusedNtt, NttTable};
use poseidon_core::HfAuto;

fn bench_ntt(c: &mut Criterion) {
    let mut group = c.benchmark_group("ntt");
    for log_n in [12u32, 13, 14] {
        let n = 1usize << log_n;
        let q = he_math::prime::ntt_prime(30, 2 * n as u64).unwrap();
        let table = NttTable::new(n, q);
        let data: Vec<u64> = (0..n as u64).map(|i| (i * 2654435761) % q).collect();
        group.bench_with_input(BenchmarkId::new("radix2", n), &n, |b, _| {
            b.iter(|| {
                let mut d = data.clone();
                table.forward(&mut d);
                d
            })
        });
        let fused = FusedNtt::new(&table, 3);
        group.bench_with_input(BenchmarkId::new("fused_k3", n), &n, |b, _| {
            b.iter(|| {
                let mut d = data.clone();
                fused.forward(&mut d);
                d
            })
        });
    }
    group.finish();
}

fn bench_modmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("mm");
    let n = 1usize << 14;
    let q = he_math::prime::ntt_prime(30, 2 * n as u64).unwrap();
    let red = he_math::BarrettReducer::new(q);
    let a: Vec<u64> = (0..n as u64).map(|i| (i * 7919) % q).collect();
    let b_vec: Vec<u64> = (0..n as u64).map(|i| (i * 104729) % q).collect();
    group.bench_function("barrett_vector_16k", |b| {
        b.iter(|| {
            a.iter()
                .zip(&b_vec)
                .map(|(&x, &y)| red.mul(x, y))
                .collect::<Vec<_>>()
        })
    });
    let mont = he_math::montgomery::Montgomery::new(q);
    group.bench_function("montgomery_vector_16k", |b| {
        b.iter(|| {
            // Domain conversions amortised over the vector, as a chained
            // kernel would do.
            a.iter()
                .zip(&b_vec)
                .map(|(&x, &y)| mont.mont_mul(mont.to_mont(x), mont.to_mont(y)))
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("reference_u128_vector_16k", |b| {
        b.iter(|| {
            a.iter()
                .zip(&b_vec)
                .map(|(&x, &y)| he_math::modops::mul_mod(x, y, q))
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

fn bench_automorphism(c: &mut Criterion) {
    let mut group = c.benchmark_group("automorphism");
    let n = 1usize << 14;
    let q = he_math::prime::ntt_prime(30, 2 * n as u64).unwrap();
    let data: Vec<u64> = (0..n as u64).map(|i| (i * 31) % q).collect();
    let hf = HfAuto::new(n, 512);
    group.bench_function("hfauto_16k", |b| b.iter(|| hf.apply(&data, 5, q)));
    group.bench_function("naive_16k", |b| b.iter(|| hf.apply_naive(&data, 5, q)));
    // Lane-width ablation: the paper's Fig. 11 axis at the operator level.
    for lanes in [64usize, 128, 256, 512] {
        let hf = HfAuto::new(n, lanes);
        group.bench_with_input(BenchmarkId::new("hfauto_lanes", lanes), &lanes, |b, _| {
            b.iter(|| hf.apply(&data, 5, q))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ntt, bench_modmul, bench_automorphism
}
criterion_main!(benches);
