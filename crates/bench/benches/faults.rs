//! Integrity-layer overhead benches: the duplicated checked execution of
//! `CheckedEvaluator` (DMR + digest compare) against the plain evaluator
//! on the keyswitch-bearing operations, plus the pure digest cost — the
//! price of the retire-boundary checks the paper's FPGA would pay in
//! dedicated checker logic.

use criterion::{criterion_group, Criterion};
use he_ckks::integrity::{digest_ciphertext, CheckedEvaluator};
use poseidon_bench::cpu_baseline::CpuHarness;

fn bench_faults(c: &mut Criterion) {
    let mut h = CpuHarness::new(1 << 12, 4);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0xFA17);
    h.keys.add_rotation_key(1, &mut rng);
    let checked = CheckedEvaluator::from_evaluator(h.eval.clone());

    let mut group = c.benchmark_group("integrity_n4096_l4");
    group.bench_function("cmult_plain", |b| {
        b.iter(|| h.eval.mul(&h.ct_a, &h.ct_b, &h.keys))
    });
    group.bench_function("cmult_checked_dmr", |b| {
        b.iter(|| checked.mul(&h.ct_a, &h.ct_b, &h.keys).expect("clean"))
    });
    group.bench_function("rotate_plain", |b| {
        b.iter(|| h.eval.rotate(&h.ct_a, 1, &h.keys))
    });
    group.bench_function("rotate_checked_dmr", |b| {
        b.iter(|| checked.rotate(&h.ct_a, 1, &h.keys).expect("clean"))
    });
    group.bench_function("rescale_checked_dmr", |b| {
        let prod = h.eval.mul(&h.ct_a, &h.ct_b, &h.keys);
        b.iter(|| checked.rescale(&prod).expect("clean"))
    });
    group.bench_function("digest_ciphertext", |b| {
        b.iter(|| digest_ciphertext(&h.ct_a))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_faults
}

// Manual main instead of `criterion_main!`: the cumulative integrity
// counters accumulated by the checked benches (and, with `--features
// telemetry`, the scope snapshot) are exported to `BENCH_faults.json` so
// the check accounting lands next to the wall times.
fn main() {
    benches();
    let s = he_ckks::integrity::integrity_stats();
    let mut json = format!(
        "{{\n  \"integrity\": {{ \"checked\": {}, \"detected\": {}, \"retried\": {}, \"escalated\": {} }}",
        s.checked, s.detected, s.retried, s.escalated
    );
    #[cfg(feature = "telemetry")]
    {
        json.push_str(",\n  \"telemetry\": ");
        json.push_str(&poseidon_telemetry::Registry::global().snapshot().to_json());
    }
    json.push_str("\n}\n");
    let path = poseidon_bench::export_path("BENCH_faults.json");
    std::fs::write(&path, &json).expect("write BENCH_faults.json");
    println!("integrity snapshot written to {}", path.display());
}
