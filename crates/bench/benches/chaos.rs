//! Chaos-campaign export bench: runs the seeded site×kind injection
//! matrix from `poseidon_bench::chaos` through the resilient TCP client
//! and writes the per-scenario resolution table to `BENCH_chaos.json` —
//! the machine-readable proof that every injected failure mode ends in
//! a bit-identical reply or a typed error, never a hang or a wrong
//! byte. Without `--features faults` the hooks are compiled out; the
//! export records the unfaulted serve digest only, which CI diffs
//! against the instrumented build's disarmed digest.

fn main() {
    let digest = poseidon_bench::chaos::serve_digest();
    #[cfg(feature = "faults")]
    let json = {
        let results = poseidon_bench::chaos::run_campaign();
        let mismatches: u64 = results.iter().map(|r| r.mismatches).sum();
        assert_eq!(mismatches, 0, "a chaos run returned wrong bytes");
        poseidon_bench::chaos::campaign_json(&results, digest)
    };
    #[cfg(not(feature = "faults"))]
    let json = format!("{{\n  \"scenarios\": [],\n  \"serve_digest\": \"{digest:#018x}\"\n}}\n");
    let path = poseidon_bench::export_path("BENCH_chaos.json");
    std::fs::write(&path, &json).expect("write BENCH_chaos.json");
    println!("chaos campaign written to {}", path.display());
}
