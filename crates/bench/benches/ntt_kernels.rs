//! Per-kernel NTT benches: the scalar oracle against the lazy and fused
//! radix-8 production kernels, at the transform level (forward/inverse
//! across ring degrees) and end to end (the 8-rotation hoisting workloads
//! rebuilt under each kernel).
//!
//! The manual `main` re-times the same sweeps with plain `Instant` loops
//! and writes `BENCH_ntt_kernels.json` — the shim criterion keeps no
//! on-disk results, and CI's acceptance gate (fused forward ≥ 1.3× scalar
//! at N ≥ 2^12, visible end-to-end hoisting gain) parses that file.

use criterion::{criterion_group, BenchmarkId, Criterion};
use he_ntt::{KernelKind, NttTable};
use poseidon_bench::tables::{ntt_end_to_end, ntt_kernel_sweep};

fn bench_transforms(c: &mut Criterion) {
    let mut group = c.benchmark_group("ntt_kernels");
    for log_n in [10u32, 12, 13] {
        let n = 1usize << log_n;
        let q = he_math::prime::ntt_prime(30, 2 * n as u64).unwrap();
        let input: Vec<u64> = (0..n as u64)
            .map(|i| (i.wrapping_mul(2654435761).wrapping_add(97)) % q)
            .collect();
        for kind in KernelKind::ALL {
            let t = NttTable::with_kernel(n, q, kind);
            let mut buf = input.clone();
            group.bench_function(
                BenchmarkId::new(format!("forward/{}", kind.name()), n),
                |b| b.iter(|| t.forward(&mut buf)),
            );
            group.bench_function(
                BenchmarkId::new(format!("inverse/{}", kind.name()), n),
                |b| b.iter(|| t.inverse(&mut buf)),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_transforms
}

fn json_escape_free(name: &str) -> &str {
    // Kernel names are lowercase identifiers; nothing to escape.
    name
}

fn main() {
    benches();

    // Measured sweep for the export (independent of the criterion run).
    let rows = ntt_kernel_sweep(&[10, 11, 12, 13]);
    let e2e = ntt_end_to_end(2);

    let mut json = String::from("{\n  \"bench\": \"ntt_kernels\",\n  \"transforms\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"log_n\": {}, \"forward_ns\": {:.1}, \"inverse_ns\": {:.1}}}{}\n",
            json_escape_free(r.kernel),
            r.log_n,
            r.forward_ns,
            r.inverse_ns,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"speedup_vs_scalar\": {\n");
    let fwd = |kernel: &str, log_n: u32| {
        rows.iter()
            .find(|r| r.kernel == kernel && r.log_n == log_n)
            .map(|r| r.forward_ns)
            .unwrap()
    };
    let speedup_logs: Vec<u32> = vec![12, 13];
    for (i, &log_n) in speedup_logs.iter().enumerate() {
        json.push_str(&format!(
            "    \"forward_n{}\": {{\"lazy\": {:.3}, \"fused_radix8\": {:.3}}}{}\n",
            1usize << log_n,
            fwd("scalar", log_n) / fwd("lazy", log_n),
            fwd("scalar", log_n) / fwd("fused_radix8", log_n),
            if i + 1 < speedup_logs.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n  \"end_to_end_ms\": [\n");
    for (i, (kernel, rot, bsgs)) in e2e.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{kernel}\", \"rotate_x8_ms\": {rot:.3}, \"bsgs_matvec_ms\": {bsgs:.3}}}{}\n",
            if i + 1 < e2e.len() { "," } else { "" }
        ));
    }
    let scalar = e2e.iter().find(|r| r.0 == "scalar").unwrap();
    let fused = e2e.iter().find(|r| r.0 == "fused_radix8").unwrap();
    json.push_str(&format!(
        "  ],\n  \"end_to_end_gain_vs_scalar\": {{\"rotate_x8\": {:.3}, \"bsgs_matvec\": {:.3}}},\n",
        scalar.1 / fused.1,
        scalar.2 / fused.2
    ));
    json.push_str("  \"acceptance\": {\"min_forward_speedup_n4096\": 1.3}\n}\n");

    let path = poseidon_bench::export_path("BENCH_ntt_kernels.json");
    std::fs::write(&path, &json).expect("write BENCH_ntt_kernels.json");
    println!("kernel sweep written to {}", path.display());

    let measured = fwd("scalar", 12) / fwd("fused_radix8", 12);
    println!("fused_radix8 forward speedup at N=2^12: {measured:.2}x (acceptance: >= 1.3x)");
}
