//! Serial-vs-parallel criterion benches for the limb-parallel engine:
//! NTT forward/inverse, CMult (incl. relinearization), and keyswitch at
//! 1/2/4/8 threads. The thread count is pinned per benchmark through
//! `poseidon_par::with_threads`, so one run produces the whole sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use poseidon_bench::cpu_baseline::CpuHarness;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bench_parallel_sweep(c: &mut Criterion) {
    let h = CpuHarness::new(1 << 13, 6);
    let coeff = h.ct_a.c0().clone();
    let eval_form = coeff.clone().into_eval();

    let mut group = c.benchmark_group("parallel_n8192_l6");
    for &t in &THREAD_COUNTS {
        group.bench_with_input(BenchmarkId::new("ntt_fwd", t), &t, |b, &t| {
            b.iter(|| poseidon_par::with_threads(t, || coeff.clone().into_eval()))
        });
        group.bench_with_input(BenchmarkId::new("ntt_inv", t), &t, |b, &t| {
            b.iter(|| poseidon_par::with_threads(t, || eval_form.clone().into_coeff()))
        });
        group.bench_with_input(BenchmarkId::new("cmult_relin", t), &t, |b, &t| {
            b.iter(|| poseidon_par::with_threads(t, || h.eval.mul(&h.ct_a, &h.ct_b, &h.keys)))
        });
        group.bench_with_input(BenchmarkId::new("keyswitch", t), &t, |b, &t| {
            b.iter(|| {
                poseidon_par::with_threads(t, || h.eval.keyswitch(h.ct_a.c1(), h.keys.relin()))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parallel_sweep
}
criterion_main!(benches);
